// Package netdebug is the public API of the NetDebug framework — a
// programmable hardware/software system for validating and real-time
// debugging of programmable data planes, reproducing Bressana, Zilberman,
// and Soulé, "A Programmable Framework for Validating Data Planes"
// (SIGCOMM 2018).
//
// A System bundles the simulated network device (a NetFPGA-SUME-like
// platform), a P4 data plane compiled onto a selectable target backend,
// and the NetDebug instrumentation: an in-device test packet generator and
// output packet checker managed by a host-side controller over a dedicated
// control channel.
//
// The one-minute tour:
//
//	sys, err := netdebug.Open(mySource, netdebug.Options{Target: netdebug.TargetSDNet})
//	...
//	sys.InstallEntry(netdebug.Entry{Table: "ipv4_lpm", ...})
//	report, err := sys.Validate(&netdebug.TestSpec{
//	    Gen:   netdebug.GenSpec{Streams: []netdebug.StreamSpec{{Name: "probe", Template: pkt, Count: 100}}},
//	    Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{Name: "fwd", Stream: "probe", ExpectPort: 1}}},
//	})
//
// Baselines from the paper's comparison are exposed too: VerifyProgram
// runs p4v-style software formal verification, and NewExternalTester
// attaches an OSNT-style tester to the device's external ports.
package netdebug

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/control"
	"netdebug/internal/core"
	"netdebug/internal/dataplane"
	"netdebug/internal/device"
	"netdebug/internal/faultplan"
	"netdebug/internal/fuzz"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/ir"
	"netdebug/internal/session"
	"netdebug/internal/target"
	"netdebug/internal/tester"
	"netdebug/internal/verify"
)

// Re-exported types: the vocabulary of the public API.
type (
	// TestSpec bundles generator and checker programs for one run.
	TestSpec = core.TestSpec
	// GenSpec programs the test packet generator.
	GenSpec = core.GenSpec
	// StreamSpec is one generated packet stream.
	StreamSpec = core.StreamSpec
	// FieldSweep varies a packet field deterministically.
	FieldSweep = core.FieldSweep
	// FieldFuzz randomizes a packet field reproducibly.
	FieldFuzz = core.FieldFuzz
	// CheckSpec programs the output packet checker.
	CheckSpec = core.CheckSpec
	// Rule is one checker rule.
	Rule = core.Rule
	// FieldExpect is a field post-condition on output packets.
	FieldExpect = core.FieldExpect
	// FieldLoc addresses a packet field by bit offset and width.
	FieldLoc = core.FieldLoc
	// Report is a checker run's results.
	Report = core.Report
	// Diagnosis is the fault localizer's conclusion.
	Diagnosis = core.Diagnosis
	// Entry is a match-action table entry.
	Entry = dataplane.Entry
	// KeyValue is one key component of an Entry.
	KeyValue = dataplane.KeyValue
	// Value is an arbitrary-width bit-vector value.
	Value = bitfield.Value
	// Fault is an injectable hardware fault.
	Fault = device.Fault
	// ExternalReport is the external tester's view of a run.
	ExternalReport = tester.Report
	// ExternalStream describes an externally-injected stream.
	ExternalStream = tester.Stream
	// RetryPolicy bounds the control channel's retry-with-backoff loop.
	RetryPolicy = control.RetryPolicy
	// FaultPlan schedules faults on the device's virtual clock.
	FaultPlan = faultplan.Plan
	// FaultEvent is one scheduled fault.
	FaultEvent = faultplan.Event
	// SessionSpec describes one resident validation session.
	SessionSpec = session.SessionSpec
	// SessionHostConfig describes the pooled device/target systems a
	// session manager boots.
	SessionHostConfig = session.HostConfig
	// SessionResult is one completed session's verdict.
	SessionResult = session.Result
	// SessionRecord is one line of the versioned JSONL event stream.
	SessionRecord = session.Record
	// ChurnSpec drives table install/delete churn under traffic.
	ChurnSpec = session.ChurnSpec
	// ProbeSpec drives the external probe leg of a session.
	ProbeSpec = session.ProbeSpec
	// RetrySpec is the serializable retry policy in a SessionHostConfig.
	RetrySpec = session.RetrySpec
	// FuzzReport is a differential fuzzing fleet run's results.
	FuzzReport = fuzz.Report
	// FuzzDivergence is one majority-voted cross-backend disagreement.
	FuzzDivergence = fuzz.Divergence
	// FuzzCoveragePoint is one point of a fuzz run's coverage curve.
	FuzzCoveragePoint = fuzz.CoveragePoint
)

// ErrDraining is returned by SessionManager.Run/RunAll after Drain.
var ErrDraining = session.ErrDraining

// Scheduled fault kinds, re-exported from the fault plan vocabulary.
const (
	FaultPlanPortDown     = faultplan.PortDown
	FaultPlanBitFlip      = faultplan.BitFlip
	FaultPlanQueueStuck   = faultplan.QueueStuck
	FaultPlanClearFaults  = faultplan.ClearFaults
	FaultPlanMapFull      = faultplan.MapFull
	FaultPlanMapFullClear = faultplan.MapFullClear
	FaultPlanMaskBudget   = faultplan.MaskBudget
	FaultPlanInstallFlap  = faultplan.InstallFlap
)

// Fault kinds, re-exported from the device model.
const (
	FaultPortDown   = device.FaultPortDown
	FaultBitFlip    = device.FaultBitFlip
	FaultQueueStuck = device.FaultQueueStuck
)

// NewValue builds a Value of the given width from v.
func NewValue(v uint64, width int) Value { return bitfield.New(v, width) }

// ValueFromBytes builds a Value from big-endian bytes.
func ValueFromBytes(b []byte) Value { return bitfield.FromBytes(b) }

// TargetKind selects the hardware backend.
type TargetKind string

// Available targets.
const (
	// TargetReference runs the program with exact P4₁₆ semantics.
	TargetReference TargetKind = "reference"
	// TargetSDNet models the Xilinx SDNet flow with its documented
	// errata, including the unimplemented reject parser state.
	TargetSDNet TargetKind = "sdnet"
	// TargetSDNetFixed is SDNet with every known erratum repaired.
	TargetSDNetFixed TargetKind = "sdnet-fixed"
	// TargetTofino models a Tofino-style fixed-pipeline ASIC: per-stage
	// SRAM/TCAM table placement, a PHV container budget, and the shipped
	// driver's newest-first ternary priority tie-break.
	TargetTofino TargetKind = "tofino"
	// TargetTofinoFixed is the Tofino-style flow with the driver quirk
	// repaired; the placement and PHV limits remain.
	TargetTofinoFixed TargetKind = "tofino-fixed"
	// TargetEBPF models an eBPF/XDP-style software offload: per-map-type
	// capacity charged against a memlock budget, a mask-set scan (no
	// TCAM) for ternary tables, a tail-call chain depth limit, latency
	// that follows program length, and the shipped drivers' LPM /0 miss
	// and map-full silent-update defects.
	TargetEBPF TargetKind = "ebpf"
	// TargetEBPFFixed is the offload flow with both driver defects
	// repaired; the memlock, mask-set, and tail-call limits remain.
	TargetEBPFFixed TargetKind = "ebpf-fixed"
	// TargetSmartNIC models a SmartNIC/DPU: embedded cores plus
	// accelerator tables with bimodal latency — exact/LPM hits resolve
	// on the fast path, while misses, wide or spilled ternary tables,
	// and malformed frames punt to the core complex through a bounded
	// punt queue — and the shipped driver's fail-open exception path
	// and punt-MTU truncation defects.
	TargetSmartNIC TargetKind = "smartnic"
	// TargetSmartNICFixed is the SmartNIC flow with both driver defects
	// repaired; the accelerator capacity, NIC TCAM geometry, punt-queue
	// depth, and punt MTU remain.
	TargetSmartNICFixed TargetKind = "smartnic-fixed"
)

// Options configures Open.
type Options struct {
	// Target selects the backend (default TargetReference).
	Target TargetKind
	// NumPorts and QueueDepth size the device (defaults: 4 ports, 128).
	NumPorts   int
	QueueDepth int
	// CallTimeout bounds each control-channel request (0 = no deadline).
	CallTimeout time.Duration
	// Retry, when MaxAttempts > 1, retries control-channel requests that
	// fail with transient (retryable) errors, with exponential backoff.
	Retry RetryPolicy
	// Baseline is installed through the control channel right after
	// boot, so workloads that shard by System (RunSuite, the fuzz
	// fleet) can describe their table state declaratively instead of
	// passing a factory callback.
	Baseline []Entry
}

// System is a booted device with NetDebug attached.
type System struct {
	dev  *device.Device
	tgt  target.Target
	agt  *core.Agent
	ctl  *core.Controller
	prog *ir.Program
}

// Open compiles P4 source, loads it onto the selected target, boots a
// device around it, and attaches the NetDebug agent and controller.
func Open(p4src string, opts Options) (*System, error) {
	prog, err := compile.Compile(p4src)
	if err != nil {
		return nil, fmt.Errorf("netdebug: compiling program: %w", err)
	}
	tgt, err := target.ForKind(string(opts.Target))
	if err != nil {
		return nil, fmt.Errorf("netdebug: %w", err)
	}
	if err := tgt.Load(prog); err != nil {
		return nil, fmt.Errorf("netdebug: loading onto %s: %w", tgt.Name(), err)
	}
	dev, err := device.New(device.Config{
		Target:     tgt,
		NumPorts:   opts.NumPorts,
		QueueDepth: opts.QueueDepth,
	})
	if err != nil {
		return nil, err
	}
	agt := core.NewAgent(dev)
	ctl := core.Connect(agt)
	if opts.CallTimeout > 0 {
		ctl.SetCallTimeout(opts.CallTimeout)
	}
	if opts.Retry.MaxAttempts > 1 {
		ctl.SetRetryPolicy(opts.Retry)
	}
	sys := &System{dev: dev, tgt: tgt, agt: agt, ctl: ctl, prog: prog}
	if len(opts.Baseline) > 0 {
		if err := ctl.InstallEntries(opts.Baseline); err != nil {
			sys.Close()
			return nil, fmt.Errorf("netdebug: installing baseline: %w", err)
		}
	}
	return sys, nil
}

// Close releases the control channel.
func (s *System) Close() error { return s.ctl.Close() }

// TargetName reports which backend is loaded.
func (s *System) TargetName() string { return s.tgt.Name() }

// Device exposes the underlying device model for advanced harnesses
// (external traffic, taps, faults).
func (s *System) Device() *device.Device { return s.dev }

// InstallEntry installs a table entry through the control channel.
func (s *System) InstallEntry(e Entry) error { return s.ctl.InstallEntry(e) }

// InstallEntries installs entries, stopping at the first error.
func (s *System) InstallEntries(entries []Entry) error { return s.ctl.InstallEntries(entries) }

// DeleteEntry removes a table entry through the control channel.
func (s *System) DeleteEntry(e Entry) error { return s.ctl.DeleteEntry(e) }

// ClearTable empties a table.
func (s *System) ClearTable(name string) error { return s.ctl.ClearTable(name) }

// Validate ships the test spec to the in-device agent, runs the generator
// and checker, and returns the collected report.
func (s *System) Validate(spec *TestSpec) (*Report, error) { return s.ctl.RunTest(spec) }

// Status reads the device's internal status registers.
func (s *System) Status() (map[string]uint64, error) { return s.ctl.Status() }

// Resources reports the target's estimated hardware resource usage.
func (s *System) Resources() (ResourceReport, error) {
	r, err := s.ctl.Resources()
	if err != nil {
		return ResourceReport{}, err
	}
	return ResourceReport{
		LUTs: r.LUTs, FFs: r.FFs, BRAMs: r.BRAMs,
		LUTPct: r.LUTPct, FFPct: r.FFPct, BRAMPct: r.BRAMPct,
		Stages: r.Stages, SRAMBlocks: r.SRAMBlocks,
		TCAMBlocks: r.TCAMBlocks, PHVBits: r.PHVBits,
		StagePct: r.StagePct, SRAMPct: r.SRAMPct,
		TCAMPct: r.TCAMPct, PHVPct: r.PHVPct,
		Insns: r.Insns, Maps: r.Maps, MapBytes: r.MapBytes,
		InsnPct: r.InsnPct, MemlockPct: r.MemlockPct,
		AccelTables: r.AccelTables, CoreTables: r.CoreTables,
		AccelEntries: r.AccelEntries, AccelBytes: r.AccelBytes,
		NICTCAMRows: r.NICTCAMRows, PuntQueueDepth: r.PuntQueueDepth,
		AccelPct: r.AccelPct, TablePunts: r.TablePunts,
	}, nil
}

// ResourceReport estimates hardware resource consumption: LUT/FF/BRAM
// on FPGA targets, stages/SRAM/TCAM/PHV on fixed-pipeline ASIC
// targets, program/map footprint on software-offload targets, and
// accelerator residency plus punt economics on SmartNIC/DPU targets.
type ResourceReport struct {
	LUTs, FFs, BRAMs                        int
	LUTPct, FFPct, BRAMPct                  float64
	Stages, SRAMBlocks, TCAMBlocks, PHVBits int
	StagePct, SRAMPct, TCAMPct, PHVPct      float64
	Insns, Maps, MapBytes                   int
	InsnPct, MemlockPct                     float64
	AccelTables, CoreTables                 int
	AccelEntries, AccelBytes                int
	NICTCAMRows, PuntQueueDepth             int
	AccelPct                                float64
	TablePunts                              map[string]uint64
}

// InjectFault injects a hardware fault into the device.
func (s *System) InjectFault(f Fault) error { return s.dev.InjectFault(f) }

// ClearFaults restores healthy hardware.
func (s *System) ClearFaults() { s.dev.ClearFaults() }

// Localize determines which pipeline element loses the probe packet,
// using NetDebug's internal injection and tap visibility.
func (s *System) Localize(probe []byte, ingressPort, expectPort int) Diagnosis {
	return core.LocalizeFault(s.dev, probe, ingressPort, expectPort)
}

// Layout computes field locations for a stack of header instances (by
// instance name, e.g. "ethernet", "ipv4") so generator sweeps and checker
// expectations can address fields by P4 name.
func (s *System) Layout(stack ...string) (*Layout, error) {
	l, err := core.LayoutFor(s.prog, stack...)
	if err != nil {
		return nil, err
	}
	return &Layout{l: l}, nil
}

// Layout maps "instance.field" names to packet bit locations.
type Layout struct {
	l *core.Layout
}

// Field returns the location of "instance.field".
func (l *Layout) Field(name string) (FieldLoc, error) { return l.l.Field(name) }

// MustField is Field for statically-known names.
func (l *Layout) MustField(name string) FieldLoc { return l.l.MustField(name) }

// NewExternalTester attaches an OSNT-style external tester to the
// system's device — the baseline that sees the device only through its
// network interfaces.
func (s *System) NewExternalTester() *ExternalTester {
	return &ExternalTester{t: tester.New(s.dev)}
}

// ExternalTester is the external network tester baseline.
type ExternalTester struct {
	t *tester.Tester
}

// Run transmits streams through the external ports and scores captures.
func (e *ExternalTester) Run(streams []ExternalStream) (*ExternalReport, error) {
	return e.t.Run(streams)
}

// RunSuite executes a validation suite — one Validate call per spec —
// across a pool of workers, each with its own freshly opened System.
// A System (its device, target, and engine) is not safe for concurrent
// use, so the suite shards by System: every worker independently opens
// p4src under opts (including installing opts.Baseline), exactly as
// Open would. workers <= 0 selects one worker per CPU.
//
// Reports are returned indexed like specs regardless of scheduling. The
// first error (by spec order) aborts the suite result; every worker's
// System is closed before RunSuite returns.
func RunSuite(p4src string, opts Options, specs []*TestSpec, workers int) ([]*Report, error) {
	return runSuite(func() (*System, error) { return Open(p4src, opts) }, specs, workers)
}

// RunSuiteWithFactory is RunSuite for callers whose per-worker system
// setup cannot be expressed as Options — newSystem is called once per
// worker and must return an independently opened and configured system.
//
// Deprecated: declare the table state in Options.Baseline and call
// RunSuite(p4src, opts, specs, workers) instead.
func RunSuiteWithFactory(newSystem func() (*System, error), specs []*TestSpec, workers int) ([]*Report, error) {
	return runSuite(newSystem, specs, workers)
}

func runSuite(newSystem func() (*System, error), specs []*TestSpec, workers int) ([]*Report, error) {
	if newSystem == nil {
		return nil, fmt.Errorf("netdebug: RunSuite needs a system factory")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	reports := make([]*Report, len(specs))
	errs := make([]error, len(specs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys, err := newSystem()
			if err != nil {
				for idx := range jobs {
					errs[idx] = fmt.Errorf("netdebug: opening suite system: %w", err)
				}
				return
			}
			defer sys.Close()
			for idx := range jobs {
				reports[idx], errs[idx] = sys.Validate(specs[idx])
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return reports, err
		}
	}
	return reports, nil
}

// SessionManager runs concurrent resident validation sessions over a
// pool of identically configured device/target systems, streaming each
// session's events as versioned JSONL in canonical order. It is the
// service core behind `netdebug -resident`.
type SessionManager struct {
	m *session.Manager
}

// NewSessionManager boots numHosts systems from cfg. If w is non-nil,
// every session's records are appended to it as JSONL; the stream is
// byte-deterministic for a given spec sequence regardless of numHosts.
func NewSessionManager(cfg SessionHostConfig, numHosts int, w io.Writer) (*SessionManager, error) {
	var rec *session.Recorder
	if w != nil {
		rec = session.NewRecorder(w)
	}
	m, err := session.NewManager(cfg, numHosts, rec)
	if err != nil {
		return nil, err
	}
	return &SessionManager{m: m}, nil
}

// Run executes one session, blocking until a pooled host is free.
func (s *SessionManager) Run(spec SessionSpec) (*SessionResult, error) { return s.m.Run(spec) }

// RunAll executes specs concurrently across the pool; results (and the
// recorded stream) are ordered by spec position, not completion.
func (s *SessionManager) RunAll(specs []SessionSpec) ([]*SessionResult, error) {
	return s.m.RunAll(specs)
}

// Drain stops admitting sessions and waits for in-flight ones; new runs
// fail with session.ErrDraining.
func (s *SessionManager) Drain() { s.m.Drain() }

// Close drains and releases the pool.
func (s *SessionManager) Close() error { return s.m.Close() }

// ReplaySession re-executes a recorded session stream on freshly booted
// systems and returns the re-recorded stream.
func ReplaySession(stream []byte) ([]byte, error) { return session.Replay(stream) }

// ReplayCheck replays a recorded stream and verifies the result is
// byte-identical — the determinism contract of docs/robustness.md.
func ReplayCheck(stream []byte) error { return session.ReplayCheck(stream) }

// ParseSessionStream decodes a recorded JSONL stream.
func ParseSessionStream(stream []byte) ([]SessionRecord, error) {
	return session.ParseStream(stream)
}

// VerifyResult is a formal-verification verdict.
type VerifyResult struct {
	Property string
	Holds    bool
	Detail   string
}

// VerifyOption tunes VerifyProgram.
type VerifyOption func(*verifyConfig)

type verifyConfig struct {
	workers    int
	solvePaths bool
}

// WithWorkers sets the verification worker count (minimum 1). The
// verify layer guarantees worker-count-independent results, so the
// parallelism is invisible beyond the speedup.
func WithWorkers(n int) VerifyOption {
	return func(c *verifyConfig) { c.workers = n }
}

// WithSolvePaths asks the explorer to solve a satisfying model for
// every feasible path, not just for property counterexamples — the
// mode the fuzzing fleet uses to synthesize path-targeted probes.
func WithSolvePaths() VerifyOption {
	return func(c *verifyConfig) { c.solvePaths = true }
}

// VerifyProgram runs the software formal-verification baseline (p4v
// style) over the program source: standard properties are checked by
// symbolic execution against the P4 specification semantics. It sees the
// program, not the hardware — programs whose deployed target is buggy
// still verify. By default path exploration and counterexample solving
// run on one worker per CPU; see WithWorkers and WithSolvePaths.
func VerifyProgram(p4src string, opts ...VerifyOption) ([]VerifyResult, error) {
	cfg := verifyConfig{workers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&cfg)
	}
	prog, err := compile.Compile(p4src)
	if err != nil {
		return nil, fmt.Errorf("netdebug: compiling program: %w", err)
	}
	props := []verify.Property{
		verify.PropRejectedDropped,
		verify.PropForwardedHasEgress,
	}
	if prog.Instance("ipv4") != nil {
		props = append(props, verify.PropMalformedIPv4Dropped("ipv4"))
	}
	var out []VerifyResult
	for _, p := range props {
		res, err := verify.Check(prog, p, verify.Options{Workers: cfg.workers, SolvePaths: cfg.solvePaths})
		if err != nil {
			return nil, err
		}
		out = append(out, VerifyResult{Property: p.Name, Holds: res.Holds, Detail: res.String()})
	}
	return out, nil
}

// VerifyProgramWorkers is VerifyProgram with an explicit verification
// worker count.
//
// Deprecated: call VerifyProgram(p4src, WithWorkers(n)).
func VerifyProgramWorkers(p4src string, workers int) ([]VerifyResult, error) {
	return VerifyProgram(p4src, WithWorkers(workers))
}

// FuzzOption tunes FuzzFleet.
type FuzzOption func(*fuzz.Options)

// WithFuzzTargets selects the backends under differential test
// (minimum three distinct kinds, so majority vote can name a culprit).
// The default is every shipped backend.
func WithFuzzTargets(kinds ...TargetKind) FuzzOption {
	return func(o *fuzz.Options) {
		o.Targets = o.Targets[:0]
		for _, k := range kinds {
			o.Targets = append(o.Targets, string(k))
		}
	}
}

// WithFuzzBaseline installs entries on every backend before fuzzing.
func WithFuzzBaseline(entries ...Entry) FuzzOption {
	return func(o *fuzz.Options) { o.Baseline = entries }
}

// WithFuzzSeeds replaces the default seed corpus.
func WithFuzzSeeds(frames ...[]byte) FuzzOption {
	return func(o *fuzz.Options) { o.Seeds = frames }
}

// WithFuzzBudget caps the total number of probes (default 1024).
func WithFuzzBudget(n int) FuzzOption {
	return func(o *fuzz.Options) { o.Budget = n }
}

// WithFuzzShards shards the fleet across n worker shards, each with a
// private set of backend devices. The report is identical at any shard
// count for a fixed seed.
func WithFuzzShards(n int) FuzzOption {
	return func(o *fuzz.Options) { o.Shards = n }
}

// WithFuzzSeed fixes the fuzzer's random seed (default 1). Two runs
// with the same source, options, and seed produce identical reports.
func WithFuzzSeed(seed int64) FuzzOption {
	return func(o *fuzz.Options) { o.Seed = seed }
}

// WithoutSolverProbes disables the solver-synthesized probe round,
// leaving pure coverage-guided mutation.
func WithoutSolverProbes() FuzzOption {
	return func(o *fuzz.Options) { o.DisableSolver = true }
}

// WithFuzzOccupancy preloads every table of every backend with up to n
// synthetic entries before fuzzing, approximating production table
// state — ask for a million flows and each table fills to capacity.
// The fill is deterministic, so the report stays shard-count
// independent.
func WithFuzzOccupancy(n int) FuzzOption {
	return func(o *fuzz.Options) { o.Occupancy = n }
}

// FuzzFleet runs the coverage-guided differential fuzzing fleet over
// p4src: every generated frame is injected through all selected
// backends in lockstep, behaviour signatures (taps, table hits,
// verdicts) guide mutation, solver-synthesized probes target unreached
// paths, and cross-backend disagreements are majority-voted to name
// the divergent backend. The report is deterministic for a fixed seed
// at any shard count (wall-clock fields aside). See docs/fuzzing.md.
func FuzzFleet(p4src string, opts ...FuzzOption) (*FuzzReport, error) {
	var o fuzz.Options
	for _, fn := range opts {
		fn(&o)
	}
	f, err := fuzz.New(p4src, o)
	if err != nil {
		return nil, err
	}
	return f.Run()
}
