
// IPv4 router with strict parser validation.
const bit<16> TYPE_IPV4 = 0x0800;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<3>  flags;
    bit<13> fragOffset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdrChecksum;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}

parser RouterParser(packet_in pkt, out headers_t hdr, inout standard_metadata_t std_meta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.version, hdr.ipv4.ihl) {
            (4w4, 4w5): accept;
            default: reject;   // malformed IPv4 must be dropped
        }
    }
}

control RouterIngress(inout headers_t hdr, inout standard_metadata_t std_meta) {
    action drop() {
        mark_to_drop();
    }
    action ipv4_forward(bit<48> dstMac, bit<9> port) {
        std_meta.egress_spec = port;
        hdr.ethernet.srcAddr = hdr.ethernet.dstAddr;
        hdr.ethernet.dstAddr = dstMac;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = {
            hdr.ipv4.dstAddr: lpm;
        }
        actions = {
            ipv4_forward;
            drop;
            NoAction;
        }
        size = 1024;
        default_action = drop();
    }
    apply {
        if (hdr.ipv4.isValid()) {
            if (hdr.ipv4.ttl == 0) {
                mark_to_drop();
            } else {
                ipv4_lpm.apply();
            }
        } else {
            mark_to_drop();
        }
    }
}

control RouterDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

V1Switch(RouterParser(), RouterIngress(), RouterDeparser()) main;

