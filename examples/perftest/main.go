// Perftest exercises the performance-testing use case: NetDebug measures
// throughput, packet rate, and pipeline latency of the data plane under
// test across a packet-size sweep, at line rate, from inside the device —
// and contrasts the numbers with what an external tester can see.
package main

import (
	"fmt"
	"log"

	"netdebug"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

func main() {
	sys, err := netdebug.Open(p4test.Router, netdebug.Options{Target: netdebug.TargetSDNet})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	dst := packet.MAC{2, 0, 0, 0, 0, 0xbb}
	if err := sys.InstallEntry(netdebug.Entry{
		Table:  "ipv4_lpm",
		Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []netdebug.Value{netdebug.ValueFromBytes(dst[:]), netdebug.NewValue(1, 9)},
	}); err != nil {
		log.Fatal(err)
	}

	src := packet.MAC{2, 0, 0, 0, 0, 0xaa}
	fmt.Println("NetDebug in-device performance test (line-rate injection, 2000 packets per size)")
	fmt.Printf("%8s %14s %12s %10s %10s %10s\n", "bytes", "throughput", "rate", "lat p50", "lat p99", "lat max")
	for _, size := range []int{64, 128, 256, 512, 1024, 1518} {
		payload := size - 42 // eth+ipv4+udp headers
		frame := packet.BuildUDPv4(src, dst, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, make([]byte, payload))
		rep, err := sys.Validate(&netdebug.TestSpec{
			Name: fmt.Sprintf("perf-%d", size),
			Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
				Name: "flood", Template: frame, Count: 2000, // line rate by default
			}}},
			Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
				Name: "fwd", Stream: "flood", ExpectPort: 1,
			}}},
		})
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Pass {
			log.Fatalf("size %d: %v", size, rep)
		}
		fmt.Printf("%8d %11.3f Gbps %9.3f Mpps %8dns %8dns %8dns\n",
			size, rep.OutBPS/1e9, rep.OutPPS/1e6, rep.LatP50Ns, rep.LatP99Ns, rep.LatMaxNs)
	}

	fmt.Println()
	fmt.Println("External tester view (includes wire serialization both ways)")
	ext := sys.NewExternalTester()
	frame := packet.BuildUDPv4(src, dst, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, make([]byte, 1024-42))
	rep, err := ext.Run([]netdebug.ExternalStream{{
		Name: "ext", Frame: frame, Count: 2000, TxPort: 0, RxPort: 1,
		SeqLoc: netdebug.FieldLoc{BitOff: (14 + 20 + 8) * 8, Bits: 32},
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  1024B frames: rx %.3f Gbps, RTT p50 %dns (pipeline latency not isolable externally)\n",
		rep.RxBPS/1e9, rep.RTTP50Ns)
}
