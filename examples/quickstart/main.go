// Quickstart: compile a tiny P4 program, boot a simulated device, install
// a table entry, and validate forwarding with NetDebug's in-device
// generator and checker.
package main

import (
	"fmt"
	"log"

	"netdebug"
	"netdebug/internal/packet"
)

// A minimal L2 forwarder: exact-match on destination MAC.
const program = `
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

struct headers_t {
    ethernet_t ethernet;
}

parser QParser(packet_in pkt, out headers_t hdr, inout standard_metadata_t sm) {
    state start {
        pkt.extract(hdr.ethernet);
        transition accept;
    }
}

control QIngress(inout headers_t hdr, inout standard_metadata_t sm) {
    action drop() { mark_to_drop(); }
    action forward(bit<9> port) { sm.egress_spec = port; }
    table mac_table {
        key = { hdr.ethernet.dstAddr: exact; }
        actions = { forward; drop; }
        default_action = drop();
    }
    apply { mac_table.apply(); }
}

control QDeparser(packet_out pkt, in headers_t hdr) {
    apply { pkt.emit(hdr.ethernet); }
}

V1Switch(QParser(), QIngress(), QDeparser()) main;
`

func main() {
	// 1. Compile the program and boot a device around the reference target.
	sys, err := netdebug.Open(program, netdebug.Options{Target: netdebug.TargetReference})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// 2. Install a forwarding entry over the control channel.
	dst := packet.MAC{2, 0, 0, 0, 0, 0xbb}
	if err := sys.InstallEntry(netdebug.Entry{
		Table:  "mac_table",
		Keys:   []netdebug.KeyValue{{Value: netdebug.ValueFromBytes(dst[:])}},
		Action: "forward",
		Args:   []netdebug.Value{netdebug.NewValue(2, 9)},
	}); err != nil {
		log.Fatal(err)
	}

	// 3. Build two test streams: one the table knows, one it must drop.
	src := packet.MAC{2, 0, 0, 0, 0, 0xaa}
	known := packet.BuildUDPv4(src, dst, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 0, 2}, 1000, 2000, []byte("hello"))
	unknown := packet.BuildUDPv4(src, packet.MAC{2, 9, 9, 9, 9, 9}, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 0, 2}, 1000, 2000, nil)

	report, err := sys.Validate(&netdebug.TestSpec{
		Name: "quickstart",
		Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{
			{Name: "known", Template: known, Count: 100, RatePPS: 1e6},
			{Name: "unknown", Template: unknown, Count: 100, RatePPS: 1e6},
		}},
		Check: netdebug.CheckSpec{Rules: []netdebug.Rule{
			{Name: "known-forwarded-to-2", Stream: "known", ExpectPort: 2},
			{Name: "unknown-dropped", Stream: "unknown", ExpectDrop: true},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the results.
	fmt.Println(report)
	for _, r := range report.Rules {
		fmt.Printf("  rule %-22s pass=%d fail=%d\n", r.Rule, r.Pass, r.Fail)
	}
	st, _ := sys.Status()
	fmt.Printf("internal status: parser.accept=%d mac_table.hit=%d\n",
		st["target.parser.accept"], st["target.table.mac_table.hit"])
	if !report.Pass {
		log.Fatal("quickstart validation failed")
	}
}
