// Comparison exercises the comparison use case: two alternative
// specifications of the same router — a monolithic single-table version
// and a split next-hop/egress version — are validated against each other
// by differential injection of identical test packets.
package main

import (
	"fmt"
	"log"

	"netdebug"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

func main() {
	gw := packet.MAC{2, 0, 0, 0, 0xff, 1}

	mono, err := netdebug.Open(p4test.Router, netdebug.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer mono.Close()
	if err := mono.InstallEntry(netdebug.Entry{
		Table:  "ipv4_lpm",
		Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []netdebug.Value{netdebug.ValueFromBytes(gw[:]), netdebug.NewValue(1, 9)},
	}); err != nil {
		log.Fatal(err)
	}

	split, err := netdebug.Open(p4test.RouterSplit, netdebug.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer split.Close()
	if err := split.InstallEntries([]netdebug.Entry{
		{
			Table:  "lpm_nexthop",
			Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
			Action: "set_nexthop",
			Args:   []netdebug.Value{netdebug.NewValue(7, 16)},
		},
		{
			Table:  "nexthop_egress",
			Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(7, 16)}},
			Action: "set_egress",
			Args:   []netdebug.Value{netdebug.ValueFromBytes(gw[:]), netdebug.NewValue(1, 9)},
		},
	}); err != nil {
		log.Fatal(err)
	}

	src := packet.MAC{2, 0, 0, 0, 0, 0xaa}
	dst := packet.MAC{2, 0, 0, 0, 0, 0xbb}
	probes := 0
	divergences := 0
	for i := 0; i < 200; i++ {
		dstIP := packet.IPv4Addr{10, 0, byte(i % 256), byte(3 * i % 256)}
		if i%10 == 9 {
			dstIP = packet.IPv4Addr{192, 168, 0, byte(i)} // off-route: both must drop
		}
		frame := packet.BuildUDPv4(src, dst, packet.IPv4Addr{10, 0, 0, 1}, dstIP, uint16(5000+i), 53, []byte{byte(i)})
		if i%17 == 16 {
			frame[14] = 0x65 // malformed: both must reject
		}
		probes++

		ra := mono.Device().InjectInternal(frame, 0, mono.Device().Now(), false)
		rb := split.Device().InjectInternal(frame, 0, split.Device().Now(), false)
		same := ra.Dropped() == rb.Dropped()
		if same && !ra.Dropped() {
			same = ra.Outputs[0].Port == rb.Outputs[0].Port &&
				string(ra.Outputs[0].Data) == string(rb.Outputs[0].Data)
		}
		if !same {
			divergences++
			fmt.Printf("probe %3d DIVERGES: mono dropped=%v split dropped=%v\n",
				i, ra.Dropped(), rb.Dropped())
		}
	}
	fmt.Printf("differential comparison: %d probes, %d divergences\n", probes, divergences)
	if divergences != 0 {
		log.Fatal("specifications are not equivalent")
	}
	fmt.Println("the two specifications of the router are behaviourally equivalent")
}
