// Comparison exercises the comparison use case along both axes:
//
//   - two alternative specifications of the same router — a monolithic
//     single-table version and a split next-hop/egress version — are
//     validated against each other by differential injection, and
//   - one specification deployed on five hardware models (reference,
//     SDNet, Tofino, an eBPF/XDP-style software offload, and a
//     SmartNIC/DPU, each with fixed errata) is validated across
//     backends, then the shipped SDNet flow is shown diverging exactly
//     on malformed input, a multi-way split localizes the eBPF LPM
//     driver defect without a reference model, and a 2-2 tie between
//     the two fail-open flows is resolved against the reference anchor.
package main

import (
	"fmt"
	"log"

	"netdebug"
	"netdebug/internal/device"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
	"netdebug/internal/scenario"
)

func main() {
	gw := packet.MAC{2, 0, 0, 0, 0xff, 1}

	mono, err := netdebug.Open(p4test.Router, netdebug.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer mono.Close()
	if err := mono.InstallEntry(netdebug.Entry{
		Table:  "ipv4_lpm",
		Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []netdebug.Value{netdebug.ValueFromBytes(gw[:]), netdebug.NewValue(1, 9)},
	}); err != nil {
		log.Fatal(err)
	}

	split, err := netdebug.Open(p4test.RouterSplit, netdebug.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer split.Close()
	if err := split.InstallEntries([]netdebug.Entry{
		{
			Table:  "lpm_nexthop",
			Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
			Action: "set_nexthop",
			Args:   []netdebug.Value{netdebug.NewValue(7, 16)},
		},
		{
			Table:  "nexthop_egress",
			Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(7, 16)}},
			Action: "set_egress",
			Args:   []netdebug.Value{netdebug.ValueFromBytes(gw[:]), netdebug.NewValue(1, 9)},
		},
	}); err != nil {
		log.Fatal(err)
	}

	src := packet.MAC{2, 0, 0, 0, 0, 0xaa}
	dst := packet.MAC{2, 0, 0, 0, 0, 0xbb}
	probes := 0
	divergences := 0
	for i := 0; i < 200; i++ {
		dstIP := packet.IPv4Addr{10, 0, byte(i % 256), byte(3 * i % 256)}
		if i%10 == 9 {
			dstIP = packet.IPv4Addr{192, 168, 0, byte(i)} // off-route: both must drop
		}
		frame := packet.BuildUDPv4(src, dst, packet.IPv4Addr{10, 0, 0, 1}, dstIP, uint16(5000+i), 53, []byte{byte(i)})
		if i%17 == 16 {
			frame[14] = 0x65 // malformed: both must reject
		}
		probes++

		ra := mono.Device().InjectInternal(frame, 0, mono.Device().Now(), false)
		rb := split.Device().InjectInternal(frame, 0, split.Device().Now(), false)
		same := ra.Dropped() == rb.Dropped()
		if same && !ra.Dropped() {
			same = ra.Outputs[0].Port == rb.Outputs[0].Port &&
				string(ra.Outputs[0].Data) == string(rb.Outputs[0].Data)
		}
		if !same {
			divergences++
			fmt.Printf("probe %3d DIVERGES: mono dropped=%v split dropped=%v\n",
				i, ra.Dropped(), rb.Dropped())
		}
	}
	fmt.Printf("differential comparison: %d probes, %d divergences\n", probes, divergences)
	if divergences != 0 {
		log.Fatal("specifications are not equivalent")
	}
	fmt.Println("the two specifications of the router are behaviourally equivalent")

	compareBackends()
}

// compareBackends deploys the monolithic router on every hardware model
// and differentially injects the same probe set: the erratum-free
// backends must agree packet-for-packet, while the shipped SDNet flow
// forwards malformed packets the others reject.
func compareBackends() {
	open := func(kind netdebug.TargetKind) *netdebug.System {
		sys, err := netdebug.Open(p4test.Router, netdebug.Options{Target: kind})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.InstallEntry(netdebug.Entry{
			Table:  "ipv4_lpm",
			Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
			Action: "ipv4_forward",
			Args:   []netdebug.Value{netdebug.ValueFromBytes([]byte{2, 0, 0, 0, 0xff, 1}), netdebug.NewValue(1, 9)},
		}); err != nil {
			log.Fatal(err)
		}
		return sys
	}
	ref := open(netdebug.TargetReference)
	defer ref.Close()
	fixed := map[netdebug.TargetKind]*netdebug.System{
		netdebug.TargetSDNetFixed:    open(netdebug.TargetSDNetFixed),
		netdebug.TargetTofinoFixed:   open(netdebug.TargetTofinoFixed),
		netdebug.TargetEBPFFixed:     open(netdebug.TargetEBPFFixed),
		netdebug.TargetSmartNICFixed: open(netdebug.TargetSmartNICFixed),
	}
	src := packet.MAC{2, 0, 0, 0, 0, 0xaa}
	dst := packet.MAC{2, 0, 0, 0, 0, 0xbb}
	divergences := 0
	for i := 0; i < 200; i++ {
		frame := packet.BuildUDPv4(src, dst, packet.IPv4Addr{10, 0, 0, 1},
			packet.IPv4Addr{10, 0, byte(i % 256), 9}, uint16(6000+i), 53, []byte{byte(i)})
		if i%9 == 8 {
			frame[14] = 0x65 // malformed: every conforming backend rejects
		}
		ra := ref.Device().InjectInternal(frame, 0, ref.Device().Now(), false)
		refDropped := ra.Dropped()
		refPort := uint64(0)
		if !refDropped {
			refPort = ra.Outputs[0].Port
		}
		for kind, sys := range fixed {
			rb := sys.Device().InjectInternal(frame, 0, sys.Device().Now(), false)
			if rb.Dropped() != refDropped || (!refDropped && rb.Outputs[0].Port != refPort) {
				divergences++
				fmt.Printf("probe %3d DIVERGES on %s\n", i, kind)
			}
		}
	}
	for _, sys := range fixed {
		sys.Close()
	}
	fmt.Printf("cross-backend comparison: 200 probes x 4 fixed backends, %d divergences\n", divergences)
	if divergences != 0 {
		log.Fatal("erratum-free backends are not equivalent")
	}

	// The shipped SDNet flow, by contrast, forwards what the others drop.
	shipped := open(netdebug.TargetSDNet)
	defer shipped.Close()
	bad := packet.BuildUDPv4(src, dst, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, nil)
	bad[14] = 0x65
	ra := ref.Device().InjectInternal(bad, 0, ref.Device().Now(), false)
	rb := shipped.Device().InjectInternal(bad, 0, shipped.Device().Now(), false)
	if ra.Dropped() && !rb.Dropped() {
		fmt.Println("shipped sdnet flow diverges on malformed input (reject erratum) — comparison localizes the buggy backend")
	} else {
		log.Fatal("expected the shipped sdnet flow to forward malformed input")
	}

	threeWaySplit()
}

// threeWaySplit localizes a backend defect without any reference model:
// the shipped flows are deployed side by side with a /0 default route,
// and the backend diverging from the agreement of the others is the
// buggy one — here the eBPF LPM-trie driver, whose /0 entries never
// match.
func threeWaySplit() {
	open := func(kind netdebug.TargetKind) *netdebug.System {
		sys, err := netdebug.Open(p4test.Router, netdebug.Options{Target: kind})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.InstallEntry(netdebug.Entry{
			Table:  "ipv4_lpm",
			Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0, 32), PrefixLen: 0}},
			Action: "ipv4_forward",
			Args:   []netdebug.Value{netdebug.ValueFromBytes([]byte{2, 0, 0, 0, 0xff, 1}), netdebug.NewValue(2, 9)},
		}); err != nil {
			log.Fatal(err)
		}
		return sys
	}
	systems := map[string]*netdebug.System{
		"reference": open(netdebug.TargetReference),
		"sdnet":     open(netdebug.TargetSDNet),
		"tofino":    open(netdebug.TargetTofino),
		"ebpf":      open(netdebug.TargetEBPF),
		"smartnic":  open(netdebug.TargetSmartNIC),
	}
	devs := make(map[string]*device.Device, len(systems))
	for name, sys := range systems {
		defer sys.Close()
		devs[name] = sys.Device()
	}
	src := packet.MAC{2, 0, 0, 0, 0, 0xaa}
	dst := packet.MAC{2, 0, 0, 0, 0, 0xbb}
	probe := packet.BuildUDPv4(src, dst, packet.IPv4Addr{10, 0, 0, 1},
		packet.IPv4Addr{172, 16, 0, 7}, 7000, 53, nil) // reachable only via /0
	odd := scenario.OddOneOut(devs, probe)
	if len(odd) == 1 && odd[0] == "ebpf" {
		fmt.Println("four-way split on default-route traffic: reference, sdnet, tofino, and smartnic forward;" +
			" ebpf diverges — the /0 LPM driver defect is localized by majority vote")
	} else {
		log.Fatalf("unexpected split: %v diverge, want exactly [ebpf]", odd)
	}

	anchoredTieBreak()
}

// anchoredTieBreak shows the split strict majority cannot settle: on a
// malformed frame an even voter subset divides 2-2 — reference and
// tofino drop it, while the shipped SDNet flow and the SmartNIC
// exception path both fail open and forward byte-identical output. The
// vote re-scores the tie against the reference anchor (corroborated by
// tofino) and names the failing pair.
func anchoredTieBreak() {
	open := func(kind netdebug.TargetKind) *netdebug.System {
		sys, err := netdebug.Open(p4test.Router, netdebug.Options{Target: kind})
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.InstallEntry(netdebug.Entry{
			Table:  "ipv4_lpm",
			Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
			Action: "ipv4_forward",
			Args:   []netdebug.Value{netdebug.ValueFromBytes([]byte{2, 0, 0, 0, 0xff, 1}), netdebug.NewValue(1, 9)},
		}); err != nil {
			log.Fatal(err)
		}
		return sys
	}
	systems := map[string]*netdebug.System{
		"reference": open(netdebug.TargetReference),
		"tofino":    open(netdebug.TargetTofino),
		"sdnet":     open(netdebug.TargetSDNet),
		"smartnic":  open(netdebug.TargetSmartNIC),
	}
	devs := make(map[string]*device.Device, len(systems))
	for name, sys := range systems {
		defer sys.Close()
		devs[name] = sys.Device()
	}
	src := packet.MAC{2, 0, 0, 0, 0, 0xaa}
	dst := packet.MAC{2, 0, 0, 0, 0, 0xbb}
	bad := packet.BuildUDPv4(src, dst, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, nil)
	bad[14] = 0x65 // malformed: the conforming backends reject it
	odd := scenario.OddOneOut(devs, bad)
	if len(odd) == 2 && odd[0] == "sdnet" && odd[1] == "smartnic" {
		fmt.Println("2-2 tie on malformed input resolved against the reference anchor:" +
			" sdnet and the smartnic exception path fail open together")
	} else {
		log.Fatalf("unexpected anchored vote: %v diverge, want [sdnet smartnic]", odd)
	}
}
