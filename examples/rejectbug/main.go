// Rejectbug reproduces the paper's §4 case study: using NetDebug we
// discover that the SDNet flow does not implement the P4 reject parser
// state, so every packet that should be dropped by the parser is sent to
// the next hop — a severe bug invisible to software formal verification.
package main

import (
	"fmt"
	"log"

	"netdebug"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

func main() {
	fmt.Println("== Step 1: software formal verification of the router program ==")
	results, err := netdebug.VerifyProgram(p4test.Router)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("  %s\n", r.Detail)
	}
	fmt.Println("The program is correct: rejected packets are always dropped.")
	fmt.Println()

	// The malformed probe: IPv4 version 6 — the parser must reject it.
	src := packet.MAC{2, 0, 0, 0, 0, 0xaa}
	dst := packet.MAC{2, 0, 0, 0, 0, 0xbb}
	bad := packet.BuildUDPv4(src, dst, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, nil)
	bad[14] = 0x65

	spec := &netdebug.TestSpec{
		Name: "reject-validation",
		Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
			Name: "malformed", Template: bad, Count: 100, RatePPS: 1e6,
		}}},
		Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
			Name: "malformed-dropped", Stream: "malformed", ExpectDrop: true,
		}}},
	}
	route := netdebug.Entry{
		Table:  "ipv4_lpm",
		Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []netdebug.Value{netdebug.ValueFromBytes(dst[:]), netdebug.NewValue(1, 9)},
	}

	run := func(kind netdebug.TargetKind) *netdebug.Report {
		sys, err := netdebug.Open(p4test.Router, netdebug.Options{Target: kind})
		if err != nil {
			log.Fatal(err)
		}
		defer sys.Close()
		if err := sys.InstallEntry(route); err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Validate(spec)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	fmt.Println("== Step 2: NetDebug validation on the reference target ==")
	rep := run(netdebug.TargetReference)
	fmt.Printf("  %s\n\n", rep)

	fmt.Println("== Step 3: NetDebug validation on the SDNet-compiled hardware ==")
	rep = run(netdebug.TargetSDNet)
	fmt.Printf("  %s\n", rep)
	for _, r := range rep.Rules {
		for _, s := range r.Samples {
			fmt.Printf("  sample: %s\n", s)
		}
	}
	if rep.Pass {
		log.Fatal("expected the erratum to be detected")
	}
	fmt.Println()
	fmt.Println("NetDebug immediately detected the severe bug: the reject state is")
	fmt.Println("not implemented by SDNet, so malformed packets reach the next hop.")
	fmt.Println("Formal verification of the data plane program could not see it.")

	fmt.Println()
	fmt.Println("== Step 4: after the compiler fix ==")
	rep = run(netdebug.TargetSDNetFixed)
	fmt.Printf("  %s\n", rep)
}
