package netdebug_test

import (
	"fmt"
	"testing"

	"netdebug"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

// suiteSpecs builds n independent ExpectPort specs with count packets
// each — shared by the RunSuite tests and BenchmarkSuiteValidation.
func suiteSpecs(n, count int) []*netdebug.TestSpec {
	specs := make([]*netdebug.TestSpec, n)
	for i := range specs {
		frame := packet.BuildUDPv4(srcMAC, gwMAC, srcIP,
			packet.IPv4Addr{10, 0, byte(i), 9}, uint16(4000+i), 53, make([]byte, 26))
		specs[i] = &netdebug.TestSpec{
			Name: fmt.Sprintf("suite-%d", i),
			Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
				Name: "probe", Template: frame, Count: count, RatePPS: 1e6,
			}}},
			Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
				Name: "fwd", Stream: "probe", ExpectPort: 1,
			}}},
		}
	}
	return specs
}

// routerSuiteOptions declares an sdnet-target router with the 10/8
// route as a baseline — the per-worker System configuration used by
// RunSuite tests and benchmarks.
func routerSuiteOptions() netdebug.Options {
	return netdebug.Options{
		Target: netdebug.TargetSDNet,
		Baseline: []netdebug.Entry{{
			Table:  "ipv4_lpm",
			Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
			Action: "ipv4_forward",
			Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(1, 9)},
		}},
	}
}

// routerSuiteFactory is routerSuiteOptions expressed as a system
// factory, for the deprecated RunSuiteWithFactory path.
func routerSuiteFactory() (*netdebug.System, error) {
	return netdebug.Open(p4test.Router, routerSuiteOptions())
}

func TestRunSuiteParallelMatchesSequential(t *testing.T) {
	specs := suiteSpecs(12, 20)
	seq, err := netdebug.RunSuite(p4test.Router, routerSuiteOptions(), specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := netdebug.RunSuite(p4test.Router, routerSuiteOptions(), specs, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(specs) || len(par) != len(specs) {
		t.Fatalf("report counts: %d %d", len(seq), len(par))
	}
	for i := range specs {
		if seq[i] == nil || par[i] == nil {
			t.Fatalf("spec %d: missing report", i)
		}
		if !seq[i].Pass || !par[i].Pass {
			t.Fatalf("spec %d failed: seq=%v par=%v", i, seq[i], par[i])
		}
		if seq[i].Injected != par[i].Injected || seq[i].Forwarded != par[i].Forwarded {
			t.Fatalf("spec %d diverges: seq=%v par=%v", i, seq[i], par[i])
		}
	}
}

// TestRunSuiteFactoryEquivalence pins the deprecation contract: the old
// factory-shaped entry point and the new declarative one produce
// identical suite results for the same configuration.
func TestRunSuiteFactoryEquivalence(t *testing.T) {
	specs := suiteSpecs(8, 20)
	byOpts, err := netdebug.RunSuite(p4test.Router, routerSuiteOptions(), specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	byFactory, err := netdebug.RunSuiteWithFactory(routerSuiteFactory, specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		a, b := byOpts[i], byFactory[i]
		if a.Pass != b.Pass || a.Injected != b.Injected || a.Forwarded != b.Forwarded {
			t.Fatalf("spec %d: option-form and factory-form reports diverge: %v vs %v", i, a, b)
		}
	}
}

func TestRunSuitePropagatesErrors(t *testing.T) {
	boom := func() (*netdebug.System, error) { return nil, fmt.Errorf("no hardware") }
	if _, err := netdebug.RunSuiteWithFactory(boom, suiteSpecs(3, 20), 2); err == nil {
		t.Fatal("factory errors must surface")
	}
	if _, err := netdebug.RunSuiteWithFactory(nil, suiteSpecs(1, 20), 1); err == nil {
		t.Fatal("nil factory must error")
	}
	if _, err := netdebug.RunSuite("not p4", netdebug.Options{}, suiteSpecs(1, 20), 1); err == nil {
		t.Fatal("unparsable source must surface from every worker open")
	}
	bad := routerSuiteOptions()
	bad.Baseline[0].Table = "no_such_table"
	if _, err := netdebug.RunSuite(p4test.Router, bad, suiteSpecs(1, 20), 1); err == nil {
		t.Fatal("bad baseline entry must surface")
	}
}
