package netdebug_test

import (
	"fmt"
	"testing"

	"netdebug"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

// suiteSpecs builds n independent ExpectPort specs with count packets
// each — shared by the RunSuite tests and BenchmarkSuiteValidation.
func suiteSpecs(n, count int) []*netdebug.TestSpec {
	specs := make([]*netdebug.TestSpec, n)
	for i := range specs {
		frame := packet.BuildUDPv4(srcMAC, gwMAC, srcIP,
			packet.IPv4Addr{10, 0, byte(i), 9}, uint16(4000+i), 53, make([]byte, 26))
		specs[i] = &netdebug.TestSpec{
			Name: fmt.Sprintf("suite-%d", i),
			Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
				Name: "probe", Template: frame, Count: count, RatePPS: 1e6,
			}}},
			Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
				Name: "fwd", Stream: "probe", ExpectPort: 1,
			}}},
		}
	}
	return specs
}

// routerSuiteFactory opens an sdnet-target router with the 10/8 route,
// the per-worker System used by RunSuite tests and benchmarks.
func routerSuiteFactory() (*netdebug.System, error) {
	sys, err := netdebug.Open(p4test.Router, netdebug.Options{Target: netdebug.TargetSDNet})
	if err != nil {
		return nil, err
	}
	err = sys.InstallEntry(netdebug.Entry{
		Table:  "ipv4_lpm",
		Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(1, 9)},
	})
	if err != nil {
		sys.Close()
		return nil, err
	}
	return sys, nil
}

func TestRunSuiteParallelMatchesSequential(t *testing.T) {
	factory := routerSuiteFactory
	specs := suiteSpecs(12, 20)
	seq, err := netdebug.RunSuite(factory, specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := netdebug.RunSuite(factory, specs, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(specs) || len(par) != len(specs) {
		t.Fatalf("report counts: %d %d", len(seq), len(par))
	}
	for i := range specs {
		if seq[i] == nil || par[i] == nil {
			t.Fatalf("spec %d: missing report", i)
		}
		if !seq[i].Pass || !par[i].Pass {
			t.Fatalf("spec %d failed: seq=%v par=%v", i, seq[i], par[i])
		}
		if seq[i].Injected != par[i].Injected || seq[i].Forwarded != par[i].Forwarded {
			t.Fatalf("spec %d diverges: seq=%v par=%v", i, seq[i], par[i])
		}
	}
}

func TestRunSuitePropagatesErrors(t *testing.T) {
	boom := func() (*netdebug.System, error) { return nil, fmt.Errorf("no hardware") }
	if _, err := netdebug.RunSuite(boom, suiteSpecs(3, 20), 2); err == nil {
		t.Fatal("factory errors must surface")
	}
	if _, err := netdebug.RunSuite(nil, suiteSpecs(1, 20), 1); err == nil {
		t.Fatal("nil factory must error")
	}
}
