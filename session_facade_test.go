package netdebug_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"netdebug"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

// TestDeleteEntryFacade: deleting the only route flips forwarding back
// to the default drop action, through a client configured with the
// timeout/retry options.
func TestDeleteEntryFacade(t *testing.T) {
	sys, err := netdebug.Open(p4test.Router, netdebug.Options{
		CallTimeout: time.Second,
		Retry:       netdebug.RetryPolicy{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	route := netdebug.Entry{
		Table:  "ipv4_lpm",
		Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(1, 9)},
	}
	if err := sys.InstallEntry(route); err != nil {
		t.Fatal(err)
	}
	frame := packet.BuildUDPv4(srcMAC, gwMAC, srcIP, dstIP, 4000, 53, make([]byte, 26))
	spec := func(name string, drop bool) *netdebug.TestSpec {
		r := netdebug.Rule{Name: "verdict", Stream: "probe"}
		if drop {
			r.ExpectDrop = true
		} else {
			r.ExpectPort = 1
		}
		return &netdebug.TestSpec{
			Name:  name,
			Gen:   netdebug.GenSpec{Streams: []netdebug.StreamSpec{{Name: "probe", Template: frame, Count: 10, RatePPS: 1e6}}},
			Check: netdebug.CheckSpec{Rules: []netdebug.Rule{r}},
		}
	}
	if rep, err := sys.Validate(spec("with-route", false)); err != nil || !rep.Pass {
		t.Fatalf("with route: %v %v", rep, err)
	}
	if err := sys.DeleteEntry(route); err != nil {
		t.Fatal(err)
	}
	if rep, err := sys.Validate(spec("without-route", true)); err != nil || !rep.Pass {
		t.Fatalf("after delete: %v %v", rep, err)
	}
	if err := sys.DeleteEntry(route); err == nil {
		t.Fatal("double delete succeeded")
	}
}

// TestSessionManagerFacade drives the resident session surface through
// the public API: a recorded churn+fault session parses, degrades
// gracefully, and replays byte-identically.
func TestSessionManagerFacade(t *testing.T) {
	var buf bytes.Buffer
	mgr, err := netdebug.NewSessionManager(netdebug.SessionHostConfig{
		Source: p4test.Router,
		Target: "reference",
		Baseline: []netdebug.Entry{{
			Table:  "ipv4_lpm",
			Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
			Action: "ipv4_forward",
			Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(1, 9)},
		}},
		CallTimeout: time.Second,
		Retry:       netdebug.RetrySpec{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: 4 * time.Microsecond},
	}, 2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	frame := packet.BuildUDPv4(srcMAC, gwMAC, srcIP, dstIP, 4000, 53, make([]byte, 26))
	specs := []netdebug.SessionSpec{
		{
			Name: "steady",
			Spec: netdebug.TestSpec{
				Name:  "fwd",
				Gen:   netdebug.GenSpec{Streams: []netdebug.StreamSpec{{Name: "probe", Template: frame, Count: 20, RatePPS: 1e6}}},
				Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{Name: "fwd", Stream: "probe", ExpectPort: 1}}},
			},
			Rounds:   2,
			Churn:    &netdebug.ChurnSpec{Table: "ipv4_lpm", Installs: 3, Deletes: 1},
			SLOBound: time.Millisecond,
		},
		{
			Name: "faulted",
			Spec: netdebug.TestSpec{
				Name:  "fwd",
				Gen:   netdebug.GenSpec{Streams: []netdebug.StreamSpec{{Name: "probe", Template: frame, Count: 20, RatePPS: 1e6}}},
				Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{Name: "fwd", Stream: "probe", ExpectPort: 1}}},
			},
			Rounds: 2,
			Plan: netdebug.FaultPlan{Events: []netdebug.FaultEvent{
				{At: 0, Kind: netdebug.FaultPlanMapFull, Table: "ipv4_lpm"},
			}},
			Churn: &netdebug.ChurnSpec{Table: "ipv4_lpm", Installs: 2, Deletes: 1},
		},
	}
	results, err := mgr.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Pass {
		t.Fatalf("steady session failed: %+v", results[0])
	}
	if results[1].Pass {
		t.Fatal("map-full session passed despite denied churn")
	}
	mgr.Drain()
	if _, err := mgr.Run(specs[0]); !errors.Is(err, netdebug.ErrDraining) {
		t.Fatalf("drained manager: got %v, want ErrDraining", err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := netdebug.ParseSessionStream(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].Session != "steady" {
		t.Fatalf("stream shape: %d records", len(recs))
	}
	if err := netdebug.ReplayCheck(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}
