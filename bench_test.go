// Benchmarks regenerating the paper's evaluation artifacts. Each bench
// corresponds to one row of the experiment index in DESIGN.md:
//
//	BenchmarkFigure2CapabilityMatrix  Figure 2
//	BenchmarkE1RejectBugDetection     §4 case study
//	BenchmarkT1Performance*           performance testing sweep
//	BenchmarkT2Resources              resources quantification
//	BenchmarkT3Localization           fault localization
//	BenchmarkT4Comparison             comparison use case
//
// plus ablations for the design choices called out in DESIGN.md §7.
package netdebug_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"netdebug"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
	"netdebug/internal/scenario"
	"netdebug/internal/target"
	"netdebug/internal/tester"
)

var (
	srcMAC = packet.MAC{2, 0, 0, 0, 0, 0xaa}
	gwMAC  = packet.MAC{2, 0, 0, 0, 0xff, 1}
	srcIP  = packet.IPv4Addr{10, 0, 0, 1}
	dstIP  = packet.IPv4Addr{10, 0, 1, 2}
)

func openRouter(b *testing.B, kind netdebug.TargetKind) *netdebug.System {
	b.Helper()
	sys, err := netdebug.Open(p4test.Router, netdebug.Options{Target: kind})
	if err != nil {
		b.Fatal(err)
	}
	err = sys.InstallEntry(netdebug.Entry{
		Table:  "ipv4_lpm",
		Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(1, 9)},
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func frameOf(size int) []byte {
	return packet.BuildUDPv4(srcMAC, gwMAC, srcIP, dstIP, 4000, 53, make([]byte, size-42))
}

// BenchmarkFigure2CapabilityMatrix regenerates the full Figure 2 scenario
// suite and matrix.
func BenchmarkFigure2CapabilityMatrix(b *testing.B) {
	scenarios := scenario.All()
	for i := 0; i < b.N; i++ {
		m := scenario.BuildMatrix(scenarios)
		if m.Cells[scenario.Compiler][scenario.ToolNetDebug] != scenario.Full {
			b.Fatal("matrix shape changed")
		}
	}
}

// BenchmarkFigure2CapabilityMatrixParallel regenerates the Figure 2
// suite on the sharded worker pool (one device set per worker). On an
// N-core machine this scales close to Nx over the sequential benchmark
// above; compare the two entries in BENCH_1.json.
func BenchmarkFigure2CapabilityMatrixParallel(b *testing.B) {
	scenarios := scenario.All()
	for _, workers := range []int{2, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := scenario.BuildMatrixParallel(scenarios, workers)
				if m.Cells[scenario.Compiler][scenario.ToolNetDebug] != scenario.Full {
					b.Fatal("matrix shape changed")
				}
			}
		})
	}
}

// BenchmarkSuiteValidation runs a T1-style 16-spec validation suite
// through netdebug.RunSuite sequentially and across workers, one System
// (device + target + engine) per worker. Options and specs are shared
// with the RunSuite correctness tests (suite_test.go).
func BenchmarkSuiteValidation(b *testing.B) {
	opts := routerSuiteOptions()
	specs := suiteSpecs(16, 500)
	workerCounts := []int{1, 8}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 8 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reps, err := netdebug.RunSuite(p4test.Router, opts, specs, workers)
				if err != nil {
					b.Fatal(err)
				}
				for _, rep := range reps {
					if !rep.Pass {
						b.Fatalf("suite run failed: %v", rep)
					}
				}
			}
		})
	}
}

// BenchmarkE1RejectBugDetection runs the §4 case study: the reject-drop
// validation against the sdnet target, which must fail (bug detected).
func BenchmarkE1RejectBugDetection(b *testing.B) {
	sys := openRouter(b, netdebug.TargetSDNet)
	defer sys.Close()
	bad := frameOf(68)
	bad[14] = 0x65
	spec := &netdebug.TestSpec{
		Name: "e1",
		Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
			Name: "malformed", Template: bad, Count: 100, RatePPS: 1e6,
		}}},
		Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
			Name: "malformed-dropped", Stream: "malformed", ExpectDrop: true,
		}}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sys.Validate(spec)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Pass {
			b.Fatal("erratum not detected")
		}
	}
}

// BenchmarkT1Performance sweeps packet sizes through the in-device
// performance test (one sub-bench per frame size, as in the T1 table).
func BenchmarkT1Performance(b *testing.B) {
	for _, size := range []int{64, 256, 1518} {
		b.Run(fmt.Sprintf("frame%d", size), func(b *testing.B) {
			sys := openRouter(b, netdebug.TargetSDNet)
			defer sys.Close()
			spec := &netdebug.TestSpec{
				Name: "t1",
				Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
					Name: "flood", Template: frameOf(size), Count: 1000,
				}}},
				Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
					Name: "fwd", Stream: "flood", ExpectPort: 1,
				}}},
			}
			b.SetBytes(int64(size * 1000))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := sys.Validate(spec)
				if err != nil || !rep.Pass {
					b.Fatalf("%v %v", rep, err)
				}
			}
		})
	}
}

// BenchmarkT2Resources estimates hardware resources for every sample
// program (the T2 table).
func BenchmarkT2Resources(b *testing.B) {
	progs := []string{p4test.Reflector, p4test.L2Switch, p4test.Router, p4test.RouterSplit, p4test.Firewall}
	compiled := make([]*struct {
		src string
	}, 0)
	_ = compiled
	for i := 0; i < b.N; i++ {
		for _, src := range progs {
			prog, err := compile.Compile(src)
			if err != nil {
				b.Fatal(err)
			}
			sd := target.NewSDNet(target.DefaultErrata())
			if err := sd.Load(prog); err != nil {
				b.Fatal(err)
			}
			if sd.Resources().LUTs <= 0 {
				b.Fatal("no estimate")
			}
		}
	}
}

// BenchmarkT3Localization runs the fault localization procedure against
// an injected egress fault.
func BenchmarkT3Localization(b *testing.B) {
	probe := frameOf(68)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := openRouter(b, netdebug.TargetReference)
		sys.InjectFault(netdebug.Fault{Kind: netdebug.FaultQueueStuck, Port: 1})
		b.StartTimer()
		diag := sys.Localize(probe, 0, 1)
		if diag.Stage != "egress port 1" {
			b.Fatalf("diagnosis %q", diag.Stage)
		}
		b.StopTimer()
		sys.Close()
		b.StartTimer()
	}
}

// BenchmarkT4Comparison differentially injects probes through the two
// router specifications.
func BenchmarkT4Comparison(b *testing.B) {
	mono := openRouter(b, netdebug.TargetReference)
	defer mono.Close()
	split, err := netdebug.Open(p4test.RouterSplit, netdebug.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer split.Close()
	if err := split.InstallEntries([]netdebug.Entry{
		{
			Table:  "lpm_nexthop",
			Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
			Action: "set_nexthop",
			Args:   []netdebug.Value{netdebug.NewValue(7, 16)},
		},
		{
			Table:  "nexthop_egress",
			Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(7, 16)}},
			Action: "set_egress",
			Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(1, 9)},
		},
	}); err != nil {
		b.Fatal(err)
	}
	frame := frameOf(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ra := mono.Device().InjectInternal(frame, 0, mono.Device().Now(), false)
		rb := split.Device().InjectInternal(frame, 0, split.Device().Now(), false)
		if ra.Dropped() != rb.Dropped() {
			b.Fatal("specifications diverged")
		}
	}
}

// --- ablations (DESIGN.md §7) -------------------------------------------

// BenchmarkAblationTapPlacement contrasts internal validation (NetDebug's
// in-device checker) with external observation (the tester baseline) on
// the identical workload: the cost and the visibility differ.
func BenchmarkAblationTapPlacement(b *testing.B) {
	frame := frameOf(128)
	b.Run("internal", func(b *testing.B) {
		sys := openRouter(b, netdebug.TargetSDNet)
		defer sys.Close()
		spec := &netdebug.TestSpec{
			Name: "tap",
			Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
				Name: "probe", Template: frame, Count: 500, RatePPS: 1e6,
			}}},
			Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
				Name: "fwd", Stream: "probe", ExpectPort: 1,
			}}},
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rep, err := sys.Validate(spec); err != nil || !rep.Pass {
				b.Fatalf("%v %v", rep, err)
			}
		}
	})
	b.Run("external", func(b *testing.B) {
		sys := openRouter(b, netdebug.TargetSDNet)
		defer sys.Close()
		tst := tester.New(sys.Device())
		streams := []tester.Stream{{
			Name: "probe", Frame: frame, Count: 500,
			TxPort: 0, RxPort: 1, RatePPS: 1e6,
			SeqLoc: netdebug.FieldLoc{BitOff: (14 + 20 + 8) * 8, Bits: 32},
		}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rep, err := tst.Run(streams); err != nil || !rep.Pass {
				b.Fatalf("%v %v", rep, err)
			}
		}
	})
}

// BenchmarkAblationGeneratorPacing compares paced token-bucket-style
// generation against unpaced burst injection: bursts are faster to run
// but collapse the latency measurement window.
func BenchmarkAblationGeneratorPacing(b *testing.B) {
	for _, pacing := range []struct {
		name string
		pps  float64
	}{{"paced-1Mpps", 1e6}, {"burst", 1e12}} {
		b.Run(pacing.name, func(b *testing.B) {
			sys := openRouter(b, netdebug.TargetSDNet)
			defer sys.Close()
			spec := &netdebug.TestSpec{
				Name: "pacing",
				Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
					Name: "probe", Template: frameOf(128), Count: 1000, RatePPS: pacing.pps,
				}}},
				Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
					Name: "fwd", Stream: "probe", ExpectPort: 1,
				}}},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep, err := sys.Validate(spec); err != nil || !rep.Pass {
					b.Fatalf("%v %v", rep, err)
				}
			}
		})
	}
}

// BenchmarkAblationCheckerP4 measures the overhead of P4-programmed
// checking (compiling the verdict into a classifier pipeline) over plain
// rule checking.
func BenchmarkAblationCheckerP4(b *testing.B) {
	const classifier = `
	header ethernet_t { bit<48> d; bit<48> s; bit<16> t; }
	struct hs { ethernet_t eth; }
	parser P(packet_in pkt, out hs hdr) { state start { pkt.extract(hdr.eth); transition accept; } }
	control C(inout hs hdr, inout standard_metadata_t sm) {
	  apply { sm.egress_spec = 9w1; }
	}
	control D(packet_out pkt, in hs hdr) { apply { pkt.emit(hdr.eth); } }
	S(P(), C(), D()) main;`
	for _, mode := range []struct {
		name    string
		p4Check string
	}{{"rules-only", ""}, {"p4-classifier", classifier}} {
		b.Run(mode.name, func(b *testing.B) {
			sys := openRouter(b, netdebug.TargetReference)
			defer sys.Close()
			spec := &netdebug.TestSpec{
				Name: "checker",
				Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
					Name: "probe", Template: frameOf(128), Count: 500, RatePPS: 1e6,
				}}},
				Check: netdebug.CheckSpec{
					Rules:   []netdebug.Rule{{Name: "fwd", Stream: "probe", ExpectPort: 1}},
					P4Check: mode.p4Check,
				},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep, err := sys.Validate(spec); err != nil || !rep.Pass {
					b.Fatalf("%v %v", rep, err)
				}
			}
		})
	}
}

// BenchmarkAblationLiveTrafficLoad measures validation alongside
// background live traffic at increasing load.
func BenchmarkAblationLiveTrafficLoad(b *testing.B) {
	for _, live := range []int{0, 500, 2000} {
		b.Run(fmt.Sprintf("live%d", live), func(b *testing.B) {
			sys := openRouter(b, netdebug.TargetReference)
			defer sys.Close()
			frame := frameOf(128)
			spec := &netdebug.TestSpec{
				Name: "live",
				Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
					Name: "probe", Template: frame, Count: 200, RatePPS: 1e6,
				}}},
				Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
					Name: "fwd", Stream: "probe", ExpectPort: 1,
				}}},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < live; j++ {
					sys.Device().SendExternal(2, frame, sys.Device().Now()+time.Duration(j)*time.Microsecond)
				}
				if rep, err := sys.Validate(spec); err != nil || !rep.Pass {
					b.Fatalf("%v %v", rep, err)
				}
				sys.Device().Captures(1)
				sys.Device().ReleaseCaptures(1)
			}
		})
	}
}
