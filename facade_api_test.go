package netdebug_test

import (
	"reflect"
	"testing"

	"netdebug"
	"netdebug/internal/p4/p4test"
)

// TestOpenErrorPaths covers the facade's failure modes: an unknown
// target kind, unparsable P4 source, and a baseline entry naming a
// table the program does not declare. Each must fail Open without
// leaking a booted system.
func TestOpenErrorPaths(t *testing.T) {
	if _, err := netdebug.Open(p4test.Router, netdebug.Options{Target: "fpga-9000"}); err == nil {
		t.Error("unknown target kind accepted")
	}
	if _, err := netdebug.Open("control gibberish {", netdebug.Options{}); err == nil {
		t.Error("unparsable program accepted")
	}
	opts := routerSuiteOptions()
	opts.Baseline[0].Table = "no_such_table"
	if _, err := netdebug.Open(p4test.Router, opts); err == nil {
		t.Error("baseline entry for undeclared table accepted")
	}
	opts = routerSuiteOptions()
	opts.Baseline[0].Action = "no_such_action"
	if _, err := netdebug.Open(p4test.Router, opts); err == nil {
		t.Error("baseline entry with undeclared action accepted")
	}
}

// TestOpenInstallsBaseline: a system opened with a Baseline behaves
// like one whose entries were installed by hand.
func TestOpenInstallsBaseline(t *testing.T) {
	sys, err := netdebug.Open(p4test.Router, routerSuiteOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rep, err := sys.Validate(suiteSpecs(1, 20)[0])
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("baseline route not installed: %v", rep)
	}
}

// TestVerifyProgramOptionForms pins the redesigned verification entry
// point: the zero-option call, the deprecated worker-count wrapper, and
// the explicit option form must agree verdict for verdict.
func TestVerifyProgramOptionForms(t *testing.T) {
	plain, err := netdebug.VerifyProgram(p4test.Router)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) == 0 {
		t.Fatal("no properties checked")
	}
	withOpts, err := netdebug.VerifyProgram(p4test.Router, netdebug.WithWorkers(2), netdebug.WithSolvePaths())
	if err != nil {
		t.Fatal(err)
	}
	deprecated, err := netdebug.VerifyProgramWorkers(p4test.Router, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Detail strings carry run statistics (path counts, model rendering)
	// that legitimately vary with options; the verdicts must not.
	verdicts := func(rs []netdebug.VerifyResult) map[string]bool {
		out := make(map[string]bool, len(rs))
		for _, r := range rs {
			out[r.Property] = r.Holds
		}
		return out
	}
	if !reflect.DeepEqual(verdicts(plain), verdicts(withOpts)) || !reflect.DeepEqual(verdicts(plain), verdicts(deprecated)) {
		t.Fatalf("entry points disagree:\nplain:      %v\nwith opts:  %v\ndeprecated: %v", plain, withOpts, deprecated)
	}
	if _, err := netdebug.VerifyProgram("not p4"); err == nil {
		t.Fatal("unparsable source accepted")
	}
}

// TestFuzzFleetFacade drives the fuzzing fleet through the public
// option-style entry point: deterministic across repeat runs, shard
// count invisible in the report, and the known sdnet/ebpf errata
// localized by majority vote.
func TestFuzzFleetFacade(t *testing.T) {
	opts := func(shards int) []netdebug.FuzzOption {
		return []netdebug.FuzzOption{
			netdebug.WithFuzzBaseline(routerSuiteOptions().Baseline[0], fallbackRoute()),
			netdebug.WithFuzzBudget(512),
			netdebug.WithFuzzSeed(11),
			netdebug.WithFuzzShards(shards),
		}
	}
	one, err := netdebug.FuzzFleet(p4test.Router, opts(1)...)
	if err != nil {
		t.Fatal(err)
	}
	four, err := netdebug.FuzzFleet(p4test.Router, opts(4)...)
	if err != nil {
		t.Fatal(err)
	}
	one.Elapsed, four.Elapsed = 0, 0
	one.ProbesPerSec, four.ProbesPerSec = 0, 0
	if !reflect.DeepEqual(one, four) {
		t.Fatalf("report depends on shard count:\n1: %+v\n4: %+v", one, four)
	}
	if one.Divergences["sdnet"] == 0 || one.Divergences["ebpf"] == 0 {
		t.Fatalf("router errata not localized: %v", one.Divergences)
	}
	if one.Divergences["reference"] != 0 {
		t.Fatalf("reference voted divergent: %v", one.Divergences)
	}

	quiet, err := netdebug.FuzzFleet(p4test.Router,
		append(opts(1), netdebug.WithoutSolverProbes())...)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.SolverProbes != 0 {
		t.Fatalf("solver probes despite WithoutSolverProbes: %d", quiet.SolverProbes)
	}

	if _, err := netdebug.FuzzFleet(p4test.Router,
		netdebug.WithFuzzTargets(netdebug.TargetReference, netdebug.TargetSDNet)); err == nil {
		t.Fatal("two-target vote accepted")
	}
}

// fallbackRoute is the /0 default route (port 2) used by fuzz tests.
func fallbackRoute() netdebug.Entry {
	return netdebug.Entry{
		Table:  "ipv4_lpm",
		Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0, 32), PrefixLen: 0}},
		Action: "ipv4_forward",
		Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(2, 9)},
	}
}
