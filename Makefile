# NetDebug build/test/bench entry points.

GO ?= go
BENCH_OUT ?= BENCH_3.json
# BENCH_BASELINE is the committed perf-trajectory file bench-gate
# compares against; bump it when a PR lands a new BENCH_<PR>.json.
BENCH_BASELINE ?= BENCH_3.json

.PHONY: all build examples vet test test-race fmt-check bench bench-smoke bench-json bench-gate

all: vet build test

build:
	$(GO) build ./...

# Build-check the example programs (also covered by build, but kept as
# an explicit CI entry point).
examples:
	$(GO) build ./examples/...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full benchmark sweep, human-readable.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Quick CI smoke: every benchmark runs, but only a few iterations.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 2x ./...

# Machine-readable results for the perf trajectory (BENCH_<PR>.json).
# Best-of-3 per benchmark: external interference only slows a run, so
# the minimum is the stable statistic (allocs/op keeps the max).
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 200x -count 3 -out $(BENCH_OUT)

# Regression gate: re-measure and compare against the committed baseline.
# Fails on >15% ns/op regression or any allocs/op increase on the pinned
# hot-path benchmarks, and asserts the tuple-space >= 10x speedup.
bench-gate:
	$(GO) run ./cmd/benchjson -benchtime 200x -count 3 -out bench_current.json
	$(GO) run ./cmd/benchgate -baseline $(BENCH_BASELINE) -current bench_current.json
