# NetDebug build/test/bench entry points.

GO ?= go
BENCH_OUT ?= BENCH_1.json

.PHONY: all build vet test bench bench-smoke bench-json

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark sweep, human-readable.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Quick CI smoke: every benchmark runs, but only a few iterations.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 2x ./...

# Machine-readable results for the perf trajectory (BENCH_<PR>.json).
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 200x -out $(BENCH_OUT)
