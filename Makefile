# NetDebug build/test/bench entry points.

GO ?= go
BENCH_OUT ?= BENCH_10.json
# BENCH_BASELINE is the committed perf-trajectory file bench-gate
# compares against; bump it when a PR lands a new BENCH_<PR>.json.
BENCH_BASELINE ?= BENCH_10.json
# COVER_MIN pins the global statement coverage the coverage gate
# enforces (keep in sync with the CI coverage job).
COVER_MIN ?= 72

.PHONY: all build examples vet test test-race fmt-check cover bench bench-smoke bench-json bench-gate

all: vet build test

build:
	$(GO) build ./...

# Build-check the example programs (also covered by build, but kept as
# an explicit CI entry point).
examples:
	$(GO) build ./examples/...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Global statement coverage with the pinned threshold (the CI gate).
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) run ./cmd/covgate -profile cover.out -min $(COVER_MIN)

# Full benchmark sweep, human-readable.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Quick CI smoke: every benchmark runs, but only a few iterations.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 2x ./...

# Machine-readable results for the perf trajectory (BENCH_<PR>.json).
# Best-of-5 per benchmark: external interference only slows a run, so
# the minimum is the stable statistic (allocs/op keeps the max). The
# pinned hot-path set is then re-measured at the gate's own windows and
# merged over the 200x records, so both sides of bench-gate compare
# minima taken under the same noise regime.
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 200x -count 5 -out $(BENCH_OUT)
	$(GO) run ./cmd/benchjson -bench '$(BENCH_PIN)' -benchtime 2000x -count 5 -merge -out $(BENCH_OUT)
	$(GO) run ./cmd/benchjson -bench '$(BENCH_PIN_SLOW)' -benchtime 30x -count 5 -merge -out $(BENCH_OUT)

# BENCH_PIN selects the gated hot-path benchmarks for the fresh gate
# measurement: a superset of cmd/benchgate's defaultPin, plus the
# linear-scan reference the -speedup assertion divides by and the
# retired DPLL solver the >=5x CDCL assertion divides by. Keep in sync
# with defaultPin when pinning a new backend or subsystem.
BENCH_PIN = Benchmark(ProcessRouter|ProcessFirewallTernary|RouterProcess|FirewallProcess|(Tofino|EBPF|SmartNIC)Process(Router|FirewallTernary)|DeviceForward(Burst|NoCapture)?|SendExternalBurst|TernaryLookup(TupleSpace|Linear)|LPMTrie(Install|Lookup)(Multibit|Binary)|Solve(Reference)?RouterLikePath|SessionThroughput|FuzzFleetThroughput|Checker(Batch|PerFrame))

# BENCH_PIN_SLOW holds pinned benchmarks whose per-op cost (tens of ms
# of whole-program path exploration or multi-device fleet runs) makes
# the 2000x window absurd; they get their own 30x window, on both sides
# of the gate. Includes every ExploreParallel worker count so the
# -speedup 8-worker scaling assertion (enforced on >=8-CPU machines)
# has its operands, and every FleetAggregateMpps device count so the
# 1:8 fleet-scaling assertion has its operands.
BENCH_PIN_SLOW = Benchmark(ExploreParallel|FleetAggregateMpps)

# Regression gate: re-measure the pinned hot paths and compare against
# the committed baseline. Fails on >15% ns/op regression or any
# allocs/op increase on the pinned benchmarks, and asserts the
# tuple-space >= 10x and CDCL >= 5x speedups (plus 8-worker Explore
# scaling on machines with >= 8 CPUs). Only the pinned set is
# re-measured, at a 10x longer window than the trajectory sweep: these
# are sub-µs hot-path loops whose 200x minima wobble with GC state from
# table population, while the suite-scale benchmarks (100ms/op) that
# make a full 2000x sweep prohibitively slow are not gated.
bench-gate:
	$(GO) run ./cmd/benchjson -bench '$(BENCH_PIN)' -benchtime 2000x -count 5 -out bench_current.json
	$(GO) run ./cmd/benchjson -bench '$(BENCH_PIN_SLOW)' -benchtime 30x -count 5 -merge -out bench_current.json
	$(GO) run ./cmd/benchgate -baseline $(BENCH_BASELINE) -current bench_current.json
