package netdebug_test

import (
	"strings"
	"testing"

	"netdebug"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

func openRouterT(t *testing.T, kind netdebug.TargetKind) *netdebug.System {
	t.Helper()
	sys, err := netdebug.Open(p4test.Router, netdebug.Options{Target: kind})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if err := sys.InstallEntry(netdebug.Entry{
		Table:  "ipv4_lpm",
		Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(1, 9)},
	}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestOpenValidation(t *testing.T) {
	if _, err := netdebug.Open("not p4 at all {", netdebug.Options{}); err == nil {
		t.Fatal("garbage source should fail")
	}
	if _, err := netdebug.Open(p4test.Router, netdebug.Options{Target: "fpga9000"}); err == nil {
		t.Fatal("unknown target should fail")
	}
	sys, err := netdebug.Open(p4test.Router, netdebug.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.TargetName() != "reference" {
		t.Fatalf("default target = %q", sys.TargetName())
	}
}

// TestFacadeTofinoTarget opens the router on the Tofino-style backend:
// malformed packets drop (reject is implemented), good packets forward,
// and the resource report is the ASIC stage/memory/PHV form.
func TestFacadeTofinoTarget(t *testing.T) {
	for _, kind := range []netdebug.TargetKind{netdebug.TargetTofino, netdebug.TargetTofinoFixed} {
		sys := openRouterT(t, kind)
		if sys.TargetName() != "tofino" {
			t.Fatalf("target = %q", sys.TargetName())
		}
		bad := packet.BuildUDPv4(srcMAC, gwMAC, srcIP, dstIP, 4000, 53, nil)
		bad[14] = 0x65
		rep, err := sys.Validate(&netdebug.TestSpec{
			Name: "tofino-reject",
			Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
				Name: "malformed", Template: bad, Count: 20, RatePPS: 1e6,
			}}},
			Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
				Name: "malformed-dropped", Stream: "malformed", ExpectDrop: true,
			}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass {
			t.Fatalf("%s: %v", kind, rep)
		}
		res, err := sys.Resources()
		if err != nil {
			t.Fatal(err)
		}
		if res.Stages < 1 || res.SRAMBlocks < 1 || res.PHVBits < 1 {
			t.Fatalf("%s resources: %+v", kind, res)
		}
		if res.LUTs != 0 {
			t.Fatalf("%s reports FPGA LUTs: %+v", kind, res)
		}
	}
}

// TestFacadeEBPFTarget opens the router on the software-offload
// backend: malformed packets drop (reject is implemented), the /0
// default-route defect is visible through Validate on the shipped flow
// and repaired on the fixed one, and the resource report is the
// program/map form.
func TestFacadeEBPFTarget(t *testing.T) {
	for _, tc := range []struct {
		kind netdebug.TargetKind
		// zeroRouteWorks is false on the shipped flow: the LPM-trie
		// driver never matches a /0 entry.
		zeroRouteWorks bool
	}{
		{netdebug.TargetEBPF, false},
		{netdebug.TargetEBPFFixed, true},
	} {
		sys := openRouterT(t, tc.kind)
		if sys.TargetName() != "ebpf" {
			t.Fatalf("target = %q", sys.TargetName())
		}
		if err := sys.InstallEntry(netdebug.Entry{
			Table:  "ipv4_lpm",
			Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0, 32), PrefixLen: 0}},
			Action: "ipv4_forward",
			Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(2, 9)},
		}); err != nil {
			t.Fatalf("%s: the /0 install must be acknowledged: %v", tc.kind, err)
		}
		off := packet.BuildUDPv4(srcMAC, gwMAC, srcIP, packet.IPv4Addr{172, 16, 9, 9}, 4100, 53, nil)
		rep, err := sys.Validate(&netdebug.TestSpec{
			Name: "ebpf-default-route",
			Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
				Name: "off-subnet", Template: off, Count: 20, RatePPS: 1e6,
			}}},
			Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
				Name: "via-default-route", Stream: "off-subnet", ExpectPort: 2,
			}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Pass != tc.zeroRouteWorks {
			t.Fatalf("%s: default-route validation pass=%v, want %v (%v)",
				tc.kind, rep.Pass, tc.zeroRouteWorks, rep)
		}
		res, err := sys.Resources()
		if err != nil {
			t.Fatal(err)
		}
		if res.Insns < 1 || res.Maps != 1 || res.MapBytes < 1 || res.MemlockPct <= 0 {
			t.Fatalf("%s resources: %+v", tc.kind, res)
		}
		if res.LUTs != 0 || res.Stages != 0 {
			t.Fatalf("%s reports hardware fields: %+v", tc.kind, res)
		}
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	sys := openRouterT(t, netdebug.TargetSDNet)
	layout, err := sys.Layout("ethernet", "ipv4")
	if err != nil {
		t.Fatal(err)
	}
	ttl := layout.MustField("ipv4.ttl")

	frame := packet.BuildUDPv4(srcMAC, gwMAC, srcIP, dstIP, 4000, 53, make([]byte, 26))
	rep, err := sys.Validate(&netdebug.TestSpec{
		Name: "facade",
		Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
			Name: "probe", Template: frame, Count: 50, RatePPS: 1e6,
		}}},
		Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
			Name:       "ttl-decremented",
			Stream:     "probe",
			ExpectPort: 1,
			Expect:     []netdebug.FieldExpect{{Name: "ipv4.ttl", Loc: ttl, Value: 63}},
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("validation failed: %v", rep)
	}

	st, err := sys.Status()
	if err != nil || st["netdebug.injected"] != 50 {
		t.Fatalf("status: %v %v", st, err)
	}
	res, err := sys.Resources()
	if err != nil || res.LUTs <= 0 {
		t.Fatalf("resources: %+v %v", res, err)
	}
}

func TestFacadeLocalize(t *testing.T) {
	sys := openRouterT(t, netdebug.TargetReference)
	sys.InjectFault(netdebug.Fault{Kind: netdebug.FaultPortDown, Port: 0})
	probe := packet.BuildUDPv4(srcMAC, gwMAC, srcIP, dstIP, 4000, 53, nil)
	diag := sys.Localize(probe, 0, 1)
	if diag.Stage != "mac-in port 0" {
		t.Fatalf("diagnosis = %q", diag.Stage)
	}
	sys.ClearFaults()
	if diag := sys.Localize(probe, 0, 1); diag.Stage != "none" {
		t.Fatalf("after clear: %q", diag.Stage)
	}
}

func TestFacadeExternalTester(t *testing.T) {
	sys := openRouterT(t, netdebug.TargetReference)
	ext := sys.NewExternalTester()
	frame := packet.BuildUDPv4(srcMAC, gwMAC, srcIP, dstIP, 4000, 53, make([]byte, 26))
	rep, err := ext.Run([]netdebug.ExternalStream{{
		Name: "probe", Frame: frame, Count: 20, TxPort: 0, RxPort: 1,
		RatePPS: 1e6, SeqLoc: netdebug.FieldLoc{BitOff: (14 + 20 + 8) * 8, Bits: 32},
	}})
	if err != nil || !rep.Pass {
		t.Fatalf("external run: %v %v", rep, err)
	}
}

func TestVerifyProgramFacade(t *testing.T) {
	results, err := netdebug.VerifyProgram(p4test.Router)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]netdebug.VerifyResult{}
	for _, r := range results {
		byName[r.Property] = r
	}
	if !byName["rejected-implies-dropped"].Holds {
		t.Fatal("rejected-implies-dropped should verify on the program")
	}
	if !byName["malformed-ipv4-dropped"].Holds {
		t.Fatal("malformed-ipv4-dropped should verify on the program")
	}
	if !strings.Contains(byName["rejected-implies-dropped"].Detail, "VERIFIED") {
		t.Fatalf("detail: %q", byName["rejected-implies-dropped"].Detail)
	}
}

// TestPaperHeadline is the one-test summary of the reproduction: formal
// verification passes the program, NetDebug on the sdnet target finds the
// deployed bug.
func TestPaperHeadline(t *testing.T) {
	results, err := netdebug.VerifyProgram(p4test.Router)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Property == "rejected-implies-dropped" && !r.Holds {
			t.Fatal("verification should pass the program")
		}
	}
	sys := openRouterT(t, netdebug.TargetSDNet)
	bad := packet.BuildUDPv4(srcMAC, gwMAC, srcIP, dstIP, 4000, 53, nil)
	bad[14] = 0x65
	rep, err := sys.Validate(&netdebug.TestSpec{
		Name: "headline",
		Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
			Name: "malformed", Template: bad, Count: 10, RatePPS: 1e6,
		}}},
		Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
			Name: "dropped", Stream: "malformed", ExpectDrop: true,
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("NetDebug must detect the reject erratum on sdnet")
	}
}
