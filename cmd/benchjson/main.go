// Benchjson runs the repository benchmark suite and writes the results
// as machine-readable JSON, so successive PRs accumulate a comparable
// performance trajectory (BENCH_1.json, BENCH_2.json, ...).
//
//	benchjson -out BENCH_1.json                    # full suite
//	benchjson -bench 'Process|Suite' -benchtime 100x -out -   # subset to stdout
//
// Each record carries ns/op, B/op, allocs/op, and MB/s (when reported)
// per benchmark, plus the Go version, CPU count, and command line used,
// since scaling numbers are only comparable at like core counts.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"netdebug/internal/benchfmt"
)

var (
	out       = flag.String("out", "BENCH_1.json", "output file ('-' for stdout)")
	benchRe   = flag.String("bench", ".", "benchmark selection regex (go test -bench)")
	benchtime = flag.String("benchtime", "1s", "per-benchmark budget (go test -benchtime)")
	count     = flag.Int("count", 1, "repetitions per benchmark (go test -count)")
	pkgs      = flag.String("pkgs", "./...", "comma-separated package patterns to benchmark")
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *benchRe, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count)}
	args = append(args, strings.Split(*pkgs, ",")...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}

	doc := benchfmt.File{
		Schema:     benchfmt.Schema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Command:    "go " + strings.Join(args, " "),
	}

	pkg := ""
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // echo the run for the operator
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		rec := benchfmt.Record{Name: m[1], Package: pkg, Iterations: iters, NsPerOp: ns}
		for _, part := range strings.Split(strings.TrimSpace(m[4]), "\t") {
			part = strings.TrimSpace(part)
			switch {
			case strings.HasSuffix(part, " MB/s"):
				rec.MBPerSec, _ = strconv.ParseFloat(strings.TrimSuffix(part, " MB/s"), 64)
			case strings.HasSuffix(part, " B/op"):
				v, _ := strconv.ParseInt(strings.TrimSuffix(part, " B/op"), 10, 64)
				rec.BytesPerOp = &v
			case strings.HasSuffix(part, " allocs/op"):
				v, _ := strconv.ParseInt(strings.TrimSuffix(part, " allocs/op"), 10, 64)
				rec.AllocsOp = &v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		log.Fatalf("benchmark run failed: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark results parsed")
	}

	if err := doc.Save(*out); err != nil {
		log.Fatal(err)
	}
	if *out != "-" {
		log.Printf("wrote %d benchmark records to %s", len(doc.Benchmarks), *out)
	}
}
