// Benchjson runs the repository benchmark suite and writes the results
// as machine-readable JSON, so successive PRs accumulate a comparable
// performance trajectory (BENCH_1.json, BENCH_2.json, ...).
//
//	benchjson -out BENCH_1.json                    # full suite
//	benchjson -bench 'Process|Suite' -benchtime 100x -out -   # subset to stdout
//	benchjson -count 3 -out BENCH_3.json           # best-of-3 per benchmark
//
// Each record carries ns/op, B/op, allocs/op, and MB/s (when reported)
// per benchmark, plus the Go version, CPU count, and command line used,
// since scaling numbers are only comparable at like core counts.
//
// With -count > 1 the repetitions of each benchmark are merged into one
// record: minimum ns/op (external interference only ever slows a run,
// so the minimum is the stable statistic on noisy machines — a genuine
// regression slows every repetition) and maximum B/op and allocs/op
// (so an allocation regression cannot hide behind a lucky repetition).
// Disable with -best=false to keep every repetition.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"netdebug/internal/benchfmt"
)

var (
	out       = flag.String("out", "BENCH_1.json", "output file ('-' for stdout)")
	benchRe   = flag.String("bench", ".", "benchmark selection regex (go test -bench)")
	benchtime = flag.String("benchtime", "1s", "per-benchmark budget (go test -benchtime)")
	count     = flag.Int("count", 1, "repetitions per benchmark (go test -count)")
	pkgs      = flag.String("pkgs", "./...", "comma-separated package patterns to benchmark")
	best      = flag.Bool("best", true, "merge -count repetitions: min ns/op, max B/op and allocs/op")
	merge     = flag.Bool("merge", false,
		"load an existing -out file and replace just the records measured by this run (keep the rest)")
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *benchRe, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count)}
	args = append(args, strings.Split(*pkgs, ",")...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}

	doc := benchfmt.File{
		Schema:     benchfmt.Schema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Command:    "go " + strings.Join(args, " "),
	}

	pkg := ""
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // echo the run for the operator
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		rec := benchfmt.Record{Name: m[1], Package: pkg, Iterations: iters, NsPerOp: ns}
		for _, part := range strings.Split(strings.TrimSpace(m[4]), "\t") {
			part = strings.TrimSpace(part)
			switch {
			case strings.HasSuffix(part, " MB/s"):
				rec.MBPerSec, _ = strconv.ParseFloat(strings.TrimSuffix(part, " MB/s"), 64)
			case strings.HasSuffix(part, " B/op"):
				v, _ := strconv.ParseInt(strings.TrimSuffix(part, " B/op"), 10, 64)
				rec.BytesPerOp = &v
			case strings.HasSuffix(part, " allocs/op"):
				v, _ := strconv.ParseInt(strings.TrimSuffix(part, " allocs/op"), 10, 64)
				rec.AllocsOp = &v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		log.Fatalf("benchmark run failed: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark results parsed")
	}
	if *best && *count > 1 {
		doc.Benchmarks = mergeBest(doc.Benchmarks)
	}
	if *merge {
		prev, err := benchfmt.Load(*out)
		if err != nil {
			log.Fatalf("-merge: %v", err)
		}
		doc.Benchmarks = mergeInto(prev.Benchmarks, doc.Benchmarks)
		doc.Command = prev.Command + "; " + doc.Command
	}

	if err := doc.Save(*out); err != nil {
		log.Fatal(err)
	}
	if *out != "-" {
		log.Printf("wrote %d benchmark records to %s", len(doc.Benchmarks), *out)
	}
}

// mergeInto overlays fresh records onto a previous run's list: records
// re-measured by this run replace their predecessor in place, new
// records append, and everything else is kept. This is how the pinned
// hot-path set gets re-recorded at a longer benchtime than the full
// trajectory sweep without forking the baseline into two files.
func mergeInto(prev, fresh []benchfmt.Record) []benchfmt.Record {
	byKey := make(map[string]benchfmt.Record, len(fresh))
	for _, r := range fresh {
		byKey[r.Key()] = r
	}
	out := make([]benchfmt.Record, 0, len(prev)+len(fresh))
	for _, r := range prev {
		if nr, ok := byKey[r.Key()]; ok {
			r = nr
			delete(byKey, r.Key())
		}
		out = append(out, r)
	}
	for _, r := range fresh {
		if _, ok := byKey[r.Key()]; ok {
			out = append(out, r)
			delete(byKey, r.Key())
		}
	}
	return out
}

// mergeBest collapses repeated records of the same benchmark (from
// -count > 1) into one: minimum ns/op with its iteration count, maximum
// B/op and allocs/op, maximum MB/s. Order follows first appearance.
func mergeBest(recs []benchfmt.Record) []benchfmt.Record {
	idx := make(map[string]int, len(recs))
	var out []benchfmt.Record
	maxInt := func(dst **int64, src *int64) {
		if src == nil {
			return
		}
		if *dst == nil || **dst < *src {
			v := *src
			*dst = &v
		}
	}
	for _, r := range recs {
		i, seen := idx[r.Key()]
		if !seen {
			idx[r.Key()] = len(out)
			out = append(out, r)
			continue
		}
		m := &out[i]
		if r.NsPerOp < m.NsPerOp {
			m.NsPerOp = r.NsPerOp
			m.Iterations = r.Iterations
		}
		if r.MBPerSec > m.MBPerSec {
			m.MBPerSec = r.MBPerSec
		}
		maxInt(&m.BytesPerOp, r.BytesPerOp)
		maxInt(&m.AllocsOp, r.AllocsOp)
	}
	return out
}
