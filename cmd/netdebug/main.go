// Netdebug is the host-side command-line tool: it boots a device running
// a P4 program (or connects to a remote agent over TCP), installs table
// entries, runs a built-in validation suite, and prints the report — the
// workflow of the paper's software tool.
//
//	netdebug -program router.p4 -target sdnet -suite reject
//	netdebug -program router.p4 -suite perf
//	netdebug -serve :9000 -program router.p4      # expose an agent over TCP
//	netdebug -connect host:9000 -suite status     # drive a remote agent
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"netdebug"
	"netdebug/internal/control"
	"netdebug/internal/core"
	"netdebug/internal/packet"
)

var (
	programPath = flag.String("program", "", "P4 program to load")
	targetKind  = flag.String("target", "reference",
		"target backend (reference, sdnet[-fixed], tofino[-fixed], ebpf[-fixed])")
	suite   = flag.String("suite", "", "validation suite: reject, perf, status")
	serve   = flag.String("serve", "", "serve the device agent on a TCP address instead of running a suite")
	connect = flag.String("connect", "", "connect to a remote agent instead of booting a device")
)

var (
	srcMAC = packet.MAC{2, 0, 0, 0, 0, 0xaa}
	gwMAC  = packet.MAC{2, 0, 0, 0, 0xff, 1}
)

func main() {
	log.SetFlags(0)
	flag.Parse()

	var ctl *core.Controller
	switch {
	case *connect != "":
		cli, err := control.DialTCP(*connect)
		if err != nil {
			log.Fatal(err)
		}
		ctl = core.NewController(cli)
		defer ctl.Close()
	case *programPath != "":
		src, err := os.ReadFile(*programPath)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := netdebug.Open(string(src), netdebug.Options{Target: netdebug.TargetKind(*targetKind)})
		if err != nil {
			log.Fatal(err)
		}
		defer sys.Close()
		if *serve != "" {
			ln, err := net.Listen("tcp", *serve)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("serving device agent on %s (target %s)", ln.Addr(), sys.TargetName())
			agent := core.NewAgent(sys.Device())
			control.ListenTCP(ln, agent)
			return
		}
		installDefaultRoute(sys)
		runSuiteOnSystem(sys)
		return
	default:
		fmt.Fprintln(os.Stderr, "usage: netdebug -program FILE [-target T] -suite NAME")
		fmt.Fprintln(os.Stderr, "       netdebug -connect HOST:PORT -suite NAME")
		flag.PrintDefaults()
		os.Exit(2)
	}
	runSuiteOnController(ctl)
}

func installDefaultRoute(sys *netdebug.System) {
	err := sys.InstallEntry(netdebug.Entry{
		Table:  "ipv4_lpm",
		Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(1, 9)},
	})
	if err != nil {
		log.Printf("note: default route not installed (%v); suites needing ipv4_lpm will fail", err)
	}
}

func buildSpec() *netdebug.TestSpec {
	good := packet.BuildUDPv4(srcMAC, gwMAC, packet.IPv4Addr{10, 0, 0, 1},
		packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, make([]byte, 26))
	bad := append([]byte(nil), good...)
	bad[14] = 0x65
	switch *suite {
	case "reject":
		return &netdebug.TestSpec{
			Name: "reject",
			Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{
				{Name: "wellformed", Template: good, Count: 100, RatePPS: 1e6},
				{Name: "malformed", Template: bad, Count: 100, RatePPS: 1e6},
			}},
			Check: netdebug.CheckSpec{Rules: []netdebug.Rule{
				{Name: "wellformed-forwarded", Stream: "wellformed", ExpectPort: 1},
				{Name: "malformed-dropped", Stream: "malformed", ExpectDrop: true},
			}},
		}
	case "perf":
		frame := packet.BuildUDPv4(srcMAC, gwMAC, packet.IPv4Addr{10, 0, 0, 1},
			packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, make([]byte, 1024-42))
		return &netdebug.TestSpec{
			Name: "perf",
			Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
				Name: "flood", Template: frame, Count: 5000,
			}}},
			Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
				Name: "fwd", Stream: "flood", ExpectPort: 1,
			}}},
		}
	}
	return nil
}

func printReport(rep *netdebug.Report) {
	fmt.Println(rep)
	for _, r := range rep.Rules {
		fmt.Printf("  rule %-24s pass=%d fail=%d\n", r.Rule, r.Pass, r.Fail)
		for _, s := range r.Samples {
			fmt.Printf("    sample: %s\n", s)
		}
	}
	if rep.Forwarded > 0 {
		fmt.Printf("  throughput %.3f Gbps, %.3f Mpps, latency p50/p99/max %d/%d/%d ns\n",
			rep.OutBPS/1e9, rep.OutPPS/1e6, rep.LatP50Ns, rep.LatP99Ns, rep.LatMaxNs)
	}
}

func runSuiteOnSystem(sys *netdebug.System) {
	if *suite == "status" {
		st, err := sys.Status()
		if err != nil {
			log.Fatal(err)
		}
		for k, v := range st {
			fmt.Printf("%s=%d\n", k, v)
		}
		return
	}
	spec := buildSpec()
	if spec == nil {
		log.Fatalf("unknown suite %q (want reject, perf, status)", *suite)
	}
	rep, err := sys.Validate(spec)
	if err != nil {
		log.Fatal(err)
	}
	printReport(rep)
	if !rep.Pass {
		os.Exit(1)
	}
}

func runSuiteOnController(ctl *core.Controller) {
	if *suite == "status" {
		st, err := ctl.Status()
		if err != nil {
			log.Fatal(err)
		}
		for k, v := range st {
			fmt.Printf("%s=%d\n", k, v)
		}
		return
	}
	spec := buildSpec()
	if spec == nil {
		log.Fatalf("unknown suite %q (want reject, perf, status)", *suite)
	}
	rep, err := ctl.RunTest(spec)
	if err != nil {
		log.Fatal(err)
	}
	printReport(rep)
	if !rep.Pass {
		os.Exit(1)
	}
}
