// Netdebug is the host-side command-line tool: it boots a device running
// a P4 program (or connects to a remote agent over TCP), installs table
// entries, runs a built-in validation suite, and prints the report — the
// workflow of the paper's software tool.
//
//	netdebug -program router.p4 -target sdnet -suite reject
//	netdebug -program router.p4 -suite perf
//	netdebug -serve :9000 -program router.p4      # expose an agent over TCP
//	netdebug -connect host:9000 -suite status     # drive a remote agent
//
// Resident service mode keeps a pool of systems alive and runs
// concurrent validation sessions with scheduled faults and table churn,
// streaming versioned JSONL events; SIGINT/SIGTERM drains gracefully.
// A recorded stream replays deterministically:
//
//	netdebug -program router.p4 -resident -record run.jsonl
//	netdebug -replay run.jsonl
//
// Fuzz mode runs the coverage-guided differential fuzzing fleet: the
// same generated stream through every shipped backend in lockstep,
// majority-voting disagreements to name the divergent backend:
//
//	netdebug -program router.p4 -fuzz -fuzz-budget 2048 -fuzz-shards 4
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netdebug"
	"netdebug/internal/control"
	"netdebug/internal/core"
	"netdebug/internal/packet"
)

var (
	programPath = flag.String("program", "", "P4 program to load")
	targetKind  = flag.String("target", "reference",
		"target backend (reference, sdnet[-fixed], tofino[-fixed], ebpf[-fixed], smartnic[-fixed])")
	suite   = flag.String("suite", "", "validation suite: reject, perf, status")
	serve   = flag.String("serve", "", "serve the device agent on a TCP address instead of running a suite")
	connect = flag.String("connect", "", "connect to a remote agent instead of booting a device")

	resident = flag.Bool("resident", false,
		"resident service mode: run concurrent fault/churn validation sessions until drained")
	replayPath = flag.String("replay", "",
		"replay a recorded session stream and verify it is byte-identical")
	recordPath = flag.String("record", "",
		"write the resident session stream to this file (default stdout)")
	hosts   = flag.Int("hosts", 2, "resident mode: pooled systems running sessions concurrently")
	batches = flag.Int("batches", 0, "resident mode: stop after N session batches (0 = run until signal)")

	callTimeout = flag.Duration("call-timeout", 5*time.Second, "control-channel request deadline (0 = none)")
	retries     = flag.Int("retries", 3, "control-channel attempts for transient (retryable) errors")

	fuzzMode = flag.Bool("fuzz", false,
		"differential fuzzing mode: drive the generated stream through every shipped backend in lockstep")
	fuzzBudget = flag.Int("fuzz-budget", 1024, "fuzz mode: total probe budget")
	fuzzShards = flag.Int("fuzz-shards", 1, "fuzz mode: worker shards (report is shard-count independent)")
	fuzzSeed   = flag.Int64("fuzz-seed", 1, "fuzz mode: random seed (fixed seed = identical report)")
	fuzzOccup  = flag.Int("fuzz-occupancy", 0,
		"fuzz mode: preload every table with up to this many synthetic entries (tables clip at capacity; 0 = bare baseline)")
)

var (
	srcMAC = packet.MAC{2, 0, 0, 0, 0, 0xaa}
	gwMAC  = packet.MAC{2, 0, 0, 0, 0xff, 1}
)

func main() {
	log.SetFlags(0)
	flag.Parse()

	var ctl *core.Controller
	switch {
	case *replayPath != "":
		runReplay(*replayPath)
		return
	case *connect != "":
		cli, err := control.DialTCP(*connect)
		if err != nil {
			log.Fatal(err)
		}
		if *callTimeout > 0 {
			cli.SetCallTimeout(*callTimeout)
		}
		if *retries > 1 {
			cli.SetRetryPolicy(control.RetryPolicy{MaxAttempts: *retries})
		}
		ctl = core.NewController(cli)
		defer ctl.Close()
	case *resident:
		if *programPath == "" {
			log.Fatal("resident mode needs -program")
		}
		src, err := os.ReadFile(*programPath)
		if err != nil {
			log.Fatal(err)
		}
		runResident(string(src))
		return
	case *fuzzMode:
		if *programPath == "" {
			log.Fatal("fuzz mode needs -program")
		}
		src, err := os.ReadFile(*programPath)
		if err != nil {
			log.Fatal(err)
		}
		runFuzz(string(src))
		return
	case *programPath != "":
		src, err := os.ReadFile(*programPath)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := netdebug.Open(string(src), netdebug.Options{
			Target:      netdebug.TargetKind(*targetKind),
			CallTimeout: *callTimeout,
			Retry:       netdebug.RetryPolicy{MaxAttempts: *retries},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer sys.Close()
		if *serve != "" {
			ln, err := net.Listen("tcp", *serve)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("serving device agent on %s (target %s)", ln.Addr(), sys.TargetName())
			agent := core.NewAgent(sys.Device())
			control.ListenTCP(ln, agent)
			return
		}
		installDefaultRoute(sys)
		runSuiteOnSystem(sys)
		return
	default:
		fmt.Fprintln(os.Stderr, "usage: netdebug -program FILE [-target T] -suite NAME")
		fmt.Fprintln(os.Stderr, "       netdebug -connect HOST:PORT -suite NAME")
		flag.PrintDefaults()
		os.Exit(2)
	}
	runSuiteOnController(ctl)
}

func installDefaultRoute(sys *netdebug.System) {
	err := sys.InstallEntry(netdebug.Entry{
		Table:  "ipv4_lpm",
		Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(1, 9)},
	})
	if err != nil {
		log.Printf("note: default route not installed (%v); suites needing ipv4_lpm will fail", err)
	}
}

func buildSpec() *netdebug.TestSpec {
	good := packet.BuildUDPv4(srcMAC, gwMAC, packet.IPv4Addr{10, 0, 0, 1},
		packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, make([]byte, 26))
	bad := append([]byte(nil), good...)
	bad[14] = 0x65
	switch *suite {
	case "reject":
		return &netdebug.TestSpec{
			Name: "reject",
			Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{
				{Name: "wellformed", Template: good, Count: 100, RatePPS: 1e6},
				{Name: "malformed", Template: bad, Count: 100, RatePPS: 1e6},
			}},
			Check: netdebug.CheckSpec{Rules: []netdebug.Rule{
				{Name: "wellformed-forwarded", Stream: "wellformed", ExpectPort: 1},
				{Name: "malformed-dropped", Stream: "malformed", ExpectDrop: true},
			}},
		}
	case "perf":
		frame := packet.BuildUDPv4(srcMAC, gwMAC, packet.IPv4Addr{10, 0, 0, 1},
			packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, make([]byte, 1024-42))
		return &netdebug.TestSpec{
			Name: "perf",
			Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
				Name: "flood", Template: frame, Count: 5000,
			}}},
			Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
				Name: "fwd", Stream: "flood", ExpectPort: 1,
			}}},
		}
	}
	return nil
}

func printReport(rep *netdebug.Report) {
	fmt.Println(rep)
	for _, r := range rep.Rules {
		fmt.Printf("  rule %-24s pass=%d fail=%d\n", r.Rule, r.Pass, r.Fail)
		for _, s := range r.Samples {
			fmt.Printf("    sample: %s\n", s)
		}
	}
	if rep.Forwarded > 0 {
		fmt.Printf("  throughput %.3f Gbps, %.3f Mpps, latency p50/p99/max %d/%d/%d ns\n",
			rep.OutBPS/1e9, rep.OutPPS/1e6, rep.LatP50Ns, rep.LatP99Ns, rep.LatMaxNs)
	}
}

func runSuiteOnSystem(sys *netdebug.System) {
	if *suite == "status" {
		st, err := sys.Status()
		if err != nil {
			log.Fatal(err)
		}
		for k, v := range st {
			fmt.Printf("%s=%d\n", k, v)
		}
		return
	}
	spec := buildSpec()
	if spec == nil {
		log.Fatalf("unknown suite %q (want reject, perf, status)", *suite)
	}
	rep, err := sys.Validate(spec)
	if err != nil {
		log.Fatal(err)
	}
	printReport(rep)
	if !rep.Pass {
		os.Exit(1)
	}
}

// runReplay re-executes a recorded stream and verifies byte identity.
func runReplay(path string) {
	stream, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := netdebug.ParseSessionStream(stream)
	if err != nil {
		log.Fatal(err)
	}
	if err := netdebug.ReplayCheck(stream); err != nil {
		log.Fatal(err)
	}
	log.Printf("replayed %s: %d records, byte-identical", path, len(recs))
}

// runResident boots a session pool over the program and runs batches of
// churn/fault sessions until a signal (or -batches) drains it.
func runResident(src string) {
	var w io.Writer = os.Stdout
	if *recordPath != "" {
		f, err := os.Create(*recordPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	mgr, err := netdebug.NewSessionManager(netdebug.SessionHostConfig{
		Source:      src,
		Target:      *targetKind,
		Baseline:    []netdebug.Entry{defaultRouteEntry()},
		CallTimeout: *callTimeout,
		Retry: netdebug.RetrySpec{
			MaxAttempts: *retries,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
		},
	}, *hosts, w)
	if err != nil {
		log.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		s := <-sig
		log.Printf("%v: draining in-flight sessions", s)
		close(stop)
	}()
	log.Printf("resident: %d pooled %s systems; batches of %d sessions", *hosts, *targetKind, len(residentBatch()))
	failed := false
	for round := 1; ; round++ {
		select {
		case <-stop:
			mgr.Drain()
			if err := mgr.Close(); err != nil {
				log.Fatal(err)
			}
			if failed {
				os.Exit(1)
			}
			return
		default:
		}
		results, err := mgr.RunAll(residentBatch())
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range results {
			verdict := "pass"
			if !res.Pass {
				verdict, failed = "DEGRADED", true
			}
			log.Printf("batch %d session %-12s %s (p99 %dns over %d packets)",
				round, res.Name, verdict, res.SLO.P99Ns, res.SLO.Count)
		}
		if *batches > 0 && round >= *batches {
			mgr.Drain()
			if err := mgr.Close(); err != nil {
				log.Fatal(err)
			}
			if failed {
				os.Exit(1)
			}
			return
		}
	}
}

// runFuzz drives the differential fuzzing fleet over the program with
// the built-in route baseline and prints the divergence ledger. Exit
// status is 0 when the run completes (finding divergences is the
// point, not a failure); CI asserts on the printed ledger.
func runFuzz(src string) {
	rep, err := netdebug.FuzzFleet(src,
		netdebug.WithFuzzBaseline(defaultRouteEntry(), fallbackRouteEntry()),
		netdebug.WithFuzzBudget(*fuzzBudget),
		netdebug.WithFuzzShards(*fuzzShards),
		netdebug.WithFuzzSeed(*fuzzSeed),
		netdebug.WithFuzzOccupancy(*fuzzOccup),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fuzz: %d probes (%d mutation, %d solver) in %v, %.0f probes/s across backends\n",
		rep.Probes, rep.MutationProbes, rep.SolverProbes, rep.Elapsed.Round(time.Millisecond), rep.ProbesPerSec)
	fmt.Printf("coverage: %d behaviour signatures, corpus %d frames, %d paths explored, %d solver-first signatures\n",
		rep.Coverage, len(rep.Corpus), rep.PathsExplored, rep.SolverDiscovered)
	if len(rep.Divergences) == 0 {
		fmt.Println("no divergences: all backends agree on every probe")
	}
	for _, kind := range []string{"reference", "sdnet", "tofino", "ebpf", "smartnic"} {
		if n := rep.Divergences[kind]; n > 0 {
			line := fmt.Sprintf("divergent backend %s: outvoted on %d probes", kind, n)
			if t := rep.TieBroken[kind]; t > 0 {
				line += fmt.Sprintf(" (%d via the reference anchor)", t)
			}
			fmt.Println(line)
		}
	}
	if rep.TiesResolved > 0 {
		fmt.Printf("ties resolved against the reference anchor: %d probes\n", rep.TiesResolved)
	}
	if rep.Ties > 0 {
		fmt.Printf("ties (unresolved, no corroborated anchor): %d probes\n", rep.Ties)
	}
	printed := map[string]int{}
	for _, ex := range rep.Examples {
		if printed[ex.Backend] >= 3 {
			continue
		}
		printed[ex.Backend]++
		fmt.Printf("  example probe %d (%s): %s disagrees — %s\n", ex.Probe, ex.Origin, ex.Backend, ex.Detail)
	}
}

// defaultRouteEntry is the 10/8 -> port 1 route the built-in specs use.
func defaultRouteEntry() netdebug.Entry {
	return netdebug.Entry{
		Table:  "ipv4_lpm",
		Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(1, 9)},
	}
}

// fallbackRouteEntry is the /0 -> port 2 default route, giving the
// fuzzer's off-subnet probes an expected egress (and the ebpf /0 trie
// erratum a probe surface).
func fallbackRouteEntry() netdebug.Entry {
	return netdebug.Entry{
		Table:  "ipv4_lpm",
		Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0, 32), PrefixLen: 0}},
		Action: "ipv4_forward",
		Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(2, 9)},
	}
}

// residentBatch is the scripted session mix the daemon runs: validation
// under rule churn, then the same validation through scheduled
// port-down + map-full + install-flap + queue-stuck faults with an
// external probe leg, so degradation is graceful and visible per
// session rather than fatal.
func residentBatch() []netdebug.SessionSpec {
	goodFrame := func() []byte {
		return packet.BuildUDPv4(srcMAC, gwMAC, packet.IPv4Addr{10, 0, 0, 1},
			packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, make([]byte, 26))
	}
	spec := func(name string) netdebug.TestSpec {
		return netdebug.TestSpec{
			Name: name,
			Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
				Name: "probe", Template: goodFrame(), Count: 50, RatePPS: 1e6,
			}}},
			Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
				Name: "fwd", Stream: "probe", ExpectPort: 1,
			}}},
		}
	}
	return []netdebug.SessionSpec{
		{
			Name:     "churn",
			Spec:     spec("churn-fwd"),
			Rounds:   4,
			Churn:    &netdebug.ChurnSpec{Table: "ipv4_lpm", Installs: 8, Deletes: 4},
			SLOBound: time.Millisecond,
		},
		{
			Name:   "faults",
			Spec:   spec("fault-fwd"),
			Rounds: 4,
			Plan: netdebug.FaultPlan{Events: []netdebug.FaultEvent{
				{At: 0, Kind: netdebug.FaultPlanInstallFlap, Count: 2},
				{At: 0, Kind: netdebug.FaultPlanPortDown, Port: 0},
				{At: 60 * time.Microsecond, Kind: netdebug.FaultPlanClearFaults},
				{At: 60 * time.Microsecond, Kind: netdebug.FaultPlanMapFull, Table: "ipv4_lpm"},
				{At: 120 * time.Microsecond, Kind: netdebug.FaultPlanMapFullClear, Table: "ipv4_lpm"},
			}},
			Churn:    &netdebug.ChurnSpec{Table: "ipv4_lpm", Installs: 6, Deletes: 3},
			Probe:    &netdebug.ProbeSpec{Port: 0, Frame: goodFrame(), Count: 8},
			SLOBound: time.Millisecond,
		},
	}
}

func runSuiteOnController(ctl *core.Controller) {
	if *suite == "status" {
		st, err := ctl.Status()
		if err != nil {
			log.Fatal(err)
		}
		for k, v := range st {
			fmt.Printf("%s=%d\n", k, v)
		}
		return
	}
	spec := buildSpec()
	if spec == nil {
		log.Fatalf("unknown suite %q (want reject, perf, status)", *suite)
	}
	rep, err := ctl.RunTest(spec)
	if err != nil {
		log.Fatal(err)
	}
	printReport(rep)
	if !rep.Pass {
		os.Exit(1)
	}
}
