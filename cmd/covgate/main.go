// Covgate computes the global statement coverage of a merged Go cover
// profile (go test -coverprofile across packages) and fails when it
// drops below a pinned threshold — the CI check that keeps new code
// (fourth backends included) from landing untested.
//
//	go test -coverprofile=cover.out ./...
//	covgate -profile cover.out -min 80
//
// The percentage is statement-weighted across every profiled package,
// matching what `go tool cover -func` reports as "total". -per-package
// additionally prints each package's own percentage, worst first, so a
// failing gate names where the untested code lives.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

var (
	profile    = flag.String("profile", "", "merged cover profile (required)")
	minPct     = flag.Float64("min", 0, "fail when total statement coverage is below this percent")
	perPackage = flag.Bool("per-package", true, "print per-package coverage, worst first")
)

// block is one profile line's statement count and execution count.
type block struct {
	stmts, count int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("covgate: ")
	flag.Parse()
	if *profile == "" {
		flag.Usage()
		os.Exit(2)
	}
	blocks, err := parseProfile(*profile)
	if err != nil {
		log.Fatal(err)
	}
	if len(blocks) == 0 {
		log.Fatal("profile has no coverage blocks")
	}

	perPkg := map[string]*struct{ total, covered int }{}
	var total, covered int
	for file, bs := range blocks {
		pkg := file
		if i := strings.LastIndex(file, "/"); i >= 0 {
			pkg = file[:i]
		}
		p := perPkg[pkg]
		if p == nil {
			p = &struct{ total, covered int }{}
			perPkg[pkg] = p
		}
		for _, b := range bs {
			total += b.stmts
			p.total += b.stmts
			if b.count > 0 {
				covered += b.stmts
				p.covered += b.stmts
			}
		}
	}
	if *perPackage {
		names := make([]string, 0, len(perPkg))
		for pkg := range perPkg {
			names = append(names, pkg)
		}
		sort.Slice(names, func(i, j int) bool {
			pi, pj := perPkg[names[i]], perPkg[names[j]]
			ri := float64(pi.covered) / float64(pi.total)
			rj := float64(pj.covered) / float64(pj.total)
			if ri != rj {
				return ri < rj
			}
			return names[i] < names[j]
		})
		for _, pkg := range names {
			p := perPkg[pkg]
			log.Printf("%6.1f%%  %s (%d/%d stmts)",
				float64(p.covered)/float64(p.total)*100, pkg, p.covered, p.total)
		}
	}
	pct := float64(covered) / float64(total) * 100
	log.Printf("total: %.1f%% of statements (%d/%d), threshold %.1f%%", pct, covered, total, *minPct)
	if pct < *minPct {
		log.Fatalf("coverage %.1f%% is below the %.1f%% gate", pct, *minPct)
	}
}

// parseProfile reads a cover profile: a "mode:" header followed by
// "file:startLine.startCol,endLine.endCol numStmts count" lines. A
// block range repeated across merged profiles (e.g. -coverpkg overlap)
// is counted once, keeping the highest execution count, so statements
// are never double-weighted.
func parseProfile(path string) (map[string][]block, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	byRange := map[string]map[string]block{} // file -> range -> block
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		colon := strings.LastIndex(line, ":")
		if colon < 0 {
			return nil, fmt.Errorf("covgate: %s:%d: no file separator", path, lineNo)
		}
		fields := strings.Fields(line[colon+1:])
		if len(fields) != 3 {
			return nil, fmt.Errorf("covgate: %s:%d: want 'range stmts count', got %q", path, lineNo, line)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("covgate: %s:%d: bad statement count: %v", path, lineNo, err)
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("covgate: %s:%d: bad execution count: %v", path, lineNo, err)
		}
		file := line[:colon]
		ranges := byRange[file]
		if ranges == nil {
			ranges = map[string]block{}
			byRange[file] = ranges
		}
		if prev, ok := ranges[fields[0]]; !ok || count > prev.count {
			ranges[fields[0]] = block{stmts: stmts, count: count}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string][]block, len(byRange))
	for file, ranges := range byRange {
		for _, b := range ranges {
			out[file] = append(out[file], b)
		}
	}
	return out, nil
}
