// Dpsim runs the device simulator standalone: it loads a P4 program,
// replays a trace file (or a built-in probe) through an external port, and
// writes the transmitted frames to an output trace.
//
//	dpsim -program router.p4 -target sdnet -in traffic.ndtr -out out.ndtr
//	dpsim -program router.p4 -probes 100            # built-in probe stream
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"netdebug"
	"netdebug/internal/packet"
	"netdebug/internal/trace"
)

var (
	programPath = flag.String("program", "", "P4 program to load")
	targetKind  = flag.String("target", "reference", "target backend")
	inPath      = flag.String("in", "", "input trace to replay (NDTR format)")
	outPath     = flag.String("out", "", "output trace of transmitted frames")
	probes      = flag.Int("probes", 0, "generate N built-in UDP probes instead of replaying a trace")
	ingress     = flag.Int("ingress", 0, "ingress port for replay")
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	if *programPath == "" {
		fmt.Fprintln(os.Stderr, "usage: dpsim -program FILE [-in trace] [-probes N]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := netdebug.Open(string(src), netdebug.Options{Target: netdebug.TargetKind(*targetKind)})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	dev := sys.Device()

	var out *trace.Writer
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out, err = trace.NewWriter(f)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Flush()
	}

	sent := 0
	switch {
	case *inPath != "":
		f, err := os.Open(*inPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			log.Fatal(err)
		}
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			if err := dev.SendExternal(int(rec.Port), rec.Data, rec.At); err != nil {
				log.Fatal(err)
			}
			sent++
		}
	case *probes > 0:
		src := packet.MAC{2, 0, 0, 0, 0, 0xaa}
		dst := packet.MAC{2, 0, 0, 0, 0xff, 1}
		for i := 0; i < *probes; i++ {
			frame := packet.BuildUDPv4(src, dst, packet.IPv4Addr{10, 0, 0, 1},
				packet.IPv4Addr{10, 0, byte(i % 250), 9}, uint16(i), 53, nil)
			if err := dev.SendExternal(*ingress, frame, time.Duration(i)*time.Microsecond); err != nil {
				log.Fatal(err)
			}
			sent++
		}
	default:
		log.Fatal("provide -in or -probes")
	}

	total := 0
	for port := 0; port < dev.Config().NumPorts; port++ {
		caps := dev.Captures(port)
		total += len(caps)
		for _, c := range caps {
			if out != nil {
				if err := out.Write(trace.Record{At: c.At, Port: uint16(port), Dir: trace.DirTx, Data: c.Data}); err != nil {
					log.Fatal(err)
				}
			}
		}
		if len(caps) > 0 {
			fmt.Printf("port %d: %d frames transmitted\n", port, len(caps))
		}
		dev.ReleaseCaptures(port)
	}
	fmt.Printf("replayed %d frames, %d transmitted, %d dropped\n", sent, total, sent-total)
	fmt.Println("device status:")
	st, _ := sys.Status()
	for _, k := range []string{"target.parser.accept", "target.parser.reject", "dataplane.dropped"} {
		fmt.Printf("  %s=%d\n", k, st[k])
	}
}
