// P4c is the P4 compiler driver: it parses and type-checks a program,
// dumps the compiled IR, and prints the selected backend's resource
// estimate and architectural verdict.
//
//	p4c [-target sdnet|tofino|ebpf|smartnic|reference (or any -fixed variant)] [-resources] [-verify] program.p4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"netdebug"
	"netdebug/internal/p4/compile"
	"netdebug/internal/target"
)

var (
	targetName = flag.String("target", "sdnet",
		"backend to load onto (reference, sdnet[-fixed], tofino[-fixed], ebpf[-fixed], smartnic[-fixed])")
	resources = flag.Bool("resources", false, "print the resource estimate")
	runVerify = flag.Bool("verify", false, "run the formal-verification property suite")
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: p4c [flags] program.p4")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := compile.Compile(string(src))
	if err != nil {
		log.Fatalf("compile failed:\n%v", err)
	}
	fmt.Print(prog.Dump())

	tgt, err := target.ForKind(*targetName)
	if err != nil {
		log.Fatalf("unknown target %q", *targetName)
	}
	if err := tgt.Load(prog); err != nil {
		log.Fatalf("%s rejects the program: %v", tgt.Name(), err)
	}
	fmt.Printf("target %s: program loads\n", tgt.Name())
	if *resources {
		fmt.Printf("resources: %s\n", tgt.Resources())
	}
	if *runVerify {
		results, err := netdebug.VerifyProgram(string(src))
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			fmt.Println(r.Detail)
		}
	}
}
