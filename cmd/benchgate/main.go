// Benchgate compares a freshly measured benchmark file (cmd/benchjson
// output) against the committed BENCH_<PR>.json baseline and fails CI
// when the perf trajectory regresses:
//
//   - any pinned benchmark slower by more than -max-regress percent ns/op
//     (after calibration, see below)
//   - any pinned benchmark allocating more per op than the baseline
//   - a pinned benchmark present in the baseline but missing from the
//     current run (the gate cannot be dodged by deleting a benchmark)
//   - a benchmark in the current run matching -pin but absent from the
//     baseline (the gate cannot be dodged by renaming a benchmark, and a
//     newly pinned hot path must land with a regenerated baseline or it
//     would ride ungated until the next BENCH_<PR>.json)
//   - any -speedup ratio assertion not met by the current run
//
// Because the committed baseline and the CI runner are different
// machines, raw ns/op numbers carry a common hardware factor. With
// -calibrate (the default) the gate estimates that factor as the median
// current/baseline ns/op ratio across the pinned set and judges each
// benchmark against it: a uniform machine-speed difference cancels out,
// while a single benchmark regressing relative to its peers still
// fails. The trade-off is that a genuine *uniform* slowdown of every
// pinned benchmark is absorbed into the skew estimate — run with
// -calibrate=false when baseline and current were measured on the same
// machine. Allocs/op and -speedup checks are machine-independent and
// always exact.
//
// Pinned benchmarks are the hot-path set the repository's 0-alloc and
// scaling guarantees ride on; -pin overrides the default regexp
// (matched against the bare benchmark name; comparisons are keyed by
// package-qualified name, so same-named benchmarks in different
// packages are gated independently).
//
//	benchgate -baseline BENCH_2.json -current bench_current.json
//	benchgate ... -speedup 'BenchmarkTernaryLookupLinear/entries100000:BenchmarkTernaryLookupTupleSpace/entries100000:10'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"netdebug/internal/benchfmt"
)

// defaultPin selects the pinned hot-path benchmarks: the packet path
// (allocation-free guarantee) on every backend including the Tofino
// pipeline, the eBPF software offload, and the SmartNIC flow-cache
// offload (both its accelerator fast path and its punt exception
// path), the device forward path
// (with and without frame capture), the tuple-space lookup scaling
// sweep, and the verify side — the CDCL solver (with its retired DPLL
// reference for the in-run speedup assertion) and sequential
// feasibility-solved path exploration (the parallel variants are
// asserted via -speedup, not pinned, because their allocation counts
// depend on goroutine scheduling) — plus the resident session layer's
// end-to-end throughput (boot-free warm-host session execution) and the
// fuzz fleet's lockstep probe path (one batch through all five
// backends) — and the zero-copy burst path (SendExternalBurst, whose
// 0 allocs/op is the capture ring's contract) plus the multibit LPM
// trie's install and lookup costs (their binary-trie references are
// asserted via -speedup, not pinned) — and the fleet-scale zero-copy
// pair: the batched output checker (whose per-frame form rides only in
// the -speedup assertion) and the single-device case of the
// aggregate-Mpps fleet benchmark (the multi-device cases are asserted
// as a -speedup scaling ratio, since their ns/op depends on the
// runner's core count).
const defaultPin = `^Benchmark(ProcessRouter|ProcessFirewallTernary|RouterProcess|FirewallProcess|(Tofino|EBPF|SmartNIC)Process(Router|FirewallTernary)|DeviceForward(Burst|NoCapture)?|SendExternalBurst|TernaryLookupTupleSpace/.*|LPMTrieInstallMultibit/entries10000|LPMTrieLookupMultibit|Solve(Reference)?RouterLikePath|ExploreParallel/workers1|SessionThroughput|FuzzFleetThroughput|CheckerBatch|FleetAggregateMpps/devices1)$`

// defaultSpeedup asserts the scaling wins within the current run (so
// machine speed cancels out): the tuple-space ternary lookup >= 10x the
// linear reference at 10^5 entries, the CDCL solver rebuild >= 5x the
// retired DPLL on the router-like path formula, and parallel path
// exploration >= 3x at 8 workers — the last one gated on the measuring
// machine actually having 8 CPUs (the "@8" suffix; a laptop or a 4-vCPU
// CI runner cannot exhibit 8-way scaling, so the assertion self-skips
// there and is enforced wherever the hardware can show it).
// The multibit LPM trie must beat the retired binary trie on both
// install (10^4-entry cold fill, ~3.8x measured) and lookup (10^6
// resident entries, ~5.9x measured) — asserted at 2x and 3x to leave
// noise margin. The batched output checker must score >= 2x faster
// than the retired per-frame path (~2.9x measured), and the aggregate
// fleet benchmark must show >= 3x scaling from 1 to 8 simulated
// devices wherever the runner has 8 procs to exhibit it (the "@8"
// self-skip, as for parallel path exploration).
const defaultSpeedup = "BenchmarkTernaryLookupLinear/entries100000:BenchmarkTernaryLookupTupleSpace/entries100000:10," +
	"BenchmarkSolveReferenceRouterLikePath:BenchmarkSolveRouterLikePath:5," +
	"BenchmarkLPMTrieInstallBinary/entries10000:BenchmarkLPMTrieInstallMultibit/entries10000:2," +
	"BenchmarkLPMTrieLookupBinary:BenchmarkLPMTrieLookupMultibit:3," +
	"BenchmarkExploreParallel/workers1:BenchmarkExploreParallel/workers8:3@8," +
	"BenchmarkCheckerPerFrame:BenchmarkCheckerBatch:2," +
	"BenchmarkFleetAggregateMpps/devices1:BenchmarkFleetAggregateMpps/devices8:3@8"

var (
	baseline   = flag.String("baseline", "", "committed baseline JSON (required)")
	current    = flag.String("current", "", "freshly measured JSON (required)")
	maxRegress = flag.Float64("max-regress", 15, "max ns/op regression percent on pinned benchmarks")
	pin        = flag.String("pin", defaultPin, "regexp selecting the pinned benchmarks (by bare name)")
	calibrate  = flag.Bool("calibrate", true,
		"normalize out the median machine-speed skew before applying -max-regress")
	speedups = flag.String("speedup", defaultSpeedup,
		"comma-separated slow:fast:ratio assertions on the current run ('' disables)")
)

// pinnedPair is one baseline benchmark matched by -pin, with its
// current-run counterpart (cur zero-valued when missing).
type pinnedPair struct {
	key       string
	base, cur benchfmt.Record
	present   bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	flag.Parse()
	if *baseline == "" || *current == "" {
		flag.Usage()
		os.Exit(2)
	}
	base, err := benchfmt.Load(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := benchfmt.Load(*current)
	if err != nil {
		log.Fatal(err)
	}
	pinRe, err := regexp.Compile(*pin)
	if err != nil {
		log.Fatalf("bad -pin regexp: %v", err)
	}

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	curBy := cur.ByKey()
	var pairs []pinnedPair
	seen := map[string]bool{}
	for _, b := range base.Benchmarks {
		if !pinRe.MatchString(b.Name) || seen[b.Key()] {
			continue
		}
		seen[b.Key()] = true
		c, ok := curBy[b.Key()]
		pairs = append(pairs, pinnedPair{key: b.Key(), base: b, cur: c, present: ok})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })
	if len(pairs) == 0 {
		log.Fatalf("no baseline benchmark matches pin regexp %q", *pin)
	}

	// The reverse direction: a current benchmark the pin regexp selects
	// that has no baseline counterpart is a hard failure too. Without
	// it, renaming a hot-path benchmark (or adding a new backend's)
	// leaves the new name ungated until someone remembers to regenerate
	// the baseline — exactly the silent gap a gate exists to close.
	var unpinned []string
	seenCur := map[string]bool{}
	for _, c := range cur.Benchmarks {
		if !pinRe.MatchString(c.Name) || seenCur[c.Key()] {
			continue
		}
		seenCur[c.Key()] = true
		if !seen[c.Key()] {
			unpinned = append(unpinned, c.Key())
		}
	}
	sort.Strings(unpinned)
	for _, key := range unpinned {
		fail("%s: pinned benchmark has no baseline entry; regenerate the BENCH_<PR>.json baseline", key)
	}

	// Estimate the common machine-speed factor as the median ns/op ratio.
	skew := 1.0
	if *calibrate {
		var ratios []float64
		for _, p := range pairs {
			if p.present && p.base.NsPerOp > 0 {
				ratios = append(ratios, p.cur.NsPerOp/p.base.NsPerOp)
			}
		}
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			skew = ratios[len(ratios)/2]
			log.Printf("calibration: median machine skew %.2fx (current vs baseline)", skew)
		}
	}

	for _, p := range pairs {
		if !p.present {
			fail("%s: pinned benchmark missing from current run", p.key)
			continue
		}
		pct := (p.cur.NsPerOp/skew - p.base.NsPerOp) / p.base.NsPerOp * 100
		status := "ok"
		if pct > *maxRegress {
			fail("%s: ns/op %.0f -> %.0f (%+.1f%% after %.2fx calibration, limit +%.0f%%)",
				p.key, p.base.NsPerOp, p.cur.NsPerOp, pct, skew, *maxRegress)
			status = "FAIL"
		}
		allocNote := ""
		if p.base.AllocsOp != nil && p.cur.AllocsOp != nil {
			allocNote = fmt.Sprintf(" allocs %d -> %d", *p.base.AllocsOp, *p.cur.AllocsOp)
			if *p.cur.AllocsOp > *p.base.AllocsOp {
				fail("%s: allocs/op increased %d -> %d", p.key, *p.base.AllocsOp, *p.cur.AllocsOp)
				status = "FAIL"
			}
		}
		log.Printf("%-70s ns/op %10.0f -> %10.0f (%+6.1f%%)%s [%s]",
			p.base.Name, p.base.NsPerOp, p.cur.NsPerOp, pct, allocNote, status)
	}

	if *speedups != "" {
		for _, spec := range strings.Split(*speedups, ",") {
			parts := strings.Split(strings.TrimSpace(spec), ":")
			if len(parts) != 3 {
				log.Fatalf("bad -speedup spec %q (want slow:fast:ratio[@minprocs])", spec)
			}
			ratioSpec, minProcs := parts[2], 0
			if at := strings.IndexByte(ratioSpec, '@'); at >= 0 {
				mp, err := strconv.Atoi(ratioSpec[at+1:])
				if err != nil {
					log.Fatalf("bad -speedup minprocs in %q: %v", spec, err)
				}
				ratioSpec, minProcs = ratioSpec[:at], mp
			}
			ratio, err := strconv.ParseFloat(ratioSpec, 64)
			if err != nil {
				log.Fatalf("bad -speedup ratio in %q: %v", spec, err)
			}
			if minProcs > 0 && cur.GOMAXPROCS < minProcs {
				// A parallel-scaling assertion is only meaningful when the
				// measuring machine has the cores to show the scaling.
				log.Printf("%-70s skipped: current run measured at GOMAXPROCS=%d < %d",
					"speedup "+parts[1], cur.GOMAXPROCS, minProcs)
				continue
			}
			slow, errS := cur.FindByName(parts[0])
			fast, errF := cur.FindByName(parts[1])
			switch {
			case errS != nil:
				fail("speedup %s: %v", spec, errS)
			case errF != nil:
				fail("speedup %s: %v", spec, errF)
			case fast.NsPerOp <= 0 || slow.NsPerOp < ratio*fast.NsPerOp:
				fail("speedup: %s (%.0f ns/op) is only %.1fx faster than %s (%.0f ns/op), want >= %.0fx",
					parts[1], fast.NsPerOp, slow.NsPerOp/fast.NsPerOp, parts[0], slow.NsPerOp, ratio)
			default:
				log.Printf("%-70s %.0fx >= %.0fx [ok]",
					"speedup "+parts[1], slow.NsPerOp/fast.NsPerOp, ratio)
			}
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			log.Printf("FAIL: %s", f)
		}
		log.Fatalf("%d benchmark gate failure(s) against %s", len(failures), *baseline)
	}
	log.Printf("gate passed: %d pinned benchmarks within +%.0f%% of %s, no alloc increases",
		len(pairs), *maxRegress, *baseline)
}
