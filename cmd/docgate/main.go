// Docgate keeps the architecture notes honest the same way benchgate
// keeps the perf trajectory honest: it fails CI when documentation
// rots. Two checks, over every tracked markdown file:
//
//   - Intra-repo links resolve. Every non-external markdown link
//     ([text](target), including images) must point at a file or
//     directory that exists, and a fragment (file.md#section, or a
//     bare #section within the same file) must match a heading in the
//     target file under GitHub's anchor rules. External schemes
//     (http, https, mailto) are out of scope — CI should not depend
//     on the internet.
//
//   - Benchmark baselines named in prose exist. Every BENCH_<n>.json
//     mentioned anywhere in a doc (including code fences — make
//     invocations name them too) must exist at the repository root, so
//     a PR that bumps the perf-trajectory baseline cannot leave docs
//     pointing at a file that was never committed or has been renamed.
//
//   - Embedded Go examples are real Go. Every ```go fenced block must
//     survive go/format.Source — the same parser gofmt and go vet
//     front with — and come back unchanged, so snippets are both
//     syntactically valid (as a file, declaration list, or statement
//     list) and gofmt-clean. A block that is deliberately elided
//     pseudo-code should use a plain ``` fence or a non-go info
//     string; marking it ```go asserts it parses.
//
//     docgate [-root dir] [file.md ...]
//
// With no file arguments it checks the maintained documentation set:
// ROADMAP.md and every *.md under docs/. (PAPERS.md and SNIPPETS.md
// are retrieved reference material and are not gated.) Exit status 1
// on any finding, with one line per finding.
package main

import (
	"flag"
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var root = flag.String("root", ".", "repository root for resolving links and finding default files")

// linkRe matches inline markdown links and images: [text](target) /
// ![alt](target). Targets with spaces or titles ("...") are not used in
// this repository's docs, so the simple form is enough — and docgate
// would flag the unresolvable remainder anyway.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// headingRe matches ATX headings; setext headings are not used here.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

var fenceRe = regexp.MustCompile("^(```+|~~~+)\\s*([A-Za-z0-9_+-]*)")

// benchRe matches perf-trajectory baseline filenames (BENCH_<n>.json)
// wherever they appear; each must exist at the repository root.
var benchRe = regexp.MustCompile(`BENCH_\d+\.json`)

// slug reduces a heading to its GitHub anchor: lowercase, spaces to
// hyphens, everything but letters, digits, hyphens and underscores
// dropped. (Duplicate-heading -1 suffixes are not modelled; none of
// the docs repeat a heading.)
func slug(heading string) string {
	// Inline code and emphasis markers vanish in anchors.
	heading = strings.NewReplacer("`", "", "*", "", "_", "_").Replace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// doc is one parsed markdown file: its anchors, links, and go fences.
type doc struct {
	path      string          // repo-relative, slash-separated
	anchors   map[string]bool // GitHub anchor slugs of its headings
	links     []link
	fences    []fence
	benchRefs []link // BENCH_<n>.json mentions, fenced or not
}

type link struct {
	line   int
	target string
}

type fence struct {
	line int // line of the opening ```go
	src  string
}

func parseDoc(path string, data []byte) *doc {
	d := &doc{path: path, anchors: map[string]bool{}}
	lines := strings.Split(string(data), "\n")
	inFence, goFence := "", false
	var goStart int
	var goLines []string
	for i, ln := range lines {
		for _, m := range benchRe.FindAllString(ln, -1) {
			d.benchRefs = append(d.benchRefs, link{line: i + 1, target: m})
		}
		if inFence != "" {
			if strings.HasPrefix(strings.TrimSpace(ln), inFence) {
				if goFence {
					d.fences = append(d.fences, fence{line: goStart, src: strings.Join(goLines, "\n")})
				}
				inFence, goFence, goLines = "", false, nil
			} else if goFence {
				goLines = append(goLines, ln)
			}
			continue
		}
		if m := fenceRe.FindStringSubmatch(ln); m != nil {
			inFence = m[1][:3]
			goFence = m[2] == "go"
			goStart = i + 1
			continue
		}
		if m := headingRe.FindStringSubmatch(ln); m != nil {
			d.anchors[slug(m[1])] = true
		}
		for _, m := range linkRe.FindAllStringSubmatch(ln, -1) {
			d.links = append(d.links, link{line: i + 1, target: m[1]})
		}
	}
	return d
}

func external(target string) bool {
	for _, scheme := range []string{"http://", "https://", "mailto:"} {
		if strings.HasPrefix(target, scheme) {
			return true
		}
	}
	return false
}

func main() {
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		// The default set is the *maintained* documentation: the
		// architecture notes and the roadmap. PAPERS.md and SNIPPETS.md
		// are retrieved reference material whose links point into
		// repositories this one does not contain.
		files = append(files, "ROADMAP.md")
		for _, pat := range []string{"docs/*.md"} {
			m, err := filepath.Glob(filepath.Join(*root, pat))
			if err != nil {
				fmt.Fprintln(os.Stderr, "docgate:", err)
				os.Exit(2)
			}
			for _, f := range m {
				rel, err := filepath.Rel(*root, f)
				if err != nil {
					fmt.Fprintln(os.Stderr, "docgate:", err)
					os.Exit(2)
				}
				files = append(files, filepath.ToSlash(rel))
			}
		}
	}

	docs := map[string]*doc{}
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(*root, filepath.FromSlash(f)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "docgate:", err)
			os.Exit(2)
		}
		docs[f] = parseDoc(f, data)
	}

	findings := 0
	fail := func(format string, args ...any) {
		fmt.Printf("docgate: "+format+"\n", args...)
		findings++
	}
	// anchorsOf returns the anchor set of a repo-relative markdown
	// path, parsing files outside the checked set on demand.
	anchorsOf := func(path string) (map[string]bool, bool) {
		if d, ok := docs[path]; ok {
			return d.anchors, true
		}
		data, err := os.ReadFile(filepath.Join(*root, filepath.FromSlash(path)))
		if err != nil {
			return nil, false
		}
		d := parseDoc(path, data)
		docs[path] = d
		return d.anchors, true
	}

	for _, f := range files {
		d := docs[f]
		for _, l := range d.links {
			if external(l.target) {
				continue
			}
			path, frag, hasFrag := strings.Cut(l.target, "#")
			dest := f // bare #fragment: same file
			if path != "" {
				dest = filepath.ToSlash(filepath.Join(filepath.Dir(f), path))
				if st, err := os.Stat(filepath.Join(*root, filepath.FromSlash(dest))); err != nil {
					fail("%s:%d: dead link %q (%s does not exist)", f, l.line, l.target, dest)
					continue
				} else if st.IsDir() {
					continue // directory links carry no anchors
				}
			}
			if !hasFrag || frag == "" {
				continue
			}
			if !strings.HasSuffix(dest, ".md") {
				continue // anchors into non-markdown files are not modelled
			}
			anchors, ok := anchorsOf(dest)
			if !ok {
				fail("%s:%d: dead link %q (cannot read %s)", f, l.line, l.target, dest)
				continue
			}
			if !anchors[frag] {
				fail("%s:%d: dead anchor %q (no heading in %s slugs to %q)", f, l.line, l.target, dest, frag)
			}
		}
		for _, br := range d.benchRefs {
			if _, err := os.Stat(filepath.Join(*root, br.target)); err != nil {
				fail("%s:%d: stale bench reference %q (not at repository root)", f, br.line, br.target)
			}
		}
		for _, fc := range d.fences {
			formatted, err := format.Source([]byte(fc.src))
			if err != nil {
				fail("%s:%d: go snippet does not parse: %v", f, fc.line, err)
				continue
			}
			if string(formatted) != fc.src && string(formatted) != fc.src+"\n" &&
				strings.TrimRight(string(formatted), "\n") != strings.TrimRight(fc.src, "\n") {
				fail("%s:%d: go snippet is not gofmt-clean", f, fc.line)
			}
		}
	}
	if findings > 0 {
		fmt.Printf("docgate: %d finding(s)\n", findings)
		os.Exit(1)
	}
	fmt.Printf("docgate: %d file(s) clean\n", len(files))
}
