// Figures regenerates every table and figure from the paper's evaluation:
//
//	figures -figure 2      the use-case capability matrix (Figure 2)
//	figures -exp E1        the §4 reject-erratum case study
//	figures -exp T1        performance sweep (throughput / rate / latency)
//	figures -exp T2        resource quantification across programs
//	figures -exp T3        fault localization accuracy
//	figures -exp T4        comparison of alternative specifications
//	figures -exp T5        million-flow table-occupancy sweep
//	figures -exp V1        verify-side throughput (parallel path exploration)
//	figures -all           everything, in order
//
// The -parallel flag runs the suite-shaped experiments across a worker
// pool: Figure 2 through scenario.BuildMatrixParallel and the T1 sweep
// through netdebug.RunSuite (one System per worker). -parallel 0 (the
// default) keeps the sequential paths; a negative value selects one
// worker per CPU.
//
// Output is plain text suitable for EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"netdebug"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
	"netdebug/internal/scenario"
	"netdebug/internal/target"
	"netdebug/internal/verify"
	"netdebug/internal/verify/solver"
)

var (
	figure      = flag.Int("figure", 0, "regenerate a figure (2)")
	exp         = flag.String("exp", "", "regenerate an experiment (E1, T1, T2, T3, T4, T5, V1)")
	all         = flag.Bool("all", false, "regenerate everything")
	details     = flag.Bool("details", false, "print per-scenario detail lines for Figure 2")
	parallel    = flag.Int("parallel", 0, "suite workers: 0 sequential, <0 one per CPU")
	sweepMax    = flag.Int("sweep-max", 1000000, "largest T5 occupancy")
	sweepTables = flag.String("sweep-tables", "",
		"comma-separated T5 table subset (e.g. t_lpm for the 10^7 LPM-only tier); empty sweeps all three")
	sweepBackends = flag.String("sweep-backends", "",
		"comma-separated T5 backend subset; empty sweeps all four")
	sweepSize = flag.Int("sweep-size", 0, "declared T5 table size; 0 means 2^20 (raise for occupancies past 10^6)")
	csvOut    = flag.Bool("csv", false, "emit T5 sweep points as CSV instead of tables")
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	ran := false
	if *all || *figure == 2 {
		figure2()
		ran = true
	}
	runs := map[string]func(){"E1": e1, "T1": t1, "T2": t2, "T3": t3, "T4": t4, "T5": t5, "V1": v1}
	if *all {
		for _, id := range []string{"E1", "T1", "T2", "T3", "T4", "T5", "V1"} {
			runs[id]()
		}
		ran = true
	} else if *exp != "" {
		fn, ok := runs[*exp]
		if !ok {
			log.Fatalf("unknown experiment %q", *exp)
		}
		fn()
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func header(s string) {
	fmt.Println()
	fmt.Println("## " + s)
	fmt.Println()
}

func figure2() {
	header("Figure 2 — use-case capability matrix")
	var m *scenario.Matrix
	if *parallel != 0 {
		m = scenario.BuildMatrixParallel(scenario.All(), *parallel)
	} else {
		m = scenario.BuildMatrix(scenario.All())
	}
	fmt.Println(m.Render())
	if *details {
		for _, d := range m.SortedDetails() {
			fmt.Println("  " + d)
		}
	}
}

var (
	srcMAC = packet.MAC{2, 0, 0, 0, 0, 0xaa}
	gwMAC  = packet.MAC{2, 0, 0, 0, 0xff, 1}
)

func routeEntry() netdebug.Entry {
	return netdebug.Entry{
		Table:  "ipv4_lpm",
		Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(1, 9)},
	}
}

func openRouter(kind netdebug.TargetKind) *netdebug.System {
	sys, err := netdebug.Open(p4test.Router, netdebug.Options{Target: kind})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.InstallEntry(routeEntry()); err != nil {
		log.Fatal(err)
	}
	return sys
}

func e1() {
	header("E1 — §4 case study: SDNet reject parser state")
	results, err := netdebug.VerifyProgram(p4test.Router)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("software formal verification of the router program:")
	for _, r := range results {
		fmt.Printf("  %s\n", r.Detail)
	}
	bad := packet.BuildUDPv4(srcMAC, gwMAC, packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, nil)
	bad[14] = 0x65
	spec := &netdebug.TestSpec{
		Name: "reject-validation",
		Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
			Name: "malformed", Template: bad, Count: 100, RatePPS: 1e6,
		}}},
		Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{
			Name: "malformed-dropped", Stream: "malformed", ExpectDrop: true,
		}}},
	}
	fmt.Printf("\n%-18s %-40s\n", "target", "NetDebug verdict on malformed-dropped")
	for _, kind := range []netdebug.TargetKind{
		netdebug.TargetReference,
		netdebug.TargetSDNet, netdebug.TargetSDNetFixed,
		netdebug.TargetTofino, netdebug.TargetTofinoFixed,
		netdebug.TargetEBPF, netdebug.TargetEBPFFixed,
		netdebug.TargetSmartNIC, netdebug.TargetSmartNICFixed,
	} {
		sys := openRouter(kind)
		rep, err := sys.Validate(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %s\n", kind, rep)
		sys.Close()
	}
}

func t1() {
	header("T1 — performance testing: packet-size sweep on sdnet target")
	sizes := []int{64, 128, 256, 512, 1024, 1518}
	specs := make([]*netdebug.TestSpec, len(sizes))
	for i, size := range sizes {
		frame := packet.BuildUDPv4(srcMAC, gwMAC, packet.IPv4Addr{10, 0, 0, 1},
			packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, make([]byte, size-42))
		specs[i] = &netdebug.TestSpec{
			Name: "t1",
			Gen: netdebug.GenSpec{Streams: []netdebug.StreamSpec{{
				Name: "flood", Template: frame, Count: 2000,
			}}},
			Check: netdebug.CheckSpec{Rules: []netdebug.Rule{{Name: "fwd", Stream: "flood", ExpectPort: 1}}},
		}
	}
	var reps []*netdebug.Report
	var err error
	if *parallel != 0 {
		// Suite mode: one freshly opened System per worker.
		reps, err = netdebug.RunSuite(p4test.Router, netdebug.Options{
			Target:   netdebug.TargetSDNet,
			Baseline: []netdebug.Entry{routeEntry()},
		}, specs, *parallel)
	} else {
		sys := openRouter(netdebug.TargetSDNet)
		defer sys.Close()
		reps = make([]*netdebug.Report, len(specs))
		for i, spec := range specs {
			if reps[i], err = sys.Validate(spec); err != nil {
				break
			}
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %14s %12s %10s %10s\n", "bytes", "throughput", "rate", "lat p50", "lat p99")
	for i, size := range sizes {
		rep := reps[i]
		if rep == nil || !rep.Pass {
			log.Fatalf("size %d: %v", size, rep)
		}
		fmt.Printf("%8d %11.3f Gbps %9.3f Mpps %8dns %8dns\n",
			size, rep.OutBPS/1e9, rep.OutPPS/1e6, rep.LatP50Ns, rep.LatP99Ns)
	}
}

func t5() {
	if !*csvOut {
		header("T5 — million-flow occupancy sweep: lookup latency and memory vs table occupancy")
	}
	occupancies := []int{}
	for o := 100; o <= *sweepMax; o *= 10 {
		occupancies = append(occupancies, o)
	}
	if len(occupancies) == 0 {
		// -sweep-max below the first decade: run the single requested
		// point rather than falling back to the full default sweep.
		occupancies = []int{*sweepMax}
	}
	var tables, backends []string
	if *sweepTables != "" {
		tables = strings.Split(*sweepTables, ",")
	}
	if *sweepBackends != "" {
		backends = strings.Split(*sweepBackends, ",")
	}
	points, err := scenario.MillionFlowSweep(scenario.SweepOptions{
		Backends:    backends,
		Occupancies: occupancies,
		Tables:      tables,
		TableSize:   *sweepSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	// A table subset is the deep-tier shape (e.g. -sweep-tables t_lpm
	// -sweep-max 10000000): print just the occupancy sweep — the
	// mask-diversity axis needs the ternary table populated.
	if tables != nil {
		if *csvOut {
			fmt.Print(scenario.SweepCSV(points))
		} else {
			fmt.Print(scenario.RenderSweep(points))
		}
		return
	}
	// The mask-diversity axis, swept per backend: at fixed occupancy,
	// raising the number of distinct mask tuples degrades the software
	// tuple-space/mask-set lookups (one probe or scan section per
	// tuple) while the Tofino TCAM's modelled latency stays flat —
	// silicon compares every mask in parallel. On the eBPF backend the
	// diversity also runs into the mask-set verifier budget, a finding
	// of its own.
	occ := 10000
	if *sweepMax < occ {
		occ = *sweepMax
	}
	var maskCounts []int
	for _, masks := range []int{8, 64, 512, 4096, occ} {
		if masks > occ {
			masks = occ // more tuples than entries adds no groups
		}
		if n := len(maskCounts); n > 0 && maskCounts[n-1] == masks {
			continue
		}
		maskCounts = append(maskCounts, masks)
	}
	var maskPoints []scenario.SweepPoint
	for _, backend := range []string{"reference", "tofino", "ebpf", "smartnic"} {
		for _, masks := range maskCounts {
			pts, err := scenario.MillionFlowSweep(scenario.SweepOptions{
				Backends:      []string{backend},
				Occupancies:   []int{occ},
				TableSize:     1 << 20,
				DistinctMasks: masks,
			})
			if err != nil {
				log.Fatal(err)
			}
			maskPoints = append(maskPoints, pts...)
		}
	}

	if *csvOut {
		// Machine-readable form for external plotting: one document,
		// occupancy sweep then mask-diversity sweep.
		fmt.Print(scenario.SweepCSV(append(points, maskPoints...)))
		return
	}
	fmt.Print(scenario.RenderSweep(points))
	for _, pt := range points {
		if pt.CapacityNote != "" {
			fmt.Println("\n(capacity findings above are per-backend: sdnet clips installs at ~90% of declared size," +
				"\n tofino at its per-stage placement grants — 480 SRAM blocks per table, 144 TCAM row-groups —" +
				"\n and ebpf at its per-map-type memlock grants, with hash-map installs past capacity silently lying)")
			break
		}
	}
	fmt.Printf("\nmask-diversity sweep (occupancy %d; model/ns separates TCAM from scan architectures):\n", occ)
	fmt.Print(scenario.RenderSweep(maskPoints))
}

func t2() {
	header("T2 — resources quantification across programs and backends")
	programs := []struct{ name, src string }{
		{"reflector", p4test.Reflector},
		{"l2switch", p4test.L2Switch},
		{"router", p4test.Router},
		{"router-split", p4test.RouterSplit},
		{"firewall", p4test.Firewall},
	}
	fmt.Printf("%-14s | %-12s | %-32s | %-42s | %-38s | %s\n",
		"program", "reference", "sdnet (FPGA)", "tofino (ASIC)", "ebpf (software offload)", "smartnic (DPU)")
	for _, p := range programs {
		prog, err := compile.Compile(p.src)
		if err != nil {
			log.Fatal(err)
		}
		sd := target.NewSDNet(target.DefaultErrata())
		if err := sd.Load(prog); err != nil {
			log.Fatal(err)
		}
		tf := target.NewTofino(target.DefaultTofinoErrata())
		if err := tf.Load(prog); err != nil {
			log.Fatal(err)
		}
		eb := target.NewEBPF(target.DefaultEBPFErrata())
		if err := eb.Load(prog); err != nil {
			log.Fatal(err)
		}
		sn := target.NewSmartNIC(target.DefaultSmartNICErrata())
		if err := sn.Load(prog); err != nil {
			log.Fatal(err)
		}
		rs, rt, re, rn := sd.Resources(), tf.Resources(), eb.Resources(), sn.Resources()
		fmt.Printf("%-14s | %-12s | %-32s | %-42s | %-38s | %s\n",
			p.name,
			"0 (software)",
			fmt.Sprintf("LUT %4.1f%%  FF %4.1f%%  BRAM %4.1f%%", rs.LUTPct, rs.FFPct, rs.BRAMPct),
			fmt.Sprintf("stages %2d  SRAM %3d  TCAM %3d  PHV %4.1f%%",
				rt.Stages, rt.SRAMBlocks, rt.TCAMBlocks, rt.PHVPct),
			fmt.Sprintf("insns %4d  maps %d  memlock %4.1f%%",
				re.Insns, re.Maps, re.MemlockPct),
			fmt.Sprintf("accel %d  core %d  SRAM %4.1f%%",
				rn.AccelTables, rn.CoreTables, rn.AccelPct))
	}
}

func t3() {
	header("T3 — fault localization: NetDebug names the faulty stage")
	probe := packet.BuildUDPv4(srcMAC, gwMAC, packet.IPv4Addr{10, 0, 0, 1},
		packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, make([]byte, 26))
	cases := []struct {
		name  string
		setup func(sys *netdebug.System)
		probe []byte
		want  string
	}{
		{"healthy device", func(*netdebug.System) {}, probe, "none"},
		{"mac-in fault (port 0 down)", func(s *netdebug.System) {
			s.InjectFault(netdebug.Fault{Kind: netdebug.FaultPortDown, Port: 0})
		}, probe, "mac-in port 0"},
		{"egress fault (queue stuck)", func(s *netdebug.System) {
			s.InjectFault(netdebug.Fault{Kind: netdebug.FaultQueueStuck, Port: 1})
		}, probe, "egress port 1"},
		{"control drop (route table cleared)", func(s *netdebug.System) {
			s.ClearTable("ipv4_lpm")
		}, probe, "RouterIngress"},
		{"parser drop (malformed probe)", func(*netdebug.System) {}, func() []byte {
			b := append([]byte(nil), probe...)
			b[14] = 0x65
			return b
		}(), "parser"},
	}
	fmt.Printf("%-38s %-18s %-18s %s\n", "injected fault", "diagnosed stage", "expected", "ok")
	for _, c := range cases {
		sys := openRouter(netdebug.TargetReference)
		c.setup(sys)
		diag := sys.Localize(c.probe, 0, 1)
		ok := "yes"
		if diag.Stage != c.want {
			ok = "NO"
		}
		fmt.Printf("%-38s %-18s %-18s %s\n", c.name, diag.Stage, c.want, ok)
		sys.Close()
	}
}

func t4() {
	header("T4 — comparison: alternative specifications of the same router")
	mono := openRouter(netdebug.TargetReference)
	defer mono.Close()
	split, err := netdebug.Open(p4test.RouterSplit, netdebug.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer split.Close()
	if err := split.InstallEntries([]netdebug.Entry{
		{
			Table:  "lpm_nexthop",
			Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(0x0a000000, 32), PrefixLen: 8}},
			Action: "set_nexthop",
			Args:   []netdebug.Value{netdebug.NewValue(7, 16)},
		},
		{
			Table:  "nexthop_egress",
			Keys:   []netdebug.KeyValue{{Value: netdebug.NewValue(7, 16)}},
			Action: "set_egress",
			Args:   []netdebug.Value{netdebug.ValueFromBytes(gwMAC[:]), netdebug.NewValue(1, 9)},
		},
	}); err != nil {
		log.Fatal(err)
	}
	probes, diverged := 0, 0
	for i := 0; i < 500; i++ {
		dstIP := packet.IPv4Addr{10, byte(i / 256), byte(i % 256), 9}
		if i%7 == 6 {
			dstIP = packet.IPv4Addr{172, 16, 0, byte(i)}
		}
		frame := packet.BuildUDPv4(srcMAC, gwMAC, packet.IPv4Addr{10, 0, 0, 1}, dstIP, uint16(i), 53, nil)
		if i%13 == 12 {
			frame[14] = 0x65
		}
		probes++
		ra := mono.Device().InjectInternal(frame, 0, mono.Device().Now(), false)
		rb := split.Device().InjectInternal(frame, 0, split.Device().Now(), false)
		same := ra.Dropped() == rb.Dropped()
		if same && !ra.Dropped() {
			same = ra.Outputs[0].Port == rb.Outputs[0].Port &&
				string(ra.Outputs[0].Data) == string(rb.Outputs[0].Data)
		}
		if !same {
			diverged++
		}
	}
	fmt.Printf("router vs router-split: %d probes, %d divergences\n", probes, diverged)
}

// v1 measures the verify side: parallel path exploration throughput
// (paths/s at 1..N workers with per-path feasibility solving) and the
// CDCL solver rebuild against the retired DPLL reference on a
// router-like path formula. Results are identical at every worker
// count — only the wall clock moves.
func v1() {
	header("V1 — verify-side throughput (CDCL solver + parallel exploration)")

	// Solver micro: the router-like path condition that anchors the
	// pinned benchmark set.
	constraints := []solver.BV{
		solver.Eq(solver.Var("ethernet.etherType", 16), solver.ConstUint(0x0800, 16)),
		solver.Neq(solver.Var("ipv4.version", 4), solver.ConstUint(4, 4)),
		solver.Bin(solver.OpUge, solver.Var("ipv4.ihl", 4), solver.ConstUint(5, 4)),
		solver.Neq(solver.Var("ipv4.ttl", 8), solver.ConstUint(0, 8)),
	}
	const reps = 200
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		if _, st := solver.Solve(constraints); st != solver.Sat {
			log.Fatal("router-like formula must be sat")
		}
	}
	cdclNs := time.Since(t0).Nanoseconds() / reps
	t0 = time.Now()
	for i := 0; i < reps; i++ {
		if _, st := solver.SolveReference(constraints); st != solver.Sat {
			log.Fatal("router-like formula must be sat")
		}
	}
	refNs := time.Since(t0).Nanoseconds() / reps
	fmt.Printf("router-like solve: cdcl %6dns/op  reference-dpll %8dns/op  speedup %.1fx\n\n",
		cdclNs, refNs, float64(refNs)/float64(cdclNs))

	fmt.Printf("%-12s %8s %7s %7s %7s %10s %10s %9s %8s %8s\n",
		"program", "workers", "paths", "pruned", "ms", "paths/s", "props", "conflicts", "learned", "peakcls")
	progs := []struct {
		name string
		src  string
	}{
		{"router", p4test.Router},
		{"router-split", p4test.RouterSplit},
		{"firewall", p4test.Firewall},
		{"synth-splits", v1SynthFlow},
	}
	// digest captures everything observable about an exploration —
	// path order, verdicts, action choices, constraints, and sorted
	// models — so the cross-worker-count comparison below catches any
	// divergence, not just a changed path count.
	digest := func(exp *verify.Exploration) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%d/%d/%d|", len(exp.Paths), exp.Pruned, exp.Truncated)
		for _, p := range exp.Paths {
			fmt.Fprintf(&b, "#%d %s %v %v %v |", p.ID, p.Verdict, p.ParserPath, p.Actions, p.Dropped)
			for _, c := range p.Constraints {
				fmt.Fprintf(&b, "%s;", c)
			}
			names := make([]string, 0, len(p.Model))
			for name := range p.Model {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Fprintf(&b, "%s=%s;", name, p.Model[name])
			}
		}
		return b.String()
	}
	for _, pr := range progs {
		prog, err := compile.Compile(pr.src)
		if err != nil {
			log.Fatal(err)
		}
		var base string
		for _, workers := range []int{1, 2, 4, 8} {
			t0 := time.Now()
			exp, err := verify.ExploreWithStats(prog, verify.Options{Workers: workers, SolvePaths: true})
			if err != nil {
				log.Fatal(err)
			}
			wall := time.Since(t0)
			explored := len(exp.Paths) + exp.Pruned
			fmt.Printf("%-12s %8d %7d %7d %7.1f %10.0f %10d %9d %8d %8d\n",
				pr.name, workers, len(exp.Paths), exp.Pruned,
				float64(wall.Microseconds())/1000, float64(explored)/wall.Seconds(),
				exp.Solver.Propagations, exp.Solver.Conflicts, exp.Solver.Learned, exp.Solver.PeakClauses)
			d := digest(exp)
			if workers == 1 {
				base = d
			} else if d != base {
				log.Fatalf("%s: %d workers changed the explored result (paths, order, constraints, or models differ from sequential)",
					pr.name, workers)
			}
		}
	}
}

// v1SynthFlow is a fixed many-path flow (32 if/else combinations times 4
// table outcomes) whose conditions exercise the solver's adders — the
// workload behind BenchmarkExploreParallel.
const v1SynthFlow = `
header flow_t { bit<8> f0; bit<8> f1; bit<8> f2; bit<8> f3; }
struct hs { flow_t flow; }
parser P(packet_in pkt, out hs hdr, inout standard_metadata_t sm) {
  state start { pkt.extract(hdr.flow); transition accept; }
}
control I(inout hs hdr, inout standard_metadata_t sm) {
  action bump(bit<8> d) { hdr.flow.f2 = hdr.flow.f2 + d; }
  action drop() { mark_to_drop(); }
  table steer {
    key = { hdr.flow.f0: exact; }
    actions = { bump; drop; NoAction; }
    default_action = NoAction();
  }
  apply {
    sm.egress_spec = 9w1;
    if (hdr.flow.f0 + hdr.flow.f1 < 8w117) { hdr.flow.f3 = hdr.flow.f3 + 8w1; } else { hdr.flow.f3 = hdr.flow.f3 - 8w3; }
    if (hdr.flow.f1 + hdr.flow.f2 >= 8w60) { hdr.flow.f3 = hdr.flow.f3 + 8w1; } else { hdr.flow.f3 = hdr.flow.f3 - 8w3; }
    if (hdr.flow.f2 + hdr.flow.f3 <= 8w200) { hdr.flow.f3 = hdr.flow.f3 + 8w1; } else { hdr.flow.f3 = hdr.flow.f3 - 8w3; }
    if (hdr.flow.f0 + hdr.flow.f3 > 8w31) { hdr.flow.f3 = hdr.flow.f3 + 8w1; } else { hdr.flow.f3 = hdr.flow.f3 - 8w3; }
    if (hdr.flow.f1 + hdr.flow.f3 < 8w188) { hdr.flow.f3 = hdr.flow.f3 + 8w1; } else { hdr.flow.f3 = hdr.flow.f3 - 8w3; }
    steer.apply();
  }
}
control D(packet_out pkt, in hs hdr) { apply { pkt.emit(hdr.flow); } }
S(P(), I(), D()) main;
`
