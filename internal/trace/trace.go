// Package trace implements NetDebug's packet trace file format, used for
// golden files, capture archiving, and replay.
//
// The format is pcap-inspired but self-contained: a 16-byte header (magic,
// version, port-count hint) followed by length-prefixed records, each
// carrying a virtual-time timestamp in nanoseconds, the port, a direction
// flag, and the frame bytes. All integers are big-endian.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic identifies trace files ("NDTR").
const Magic = 0x4e445452

// Version is the current format version.
const Version = 1

// Direction of a recorded frame.
type Direction uint8

// Directions.
const (
	DirRx Direction = 0
	DirTx Direction = 1
)

// Record is one captured frame.
type Record struct {
	At   time.Duration
	Port uint16
	Dir  Direction
	Data []byte
}

// Writer streams records to a file.
type Writer struct {
	w     *bufio.Writer
	count int
}

// NewWriter writes the file header and returns a writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:4], Magic)
	binary.BigEndian.PutUint16(hdr[4:6], Version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if len(r.Data) > 1<<20 {
		return fmt.Errorf("trace: frame of %d bytes exceeds 1MiB limit", len(r.Data))
	}
	var hdr [15]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(r.At.Nanoseconds()))
	binary.BigEndian.PutUint16(hdr[8:10], r.Port)
	hdr[10] = byte(r.Dir)
	binary.BigEndian.PutUint32(hdr[11:15], uint32(len(r.Data)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	if _, err := w.w.Write(r.Data); err != nil {
		return fmt.Errorf("trace: writing frame: %w", err)
	}
	w.count++
	return nil
}

// Flush commits buffered records.
func (w *Writer) Flush() error { return w.w.Flush() }

// Count returns the number of records written.
func (w *Writer) Count() int { return w.count }

// Reader streams records from a file.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != Magic {
		return nil, errors.New("trace: bad magic; not a NetDebug trace file")
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{r: br}, nil
}

// Next returns the next record, or io.EOF at the end of the file.
func (r *Reader) Next() (Record, error) {
	var hdr [15]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: reading record header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[11:15])
	if n > 1<<20 {
		return Record{}, fmt.Errorf("trace: frame length %d exceeds 1MiB limit", n)
	}
	rec := Record{
		At:   time.Duration(binary.BigEndian.Uint64(hdr[0:8])),
		Port: binary.BigEndian.Uint16(hdr[8:10]),
		Dir:  Direction(hdr[10]),
		Data: make([]byte, n),
	}
	if _, err := io.ReadFull(r.r, rec.Data); err != nil {
		return Record{}, fmt.Errorf("trace: reading frame: %w", err)
	}
	return rec, nil
}

// ReadAll drains the reader.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
