package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{At: 0, Port: 0, Dir: DirRx, Data: []byte{1, 2, 3}},
		{At: time.Microsecond, Port: 3, Dir: DirTx, Data: make([]byte, 1500)},
		{At: time.Hour, Port: 65535, Dir: DirRx, Data: []byte{}},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("records = %d", len(got))
	}
	for i := range recs {
		if got[i].At != recs[i].At || got[i].Port != recs[i].Port ||
			got[i].Dir != recs[i].Dir || !bytes.Equal(got[i].Data, recs[i].Data) {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 16))); err == nil {
		t.Fatal("zero header should fail")
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("short header should fail")
	}
}

func TestRejectsOversizeFrame(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(Record{Data: make([]byte, 1<<20+1)}); err == nil {
		t.Fatal("oversize frame should be rejected")
	}
}

func TestTruncatedFile(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{Data: []byte{1, 2, 3, 4}})
	w.Flush()
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record should fail")
	}
}

func TestEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	var want []Record
	for i := 0; i < 200; i++ {
		data := make([]byte, rng.Intn(256))
		rng.Read(data)
		rec := Record{
			At:   time.Duration(rng.Int63n(1e15)),
			Port: uint16(rng.Intn(65536)),
			Dir:  Direction(rng.Intn(2)),
			Data: data,
		}
		want = append(want, rec)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r, _ := NewReader(&buf)
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].At != want[i].At || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}
