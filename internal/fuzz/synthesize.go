package fuzz

import (
	"fmt"
	"strings"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/verify"
	"netdebug/internal/verify/solver"
)

// solverRound closes the loop from the verifier's side: explore the
// reference program symbolically with SolvePaths, and for every feasible
// path whose behaviour the mutation engine has not yet reached, evaluate
// the path's Model into a concrete frame and inject it through the fleet
// like any other probe. Coverage-novel solver frames enter the corpus,
// so subsequent mutation rounds explore around them.
func (f *Fleet) solverRound() error {
	ex, err := verify.ExploreWithStats(f.prog, verify.Options{
		SolvePaths: true,
		Workers:    1,
		MaxPaths:   f.opts.MaxPaths,
	})
	if err != nil {
		return fmt.Errorf("fuzz: path exploration: %w", err)
	}
	f.pathsN = len(ex.Paths)
	var frames [][]byte
	seen := map[string]bool{}
	for _, p := range ex.Paths {
		if p.Model == nil {
			continue // solver returned Unknown for this path
		}
		// Uncovered-path targeting: skip paths whose reference-side
		// signature a seed or mutation probe has already produced.
		if f.refCovered[pathTargetSig(p)] {
			continue
		}
		frame, ok := f.synthesize(p)
		if !ok || seen[string(frame)] {
			continue
		}
		seen[string(frame)] = true
		frames = append(frames, frame)
	}
	if len(frames) == 0 {
		return nil
	}
	f.solverN = len(frames)
	f.mergeBatch(frames, OriginSolver, nil, f.runBatch(frames))
	return nil
}

// synthesize evaluates a path's satisfying model into a concrete frame:
// every field of the wire header stack is laid out at its layout offset
// and filled with the model's value for the field's extract-time
// variable (solver.Eval leaves unconstrained variables at zero). Fields
// the path never extracted stay zero — the path's constraints don't
// mention them, so any value drives the same path.
func (f *Fleet) synthesize(p *verify.Path) ([]byte, bool) {
	vars := p.ExtractVars()
	if len(vars) == 0 {
		return nil, false
	}
	frame := make([]byte, (f.layout.Bits()+7)/8+10)
	for _, mf := range f.fields {
		v, ok := vars[mf.name]
		if !ok {
			continue
		}
		val, err := solver.Eval(v, p.Model)
		if err != nil {
			return nil, false
		}
		bitfield.MustInject(frame, mf.loc.BitOff, mf.loc.Bits, val.WithWidth(mf.loc.Bits))
	}
	return frame, true
}

// pathTargetSig renders the reference-side signature of a symbolic path
// in the same vocabulary traceTargetSig uses for a concrete reference
// trace, so "has mutation already been here" is one set lookup.
func pathTargetSig(p *verify.Path) string {
	var sb strings.Builder
	sb.WriteString(p.Verdict)
	for _, s := range p.ParserPath {
		sb.WriteByte(',')
		sb.WriteString(s)
	}
	sb.WriteByte(';')
	for _, a := range p.Actions {
		sb.WriteString(a)
		sb.WriteByte(',')
	}
	sb.WriteByte(';')
	if p.Dropped {
		sb.WriteString("drop@")
		sb.WriteString(p.DropStage)
	}
	return sb.String()
}

// traceTargetSig is pathTargetSig's concrete-execution counterpart,
// computed from the reference backend's trace.
func traceTargetSig(t dataplane.Trace) string {
	var sb strings.Builder
	sb.WriteString(t.Verdict.String())
	for _, s := range t.ParserPath {
		sb.WriteByte(',')
		sb.WriteString(s)
	}
	sb.WriteByte(';')
	for _, ev := range t.Tables {
		sb.WriteString(ev.Table)
		sb.WriteByte(':')
		sb.WriteString(ev.Action)
		if !ev.Hit {
			// The symbolic explorer labels the miss branch with the
			// default action marked "(default)"; mirror it so the two
			// vocabularies compare.
			sb.WriteString("(default)")
		}
		sb.WriteByte(',')
	}
	sb.WriteByte(';')
	if t.Dropped {
		sb.WriteString("drop@")
		sb.WriteString(t.DropStage)
	}
	return sb.String()
}
