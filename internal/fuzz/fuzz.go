// Package fuzz implements the coverage-guided differential fuzzing
// fleet: a continuous driver that sends the same generated probe stream
// through every shipped backend in lockstep and majority-votes each
// disagreement to name the divergent backend — the FP4-style greybox
// loop run against the five-way comparison matrix.
//
// # Voting and tie-breaking
//
// A probe's outcomes are tallied per backend; a strict-majority outcome
// names every backend outside it as divergent. With an even fleet size
// the tally can split evenly (the 2–2 pair-off two architecturally
// similar defects produce, e.g. SDNet and the SmartNIC exception path
// both forwarding a malformed frame). Those ties are re-scored against
// the reference-class backend: if the reference's outcome is
// corroborated by at least one other backend, the backends disagreeing
// with it are recorded as reference-anchored divergences
// (Report.TieBroken, Divergence.Anchored). A tie where the reference
// stands alone — or a fleet run without a reference-class backend —
// cannot be anchored and stays in Report.Ties, the unresolved residue.
//
// The loop is closed in both directions. Behavioural coverage (parser
// path, table hits, verdict, drop stage, egress — the signals the
// device's dataplane taps and counters observe) feeds back into
// core.Generator mutation choices: probes that light up a new
// cross-backend behaviour signature enter the corpus, and the fields
// whose mutation produced them earn selection weight. And the verifier
// feeds the fuzzer: Path.Model assignments from verify.Options.SolvePaths
// are synthesized into concrete frames, so the solver reaches the paths
// random mutation can't (see synthesize.go).
//
// Determinism contract: for a fixed Options.Seed, the corpus, the
// coverage curve, and the divergence ledger are byte-identical at any
// Shards count. Every probe batch is generated centrally from the seeded
// rng, probe outcomes are history-independent (tables are static during
// a run and device.InjectInternal does not queue), shards claim probes
// by global index and write into an index-addressed result slice, and
// the merge replays results in global probe order. Only the wall-clock
// figures (Elapsed, ProbesPerSec) vary between runs.
package fuzz

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/core"
	"netdebug/internal/dataplane"
	"netdebug/internal/device"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/ir"
	"netdebug/internal/target"
)

// Probe origins, as recorded in the corpus and the divergence ledger.
const (
	OriginSeed     = "seed"
	OriginMutation = "mutation"
	OriginSolver   = "solver"
)

// maxFieldWeight caps per-field mutation credit so one productive field
// cannot starve the rest of the header stack.
const maxFieldWeight = 16

// Options configures a fuzzing fleet.
type Options struct {
	// Targets lists the backend kinds run in lockstep (target.ForKind
	// names). Default: target.ShippedKinds — the five-way default-errata
	// matrix. Kinds must be unique; majority vote needs at least three.
	Targets []string
	// Baseline is installed into every backend before fuzzing starts
	// (same entries on every shard's devices — tables stay static for
	// the whole run).
	Baseline []dataplane.Entry
	// Seeds are the initial corpus frames. When empty, two defaults are
	// derived from the program's header layout: an all-zero frame and a
	// well-formed Ethernet/IPv4 frame aimed at 10.0.1.2.
	Seeds [][]byte
	// Budget is the number of mutation probes (default 1024). Seed and
	// solver probes ride on top and are reported separately.
	Budget int
	// RoundSize is the number of probes per mutation round; coverage
	// feedback is folded in between rounds (default 128).
	RoundSize int
	// Shards is the number of parallel lockstep device sets (default 1).
	// The report is identical at any value; see the package comment.
	Shards int
	// Seed seeds every random choice of the run (default 1).
	Seed int64
	// IngressPort is the data-plane ingress port for injected probes.
	IngressPort uint64
	// DisableSolver turns off solver-synthesized probes.
	DisableSolver bool
	// MaxPaths bounds the path exploration behind solver probe
	// synthesis (default 512).
	MaxPaths int
	// MaxExamples caps the retained divergence examples per backend;
	// counts are always complete (default 32).
	MaxExamples int
	// Occupancy preloads every table of every backend with up to this
	// many synthetic entries before fuzzing starts (after Baseline),
	// approximating production table state — ask for a million and each
	// table fills to its capacity. Synthetic keys carry the top bit of
	// every key field so they stay clear of typical baseline entries and
	// probe traffic; the fill stops per table at the first rejected
	// entry (capacity, duplicate key), so it is deterministic and
	// identical on every shard. 0 fuzzes against the bare baseline.
	Occupancy int
}

func (o *Options) fill() {
	if len(o.Targets) == 0 {
		o.Targets = append([]string(nil), target.ShippedKinds...)
	}
	if o.Budget <= 0 {
		o.Budget = 1024
	}
	if o.RoundSize <= 0 {
		o.RoundSize = 128
	}
	if o.RoundSize > o.Budget {
		o.RoundSize = o.Budget
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxPaths == 0 {
		o.MaxPaths = 512
	}
	if o.MaxExamples == 0 {
		o.MaxExamples = 32
	}
}

// Divergence is one vote disagreement: Backend disagreed with the
// outcome the vote settled on (a strict majority, or the corroborated
// reference anchor of a re-scored tie).
type Divergence struct {
	// Probe is the global probe index (seed, mutation, and solver
	// probes share one numbering).
	Probe int
	// Origin says how the probe was produced (Origin* constants).
	Origin string
	// Backend is the backend the majority voted divergent.
	Backend string
	// Frame is the probe that split the matrix (a stable copy).
	Frame []byte
	// Anchored marks a divergence named by the reference-anchored
	// tie-break rather than a strict majority.
	Anchored bool
	// Detail sketches the dissenting and agreed outcomes.
	Detail string
}

// CoveragePoint is one point of the coverage curve: after Probes probes,
// Keys distinct behaviour signatures had been observed.
type CoveragePoint struct {
	Probes int
	Keys   int
}

// Report is the outcome of a fleet run. All fields except Elapsed and
// ProbesPerSec are deterministic for a fixed Options.Seed, at any shard
// count.
type Report struct {
	// Probes is the total probe count (seed + mutation + solver).
	Probes         int
	MutationProbes int
	SolverProbes   int
	// Corpus holds the coverage-novel frames retained for mutation, in
	// discovery order (the first entries are the seeds).
	Corpus [][]byte
	// Coverage is the number of distinct cross-backend behaviour
	// signatures observed.
	Coverage int
	// Curve is the coverage growth curve, one point per probe batch.
	Curve []CoveragePoint
	// Divergences counts vote dissents per backend — strict-majority
	// dissents plus reference-anchored tie dissents (the latter also
	// broken out in TieBroken).
	Divergences map[string]int
	// TieBroken counts, per backend, the tied probes the
	// reference-anchored re-score attributed to it.
	TieBroken map[string]int
	// TiesResolved counts probes with no strict majority that the
	// reference anchor resolved.
	TiesResolved int
	// Ties counts probes with no strict-majority outcome that the
	// reference anchor could NOT resolve: the reference's outcome was
	// uncorroborated (the reference itself stood alone in the tie), or
	// the fleet ran without a reference-class backend.
	Ties int
	// Examples holds up to Options.MaxExamples retained divergences.
	Examples []Divergence
	// SolverDiscovered counts behaviour signatures whose first-ever
	// probe was solver-synthesized — coverage the mutation engine had
	// not reached when the solver round ran. (Mutants of a solver
	// corpus entry may re-reach the signature later; discovery credit
	// stays with the solver.)
	SolverDiscovered int
	// PathsExplored is the verifier path count behind solver synthesis.
	PathsExplored int
	// Elapsed and ProbesPerSec are wall-clock figures (not part of the
	// determinism contract).
	Elapsed      time.Duration
	ProbesPerSec float64
}

// mutField is one mutable packet field of the program's header stack.
type mutField struct {
	name string
	loc  core.FieldLoc
}

// covInfo tracks who reached a behaviour signature: the origin of the
// probe that discovered it, and which origins reached it at all.
type covInfo struct {
	first                  string
	seed, mutation, solver bool
}

// outcome is the externally visible result of one probe on one backend —
// the value majority vote compares.
type outcome struct {
	dropped bool
	port    uint64
	data    string
}

// probeResult is one probe's verdict across all backends of a shard.
type probeResult struct {
	cover string    // concatenated per-backend behaviour signatures
	ref   string    // reference-backend path signature (solver targeting)
	outs  []outcome // per backend, Options.Targets order
}

// maxProbeBatch bounds one InjectInternalBatch run per backend, for the
// same reason as core's maxInjectBatch: the target's batch scratch holds
// one context per slot.
const maxProbeBatch = 512

// shard is one lockstep device set: the same program on every backend.
type shard struct {
	devs []*device.Device
	// scratch reused across probe batches: the frames, global indices,
	// and timestamps of the chunk in flight, and one signature builder
	// per chunk slot.
	batch [][]byte
	idx   []int
	ats   []time.Duration
	sigs  []strings.Builder
}

// Fleet is a configured differential fuzzing run over sharded lockstep
// backends. Build with New, run once with Run.
type Fleet struct {
	opts   Options
	prog   *ir.Program // reference compile: layout + path exploration
	layout *core.Layout
	fields []mutField
	refIdx int  // index of the reference backend in opts.Targets
	hasRef bool // whether opts.Targets includes a reference-class backend
	shards []*shard
	// arena backs every mutation round's generated probe frames: each
	// round's fresh generator binds an extent off it instead of growing
	// a private slab, so the slab is allocated once for the whole run.
	// Safe because a round's frames are dead (coverage-novel ones
	// copied) before the next round's generator resets the arena.
	arena core.SharedArena

	// run state, mutated only by the sequential merge
	corpus     [][]byte
	cursor     int
	weights    []int
	covered    map[string]*covInfo
	refCovered map[string]bool
	curve      []CoveragePoint
	divCounts  map[string]int
	tieBroken  map[string]int
	examples   []Divergence
	exCount    map[string]int // retained examples per backend
	ties       int
	tiesRes    int
	probes     int
	solverN    int // solver probes injected
	pathsN     int
}

// New compiles p4src onto every configured backend and returns a fleet
// ready to Run.
func New(p4src string, opts Options) (*Fleet, error) {
	opts.fill()
	if len(opts.Targets) < 3 {
		return nil, fmt.Errorf("fuzz: majority vote needs at least 3 targets, got %d", len(opts.Targets))
	}
	seen := map[string]bool{}
	for _, kind := range opts.Targets {
		if seen[kind] {
			return nil, fmt.Errorf("fuzz: duplicate target kind %q", kind)
		}
		seen[kind] = true
	}
	prog, err := compile.Compile(p4src)
	if err != nil {
		return nil, fmt.Errorf("fuzz: compile: %w", err)
	}
	var stack []string
	for _, in := range prog.Instances {
		if !in.Metadata {
			stack = append(stack, in.Name)
		}
	}
	if len(stack) == 0 {
		return nil, fmt.Errorf("fuzz: program has no wire headers to mutate")
	}
	layout, err := core.LayoutFor(prog, stack...)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		opts:       opts,
		prog:       prog,
		layout:     layout,
		refIdx:     0,
		covered:    make(map[string]*covInfo),
		refCovered: make(map[string]bool),
		divCounts:  make(map[string]int),
		tieBroken:  make(map[string]int),
		exCount:    make(map[string]int),
	}
	for i, kind := range opts.Targets {
		if kind == target.KindReference || kind == "" {
			f.refIdx = i
			f.hasRef = true
		}
	}
	for _, name := range stack {
		inst := prog.Instance(name)
		for _, fd := range inst.Type.Fields {
			f.fields = append(f.fields, mutField{
				name: name + "." + fd.Name,
				loc:  layout.MustField(name + "." + fd.Name),
			})
		}
	}
	f.weights = make([]int, len(f.fields))
	for s := 0; s < opts.Shards; s++ {
		sh, err := newShard(p4src, opts)
		if err != nil {
			return nil, err
		}
		f.shards = append(f.shards, sh)
	}
	return f, nil
}

// newShard builds one lockstep device set. Each backend gets a fresh
// compile: Load may transform the IR (the errata transforms do).
func newShard(p4src string, opts Options) (*shard, error) {
	sh := &shard{}
	for _, kind := range opts.Targets {
		tg, err := target.ForKind(kind)
		if err != nil {
			return nil, fmt.Errorf("fuzz: %w", err)
		}
		prog, err := compile.Compile(p4src)
		if err != nil {
			return nil, fmt.Errorf("fuzz: compile for %s: %w", kind, err)
		}
		if err := tg.Load(prog); err != nil {
			return nil, fmt.Errorf("fuzz: load %s: %w", kind, err)
		}
		for _, e := range opts.Baseline {
			if err := tg.InstallEntry(e); err != nil {
				return nil, fmt.Errorf("fuzz: install into %s: %w", kind, err)
			}
		}
		if opts.Occupancy > 0 {
			installOccupancy(tg, prog, opts.Occupancy)
		}
		dev, err := device.New(device.Config{Target: tg, DisableCapture: true})
		if err != nil {
			return nil, err
		}
		sh.devs = append(sh.devs, dev)
	}
	return sh, nil
}

// occupancyKey builds the i-th synthetic key value for a w-bit key
// field: the top bit set (clear of typical baseline entries and probe
// traffic) plus a running index for distinctness.
func occupancyKey(i, w int) bitfield.Value {
	if w <= 0 {
		return bitfield.New(0, 0)
	}
	if w <= 64 {
		return bitfield.New(uint64(1)<<uint(w-1)|uint64(i), w)
	}
	return bitfield.New128(uint64(1)<<uint(w-65), uint64(i), w)
}

// installOccupancy fills every table of the loaded program with up to n
// synthetic entries: full-length prefixes for LPM keys, all-ones masks
// for ternary keys, the table's first action with zero-valued
// arguments. Each table's fill stops at its first rejected entry —
// capacity or a key-space collision — which makes a huge n mean "fill
// to capacity" rather than an error.
func installOccupancy(tg target.Target, prog *ir.Program, n int) {
	for _, ctl := range prog.Controls {
		for _, tbl := range ctl.Tables {
			if len(tbl.Keys) == 0 || len(tbl.Actions) == 0 {
				continue
			}
			act := tbl.Actions[0]
			for i := 0; i < n; i++ {
				e := dataplane.Entry{Table: tbl.Name, Action: act.Name}
				for _, tk := range tbl.Keys {
					w := tk.Expr.Width()
					kv := dataplane.KeyValue{Value: occupancyKey(i, w)}
					switch tk.Kind {
					case ir.MatchLPM:
						kv.PrefixLen = w
					case ir.MatchTernary:
						kv.Mask = bitfield.New128(^uint64(0), ^uint64(0), w)
						e.Priority = i + 1
					}
					e.Keys = append(e.Keys, kv)
				}
				for _, p := range act.Params {
					e.Args = append(e.Args, bitfield.New(0, p.Width))
				}
				if err := tg.InstallEntry(e); err != nil {
					break
				}
			}
		}
	}
}

// defaultSeeds derives the two-frame default corpus from the program's
// header layout: an all-zero frame, and a well-formed-looking frame
// (injected only for the fields the layout actually has).
func (f *Fleet) defaultSeeds() [][]byte {
	n := (f.layout.Bits()+7)/8 + 10
	if n < 64 {
		n = 64
	}
	zero := make([]byte, n)
	wf := make([]byte, n)
	set := func(field string, v uint64) {
		if loc, err := f.layout.Field(field); err == nil {
			_ = loc.Inject(wf, v)
		}
	}
	set("ethernet.etherType", 0x0800)
	set("ipv4.version", 4)
	set("ipv4.ihl", 5)
	set("ipv4.ttl", 64)
	set("ipv4.protocol", 17)
	set("ipv4.srcAddr", 0x0a000001) // 10.0.0.1
	set("ipv4.dstAddr", 0x0a000102) // 10.0.1.2
	set("ports.srcPort", 40000)
	set("ports.dstPort", 53)
	return [][]byte{zero, wf}
}

// Run executes the full fuzzing loop and returns the report.
func (f *Fleet) Run() (*Report, error) {
	start := time.Now()

	// The seeds are the corpus roots; probe them first so their
	// behaviour signatures anchor coverage.
	seeds := f.opts.Seeds
	if len(seeds) == 0 {
		seeds = f.defaultSeeds()
	}
	f.mergeBatch(seeds, OriginSeed, nil, f.runBatch(seeds))
	f.recordCurve()

	rounds := (f.opts.Budget + f.opts.RoundSize - 1) / f.opts.RoundSize
	for r := 0; r < rounds; r++ {
		count := f.opts.RoundSize
		if left := f.opts.Budget - r*f.opts.RoundSize; count > left {
			count = left
		}
		frames, fieldsOf, err := f.mutationBatch(r, count)
		if err != nil {
			return nil, err
		}
		f.mergeBatch(frames, OriginMutation, fieldsOf, f.runBatch(frames))
		f.recordCurve()
		if r == 0 && !f.opts.DisableSolver {
			// Solver probes enter after the first mutation round: late
			// enough that targeting skips what mutation finds at once,
			// early enough that novel solver frames join the corpus and
			// get mutated for the rest of the budget.
			if err := f.solverRound(); err != nil {
				return nil, err
			}
			f.recordCurve()
		}
	}

	rep := &Report{
		Probes:         f.probes,
		MutationProbes: f.opts.Budget,
		SolverProbes:   f.solverN,
		Corpus:         f.corpus,
		Coverage:       len(f.covered),
		Curve:          f.curve,
		Divergences:    f.divCounts,
		TieBroken:      f.tieBroken,
		TiesResolved:   f.tiesRes,
		Ties:           f.ties,
		Examples:       f.examples,
		PathsExplored:  f.pathsN,
		Elapsed:        time.Since(start),
	}
	for _, ci := range f.covered {
		if ci.first == OriginSolver {
			rep.SolverDiscovered++
		}
	}
	if s := rep.Elapsed.Seconds(); s > 0 {
		rep.ProbesPerSec = float64(rep.Probes*len(f.opts.Targets)) / s
	}
	return rep, nil
}

// mutationBatch builds round r's probe frames by mutating corpus picks
// with coverage-weighted field fuzzers. The returned fieldsOf maps a
// probe index to the field indices its stream mutated.
func (f *Fleet) mutationBatch(r, count int) ([][]byte, func(int) []int, error) {
	rng := rand.New(rand.NewSource(f.opts.Seed + int64(r+1)*0x9e3779b9))
	if len(f.corpus) == 0 {
		return nil, nil, fmt.Errorf("fuzz: empty corpus — no seed survived probing")
	}
	// ~8 probes per stream: each stream is one (corpus pick, field
	// choice) pair, so a round explores many fields even off a tiny
	// corpus; corpus entries are reused round-robin across streams.
	nStreams := count / 8
	if nStreams < 1 {
		nStreams = 1
	}
	if nStreams > 16 {
		nStreams = 16
	}
	if nStreams > count {
		nStreams = count
	}
	var streams []core.StreamSpec
	fieldsByStream := make(map[string][]int, nStreams)
	base, rem := count/nStreams, count%nStreams
	for i := 0; i < nStreams; i++ {
		tmpl := f.corpus[f.cursor%len(f.corpus)]
		f.cursor++
		c := base
		if i < rem {
			c++
		}
		limit := len(tmpl) * 8
		var eligible []int
		for fi, mf := range f.fields {
			if mf.loc.BitOff+mf.loc.Bits <= limit {
				eligible = append(eligible, fi)
			}
		}
		if len(eligible) == 0 {
			continue
		}
		picked := f.pickFields(rng, eligible, 1+rng.Intn(2))
		var fz []core.FieldFuzz
		for _, fi := range picked {
			fz = append(fz, core.FieldFuzz{Loc: f.fields[fi].loc, Seed: rng.Int63(), Boundaries: true})
		}
		name := "m" + strconv.Itoa(i)
		streams = append(streams, core.StreamSpec{
			Name:        name,
			Template:    tmpl,
			Count:       c,
			IngressPort: f.opts.IngressPort,
			Fuzz:        fz,
		})
		fieldsByStream[name] = picked
	}
	if len(streams) == 0 {
		return nil, nil, fmt.Errorf("fuzz: no corpus frame admits any layout field")
	}
	gen, err := core.NewGenerator(core.GenSpec{Streams: streams})
	if err != nil {
		return nil, nil, err
	}
	// The arena owns the frames; they stay valid for this round because
	// the next round's generator rebinds the slab only after this
	// round's merge. Coverage-novel frames are copied on retention.
	totalBytes := 0
	for _, s := range streams {
		totalBytes += s.Count * len(s.Template)
	}
	f.arena.Reset(totalBytes)
	gen.UseArena(&f.arena, totalBytes)
	pkts := gen.Packets(0)
	frames := make([][]byte, len(pkts))
	streamsOf := make([]string, len(pkts))
	for i, tp := range pkts {
		frames[i] = tp.Data
		streamsOf[i] = tp.Stream
	}
	return frames, func(i int) []int { return fieldsByStream[streamsOf[i]] }, nil
}

// pickFields draws n distinct field indices, weighted by accumulated
// coverage credit (weight+1 tickets each).
func (f *Fleet) pickFields(rng *rand.Rand, eligible []int, n int) []int {
	var picked []int
	taken := make(map[int]bool, n)
	for len(picked) < n && len(picked) < len(eligible) {
		total := 0
		for _, fi := range eligible {
			if !taken[fi] {
				total += 1 + f.weights[fi]
			}
		}
		t := rng.Intn(total)
		for _, fi := range eligible {
			if taken[fi] {
				continue
			}
			t -= 1 + f.weights[fi]
			if t < 0 {
				picked = append(picked, fi)
				taken[fi] = true
				break
			}
		}
	}
	return picked
}

// runBatch drives one probe batch through every shard: probe i is owned
// by shard i mod Shards, and each shard drives its stride through every
// backend's batched data-plane path. Results land in an index-addressed
// slice, so the outcome order is the global probe order regardless of
// scheduling.
func (f *Fleet) runBatch(frames [][]byte) []probeResult {
	results := make([]probeResult, len(frames))
	var wg sync.WaitGroup
	for s := range f.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			f.shards[s].probeStride(f, frames, s, len(f.shards), results)
		}(s)
	}
	wg.Wait()
	return results
}

// probeStride runs the shard-owned probes (indices first, first+stride,
// ...) through every backend as InjectInternalBatch chunks and writes
// each probe's result at its global index. Per-probe behaviour
// signatures are folded into per-slot builders backend by backend —
// computed from each batch's traces before the next batch on the same
// device clobbers the target's scratch — so the results are
// byte-identical to per-frame injection (shard.probe, the sequential
// reference) at any shard count.
func (sh *shard) probeStride(f *Fleet, frames [][]byte, first, stride int, results []probeResult) {
	for start := first; start < len(frames); start += stride * maxProbeBatch {
		sh.batch = sh.batch[:0]
		idx := sh.idx[:0]
		for i := start; i < len(frames) && len(idx) < maxProbeBatch; i += stride {
			sh.batch = append(sh.batch, frames[i])
			idx = append(idx, i)
		}
		sh.idx = idx
		for len(sh.ats) < len(idx) {
			sh.ats = append(sh.ats, 0)
		}
		for len(sh.sigs) < len(idx) {
			sh.sigs = append(sh.sigs, strings.Builder{})
		}
		// One outcome buffer for the whole chunk, subsliced per probe:
		// the buffer is retained by the results (the vote reads it after
		// the merge), so it is fresh per chunk, but it is one allocation
		// instead of one per probe.
		outsBuf := make([]outcome, len(idx)*len(sh.devs))
		for j, i := range idx {
			results[i].outs = outsBuf[j*len(sh.devs) : (j+1)*len(sh.devs) : (j+1)*len(sh.devs)]
			sh.sigs[j].Reset()
		}
		for b, dev := range sh.devs {
			ats := sh.ats[:len(idx)]
			for j := range ats {
				ats[j] = dev.Now()
			}
			rs := dev.InjectInternalBatch(sh.batch, f.opts.IngressPort, ats, true)
			for j := range rs {
				res := &rs[j]
				pr := &results[idx[j]]
				o := outcome{dropped: res.Dropped()}
				if !o.dropped {
					o.port = res.Outputs[0].Port
					o.data = string(res.Outputs[0].Data)
				}
				pr.outs[b] = o
				sb := &sh.sigs[j]
				sb.WriteString(f.opts.Targets[b])
				sb.WriteByte(':')
				writeBehaviourSig(sb, res.Trace, o)
				sb.WriteByte('|')
				if b == f.refIdx {
					pr.ref = traceTargetSig(res.Trace)
				}
			}
		}
		for j, i := range idx {
			results[i].cover = sh.sigs[j].String()
		}
	}
}

// probe runs one frame through every backend of the shard and snapshots
// the cross-backend behaviour signature and vote outcomes. It is the
// retired per-frame injection path, kept as the differential oracle for
// probeStride's batched injection.
func (sh *shard) probe(f *Fleet, frame []byte) probeResult {
	pr := probeResult{outs: make([]outcome, len(sh.devs))}
	var sb strings.Builder
	for b, dev := range sh.devs {
		res := dev.InjectInternal(frame, f.opts.IngressPort, dev.Now(), true)
		o := outcome{dropped: res.Dropped()}
		if !o.dropped {
			o.port = res.Outputs[0].Port
			o.data = string(res.Outputs[0].Data)
		}
		pr.outs[b] = o
		sb.WriteString(f.opts.Targets[b])
		sb.WriteByte(':')
		writeBehaviourSig(&sb, res.Trace, o)
		sb.WriteByte('|')
		if b == f.refIdx {
			pr.ref = traceTargetSig(res.Trace)
		}
	}
	pr.cover = sb.String()
	return pr
}

// writeBehaviourSig renders the coverage signature of one backend's
// probe outcome: parser path, verdict, table hits, drop stage, and
// egress port — the trace/tap view, deliberately excluding frame bytes
// and key values so the signature space stays behavioural.
func writeBehaviourSig(sb *strings.Builder, t dataplane.Trace, o outcome) {
	sb.WriteString(t.Verdict.String())
	for _, s := range t.ParserPath {
		sb.WriteByte(',')
		sb.WriteString(s)
	}
	sb.WriteByte(';')
	for _, ev := range t.Tables {
		sb.WriteString(ev.Table)
		sb.WriteByte('=')
		if !ev.Hit {
			sb.WriteString("miss:")
		}
		sb.WriteString(ev.Action)
		sb.WriteByte(',')
	}
	sb.WriteByte(';')
	if o.dropped {
		sb.WriteString("drop@")
		sb.WriteString(t.DropStage)
	} else {
		sb.WriteString("out@")
		sb.WriteString(strconv.FormatUint(o.port, 10))
	}
}

// mergeBatch folds a batch's results into the run state in global probe
// order: coverage bookkeeping, corpus retention, field credit, and the
// majority vote. This is the only mutation point of the run state, and
// it is sequential — shard scheduling cannot reorder it.
func (f *Fleet) mergeBatch(frames [][]byte, origin string, fieldsOf func(int) []int, results []probeResult) {
	for i := range results {
		pr := &results[i]
		probeIdx := f.probes
		f.probes++
		ci := f.covered[pr.cover]
		if ci == nil {
			ci = &covInfo{first: origin}
			f.covered[pr.cover] = ci
			f.corpus = append(f.corpus, append([]byte(nil), frames[i]...))
			if origin == OriginMutation && fieldsOf != nil {
				for _, fi := range fieldsOf(i) {
					if f.weights[fi] < maxFieldWeight {
						f.weights[fi]++
					}
				}
			}
		}
		switch origin {
		case OriginSeed:
			ci.seed = true
		case OriginMutation:
			ci.mutation = true
		case OriginSolver:
			ci.solver = true
		}
		if origin != OriginSolver {
			f.refCovered[pr.ref] = true
		}
		f.vote(probeIdx, origin, frames[i], pr.outs)
	}
}

// tallyScan returns the plurality outcome of a probe and how many
// backends share it, by pairwise scan: outcome is comparable and the
// matrix is a handful of backends, so the scan beats building a map per
// probe (tallyMap, the retired form, is kept as the equality oracle).
// Among equally common outcomes the winner is the first in backend
// order; callers only rely on best when its count is a strict majority,
// which is unique.
func tallyScan(outs []outcome) (best outcome, bestN int) {
	for i, o := range outs {
		dup := false
		for j := 0; j < i; j++ {
			if outs[j] == o {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		n := 1
		for j := i + 1; j < len(outs); j++ {
			if outs[j] == o {
				n++
			}
		}
		if n > bestN {
			best, bestN = o, n
		}
	}
	return best, bestN
}

// tallyMap is the retired map-based tally — tallyScan's equality
// oracle. Among equally common outcomes its winner follows map
// iteration order, so only bestN (and best under a strict majority) is
// part of the contract.
func tallyMap(outs []outcome) (best outcome, bestN int) {
	counts := make(map[outcome]int, 2)
	for _, o := range outs {
		counts[o]++
	}
	for o, n := range counts {
		if n > bestN {
			best, bestN = o, n
		}
	}
	return best, bestN
}

// countOf returns how many backends produced exactly the outcome o.
func countOf(outs []outcome, o outcome) int {
	n := 0
	for _, x := range outs {
		if x == o {
			n++
		}
	}
	return n
}

// vote tallies one probe's outcomes and records dissent. A strict
// majority names every backend outside it; a tie (no strict majority)
// is re-scored against the reference anchor when one is present and
// corroborated by at least one other backend.
func (f *Fleet) vote(probeIdx int, origin string, frame []byte, outs []outcome) {
	best, bestN := tallyScan(outs)
	anchored := false
	if bestN*2 <= len(outs) {
		// No strict majority (e.g. a 2–2 split). Re-score against the
		// reference-class backend: a corroborated reference outcome
		// breaks the tie; an uncorroborated one (the reference itself
		// divergent in the tie) or a fleet without a reference leaves
		// the probe unresolved.
		if !f.hasRef || countOf(outs, outs[f.refIdx]) < 2 {
			f.ties++
			return
		}
		best, anchored = outs[f.refIdx], true
		f.tiesRes++
	} else if bestN == len(outs) {
		return // unanimous
	}
	for b, o := range outs {
		if o == best {
			continue
		}
		kind := f.opts.Targets[b]
		f.divCounts[kind]++
		if anchored {
			f.tieBroken[kind]++
		}
		if f.exCount[kind] >= f.opts.MaxExamples {
			continue
		}
		f.exCount[kind]++
		agreed := "majority"
		if anchored {
			agreed = "reference anchor"
		}
		f.examples = append(f.examples, Divergence{
			Probe:    probeIdx,
			Origin:   origin,
			Backend:  kind,
			Frame:    append([]byte(nil), frame...),
			Anchored: anchored,
			Detail: fmt.Sprintf("%s %s vs %s %s",
				kind, outs[b].sketch(), agreed, best.sketch()),
		})
	}
}

func (o outcome) sketch() string {
	if o.dropped {
		return "dropped"
	}
	return fmt.Sprintf("forwarded to port %d (%dB)", o.port, len(o.data))
}

func (f *Fleet) recordCurve() {
	f.curve = append(f.curve, CoveragePoint{Probes: f.probes, Keys: len(f.covered)})
}
