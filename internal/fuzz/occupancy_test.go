package fuzz

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"netdebug/internal/dataplane"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/target"
)

// TestTallyScanMatchesMapOracle fuzzes the scan-based vote tally against
// the retired map-based form: the plurality count always agrees, the
// winning outcome agrees whenever it is a strict majority (the only case
// vote relies on), and countOf agrees with the map's count for every
// element.
func TestTallyScanMatchesMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 2000; trial++ {
		n := 3 + rng.Intn(6)
		outs := make([]outcome, n)
		for i := range outs {
			outs[i] = outcome{
				dropped: rng.Intn(2) == 0,
				port:    uint64(rng.Intn(3)),
				data:    string(rune('a' + rng.Intn(2))),
			}
		}
		best, bestN := tallyScan(outs)
		mBest, mBestN := tallyMap(outs)
		if bestN != mBestN {
			t.Fatalf("trial %d: scan count %d, map count %d for %+v", trial, bestN, mBestN, outs)
		}
		if bestN*2 > n && best != mBest {
			t.Fatalf("trial %d: strict-majority winner diverges: scan %+v, map %+v", trial, best, mBest)
		}
		if got, want := countOf(outs, outs[0]), func() int {
			n := 0
			for _, o := range outs {
				if o == outs[0] {
					n++
				}
			}
			return n
		}(); got != want {
			t.Fatalf("trial %d: countOf %d, want %d", trial, got, want)
		}
	}
}

// TestOccupancyFillsToCapacity: asking for a million flows fills each
// table to its capacity (the fill clips, it does not error), leaving no
// room for further entries.
func TestOccupancyFillsToCapacity(t *testing.T) {
	prog, err := compile.Compile(p4test.Router)
	if err != nil {
		t.Fatal(err)
	}
	tg := target.NewReference()
	if err := tg.Load(prog); err != nil {
		t.Fatal(err)
	}
	for _, e := range routerBaseline() {
		if err := tg.InstallEntry(e); err != nil {
			t.Fatal(err)
		}
	}
	installOccupancy(tg, prog, 1_000_000)

	// One more distinct entry must bounce off the full table.
	err = tg.InstallEntry(dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: occupancyKey(1<<21, 32), PrefixLen: 32}},
		Action: "ipv4_forward",
		Args:   routerBaseline()[0].Args,
	})
	var capErr *dataplane.CapacityError
	if !errors.As(err, &capErr) {
		t.Fatalf("table not filled to capacity: install after fill returned %v", err)
	}
}

// TestFleetDeterministicAtMillionFlowOccupancy: the determinism contract
// holds with every backend's tables filled to capacity — the report is
// byte-identical at any shard count, and occupancy does not starve the
// probe surface.
func TestFleetDeterministicAtMillionFlowOccupancy(t *testing.T) {
	opts := Options{
		Baseline:  routerBaseline(),
		Budget:    256,
		RoundSize: 128,
		Seed:      42,
		Occupancy: 1_000_000,
	}
	var reports []*Report
	for _, shards := range []int{1, 2} {
		o := opts
		o.Shards = shards
		reports = append(reports, stripTiming(mustRun(t, p4test.Router, o)))
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatalf("occupied report differs between 1 and 2 shards:\n1: %+v\n2: %+v",
			reports[0], reports[1])
	}
	if reports[0].Probes == 0 || reports[0].Coverage == 0 {
		t.Fatalf("degenerate occupied run: %+v", reports[0])
	}
}

// BenchmarkFuzzFleetThroughputMillionFlow is BenchmarkFuzzFleetThroughput
// against backends preloaded at million-flow occupancy (each table at
// capacity): the probes/s figure under production-sized table state.
func BenchmarkFuzzFleetThroughputMillionFlow(b *testing.B) {
	f, err := New(p4test.Router, Options{
		Baseline:  routerBaseline(),
		Seed:      7,
		Occupancy: 1_000_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	seeds := f.defaultSeeds()
	f.mergeBatch(seeds, OriginSeed, nil, f.runBatch(seeds))
	frames, _, err := f.mutationBatch(0, 256)
	if err != nil {
		b.Fatal(err)
	}
	stable := make([][]byte, len(frames))
	for i, fr := range frames {
		stable[i] = append([]byte(nil), fr...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.runBatch(stable)
	}
}
