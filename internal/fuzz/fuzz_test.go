package fuzz

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/target"
)

var gwMAC = [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0xfe}

// routerBaseline installs a 10/8 route and a /0 default route: the
// fixture on which the shipped sdnet (malformed-but-routable) and ebpf
// (/0 trie miss) errata both have probe surfaces.
func routerBaseline() []dataplane.Entry {
	route := func(addr uint64, plen int, port uint64) dataplane.Entry {
		return dataplane.Entry{
			Table:  "ipv4_lpm",
			Keys:   []dataplane.KeyValue{{Value: bitfield.New(addr, 32), PrefixLen: plen}},
			Action: "ipv4_forward",
			Args:   []bitfield.Value{bitfield.FromBytes(gwMAC[:]), bitfield.New(port, 9)},
		}
	}
	return []dataplane.Entry{route(0x0a000000, 8, 1), route(0, 0, 2)}
}

// aclTieBaseline reproduces the equal-priority overlapping ACL pair the
// tofino LIFO tie-break erratum resolves differently: an allow-any entry
// installed first and an exact-dst drop at the same priority.
func aclTieBaseline() []dataplane.Entry {
	anyAddr := bitfield.New(0, 32)
	anyPort := bitfield.New(0, 16)
	dstIP := bitfield.New(0x0a000102, 32)
	return []dataplane.Entry{
		{
			Table: "acl", Action: "allow", Priority: 3,
			Keys: []dataplane.KeyValue{
				{Value: anyAddr, Mask: anyAddr},
				{Value: anyAddr, Mask: anyAddr},
				{Value: anyPort, Mask: anyPort},
			},
		},
		{
			Table: "acl", Action: "drop", Priority: 3,
			Keys: []dataplane.KeyValue{
				{Value: anyAddr, Mask: anyAddr},
				{Value: dstIP, Mask: bitfield.Mask(32)},
				{Value: anyPort, Mask: anyPort},
			},
		},
		{
			Table:  "routing",
			Keys:   []dataplane.KeyValue{{Value: dstIP, PrefixLen: 24}},
			Action: "route",
			Args:   []bitfield.Value{bitfield.New(2, 9)},
		},
	}
}

func mustRun(t *testing.T, src string, opts Options) *Report {
	t.Helper()
	f, err := New(src, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := f.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// stripTiming zeroes the wall-clock fields so reports compare on the
// deterministic contract only.
func stripTiming(r *Report) *Report {
	r.Elapsed = 0
	r.ProbesPerSec = 0
	return r
}

func TestFleetDeterministicAtAnyShardCount(t *testing.T) {
	opts := Options{
		Baseline:  routerBaseline(),
		Budget:    384,
		RoundSize: 128,
		Seed:      42,
	}
	var reports []*Report
	for _, shards := range []int{1, 2, 8} {
		o := opts
		o.Shards = shards
		reports = append(reports, stripTiming(mustRun(t, p4test.Router, o)))
	}
	for i, rep := range reports[1:] {
		if !reflect.DeepEqual(reports[0], rep) {
			t.Errorf("report differs between 1 shard and %d shards:\n1: %+v\n%d: %+v",
				[]int{2, 8}[i], reports[0], []int{2, 8}[i], rep)
		}
	}
	if reports[0].Probes == 0 || reports[0].Coverage == 0 {
		t.Fatalf("degenerate run: %+v", reports[0])
	}
}

func TestFleetLocalizesRouterErrata(t *testing.T) {
	rep := mustRun(t, p4test.Router, Options{
		Baseline: routerBaseline(),
		Budget:   768,
		Shards:   2,
		Seed:     1,
	})
	// The sdnet reject-as-accept erratum (malformed-but-routable frames
	// forwarded) and the ebpf /0 trie miss must both be found by the
	// fuzz loop and localized by majority vote.
	for _, kind := range []string{target.KindSDNet, target.KindEBPF} {
		if rep.Divergences[kind] == 0 {
			t.Errorf("no divergence localized to %s: %v", kind, rep.Divergences)
		}
		found := false
		for _, ex := range rep.Examples {
			if ex.Backend == kind && ex.Origin == OriginMutation {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no mutation-probe example localizing %s", kind)
		}
	}
	if rep.Divergences[target.KindReference] != 0 {
		t.Errorf("reference backend voted divergent: %v", rep.Divergences)
	}
}

func TestFleetLocalizesTofinoTieErratum(t *testing.T) {
	rep := mustRun(t, p4test.Firewall, Options{
		Baseline: aclTieBaseline(),
		Budget:   256,
		Seed:     1,
	})
	if rep.Divergences[target.KindTofino] == 0 {
		t.Fatalf("tofino LIFO tie-break not localized: %v", rep.Divergences)
	}
	found := false
	for _, ex := range rep.Examples {
		if ex.Backend == target.KindTofino {
			found = true
			if len(ex.Frame) == 0 || ex.Detail == "" {
				t.Errorf("divergence example missing frame/detail: %+v", ex)
			}
		}
	}
	if !found {
		t.Fatalf("no retained example localizes tofino")
	}
}

func TestSolverReachesWhatMutationMisses(t *testing.T) {
	opts := Options{
		Baseline:  routerBaseline()[:1], // 10/8 route only
		Budget:    512,
		RoundSize: 128,
		Seed:      3,
	}
	f, err := New(p4test.RouterMagicDrop, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SolverProbes == 0 {
		t.Fatalf("solver synthesized no probes (paths explored: %d)", rep.PathsExplored)
	}
	if rep.SolverDiscovered == 0 {
		t.Fatalf("no behaviour signature was discovered by a solver probe: %+v", rep)
	}
	// The acceptance criterion, verbatim: within the same budget, pure
	// mutation misses at least one signature the solver reached. Run a
	// solver-less control at the same seed and budget and compare
	// coverage key for key.
	ctl := opts
	ctl.DisableSolver = true
	fc, err := New(p4test.RouterMagicDrop, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Run(); err != nil {
		t.Fatal(err)
	}
	missed := 0
	for key, ci := range f.covered {
		if ci.first == OriginSolver && fc.covered[key] == nil {
			missed++
		}
	}
	if missed == 0 {
		t.Fatalf("every solver-discovered signature was also reached by the solver-less control")
	}
	magic := []byte{0xde, 0xad, 0xbe, 0xef}
	found := false
	for _, frame := range rep.Corpus {
		if len(frame) >= 30 && bytes.Equal(frame[26:30], magic) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no corpus frame carries the magic srcAddr the solver must synthesize")
	}
}

func TestSolverProbesDisabled(t *testing.T) {
	rep := mustRun(t, p4test.Router, Options{
		Baseline:      routerBaseline(),
		Budget:        64,
		Seed:          5,
		DisableSolver: true,
	})
	if rep.SolverProbes != 0 || rep.SolverDiscovered != 0 {
		t.Fatalf("solver probes injected despite DisableSolver: %+v", rep)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("not p4", Options{}); err == nil {
		t.Errorf("unparsable source accepted")
	}
	if _, err := New(p4test.Router, Options{Targets: []string{"reference", "sdnet"}}); err == nil {
		t.Errorf("two-target vote accepted")
	}
	if _, err := New(p4test.Router, Options{Targets: []string{"reference", "sdnet", "sdnet"}}); err == nil {
		t.Errorf("duplicate target kind accepted")
	}
	if _, err := New(p4test.Router, Options{Targets: []string{"reference", "sdnet", "nope"}}); err == nil {
		t.Errorf("unknown target kind accepted")
	}
}

// TestDifferentialBatchedProbeInjection cross-checks probeStride (the
// batched probe path) against shard.probe, the retained per-frame
// reference: identical outcomes, behaviour signatures, and reference
// path signatures for every probe, across the maxProbeBatch chunk
// boundary. Fleets are separate so neither path sees the other's device
// state.
func TestDifferentialBatchedProbeInjection(t *testing.T) {
	mk := func() *Fleet {
		f, err := New(p4test.Router, Options{Baseline: routerBaseline(), Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	fBatch, fSeq := mk(), mk()
	frames := fBatch.defaultSeeds()
	rng := rand.New(rand.NewSource(9))
	for len(frames) < maxProbeBatch+40 {
		fr := append([]byte(nil), frames[rng.Intn(2)]...)
		fr[rng.Intn(len(fr))] ^= 1 << rng.Intn(8)
		frames = append(frames, fr)
	}
	got := make([]probeResult, len(frames))
	fBatch.shards[0].probeStride(fBatch, frames, 0, 1, got)
	for i, fr := range frames {
		want := fSeq.shards[0].probe(fSeq, fr)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("probe %d: batched %+v\nvs sequential %+v", i, got[i], want)
		}
	}
}

// BenchmarkFuzzFleetThroughput measures the lockstep probe path: one
// 256-probe batch through all five backends on a single shard (1280
// backend executions per op) — the benchgate-pinned probes/s figure.
func BenchmarkFuzzFleetThroughput(b *testing.B) {
	f, err := New(p4test.Router, Options{Baseline: routerBaseline(), Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	seeds := f.defaultSeeds()
	f.mergeBatch(seeds, OriginSeed, nil, f.runBatch(seeds))
	frames, _, err := f.mutationBatch(0, 256)
	if err != nil {
		b.Fatal(err)
	}
	// Stabilize: retention copies the batch out of the generator arena.
	stable := make([][]byte, len(frames))
	for i, fr := range frames {
		stable[i] = append([]byte(nil), fr...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.runBatch(stable)
	}
}

// TestFleetResolvesTieAgainstReferenceAnchor: with four backends the
// sdnet reject-as-accept erratum and the smartnic fail-open exception
// path forward the same malformed frames, producing a 2-2 split no
// majority can resolve. Because the reference outcome is corroborated
// by tofino, the vote re-scores the tie against the reference anchor
// and charges both dissenters.
func TestFleetResolvesTieAgainstReferenceAnchor(t *testing.T) {
	rep := mustRun(t, p4test.Router, Options{
		Baseline: routerBaseline(),
		Budget:   512,
		Seed:     1,
		Targets: []string{
			target.KindReference, target.KindTofino,
			target.KindSDNet, target.KindSmartNIC,
		},
	})
	if rep.TiesResolved == 0 {
		t.Fatalf("no 2-2 tie resolved against the reference anchor: %+v", rep)
	}
	for _, kind := range []string{target.KindSDNet, target.KindSmartNIC} {
		if rep.TieBroken[kind] == 0 {
			t.Errorf("%s not charged by the anchored vote: %v", kind, rep.TieBroken)
		}
		if rep.Divergences[kind] == 0 {
			t.Errorf("%s missing from the divergence ledger: %v", kind, rep.Divergences)
		}
	}
	anchored := 0
	for _, ex := range rep.Examples {
		if ex.Anchored {
			anchored++
			if ex.Backend != target.KindSDNet && ex.Backend != target.KindSmartNIC {
				t.Errorf("anchored example charges %s, want sdnet or smartnic: %+v", ex.Backend, ex)
			}
		}
	}
	if anchored == 0 {
		t.Fatal("no retained example is marked as anchor-resolved")
	}
	if rep.Divergences[target.KindReference] != 0 || rep.TieBroken[target.KindReference] != 0 {
		t.Fatalf("reference voted divergent: %+v", rep)
	}
}

// TestFleetTieWithoutReferenceStaysUnresolved: the same 2-2 split in a
// fleet with no reference-class member has no anchor to re-score
// against; the probe must be counted as an unresolved tie, not charged
// to either pair.
func TestFleetTieWithoutReferenceStaysUnresolved(t *testing.T) {
	rep := mustRun(t, p4test.Router, Options{
		Baseline: routerBaseline(),
		Budget:   512,
		Seed:     1,
		Targets: []string{
			target.KindTofino, target.KindEBPF,
			target.KindSDNet, target.KindSmartNIC,
		},
	})
	if rep.Ties == 0 {
		t.Fatalf("no unresolved tie recorded without a reference anchor: %+v", rep)
	}
	if rep.TiesResolved != 0 || len(rep.TieBroken) != 0 {
		t.Fatalf("anchor resolution without a reference backend: %+v", rep)
	}
	for _, ex := range rep.Examples {
		if ex.Anchored {
			t.Fatalf("anchored example in an anchor-less fleet: %+v", ex)
		}
	}
}
