package scenario

import (
	"runtime"
	"sync"
)

// CellOutcome is the result of one (scenario, tool) cell of the matrix.
type CellOutcome struct {
	Scenario string
	UseCase  UseCase
	Tool     string
	// Implemented reports whether the scenario defines a run for the
	// tool at all.
	Implemented bool
	Outcome     Outcome
}

// DefaultWorkers is the worker count used when a parallel runner is
// given a non-positive worker count: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// RunCells executes every (scenario, tool) cell across a pool of
// workers and returns the outcomes in deterministic scenario-major,
// tool-minor order, independent of scheduling.
//
// Each cell closure builds its own devices and targets (the Engine and
// Device models are not concurrency-safe, so the suite shards by
// device, not by lock); cells share nothing and may run on any worker.
// workers <= 1 runs the suite sequentially on the calling goroutine.
func RunCells(scenarios []Scenario, workers int) []CellOutcome {
	n := len(scenarios) * len(Tools)
	out := make([]CellOutcome, n)
	run := func(idx int) {
		sc := scenarios[idx/len(Tools)]
		tool := Tools[idx%len(Tools)]
		cell := CellOutcome{Scenario: sc.Name, UseCase: sc.UseCase, Tool: tool}
		if fn, ok := sc.Run[tool]; ok {
			cell.Implemented = true
			cell.Outcome = fn()
		}
		out[idx] = cell
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return out
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				run(idx)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
