// Package scenario defines the experiment suite behind Figure 2 of the
// paper: for each of the seven use cases (§3) it builds concrete bug/
// measurement scenarios and runs all three tools against them —
//
//   - NetDebug (package core): in-device generator + checker + taps,
//   - software formal verification (package verify): p4v-style symbolic
//     program analysis,
//   - external network tester (package tester): OSNT-style port-attached
//     traffic generator/capture.
//
// Each tool's cell in the capability matrix is scored empirically: Full
// when it handles every scenario of the use case, Partial when some, None
// when none. The expected shape matches the paper: NetDebug is Full
// everywhere; formal verification covers only program-level functional
// properties; the external tester is partial wherever internal visibility
// or control-plane access is required and blind to resources and status.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/core"
	"netdebug/internal/dataplane"
	"netdebug/internal/device"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/ir"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
	"netdebug/internal/target"
	"netdebug/internal/tester"
	"netdebug/internal/verify"
	"netdebug/internal/verify/solver"
)

// UseCase enumerates the paper's §3 use cases.
type UseCase string

// The seven use cases of Figure 2, plus the resident-service row this
// reproduction adds (long-lived sessions, churn, scheduled faults,
// record/replay — §Resident in docs/robustness.md).
const (
	Functional   UseCase = "functional testing"
	Performance  UseCase = "performance testing"
	Compiler     UseCase = "compiler check"
	Architecture UseCase = "architecture check"
	Resources    UseCase = "resources quantification"
	Status       UseCase = "status monitoring"
	Comparison   UseCase = "comparison"
	Resident     UseCase = "resident validation"
	Fuzzing      UseCase = "differential fuzzing"
)

// UseCases lists the rows of Figure 2 in paper order, with the added
// resident-validation and differential-fuzzing rows last.
var UseCases = []UseCase{
	Functional, Performance, Compiler, Architecture, Resources, Status, Comparison, Resident, Fuzzing,
}

// Tool names (columns of Figure 2).
const (
	ToolNetDebug = "NetDebug"
	ToolFormal   = "software formal verification"
	ToolExternal = "external network tester"
)

// Tools lists the columns in paper order.
var Tools = []string{ToolNetDebug, ToolFormal, ToolExternal}

// Outcome is one tool's result on one scenario.
type Outcome struct {
	// Supported reports whether the tool can attempt the scenario at all.
	Supported bool
	// Detected reports whether the tool found the bug / produced the
	// measurement the scenario demands.
	Detected bool
	// Detail is a one-line human-readable explanation.
	Detail string
}

func unsupported(why string) Outcome { return Outcome{Detail: why} }

func detected(format string, args ...any) Outcome {
	return Outcome{Supported: true, Detected: true, Detail: fmt.Sprintf(format, args...)}
}

func missed(format string, args ...any) Outcome {
	return Outcome{Supported: true, Detail: fmt.Sprintf(format, args...)}
}

// Scenario is one concrete experiment; each tool closure builds a fresh
// environment so scenarios are independent.
type Scenario struct {
	Name    string
	UseCase UseCase
	Run     map[string]func() Outcome
}

// --- shared fixtures ---------------------------------------------------

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 0xa}
	macB = packet.MAC{2, 0, 0, 0, 0, 0xb}
	gw   = packet.MAC{2, 0, 0, 0, 0xff, 1}
	ipA  = packet.IPv4Addr{10, 0, 0, 1}
	ipB  = packet.IPv4Addr{10, 0, 1, 2}
)

func mustProg(src string) *ir.Program {
	prog, err := compile.Compile(src)
	if err != nil {
		panic(fmt.Sprintf("scenario: sample program failed to compile: %v", err))
	}
	return prog
}

func routeEntry(port uint64) dataplane.Entry {
	return dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(port, 9)},
	}
}

// routerDevice builds a device running src on tg with one 10/8 route.
func routerDevice(src string, tg target.Target, entries ...dataplane.Entry) *device.Device {
	if err := tg.Load(mustProg(src)); err != nil {
		panic(fmt.Sprintf("scenario: load: %v", err))
	}
	if entries == nil {
		entries = []dataplane.Entry{routeEntry(1)}
	}
	for _, e := range entries {
		if err := tg.InstallEntry(e); err != nil {
			panic(fmt.Sprintf("scenario: install: %v", err))
		}
	}
	dev, err := device.New(device.Config{Target: tg})
	if err != nil {
		panic(err)
	}
	return dev
}

// plainDevice builds a device running src with no table entries.
func plainDevice(src string, tg target.Target) *device.Device {
	if err := tg.Load(mustProg(src)); err != nil {
		panic(fmt.Sprintf("scenario: load: %v", err))
	}
	dev, err := device.New(device.Config{Target: tg})
	if err != nil {
		panic(err)
	}
	return dev
}

func goodFrame() []byte {
	return packet.BuildUDPv4(macA, macB, ipA, ipB, 40000, 53, make([]byte, 26))
}

func ttlZeroFrame() []byte {
	f := goodFrame()
	f[14+8] = 0
	fixIPv4(f)
	return f
}

func badVersionFrame() []byte {
	f := goodFrame()
	f[14] = 0x65
	fixIPv4(f)
	return f
}

func fixIPv4(f []byte) {
	f[14+10], f[14+11] = 0, 0
	ck := bitfield.Checksum(f[14 : 14+20])
	f[14+10], f[14+11] = byte(ck>>8), byte(ck)
}

// runNetDebugDropTest runs a NetDebug test asserting stream "bad" drops
// and returns whether the violation was detected.
func runNetDebugDropTest(dev *device.Device, frame []byte) (*core.Report, error) {
	ctl := core.Connect(core.NewAgent(dev))
	defer ctl.Close()
	return ctl.RunTest(&core.TestSpec{
		Name: "drop-test",
		Gen: core.GenSpec{Streams: []core.StreamSpec{{
			Name: "bad", Template: frame, Count: 20, RatePPS: 1e6,
		}}},
		Check: core.CheckSpec{Rules: []core.Rule{{
			Name: "bad-dropped", Stream: "bad", ExpectDrop: true,
		}}},
	})
}

// seqLocForUDPPayload returns a 32-bit sequence-tag location in the UDP
// payload of goodFrame()-shaped packets.
func seqLocForUDPPayload() core.FieldLoc {
	return core.FieldLoc{BitOff: (14 + 20 + 8) * 8, Bits: 32}
}

// --- scenario suite -----------------------------------------------------

// All builds the complete Figure 2 scenario suite.
func All() []Scenario {
	var out []Scenario
	out = append(out, functionalScenarios()...)
	out = append(out, performanceScenarios()...)
	out = append(out, compilerScenarios()...)
	out = append(out, architectureScenarios()...)
	out = append(out, resourceScenarios()...)
	out = append(out, statusScenarios()...)
	out = append(out, comparisonScenarios()...)
	out = append(out, residentScenarios()...)
	out = append(out, fuzzingScenarios()...)
	return out
}

func functionalScenarios() []Scenario {
	return []Scenario{
		{
			Name:    "program bug: missing TTL=0 guard",
			UseCase: Functional,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					dev := routerDevice(p4test.RouterNoTTLCheck, target.NewReference())
					rep, err := runNetDebugDropTest(dev, ttlZeroFrame())
					if err != nil {
						return missed("test error: %v", err)
					}
					if !rep.Pass {
						return detected("checker: %d TTL=0 packets forwarded, want drop", rep.Failures())
					}
					return missed("ttl=0 packets were dropped")
				},
				ToolFormal: func() Outcome {
					prog := mustProg(p4test.RouterNoTTLCheck)
					prop := ttlZeroForwardProp()
					res, err := verify.Check(prog, prop, verify.Options{})
					if err != nil {
						return missed("verification error: %v", err)
					}
					if !res.Holds {
						return detected("property %s violated: program forwards TTL=0", prop.Name)
					}
					return missed("property verified; bug not found")
				},
				ToolExternal: func() Outcome {
					dev := routerDevice(p4test.RouterNoTTLCheck, target.NewReference())
					tst := tester.New(dev)
					rep, err := tst.Run([]tester.Stream{{
						Name: "ttl0", Frame: ttlZeroFrame(), Count: 20,
						TxPort: 0, RxPort: 1, SeqLoc: seqLocForUDPPayload(),
						ExpectLoss: true, // a correct router drops these
					}})
					if err != nil {
						return missed("tester error: %v", err)
					}
					if !rep.Pass {
						return detected("captured %d TTL=0 frames on egress, want none", rep.Received)
					}
					return missed("no TTL=0 frames escaped")
				},
			},
		},
		{
			Name:    "control-plane bug: route installed to wrong port",
			UseCase: Functional,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					dev := routerDevice(p4test.Router, target.NewReference(), routeEntry(3)) // should be 1
					ctl := core.Connect(core.NewAgent(dev))
					defer ctl.Close()
					rep, err := ctl.RunTest(&core.TestSpec{
						Name: "egress-check",
						Gen: core.GenSpec{Streams: []core.StreamSpec{{
							Name: "probe", Template: goodFrame(), Count: 10, RatePPS: 1e6,
						}}},
						Check: core.CheckSpec{Rules: []core.Rule{{
							Name: "to-port1", Stream: "probe", ExpectPort: 1,
						}}},
					})
					if err != nil {
						return missed("test error: %v", err)
					}
					if !rep.Pass {
						return detected("checker: packets egress port 3, want 1")
					}
					return missed("egress port as expected")
				},
				ToolFormal: func() Outcome {
					return unsupported("table contents are runtime state; program-level verification cannot see installed entries")
				},
				ToolExternal: func() Outcome {
					dev := routerDevice(p4test.Router, target.NewReference(), routeEntry(3))
					tst := tester.New(dev)
					rep, err := tst.Run([]tester.Stream{{
						Name: "probe", Frame: goodFrame(), Count: 10,
						TxPort: 0, RxPort: 1, SeqLoc: seqLocForUDPPayload(),
					}})
					if err != nil {
						return missed("tester error: %v", err)
					}
					if !rep.Pass {
						return detected("expected frames on port 1 never arrived (loss=%d)", rep.Lost)
					}
					return missed("frames arrived on expected port")
				},
			},
		},
		{
			Name:    "silent internal drop: localize the faulty stage",
			UseCase: Functional,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					dev := routerDevice(p4test.Router, target.NewReference())
					dev.InjectFault(device.Fault{Kind: device.FaultQueueStuck, Port: 1})
					diag := core.LocalizeFault(dev, goodFrame(), 0, 1)
					if diag.Stage == "egress port 1" {
						return detected("localized fault to %s", diag.Stage)
					}
					return missed("localized to %q, want egress port 1", diag.Stage)
				},
				ToolFormal: func() Outcome {
					return unsupported("hardware faults are invisible to program verification")
				},
				ToolExternal: func() Outcome {
					// The tester sees 100% loss but cannot name the stage:
					// a MAC fault, parser drop, and stuck queue look identical.
					dev := routerDevice(p4test.Router, target.NewReference())
					dev.InjectFault(device.Fault{Kind: device.FaultQueueStuck, Port: 1})
					tst := tester.New(dev)
					rep, _ := tst.Run([]tester.Stream{{
						Name: "probe", Frame: goodFrame(), Count: 10,
						TxPort: 0, RxPort: 1, SeqLoc: seqLocForUDPPayload(),
					}})
					if rep != nil && rep.Lost > 0 {
						return missed("observed %d lost frames but cannot localize the stage", rep.Lost)
					}
					return missed("no loss observed")
				},
			},
		},
	}
}

// ttlZeroForwardProp: packets arriving with TTL 0 must not be forwarded.
// Encoded on the input variable (the extract-time value, before the
// pipeline decrements it).
func ttlZeroForwardProp() verify.Property {
	return verify.Property{
		Name:        "ttl-zero-input-dropped",
		Description: "packets arriving with ipv4.ttl==0 are never forwarded",
		Violation: func(prog *ir.Program, p *verify.Path) (bool, []solver.BV) {
			inst := prog.Instance("ipv4")
			if inst == nil || p.Dropped || !p.Valid[inst.Index] {
				return false, nil
			}
			// The extract-time TTL is the fresh variable named
			// "ipv4.ttl#N"; find it in the path's terms and pin it to 0.
			v := findVar(p, "ipv4.ttl#")
			if v == nil {
				return false, nil
			}
			return true, []solver.BV{solver.Eq(v, solver.ConstUint(0, v.Width()))}
		},
	}
}

// findVar locates a free variable whose name starts with prefix anywhere
// in the path's constraints or final field expressions.
func findVar(p *verify.Path, prefix string) solver.BV {
	var found solver.BV
	visit := func(v solver.VarBV) {
		if found == nil && strings.HasPrefix(v.Name, prefix) {
			found = v
		}
	}
	var walk func(t solver.BV)
	walk = func(t solver.BV) {
		switch t := t.(type) {
		case solver.VarBV:
			visit(t)
		case solver.BinBV:
			walk(t.A)
			walk(t.B)
		case solver.UnBV:
			walk(t.X)
		case solver.IteBV:
			walk(t.Cond)
			walk(t.A)
			walk(t.B)
		}
	}
	for _, c := range p.Constraints {
		walk(c)
	}
	for _, inst := range p.Fields {
		for _, f := range inst {
			if f != nil {
				walk(f)
			}
		}
	}
	return found
}

func performanceScenarios() []Scenario {
	const frameBytes = 1024 - 42 // payload so the frame is 1024B
	mkFrame := func() []byte {
		return packet.BuildUDPv4(macA, macB, ipA, ipB, 40000, 53, make([]byte, frameBytes))
	}
	lineRatePPS := 10e9 / float64((1024+20)*8)
	return []Scenario{
		{
			Name:    "throughput and packet rate at line rate",
			UseCase: Performance,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					dev := routerDevice(p4test.Router, target.NewSDNet(target.DefaultErrata()))
					ctl := core.Connect(core.NewAgent(dev))
					defer ctl.Close()
					rep, err := ctl.RunTest(&core.TestSpec{
						Name: "rate",
						Gen: core.GenSpec{Streams: []core.StreamSpec{{
							Name: "flood", Template: mkFrame(), Count: 2000,
						}}},
						Check: core.CheckSpec{Rules: []core.Rule{{Name: "fwd", Stream: "flood", ExpectPort: 1}}},
					})
					if err != nil || !rep.Pass {
						return missed("rate test failed: %v %v", rep, err)
					}
					if rep.OutPPS > 0.95*lineRatePPS && rep.OutPPS < 1.05*lineRatePPS {
						return detected("measured %.0f pps / %.2f Gbps at line rate", rep.OutPPS, rep.OutBPS/1e9)
					}
					return missed("pps %.0f outside line-rate window", rep.OutPPS)
				},
				ToolFormal: func() Outcome {
					return unsupported("verification is static; it measures no rates")
				},
				ToolExternal: func() Outcome {
					dev := routerDevice(p4test.Router, target.NewSDNet(target.DefaultErrata()))
					tst := tester.New(dev)
					pps, bps, err := tst.MeasureThroughput(mkFrame(), 2000, 0, 1)
					if err != nil {
						return missed("tester error: %v", err)
					}
					if pps > 0.9*lineRatePPS {
						return detected("measured %.0f pps / %.2f Gbps externally", pps, bps/1e9)
					}
					return missed("external pps %.0f below line rate", pps)
				},
			},
		},
		{
			Name:    "pipeline latency isolated from wire time",
			UseCase: Performance,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					dev := routerDevice(p4test.Router, target.NewSDNet(target.DefaultErrata()))
					ctl := core.Connect(core.NewAgent(dev))
					defer ctl.Close()
					rep, err := ctl.RunTest(&core.TestSpec{
						Name: "latency",
						Gen: core.GenSpec{Streams: []core.StreamSpec{{
							Name: "probe", Template: mkFrame(), Count: 200, RatePPS: 1e5,
						}}},
						Check: core.CheckSpec{Rules: []core.Rule{{Name: "fwd", Stream: "probe", ExpectPort: 1}}},
					})
					if err != nil || !rep.Pass {
						return missed("latency test failed")
					}
					// Pipeline latency for a 1024B frame on the sdnet model
					// is well under a microsecond; wire time alone is 835ns.
					if rep.LatP50Ns > 0 && rep.LatP50Ns < 800 {
						return detected("pipeline p50 latency %dns, isolated from wire time", rep.LatP50Ns)
					}
					return missed("p50 latency %dns not isolated", rep.LatP50Ns)
				},
				ToolFormal: func() Outcome {
					return unsupported("verification is static; it measures no latency")
				},
				ToolExternal: func() Outcome {
					dev := routerDevice(p4test.Router, target.NewSDNet(target.DefaultErrata()))
					tst := tester.New(dev)
					rep, err := tst.Run([]tester.Stream{{
						Name: "probe", Frame: mkFrame(), Count: 200,
						TxPort: 0, RxPort: 1, RatePPS: 1e5, SeqLoc: seqLocForUDPPayload(),
					}})
					if err != nil || !rep.Pass {
						return missed("tester run failed")
					}
					// RTT includes two serialization times; the tester cannot
					// isolate the pipeline component.
					if rep.RTTP50Ns >= 800 {
						return missed("RTT p50 %dns includes wire time; pipeline latency not isolable", rep.RTTP50Ns)
					}
					return detected("RTT %dns", rep.RTTP50Ns)
				},
			},
		},
	}
}

func compilerScenarios() []Scenario {
	return []Scenario{
		{
			Name:    "SDNet reject parser state not implemented",
			UseCase: Compiler,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					dev := routerDevice(p4test.Router, target.NewSDNet(target.DefaultErrata()))
					rep, err := runNetDebugDropTest(dev, badVersionFrame())
					if err != nil {
						return missed("test error: %v", err)
					}
					if !rep.Pass {
						return detected("malformed packets forwarded: reject state not implemented")
					}
					return missed("malformed packets dropped correctly")
				},
				ToolFormal: func() Outcome {
					// The paper's headline: the program verifies, so the
					// compiler bug is invisible.
					prog := mustProg(p4test.Router)
					res, err := verify.Check(prog, verify.PropRejectedDropped, verify.Options{})
					if err != nil {
						return missed("verification error: %v", err)
					}
					if res.Holds {
						return missed("program verified correct; compiler defect invisible to software verification")
					}
					return detected("property violated (unexpected)")
				},
				ToolExternal: func() Outcome {
					dev := routerDevice(p4test.Router, target.NewSDNet(target.DefaultErrata()))
					tst := tester.New(dev)
					rep, err := tst.Run([]tester.Stream{{
						Name: "bad", Frame: badVersionFrame(), Count: 20,
						TxPort: 0, RxPort: 1, SeqLoc: seqLocForUDPPayload(),
						ExpectLoss: true,
					}})
					if err != nil {
						return missed("tester error: %v", err)
					}
					if !rep.Pass {
						return detected("malformed frames captured on egress: drop not enforced")
					}
					return missed("malformed frames were dropped")
				},
			},
		},
		{
			Name:    "compiler rejects wide ternary keys",
			UseCase: Compiler,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					prog := mustProg(wideTernaryProgram)
					sd := target.NewSDNet(target.DefaultErrata())
					if err := sd.Load(prog); err != nil {
						return detected("compilation failed as a limitation: %v", err)
					}
					return missed("wide ternary program loaded")
				},
				ToolFormal: func() Outcome {
					return unsupported("verification sees the language, not the backend's limits")
				},
				ToolExternal: func() Outcome {
					return unsupported("an external tester never interacts with the compiler")
				},
			},
		},
	}
}

const wideTernaryProgram = `
header h_t { bit<128> x; } struct hs { h_t h; }
parser P(packet_in p, out hs hdr) { state start { p.extract(hdr.h); transition accept; } }
control I(inout hs hdr, inout standard_metadata_t sm) {
  action fwd(bit<9> port) { sm.egress_spec = port; }
  table t { key = { hdr.h.x: ternary; } actions = { fwd; } }
  apply { t.apply(); }
}
control D(packet_out p, in hs hdr) { apply { p.emit(hdr.h); } }
S(P(), I(), D()) main;`

func architectureScenarios() []Scenario {
	return []Scenario{
		{
			Name:    "usable table capacity below declared size",
			UseCase: Architecture,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					dev := routerDevice(p4test.Router, target.NewSDNet(target.DefaultErrata()))
					ctl := core.Connect(core.NewAgent(dev))
					defer ctl.Close()
					installed := 0
					for i := 0; i < 1024; i++ {
						e := dataplane.Entry{
							Table: "ipv4_lpm",
							Keys: []dataplane.KeyValue{{
								Value: bitfield.New(uint64(0x0b000000+i*256), 32), PrefixLen: 24,
							}},
							Action: "ipv4_forward",
							Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(1, 9)},
						}
						if err := ctl.InstallEntry(e); err != nil {
							break
						}
						installed++
					}
					if installed < 1024 {
						return detected("table full after %d entries; declared size 1024", installed+1)
					}
					return missed("all 1024 entries installed")
				},
				ToolFormal: func() Outcome {
					return unsupported("resource layout is a target property; not in the program semantics")
				},
				ToolExternal: func() Outcome {
					return unsupported("the tester has no control-plane access to install entries")
				},
			},
		},
		{
			Name:    "tofino placement grants less capacity than declared",
			UseCase: Architecture,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					// A 1-stage, 2-block pipeline grants the 4096-entry
					// table 2048 rows; the control channel sees the
					// placement limit trip mid-fill.
					tf := target.NewTofino(target.TofinoErrata{Stages: 1, SRAMBlocks: 2})
					if err := tf.Load(mustProg(p4test.BigExactTable)); err != nil {
						return missed("load: %v", err)
					}
					dev, err := device.New(device.Config{Target: tf})
					if err != nil {
						return missed("device: %v", err)
					}
					ctl := core.Connect(core.NewAgent(dev))
					defer ctl.Close()
					installed := 0
					for i := 0; i < 4096; i++ {
						if err := ctl.InstallEntry(dataplane.Entry{
							Table:  "big",
							Keys:   []dataplane.KeyValue{{Value: bitfield.New(uint64(i), 32)}},
							Action: "fwd",
							Args:   []bitfield.Value{bitfield.New(1, 9)},
						}); err != nil {
							break
						}
						installed++
					}
					if installed < 4096 {
						return detected("placement grant full after %d entries; declared size 4096", installed)
					}
					return missed("all 4096 entries installed")
				},
				ToolFormal: func() Outcome {
					return unsupported("table placement is a target property; not in the program semantics")
				},
				ToolExternal: func() Outcome {
					return unsupported("the tester has no control-plane access to install entries")
				},
			},
		},
		{
			Name:    "output queue depth limit under 2:1 oversubscription",
			UseCase: Architecture,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					dev := routerDevice(p4test.Router, target.NewReference())
					floodTwoToOne(dev)
					drops := dev.Status()["port1.tx.queue_drops"]
					if drops > 0 {
						return detected("status registers report %d queue tail-drops", drops)
					}
					return missed("no queue drops recorded")
				},
				ToolFormal: func() Outcome {
					return unsupported("queueing is not part of the program semantics")
				},
				ToolExternal: func() Outcome {
					dev := routerDevice(p4test.Router, target.NewReference())
					sent, got := floodTwoToOne(dev)
					if got < sent {
						return detected("received %d of %d frames: loss implies a queue limit", got, sent)
					}
					return missed("no loss under oversubscription")
				},
			},
		},
	}
}

// floodTwoToOne sends line-rate streams from ports 0 and 2 both destined
// to port 1 and returns (sent, received).
func floodTwoToOne(dev *device.Device) (sent, received int) {
	frame := goodFrame()
	wire := time.Duration(float64(len(frame)+20) * 8 / 10e9 * 1e9)
	for i := 0; i < 400; i++ {
		at := time.Duration(i) * wire
		dev.SendExternal(0, frame, at)
		dev.SendExternal(2, frame, at)
		sent += 2
	}
	received = len(dev.Captures(1))
	dev.ReleaseCaptures(1)
	return sent, received
}

func resourceScenarios() []Scenario {
	return []Scenario{{
		Name:    "hardware resource usage per program",
		UseCase: Resources,
		Run: map[string]func() Outcome{
			ToolNetDebug: func() Outcome {
				dev := routerDevice(p4test.Router, target.NewSDNet(target.DefaultErrata()))
				ctl := core.Connect(core.NewAgent(dev))
				defer ctl.Close()
				small, err := ctl.Resources()
				if err != nil || small.LUTs <= 0 {
					return missed("no resource report: %v", err)
				}
				big := target.NewSDNet(target.DefaultErrata())
				if err := big.Load(mustProg(p4test.Firewall)); err != nil {
					return missed("firewall load: %v", err)
				}
				if big.Resources().LUTs > small.LUTs {
					return detected("router %.1f%% LUT vs firewall %.1f%% LUT: consumption quantified",
						small.LUTPct, big.Resources().LUTPct)
				}
				return missed("resource model not discriminating")
			},
			ToolFormal: func() Outcome {
				return unsupported("verification has no view of hardware resources")
			},
			ToolExternal: func() Outcome {
				return unsupported("resource usage is invisible at the network interfaces")
			},
		},
	}}
}

func statusScenarios() []Scenario {
	return []Scenario{{
		Name:    "periodic internal status registers",
		UseCase: Status,
		Run: map[string]func() Outcome{
			ToolNetDebug: func() Outcome {
				dev := routerDevice(p4test.Router, target.NewReference())
				ctl := core.Connect(core.NewAgent(dev))
				defer ctl.Close()
				dev.SendExternal(0, goodFrame(), 0)
				st, err := ctl.Status()
				if err != nil {
					return missed("status read: %v", err)
				}
				if st["target.parser.accept"] == 1 && st["port1.tx.frames"] == 1 {
					return detected("per-stage counters and queue state readable over the control channel")
				}
				return missed("status registers incomplete: %v", st)
			},
			ToolFormal: func() Outcome {
				return unsupported("no runtime status in a static analysis")
			},
			ToolExternal: func() Outcome {
				return unsupported("internal registers are not observable at the interfaces")
			},
		},
	}}
}

func comparisonScenarios() []Scenario {
	probes := func() [][]byte {
		var out [][]byte
		for i := 0; i < 20; i++ {
			out = append(out, packet.BuildUDPv4(macA, macB, ipA,
				packet.IPv4Addr{10, 0, byte(i), 9}, uint16(4000+i), 53, []byte{byte(i)}))
		}
		return out
	}
	splitEntries := []dataplane.Entry{
		{
			Table:  "lpm_nexthop",
			Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
			Action: "set_nexthop",
			Args:   []bitfield.Value{bitfield.New(7, 16)},
		},
		{
			Table:  "nexthop_egress",
			Keys:   []dataplane.KeyValue{{Value: bitfield.New(7, 16)}},
			Action: "set_egress",
			Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(1, 9)},
		},
	}
	return []Scenario{
		{
			Name:    "two specifications compute the same function",
			UseCase: Comparison,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					devA := routerDevice(p4test.Router, target.NewReference())
					devB := routerDevice(p4test.RouterSplit, target.NewReference(), splitEntries...)
					diff := 0
					for _, p := range probes() {
						ra := devA.InjectInternal(p, 0, devA.Now(), false)
						rb := devB.InjectInternal(p, 0, devB.Now(), false)
						if !sameResult(ra, rb) {
							diff++
						}
					}
					if diff == 0 {
						return detected("differential injection: specifications agree on all %d probes", len(probes()))
					}
					return missed("%d probes diverged", diff)
				},
				ToolFormal: func() Outcome {
					// Compare verification verdicts property-by-property.
					pa := mustProg(p4test.Router)
					pb := mustProg(p4test.RouterSplit)
					props := []verify.Property{verify.PropRejectedDropped, ttlZeroForwardProp()}
					for _, prop := range props {
						ra, err := verify.Check(pa, prop, verify.Options{})
						if err != nil {
							return missed("verify error: %v", err)
						}
						rb, err := verify.Check(pb, prop, verify.Options{})
						if err != nil {
							return missed("verify error: %v", err)
						}
						if ra.Holds != rb.Holds {
							return missed("specifications differ on %s", prop.Name)
						}
					}
					return detected("both specifications verify the same %d properties", len(props))
				},
				ToolExternal: func() Outcome {
					devA := routerDevice(p4test.Router, target.NewReference())
					devB := routerDevice(p4test.RouterSplit, target.NewReference(), splitEntries...)
					mismatch := 0
					for i, p := range probes() {
						devA.SendExternal(0, p, time.Duration(i)*10*time.Microsecond)
						devB.SendExternal(0, p, time.Duration(i)*10*time.Microsecond)
					}
					ca, cb := len(devA.Captures(1)), len(devB.Captures(1))
					devA.ReleaseCaptures(1)
					devB.ReleaseCaptures(1)
					if ca != cb {
						mismatch++
					}
					if mismatch == 0 {
						return detected("external differential run: %d captures on both devices", ca)
					}
					return missed("capture counts diverge")
				},
			},
		},
		{
			Name:    "one specification across three hardware models",
			UseCase: Comparison,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					// With every erratum repaired, the three backends must
					// compute the same function; the shipped SDNet flow must
					// diverge exactly on malformed input.
					devs := []*device.Device{
						routerDevice(p4test.Router, target.NewReference()),
						routerDevice(p4test.Router, target.NewSDNet(target.FixedErrata())),
						routerDevice(p4test.Router, target.NewTofino(target.FixedTofinoErrata())),
					}
					for _, p := range probes() {
						ra := devs[0].InjectInternal(p, 0, devs[0].Now(), false)
						for _, dev := range devs[1:] {
							if rb := dev.InjectInternal(p, 0, dev.Now(), false); !sameResult(ra, rb) {
								return missed("erratum-free backends diverge")
							}
						}
					}
					shipped := routerDevice(p4test.Router, target.NewSDNet(target.DefaultErrata()))
					ra := devs[0].InjectInternal(badVersionFrame(), 0, devs[0].Now(), false)
					rb := shipped.InjectInternal(badVersionFrame(), 0, shipped.Now(), false)
					if sameResult(ra, rb) {
						return missed("shipped sdnet flow did not diverge on malformed input")
					}
					return detected("3 fixed backends agree on %d probes; shipped sdnet diverges on malformed input", len(probes()))
				},
				ToolFormal: func() Outcome {
					return unsupported("all deployments share one program; backend table state is invisible to verification")
				},
				ToolExternal: func() Outcome {
					devA := routerDevice(p4test.Router, target.NewReference())
					devB := routerDevice(p4test.Router, target.NewTofino(target.DefaultTofinoErrata()))
					for i, p := range probes() {
						devA.SendExternal(0, p, time.Duration(i)*10*time.Microsecond)
						devB.SendExternal(0, p, time.Duration(i)*10*time.Microsecond)
					}
					ca, cb := len(devA.Captures(1)), len(devB.Captures(1))
					devA.ReleaseCaptures(1)
					devB.ReleaseCaptures(1)
					if ca == cb {
						return detected("external differential run across hardware models: outputs agree")
					}
					return missed("capture counts diverge")
				},
			},
		},
		{
			Name:    "ternary priority tie resolved differently on tofino",
			UseCase: Comparison,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					devA := aclTieDevice(target.NewReference())
					devB := aclTieDevice(target.NewTofino(target.DefaultTofinoErrata()))
					probe := aclTieProbe()
					ra := devA.InjectInternal(probe, 0, 0, true)
					rb := devB.InjectInternal(probe, 0, 0, true)
					if !ra.Dropped() && rb.Dropped() {
						return detected("tofino driver resolves the equal-priority tie newest-first: drop vs forward")
					}
					return missed("tie resolution identical: a=%v b=%v", ra.Dropped(), rb.Dropped())
				},
				ToolFormal: func() Outcome {
					return unsupported("tie-break order is table-driver state; both deployments verify identically")
				},
				ToolExternal: func() Outcome {
					devA := aclTieDevice(target.NewReference())
					devB := aclTieDevice(target.NewTofino(target.DefaultTofinoErrata()))
					devA.SendExternal(0, aclTieProbe(), 0)
					devB.SendExternal(0, aclTieProbe(), 0)
					// The divergence is externally visible as loss, though the
					// tester cannot attribute it to the tie-break order.
					ca, cb := len(devA.Captures(2)), len(devB.Captures(2))
					devA.ReleaseCaptures(2)
					devB.ReleaseCaptures(2)
					if ca == 1 && cb == 0 {
						return detected("frame emerges from one device and not the other")
					}
					return missed("no external divergence observed")
				},
			},
		},
		{
			Name:    "three-way split: malformed input isolates the sdnet flow",
			UseCase: Comparison,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					devs := fourWayRouterDevices()
					bad := badVersionFrame()
					if odd := OddOneOut(devs, bad); len(odd) == 1 && odd[0] == "sdnet" {
						return detected("3 backends drop the malformed probe, sdnet forwards: the reject erratum is localized")
					} else {
						return missed("diverging backends %v, want exactly [sdnet]", odd)
					}
				},
				ToolFormal: func() Outcome {
					return unsupported("all four deployments share one verified program; the deviation is the compiler's")
				},
				ToolExternal: func() Outcome {
					devs := fourWayRouterDevices()
					if odd := OddOneOutExternal(devs, badVersionFrame(), 1); len(odd) == 1 && odd[0] == "sdnet" {
						return detected("capture vote across 4 devices: only sdnet emits the malformed frame")
					} else {
						return missed("external capture vote names %v, want [sdnet]", odd)
					}
				},
			},
		},
		{
			Name:    "three-way split: default-route traffic isolates the ebpf driver",
			UseCase: Comparison,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					devs := fourWayRouterDevices()
					off := offSubnetFrame()
					if odd := OddOneOut(devs, off); len(odd) == 1 && odd[0] == "ebpf" {
						return detected("3 backends forward via the /0 route, ebpf misses: the lpm-trie /0 defect is localized")
					} else {
						return missed("diverging backends %v, want exactly [ebpf]", odd)
					}
				},
				ToolFormal: func() Outcome {
					return unsupported("the /0 miss lives in the map driver; installed routes are invisible to program verification")
				},
				ToolExternal: func() Outcome {
					devs := fourWayRouterDevices()
					if odd := OddOneOutExternal(devs, offSubnetFrame(), 2); len(odd) == 1 && odd[0] == "ebpf" {
						return detected("capture vote across 4 devices: only ebpf loses default-route traffic")
					} else {
						return missed("external capture vote names %v, want [ebpf]", odd)
					}
				},
			},
		},
		{
			Name:    "three-way split: acl priority tie isolates the tofino driver",
			UseCase: Comparison,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					devs := fourWayACLDevices()
					if odd := OddOneOut(devs, aclTieProbe()); len(odd) == 1 && odd[0] == "tofino" {
						return detected("3 backends resolve the tie first-installed-wins, tofino drops: the LIFO quirk is localized")
					} else {
						return missed("diverging backends %v, want exactly [tofino]", odd)
					}
				},
				ToolFormal: func() Outcome {
					return unsupported("tie-break order is table-driver state; all four deployments verify identically")
				},
				ToolExternal: func() Outcome {
					devs := fourWayACLDevices()
					if odd := OddOneOutExternal(devs, aclTieProbe(), 2); len(odd) == 1 && odd[0] == "tofino" {
						return detected("capture vote across 4 devices: only tofino drops the tied flow")
					} else {
						return missed("external capture vote names %v, want [tofino]", odd)
					}
				},
			},
		},
		{
			Name:    "four-way split: punt truncation isolates the smartnic driver",
			UseCase: Comparison,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					devs := make(map[string]*device.Device, 5)
					for name, tg := range fiveWayBackends() {
						devs[name] = aclTieDevice(tg)
					}
					// A frame only the allow-any ACL entry matches, long
					// enough to overflow the punt MTU: the 80-bit ternary
					// key keeps the ACL core-resident on the SmartNIC, so
					// the frame punts and the shipped driver re-emits it
					// truncated.
					if odd := OddOneOut(devs, largeAllowedFrame()); len(odd) == 1 && odd[0] == "smartnic" {
						return detected("4 backends forward the %dB frame intact, smartnic truncates it at the punt MTU", len(largeAllowedFrame()))
					} else {
						return missed("diverging backends %v, want exactly [smartnic]", odd)
					}
				},
				ToolFormal: func() Outcome {
					return unsupported("the truncation lives in the punt DMA driver; all five deployments verify identically")
				},
				ToolExternal: func() Outcome {
					devs := make(map[string]*device.Device, 5)
					for name, tg := range fiveWayBackends() {
						devs[name] = aclTieDevice(tg)
					}
					// Externally the loss is not visible as a missing
					// capture — the truncated frame still emerges — so vote
					// on the captured length instead of the count.
					got := make(map[string]int, len(devs))
					for name, dev := range devs {
						dev.SendExternal(0, largeAllowedFrame(), 0)
						caps := dev.Captures(2)
						n := 0
						if len(caps) == 1 {
							n = len(caps[0].Data)
						}
						got[name] = n
						dev.ReleaseCaptures(2)
					}
					if odd := OddOneOutLengths(got); len(odd) == 1 && odd[0] == "smartnic" {
						return detected("capture-length vote across 5 devices: only smartnic emits a short frame")
					} else {
						return missed("capture-length vote names %v, want [smartnic]", odd)
					}
				},
			},
		},
		{
			Name:    "2-2 tie re-scored against the reference anchor",
			UseCase: Comparison,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					// With an even voter subset, the malformed probe splits
					// 2-2: reference and tofino drop it, while sdnet and the
					// smartnic exception path both fail open and forward
					// byte-identical frames. Strict majority cannot
					// localize; the reference anchor — corroborated by
					// tofino — names the failing pair.
					devs := map[string]*device.Device{
						"reference": routerDevice(p4test.Router, target.NewReference(), routeEntry(1), defaultRouteEntry(2)),
						"tofino":    routerDevice(p4test.Router, target.NewTofino(target.DefaultTofinoErrata()), routeEntry(1), defaultRouteEntry(2)),
						"sdnet":     routerDevice(p4test.Router, target.NewSDNet(target.DefaultErrata()), routeEntry(1), defaultRouteEntry(2)),
						"smartnic":  routerDevice(p4test.Router, target.NewSmartNIC(target.DefaultSmartNICErrata()), routeEntry(1), defaultRouteEntry(2)),
					}
					odd := OddOneOut(devs, badVersionFrame())
					if len(odd) == 2 && odd[0] == "sdnet" && odd[1] == "smartnic" {
						return detected("2-2 split resolved: the corroborated reference anchor names the fail-open pair [sdnet smartnic]")
					}
					return missed("anchored vote names %v, want [sdnet smartnic]", odd)
				},
				ToolFormal: func() Outcome {
					return unsupported("both fail-open flows execute a reject-stripped program; the split is a deployment artifact")
				},
				ToolExternal: func() Outcome {
					devs := map[string]*device.Device{
						"reference": routerDevice(p4test.Router, target.NewReference(), routeEntry(1), defaultRouteEntry(2)),
						"tofino":    routerDevice(p4test.Router, target.NewTofino(target.DefaultTofinoErrata()), routeEntry(1), defaultRouteEntry(2)),
						"sdnet":     routerDevice(p4test.Router, target.NewSDNet(target.DefaultErrata()), routeEntry(1), defaultRouteEntry(2)),
						"smartnic":  routerDevice(p4test.Router, target.NewSmartNIC(target.DefaultSmartNICErrata()), routeEntry(1), defaultRouteEntry(2)),
					}
					odd := OddOneOutExternal(devs, badVersionFrame(), 1)
					if len(odd) == 2 && odd[0] == "sdnet" && odd[1] == "smartnic" {
						return detected("capture vote 2-2; the reference anchor names both emitting devices")
					}
					return missed("anchored capture vote names %v, want [sdnet smartnic]", odd)
				},
			},
		},
		{
			Name:    "tie with a divergent reference stays unresolved",
			UseCase: Comparison,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					// A misconfigured reference device (route to port 9)
					// dissents inside the tie: the anchor is uncorroborated,
					// so the vote must refuse to localize and return every
					// name rather than blame the two-backend plurality's
					// opposition.
					devs := map[string]*device.Device{
						"reference": routerDevice(p4test.Router, target.NewReference(), routeEntry(9)),
						"sdnet":     routerDevice(p4test.Router, target.NewSDNet(target.DefaultErrata()), routeEntry(1)),
						"smartnic":  routerDevice(p4test.Router, target.NewSmartNIC(target.DefaultSmartNICErrata()), routeEntry(1)),
						"tofino":    routerDevice(p4test.Router, target.NewTofino(target.DefaultTofinoErrata()), routeEntry(2)),
					}
					odd := OddOneOut(devs, goodFrame())
					if len(odd) == 4 {
						return detected("uncorroborated anchor: the vote surfaces all %d backends as unresolved instead of guessing", len(odd))
					}
					return missed("vote named %v from an unresolvable tie", odd)
				},
				ToolFormal: func() Outcome {
					return unsupported("the divergence is injected table state; the programs verify identically")
				},
				ToolExternal: func() Outcome {
					return unsupported("the split spans three egress ports; single-port capture voting cannot tally it")
				},
			},
		},
		{
			Name:    "specifications differ only in internal drop stage",
			UseCase: Comparison,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					// Router drops bad-version packets in the parser;
					// RouterNoTTLCheck also rejects them in the parser, but a
					// variant that accepts-then-drops differs internally.
					devA := routerDevice(p4test.Router, target.NewReference())
					devB := plainDevice(acceptThenDropProgram, target.NewReference())
					ra := devA.InjectInternal(badVersionFrame(), 0, 0, true)
					rb := devB.InjectInternal(badVersionFrame(), 0, 0, true)
					if ra.Dropped() && rb.Dropped() && ra.Trace.DropStage != rb.Trace.DropStage {
						return detected("both drop, but at %q vs %q — distinguishable only internally",
							ra.Trace.DropStage, rb.Trace.DropStage)
					}
					return missed("drop stages identical: %q vs %q", ra.Trace.DropStage, rb.Trace.DropStage)
				},
				ToolFormal: func() Outcome {
					return unsupported("both programs satisfy identical I/O properties; stage is not expressible")
				},
				ToolExternal: func() Outcome {
					devA := routerDevice(p4test.Router, target.NewReference())
					devB := plainDevice(acceptThenDropProgram, target.NewReference())
					devA.SendExternal(0, badVersionFrame(), 0)
					devB.SendExternal(0, badVersionFrame(), 0)
					ca, cb := len(devA.Captures(1)), len(devB.Captures(1))
					devA.ReleaseCaptures(1)
					devB.ReleaseCaptures(1)
					if ca == 0 && cb == 0 {
						return missed("externally identical: both devices emit nothing")
					}
					return detected("external outputs differ")
				},
			},
		},
		{
			// The verify-throughput cell: each tool compares its fast path
			// against its reference path on the same workload and must get
			// identical results — parallel path exploration vs sequential
			// for the verifier, batched probe injection vs per-packet for
			// NetDebug.
			Name:    "fast paths reproduce the reference results",
			UseCase: Comparison,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					spec := &core.TestSpec{
						Name: "batched-vs-sequential",
						Gen: core.GenSpec{Streams: []core.StreamSpec{{
							Name: "probe", Template: goodFrame(), Count: 2000, RatePPS: 1e6,
						}}},
						Check: core.CheckSpec{Rules: []core.Rule{{Name: "fwd", Stream: "probe", ExpectPort: 1}}},
					}
					// Batched agent run (Engine.ProcessBatch under the hood).
					agent := core.NewAgent(routerDevice(p4test.Router, target.NewReference()))
					if err := agent.Configure(spec); err != nil {
						return missed("configure: %v", err)
					}
					batched, err := agent.Run()
					if err != nil {
						return missed("batched run: %v", err)
					}
					// Reference: the same stream injected one packet at a time.
					dev := routerDevice(p4test.Router, target.NewReference())
					gen, err := core.NewGenerator(spec.Gen)
					if err != nil {
						return missed("generator: %v", err)
					}
					checker, err := core.NewChecker(spec.Check)
					if err != nil {
						return missed("checker: %v", err)
					}
					for _, tp := range gen.Packets(dev.Now()) {
						checker.OnResult(tp, dev.InjectInternal(tp.Data, tp.IngressPort, tp.At, true), tp.At)
					}
					seq := checker.Finish()
					if !batched.Pass || !seq.Pass ||
						batched.Forwarded != seq.Forwarded || batched.LatP99Ns != seq.LatP99Ns {
						return missed("batched path diverged: %v vs %v", batched, seq)
					}
					return detected("batched generator path matches per-packet injection on %d probes at %.0f pps",
						batched.Injected, batched.OutPPS)
				},
				ToolFormal: func() Outcome {
					prog := mustProg(p4test.Firewall)
					digest := func(exp *verify.Exploration) string {
						var b strings.Builder
						fmt.Fprintf(&b, "%d/%d|", len(exp.Paths), exp.Pruned)
						for _, p := range exp.Paths {
							fmt.Fprintf(&b, "%s:%v:%d;", p.Verdict, p.Actions, len(p.Model))
						}
						return b.String()
					}
					seq, err := verify.ExploreWithStats(prog, verify.Options{Workers: 1, SolvePaths: true})
					if err != nil {
						return missed("sequential explore: %v", err)
					}
					par, err := verify.ExploreWithStats(prog, verify.Options{Workers: 8, SolvePaths: true})
					if err != nil {
						return missed("parallel explore: %v", err)
					}
					if digest(par) != digest(seq) {
						return missed("parallel exploration diverged from sequential")
					}
					return detected("8-worker exploration matches sequential: %d feasible paths (%d pruned), %d propagations",
						len(par.Paths), par.Pruned, par.Solver.Propagations)
				},
				ToolExternal: func() Outcome {
					return unsupported("the tester observes wire traffic; program paths and the in-device generator are out of reach")
				},
			},
		},
	}
}

// shippedBackends builds the four-way shipped (default-errata) fixture
// set the odd-voter-count comparison cells drive — the SmartNIC joins
// in the five-way cells (fiveWayBackends), whose even voter count
// exercises the tie-break path instead.
func shippedBackends() map[string]target.Target {
	return map[string]target.Target{
		"reference": target.NewReference(),
		"sdnet":     target.NewSDNet(target.DefaultErrata()),
		"tofino":    target.NewTofino(target.DefaultTofinoErrata()),
		"ebpf":      target.NewEBPF(target.DefaultEBPFErrata()),
	}
}

// fiveWayBackends is the full shipped matrix (target.ShippedKinds): the
// even backend count makes 2-2 ties reachable, so these fixtures also
// exercise the reference-anchored tie-break.
func fiveWayBackends() map[string]target.Target {
	devs := shippedBackends()
	devs["smartnic"] = target.NewSmartNIC(target.DefaultSmartNICErrata())
	return devs
}

// fiveWayRouterDevices builds one router device per shipped backend
// (all five), each with the 10/8 route (port 1) and a /0 default route
// (port 2).
func fiveWayRouterDevices() map[string]*device.Device {
	devs := make(map[string]*device.Device, 5)
	for name, tg := range fiveWayBackends() {
		devs[name] = routerDevice(p4test.Router, tg, routeEntry(1), defaultRouteEntry(2))
	}
	return devs
}

// defaultRouteEntry is the /0 fallback route every destination misses
// down to.
func defaultRouteEntry(port uint64) dataplane.Entry {
	return dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0, 32), PrefixLen: 0}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(port, 9)},
	}
}

// offSubnetFrame is covered only by the /0 default route.
func offSubnetFrame() []byte {
	return packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{172, 16, 5, 9}, 40100, 53, make([]byte, 26))
}

// fourWayRouterDevices builds one router device per shipped backend,
// each with the 10/8 route (port 1) and a /0 default route (port 2).
func fourWayRouterDevices() map[string]*device.Device {
	devs := make(map[string]*device.Device, 4)
	for name, tg := range shippedBackends() {
		devs[name] = routerDevice(p4test.Router, tg, routeEntry(1), defaultRouteEntry(2))
	}
	return devs
}

// fourWayACLDevices builds the overlapping-equal-priority ACL fixture
// on every shipped backend.
func fourWayACLDevices() map[string]*device.Device {
	devs := make(map[string]*device.Device, 4)
	for name, tg := range shippedBackends() {
		devs[name] = aclTieDevice(tg)
	}
	return devs
}

// dissenters returns the names whose outcome diverges from the vote
// outcome, sorted. A strict majority names everyone outside it. Without
// a strict majority (e.g. the 2-2 splits an even backend count makes
// possible) the tie is re-scored against the reference anchor: when a
// member named "reference" is present and its outcome is corroborated
// by at least one other member, the names disagreeing with the anchor
// are returned. A tie with no reference member — or one where the
// reference's outcome stands alone — cannot be resolved, so every name
// is returned and callers testing len == 1 correctly report no
// localization. This one implementation carries the vote semantics for
// both visibility levels below and for examples/comparison.
func dissenters[O comparable](got map[string]O) []string {
	tally := map[O]int{}
	for _, o := range got {
		tally[o]++
	}
	var majority O
	best := 0
	for o, n := range tally {
		if n > best {
			majority, best = o, n
		}
	}
	if best*2 <= len(got) {
		ref, ok := got["reference"]
		if !ok || tally[ref] < 2 {
			// Unresolved tie: no anchor, or the anchor itself dissents.
			odd := make([]string, 0, len(got))
			for name := range got {
				odd = append(odd, name)
			}
			sort.Strings(odd)
			return odd
		}
		majority = ref
	}
	var odd []string
	for name, o := range got {
		if o != majority {
			odd = append(odd, name)
		}
	}
	sort.Strings(odd)
	return odd
}

// OddOneOut injects frame into every device and returns the backends
// whose result diverges from the vote outcome, sorted — the
// three-way-split localization a pairwise comparison cannot make.
// Ties with no strict majority are re-scored against the device named
// "reference" when present and corroborated (see dissenters); all
// names come back when the tie cannot be resolved.
func OddOneOut(devs map[string]*device.Device, frame []byte) []string {
	type oc struct {
		dropped bool
		port    uint64
		data    string
	}
	got := make(map[string]oc, len(devs))
	for name, dev := range devs {
		r := dev.InjectInternal(frame, 0, dev.Now(), false)
		o := oc{dropped: r.Dropped()}
		if !o.dropped {
			o.port = r.Outputs[0].Port
			o.data = string(r.Outputs[0].Data)
		}
		got[name] = o
	}
	return dissenters(got)
}

// OddOneOutExternal sends frame through every device's external port 0
// and votes on the capture count at rxPort — the same localization made
// with interface-level visibility only.
func OddOneOutExternal(devs map[string]*device.Device, frame []byte, rxPort int) []string {
	got := make(map[string]int, len(devs))
	for name, dev := range devs {
		dev.SendExternal(0, frame, 0)
		got[name] = len(dev.Captures(rxPort))
		dev.ReleaseCaptures(rxPort)
	}
	return dissenters(got)
}

// OddOneOutLengths votes on externally captured frame lengths (or any
// per-backend integer observation), with the same strict-majority +
// reference-anchor semantics as OddOneOut — the localization that
// catches divergences visible only as a size change, like the SmartNIC
// punt-MTU truncation.
func OddOneOutLengths(got map[string]int) []string {
	return dissenters(got)
}

// largeAllowedFrame is a firewall probe only the allow-any ACL entry
// matches, with enough payload to overflow the SmartNIC punt MTU.
func largeAllowedFrame() []byte {
	return packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{10, 0, 1, 7}, 40000, 53, make([]byte, 300))
}

// aclTieDevice loads the firewall with two overlapping equal-priority
// ACL entries — a match-any allow installed first, an exact-dst drop
// installed second — plus a route for the drop entry's destination. A
// conforming target resolves the tie first-installed-wins and forwards
// the probe; the shipped Tofino driver resolves newest-first and drops
// it.
func aclTieDevice(tg target.Target) *device.Device {
	return routerDeviceProg(p4test.Firewall, tg, aclTieEntries()...)
}

// aclTieEntries is the overlapping-equal-priority ACL table state: an
// allow-any entry installed first, an exact-dst drop at the same
// priority, and a /24 route for the tied destination.
func aclTieEntries() []dataplane.Entry {
	anyAddr := bitfield.New(0, 32)
	anyPort := bitfield.New(0, 16)
	dstIP := bitfield.New(0x0a000102, 32) // 10.0.1.2 == ipB
	return []dataplane.Entry{
		{
			Table: "acl", Action: "allow", Priority: 3,
			Keys: []dataplane.KeyValue{
				{Value: anyAddr, Mask: anyAddr},
				{Value: anyAddr, Mask: anyAddr},
				{Value: anyPort, Mask: anyPort},
			},
		},
		{
			Table: "acl", Action: "drop", Priority: 3,
			Keys: []dataplane.KeyValue{
				{Value: anyAddr, Mask: anyAddr},
				{Value: dstIP, Mask: bitfield.Mask(32)},
				{Value: anyPort, Mask: anyPort},
			},
		},
		{
			Table:  "routing",
			Keys:   []dataplane.KeyValue{{Value: dstIP, PrefixLen: 24}},
			Action: "route",
			Args:   []bitfield.Value{bitfield.New(2, 9)},
		},
	}
}

// aclTieProbe is a frame both overlapping ACL entries match.
func aclTieProbe() []byte {
	return packet.BuildUDPv4(macA, macB, ipA, ipB, 40000, 53, make([]byte, 6))
}

// routerDeviceProg builds a device running src on tg with the given
// entries installed (no defaults).
func routerDeviceProg(src string, tg target.Target, entries ...dataplane.Entry) *device.Device {
	if err := tg.Load(mustProg(src)); err != nil {
		panic(fmt.Sprintf("scenario: load: %v", err))
	}
	for _, e := range entries {
		if err := tg.InstallEntry(e); err != nil {
			panic(fmt.Sprintf("scenario: install: %v", err))
		}
	}
	dev, err := device.New(device.Config{Target: tg})
	if err != nil {
		panic(err)
	}
	return dev
}

// acceptThenDropProgram drops malformed IPv4 in the ingress control rather
// than the parser — externally identical to Router on malformed input,
// internally different.
const acceptThenDropProgram = `
const bit<16> TYPE_IPV4 = 0x0800;
header ethernet_t { bit<48> dstAddr; bit<48> srcAddr; bit<16> etherType; }
header ipv4_t {
  bit<4> version; bit<4> ihl; bit<8> diffserv; bit<16> totalLen;
  bit<16> identification; bit<3> flags; bit<13> fragOffset;
  bit<8> ttl; bit<8> protocol; bit<16> hdrChecksum;
  bit<32> srcAddr; bit<32> dstAddr;
}
struct headers_t { ethernet_t ethernet; ipv4_t ipv4; }
parser AParser(packet_in pkt, out headers_t hdr, inout standard_metadata_t sm) {
  state start {
    pkt.extract(hdr.ethernet);
    transition select(hdr.ethernet.etherType) {
      TYPE_IPV4: parse_ipv4;
      default: accept;
    }
  }
  state parse_ipv4 { pkt.extract(hdr.ipv4); transition accept; }
}
control AIngress(inout headers_t hdr, inout standard_metadata_t sm) {
  apply {
    if (hdr.ipv4.isValid()) {
      if (hdr.ipv4.version != 4w4) {
        mark_to_drop();
      } else {
        sm.egress_spec = 9w1;
      }
    } else {
      mark_to_drop();
    }
  }
}
control ADeparser(packet_out pkt, in headers_t hdr) {
  apply { pkt.emit(hdr.ethernet); pkt.emit(hdr.ipv4); }
}
V1Switch(AParser(), AIngress(), ADeparser()) main;
`

func sameResult(a, b target.Result) bool {
	if a.Dropped() != b.Dropped() {
		return false
	}
	if a.Dropped() {
		return true
	}
	if len(a.Outputs) != len(b.Outputs) {
		return false
	}
	for i := range a.Outputs {
		if a.Outputs[i].Port != b.Outputs[i].Port ||
			string(a.Outputs[i].Data) != string(b.Outputs[i].Data) {
			return false
		}
	}
	return true
}

// --- matrix -------------------------------------------------------------

// Cell is one Figure 2 entry.
type Cell int

// Cells.
const (
	None Cell = iota
	Partial
	Full
)

// String renders the cell as in the paper's figure.
func (c Cell) String() string {
	switch c {
	case Full:
		return "Full"
	case Partial:
		return "Partial"
	}
	return "None"
}

// Matrix is the computed Figure 2: use case -> tool -> cell.
type Matrix struct {
	Cells   map[UseCase]map[string]Cell
	Details []string // per-scenario outcome lines
}

// BuildMatrix runs every scenario under every tool sequentially and
// scores the cells.
func BuildMatrix(scenarios []Scenario) *Matrix {
	return matrixFromCells(RunCells(scenarios, 1))
}

// BuildMatrixParallel runs the suite across a worker pool (workers <= 0
// selects one worker per CPU) and scores the cells. Every cell builds
// its own devices, so the result — including the order of the detail
// lines — is identical to BuildMatrix.
func BuildMatrixParallel(scenarios []Scenario, workers int) *Matrix {
	return matrixFromCells(RunCells(scenarios, workers))
}

// matrixFromCells tallies executed cells into the Figure 2 matrix.
func matrixFromCells(cells []CellOutcome) *Matrix {
	m := &Matrix{Cells: make(map[UseCase]map[string]Cell)}
	type tally struct{ attempted, detected, total int }
	counts := map[UseCase]map[string]*tally{}
	for _, uc := range UseCases {
		counts[uc] = map[string]*tally{}
		for _, tool := range Tools {
			counts[uc][tool] = &tally{}
		}
	}
	for _, cell := range cells {
		t := counts[cell.UseCase][cell.Tool]
		t.total++
		if !cell.Implemented {
			m.Details = append(m.Details, fmt.Sprintf("[%s] %s / %s: not implemented", cell.UseCase, cell.Scenario, cell.Tool))
			continue
		}
		out := cell.Outcome
		if out.Supported {
			t.attempted++
		}
		if out.Detected {
			t.detected++
		}
		mark := "✗"
		if out.Detected {
			mark = "✓"
		}
		m.Details = append(m.Details,
			fmt.Sprintf("[%s] %s / %s: %s %s", cell.UseCase, cell.Scenario, cell.Tool, mark, out.Detail))
	}
	for _, uc := range UseCases {
		m.Cells[uc] = map[string]Cell{}
		for _, tool := range Tools {
			t := counts[uc][tool]
			switch {
			case t.detected == t.total && t.total > 0:
				m.Cells[uc][tool] = Full
			case t.detected > 0:
				m.Cells[uc][tool] = Partial
			default:
				m.Cells[uc][tool] = None
			}
		}
	}
	return m
}

// Render prints the matrix as the paper's Figure 2 table.
func (m *Matrix) Render() string {
	var b strings.Builder
	w := 28
	fmt.Fprintf(&b, "%-*s", w, "use case")
	for _, tool := range Tools {
		fmt.Fprintf(&b, "| %-30s", tool)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", w+3*33) + "\n")
	for _, uc := range UseCases {
		fmt.Fprintf(&b, "%-*s", w, string(uc))
		for _, tool := range Tools {
			fmt.Fprintf(&b, "| %-30s", m.Cells[uc][tool].String())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SortedDetails returns detail lines sorted for stable output.
func (m *Matrix) SortedDetails() []string {
	out := append([]string(nil), m.Details...)
	sort.Strings(out)
	return out
}
