package scenario

// The million-flow occupancy sweep: the validation methodology only pays
// off if the simulated data plane behaves like hardware at realistic
// table occupancies, so this workload populates exact, LPM, and ternary
// tables at 10^2..10^6 entries per target backend and measures lookup
// latency and memory versus occupancy. Each backend's capacity model
// trips mid-sweep exactly as the architecture-check use case predicts —
// SDNet's usable-capacity erratum clips installs to ~90% of declared
// size at 10^6, and Tofino's per-stage placement grants clip the SRAM
// tables near 491k and the TCAM table near 74k — and the sweep records
// each finding instead of failing. A distinct-mask-count axis measures
// the tuple-space lookup's degradation toward the linear scan as mask
// diversity approaches the entry count.

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/p4/compile"
	"netdebug/internal/target"
)

// millionFlowProgram declares one table per match kind, each sized to
// %d entries, over a compact synthetic key header.
const millionFlowProgram = `
header key_t { bit<48> dmac; bit<48> smac; bit<32> dst; bit<32> src; bit<16> sport; }
struct hs { key_t k; }
parser MFParser(packet_in p, out hs hdr) {
  state start { p.extract(hdr.k); transition accept; }
}
control MFIngress(inout hs hdr, inout standard_metadata_t sm) {
  action fwd(bit<9> port) { sm.egress_spec = port; }
  table t_exact {
    key = { hdr.k.dst: exact; }
    actions = { fwd; NoAction; }
    size = %d;
  }
  table t_lpm {
    key = { hdr.k.dst: lpm; }
    actions = { fwd; NoAction; }
    size = %d;
  }
  table t_acl {
    key = { hdr.k.dst: ternary; hdr.k.src: ternary; hdr.k.sport: ternary; }
    actions = { fwd; NoAction; }
    size = %d;
  }
  apply { t_exact.apply(); t_lpm.apply(); t_acl.apply(); }
}
control MFDeparser(packet_out p, in hs hdr) { apply { p.emit(hdr.k); } }
S(MFParser(), MFIngress(), MFDeparser()) main;`

// SweepTables lists the swept tables in apply order.
var SweepTables = []string{"t_exact", "t_lpm", "t_acl"}

// SweepOptions configures MillionFlowSweep.
type SweepOptions struct {
	// Backends are the target backends to sweep; empty means the full
	// shipped matrix (target.ShippedKinds). Any target.ForKind name is
	// accepted, including the -fixed variants.
	Backends []string
	// Occupancies are the per-table entry counts; empty means
	// 10^2..10^6 in decades.
	Occupancies []int
	// TableSize is the declared size of each table (the denominator the
	// SDNet usable-capacity erratum scales); 0 means 1<<20, which puts
	// the erratum trip point between the 10^5 and 10^6 occupancies.
	TableSize int
	// Probes is the number of lookup packets timed per point; 0 means
	// 4096.
	Probes int
	// BatchSize is the burst size driven through the batched target
	// path; 0 means 256.
	BatchSize int
	// Tables selects the subset of SweepTables to populate; empty means
	// all three. The 10^7-flow tier sweeps {"t_lpm"} alone — populating
	// three tables at that scale measures mostly the exact map, while
	// the LPM-only run isolates the multibit trie the tier exists to
	// size. Unknown names are rejected.
	Tables []string
	// DistinctMasks is the number of distinct mask tuples the ternary
	// table's entries cycle through; 0 means 8, the "few templates,
	// many flows" shape of real ACLs. Raising it toward the entry count
	// degrades the tuple-space lookup toward the linear scan — the
	// worst case this parameter exists to measure. More distinct masks
	// than entries is impossible (each entry carries one tuple), so a
	// value above a point's occupancy is clamped to it, and the point
	// records the clamped value. Negative values are rejected.
	DistinctMasks int
}

func (o *SweepOptions) fill() {
	if len(o.Backends) == 0 {
		o.Backends = append([]string(nil), target.ShippedKinds...)
	}
	if len(o.Occupancies) == 0 {
		o.Occupancies = []int{100, 1000, 10000, 100000, 1000000}
	}
	if o.TableSize == 0 {
		o.TableSize = 1 << 20
	}
	if o.Probes == 0 {
		o.Probes = 4096
	}
	if o.BatchSize == 0 {
		o.BatchSize = 256
	}
	if len(o.Tables) == 0 {
		o.Tables = SweepTables
	}
	if o.DistinctMasks == 0 {
		o.DistinctMasks = len(aclMaskTemplates)
	}
}

// SweepPoint is one (backend, occupancy) measurement.
type SweepPoint struct {
	Backend   string
	Occupancy int
	// DistinctMasks is the mask-diversity setting the point ran with.
	DistinctMasks int
	// MaskGroups is the number of distinct mask tuples actually indexed
	// in the ternary table — the per-lookup tuple-space probe count.
	MaskGroups int
	// Installed maps table name to the number of entries actually
	// installed — below Occupancy when the backend's usable capacity
	// tripped first.
	Installed map[string]int
	// CapacityNote records a capacity erratum observed while populating
	// ("" when every install succeeded). This is the architecture-check
	// finding the sweep is designed to surface on SDNet.
	CapacityNote string
	// InstallNs is the mean install latency per entry, over all tables.
	InstallNs float64
	// LookupNs is the mean per-packet pipeline latency (parse + three
	// table lookups + deparse) over the probe burst.
	LookupNs float64
	// ModelNs is the backend's *modelled* per-packet latency at this
	// point — what the simulated hardware would take, as opposed to
	// LookupNs, which is what the simulation takes. This is where the
	// mask-diversity axis separates the architectures: a TCAM compares
	// every mask in parallel (Tofino stays flat), while the eBPF
	// mask-set scan pays one section per distinct mask (linear).
	ModelNs float64
	// HeapBytes is the heap growth attributable to the populated tables.
	HeapBytes uint64
	// ModelBytes is the backend's *modelled* table memory at this point
	// (ResourceReport.ModelBytes): memlock map grants on ebpf, placed
	// SRAM/TCAM blocks on tofino, BRAM blocks on sdnet. 0 on the
	// reference target, which has no resource model.
	ModelBytes uint64
	// BytesPerEntry is the memory cost per installed entry: ModelBytes
	// over total installs where the backend models memory, measured
	// heap over total installs on the reference — the column that makes
	// the multibit trie's footprint comparable across backend classes.
	BytesPerEntry float64
	// PuntRate is the fraction of timed probes the backend punted to
	// its exception path (the SmartNIC core complex); 0 on backends
	// with no punt path. This is the axis that surfaces offload
	// fallback: the SmartNIC never refuses an install (no
	// CapacityNote), but once a table spills past its accelerator grant
	// every lookup on it punts and the rate jumps to 1.
	PuntRate float64
}

// newSweepTarget builds the named backend — the same kind vocabulary as
// everywhere else (target.ForKind).
func newSweepTarget(name string) (target.Target, error) {
	tgt, err := target.ForKind(name)
	if err != nil {
		return nil, fmt.Errorf("scenario: unknown sweep backend %q", name)
	}
	return tgt, nil
}

// aclMaskTemplates is the default pool of ternary mask tuples — the
// "few templates, many flows" shape of real ACLs.
var aclMaskTemplates = func() [][3]bitfield.Value {
	fullDst := bitfield.Mask(32)
	fullSrc := bitfield.Mask(32)
	fullPort := bitfield.Mask(16)
	none32 := bitfield.New(0, 32)
	return [][3]bitfield.Value{
		{fullDst, fullSrc, fullPort},
		{fullDst, fullSrc, bitfield.New(0, 16)},
		{fullDst, none32, fullPort},
		{bitfield.Mask(32).Shl(8).WithWidth(32), fullSrc, fullPort},
		{fullDst, bitfield.Mask(32).Shl(16).WithWidth(32), bitfield.New(0, 16)},
		{bitfield.Mask(32).Shl(4).WithWidth(32), none32, fullPort},
		{fullDst, bitfield.Mask(32).Shl(24).WithWidth(32), fullPort},
		{bitfield.Mask(32).Shl(12).WithWidth(32), fullSrc, bitfield.New(0, 16)},
	}
}()

// aclMaskTuple returns the j-th distinct mask tuple. The first
// len(aclMaskTemplates) tuples come from the realistic template pool;
// beyond that, tuples are generated by encoding j into the port and dst
// masks, so every j below 2^32 yields a distinct tuple — the knob that
// drives the tuple-space index toward its linear-scan worst case.
func aclMaskTuple(j int) [3]bitfield.Value {
	if j < len(aclMaskTemplates) {
		return aclMaskTemplates[j]
	}
	return [3]bitfield.Value{
		bitfield.New(0xffff0000|uint64(j>>16)&0xffff, 32),
		bitfield.Mask(32),
		bitfield.New(uint64(j)&0xffff, 16),
	}
}

// sweepEntry builds the i-th deterministic entry for a table. Exact and
// LPM entries use distinct dst values; ternary entries cycle through a
// pool of `masks` distinct mask tuples (see aclMaskTuple) with distinct
// masked values and a handful of priorities.
func sweepEntry(table string, i, masks int) dataplane.Entry {
	dst := bitfield.New(uint64(i), 32)
	switch table {
	case "t_exact":
		return dataplane.Entry{
			Table: table, Action: "fwd",
			Keys: []dataplane.KeyValue{{Value: dst}},
			Args: []bitfield.Value{bitfield.New(uint64(i%4), 9)},
		}
	case "t_lpm":
		// Distinct /32s, with every 16th entry a distinct /24 from the
		// disjoint 0x40xxxxxx range so trie depth varies. The /24s are
		// indexed by i/16 so their 24 significant bits stay clear of the
		// range tag at bit 30 — distinct through the 10^7 tier (the old
		// i<<8 encoding collided with itself from i = 2^22).
		kv := dataplane.KeyValue{Value: dst, PrefixLen: 32}
		if i%16 == 15 {
			kv = dataplane.KeyValue{Value: bitfield.New(0x40000000|uint64(i/16)<<8, 32), PrefixLen: 24}
		}
		return dataplane.Entry{
			Table: table, Action: "fwd",
			Keys: []dataplane.KeyValue{kv},
			Args: []bitfield.Value{bitfield.New(uint64(i%4), 9)},
		}
	default: // t_acl
		m := aclMaskTuple(i % masks)
		return dataplane.Entry{
			Table: table, Action: "fwd", Priority: i % 4,
			Keys: []dataplane.KeyValue{
				{Value: bitfield.New(uint64(i), 32), Mask: m[0]},
				{Value: bitfield.New(uint64(i*7)&0xffffffff, 32), Mask: m[1]},
				{Value: bitfield.New(uint64(i%65536), 16), Mask: m[2]},
			},
			Args: []bitfield.Value{bitfield.New(uint64(i%4), 9)},
		}
	}
}

// sweepFrame builds the 22-byte key_t frame for probe i at occupancy n:
// even probes hit installed dst values, odd probes miss.
func sweepFrame(buf []byte, i, n int) []byte {
	dst := uint64(i % n)
	if i%2 == 1 {
		dst = uint64(0x80000000 + i) // outside the installed range
	}
	buf = buf[:0]
	buf = append(buf, make([]byte, 12)...) // dmac, smac
	buf = append(buf, byte(dst>>24), byte(dst>>16), byte(dst>>8), byte(dst))
	src := uint64(i*7) & 0xffffffff
	buf = append(buf, byte(src>>24), byte(src>>16), byte(src>>8), byte(src))
	port := uint64(i % 65536)
	return append(buf, byte(port>>8), byte(port))
}

// heapInUse forces a collection and reports live heap bytes.
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// MillionFlowSweep runs the occupancy sweep and returns one point per
// (backend, occupancy) pair, backend-major in option order.
func MillionFlowSweep(opts SweepOptions) ([]SweepPoint, error) {
	opts.fill()
	prog, err := compile.Compile(fmt.Sprintf(millionFlowProgram,
		opts.TableSize, opts.TableSize, opts.TableSize))
	if err != nil {
		return nil, fmt.Errorf("scenario: million-flow program: %w", err)
	}
	if opts.DistinctMasks < 0 {
		return nil, fmt.Errorf("scenario: sweep mask diversity %d is negative", opts.DistinctMasks)
	}
	for _, table := range opts.Tables {
		known := false
		for _, t := range SweepTables {
			known = known || t == table
		}
		if !known {
			return nil, fmt.Errorf("scenario: unknown sweep table %q", table)
		}
	}
	for _, occ := range opts.Occupancies {
		if occ < 1 {
			return nil, fmt.Errorf("scenario: sweep occupancy %d is not positive", occ)
		}
	}
	var points []SweepPoint
	for _, backend := range opts.Backends {
		for _, occ := range opts.Occupancies {
			tgt, err := newSweepTarget(backend)
			if err != nil {
				return nil, err
			}
			if err := tgt.Load(prog); err != nil {
				return nil, fmt.Errorf("scenario: %s load: %w", backend, err)
			}
			// Each entry carries exactly one mask tuple, so diversity
			// beyond the occupancy cannot materialize: clamp per point
			// and record what actually ran.
			masks := opts.DistinctMasks
			if masks > occ {
				masks = occ
			}
			pt := SweepPoint{
				Backend: backend, Occupancy: occ,
				DistinctMasks: masks,
				Installed:     map[string]int{},
			}
			heapBefore := heapInUse()
			installStart := time.Now()
			installs := 0
			for _, table := range opts.Tables {
				for i := 0; i < occ; i++ {
					if err := tgt.InstallEntry(sweepEntry(table, i, masks)); err != nil {
						var capErr *dataplane.CapacityError
						var maskErr *dataplane.MaskSetError
						switch {
						case errors.As(err, &capErr):
							pt.CapacityNote = appendNote(pt.CapacityNote, fmt.Sprintf(
								"%s full after %d of %d entries (declared size %d)",
								table, i, occ, opts.TableSize))
						case errors.As(err, &maskErr):
							pt.CapacityNote = appendNote(pt.CapacityNote, fmt.Sprintf(
								"%s mask set full after %d of %d entries (limit %d distinct masks)",
								table, i, occ, maskErr.Limit))
						default:
							return nil, fmt.Errorf("scenario: %s %s entry %d: %w", backend, table, i, err)
						}
						break
					}
					pt.Installed[table]++
					installs++
				}
			}
			if installs > 0 {
				pt.InstallNs = float64(time.Since(installStart).Nanoseconds()) / float64(installs)
			}
			pt.MaskGroups = tgt.TernaryGroups("t_acl")
			if after := heapInUse(); after > heapBefore {
				pt.HeapBytes = after - heapBefore
			}
			pt.ModelBytes = tgt.Resources().ModelBytes()
			if mem := pt.ModelBytes; installs > 0 {
				if mem == 0 {
					mem = pt.HeapBytes // reference: no resource model
				}
				pt.BytesPerEntry = float64(mem) / float64(installs)
			}

			// Time the probe burst through the batched pipeline path.
			frames := make([][]byte, opts.BatchSize)
			for i := range frames {
				frames[i] = sweepFrame(nil, i, occ)
			}
			// The modelled latency is per-point state (constant across a
			// burst): fixed on the hardware pipelines, a function of
			// program length and installed mask sections on the offload.
			pt.ModelNs = float64(tgt.Process(frames[0], 0, false).Latency.Nanoseconds())
			tgt.ProcessBatch(frames, 0, false) // warm up
			puntBefore := tgt.Status()["smartnic.punt.total"]
			probeStart := time.Now()
			done := 0
			for done < opts.Probes {
				n := opts.BatchSize
				if opts.Probes-done < n {
					n = opts.Probes - done
				}
				tgt.ProcessBatch(frames[:n], 0, false)
				done += n
			}
			pt.LookupNs = float64(time.Since(probeStart).Nanoseconds()) / float64(done)
			if done > 0 {
				pt.PuntRate = float64(tgt.Status()["smartnic.punt.total"]-puntBefore) / float64(done)
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// appendNote joins erratum findings with "; ".
func appendNote(cur, add string) string {
	if cur == "" {
		return add
	}
	return cur + "; " + add
}

// RenderSweep formats sweep points as the occupancy-sweep figure table.
func RenderSweep(points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %8s %12s %12s %10s %10s %9s %6s  %s\n",
		"backend", "occupancy", "installed", "masks", "install/ns", "lookup/ns", "model/ns", "heap", "B/entry", "punt", "finding")
	for _, pt := range points {
		note := pt.CapacityNote
		if note == "" {
			note = "-"
		}
		fmt.Fprintf(&b, "%-12s %10d %10d %8d %12.0f %12.0f %10.0f %9.1fM %9.1f %6.2f  %s\n",
			pt.Backend, pt.Occupancy, pt.MaxInstalled(), pt.MaskGroups, pt.InstallNs, pt.LookupNs,
			pt.ModelNs, float64(pt.HeapBytes)/1e6, pt.BytesPerEntry, pt.PuntRate, note)
	}
	return b.String()
}

// MaxInstalled returns the largest per-table installed count of the
// point — the headline occupancy actually reached.
func (pt SweepPoint) MaxInstalled() int {
	n := 0
	for _, table := range SweepTables {
		if pt.Installed[table] > n {
			n = pt.Installed[table]
		}
	}
	return n
}

// SweepCSVHeader is the column row of SweepCSV output.
const SweepCSVHeader = "backend,occupancy,distinct_masks,mask_groups," +
	"installed_exact,installed_lpm,installed_acl,install_ns,lookup_ns,model_ns," +
	"heap_bytes,model_bytes,bytes_per_entry,punt_rate,finding"

// SweepCSV renders sweep points as machine-readable CSV (one row per
// point, findings quoted) for external plotting — the companion to the
// human-readable RenderSweep table.
func SweepCSV(points []SweepPoint) string {
	var b strings.Builder
	b.WriteString(SweepCSVHeader + "\n")
	for _, pt := range points {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d,%.0f,%.1f,%.0f,%d,%d,%.1f,%.3f,%q\n",
			pt.Backend, pt.Occupancy, pt.DistinctMasks, pt.MaskGroups,
			pt.Installed["t_exact"], pt.Installed["t_lpm"], pt.Installed["t_acl"],
			pt.InstallNs, pt.LookupNs, pt.ModelNs, pt.HeapBytes, pt.ModelBytes,
			pt.BytesPerEntry, pt.PuntRate, pt.CapacityNote)
	}
	return b.String()
}
