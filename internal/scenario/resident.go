package scenario

import (
	"bytes"
	"time"

	"netdebug/internal/core"
	"netdebug/internal/dataplane"
	"netdebug/internal/device"
	"netdebug/internal/faultplan"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/session"
	"netdebug/internal/target"
	"netdebug/internal/tester"
)

// residentScenarios covers the resident-service use case: long-lived
// concurrent validation sessions over pooled devices, control-plane
// churn under traffic, faults injected on a schedule, and a recorded
// event stream that replays deterministically. NetDebug's session layer
// owns all four capabilities; verification is static and sees none of
// them; an external tester observes fault windows as loss but has no
// control plane, no session state, and no event stream.
func residentScenarios() []Scenario {
	return []Scenario{
		{
			Name:    "recorded fault/churn sessions replay byte-identically",
			UseCase: Resident,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					var buf bytes.Buffer
					m, err := session.NewManager(residentHostConfig(), 2, session.NewRecorder(&buf))
					if err != nil {
						return missed("manager: %v", err)
					}
					defer m.Close()
					if _, err := m.RunAll(residentBatch()); err != nil {
						return missed("session batch: %v", err)
					}
					if err := session.ReplayCheck(buf.Bytes()); err != nil {
						return missed("replay: %v", err)
					}
					return detected("recorded stream re-executed on fresh systems byte-identically")
				},
				ToolFormal: func() Outcome {
					return unsupported("an event stream is a runtime artifact; static analysis has nothing to replay")
				},
				ToolExternal: func() Outcome {
					return unsupported("the tester sees frames on ports, not sessions; there is no stream to record or replay")
				},
			},
		},
		{
			Name:    "table churn under live validation traffic",
			UseCase: Resident,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					m, err := session.NewManager(residentHostConfig(), 1, nil)
					if err != nil {
						return missed("manager: %v", err)
					}
					defer m.Close()
					res, err := m.Run(session.SessionSpec{
						Name:     "churn",
						Spec:     residentTestSpec(30),
						Rounds:   3,
						Churn:    &session.ChurnSpec{Table: "ipv4_lpm", Installs: 5, Deletes: 2},
						SLOBound: time.Millisecond,
					})
					if err != nil {
						return missed("session: %v", err)
					}
					if !res.Pass {
						return missed("validation failed under churn")
					}
					live := 0
					for _, rec := range res.Records {
						if rec.Type == "churn" {
							live = rec.Churn.Live
						}
					}
					if live == 0 {
						return missed("churn driver installed nothing")
					}
					return detected("every round validated while installing/deleting entries (%d live at end)", live)
				},
				ToolFormal: func() Outcome {
					return unsupported("installed entries are runtime state; churn is invisible to program verification")
				},
				ToolExternal: func() Outcome {
					return unsupported("the tester has no control-plane access to churn tables")
				},
			},
		},
		{
			Name:    "scheduled fault window: degradation and recovery",
			UseCase: Resident,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					m, err := session.NewManager(residentHostConfig(), 1, nil)
					if err != nil {
						return missed("manager: %v", err)
					}
					defer m.Close()
					res, err := m.Run(session.SessionSpec{
						Name:   "fault-window",
						Spec:   residentTestSpec(10),
						Rounds: 3,
						Plan: faultplan.Plan{Events: []faultplan.Event{
							{At: 0, Kind: faultplan.PortDown, Port: 0},
							{At: 15 * time.Microsecond, Kind: faultplan.ClearFaults},
						}},
						Probe: &session.ProbeSpec{Port: 0, Frame: goodFrame(), Count: 5},
					})
					if err != nil {
						return missed("session: %v", err)
					}
					var degraded, recovered, validatedThrough bool
					for _, rec := range res.Records {
						switch rec.Type {
						case "probe":
							if rec.Probe.RxLost == 5 {
								degraded = true
							} else if degraded && rec.Probe.RxLost == 0 {
								recovered = true
							}
						case "report":
							validatedThrough = rec.Report != nil && rec.Report.Pass
						}
					}
					if degraded && recovered && validatedThrough {
						return detected("probes lost in the fault window, restored after the scheduled clear; internal validation ran throughout")
					}
					return missed("window not observed: degraded=%v recovered=%v validated=%v", degraded, recovered, validatedThrough)
				},
				ToolFormal: func() Outcome {
					return unsupported("scheduled hardware faults are invisible to program verification")
				},
				ToolExternal: func() Outcome {
					// The tester does see the fault window — as loss — but
					// cannot keep validating through it: a downed ingress
					// blocks its only injection path.
					dev := routerDevice(p4test.Router, residentTarget())
					dev.InjectFault(device.Fault{Kind: device.FaultPortDown, Port: 0})
					tst := tester.New(dev)
					rep, err := tst.Run([]tester.Stream{{
						Name: "probe", Frame: goodFrame(), Count: 10,
						TxPort: 0, RxPort: 1, SeqLoc: seqLocForUDPPayload(),
						ExpectLoss: true,
					}})
					if err != nil {
						return missed("tester: %v", err)
					}
					if rep.Pass && rep.Received == 0 {
						return detected("fault window visible as 100%% loss, though validation halts with it")
					}
					return missed("loss not observed: %+v", rep)
				},
			},
		},
	}
}

func residentTarget() target.Target { return target.NewReference() }

// residentTestSpec validates that goodFrame()-shaped traffic egresses
// port 1 via the baseline 10/8 route.
func residentTestSpec(count int) core.TestSpec {
	return core.TestSpec{
		Name: "resident-fwd",
		Gen: core.GenSpec{Streams: []core.StreamSpec{{
			Name: "probe", Template: goodFrame(), Count: count, RatePPS: 1e6,
		}}},
		Check: core.CheckSpec{Rules: []core.Rule{{
			Name: "to-port-1", Stream: "probe", ExpectPort: 1,
		}}},
	}
}

// residentBatch is a small mixed batch: churn sessions interleaved with
// fault-plan sessions, enough to exercise canonical stream ordering.
func residentBatch() []session.SessionSpec {
	churn := session.SessionSpec{
		Name:     "churny",
		Spec:     residentTestSpec(20),
		Rounds:   2,
		Churn:    &session.ChurnSpec{Table: "ipv4_lpm", Installs: 4, Deletes: 2},
		SLOBound: time.Millisecond,
	}
	faulty := session.SessionSpec{
		Name:   "faulty",
		Spec:   residentTestSpec(20),
		Rounds: 2,
		Plan: faultplan.Plan{Events: []faultplan.Event{
			{At: 0, Kind: faultplan.InstallFlap, Count: 1},
			{At: 10 * time.Microsecond, Kind: faultplan.MapFull, Table: "ipv4_lpm"},
		}},
		Churn: &session.ChurnSpec{Table: "ipv4_lpm", Installs: 2, Deletes: 1},
		Probe: &session.ProbeSpec{Port: 0, Frame: goodFrame(), Count: 4},
	}
	return []session.SessionSpec{churn, faulty, churn, faulty}
}

// residentHostConfig pools reference-target routers with the 10/8 route
// installed and a bounded-retry control channel.
func residentHostConfig() session.HostConfig {
	return session.HostConfig{
		Source:      p4test.Router,
		Target:      "reference",
		Baseline:    []dataplane.Entry{routeEntry(1)},
		CallTimeout: time.Second,
		Retry:       session.RetrySpec{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: 4 * time.Microsecond},
	}
}
