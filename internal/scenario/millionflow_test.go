package scenario

import (
	"strings"
	"testing"
)

// TestMillionFlowSweepSmall runs a scaled-down sweep and checks the
// measurements are populated and occupancy is fully installed on the
// reference backend.
func TestMillionFlowSweepSmall(t *testing.T) {
	points, err := MillionFlowSweep(SweepOptions{
		Backends:    []string{"reference"},
		Occupancies: []int{100, 1000},
		TableSize:   1 << 12,
		Probes:      512,
		BatchSize:   128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	for _, pt := range points {
		if pt.CapacityNote != "" {
			t.Errorf("reference@%d: unexpected capacity note %q", pt.Occupancy, pt.CapacityNote)
		}
		for _, table := range SweepTables {
			if pt.Installed[table] != pt.Occupancy {
				t.Errorf("reference@%d: %s installed %d", pt.Occupancy, table, pt.Installed[table])
			}
		}
		if pt.LookupNs <= 0 || pt.InstallNs <= 0 {
			t.Errorf("reference@%d: unmeasured point %+v", pt.Occupancy, pt)
		}
	}
	if out := RenderSweep(points); !strings.Contains(out, "reference") {
		t.Errorf("render missing backend column:\n%s", out)
	}
}

// TestMillionFlowSweepSDNetCapacityTrips scales the declared table size
// down so the SDNet usable-capacity erratum (~90% of declared) trips at
// the top of the sweep, exactly as it does at 10^6 entries against the
// 2^20 declared size in the full run.
func TestMillionFlowSweepSDNetCapacityTrips(t *testing.T) {
	points, err := MillionFlowSweep(SweepOptions{
		Backends:    []string{"sdnet"},
		Occupancies: []int{100, 1000},
		TableSize:   1000, // usable capacity 900 under DefaultErrata
		Probes:      256,
		BatchSize:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	low, high := points[0], points[1]
	if low.CapacityNote != "" {
		t.Errorf("sdnet@100: capacity tripped early: %q", low.CapacityNote)
	}
	if high.CapacityNote == "" {
		t.Fatal("sdnet@1000: usable-capacity erratum did not trip")
	}
	for _, table := range SweepTables {
		if high.Installed[table] != 900 {
			t.Errorf("sdnet@1000: %s installed %d, want 900 (90%% of declared 1000)",
				table, high.Installed[table])
		}
	}
	// The sweep keeps measuring at the clipped occupancy.
	if high.LookupNs <= 0 {
		t.Error("sdnet@1000: no lookup measurement after capacity trip")
	}
}

// TestMillionFlowSweepMaskDiversity drives the distinct-mask-count
// axis: with the default template pool the tuple-space index holds a
// handful of groups regardless of occupancy; with mask diversity equal
// to the entry count every entry is its own group and the lookup
// degrades toward the linear scan.
func TestMillionFlowSweepMaskDiversity(t *testing.T) {
	run := func(masks int) SweepPoint {
		points, err := MillionFlowSweep(SweepOptions{
			Backends:      []string{"reference"},
			Occupancies:   []int{2000},
			TableSize:     1 << 12,
			Probes:        512,
			BatchSize:     128,
			DistinctMasks: masks,
		})
		if err != nil {
			t.Fatal(err)
		}
		return points[0]
	}
	few := run(0) // default template pool
	if few.MaskGroups != len(aclMaskTemplates) {
		t.Errorf("default sweep: %d mask groups, want %d", few.MaskGroups, len(aclMaskTemplates))
	}
	diverse := run(2000)
	if diverse.DistinctMasks != 2000 || diverse.MaskGroups != 2000 {
		t.Errorf("diverse sweep: masks=%d groups=%d, want 2000 distinct groups",
			diverse.DistinctMasks, diverse.MaskGroups)
	}
	// 2000 tuple probes per lookup vs 8: the degradation must be
	// measurable, not just noted.
	if diverse.LookupNs <= few.LookupNs {
		t.Errorf("mask diversity did not degrade lookup: %0.f ns (2000 masks) vs %.0f ns (8 masks)",
			diverse.LookupNs, few.LookupNs)
	}
	if out := RenderSweep([]SweepPoint{few, diverse}); !strings.Contains(out, "masks") {
		t.Errorf("render missing mask-group column:\n%s", out)
	}
}

// TestMillionFlowSweepTofinoPlacementTrips checks the third backend
// column: against the default 2^20 declared size, the Tofino placement
// model grants the ternary table 144 row-groups of TCAM (73728
// entries), so an 80k occupancy trips its per-stage placement limit at
// an occupancy where SDNet's usable-capacity erratum (943718 usable)
// installs everything.
func TestMillionFlowSweepTofinoPlacementTrips(t *testing.T) {
	points, err := MillionFlowSweep(SweepOptions{
		Backends:    []string{"tofino", "sdnet"},
		Occupancies: []int{512, 80000},
		Probes:      256,
		BatchSize:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	tofinoLow, tofinoHigh, sdnetHigh := points[0], points[1], points[3]
	if tofinoLow.CapacityNote != "" {
		t.Errorf("tofino@512: capacity tripped early: %q", tofinoLow.CapacityNote)
	}
	if tofinoHigh.CapacityNote == "" {
		t.Fatal("tofino@80000: placement limit did not trip")
	}
	if got := tofinoHigh.Installed["t_acl"]; got != 73728 {
		t.Errorf("tofino@80000: t_acl installed %d, want the 73728-entry TCAM grant", got)
	}
	// The SRAM tables' water-filled share (491520) is far above this
	// occupancy: only the TCAM table clips.
	for _, table := range []string{"t_exact", "t_lpm"} {
		if tofinoHigh.Installed[table] != 80000 {
			t.Errorf("tofino@80000: %s installed %d, want 80000", table, tofinoHigh.Installed[table])
		}
	}
	if sdnetHigh.CapacityNote != "" {
		t.Errorf("sdnet@80000: tripped below its 943718-entry usable capacity: %q", sdnetHigh.CapacityNote)
	}
	if tofinoHigh.LookupNs <= 0 {
		t.Error("tofino@80000: no lookup measurement after the placement trip")
	}
}

// TestMillionFlowSweepDistinctMaskValidation: diversity beyond the
// entry count is clamped per point (each entry carries one tuple), and
// negative values are rejected outright.
func TestMillionFlowSweepDistinctMaskValidation(t *testing.T) {
	if _, err := MillionFlowSweep(SweepOptions{DistinctMasks: -1}); err == nil {
		t.Fatal("negative mask diversity must be rejected")
	}
	points, err := MillionFlowSweep(SweepOptions{
		Backends:      []string{"reference"},
		Occupancies:   []int{500},
		TableSize:     1 << 12,
		Probes:        256,
		BatchSize:     64,
		DistinctMasks: 5000, // > occupancy: clamps to 500
	})
	if err != nil {
		t.Fatal(err)
	}
	pt := points[0]
	if pt.DistinctMasks != 500 || pt.MaskGroups != 500 {
		t.Fatalf("masks=%d groups=%d, want both clamped to the 500-entry occupancy",
			pt.DistinctMasks, pt.MaskGroups)
	}
}

// TestMillionFlowSweepEBPFMaskSetTrips: the fourth backend column has
// no TCAM at all — its ternary emulation is a bounded mask-set scan,
// so driving mask diversity past the verifier budget (1024 sections)
// trips mid-population and the sweep records the finding, exactly as
// the capacity errata do on the other backends.
func TestMillionFlowSweepEBPFMaskSetTrips(t *testing.T) {
	points, err := MillionFlowSweep(SweepOptions{
		Backends:      []string{"ebpf"},
		Occupancies:   []int{2000},
		TableSize:     1 << 12,
		Probes:        256,
		BatchSize:     64,
		DistinctMasks: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt := points[0]
	if pt.Installed["t_acl"] != 1024 || pt.MaskGroups != 1024 {
		t.Fatalf("t_acl installed %d with %d groups, want the 1024-mask verifier budget",
			pt.Installed["t_acl"], pt.MaskGroups)
	}
	if !strings.Contains(pt.CapacityNote, "mask set full") {
		t.Fatalf("finding should record the mask-set trip: %q", pt.CapacityNote)
	}
	// The exact and LPM maps are untouched by the ternary bound.
	if pt.Installed["t_exact"] != 2000 || pt.Installed["t_lpm"] != 2000 {
		t.Fatalf("hash/lpm maps clipped unexpectedly: %+v", pt.Installed)
	}
}

// TestMillionFlowSweepModelLatencyContrast is the cross-target
// measurement the mask-diversity axis exists for: raising distinct
// masks 8 -> 512 leaves the Tofino TCAM's modelled latency flat (every
// mask is compared in parallel in silicon) while the eBPF mask-set
// scan pays one section per mask — exactly 24 insns x 0.75 ns each.
func TestMillionFlowSweepModelLatencyContrast(t *testing.T) {
	run := func(backend string, masks int) SweepPoint {
		points, err := MillionFlowSweep(SweepOptions{
			Backends:      []string{backend},
			Occupancies:   []int{1000},
			TableSize:     1 << 12,
			Probes:        256,
			BatchSize:     64,
			DistinctMasks: masks,
		})
		if err != nil {
			t.Fatal(err)
		}
		return points[0]
	}
	tfFew, tfMany := run("tofino", 8), run("tofino", 512)
	if tfFew.ModelNs != 390 || tfMany.ModelNs != 390 {
		t.Fatalf("tofino modelled latency must stay flat at 390ns: %v -> %v",
			tfFew.ModelNs, tfMany.ModelNs)
	}
	ebFew, ebMany := run("ebpf", 8), run("ebpf", 512)
	wantDelta := float64(512-8) * 24 * 0.75
	if got := ebMany.ModelNs - ebFew.ModelNs; got != wantDelta {
		t.Fatalf("ebpf modelled latency grew %vns over 504 masks, want %vns (one scan section per mask)",
			got, wantDelta)
	}
	if ebFew.ModelNs <= 0 {
		t.Fatalf("ebpf base latency missing: %+v", ebFew)
	}
}

// TestMillionFlowSweepBytesPerEntry checks the memory-per-entry column
// across backend classes: backends with a resource model report their
// modelled table memory (memlock map grants on ebpf, placed SRAM/TCAM
// blocks on tofino) over installed entries, and the reference — which
// models nothing — falls back to measured heap so the column is never
// empty. Both forms must survive into the CSV.
func TestMillionFlowSweepBytesPerEntry(t *testing.T) {
	points, err := MillionFlowSweep(SweepOptions{
		Backends:    []string{"reference", "tofino", "ebpf"},
		Occupancies: []int{2000},
		TableSize:   1 << 12,
		Probes:      256,
		BatchSize:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, tf, eb := points[0], points[1], points[2]
	if ref.ModelBytes != 0 {
		t.Errorf("reference models %d bytes, want 0 (no resource model)", ref.ModelBytes)
	}
	if ref.BytesPerEntry <= 0 {
		t.Errorf("reference bytes/entry %.1f, want heap fallback > 0", ref.BytesPerEntry)
	}
	for _, pt := range []SweepPoint{tf, eb} {
		if pt.ModelBytes == 0 {
			t.Errorf("%s models 0 bytes, want its granted table memory", pt.Backend)
		}
		installs := 0
		for _, table := range SweepTables {
			installs += pt.Installed[table]
		}
		want := float64(pt.ModelBytes) / float64(installs)
		if pt.BytesPerEntry != want {
			t.Errorf("%s bytes/entry %.1f, want ModelBytes/installs = %.1f",
				pt.Backend, pt.BytesPerEntry, want)
		}
	}
	out := SweepCSV(points)
	if !strings.Contains(SweepCSVHeader, "model_bytes,bytes_per_entry") {
		t.Errorf("CSV header missing memory columns: %s", SweepCSVHeader)
	}
	wantCols := strings.Count(SweepCSVHeader, ",") + 1
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if got := strings.Count(line, ",") + 1; got != wantCols {
			t.Errorf("CSV row has %d columns, want %d: %s", got, wantCols, line)
		}
	}
	if !strings.Contains(RenderSweep(points), "B/entry") {
		t.Errorf("render missing bytes-per-entry column")
	}
}

// TestMillionFlowSweepLPMOnlyTier exercises the table-subset knob the
// deep-occupancy tier uses: populating only t_lpm isolates the multibit
// trie (the full 10^7 run is `figures -exp T5 -sweep-max 10000000
// -sweep-tables t_lpm -sweep-size 16777216`), and unknown table names
// are rejected.
func TestMillionFlowSweepLPMOnlyTier(t *testing.T) {
	if _, err := MillionFlowSweep(SweepOptions{Tables: []string{"t_bogus"}}); err == nil {
		t.Fatal("unknown sweep table must be rejected")
	}
	points, err := MillionFlowSweep(SweepOptions{
		Backends:    []string{"reference"},
		Occupancies: []int{50000},
		TableSize:   1 << 16,
		Probes:      256,
		BatchSize:   64,
		Tables:      []string{"t_lpm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pt := points[0]
	if pt.Installed["t_lpm"] != 50000 {
		t.Fatalf("t_lpm installed %d, want the full 50000", pt.Installed["t_lpm"])
	}
	if pt.Installed["t_exact"] != 0 || pt.Installed["t_acl"] != 0 || pt.MaskGroups != 0 {
		t.Fatalf("subset sweep touched unselected tables: %+v groups=%d", pt.Installed, pt.MaskGroups)
	}
	if pt.BytesPerEntry <= 0 {
		t.Fatalf("LPM-only tier must still price memory per entry: %+v", pt)
	}
	if pt.LookupNs <= 0 || pt.InstallNs <= 0 {
		t.Fatalf("unmeasured point %+v", pt)
	}
}

// BenchmarkOccupancySweepPoint measures one mid-scale sweep point end to
// end (population + probe burst) — the scenario-level cost of the
// million-flow workload.
func BenchmarkOccupancySweepPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := MillionFlowSweep(SweepOptions{
			Backends:    []string{"reference"},
			Occupancies: []int{10000},
			TableSize:   1 << 16,
			Probes:      1024,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
