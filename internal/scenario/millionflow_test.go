package scenario

import (
	"strings"
	"testing"
)

// TestMillionFlowSweepSmall runs a scaled-down sweep and checks the
// measurements are populated and occupancy is fully installed on the
// reference backend.
func TestMillionFlowSweepSmall(t *testing.T) {
	points, err := MillionFlowSweep(SweepOptions{
		Backends:    []string{"reference"},
		Occupancies: []int{100, 1000},
		TableSize:   1 << 12,
		Probes:      512,
		BatchSize:   128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	for _, pt := range points {
		if pt.CapacityNote != "" {
			t.Errorf("reference@%d: unexpected capacity note %q", pt.Occupancy, pt.CapacityNote)
		}
		for _, table := range SweepTables {
			if pt.Installed[table] != pt.Occupancy {
				t.Errorf("reference@%d: %s installed %d", pt.Occupancy, table, pt.Installed[table])
			}
		}
		if pt.LookupNs <= 0 || pt.InstallNs <= 0 {
			t.Errorf("reference@%d: unmeasured point %+v", pt.Occupancy, pt)
		}
	}
	if out := RenderSweep(points); !strings.Contains(out, "reference") {
		t.Errorf("render missing backend column:\n%s", out)
	}
}

// TestMillionFlowSweepSDNetCapacityTrips scales the declared table size
// down so the SDNet usable-capacity erratum (~90% of declared) trips at
// the top of the sweep, exactly as it does at 10^6 entries against the
// 2^20 declared size in the full run.
func TestMillionFlowSweepSDNetCapacityTrips(t *testing.T) {
	points, err := MillionFlowSweep(SweepOptions{
		Backends:    []string{"sdnet"},
		Occupancies: []int{100, 1000},
		TableSize:   1000, // usable capacity 900 under DefaultErrata
		Probes:      256,
		BatchSize:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	low, high := points[0], points[1]
	if low.CapacityNote != "" {
		t.Errorf("sdnet@100: capacity tripped early: %q", low.CapacityNote)
	}
	if high.CapacityNote == "" {
		t.Fatal("sdnet@1000: usable-capacity erratum did not trip")
	}
	for _, table := range SweepTables {
		if high.Installed[table] != 900 {
			t.Errorf("sdnet@1000: %s installed %d, want 900 (90%% of declared 1000)",
				table, high.Installed[table])
		}
	}
	// The sweep keeps measuring at the clipped occupancy.
	if high.LookupNs <= 0 {
		t.Error("sdnet@1000: no lookup measurement after capacity trip")
	}
}

// TestMillionFlowSweepMaskDiversity drives the distinct-mask-count
// axis: with the default template pool the tuple-space index holds a
// handful of groups regardless of occupancy; with mask diversity equal
// to the entry count every entry is its own group and the lookup
// degrades toward the linear scan.
func TestMillionFlowSweepMaskDiversity(t *testing.T) {
	run := func(masks int) SweepPoint {
		points, err := MillionFlowSweep(SweepOptions{
			Backends:      []string{"reference"},
			Occupancies:   []int{2000},
			TableSize:     1 << 12,
			Probes:        512,
			BatchSize:     128,
			DistinctMasks: masks,
		})
		if err != nil {
			t.Fatal(err)
		}
		return points[0]
	}
	few := run(0) // default template pool
	if few.MaskGroups != len(aclMaskTemplates) {
		t.Errorf("default sweep: %d mask groups, want %d", few.MaskGroups, len(aclMaskTemplates))
	}
	diverse := run(2000)
	if diverse.DistinctMasks != 2000 || diverse.MaskGroups != 2000 {
		t.Errorf("diverse sweep: masks=%d groups=%d, want 2000 distinct groups",
			diverse.DistinctMasks, diverse.MaskGroups)
	}
	// 2000 tuple probes per lookup vs 8: the degradation must be
	// measurable, not just noted.
	if diverse.LookupNs <= few.LookupNs {
		t.Errorf("mask diversity did not degrade lookup: %0.f ns (2000 masks) vs %.0f ns (8 masks)",
			diverse.LookupNs, few.LookupNs)
	}
	if out := RenderSweep([]SweepPoint{few, diverse}); !strings.Contains(out, "masks") {
		t.Errorf("render missing mask-group column:\n%s", out)
	}
}

// TestMillionFlowSweepTofinoPlacementTrips checks the third backend
// column: against the default 2^20 declared size, the Tofino placement
// model grants the ternary table 144 row-groups of TCAM (73728
// entries), so an 80k occupancy trips its per-stage placement limit at
// an occupancy where SDNet's usable-capacity erratum (943718 usable)
// installs everything.
func TestMillionFlowSweepTofinoPlacementTrips(t *testing.T) {
	points, err := MillionFlowSweep(SweepOptions{
		Backends:    []string{"tofino", "sdnet"},
		Occupancies: []int{512, 80000},
		Probes:      256,
		BatchSize:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	tofinoLow, tofinoHigh, sdnetHigh := points[0], points[1], points[3]
	if tofinoLow.CapacityNote != "" {
		t.Errorf("tofino@512: capacity tripped early: %q", tofinoLow.CapacityNote)
	}
	if tofinoHigh.CapacityNote == "" {
		t.Fatal("tofino@80000: placement limit did not trip")
	}
	if got := tofinoHigh.Installed["t_acl"]; got != 73728 {
		t.Errorf("tofino@80000: t_acl installed %d, want the 73728-entry TCAM grant", got)
	}
	// The SRAM tables' water-filled share (491520) is far above this
	// occupancy: only the TCAM table clips.
	for _, table := range []string{"t_exact", "t_lpm"} {
		if tofinoHigh.Installed[table] != 80000 {
			t.Errorf("tofino@80000: %s installed %d, want 80000", table, tofinoHigh.Installed[table])
		}
	}
	if sdnetHigh.CapacityNote != "" {
		t.Errorf("sdnet@80000: tripped below its 943718-entry usable capacity: %q", sdnetHigh.CapacityNote)
	}
	if tofinoHigh.LookupNs <= 0 {
		t.Error("tofino@80000: no lookup measurement after the placement trip")
	}
}

// BenchmarkOccupancySweepPoint measures one mid-scale sweep point end to
// end (population + probe burst) — the scenario-level cost of the
// million-flow workload.
func BenchmarkOccupancySweepPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := MillionFlowSweep(SweepOptions{
			Backends:    []string{"reference"},
			Occupancies: []int{10000},
			TableSize:   1 << 16,
			Probes:      1024,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
