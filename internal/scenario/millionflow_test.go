package scenario

import (
	"strings"
	"testing"
)

// TestMillionFlowSweepSmall runs a scaled-down sweep and checks the
// measurements are populated and occupancy is fully installed on the
// reference backend.
func TestMillionFlowSweepSmall(t *testing.T) {
	points, err := MillionFlowSweep(SweepOptions{
		Backends:    []string{"reference"},
		Occupancies: []int{100, 1000},
		TableSize:   1 << 12,
		Probes:      512,
		BatchSize:   128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	for _, pt := range points {
		if pt.CapacityNote != "" {
			t.Errorf("reference@%d: unexpected capacity note %q", pt.Occupancy, pt.CapacityNote)
		}
		for _, table := range SweepTables {
			if pt.Installed[table] != pt.Occupancy {
				t.Errorf("reference@%d: %s installed %d", pt.Occupancy, table, pt.Installed[table])
			}
		}
		if pt.LookupNs <= 0 || pt.InstallNs <= 0 {
			t.Errorf("reference@%d: unmeasured point %+v", pt.Occupancy, pt)
		}
	}
	if out := RenderSweep(points); !strings.Contains(out, "reference") {
		t.Errorf("render missing backend column:\n%s", out)
	}
}

// TestMillionFlowSweepSDNetCapacityTrips scales the declared table size
// down so the SDNet usable-capacity erratum (~90% of declared) trips at
// the top of the sweep, exactly as it does at 10^6 entries against the
// 2^20 declared size in the full run.
func TestMillionFlowSweepSDNetCapacityTrips(t *testing.T) {
	points, err := MillionFlowSweep(SweepOptions{
		Backends:    []string{"sdnet"},
		Occupancies: []int{100, 1000},
		TableSize:   1000, // usable capacity 900 under DefaultErrata
		Probes:      256,
		BatchSize:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	low, high := points[0], points[1]
	if low.CapacityNote != "" {
		t.Errorf("sdnet@100: capacity tripped early: %q", low.CapacityNote)
	}
	if high.CapacityNote == "" {
		t.Fatal("sdnet@1000: usable-capacity erratum did not trip")
	}
	for _, table := range SweepTables {
		if high.Installed[table] != 900 {
			t.Errorf("sdnet@1000: %s installed %d, want 900 (90%% of declared 1000)",
				table, high.Installed[table])
		}
	}
	// The sweep keeps measuring at the clipped occupancy.
	if high.LookupNs <= 0 {
		t.Error("sdnet@1000: no lookup measurement after capacity trip")
	}
}

// BenchmarkOccupancySweepPoint measures one mid-scale sweep point end to
// end (population + probe burst) — the scenario-level cost of the
// million-flow workload.
func BenchmarkOccupancySweepPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := MillionFlowSweep(SweepOptions{
			Backends:    []string{"reference"},
			Occupancies: []int{10000},
			TableSize:   1 << 16,
			Probes:      1024,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
