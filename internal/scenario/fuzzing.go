package scenario

import (
	"bytes"

	"netdebug/internal/dataplane"
	"netdebug/internal/fuzz"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/verify"
)

// fuzzingScenarios covers the differential-fuzzing use case: instead of
// replaying hand-written probes (the comparison row), the tool must
// *discover* the inputs that split the backends, starting from nothing
// but the program and a seed corpus. NetDebug's fuzz fleet owns the
// loop — tap/table coverage guides mutation, the verifier's path models
// become probes, and a majority vote across four lockstep backends
// names the culprit. Formal verification sees only the shared program,
// which is correct, so every backend erratum is invisible to it. An
// external tester can vote on captures but has no coverage signal, so
// it finds only divergences with large input surfaces.
func fuzzingScenarios() []Scenario {
	return []Scenario{
		{
			Name:    "coverage-guided fleet rediscovers the backend errata",
			UseCase: Fuzzing,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					router, err := fuzzReport(p4test.Router, fuzz.Options{
						Baseline: routerFuzzBaseline(),
						Budget:   768,
						Shards:   2,
						Seed:     1,
					})
					if err != nil {
						return missed("router fleet: %v", err)
					}
					acl, err := fuzzReport(p4test.Firewall, fuzz.Options{
						Baseline: aclTieEntries(),
						Budget:   256,
						Seed:     1,
					})
					if err != nil {
						return missed("acl fleet: %v", err)
					}
					if router.Divergences["sdnet"] == 0 || router.Divergences["ebpf"] == 0 {
						return missed("router errata not localized: %v", router.Divergences)
					}
					if acl.Divergences["tofino"] == 0 {
						return missed("tofino tie-break not localized: %v", acl.Divergences)
					}
					if router.Divergences["reference"] != 0 || acl.Divergences["reference"] != 0 {
						return missed("reference backend voted divergent")
					}
					return detected("fuzz-found probes localize sdnet (%d), ebpf (%d) and tofino (%d) by majority vote",
						router.Divergences["sdnet"], router.Divergences["ebpf"], acl.Divergences["tofino"])
				},
				ToolFormal: func() Outcome {
					// The program the backends share verifies clean; the
					// divergences live below the program model.
					prog := mustProg(p4test.Router)
					for _, prop := range []verify.Property{verify.PropRejectedDropped, verify.PropForwardedHasEgress} {
						res, err := verify.Check(prog, prop, verify.Options{})
						if err != nil {
							return missed("verify error: %v", err)
						}
						if !res.Holds {
							return missed("shared program unexpectedly fails %s", prop.Name)
						}
					}
					return missed("shared program verifies clean; backend errata are invisible to program analysis")
				},
				ToolExternal: func() Outcome {
					// Blind differential replay: no coverage feedback, but the
					// router errata have large input surfaces, so fixed probes
					// plus a capture vote across four devices still split them.
					devs := fourWayRouterDevices()
					if odd := OddOneOutExternal(devs, badVersionFrame(), 1); len(odd) != 1 || odd[0] != "sdnet" {
						return missed("capture vote names %v, want [sdnet]", odd)
					}
					devs = fourWayRouterDevices()
					if odd := OddOneOutExternal(devs, offSubnetFrame(), 2); len(odd) != 1 || odd[0] != "ebpf" {
						return missed("capture vote names %v, want [ebpf]", odd)
					}
					return detected("coverage-blind capture votes still split sdnet and ebpf on wide-surface errata")
				},
			},
		},
		{
			Name:    "solver-synthesized probes reach branches mutation misses",
			UseCase: Fuzzing,
			Run: map[string]func() Outcome{
				ToolNetDebug: func() Outcome {
					opts := fuzz.Options{
						Baseline:  routerFuzzBaseline()[:1],
						Budget:    512,
						RoundSize: 128,
						Seed:      3,
					}
					rep, err := fuzzReport(p4test.RouterMagicDrop, opts)
					if err != nil {
						return missed("fleet: %v", err)
					}
					if rep.SolverProbes == 0 || rep.SolverDiscovered == 0 {
						return missed("solver probes discovered nothing: %+v", rep)
					}
					ctlOpts := opts
					ctlOpts.DisableSolver = true
					ctl, err := fuzzReport(p4test.RouterMagicDrop, ctlOpts)
					if err != nil {
						return missed("control fleet: %v", err)
					}
					magic := []byte{0xde, 0xad, 0xbe, 0xef}
					if !corpusCarries(rep.Corpus, magic) || corpusCarries(ctl.Corpus, magic) {
						return missed("magic srcAddr reached by mutation alone, or not reached at all")
					}
					return detected("path model for the 32-bit guard became a probe (%d solver-first signatures); a solver-less control at the same budget never got there",
						rep.SolverDiscovered)
				},
				ToolFormal: func() Outcome {
					return unsupported("the solver finds the path, but without concrete backends there is nothing to differ")
				},
				ToolExternal: func() Outcome {
					return missed("blind generation has a 2^-32 chance per frame of crossing the guard; no budget reaches it")
				},
			},
		},
	}
}

// fuzzReport runs one fuzzing fleet to completion.
func fuzzReport(src string, opts fuzz.Options) (*fuzz.Report, error) {
	f, err := fuzz.New(src, opts)
	if err != nil {
		return nil, err
	}
	return f.Run()
}

// corpusCarries reports whether any retained corpus frame carries the
// byte pattern at the IPv4 srcAddr offset.
func corpusCarries(corpus [][]byte, pattern []byte) bool {
	for _, frame := range corpus {
		if len(frame) >= 30 && bytes.Equal(frame[26:30], pattern) {
			return true
		}
	}
	return false
}

// routerFuzzBaseline is the router fixture the fuzz fleet starts from:
// the 10/8 route plus the /0 default route, so both shipped router
// errata have a probe surface.
func routerFuzzBaseline() []dataplane.Entry {
	return []dataplane.Entry{routeEntry(1), defaultRouteEntry(2)}
}
