package scenario

import (
	"reflect"
	"testing"
)

// TestParallelMatrixMatchesSequential is the determinism contract of the
// worker-pool runner: the parallel suite must produce cell-for-cell and
// line-for-line the same matrix as the sequential one.
func TestParallelMatrixMatchesSequential(t *testing.T) {
	scenarios := All()
	seq := BuildMatrix(scenarios)
	par := BuildMatrixParallel(scenarios, 8)
	if !reflect.DeepEqual(seq.Cells, par.Cells) {
		t.Fatalf("cells diverge:\nseq: %v\npar: %v", seq.Cells, par.Cells)
	}
	if len(seq.Details) != len(par.Details) {
		t.Fatalf("detail counts: %d vs %d", len(seq.Details), len(par.Details))
	}
	for i := range seq.Details {
		if seq.Details[i] != par.Details[i] {
			t.Fatalf("detail %d diverges:\nseq: %s\npar: %s", i, seq.Details[i], par.Details[i])
		}
	}
}

func TestRunCellsOrdering(t *testing.T) {
	scenarios := All()
	cells := RunCells(scenarios, 4)
	if len(cells) != len(scenarios)*len(Tools) {
		t.Fatalf("cells = %d", len(cells))
	}
	for i, cell := range cells {
		wantScenario := scenarios[i/len(Tools)]
		wantTool := Tools[i%len(Tools)]
		if cell.Scenario != wantScenario.Name || cell.Tool != wantTool || cell.UseCase != wantScenario.UseCase {
			t.Fatalf("cell %d = %+v, want scenario %q tool %q", i, cell, wantScenario.Name, wantTool)
		}
	}
}

func TestRunCellsDefaultWorkers(t *testing.T) {
	// workers <= 0 must select the CPU-count default and still succeed.
	cells := RunCells(All()[:2], 0)
	for _, c := range cells {
		if c.Implemented && c.Outcome.Detail == "" {
			t.Fatalf("cell %+v ran without detail", c)
		}
	}
}
