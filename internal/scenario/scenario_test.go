package scenario

import (
	"strings"
	"testing"
)

// TestFigure2Matrix regenerates the paper's Figure 2 and asserts its
// shape: NetDebug is Full on every use case; software formal verification
// covers only (part of) functional testing and comparison; the external
// tester is partial where it lacks internal visibility and blind to
// resources and status.
func TestFigure2Matrix(t *testing.T) {
	m := BuildMatrix(All())

	for _, uc := range UseCases {
		if got := m.Cells[uc][ToolNetDebug]; got != Full {
			t.Errorf("NetDebug on %q = %v, want Full", uc, got)
		}
	}

	formalWant := map[UseCase]Cell{
		Functional:   Partial, // program bugs only
		Performance:  None,
		Compiler:     None, // the reject erratum is invisible
		Architecture: None,
		Resources:    None,
		Status:       None,
		Comparison:   Partial,
		Resident:     None, // sessions, churn, faults, replay: all runtime
		Fuzzing:      None, // the shared program verifies clean; backend errata are invisible
	}
	for uc, want := range formalWant {
		if got := m.Cells[uc][ToolFormal]; got != want {
			t.Errorf("formal verification on %q = %v, want %v", uc, got, want)
		}
	}

	externalWant := map[UseCase]Cell{
		Functional:   Partial,
		Performance:  Partial,
		Compiler:     Partial,
		Architecture: Partial,
		Resources:    None,
		Status:       None,
		Comparison:   Partial,
		Resident:     Partial, // sees fault windows as loss; no control plane or stream
		Fuzzing:      Partial, // capture votes split wide-surface errata; no coverage signal for narrow ones
	}
	for uc, want := range externalWant {
		if got := m.Cells[uc][ToolExternal]; got != want {
			t.Errorf("external tester on %q = %v, want %v", uc, got, want)
		}
	}
}

func TestMatrixRendering(t *testing.T) {
	m := BuildMatrix(All())
	out := m.Render()
	for _, want := range []string{"use case", "NetDebug", "functional testing", "comparison"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	details := m.SortedDetails()
	if len(details) < 20 {
		t.Fatalf("details = %d lines", len(details))
	}
	for i := 1; i < len(details); i++ {
		if details[i] < details[i-1] {
			t.Fatal("details not sorted")
		}
	}
}

func TestScenarioSuiteShape(t *testing.T) {
	scenarios := All()
	perUC := map[UseCase]int{}
	for _, sc := range scenarios {
		perUC[sc.UseCase]++
		if len(sc.Run) == 0 {
			t.Errorf("scenario %q has no tool runners", sc.Name)
		}
		if _, ok := sc.Run[ToolNetDebug]; !ok {
			t.Errorf("scenario %q lacks a NetDebug runner", sc.Name)
		}
	}
	for _, uc := range UseCases {
		if perUC[uc] == 0 {
			t.Errorf("use case %q has no scenarios", uc)
		}
	}
}

func TestCellString(t *testing.T) {
	if Full.String() != "Full" || Partial.String() != "Partial" || None.String() != "None" {
		t.Fatal("cell rendering broken")
	}
}

func BenchmarkFigure2Suite(b *testing.B) {
	scenarios := All()
	for i := 0; i < b.N; i++ {
		BuildMatrix(scenarios)
	}
}
