package bitfield

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTruncates(t *testing.T) {
	cases := []struct {
		v    uint64
		w    int
		want uint64
	}{
		{0xff, 8, 0xff},
		{0x1ff, 8, 0xff},
		{0xffff, 4, 0xf},
		{1, 1, 1},
		{2, 1, 0},
		{0xdeadbeef, 32, 0xdeadbeef},
		{^uint64(0), 64, ^uint64(0)},
		{12345, 0, 0},
	}
	for _, c := range cases {
		got := New(c.v, c.w)
		if got.Lo != c.want || got.Hi != 0 {
			t.Errorf("New(%#x,%d) = %v, want lo=%#x", c.v, c.w, got, c.want)
		}
	}
}

func TestNew128Truncates(t *testing.T) {
	v := New128(^uint64(0), ^uint64(0), 72)
	if v.Hi != 0xff || v.Lo != ^uint64(0) {
		t.Fatalf("New128 truncate to 72 bits: got hi=%#x lo=%#x", v.Hi, v.Lo)
	}
	v = New128(1, 0, 64)
	if v.Hi != 0 || v.Lo != 0 {
		t.Fatalf("New128 truncate to 64 bits should drop hi: %v", v)
	}
}

func TestWidthPanics(t *testing.T) {
	for _, w := range []int{-1, 129, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New with width %d did not panic", w)
				}
			}()
			New(0, w)
		}()
	}
}

func TestFromBytes(t *testing.T) {
	v := FromBytes([]byte{0x08, 0x00})
	if v.Lo != 0x0800 || v.W != 16 {
		t.Fatalf("FromBytes(0800) = %v", v)
	}
	v = FromBytes([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05})
	if v.W != 72 {
		t.Fatalf("width = %d, want 72", v.W)
	}
	if v.Hi != 0xde || v.Lo != 0xadbeef0102030405 {
		t.Fatalf("FromBytes 9 bytes = hi %#x lo %#x", v.Hi, v.Lo)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	bufs := [][]byte{
		{0x01},
		{0xab, 0xcd},
		{1, 2, 3, 4, 5, 6},
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6},
	}
	for _, b := range bufs {
		got := FromBytes(b).Bytes()
		if !bytes.Equal(got, b) {
			t.Errorf("Bytes(FromBytes(%x)) = %x", b, got)
		}
	}
}

func TestArithmeticModular(t *testing.T) {
	a := New(0xff, 8)
	b := New(1, 8)
	if got := a.Add(b); !got.IsZero() {
		t.Errorf("0xff+1 mod 2^8 = %v, want 0", got)
	}
	if got := New(0, 8).Sub(b); got.Lo != 0xff {
		t.Errorf("0-1 mod 2^8 = %v, want 0xff", got)
	}
	if got := New(16, 8).Mul(New(16, 8)); !got.IsZero() {
		t.Errorf("16*16 mod 2^8 = %v, want 0", got)
	}
	if got := New(200, 16).Mul(New(300, 16)); got.Lo != 60000 {
		t.Errorf("200*300 = %v, want 60000", got)
	}
}

func TestArithmetic128(t *testing.T) {
	// carry propagation across the 64-bit boundary
	a := New128(0, ^uint64(0), 128)
	one := New(1, 128)
	sum := a.Add(one)
	if sum.Hi != 1 || sum.Lo != 0 {
		t.Fatalf("carry failed: %v", sum)
	}
	diff := sum.Sub(one)
	if !diff.Equal(a) {
		t.Fatalf("borrow failed: %v", diff)
	}
}

func TestBitwise(t *testing.T) {
	a := New(0b1100, 4)
	b := New(0b1010, 4)
	if got := a.And(b); got.Lo != 0b1000 {
		t.Errorf("And = %v", got)
	}
	if got := a.Or(b); got.Lo != 0b1110 {
		t.Errorf("Or = %v", got)
	}
	if got := a.Xor(b); got.Lo != 0b0110 {
		t.Errorf("Xor = %v", got)
	}
	if got := a.Not(); got.Lo != 0b0011 {
		t.Errorf("Not = %v", got)
	}
}

func TestShifts(t *testing.T) {
	v := New(1, 128)
	v = v.Shl(100)
	if v.Bit(100) != 1 {
		t.Fatalf("Shl(100): bit 100 = 0, value %v", v)
	}
	v = v.Shr(100)
	if v.Lo != 1 || v.Hi != 0 {
		t.Fatalf("Shr(100) = %v, want 1", v)
	}
	if got := New(0b1011, 4).Shl(2); got.Lo != 0b1100 {
		t.Errorf("Shl truncation = %v, want 0b1100", got)
	}
	if got := New(8, 8).Shr(64); !got.IsZero() {
		t.Errorf("Shr(64) on 8-bit = %v", got)
	}
	if got := New(8, 8).Shl(200); !got.IsZero() {
		t.Errorf("Shl(200) = %v", got)
	}
}

func TestCmp(t *testing.T) {
	lo := New(5, 8)
	hi := New128(1, 0, 128)
	if lo.Cmp(hi) != -1 || hi.Cmp(lo) != 1 || lo.Cmp(lo) != 0 {
		t.Fatal("Cmp ordering wrong across 64-bit boundary")
	}
}

func TestMask(t *testing.T) {
	if m := Mask(9); m.Lo != 0x1ff {
		t.Errorf("Mask(9) = %v", m)
	}
	if m := Mask(128); m.Hi != ^uint64(0) || m.Lo != ^uint64(0) {
		t.Errorf("Mask(128) = %v", m)
	}
	if m := Mask(0); !m.IsZero() {
		t.Errorf("Mask(0) = %v", m)
	}
}

func TestMatchesMasked(t *testing.T) {
	v := New(0x0a0a0a0a, 32)
	want := New(0x0a0a0000, 32)
	mask := New(0xffff0000, 32)
	if !v.MatchesMasked(want, mask) {
		t.Error("ternary match should succeed")
	}
	if v.MatchesMasked(New(0x0b0a0000, 32), mask) {
		t.Error("ternary match should fail")
	}
}

func TestExtractKnownLayout(t *testing.T) {
	// First byte of an IPv4 header: version=4, ihl=5 -> 0x45.
	buf := []byte{0x45, 0x00, 0x00, 0x54}
	version := MustExtract(buf, 0, 4)
	ihl := MustExtract(buf, 4, 4)
	total := MustExtract(buf, 16, 16)
	if version.Lo != 4 {
		t.Errorf("version = %v", version)
	}
	if ihl.Lo != 5 {
		t.Errorf("ihl = %v", ihl)
	}
	if total.Lo != 0x54 {
		t.Errorf("totalLen = %v", total)
	}
}

func TestExtractUnaligned(t *testing.T) {
	buf := []byte{0b1011_0110, 0b1100_0011}
	// 5 bits starting at bit 3: 1_0110 -> 0b10110 = 22
	v := MustExtract(buf, 3, 5)
	if v.Lo != 0b10110 {
		t.Errorf("unaligned extract = %v, want 22", v)
	}
	// 7 bits crossing the byte boundary at bit 5: 110_1100 = 0b1101100
	v = MustExtract(buf, 5, 7)
	if v.Lo != 0b1101100 {
		t.Errorf("cross-byte extract = %v, want 0b1101100", v)
	}
}

func TestExtractErrors(t *testing.T) {
	buf := make([]byte, 2)
	if _, err := Extract(buf, 0, 17); err == nil {
		t.Error("out-of-range extract should fail")
	}
	if _, err := Extract(buf, -1, 4); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := Extract(buf, 0, 129); err == nil {
		t.Error("width > 128 should fail")
	}
	if err := Inject(buf, 12, 8, New(1, 8)); err == nil {
		t.Error("out-of-range inject should fail")
	}
}

func TestInjectPreservesNeighbours(t *testing.T) {
	buf := []byte{0xff, 0xff, 0xff}
	MustInject(buf, 6, 9, New(0, 9))
	// bits 6..14 cleared: buf = 1111_1100 0000_0001 1111_1111
	want := []byte{0xfc, 0x01, 0xff}
	if !bytes.Equal(buf, want) {
		t.Fatalf("inject neighbours: got %08b want %08b", buf, want)
	}
}

func TestInjectExtractIdentityQuick(t *testing.T) {
	// Property: for any buffer, offset, and width, extracting after
	// injecting returns the injected value, and bits outside the field are
	// untouched.
	rng := rand.New(rand.NewSource(7))
	f := func(raw []byte, offSeed, wSeed uint16, hi, lo uint64) bool {
		buf := make([]byte, 20+len(raw)%16)
		rng.Read(buf)
		w := int(wSeed)%MaxWidth + 1
		maxOff := len(buf)*8 - w
		off := int(offSeed) % (maxOff + 1)
		val := New128(hi, lo, w)
		orig := append([]byte(nil), buf...)
		MustInject(buf, off, w, val)
		got := MustExtract(buf, off, w)
		if !got.Equal(val) {
			t.Logf("inject/extract mismatch off=%d w=%d: %v != %v", off, w, got, val)
			return false
		}
		// Restore field to original bits; buffer must equal original.
		MustInject(buf, off, w, MustExtract(orig, off, w))
		return bytes.Equal(buf, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValueBytesQuick(t *testing.T) {
	f := func(hi, lo uint64, wSeed uint8) bool {
		w := (int(wSeed)%16 + 1) * 8 // whole-byte widths
		v := New128(hi, lo, w)
		return FromBytes(v.Bytes()).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnesComplementChecksum(t *testing.T) {
	// RFC 1071 example adapted: verify that a header with its checksum
	// inserted sums to 0xffff.
	hdr := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	ck := Checksum(hdr)
	hdr[10] = byte(ck >> 8)
	hdr[11] = byte(ck)
	if got := OnesComplementSum(hdr); got != 0xffff {
		t.Fatalf("checksum validation sum = %#x, want 0xffff", got)
	}
	// Known value for this canonical example header is 0xb861.
	if ck != 0xb861 {
		t.Fatalf("checksum = %#x, want 0xb861", ck)
	}
}

func TestChecksumOddLength(t *testing.T) {
	b := []byte{0x01, 0x02, 0x03}
	// padded: 0102 0300 -> sum 0x0402 -> cksum 0xfbfd
	if got := Checksum(b); got != 0xfbfd {
		t.Fatalf("odd-length checksum = %#x", got)
	}
}

func TestString(t *testing.T) {
	if s := New(0x800, 16).String(); s != "0x800/16" {
		t.Errorf("String = %q", s)
	}
	if s := New128(0x1, 0x2, 80).String(); s != "0x10000000000000002/80" {
		t.Errorf("String wide = %q", s)
	}
}

func BenchmarkExtractAligned(b *testing.B) {
	buf := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		MustExtract(buf, 96, 32)
	}
}

func BenchmarkExtractUnaligned(b *testing.B) {
	buf := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		MustExtract(buf, 13, 23)
	}
}

func BenchmarkInject(b *testing.B) {
	buf := make([]byte, 64)
	v := New(0xdead, 16)
	for i := 0; i < b.N; i++ {
		MustInject(buf, 37, 16, v)
	}
}
