package bitfield

// Regression tests for the allocation-free byte serialization and for
// masked matching at widths above 64 bits (the Hi word of Value).

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestAppendBytesMatchesBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for w := 0; w <= MaxWidth; w++ {
		v := New128(rng.Uint64(), rng.Uint64(), w)
		want := v.Bytes()
		got := v.AppendBytes(nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("w=%d: AppendBytes=%x Bytes=%x", w, got, want)
		}
		// Appending must extend, not overwrite.
		pre := []byte{0xde, 0xad}
		got = v.AppendBytes(pre)
		if !bytes.Equal(got[:2], []byte{0xde, 0xad}) || !bytes.Equal(got[2:], want) {
			t.Fatalf("w=%d: append with prefix = %x", w, got)
		}
	}
}

func TestAppendBytesDoesNotAllocateWithCapacity(t *testing.T) {
	v := New128(0x0123456789abcdef, 0xfedcba9876543210, 128)
	buf := make([]byte, 0, 32)
	allocs := testing.AllocsPerRun(100, func() {
		buf = v.AppendBytes(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendBytes with capacity allocated %v times", allocs)
	}
}

func TestAppendBytesRoundTripsThroughFromBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, w := range []int{8, 48, 64, 72, 96, 128} {
		v := New128(rng.Uint64(), rng.Uint64(), w)
		back := FromBytes(v.AppendBytes(nil))
		if !back.Equal(v) {
			t.Fatalf("w=%d: round trip %v -> %v", w, v, back)
		}
	}
}

func TestMatchesMaskedHiWord(t *testing.T) {
	a := New128(0xaaaa000000000000, 0x1, 128)
	b := New128(0xbbbb000000000000, 0x1, 128)
	if a.MatchesMasked(b, Mask(128)) {
		t.Fatal("full mask must distinguish Hi words")
	}
	if !a.MatchesMasked(b, Mask(64).WithWidth(128)) {
		t.Fatal("lo-half mask must ignore Hi words")
	}
	topMask := Mask(128).Shl(112).WithWidth(128) // top 16 bits
	if a.MatchesMasked(b, topMask) {
		t.Fatal("top-16 mask must see the 0xaaaa/0xbbbb difference")
	}
	if !a.MatchesMasked(New128(0xaaaa111111111111, 0x9, 128), topMask) {
		t.Fatal("top-16 mask must ignore all lower bits")
	}
}

func TestMaskWideWidths(t *testing.T) {
	for _, c := range []struct {
		w      int
		hi, lo uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{64, 0, ^uint64(0)},
		{65, 1, ^uint64(0)},
		{128, ^uint64(0), ^uint64(0)},
	} {
		m := Mask(c.w)
		if m.Hi != c.hi || m.Lo != c.lo {
			t.Errorf("Mask(%d) = hi=%#x lo=%#x, want hi=%#x lo=%#x", c.w, m.Hi, m.Lo, c.hi, c.lo)
		}
	}
}
