// Package bitfield provides arbitrary-width, big-endian bit-level field
// access over byte slices.
//
// Network protocol headers and P4 header types are defined as sequences of
// fields whose widths are arbitrary bit counts (bit<1> flags, bit<3> ToS
// bits, bit<48> MAC addresses, bit<128> IPv6 addresses). This package is the
// single place in the tree that converts between the wire representation
// (a []byte in network bit order: most-significant bit of byte 0 first) and
// numeric field values.
//
// Values wider than 64 bits are represented by Value, a 128-bit unsigned
// integer with an explicit width. All arithmetic is modulo 2^width, which
// matches the semantics of P4's bit<N> types.
package bitfield

import (
	"fmt"
	"math/bits"
)

// MaxWidth is the widest field supported, in bits. 128 bits covers every
// field that appears in common protocol headers (IPv6 addresses are the
// widest in practice).
const MaxWidth = 128

// Value is an unsigned integer of up to 128 bits with an explicit bit width.
// The zero Value is a zero-width, zero-valued field.
//
// Hi holds bits 64..127 and Lo bits 0..63 of the numeric value; bits at or
// above W are always zero (the constructors and operators maintain this
// invariant).
type Value struct {
	Hi, Lo uint64
	W      int
}

// New returns a Value of width w holding v truncated to w bits.
// It panics if w is outside [0, MaxWidth].
func New(v uint64, w int) Value {
	checkWidth(w)
	val := Value{Lo: v, W: w}
	return val.truncate()
}

// New128 returns a Value of width w from a 128-bit quantity (hi:lo),
// truncated to w bits.
func New128(hi, lo uint64, w int) Value {
	checkWidth(w)
	val := Value{Hi: hi, Lo: lo, W: w}
	return val.truncate()
}

// FromBytes interprets b as a big-endian unsigned integer of width
// 8*len(b) bits. It panics if len(b) > 16.
func FromBytes(b []byte) Value {
	if len(b) > MaxWidth/8 {
		panic(fmt.Sprintf("bitfield: FromBytes with %d bytes exceeds %d-bit maximum", len(b), MaxWidth))
	}
	var v Value
	v.W = len(b) * 8
	for _, by := range b {
		v = v.shiftLeftRaw(8)
		v.Lo |= uint64(by)
	}
	v.W = len(b) * 8
	return v
}

func checkWidth(w int) {
	if w < 0 || w > MaxWidth {
		panic(fmt.Sprintf("bitfield: width %d outside [0,%d]", w, MaxWidth))
	}
}

// truncate zeroes all bits at positions >= W.
func (v Value) truncate() Value {
	switch {
	case v.W <= 0:
		v.Hi, v.Lo = 0, 0
	case v.W < 64:
		v.Hi = 0
		v.Lo &= (1 << uint(v.W)) - 1
	case v.W == 64:
		v.Hi = 0
	case v.W < 128:
		v.Hi &= (1 << uint(v.W-64)) - 1
	}
	return v
}

// shiftLeftRaw shifts the 128-bit quantity left without touching W.
func (v Value) shiftLeftRaw(n int) Value {
	if n <= 0 {
		return v
	}
	if n >= 128 {
		return Value{W: v.W}
	}
	if n >= 64 {
		v.Hi = v.Lo << uint(n-64)
		v.Lo = 0
		return v
	}
	v.Hi = v.Hi<<uint(n) | v.Lo>>uint(64-n)
	v.Lo <<= uint(n)
	return v
}

// shiftRightRaw shifts the 128-bit quantity right without touching W.
func (v Value) shiftRightRaw(n int) Value {
	if n <= 0 {
		return v
	}
	if n >= 128 {
		return Value{W: v.W}
	}
	if n >= 64 {
		v.Lo = v.Hi >> uint(n-64)
		v.Hi = 0
		return v
	}
	v.Lo = v.Lo>>uint(n) | v.Hi<<uint(64-n)
	v.Hi >>= uint(n)
	return v
}

// Width returns the field width in bits.
func (v Value) Width() int { return v.W }

// Uint64 returns the low 64 bits of the value. For values at most 64 bits
// wide this is the full value.
func (v Value) Uint64() uint64 { return v.Lo }

// IsZero reports whether the numeric value is zero.
func (v Value) IsZero() bool { return v.Hi == 0 && v.Lo == 0 }

// Bit returns bit i (0 = least significant) as 0 or 1.
func (v Value) Bit(i int) uint {
	if i < 0 || i >= 128 {
		return 0
	}
	if i >= 64 {
		return uint(v.Hi>>uint(i-64)) & 1
	}
	return uint(v.Lo>>uint(i)) & 1
}

// Equal reports whether two values have identical numeric value. Width is
// not compared: New(5, 8) equals New(5, 16).
func (v Value) Equal(o Value) bool { return v.Hi == o.Hi && v.Lo == o.Lo }

// Cmp compares numeric values, returning -1, 0, or +1.
func (v Value) Cmp(o Value) int {
	switch {
	case v.Hi < o.Hi:
		return -1
	case v.Hi > o.Hi:
		return 1
	case v.Lo < o.Lo:
		return -1
	case v.Lo > o.Lo:
		return 1
	}
	return 0
}

// WithWidth returns the value reinterpreted at width w (truncating if
// narrower).
func (v Value) WithWidth(w int) Value {
	checkWidth(w)
	v.W = w
	return v.truncate()
}

// Add returns v+o modulo 2^v.W.
func (v Value) Add(o Value) Value {
	lo, carry := bits.Add64(v.Lo, o.Lo, 0)
	hi, _ := bits.Add64(v.Hi, o.Hi, carry)
	return Value{Hi: hi, Lo: lo, W: v.W}.truncate()
}

// Sub returns v-o modulo 2^v.W.
func (v Value) Sub(o Value) Value {
	lo, borrow := bits.Sub64(v.Lo, o.Lo, 0)
	hi, _ := bits.Sub64(v.Hi, o.Hi, borrow)
	return Value{Hi: hi, Lo: lo, W: v.W}.truncate()
}

// Mul returns v*o modulo 2^v.W.
func (v Value) Mul(o Value) Value {
	hi, lo := bits.Mul64(v.Lo, o.Lo)
	hi += v.Lo*o.Hi + v.Hi*o.Lo
	return Value{Hi: hi, Lo: lo, W: v.W}.truncate()
}

// And returns the bitwise AND at v's width.
func (v Value) And(o Value) Value {
	return Value{Hi: v.Hi & o.Hi, Lo: v.Lo & o.Lo, W: v.W}.truncate()
}

// Or returns the bitwise OR at v's width.
func (v Value) Or(o Value) Value {
	return Value{Hi: v.Hi | o.Hi, Lo: v.Lo | o.Lo, W: v.W}.truncate()
}

// Xor returns the bitwise XOR at v's width.
func (v Value) Xor(o Value) Value {
	return Value{Hi: v.Hi ^ o.Hi, Lo: v.Lo ^ o.Lo, W: v.W}.truncate()
}

// Not returns the bitwise complement at v's width.
func (v Value) Not() Value {
	return Value{Hi: ^v.Hi, Lo: ^v.Lo, W: v.W}.truncate()
}

// Shl returns v << n at v's width.
func (v Value) Shl(n int) Value { return v.shiftLeftRaw(n).truncate() }

// Shr returns the logical right shift v >> n.
func (v Value) Shr(n int) Value { return v.shiftRightRaw(n).truncate() }

// Mask returns an all-ones value of width w.
func Mask(w int) Value {
	checkWidth(w)
	return Value{Hi: ^uint64(0), Lo: ^uint64(0), W: w}.truncate()
}

// MatchesMasked reports whether v&mask == want&mask, the ternary-match test.
func (v Value) MatchesMasked(want, mask Value) bool {
	return v.And(mask).Equal(want.And(mask))
}

// String formats the value as 0x-prefixed hex with its width, e.g.
// "0x0800/16".
func (v Value) String() string {
	if v.Hi != 0 {
		return fmt.Sprintf("0x%x%016x/%d", v.Hi, v.Lo, v.W)
	}
	return fmt.Sprintf("0x%x/%d", v.Lo, v.W)
}

// Bytes returns the value as a big-endian byte slice of exactly
// ceil(W/8) bytes.
func (v Value) Bytes() []byte {
	n := (v.W + 7) / 8
	return v.AppendBytes(make([]byte, 0, n))
}

// AppendBytes appends the big-endian byte representation of v (exactly
// ceil(W/8) bytes, as Bytes) to buf and returns the extended slice. It
// allocates only when buf lacks capacity, which makes it the hot-path
// form used by table-key serialization.
func (v Value) AppendBytes(buf []byte) []byte {
	n := (v.W + 7) / 8
	for i := 0; i < n; i++ {
		shift := 8 * (n - 1 - i)
		var b byte
		switch {
		case shift >= 64:
			b = byte(v.Hi >> uint(shift-64))
		case shift+8 <= 64:
			b = byte(v.Lo >> uint(shift))
		default:
			b = byte(v.Lo>>uint(shift) | v.Hi<<uint(64-shift))
		}
		buf = append(buf, b)
	}
	return buf
}

// Extract reads a w-bit big-endian field starting at bit offset off within
// buf. Bit offsets count from the most-significant bit of buf[0]; this is
// the order in which fields appear on the wire and in P4 header
// declarations.
//
// It returns an error if the field extends past the end of buf or w exceeds
// MaxWidth.
func Extract(buf []byte, off, w int) (Value, error) {
	if w < 0 || w > MaxWidth {
		return Value{}, fmt.Errorf("bitfield: extract width %d outside [0,%d]", w, MaxWidth)
	}
	if off < 0 || off+w > len(buf)*8 {
		return Value{}, fmt.Errorf("bitfield: extract [%d,%d) beyond %d-bit buffer", off, off+w, len(buf)*8)
	}
	var v Value
	v.W = w
	// Consume whole bytes where possible, then trailing bits.
	bit := off
	remaining := w
	for remaining > 0 {
		byteIdx := bit / 8
		bitInByte := bit % 8
		take := 8 - bitInByte
		if take > remaining {
			take = remaining
		}
		chunk := uint64(buf[byteIdx]>>(8-bitInByte-take)) & ((1 << uint(take)) - 1)
		v = v.shiftLeftRaw(take)
		v.Lo |= chunk
		bit += take
		remaining -= take
	}
	v.W = w
	return v, nil
}

// Inject writes the w-bit value val into buf starting at bit offset off,
// big-endian, leaving all other bits untouched. It is the inverse of
// Extract.
func Inject(buf []byte, off, w int, val Value) error {
	if w < 0 || w > MaxWidth {
		return fmt.Errorf("bitfield: inject width %d outside [0,%d]", w, MaxWidth)
	}
	if off < 0 || off+w > len(buf)*8 {
		return fmt.Errorf("bitfield: inject [%d,%d) beyond %d-bit buffer", off, off+w, len(buf)*8)
	}
	val = val.WithWidth(w)
	// Write from the least-significant end backwards.
	bit := off + w
	remaining := w
	tmp := val
	for remaining > 0 {
		bitInByte := bit % 8
		if bitInByte == 0 {
			bitInByte = 8
		}
		take := bitInByte
		if take > remaining {
			take = remaining
		}
		byteIdx := (bit - 1) / 8
		shift := 8 - bitInByte
		mask := byte(((1 << uint(take)) - 1) << uint(shift))
		buf[byteIdx] = buf[byteIdx]&^mask | byte(tmp.Lo<<uint(shift))&mask
		tmp = tmp.shiftRightRaw(take)
		bit -= take
		remaining -= take
	}
	return nil
}

// MustExtract is Extract that panics on error, for use with
// statically-validated offsets.
func MustExtract(buf []byte, off, w int) Value {
	v, err := Extract(buf, off, w)
	if err != nil {
		panic(err)
	}
	return v
}

// MustInject is Inject that panics on error.
func MustInject(buf []byte, off, w int, val Value) {
	if err := Inject(buf, off, w, val); err != nil {
		panic(err)
	}
}

// OnesComplementSum computes the 16-bit ones'-complement sum over b, the
// core of the Internet checksum (RFC 1071). A trailing odd byte is padded
// with zero on the right.
func OnesComplementSum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return uint16(sum)
}

// Checksum returns the Internet checksum of b: the ones'-complement of the
// ones'-complement sum.
func Checksum(b []byte) uint16 { return ^OnesComplementSum(b) }
