// Package token defines the lexical tokens of the P4₁₆ subset understood
// by NetDebug, together with source positions for diagnostics.
package token

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	ILLEGAL

	// Literals and identifiers.
	IDENT  // ipv4_lpm
	INT    // 10, 0x0800, 0b101, 8w255, 4w0xF
	STRING // "..." (annotations only)

	// Punctuation.
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	SEMICOLON // ;
	COLON     // :
	COMMA     // ,
	DOT       // .

	// Operators.
	ASSIGN   // =
	EQ       // ==
	NEQ      // !=
	LT       // <
	LE       // <=
	GT       // >
	GE       // >=
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	AND      // &
	OR       // |
	XOR      // ^
	NOT      // !
	TILDE    // ~
	SHL      // <<
	SHR      // >>
	LAND     // &&
	LOR      // ||
	MASK     // &&& (ternary key mask)
	AT       // @ (annotations)
	QUESTION // ?

	// Keywords.
	kwStart
	ACTION
	ACTIONS
	APPLY
	BIT
	BOOL
	CONST
	CONTROL
	DEFAULT
	DEFAULT_ACTION
	ELSE
	ENTRIES
	EXACT
	FALSE
	HEADER
	IF
	IN
	INOUT
	KEY
	LPM
	OUT
	PARSER
	RETURN
	SELECT
	SIZE
	STATE
	STRUCT
	TABLE
	TERNARY
	TRANSITION
	TRUE
	TYPEDEF
	kwEnd
)

var kindNames = map[Kind]string{
	EOF: "EOF", ILLEGAL: "ILLEGAL", IDENT: "identifier", INT: "integer",
	STRING: "string",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", SEMICOLON: ";", COLON: ":", COMMA: ",",
	DOT: ".", ASSIGN: "=", EQ: "==", NEQ: "!=", LT: "<", LE: "<=",
	GT: ">", GE: ">=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	PERCENT: "%", AND: "&", OR: "|", XOR: "^", NOT: "!", TILDE: "~",
	SHL: "<<", SHR: ">>", LAND: "&&", LOR: "||", MASK: "&&&", AT: "@",
	QUESTION: "?",
	ACTION:   "action", ACTIONS: "actions", APPLY: "apply", BIT: "bit",
	BOOL: "bool", CONST: "const", CONTROL: "control", DEFAULT: "default",
	DEFAULT_ACTION: "default_action", ELSE: "else", ENTRIES: "entries",
	EXACT: "exact", FALSE: "false", HEADER: "header", IF: "if", IN: "in",
	INOUT: "inout", KEY: "key", LPM: "lpm", OUT: "out", PARSER: "parser",
	RETURN: "return", SELECT: "select", SIZE: "size", STATE: "state",
	STRUCT: "struct", TABLE: "table", TERNARY: "ternary",
	TRANSITION: "transition", TRUE: "true", TYPEDEF: "typedef",
}

// String returns a human-readable token kind name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"action": ACTION, "actions": ACTIONS, "apply": APPLY, "bit": BIT,
	"bool": BOOL, "const": CONST, "control": CONTROL, "default": DEFAULT,
	"default_action": DEFAULT_ACTION, "else": ELSE, "entries": ENTRIES,
	"exact": EXACT, "false": FALSE, "header": HEADER, "if": IF, "in": IN,
	"inout": INOUT, "key": KEY, "lpm": LPM, "out": OUT, "parser": PARSER,
	"return": RETURN, "select": SELECT, "size": SIZE, "state": STATE,
	"struct": STRUCT, "table": TABLE, "ternary": TERNARY,
	"transition": TRANSITION, "true": TRUE, "typedef": TYPEDEF,
}

// Lookup maps an identifier to its keyword kind, or IDENT.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > kwStart && k < kwEnd }

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Lit  string // raw text for IDENT, INT, STRING, ILLEGAL
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, STRING, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}
