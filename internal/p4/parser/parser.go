// Package parser builds an ast.Program from P4 source text.
//
// The grammar is the NetDebug P4₁₆ subset: header/struct/const/typedef
// declarations, parsers with select transitions (including the essential
// accept and reject states), controls with actions and exact/lpm/ternary
// tables, deparser controls, and a single package instantiation that wires
// the pipeline together. Errors are accumulated with positions; parsing
// continues after most errors so one run reports many problems.
package parser

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"netdebug/internal/p4/ast"
	"netdebug/internal/p4/lexer"
	"netdebug/internal/p4/token"
)

// Parser consumes a token stream.
type Parser struct {
	toks []token.Token
	pos  int
	errs []error
}

// Parse parses a full program from source text.
func Parse(src string) (*ast.Program, error) {
	lx := lexer.New(src)
	toks := lx.All()
	p := &Parser{toks: toks}
	p.errs = append(p.errs, lx.Errors()...)
	prog := p.parseProgram()
	if len(p.errs) > 0 {
		return prog, errors.Join(p.errs...)
	}
	return prog, nil
}

func (p *Parser) cur() token.Token { return p.toks[p.pos] }
func (p *Parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...)))
}

// sync skips tokens until a likely declaration/statement boundary.
func (p *Parser) sync(stop ...token.Kind) {
	for !p.at(token.EOF) {
		k := p.cur().Kind
		for _, s := range stop {
			if k == s {
				return
			}
		}
		p.next()
	}
}

func (p *Parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for !p.at(token.EOF) {
		before := p.pos
		d := p.parseDecl()
		if d != nil {
			prog.Decls = append(prog.Decls, d)
		}
		if p.pos == before { // no progress: skip a token to avoid livelock
			p.errorf("unexpected %s at top level", p.cur())
			p.next()
		}
	}
	return prog
}

func (p *Parser) parseDecl() ast.Decl {
	// Skip annotations like @name("...") at declaration level.
	for p.at(token.AT) {
		p.skipAnnotation()
	}
	switch p.cur().Kind {
	case token.HEADER:
		return p.parseHeader()
	case token.STRUCT:
		return p.parseStruct()
	case token.CONST:
		return p.parseConst()
	case token.TYPEDEF:
		return p.parseTypedef()
	case token.PARSER:
		return p.parseParser()
	case token.CONTROL:
		return p.parseControl()
	case token.IDENT:
		// Package instantiation: Pkg(A(), B(), ...) main;
		return p.parseInstantiation()
	case token.EOF:
		return nil
	default:
		p.errorf("unexpected %s at top level", p.cur())
		p.sync(token.HEADER, token.STRUCT, token.CONST, token.TYPEDEF,
			token.PARSER, token.CONTROL)
		return nil
	}
}

func (p *Parser) skipAnnotation() {
	p.expect(token.AT)
	p.expect(token.IDENT)
	if p.accept(token.LPAREN) {
		depth := 1
		for depth > 0 && !p.at(token.EOF) {
			switch p.next().Kind {
			case token.LPAREN:
				depth++
			case token.RPAREN:
				depth--
			}
		}
	}
}

func (p *Parser) parseType() *ast.TypeRef {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.BIT:
		p.next()
		p.expect(token.LT)
		w := p.expect(token.INT)
		p.expect(token.GT)
		width := 0
		if n, ok := new(big.Int).SetString(strings.ReplaceAll(w.Lit, "_", ""), 0); ok {
			width = int(n.Int64())
		}
		if width <= 0 || width > 128 {
			p.errs = append(p.errs, fmt.Errorf("%s: bit width %d outside [1,128]", pos, width))
			width = 1
		}
		return &ast.TypeRef{P: pos, Name: "bit", Width: width}
	case token.BOOL:
		p.next()
		return &ast.TypeRef{P: pos, Name: "bool"}
	case token.IDENT:
		name := p.next().Lit
		return &ast.TypeRef{P: pos, Name: name}
	default:
		p.errorf("expected type, found %s", p.cur())
		p.next()
		return &ast.TypeRef{P: pos, Name: "bit", Width: 1}
	}
}

func (p *Parser) parseFields() []*ast.Field {
	var fields []*ast.Field
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		pos := p.cur().Pos
		typ := p.parseType()
		name := p.expect(token.IDENT).Lit
		p.expect(token.SEMICOLON)
		fields = append(fields, &ast.Field{P: pos, Type: typ, Name: name})
	}
	p.expect(token.RBRACE)
	return fields
}

func (p *Parser) parseHeader() ast.Decl {
	pos := p.expect(token.HEADER).Pos
	name := p.expect(token.IDENT).Lit
	return &ast.HeaderDecl{P: pos, Name: name, Fields: p.parseFields()}
}

func (p *Parser) parseStruct() ast.Decl {
	pos := p.expect(token.STRUCT).Pos
	name := p.expect(token.IDENT).Lit
	return &ast.StructDecl{P: pos, Name: name, Fields: p.parseFields()}
}

func (p *Parser) parseConst() ast.Decl {
	pos := p.expect(token.CONST).Pos
	typ := p.parseType()
	name := p.expect(token.IDENT).Lit
	p.expect(token.ASSIGN)
	val := p.parseExpr()
	p.expect(token.SEMICOLON)
	return &ast.ConstDecl{P: pos, Type: typ, Name: name, Value: val}
}

func (p *Parser) parseTypedef() ast.Decl {
	pos := p.expect(token.TYPEDEF).Pos
	typ := p.parseType()
	name := p.expect(token.IDENT).Lit
	p.expect(token.SEMICOLON)
	return &ast.TypedefDecl{P: pos, Type: typ, Name: name}
}

func (p *Parser) parseParams() []*ast.Param {
	var params []*ast.Param
	p.expect(token.LPAREN)
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		pos := p.cur().Pos
		dir := ast.DirNone
		switch p.cur().Kind {
		case token.IN:
			dir = ast.DirIn
			p.next()
		case token.OUT:
			dir = ast.DirOut
			p.next()
		case token.INOUT:
			dir = ast.DirInOut
			p.next()
		}
		typ := p.parseType()
		name := p.expect(token.IDENT).Lit
		params = append(params, &ast.Param{P: pos, Dir: dir, Type: typ, Name: name})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	return params
}

func (p *Parser) parseParser() ast.Decl {
	pos := p.expect(token.PARSER).Pos
	name := p.expect(token.IDENT).Lit
	params := p.parseParams()
	p.expect(token.LBRACE)
	var states []*ast.StateDecl
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		if p.at(token.STATE) {
			states = append(states, p.parseState())
		} else {
			p.errorf("expected state declaration, found %s", p.cur())
			p.sync(token.STATE, token.RBRACE)
		}
	}
	p.expect(token.RBRACE)
	return &ast.ParserDecl{P: pos, Name: name, Params: params, States: states}
}

func (p *Parser) parseState() *ast.StateDecl {
	pos := p.expect(token.STATE).Pos
	name := p.expect(token.IDENT).Lit
	p.expect(token.LBRACE)
	st := &ast.StateDecl{P: pos, Name: name}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		if p.at(token.TRANSITION) {
			st.Transition = p.parseTransition()
			break
		}
		before := p.pos
		if s := p.parseStmt(); s != nil {
			st.Body = append(st.Body, s)
		}
		if p.pos == before {
			p.next()
		}
	}
	if st.Transition == nil {
		p.errs = append(p.errs, fmt.Errorf("%s: state %q has no transition", pos, name))
	}
	p.expect(token.RBRACE)
	return st
}

func (p *Parser) parseTransition() *ast.Transition {
	pos := p.expect(token.TRANSITION).Pos
	if p.at(token.SELECT) {
		sel := p.parseSelect()
		return &ast.Transition{P: pos, Select: sel}
	}
	// `accept` and `reject` arrive as IDENTs.
	name := p.expect(token.IDENT).Lit
	p.expect(token.SEMICOLON)
	return &ast.Transition{P: pos, Next: name}
}

func (p *Parser) parseSelect() *ast.SelectExpr {
	pos := p.expect(token.SELECT).Pos
	p.expect(token.LPAREN)
	sel := &ast.SelectExpr{P: pos}
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		sel.Keys = append(sel.Keys, p.parseExpr())
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		sel.Cases = append(sel.Cases, p.parseSelectCase())
	}
	p.expect(token.RBRACE)
	return sel
}

func (p *Parser) parseSelectCase() *ast.SelectCase {
	pos := p.cur().Pos
	c := &ast.SelectCase{P: pos}
	parseOne := func() *ast.Keyset {
		kpos := p.cur().Pos
		if p.accept(token.DEFAULT) {
			c.Default = true
			return nil
		}
		if p.at(token.IDENT) && p.cur().Lit == "_" {
			p.next()
			return &ast.Keyset{P: kpos, Wildcard: true}
		}
		v := p.parseExpr()
		ks := &ast.Keyset{P: kpos, Value: v}
		if p.accept(token.MASK) {
			ks.Mask = p.parseExpr()
		}
		return ks
	}
	if p.accept(token.LPAREN) {
		for !p.at(token.RPAREN) && !p.at(token.EOF) {
			if ks := parseOne(); ks != nil {
				c.Keysets = append(c.Keysets, ks)
			}
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
	} else {
		if ks := parseOne(); ks != nil {
			c.Keysets = append(c.Keysets, ks)
		}
	}
	p.expect(token.COLON)
	c.Next = p.expect(token.IDENT).Lit
	p.expect(token.SEMICOLON)
	return c
}

func (p *Parser) parseControl() ast.Decl {
	pos := p.expect(token.CONTROL).Pos
	name := p.expect(token.IDENT).Lit
	params := p.parseParams()
	p.expect(token.LBRACE)
	ctl := &ast.ControlDecl{P: pos, Name: name, Params: params}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		for p.at(token.AT) {
			p.skipAnnotation()
		}
		switch p.cur().Kind {
		case token.ACTION:
			ctl.Actions = append(ctl.Actions, p.parseAction())
		case token.TABLE:
			ctl.Tables = append(ctl.Tables, p.parseTable())
		case token.APPLY:
			p.next()
			ctl.Apply = p.parseBlock()
		case token.BIT, token.BOOL:
			ctl.Locals = append(ctl.Locals, p.parseVarDecl())
		default:
			p.errorf("expected action, table, apply, or local declaration; found %s", p.cur())
			p.sync(token.ACTION, token.TABLE, token.APPLY, token.RBRACE)
		}
	}
	p.expect(token.RBRACE)
	if ctl.Apply == nil {
		p.errs = append(p.errs, fmt.Errorf("%s: control %q has no apply block", pos, name))
		ctl.Apply = &ast.BlockStmt{P: pos}
	}
	return ctl
}

func (p *Parser) parseVarDecl() *ast.VarDecl {
	pos := p.cur().Pos
	typ := p.parseType()
	name := p.expect(token.IDENT).Lit
	v := &ast.VarDecl{P: pos, Type: typ, Name: name}
	if p.accept(token.ASSIGN) {
		v.Init = p.parseExpr()
	}
	p.expect(token.SEMICOLON)
	return v
}

func (p *Parser) parseAction() *ast.ActionDecl {
	pos := p.expect(token.ACTION).Pos
	name := p.expect(token.IDENT).Lit
	params := p.parseParams()
	body := p.parseBlock()
	return &ast.ActionDecl{P: pos, Name: name, Params: params, Body: body}
}

func (p *Parser) parseTable() *ast.TableDecl {
	pos := p.expect(token.TABLE).Pos
	name := p.expect(token.IDENT).Lit
	p.expect(token.LBRACE)
	t := &ast.TableDecl{P: pos, Name: name, Size: 1024}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.KEY:
			p.next()
			p.expect(token.ASSIGN)
			p.expect(token.LBRACE)
			for !p.at(token.RBRACE) && !p.at(token.EOF) {
				kpos := p.cur().Pos
				e := p.parseExpr()
				p.expect(token.COLON)
				var mk ast.MatchKind
				switch p.cur().Kind {
				case token.EXACT:
					mk = ast.MatchExact
					p.next()
				case token.LPM:
					mk = ast.MatchLPM
					p.next()
				case token.TERNARY:
					mk = ast.MatchTernary
					p.next()
				default:
					p.errorf("expected match kind, found %s", p.cur())
					p.next()
				}
				p.expect(token.SEMICOLON)
				t.Keys = append(t.Keys, &ast.TableKey{P: kpos, Expr: e, Kind: mk})
			}
			p.expect(token.RBRACE)
		case token.ACTIONS:
			p.next()
			p.expect(token.ASSIGN)
			p.expect(token.LBRACE)
			for !p.at(token.RBRACE) && !p.at(token.EOF) {
				apos := p.cur().Pos
				aname := p.expect(token.IDENT).Lit
				ref := &ast.ActionRef{P: apos, Name: aname}
				if p.accept(token.LPAREN) {
					p.expect(token.RPAREN)
				}
				p.expect(token.SEMICOLON)
				t.Actions = append(t.Actions, ref)
			}
			p.expect(token.RBRACE)
		case token.DEFAULT_ACTION:
			p.next()
			p.expect(token.ASSIGN)
			apos := p.cur().Pos
			aname := p.expect(token.IDENT).Lit
			ref := &ast.ActionRef{P: apos, Name: aname}
			if p.accept(token.LPAREN) {
				for !p.at(token.RPAREN) && !p.at(token.EOF) {
					ref.Args = append(ref.Args, p.parseExpr())
					if !p.accept(token.COMMA) {
						break
					}
				}
				p.expect(token.RPAREN)
			}
			p.expect(token.SEMICOLON)
			t.DefaultAction = ref
		case token.SIZE:
			p.next()
			p.expect(token.ASSIGN)
			szTok := p.expect(token.INT)
			p.expect(token.SEMICOLON)
			if n, ok := new(big.Int).SetString(strings.ReplaceAll(szTok.Lit, "_", ""), 0); ok {
				t.Size = int(n.Int64())
			}
		default:
			p.errorf("unexpected %s in table %q", p.cur(), name)
			p.sync(token.KEY, token.ACTIONS, token.DEFAULT_ACTION, token.SIZE, token.RBRACE)
		}
	}
	p.expect(token.RBRACE)
	return t
}

func (p *Parser) parseInstantiation() ast.Decl {
	pos := p.cur().Pos
	pkg := p.expect(token.IDENT).Lit
	p.expect(token.LPAREN)
	inst := &ast.InstantiationDecl{P: pos, Package: pkg}
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		arg := p.expect(token.IDENT).Lit
		p.expect(token.LPAREN)
		p.expect(token.RPAREN)
		inst.Args = append(inst.Args, arg)
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	inst.Name = p.expect(token.IDENT).Lit
	p.expect(token.SEMICOLON)
	return inst
}

func (p *Parser) parseBlock() *ast.BlockStmt {
	pos := p.expect(token.LBRACE).Pos
	b := &ast.BlockStmt{P: pos}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		before := p.pos
		if s := p.parseStmt(); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.pos == before {
			p.errorf("unexpected %s in block", p.cur())
			p.next()
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *Parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.IF:
		return p.parseIf()
	case token.RETURN:
		pos := p.next().Pos
		p.expect(token.SEMICOLON)
		return &ast.ReturnStmt{P: pos}
	case token.BIT, token.BOOL:
		return p.parseVarDecl()
	case token.IDENT:
		return p.parseSimpleStmt()
	default:
		return nil
	}
}

func (p *Parser) parseIf() ast.Stmt {
	pos := p.expect(token.IF).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseStmt()
	var els ast.Stmt
	if p.accept(token.ELSE) {
		els = p.parseStmt()
	}
	return &ast.IfStmt{P: pos, Cond: cond, Then: then, Else: els}
}

// parseSimpleStmt parses assignments and call statements, both of which
// begin with a dotted path.
func (p *Parser) parseSimpleStmt() ast.Stmt {
	pos := p.cur().Pos
	path := p.parsePath()
	switch p.cur().Kind {
	case token.ASSIGN:
		p.next()
		rhs := p.parseExpr()
		p.expect(token.SEMICOLON)
		return &ast.AssignStmt{P: pos, LHS: path, RHS: rhs}
	case token.LPAREN:
		call := p.finishCall(path)
		p.expect(token.SEMICOLON)
		return &ast.CallStmt{P: pos, Call: call}
	default:
		p.errorf("expected '=' or '(' after %s, found %s", path, p.cur())
		p.sync(token.SEMICOLON, token.RBRACE)
		p.accept(token.SEMICOLON)
		return nil
	}
}

func (p *Parser) parsePath() *ast.PathExpr {
	pos := p.cur().Pos
	first := p.expect(token.IDENT).Lit
	path := &ast.PathExpr{P: pos, Parts: []string{first}}
	for p.at(token.DOT) {
		p.next()
		// Member names may collide with keywords (t.apply(), h.key);
		// keywords carry their literal text, so accept them here.
		if p.cur().Kind == token.IDENT || p.cur().Kind.IsKeyword() {
			path.Parts = append(path.Parts, p.next().Lit)
		} else {
			p.errorf("expected member name after '.', found %s", p.cur())
		}
	}
	return path
}

func (p *Parser) finishCall(target *ast.PathExpr) *ast.CallExpr {
	p.expect(token.LPAREN)
	call := &ast.CallExpr{P: target.P, Target: target}
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		call.Args = append(call.Args, p.parseExpr())
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	return call
}

// Expression parsing: precedence climbing.

var binaryPrec = map[token.Kind]int{
	token.LOR:  1,
	token.LAND: 2,
	token.OR:   3,
	token.XOR:  4,
	token.AND:  5,
	token.EQ:   6, token.NEQ: 6,
	token.LT: 7, token.LE: 7, token.GT: 7, token.GE: 7,
	token.SHL: 8, token.SHR: 8,
	token.PLUS: 9, token.MINUS: 9,
	token.STAR: 10, token.SLASH: 10, token.PERCENT: 10,
}

func (p *Parser) parseExpr() ast.Expr {
	return p.parseTernary()
}

func (p *Parser) parseTernary() ast.Expr {
	cond := p.parseBinary(1)
	if !p.at(token.QUESTION) {
		return cond
	}
	pos := p.next().Pos
	a := p.parseExpr()
	p.expect(token.COLON)
	b := p.parseExpr()
	return &ast.TernaryExpr{P: pos, Cond: cond, A: a, B: b}
}

func (p *Parser) parseBinary(minPrec int) ast.Expr {
	lhs := p.parseUnary()
	for {
		prec, ok := binaryPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs
		}
		op := p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &ast.BinaryExpr{P: op.Pos, Op: op.Kind, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.NOT, token.TILDE, token.MINUS:
		op := p.next()
		x := p.parseUnary()
		return &ast.UnaryExpr{P: op.Pos, Op: op.Kind, X: x}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() ast.Expr {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.INT:
		lit := p.next().Lit
		return p.parseIntLit(pos, lit)
	case token.TRUE:
		p.next()
		return &ast.BoolLit{P: pos, Value: true}
	case token.FALSE:
		p.next()
		return &ast.BoolLit{P: pos, Value: false}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	case token.IDENT:
		path := p.parsePath()
		if p.at(token.LPAREN) {
			return p.finishCall(path)
		}
		return path
	default:
		p.errorf("expected expression, found %s", p.cur())
		p.next()
		return &ast.IntLit{P: pos, Value: big.NewInt(0), Width: -1}
	}
}

// parseIntLit interprets decimal, 0x/0b, and width-prefixed (8w255)
// literal text.
func (p *Parser) parseIntLit(pos token.Pos, lit string) ast.Expr {
	width := -1
	body := lit
	if i := strings.IndexAny(lit, "ws"); i > 0 && allDigits(lit[:i]) {
		if lit[i] == 's' {
			p.errs = append(p.errs, fmt.Errorf("%s: signed literals (int<N>) are not supported", pos))
		}
		wv, ok := new(big.Int).SetString(lit[:i], 10)
		if !ok {
			p.errs = append(p.errs, fmt.Errorf("%s: bad width in literal %q", pos, lit))
		} else {
			width = int(wv.Int64())
			if width <= 0 || width > 128 {
				p.errs = append(p.errs, fmt.Errorf("%s: literal width %d outside [1,128]", pos, width))
				width = 32
			}
		}
		body = lit[i+1:]
	}
	v, ok := new(big.Int).SetString(strings.ReplaceAll(body, "_", ""), 0)
	if !ok {
		p.errs = append(p.errs, fmt.Errorf("%s: malformed integer literal %q", pos, lit))
		v = big.NewInt(0)
	}
	if width > 0 {
		mask := new(big.Int).Lsh(big.NewInt(1), uint(width))
		mask.Sub(mask, big.NewInt(1))
		v.And(v, mask)
	}
	return &ast.IntLit{P: pos, Value: v, Width: width}
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
