package parser

import (
	"strings"
	"testing"

	"netdebug/internal/p4/ast"
	"netdebug/internal/p4/p4test"
)

func TestParseRouterShape(t *testing.T) {
	prog, err := Parse(p4test.Router)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var headers, structs, parsers, controls, consts, insts int
	for _, d := range prog.Decls {
		switch d.(type) {
		case *ast.HeaderDecl:
			headers++
		case *ast.StructDecl:
			structs++
		case *ast.ParserDecl:
			parsers++
		case *ast.ControlDecl:
			controls++
		case *ast.ConstDecl:
			consts++
		case *ast.InstantiationDecl:
			insts++
		}
	}
	if headers != 2 || structs != 1 || parsers != 1 || controls != 2 || consts != 1 || insts != 1 {
		t.Fatalf("decl counts: h=%d s=%d p=%d c=%d k=%d i=%d",
			headers, structs, parsers, controls, consts, insts)
	}
}

func TestParseAllSamples(t *testing.T) {
	for name, src := range map[string]string{
		"Router": p4test.Router, "NoTTL": p4test.RouterNoTTLCheck,
		"L2": p4test.L2Switch, "FW": p4test.Firewall,
		"Split": p4test.RouterSplit, "Refl": p4test.Reflector,
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestIntLiteralForms(t *testing.T) {
	src := `const bit<32> A = 10;
	const bit<32> B = 0x0800;
	const bit<32> C = 0b1010;
	const bit<32> D = 8w255;
	const bit<32> E = 16w0x0800;`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		val   int64
		width int
	}{{10, -1}, {0x0800, -1}, {10, -1}, {255, 8}, {0x0800, 16}}
	for i, d := range prog.Decls {
		lit := d.(*ast.ConstDecl).Value.(*ast.IntLit)
		if lit.Value.Int64() != want[i].val || lit.Width != want[i].width {
			t.Errorf("const %d: %v/%d want %v/%d", i, lit.Value, lit.Width, want[i].val, want[i].width)
		}
	}
}

func TestSignedLiteralRejected(t *testing.T) {
	if _, err := Parse(`const bit<8> A = 8s5;`); err == nil ||
		!strings.Contains(err.Error(), "signed") {
		t.Fatalf("err = %v", err)
	}
}

func TestExpressionPrecedence(t *testing.T) {
	src := `
	header h_t { bit<8> x; } struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) { state start { transition accept; } }
	control I(inout hs hdr) {
	  apply { hdr.h.x = hdr.h.x + hdr.h.x * hdr.h.x; }
	}
	control D(packet_out p, in hs hdr) { apply {} }
	S(P(), I(), D()) main;`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var ctl *ast.ControlDecl
	for _, d := range prog.Decls {
		if c, ok := d.(*ast.ControlDecl); ok && c.Name == "I" {
			ctl = c
		}
	}
	assign := ctl.Apply.Stmts[0].(*ast.AssignStmt)
	add, ok := assign.RHS.(*ast.BinaryExpr)
	if !ok {
		t.Fatalf("rhs = %T", assign.RHS)
	}
	// + must be the root; * binds tighter.
	if _, ok := add.Y.(*ast.BinaryExpr); !ok {
		t.Fatalf("rhs of + is %T, want BinaryExpr(*)", add.Y)
	}
}

func TestTernaryExpression(t *testing.T) {
	src := `
	header h_t { bit<8> x; } struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) { state start { transition accept; } }
	control I(inout hs hdr) {
	  apply { hdr.h.x = hdr.h.x > 8w5 ? 8w1 : 8w0; }
	}
	control D(packet_out p, in hs hdr) { apply {} }
	S(P(), I(), D()) main;`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
}

func TestAnnotationsSkipped(t *testing.T) {
	src := `
	@name("my.header") header h_t { bit<8> x; }
	struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) { state start { transition accept; } }
	control D(packet_out p, in hs hdr) { apply {} }
	S(P(), D()) main;`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestErrorRecovery(t *testing.T) {
	// Multiple errors reported, not just the first.
	src := `
	header h_t { bit<8> x }   // missing semicolon
	struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) { state start { transition } }  // missing target
	control D(packet_out p, in hs hdr) { apply {} }
	S(P(), D()) main;`
	_, err := Parse(src)
	if err == nil {
		t.Fatal("want errors")
	}
	if n := strings.Count(err.Error(), "\n") + 1; n < 2 {
		t.Fatalf("want multiple errors, got: %v", err)
	}
}

func TestStateWithoutTransition(t *testing.T) {
	src := `
	header h_t { bit<8> x; } struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) { state start { p.extract(hdr.h); } }
	control D(packet_out p, in hs hdr) { apply {} }
	S(P(), D()) main;`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "no transition") {
		t.Fatalf("err = %v", err)
	}
}

func TestTableProperties(t *testing.T) {
	src := `
	header h_t { bit<8> x; } struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) { state start { transition accept; } }
	control I(inout hs hdr) {
	  action a(bit<9> v) {}
	  table t {
	    key = { hdr.h.x: exact; }
	    actions = { a; NoAction; }
	    size = 128;
	    default_action = a(9w3);
	  }
	  apply { t.apply(); }
	}
	control D(packet_out p, in hs hdr) { apply {} }
	S(P(), I(), D()) main;`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var tbl *ast.TableDecl
	for _, d := range prog.Decls {
		if c, ok := d.(*ast.ControlDecl); ok && c.Name == "I" {
			tbl = c.Tables[0]
		}
	}
	if tbl.Size != 128 || len(tbl.Keys) != 1 || len(tbl.Actions) != 2 {
		t.Fatalf("table: %+v", tbl)
	}
	if tbl.DefaultAction == nil || tbl.DefaultAction.Name != "a" || len(tbl.DefaultAction.Args) != 1 {
		t.Fatalf("default action: %+v", tbl.DefaultAction)
	}
}

func TestSelectTupleCase(t *testing.T) {
	src := `
	header h_t { bit<4> a; bit<4> b; } struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) {
	  state start {
	    p.extract(hdr.h);
	    transition select(hdr.h.a, hdr.h.b) {
	      (4w1, 4w2): s1;
	      (4w3, _): accept;
	      default: reject;
	    }
	  }
	  state s1 { transition accept; }
	}
	control D(packet_out p, in hs hdr) { apply {} }
	S(P(), D()) main;`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var pd *ast.ParserDecl
	for _, d := range prog.Decls {
		if p, ok := d.(*ast.ParserDecl); ok {
			pd = p
		}
	}
	sel := pd.States[0].Transition.Select
	if len(sel.Keys) != 2 || len(sel.Cases) != 3 {
		t.Fatalf("select: keys=%d cases=%d", len(sel.Keys), len(sel.Cases))
	}
	if !sel.Cases[1].Keysets[1].Wildcard {
		t.Fatal("second keyset of case 2 should be wildcard")
	}
	if !sel.Cases[2].Default {
		t.Fatal("third case should be default")
	}
}
