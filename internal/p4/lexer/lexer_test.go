package lexer

import (
	"testing"

	"netdebug/internal/p4/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	lx := New(src)
	var out []token.Kind
	for _, tok := range lx.All() {
		out = append(out, tok.Kind)
	}
	if errs := lx.Errors(); len(errs) > 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "header foo bit<48> transition select accept")
	want := []token.Kind{token.HEADER, token.IDENT, token.BIT, token.LT,
		token.INT, token.GT, token.TRANSITION, token.SELECT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestOperators(t *testing.T) {
	got := kinds(t, "== != <= >= << >> && || &&& & | ^ ~ ! = < > + - * / % ? :")
	want := []token.Kind{token.EQ, token.NEQ, token.LE, token.GE, token.SHL,
		token.SHR, token.LAND, token.LOR, token.MASK, token.AND, token.OR,
		token.XOR, token.TILDE, token.NOT, token.ASSIGN, token.LT, token.GT,
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.QUESTION, token.COLON, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumberForms(t *testing.T) {
	lx := New("10 0x0800 0b1010 8w255 16w0x0800 4w0b1111 1_000")
	toks := lx.All()
	if len(lx.Errors()) > 0 {
		t.Fatal(lx.Errors())
	}
	lits := []string{"10", "0x0800", "0b1010", "8w255", "16w0x0800", "4w0b1111", "1_000"}
	for i, want := range lits {
		if toks[i].Kind != token.INT || toks[i].Lit != want {
			t.Fatalf("token %d = %v, want INT %q", i, toks[i], want)
		}
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, `
	// line comment with symbols == != { }
	state /* block
	   spanning lines */ start`)
	want := []token.Kind{token.STATE, token.IDENT, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestUnterminatedComment(t *testing.T) {
	lx := New("/* never closed")
	lx.All()
	if len(lx.Errors()) == 0 {
		t.Fatal("want error for unterminated comment")
	}
}

func TestIllegalCharacter(t *testing.T) {
	lx := New("state $ start")
	toks := lx.All()
	if len(lx.Errors()) == 0 {
		t.Fatal("want error for $")
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found {
		t.Fatal("no ILLEGAL token emitted")
	}
}

func TestPositions(t *testing.T) {
	lx := New("a\n  bb\n")
	toks := lx.All()
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("bb at %v", toks[1].Pos)
	}
}

func TestStrings(t *testing.T) {
	lx := New(`@name("hello.world")`)
	toks := lx.All()
	if len(lx.Errors()) > 0 {
		t.Fatal(lx.Errors())
	}
	if toks[3].Kind != token.STRING || toks[3].Lit != "hello.world" {
		t.Fatalf("string token: %v", toks[3])
	}
	lx = New(`"unterminated`)
	lx.All()
	if len(lx.Errors()) == 0 {
		t.Fatal("want error for unterminated string")
	}
}

func TestKeywordTable(t *testing.T) {
	if token.Lookup("parser") != token.PARSER {
		t.Fatal("parser should be a keyword")
	}
	if token.Lookup("myparser") != token.IDENT {
		t.Fatal("myparser should be an identifier")
	}
	if !token.PARSER.IsKeyword() || token.IDENT.IsKeyword() {
		t.Fatal("IsKeyword misclassifies")
	}
}
