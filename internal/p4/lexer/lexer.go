// Package lexer converts P4 source text into a token stream.
//
// The scanner handles //-style and /* */-style comments, decimal, hex
// (0x...), and binary (0b...) integer literals, P4 width-prefixed literals
// such as 8w255 and 16w0x0800, and all operators used by the NetDebug P4
// subset, including the &&& ternary mask operator.
package lexer

import (
	"fmt"

	"netdebug/internal/p4/token"
)

// Lexer scans one source buffer.
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int
	errs []error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns scan errors accumulated so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token, or an EOF token at end of input.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()
	switch {
	case isLetter(c):
		start := l.off - 1
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		return token.Token{Kind: token.Lookup(lit), Lit: lit, Pos: pos}
	case isDigit(c):
		return l.scanNumber(pos, c)
	}
	switch c {
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACKET, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACKET, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMICOLON, Pos: pos}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	case '@':
		return token.Token{Kind: token.AT, Pos: pos}
	case '?':
		return token.Token{Kind: token.QUESTION, Pos: pos}
	case '+':
		return token.Token{Kind: token.PLUS, Pos: pos}
	case '-':
		return token.Token{Kind: token.MINUS, Pos: pos}
	case '*':
		return token.Token{Kind: token.STAR, Pos: pos}
	case '/':
		return token.Token{Kind: token.SLASH, Pos: pos}
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: pos}
	case '^':
		return token.Token{Kind: token.XOR, Pos: pos}
	case '~':
		return token.Token{Kind: token.TILDE, Pos: pos}
	case '=':
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.EQ, Pos: pos}
		}
		return token.Token{Kind: token.ASSIGN, Pos: pos}
	case '!':
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.NEQ, Pos: pos}
		}
		return token.Token{Kind: token.NOT, Pos: pos}
	case '<':
		if l.peek() == '<' {
			l.advance()
			return token.Token{Kind: token.SHL, Pos: pos}
		}
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.LE, Pos: pos}
		}
		return token.Token{Kind: token.LT, Pos: pos}
	case '>':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.SHR, Pos: pos}
		}
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.GE, Pos: pos}
		}
		return token.Token{Kind: token.GT, Pos: pos}
	case '&':
		if l.peek() == '&' {
			l.advance()
			if l.peek() == '&' {
				l.advance()
				return token.Token{Kind: token.MASK, Pos: pos}
			}
			return token.Token{Kind: token.LAND, Pos: pos}
		}
		return token.Token{Kind: token.AND, Pos: pos}
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.LOR, Pos: pos}
		}
		return token.Token{Kind: token.OR, Pos: pos}
	case '"':
		start := l.off
		for l.off < len(l.src) && l.peek() != '"' && l.peek() != '\n' {
			l.advance()
		}
		lit := l.src[start:l.off]
		if l.off >= len(l.src) || l.peek() != '"' {
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Lit: lit, Pos: pos}
		}
		l.advance()
		return token.Token{Kind: token.STRING, Lit: lit, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// scanNumber scans integer literals: decimal, 0x hex, 0b binary, and P4
// width-prefixed forms (8w255, 16w0x0800). The raw text is preserved in
// Lit; numeric interpretation happens in the parser.
func (l *Lexer) scanNumber(pos token.Pos, first byte) token.Token {
	start := l.off - 1
	// Scan the leading digit run (underscores are digit separators).
	for l.off < len(l.src) && (isDigit(l.peek()) || l.peek() == '_') {
		l.advance()
	}
	// Width prefix? e.g. "8w..." or "8s..." (signed not supported; flagged
	// by the parser).
	if l.off < len(l.src) && (l.peek() == 'w' || l.peek() == 's') {
		l.advance()
		l.scanMagnitude(pos)
		return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}
	}
	// 0x / 0b forms begin with a single '0'.
	if first == '0' && l.off-start == 1 && l.off < len(l.src) &&
		(l.peek() == 'x' || l.peek() == 'X' || l.peek() == 'b' || l.peek() == 'B') {
		l.off = start // rewind and rescan as magnitude
		l.col -= 1
		l.scanMagnitude(pos)
		return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}
	}
	return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}
}

// scanMagnitude scans decimal, 0x..., or 0b... digits.
func (l *Lexer) scanMagnitude(pos token.Pos) {
	if l.off >= len(l.src) {
		l.errorf(pos, "incomplete integer literal")
		return
	}
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		n := 0
		for l.off < len(l.src) && (isHexDigit(l.peek()) || l.peek() == '_') {
			l.advance()
			n++
		}
		if n == 0 {
			l.errorf(pos, "hex literal with no digits")
		}
		return
	}
	if l.peek() == '0' && (l.peek2() == 'b' || l.peek2() == 'B') {
		l.advance()
		l.advance()
		n := 0
		for l.off < len(l.src) && (l.peek() == '0' || l.peek() == '1' || l.peek() == '_') {
			l.advance()
			n++
		}
		if n == 0 {
			l.errorf(pos, "binary literal with no digits")
		}
		return
	}
	n := 0
	for l.off < len(l.src) && (isDigit(l.peek()) || l.peek() == '_') {
		l.advance()
		n++
	}
	if n == 0 {
		l.errorf(pos, "integer literal with no digits")
	}
}

// All scans the entire input and returns every token up to and including
// EOF. It is a convenience for tests and the parser.
func (l *Lexer) All() []token.Token {
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
