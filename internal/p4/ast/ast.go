// Package ast defines the abstract syntax tree for the NetDebug P4 subset.
//
// The tree is produced by package parser and consumed by the type checker
// (package types) and the IR lowering pass (package compile). Every node
// carries the source position of its first token for diagnostics.
package ast

import (
	"math/big"

	"netdebug/internal/p4/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// Program is a parsed compilation unit.
type Program struct {
	Decls []Decl
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// TypeRef is a syntactic type: bit<N>, bool, or a named type.
type TypeRef struct {
	P     token.Pos
	Name  string // "bit", "bool", or type name
	Width int    // for bit<N>
}

// Pos implements Node.
func (t *TypeRef) Pos() token.Pos { return t.P }

// IsBit reports whether the reference is a bit<N> type.
func (t *TypeRef) IsBit() bool { return t.Name == "bit" }

// Field is one member of a header or struct.
type Field struct {
	P    token.Pos
	Type *TypeRef
	Name string
}

// Pos implements Node.
func (f *Field) Pos() token.Pos { return f.P }

// HeaderDecl is `header Name { fields }`.
type HeaderDecl struct {
	P      token.Pos
	Name   string
	Fields []*Field
}

func (d *HeaderDecl) Pos() token.Pos { return d.P }
func (d *HeaderDecl) declNode()      {}

// StructDecl is `struct Name { fields }`.
type StructDecl struct {
	P      token.Pos
	Name   string
	Fields []*Field
}

func (d *StructDecl) Pos() token.Pos { return d.P }
func (d *StructDecl) declNode()      {}

// ConstDecl is `const type Name = expr;`.
type ConstDecl struct {
	P     token.Pos
	Type  *TypeRef
	Name  string
	Value Expr
}

func (d *ConstDecl) Pos() token.Pos { return d.P }
func (d *ConstDecl) declNode()      {}

// TypedefDecl is `typedef type Name;`.
type TypedefDecl struct {
	P    token.Pos
	Type *TypeRef
	Name string
}

func (d *TypedefDecl) Pos() token.Pos { return d.P }
func (d *TypedefDecl) declNode()      {}

// Direction of a parameter.
type Direction int

// Parameter directions.
const (
	DirNone Direction = iota
	DirIn
	DirOut
	DirInOut
)

// String renders the direction keyword.
func (d Direction) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	case DirInOut:
		return "inout"
	}
	return ""
}

// Param is a parser/control/action parameter.
type Param struct {
	P    token.Pos
	Dir  Direction
	Type *TypeRef
	Name string
}

// Pos implements Node.
func (p *Param) Pos() token.Pos { return p.P }

// ParserDecl is a parser with states.
type ParserDecl struct {
	P      token.Pos
	Name   string
	Params []*Param
	States []*StateDecl
}

func (d *ParserDecl) Pos() token.Pos { return d.P }
func (d *ParserDecl) declNode()      {}

// StateDecl is one parser state.
type StateDecl struct {
	P          token.Pos
	Name       string
	Body       []Stmt
	Transition *Transition
}

// Pos implements Node.
func (d *StateDecl) Pos() token.Pos { return d.P }

// Transition ends a parser state. Either Next is set (direct transition) or
// Select is set.
type Transition struct {
	P      token.Pos
	Next   string // direct transition target ("accept"/"reject"/state)
	Select *SelectExpr
}

// Pos implements Node.
func (t *Transition) Pos() token.Pos { return t.P }

// SelectExpr is `select(keys...) { cases }`.
type SelectExpr struct {
	P     token.Pos
	Keys  []Expr
	Cases []*SelectCase
}

// Pos implements Node.
func (s *SelectExpr) Pos() token.Pos { return s.P }

// SelectCase is one arm of a select. Keysets match positionally against the
// select keys; Default marks the `default`/`_` arm.
type SelectCase struct {
	P       token.Pos
	Default bool
	Keysets []*Keyset
	Next    string
}

// Pos implements Node.
func (c *SelectCase) Pos() token.Pos { return c.P }

// Keyset is a value, optionally with a &&& mask, or the wildcard `_`.
type Keyset struct {
	P        token.Pos
	Wildcard bool
	Value    Expr
	Mask     Expr // nil when exact
}

// Pos implements Node.
func (k *Keyset) Pos() token.Pos { return k.P }

// ControlDecl is a control block with actions, tables, and an apply body.
type ControlDecl struct {
	P       token.Pos
	Name    string
	Params  []*Param
	Actions []*ActionDecl
	Tables  []*TableDecl
	Locals  []*VarDecl
	Apply   *BlockStmt
}

func (d *ControlDecl) Pos() token.Pos { return d.P }
func (d *ControlDecl) declNode()      {}

// ActionDecl is `action name(params) { body }`.
type ActionDecl struct {
	P      token.Pos
	Name   string
	Params []*Param
	Body   *BlockStmt
}

// Pos implements Node.
func (d *ActionDecl) Pos() token.Pos { return d.P }

// MatchKind is how a table key matches.
type MatchKind int

// Match kinds.
const (
	MatchExact MatchKind = iota
	MatchLPM
	MatchTernary
)

// String renders the P4 keyword.
func (m MatchKind) String() string {
	switch m {
	case MatchExact:
		return "exact"
	case MatchLPM:
		return "lpm"
	case MatchTernary:
		return "ternary"
	}
	return "match?"
}

// TableKey is one `expr : match_kind;` entry.
type TableKey struct {
	P    token.Pos
	Expr Expr
	Kind MatchKind
}

// Pos implements Node.
func (k *TableKey) Pos() token.Pos { return k.P }

// ActionRef names an action in a table's actions list or default_action,
// with optional bound arguments (default_action only).
type ActionRef struct {
	P    token.Pos
	Name string
	Args []Expr
}

// Pos implements Node.
func (a *ActionRef) Pos() token.Pos { return a.P }

// TableDecl is a match-action table.
type TableDecl struct {
	P             token.Pos
	Name          string
	Keys          []*TableKey
	Actions       []*ActionRef
	DefaultAction *ActionRef
	Size          int
}

// Pos implements Node.
func (d *TableDecl) Pos() token.Pos { return d.P }

// InstantiationDecl is `Pkg(P(), I(), D()) main;` — the pipeline wiring.
type InstantiationDecl struct {
	P       token.Pos
	Package string
	Args    []string // names of the instantiated parser/controls
	Name    string   // usually "main"
}

func (d *InstantiationDecl) Pos() token.Pos { return d.P }
func (d *InstantiationDecl) declNode()      {}

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is `{ stmts }`.
type BlockStmt struct {
	P     token.Pos
	Stmts []Stmt
}

func (s *BlockStmt) Pos() token.Pos { return s.P }
func (s *BlockStmt) stmtNode()      {}

// AssignStmt is `lvalue = expr;`.
type AssignStmt struct {
	P   token.Pos
	LHS Expr // PathExpr
	RHS Expr
}

func (s *AssignStmt) Pos() token.Pos { return s.P }
func (s *AssignStmt) stmtNode()      {}

// CallStmt is a method/function call used as a statement:
// pkt.extract(hdr.x); table.apply(); mark_to_drop(meta); hdr.h.setValid();
type CallStmt struct {
	P    token.Pos
	Call *CallExpr
}

func (s *CallStmt) Pos() token.Pos { return s.P }
func (s *CallStmt) stmtNode()      {}

// IfStmt is `if (cond) then else els`.
type IfStmt struct {
	P    token.Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

func (s *IfStmt) Pos() token.Pos { return s.P }
func (s *IfStmt) stmtNode()      {}

// VarDecl is a local variable declaration `type name = expr;` (initializer
// optional).
type VarDecl struct {
	P    token.Pos
	Type *TypeRef
	Name string
	Init Expr // may be nil
}

func (s *VarDecl) Pos() token.Pos { return s.P }
func (s *VarDecl) stmtNode()      {}

// ReturnStmt is `return;` — exits an action or control apply body early.
type ReturnStmt struct {
	P token.Pos
}

func (s *ReturnStmt) Pos() token.Pos { return s.P }
func (s *ReturnStmt) stmtNode()      {}

// Expr is an expression.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal. Width is -1 for unsized literals; the
// checker assigns a width from context. Value uses big.Int to hold up to
// 128-bit constants exactly.
type IntLit struct {
	P     token.Pos
	Value *big.Int
	Width int // -1 if unsized
}

func (e *IntLit) Pos() token.Pos { return e.P }
func (e *IntLit) exprNode()      {}

// BoolLit is `true` or `false`.
type BoolLit struct {
	P     token.Pos
	Value bool
}

func (e *BoolLit) Pos() token.Pos { return e.P }
func (e *BoolLit) exprNode()      {}

// PathExpr is a dotted path: hdr.ipv4.ttl, standard_metadata.egress_spec,
// or a bare identifier.
type PathExpr struct {
	P     token.Pos
	Parts []string
}

func (e *PathExpr) Pos() token.Pos { return e.P }
func (e *PathExpr) exprNode()      {}

// String joins the parts with dots.
func (e *PathExpr) String() string {
	s := e.Parts[0]
	for _, p := range e.Parts[1:] {
		s += "." + p
	}
	return s
}

// CallExpr is `target(args)` where target is a PathExpr; the final path
// part is the method name for method-style calls (pkt.extract, t.apply,
// h.isValid, h.setValid).
type CallExpr struct {
	P      token.Pos
	Target *PathExpr
	Args   []Expr
}

func (e *CallExpr) Pos() token.Pos { return e.P }
func (e *CallExpr) exprNode()      {}

// UnaryExpr is `op x` for ! ~ -.
type UnaryExpr struct {
	P  token.Pos
	Op token.Kind
	X  Expr
}

func (e *UnaryExpr) Pos() token.Pos { return e.P }
func (e *UnaryExpr) exprNode()      {}

// BinaryExpr is `x op y`.
type BinaryExpr struct {
	P    token.Pos
	Op   token.Kind
	X, Y Expr
}

func (e *BinaryExpr) Pos() token.Pos { return e.P }
func (e *BinaryExpr) exprNode()      {}

// TernaryExpr is `cond ? a : b`.
type TernaryExpr struct {
	P    token.Pos
	Cond Expr
	A, B Expr
}

func (e *TernaryExpr) Pos() token.Pos { return e.P }
func (e *TernaryExpr) exprNode()      {}
