// Package ir defines the intermediate representation produced by the P4
// compiler (package compile) and executed by the data-plane engine
// (package dataplane).
//
// The IR is fully resolved and flattened: header instances and fields are
// integer-indexed, parser states form an indexed graph with accept/reject
// sentinels, and expressions carry their bit widths. Nothing in the IR
// refers back to source names except for diagnostics.
package ir

import (
	"fmt"
	"strings"

	"netdebug/internal/bitfield"
)

// Sentinel parser-state indices. Accept hands the packet to the
// match-action pipeline; Reject drops it (the P4₁₆ semantics NetDebug's
// reference target implements, and the one the SDNet erratum breaks).
const (
	StateAccept = -1
	StateReject = -2
)

// HeaderType describes the wire layout of a header.
type HeaderType struct {
	Name   string
	Fields []FieldDef
	Bits   int // total width
}

// FieldDef is one field in a header type.
type FieldDef struct {
	Name   string
	Width  int
	Offset int // bit offset from start of header
}

// FieldIndex returns the index of the named field, or -1.
func (h *HeaderType) FieldIndex(name string) int {
	for i := range h.Fields {
		if h.Fields[i].Name == name {
			return i
		}
	}
	return -1
}

// HeaderInst is a runtime header instance (a header-typed field of the
// program's headers struct, or a flattened metadata struct).
type HeaderInst struct {
	Name     string // diagnostic name, e.g. "hdr.ipv4" or "standard_metadata"
	Type     *HeaderType
	Index    int
	Metadata bool // metadata instances are always valid and never emitted
}

// Program is a compiled P4 program.
type Program struct {
	Name        string
	HeaderTypes []*HeaderType
	Instances   []*HeaderInst
	Parser      *Parser
	Controls    []*Control // match-action pipeline in execution order
	Deparser    *Deparser
	// StdMeta is the instance index of standard_metadata, or -1.
	StdMeta int
	// Source is the original P4 text, retained for reports.
	Source string
}

// Instance returns the instance with the given diagnostic name, or nil.
func (p *Program) Instance(name string) *HeaderInst {
	for _, in := range p.Instances {
		if in.Name == name {
			return in
		}
	}
	return nil
}

// Control returns the named control, or nil.
func (p *Program) Control(name string) *Control {
	for _, c := range p.Controls {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Table returns the named table searching all controls, or nil.
func (p *Program) Table(name string) *Table {
	for _, c := range p.Controls {
		for _, t := range c.Tables {
			if t.Name == name {
				return t
			}
		}
	}
	return nil
}

// Tables returns every table in pipeline order.
func (p *Program) Tables() []*Table {
	var out []*Table
	for _, c := range p.Controls {
		out = append(out, c.Tables...)
	}
	return out
}

// Standard metadata field indices, fixed by the builtin
// standard_metadata_t declaration in package compile.
const (
	StdMetaIngressPort = iota
	StdMetaEgressSpec
	StdMetaEgressPort
	StdMetaPacketLength
	StdMetaParserError
)

// Parser is the parse graph.
type Parser struct {
	States []*ParserState
	Start  int
}

// StateName renders a state index (including sentinels) for diagnostics.
func (p *Parser) StateName(idx int) string {
	switch idx {
	case StateAccept:
		return "accept"
	case StateReject:
		return "reject"
	}
	if idx >= 0 && idx < len(p.States) {
		return p.States[idx].Name
	}
	return fmt.Sprintf("state#%d", idx)
}

// ParserState is one state: body operations then a transition.
type ParserState struct {
	Name  string
	Index int
	Ops   []Stmt // Extract and Assign statements
	Trans Transition
}

// Transition selects the next state. With no Keys it is a direct jump to
// Default.
type Transition struct {
	Keys    []Expr
	Cases   []TransCase
	Default int
}

// TransCase matches the key tuple against per-key value/mask pairs.
type TransCase struct {
	Values []bitfield.Value
	Masks  []bitfield.Value // all-ones for exact matches
	Next   int
}

// Control is a match-action control block.
type Control struct {
	Name      string
	Actions   []*Action
	Tables    []*Table
	NumLocals int
	Apply     []Stmt
}

// ActionIndex returns the index of the named action in the control, or -1.
func (c *Control) ActionIndex(name string) int {
	for i, a := range c.Actions {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Action is a named action with runtime parameters (action data).
type Action struct {
	Name   string
	Params []ActionParam
	Body   []Stmt
}

// ActionParam is one action-data parameter.
type ActionParam struct {
	Name  string
	Width int
}

// MatchKind is how a table key matches, mirroring P4 match_kind.
type MatchKind int

// Match kinds.
const (
	MatchExact MatchKind = iota
	MatchLPM
	MatchTernary
)

// String renders the P4 keyword.
func (m MatchKind) String() string {
	switch m {
	case MatchExact:
		return "exact"
	case MatchLPM:
		return "lpm"
	case MatchTernary:
		return "ternary"
	}
	return fmt.Sprintf("MatchKind(%d)", int(m))
}

// TableKey is one key expression with its match kind.
type TableKey struct {
	Expr Expr
	Kind MatchKind
}

// ActionCall binds an action to constant arguments (default actions).
type ActionCall struct {
	Action *Action
	Args   []bitfield.Value
}

// Table is a match-action table.
type Table struct {
	Name    string
	Control string // owning control, for qualified names
	Keys    []TableKey
	Actions []*Action
	Default ActionCall
	Size    int
}

// QualifiedName returns "control.table".
func (t *Table) QualifiedName() string { return t.Control + "." + t.Name }

// KeyWidths returns the width of each key in bits.
func (t *Table) KeyWidths() []int {
	out := make([]int, len(t.Keys))
	for i, k := range t.Keys {
		out[i] = k.Expr.Width()
	}
	return out
}

// Deparser reassembles the output packet.
type Deparser struct {
	Name  string
	Stmts []Stmt // Emit and If statements
}

// Stmt is an executable IR statement.
type Stmt interface {
	stmt()
	String() string
}

// Extract parses the next header instance from the packet cursor.
type Extract struct {
	Inst int
}

func (*Extract) stmt()            {}
func (s *Extract) String() string { return fmt.Sprintf("extract #%d", s.Inst) }

// Emit appends a header instance to the output packet if it is valid.
type Emit struct {
	Inst int
}

func (*Emit) stmt()            {}
func (s *Emit) String() string { return fmt.Sprintf("emit #%d", s.Inst) }

// AssignField stores an expression into a header/metadata field.
type AssignField struct {
	Inst, Field int
	RHS         Expr
}

func (*AssignField) stmt() {}
func (s *AssignField) String() string {
	return fmt.Sprintf("#%d.%d = %s", s.Inst, s.Field, s.RHS)
}

// AssignLocal stores into a local slot.
type AssignLocal struct {
	Idx int
	RHS Expr
}

func (*AssignLocal) stmt()            {}
func (s *AssignLocal) String() string { return fmt.Sprintf("local%d = %s", s.Idx, s.RHS) }

// SetValid marks a header instance valid or invalid.
type SetValid struct {
	Inst  int
	Valid bool
}

func (*SetValid) stmt() {}
func (s *SetValid) String() string {
	if s.Valid {
		return fmt.Sprintf("setValid #%d", s.Inst)
	}
	return fmt.Sprintf("setInvalid #%d", s.Inst)
}

// MarkToDrop requests the packet be dropped at the end of the pipeline.
type MarkToDrop struct{}

func (*MarkToDrop) stmt()         {}
func (MarkToDrop) String() string { return "mark_to_drop" }

// If branches on a boolean expression.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (*If) stmt()            {}
func (s *If) String() string { return fmt.Sprintf("if %s", s.Cond) }

// ApplyTable runs a table lookup and the selected action.
type ApplyTable struct {
	Table *Table
}

func (*ApplyTable) stmt()            {}
func (s *ApplyTable) String() string { return "apply " + s.Table.Name }

// CallAction invokes an action directly with evaluated arguments (a direct
// action call in an apply block, as opposed to a table-driven invocation).
type CallAction struct {
	Action *Action
	Args   []Expr
}

func (*CallAction) stmt()            {}
func (s *CallAction) String() string { return "call " + s.Action.Name }

// Return exits the enclosing action or apply body.
type Return struct{}

func (*Return) stmt()         {}
func (Return) String() string { return "return" }

// Expr is an evaluable IR expression. Width is the result width in bits;
// boolean expressions have width 1.
type Expr interface {
	Width() int
	String() string
}

// Const is a literal value.
type Const struct {
	Val bitfield.Value
}

func (e Const) Width() int     { return e.Val.Width() }
func (e Const) String() string { return e.Val.String() }

// FieldRef reads a header/metadata field.
type FieldRef struct {
	Inst, Field int
	W           int
	// Name is the source path for diagnostics, e.g. "hdr.ipv4.ttl".
	Name string
}

func (e FieldRef) Width() int { return e.W }
func (e FieldRef) String() string {
	if e.Name != "" {
		return e.Name
	}
	return fmt.Sprintf("#%d.%d", e.Inst, e.Field)
}

// LocalRef reads a local slot.
type LocalRef struct {
	Idx int
	W   int
}

func (e LocalRef) Width() int     { return e.W }
func (e LocalRef) String() string { return fmt.Sprintf("local%d", e.Idx) }

// ParamRef reads an action-data parameter of the running action.
type ParamRef struct {
	Idx int
	W   int
}

func (e ParamRef) Width() int     { return e.W }
func (e ParamRef) String() string { return fmt.Sprintf("param%d", e.Idx) }

// IsValid tests header validity.
type IsValid struct {
	Inst int
}

func (IsValid) Width() int       { return 1 }
func (e IsValid) String() string { return fmt.Sprintf("isValid(#%d)", e.Inst) }

// UnOp is a unary operator.
type UnOp int

// Unary operators.
const (
	OpNot UnOp = iota // logical !
	OpBitNot
	OpNeg
)

// Unary applies a unary operator.
type Unary struct {
	Op UnOp
	X  Expr
	W  int
}

func (e Unary) Width() int { return e.W }
func (e Unary) String() string {
	ops := [...]string{"!", "~", "-"}
	return ops[e.Op] + e.X.String()
}

// BinOp is a binary operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpLAnd
	OpLOr
)

var binOpNames = [...]string{
	"+", "-", "*", "&", "|", "^", "<<", ">>",
	"==", "!=", "<", "<=", ">", ">=", "&&", "||",
}

// String renders the operator.
func (op BinOp) String() string { return binOpNames[op] }

// Binary applies a binary operator. Comparison and logical results have
// width 1.
type Binary struct {
	Op   BinOp
	X, Y Expr
	W    int
}

func (e Binary) Width() int { return e.W }
func (e Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y)
}

// Ternary is cond ? a : b.
type Ternary struct {
	Cond, A, B Expr
	W          int
}

func (e Ternary) Width() int { return e.W }
func (e Ternary) String() string {
	return fmt.Sprintf("(%s ? %s : %s)", e.Cond, e.A, e.B)
}

// Dump renders a multi-line description of the program, used by cmd/p4c
// and tests.
func (p *Program) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, in := range p.Instances {
		kind := "header"
		if in.Metadata {
			kind = "metadata"
		}
		fmt.Fprintf(&b, "  %s #%d %s : %s (%d bits)\n", kind, in.Index, in.Name, in.Type.Name, in.Type.Bits)
	}
	if p.Parser != nil {
		fmt.Fprintf(&b, "  parser: %d states, start=%s\n", len(p.Parser.States), p.Parser.StateName(p.Parser.Start))
		for _, st := range p.Parser.States {
			fmt.Fprintf(&b, "    state %s: %d ops", st.Name, len(st.Ops))
			if len(st.Trans.Keys) == 0 {
				fmt.Fprintf(&b, " -> %s\n", p.Parser.StateName(st.Trans.Default))
			} else {
				fmt.Fprintf(&b, " select(%d keys) %d cases default -> %s\n",
					len(st.Trans.Keys), len(st.Trans.Cases), p.Parser.StateName(st.Trans.Default))
			}
		}
	}
	for _, c := range p.Controls {
		fmt.Fprintf(&b, "  control %s: %d actions, %d tables, %d apply stmts\n",
			c.Name, len(c.Actions), len(c.Tables), len(c.Apply))
		for _, t := range c.Tables {
			fmt.Fprintf(&b, "    table %s: %d keys, %d actions, size %d\n",
				t.Name, len(t.Keys), len(t.Actions), t.Size)
		}
	}
	if p.Deparser != nil {
		fmt.Fprintf(&b, "  deparser %s: %d stmts\n", p.Deparser.Name, len(p.Deparser.Stmts))
	}
	return b.String()
}
