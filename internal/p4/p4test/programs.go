// Package p4test provides the P4 sample programs shared by tests,
// benchmarks, and examples across the repository.
//
// Router is the program from the paper's §4 case study: an IPv4 router
// whose parser transitions to reject for any packet that is not well-formed
// IPv4 (bad version or truncated). On the reference target those packets
// are dropped; on the sdnet target the reject erratum forwards them.
package p4test

// Router is a v1model-style IPv4 router with a reject transition in the
// parser — the program used throughout the paper's evaluation.
const Router = `
// IPv4 router with strict parser validation.
const bit<16> TYPE_IPV4 = 0x0800;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<3>  flags;
    bit<13> fragOffset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdrChecksum;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}

parser RouterParser(packet_in pkt, out headers_t hdr, inout standard_metadata_t std_meta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.version, hdr.ipv4.ihl) {
            (4w4, 4w5): accept;
            default: reject;   // malformed IPv4 must be dropped
        }
    }
}

control RouterIngress(inout headers_t hdr, inout standard_metadata_t std_meta) {
    action drop() {
        mark_to_drop();
    }
    action ipv4_forward(bit<48> dstMac, bit<9> port) {
        std_meta.egress_spec = port;
        hdr.ethernet.srcAddr = hdr.ethernet.dstAddr;
        hdr.ethernet.dstAddr = dstMac;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = {
            hdr.ipv4.dstAddr: lpm;
        }
        actions = {
            ipv4_forward;
            drop;
            NoAction;
        }
        size = 1024;
        default_action = drop();
    }
    apply {
        if (hdr.ipv4.isValid()) {
            if (hdr.ipv4.ttl == 0) {
                mark_to_drop();
            } else {
                ipv4_lpm.apply();
            }
        } else {
            mark_to_drop();
        }
    }
}

control RouterDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

V1Switch(RouterParser(), RouterIngress(), RouterDeparser()) main;
`

// RouterNoTTLCheck is Router with the TTL==0 guard removed — a functional
// program bug used by the functional-testing scenarios: packets arriving
// with TTL 0 are forwarded with TTL 255 after the decrement wraps.
const RouterNoTTLCheck = `
const bit<16> TYPE_IPV4 = 0x0800;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<3>  flags;
    bit<13> fragOffset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdrChecksum;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}

parser RouterParser(packet_in pkt, out headers_t hdr, inout standard_metadata_t std_meta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.version, hdr.ipv4.ihl) {
            (4w4, 4w5): accept;
            default: reject;
        }
    }
}

control RouterIngress(inout headers_t hdr, inout standard_metadata_t std_meta) {
    action drop() {
        mark_to_drop();
    }
    action ipv4_forward(bit<48> dstMac, bit<9> port) {
        std_meta.egress_spec = port;
        hdr.ethernet.srcAddr = hdr.ethernet.dstAddr;
        hdr.ethernet.dstAddr = dstMac;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table ipv4_lpm {
        key = {
            hdr.ipv4.dstAddr: lpm;
        }
        actions = {
            ipv4_forward;
            drop;
            NoAction;
        }
        size = 1024;
        default_action = drop();
    }
    apply {
        if (hdr.ipv4.isValid()) {
            ipv4_lpm.apply();
        } else {
            mark_to_drop();
        }
    }
}

control RouterDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

V1Switch(RouterParser(), RouterIngress(), RouterDeparser()) main;
`

// L2Switch is a MAC-learning-style switch with an exact-match table.
const L2Switch = `
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

struct headers_t {
    ethernet_t ethernet;
}

parser SwParser(packet_in pkt, out headers_t hdr, inout standard_metadata_t std_meta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition accept;
    }
}

control SwIngress(inout headers_t hdr, inout standard_metadata_t std_meta) {
    action drop() {
        mark_to_drop();
    }
    action forward(bit<9> port) {
        std_meta.egress_spec = port;
    }
    table mac_table {
        key = {
            hdr.ethernet.dstAddr: exact;
        }
        actions = {
            forward;
            drop;
        }
        size = 4096;
        default_action = drop();
    }
    apply {
        mac_table.apply();
    }
}

control SwDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
    }
}

V1Switch(SwParser(), SwIngress(), SwDeparser()) main;
`

// Firewall is an ACL with a ternary table over the IPv4 5-tuple prefix
// fields, applied after an LPM routing step — exercises multi-table
// pipelines and ternary priorities.
const Firewall = `
const bit<16> TYPE_IPV4 = 0x0800;
const bit<8>  PROTO_TCP = 6;
const bit<8>  PROTO_UDP = 17;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<3>  flags;
    bit<13> fragOffset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdrChecksum;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header ports_t {
    bit<16> srcPort;
    bit<16> dstPort;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t     ipv4;
    ports_t    ports;
}

struct fw_meta_t {
    bit<1> acl_hit;
}

parser FwParser(packet_in pkt, out headers_t hdr, inout standard_metadata_t std_meta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            PROTO_TCP: parse_ports;
            PROTO_UDP: parse_ports;
            default: accept;
        }
    }
    state parse_ports {
        pkt.extract(hdr.ports);
        transition accept;
    }
}

control FwIngress(inout headers_t hdr, inout standard_metadata_t std_meta, inout fw_meta_t meta) {
    action drop() {
        mark_to_drop();
    }
    action allow() {
        meta.acl_hit = 1;
    }
    action route(bit<9> port) {
        std_meta.egress_spec = port;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    table acl {
        key = {
            hdr.ipv4.srcAddr: ternary;
            hdr.ipv4.dstAddr: ternary;
            hdr.ports.dstPort: ternary;
        }
        actions = {
            allow;
            drop;
        }
        size = 512;
        default_action = drop();
    }
    table routing {
        key = {
            hdr.ipv4.dstAddr: lpm;
        }
        actions = {
            route;
            drop;
        }
        size = 1024;
        default_action = drop();
    }
    apply {
        if (hdr.ipv4.isValid()) {
            acl.apply();
            if (meta.acl_hit == 1) {
                routing.apply();
            } else {
                mark_to_drop();
            }
        } else {
            mark_to_drop();
        }
    }
}

control FwDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.ports);
    }
}

V1Switch(FwParser(), FwIngress(), FwDeparser()) main;
`

// RouterSplit computes the same function as Router but with the forwarding
// decision split across two tables (next-hop selection, then egress
// rewrite). Used by the comparison use case: two specifications of the
// same program.
const RouterSplit = `
const bit<16> TYPE_IPV4 = 0x0800;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<3>  flags;
    bit<13> fragOffset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdrChecksum;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}

struct split_meta_t {
    bit<16> nexthop_id;
    bit<1>  routed;
}

parser SplitParser(packet_in pkt, out headers_t hdr, inout standard_metadata_t std_meta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.version, hdr.ipv4.ihl) {
            (4w4, 4w5): accept;
            default: reject;
        }
    }
}

control SplitIngress(inout headers_t hdr, inout standard_metadata_t std_meta, inout split_meta_t meta) {
    action drop() {
        mark_to_drop();
    }
    action set_nexthop(bit<16> nh) {
        meta.nexthop_id = nh;
        meta.routed = 1;
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
    }
    action set_egress(bit<48> dstMac, bit<9> port) {
        std_meta.egress_spec = port;
        hdr.ethernet.srcAddr = hdr.ethernet.dstAddr;
        hdr.ethernet.dstAddr = dstMac;
    }
    table lpm_nexthop {
        key = {
            hdr.ipv4.dstAddr: lpm;
        }
        actions = {
            set_nexthop;
            drop;
        }
        size = 1024;
        default_action = drop();
    }
    table nexthop_egress {
        key = {
            meta.nexthop_id: exact;
        }
        actions = {
            set_egress;
            drop;
        }
        size = 256;
        default_action = drop();
    }
    apply {
        if (hdr.ipv4.isValid()) {
            if (hdr.ipv4.ttl == 0) {
                mark_to_drop();
            } else {
                lpm_nexthop.apply();
                if (meta.routed == 1) {
                    nexthop_egress.apply();
                }
            }
        } else {
            mark_to_drop();
        }
    }
}

control SplitDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

V1Switch(SplitParser(), SplitIngress(), SplitDeparser()) main;
`

// Reflector bounces every packet back out the port it arrived on — the
// minimal program used by latency tests.
const Reflector = `
header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

struct headers_t {
    ethernet_t ethernet;
}

parser RParser(packet_in pkt, out headers_t hdr, inout standard_metadata_t std_meta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition accept;
    }
}

control RIngress(inout headers_t hdr, inout standard_metadata_t std_meta) {
    apply {
        std_meta.egress_spec = std_meta.ingress_port;
        bit<48> tmp = hdr.ethernet.srcAddr;
        hdr.ethernet.srcAddr = hdr.ethernet.dstAddr;
        hdr.ethernet.dstAddr = tmp;
    }
}

control RDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
    }
}

V1Switch(RParser(), RIngress(), RDeparser()) main;
`

// BigExactTable declares a single exact-match table far larger (4096
// entries) than a small test pipeline geometry can place — shared by
// the target placement tests and the architecture-check scenarios.
const BigExactTable = `
header k_t { bit<32> dst; } struct hs { k_t k; }
parser P(packet_in p, out hs hdr) { state start { p.extract(hdr.k); transition accept; } }
control I(inout hs hdr, inout standard_metadata_t sm) {
  action fwd(bit<9> port) { sm.egress_spec = port; }
  table big { key = { hdr.k.dst: exact; } actions = { fwd; NoAction; } size = 4096; }
  apply { big.apply(); }
}
control D(packet_out p, in hs hdr) { apply { p.emit(hdr.k); } }
S(P(), I(), D()) main;`

// RouterMagicDrop is Router with the TTL guard removed and one extra
// branch: packets whose srcAddr equals a 32-bit magic constant are
// dropped before routing. Uniform random mutation essentially never
// crosses a 32-bit equality, so reaching the branch requires constraint
// solving — the fixture behind the fuzzer's solver-probe tests and the
// differential-fuzzing scenarios.
const RouterMagicDrop = `
const bit<16> TYPE_IPV4 = 0x0800;

header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<3>  flags;
    bit<13> fragOffset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdrChecksum;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t     ipv4;
}

parser MagicParser(packet_in pkt, out headers_t hdr, inout standard_metadata_t std_meta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            TYPE_IPV4: parse_ipv4;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.version, hdr.ipv4.ihl) {
            (4w4, 4w5): accept;
            default: reject;
        }
    }
}

control MagicIngress(inout headers_t hdr, inout standard_metadata_t std_meta) {
    action drop() {
        mark_to_drop();
    }
    action ipv4_forward(bit<48> dstMac, bit<9> port) {
        std_meta.egress_spec = port;
        hdr.ethernet.dstAddr = dstMac;
    }
    table ipv4_lpm {
        key = {
            hdr.ipv4.dstAddr: lpm;
        }
        actions = {
            ipv4_forward;
            drop;
        }
        size = 64;
        default_action = drop();
    }
    apply {
        if (hdr.ipv4.isValid()) {
            if (hdr.ipv4.srcAddr == 0xdeadbeef) {
                mark_to_drop();
            } else {
                ipv4_lpm.apply();
            }
        } else {
            mark_to_drop();
        }
    }
}

control MagicDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
    }
}

V1Switch(MagicParser(), MagicIngress(), MagicDeparser()) main;
`
