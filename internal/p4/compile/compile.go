// Package compile lowers a parsed P4 program (package ast) to the executable
// IR (package ir).
//
// Compilation performs name resolution, type checking (bit widths, header
// validity operations, match kinds), header-instance flattening, constant
// folding of select keysets and default-action arguments, and pipeline
// assembly from the package instantiation. All errors carry source
// positions and are accumulated so one compile reports every problem.
package compile

import (
	"errors"
	"fmt"
	"math/big"

	"netdebug/internal/bitfield"
	"netdebug/internal/p4/ast"
	"netdebug/internal/p4/ir"
	"netdebug/internal/p4/parser"
	"netdebug/internal/p4/token"
)

// StdMetaTypeName is the builtin metadata struct every program may use.
const StdMetaTypeName = "standard_metadata_t"

// stdMetaFields mirrors the v1model intrinsic metadata NetDebug models.
// Order must match the ir.StdMeta* indices.
var stdMetaFields = []ir.FieldDef{
	{Name: "ingress_port", Width: 9},
	{Name: "egress_spec", Width: 9},
	{Name: "egress_port", Width: 9},
	{Name: "packet_length", Width: 32},
	{Name: "parser_error", Width: 8},
}

// Compile parses and compiles P4 source text in one step.
func Compile(src string) (*ir.Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	out, err := Lower(prog)
	if out != nil {
		out.Source = src
	}
	return out, err
}

// Lower compiles a parsed AST to IR.
func Lower(prog *ast.Program) (*ir.Program, error) {
	c := newCompiler(prog)
	out := c.run()
	if len(c.errs) > 0 {
		return nil, errors.Join(c.errs...)
	}
	return out, nil
}

type constVal struct {
	val   *big.Int
	width int // -1 if unsized
}

type compiler struct {
	src  *ast.Program
	errs []error

	headerDecls map[string]*ast.HeaderDecl
	structDecls map[string]*ast.StructDecl
	typedefs    map[string]*ast.TypeRef
	consts      map[string]constVal

	headerTypes map[string]*ir.HeaderType
	instances   []*ir.HeaderInst
	instByKey   map[string]int // "<structType>.<fieldPath>" or "<structType>"

	parserDecls  map[string]*ast.ParserDecl
	controlDecls map[string]*ast.ControlDecl

	out *ir.Program
}

func newCompiler(prog *ast.Program) *compiler {
	return &compiler{
		src:          prog,
		headerDecls:  map[string]*ast.HeaderDecl{},
		structDecls:  map[string]*ast.StructDecl{},
		typedefs:     map[string]*ast.TypeRef{},
		consts:       map[string]constVal{},
		headerTypes:  map[string]*ir.HeaderType{},
		instByKey:    map[string]int{},
		parserDecls:  map[string]*ast.ParserDecl{},
		controlDecls: map[string]*ast.ControlDecl{},
	}
}

func (c *compiler) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (c *compiler) run() *ir.Program {
	// Builtin standard metadata struct.
	c.structDecls[StdMetaTypeName] = &ast.StructDecl{Name: StdMetaTypeName}

	var inst *ast.InstantiationDecl
	for _, d := range c.src.Decls {
		switch d := d.(type) {
		case *ast.HeaderDecl:
			if _, dup := c.headerDecls[d.Name]; dup {
				c.errorf(d.P, "duplicate header %q", d.Name)
			}
			c.headerDecls[d.Name] = d
		case *ast.StructDecl:
			if _, dup := c.structDecls[d.Name]; dup {
				c.errorf(d.P, "duplicate struct %q", d.Name)
			}
			c.structDecls[d.Name] = d
		case *ast.TypedefDecl:
			c.typedefs[d.Name] = d.Type
		case *ast.ConstDecl:
			v, w := c.evalConst(d.Value)
			if v == nil {
				continue
			}
			declW := c.typeWidth(d.Type)
			if declW > 0 {
				w = declW
				v = truncBig(v, w)
			}
			c.consts[d.Name] = constVal{val: v, width: w}
		case *ast.ParserDecl:
			c.parserDecls[d.Name] = d
		case *ast.ControlDecl:
			c.controlDecls[d.Name] = d
		case *ast.InstantiationDecl:
			if inst != nil {
				c.errorf(d.P, "multiple package instantiations")
			}
			inst = d
		}
	}

	// Resolve header types up front.
	for name, hd := range c.headerDecls {
		c.headerTypes[name] = c.lowerHeaderType(hd)
	}

	parserName, controlNames, deparserName := c.pipelineRoles(inst)
	if len(c.errs) > 0 && parserName == "" {
		return nil
	}

	c.out = &ir.Program{Name: "main", StdMeta: -1}
	pd := c.parserDecls[parserName]
	if pd == nil {
		c.errorf(token.Pos{}, "no parser declaration found")
		return nil
	}
	// Flatten instances for every struct-typed parameter of every block in
	// the pipeline, so all blocks share instance indices.
	c.flattenParams(pd.Params)
	for _, cn := range controlNames {
		if cd := c.controlDecls[cn]; cd != nil {
			c.flattenParams(cd.Params)
		}
	}
	if dd := c.controlDecls[deparserName]; dd != nil {
		c.flattenParams(dd.Params)
	}
	c.out.Instances = c.instances

	c.out.Parser = c.lowerParser(pd)
	for _, cn := range controlNames {
		cd := c.controlDecls[cn]
		if cd == nil {
			c.errorf(token.Pos{}, "control %q not declared", cn)
			continue
		}
		c.out.Controls = append(c.out.Controls, c.lowerControl(cd))
	}
	if dd := c.controlDecls[deparserName]; dd != nil {
		c.out.Deparser = c.lowerDeparser(dd)
	} else {
		c.errorf(token.Pos{}, "no deparser control found")
	}

	// Collect header types in deterministic order.
	seen := map[string]bool{}
	for _, in := range c.instances {
		if !seen[in.Type.Name] {
			seen[in.Type.Name] = true
			c.out.HeaderTypes = append(c.out.HeaderTypes, in.Type)
		}
	}
	return c.out
}

// pipelineRoles determines which declarations play parser, match-action
// controls, and deparser. With an explicit instantiation the argument order
// is used; otherwise roles are inferred from signatures in source order.
func (c *compiler) pipelineRoles(inst *ast.InstantiationDecl) (parserName string, controls []string, deparserName string) {
	if inst != nil {
		for _, arg := range inst.Args {
			switch {
			case c.parserDecls[arg] != nil:
				if parserName != "" {
					c.errorf(inst.P, "multiple parsers in instantiation")
				}
				parserName = arg
			case c.controlDecls[arg] != nil:
				if c.isDeparser(c.controlDecls[arg]) {
					if deparserName != "" {
						c.errorf(inst.P, "multiple deparsers in instantiation")
					}
					deparserName = arg
				} else {
					controls = append(controls, arg)
				}
			default:
				c.errorf(inst.P, "instantiation argument %q is not a parser or control", arg)
			}
		}
		if parserName == "" {
			c.errorf(inst.P, "instantiation has no parser")
		}
		if deparserName == "" {
			c.errorf(inst.P, "instantiation has no deparser (control with a packet_out parameter)")
		}
		return parserName, controls, deparserName
	}
	// Fallback: infer from source order.
	for _, d := range c.src.Decls {
		switch d := d.(type) {
		case *ast.ParserDecl:
			if parserName == "" {
				parserName = d.Name
			}
		case *ast.ControlDecl:
			if c.isDeparser(d) {
				if deparserName == "" {
					deparserName = d.Name
				}
			} else {
				controls = append(controls, d.Name)
			}
		}
	}
	if parserName == "" {
		c.errorf(token.Pos{}, "program has no parser")
	}
	if deparserName == "" {
		c.errorf(token.Pos{}, "program has no deparser (control with a packet_out parameter)")
	}
	return parserName, controls, deparserName
}

func (c *compiler) isDeparser(d *ast.ControlDecl) bool {
	for _, p := range d.Params {
		if p.Type.Name == "packet_out" {
			return true
		}
	}
	return false
}

// resolveType chases typedefs to a base TypeRef.
func (c *compiler) resolveType(t *ast.TypeRef) *ast.TypeRef {
	for i := 0; i < 32; i++ {
		if t.IsBit() || t.Name == "bool" {
			return t
		}
		td, ok := c.typedefs[t.Name]
		if !ok {
			return t
		}
		t = td
	}
	c.errorf(t.P, "typedef cycle at %q", t.Name)
	return t
}

// typeWidth returns the bit width of a type usable as a value (bit<N>,
// bool, or typedef thereof), or 0.
func (c *compiler) typeWidth(t *ast.TypeRef) int {
	t = c.resolveType(t)
	if t.IsBit() {
		return t.Width
	}
	if t.Name == "bool" {
		return 1
	}
	return 0
}

func (c *compiler) lowerHeaderType(hd *ast.HeaderDecl) *ir.HeaderType {
	ht := &ir.HeaderType{Name: hd.Name}
	off := 0
	for _, f := range hd.Fields {
		w := c.typeWidth(f.Type)
		if w <= 0 {
			c.errorf(f.P, "header field %s.%s must have bit<N> type", hd.Name, f.Name)
			w = 1
		}
		ht.Fields = append(ht.Fields, ir.FieldDef{Name: f.Name, Width: w, Offset: off})
		off += w
	}
	ht.Bits = off
	if off%8 != 0 {
		c.errorf(hd.P, "header %q is %d bits; headers must be byte-aligned", hd.Name, off)
	}
	return ht
}

// flattenParams creates header instances for every struct-typed parameter.
// Instances are keyed by struct type and field path so that the same
// headers struct passed to multiple blocks maps to the same instances.
func (c *compiler) flattenParams(params []*ast.Param) {
	for _, p := range params {
		t := c.resolveType(p.Type)
		if t.IsBit() || t.Name == "bool" || t.Name == "packet_in" || t.Name == "packet_out" {
			continue
		}
		if t.Name == StdMetaTypeName {
			c.ensureStdMeta()
			continue
		}
		if sd, ok := c.structDecls[t.Name]; ok {
			c.flattenStruct(sd, t.Name, "")
			continue
		}
		if _, ok := c.headerDecls[t.Name]; ok {
			c.errorf(p.P, "parameter %q: bare header parameters are not supported; wrap %q in a struct", p.Name, t.Name)
			continue
		}
		c.errorf(p.P, "parameter %q has unknown type %q", p.Name, t.Name)
	}
}

func (c *compiler) ensureStdMeta() int {
	if idx, ok := c.instByKey[StdMetaTypeName]; ok {
		return idx
	}
	ht := &ir.HeaderType{Name: StdMetaTypeName}
	off := 0
	for _, f := range stdMetaFields {
		ht.Fields = append(ht.Fields, ir.FieldDef{Name: f.Name, Width: f.Width, Offset: off})
		off += f.Width
	}
	ht.Bits = off
	idx := c.addInstance("standard_metadata", ht, true, StdMetaTypeName)
	c.out.StdMeta = idx
	return idx
}

func (c *compiler) addInstance(name string, ht *ir.HeaderType, metadata bool, key string) int {
	idx := len(c.instances)
	c.instances = append(c.instances, &ir.HeaderInst{
		Name: name, Type: ht, Index: idx, Metadata: metadata,
	})
	c.instByKey[key] = idx
	return idx
}

// flattenStruct walks a struct type, creating one instance per header field
// and one synthetic metadata instance for any bit/bool fields. display is
// the dotted field path from the top-level struct ("" at the top), used for
// diagnostic instance names.
func (c *compiler) flattenStruct(sd *ast.StructDecl, key, display string) {
	if _, done := c.instByKey[key+"\x00done"]; done {
		return
	}
	c.instByKey[key+"\x00done"] = -1
	join := func(base, name string) string {
		if base == "" {
			return name
		}
		return base + "." + name
	}
	var metaFields []ir.FieldDef
	for _, f := range sd.Fields {
		ft := c.resolveType(f.Type)
		switch {
		case ft.IsBit() || ft.Name == "bool":
			metaFields = append(metaFields, ir.FieldDef{Name: f.Name, Width: c.typeWidth(ft)})
		case c.headerDecls[ft.Name] != nil:
			fkey := key + "." + f.Name
			if _, exists := c.instByKey[fkey]; !exists {
				c.addInstance(join(display, f.Name), c.headerTypes[ft.Name], false, fkey)
			}
		case c.structDecls[ft.Name] != nil:
			c.flattenStruct(c.structDecls[ft.Name], key+"."+f.Name, join(display, f.Name))
		default:
			c.errorf(f.P, "struct field %s.%s has unknown type %q", sd.Name, f.Name, ft.Name)
		}
	}
	if len(metaFields) > 0 {
		ht := &ir.HeaderType{Name: sd.Name + ".meta"}
		off := 0
		for _, f := range metaFields {
			ht.Fields = append(ht.Fields, ir.FieldDef{Name: f.Name, Width: f.Width, Offset: off})
			off += f.Width
		}
		ht.Bits = off
		name := display
		if name == "" {
			name = sd.Name
		}
		if _, exists := c.instByKey[key+"\x00meta"]; !exists {
			c.addInstance(name, ht, true, key+"\x00meta")
		}
	}
}

// truncBig truncates v to w bits.
func truncBig(v *big.Int, w int) *big.Int {
	mask := new(big.Int).Lsh(big.NewInt(1), uint(w))
	mask.Sub(mask, big.NewInt(1))
	return new(big.Int).And(v, mask)
}

// bigToValue converts a big.Int constant to a bitfield.Value of width w.
func bigToValue(v *big.Int, w int) bitfield.Value {
	t := truncBig(v, w)
	lo := new(big.Int).And(t, new(big.Int).SetUint64(^uint64(0))).Uint64()
	hi := new(big.Int).Rsh(t, 64).Uint64()
	return bitfield.New128(hi, lo, w)
}

// evalConst folds a constant expression, returning its value and width
// (-1 when unsized). Errors are reported and (nil, 0) returned.
func (c *compiler) evalConst(e ast.Expr) (*big.Int, int) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, e.Width
	case *ast.BoolLit:
		if e.Value {
			return big.NewInt(1), 1
		}
		return big.NewInt(0), 1
	case *ast.PathExpr:
		if len(e.Parts) == 1 {
			if cv, ok := c.consts[e.Parts[0]]; ok {
				return cv.val, cv.width
			}
		}
		c.errorf(e.P, "%s is not a compile-time constant", e)
		return nil, 0
	case *ast.UnaryExpr:
		v, w := c.evalConst(e.X)
		if v == nil {
			return nil, 0
		}
		switch e.Op {
		case token.MINUS:
			return new(big.Int).Neg(v), w
		case token.TILDE:
			if w <= 0 {
				c.errorf(e.P, "~ on unsized constant")
				return nil, 0
			}
			return new(big.Int).Sub(new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(w)), big.NewInt(1)), v), w
		case token.NOT:
			if v.Sign() == 0 {
				return big.NewInt(1), 1
			}
			return big.NewInt(0), 1
		}
	case *ast.BinaryExpr:
		x, wx := c.evalConst(e.X)
		y, wy := c.evalConst(e.Y)
		if x == nil || y == nil {
			return nil, 0
		}
		w := wx
		if w < 0 {
			w = wy
		}
		out := new(big.Int)
		switch e.Op {
		case token.PLUS:
			out.Add(x, y)
		case token.MINUS:
			out.Sub(x, y)
		case token.STAR:
			out.Mul(x, y)
		case token.AND:
			out.And(x, y)
		case token.OR:
			out.Or(x, y)
		case token.XOR:
			out.Xor(x, y)
		case token.SHL:
			out.Lsh(x, uint(y.Uint64()))
		case token.SHR:
			out.Rsh(x, uint(y.Uint64()))
		default:
			c.errorf(e.P, "operator %s not allowed in constant expression", e.Op)
			return nil, 0
		}
		if w > 0 {
			out = truncBig(out, w)
		}
		return out, w
	}
	c.errorf(e.Pos(), "expression is not a compile-time constant")
	return nil, 0
}
