package compile

import (
	"strings"
	"testing"

	"netdebug/internal/p4/ir"
	"netdebug/internal/p4/p4test"
)

func compileOK(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile failed: %v", err)
	}
	return prog
}

func TestCompileRouter(t *testing.T) {
	prog := compileOK(t, p4test.Router)

	eth := prog.Instance("ethernet")
	if eth == nil {
		// instance display names use the struct type when no param prefix
		t.Fatalf("no ethernet instance; have %v", names(prog))
	}
	if eth.Type.Bits != 112 {
		t.Errorf("ethernet width = %d, want 112", eth.Type.Bits)
	}
	ipv4 := prog.Instance("ipv4")
	if ipv4 == nil || ipv4.Type.Bits != 160 {
		t.Fatalf("ipv4 instance missing or wrong width: %+v", ipv4)
	}
	if prog.StdMeta < 0 {
		t.Fatal("standard_metadata not allocated")
	}

	// Parser shape: start, parse_ipv4.
	if len(prog.Parser.States) != 2 {
		t.Fatalf("parser has %d states", len(prog.Parser.States))
	}
	start := prog.Parser.States[prog.Parser.Start]
	if start.Name != "start" || len(start.Ops) != 1 {
		t.Fatalf("start state: %+v", start)
	}
	if len(start.Trans.Cases) != 1 || start.Trans.Default != ir.StateAccept {
		t.Fatalf("start transition: %+v", start.Trans)
	}
	pi := prog.Parser.States[start.Trans.Cases[0].Next]
	if pi.Name != "parse_ipv4" {
		t.Fatalf("case target = %s", pi.Name)
	}
	// parse_ipv4: (4,5) -> accept, default -> reject.
	if pi.Trans.Default != ir.StateReject {
		t.Errorf("parse_ipv4 default = %d, want reject", pi.Trans.Default)
	}
	if len(pi.Trans.Cases) != 1 || pi.Trans.Cases[0].Next != ir.StateAccept {
		t.Fatalf("parse_ipv4 cases: %+v", pi.Trans.Cases)
	}
	if len(pi.Trans.Keys) != 2 {
		t.Fatalf("parse_ipv4 select keys = %d", len(pi.Trans.Keys))
	}

	// Control: one table, three declared actions + NoAction.
	if len(prog.Controls) != 1 {
		t.Fatalf("controls = %d", len(prog.Controls))
	}
	ctl := prog.Controls[0]
	if ctl.Name != "RouterIngress" {
		t.Errorf("control name = %q", ctl.Name)
	}
	if len(ctl.Actions) != 3 { // NoAction, drop, ipv4_forward
		t.Errorf("actions = %d, want 3", len(ctl.Actions))
	}
	tbl := prog.Table("ipv4_lpm")
	if tbl == nil {
		t.Fatal("no ipv4_lpm table")
	}
	if tbl.Size != 1024 || len(tbl.Keys) != 1 || tbl.Keys[0].Kind != ir.MatchLPM {
		t.Fatalf("table shape: %+v", tbl)
	}
	if tbl.Keys[0].Expr.Width() != 32 {
		t.Errorf("lpm key width = %d", tbl.Keys[0].Expr.Width())
	}
	if tbl.Default.Action.Name != "drop" {
		t.Errorf("default action = %q", tbl.Default.Action.Name)
	}
	if len(tbl.Actions) != 3 {
		t.Errorf("table actions = %d", len(tbl.Actions))
	}

	// Deparser: two emits.
	if prog.Deparser == nil || len(prog.Deparser.Stmts) != 2 {
		t.Fatalf("deparser: %+v", prog.Deparser)
	}

	// ipv4_forward action: 2 params, 4 statements.
	var fwd *ir.Action
	for _, a := range ctl.Actions {
		if a.Name == "ipv4_forward" {
			fwd = a
		}
	}
	if fwd == nil || len(fwd.Params) != 2 || len(fwd.Body) != 4 {
		t.Fatalf("ipv4_forward: %+v", fwd)
	}
	if fwd.Params[0].Width != 48 || fwd.Params[1].Width != 9 {
		t.Errorf("param widths: %+v", fwd.Params)
	}
}

func names(p *ir.Program) []string {
	var out []string
	for _, in := range p.Instances {
		out = append(out, in.Name)
	}
	return out
}

func TestCompileAllSamples(t *testing.T) {
	samples := map[string]string{
		"Router":      p4test.Router,
		"RouterNoTTL": p4test.RouterNoTTLCheck,
		"L2Switch":    p4test.L2Switch,
		"Firewall":    p4test.Firewall,
		"RouterSplit": p4test.RouterSplit,
		"Reflector":   p4test.Reflector,
	}
	for name, src := range samples {
		t.Run(name, func(t *testing.T) {
			prog := compileOK(t, src)
			if prog.Parser == nil || prog.Deparser == nil || len(prog.Controls) == 0 {
				t.Fatalf("incomplete pipeline: %s", prog.Dump())
			}
		})
	}
}

func TestCompileFirewallMeta(t *testing.T) {
	prog := compileOK(t, p4test.Firewall)
	// fw_meta_t flattens into a metadata instance.
	var meta *ir.HeaderInst
	for _, in := range prog.Instances {
		if in.Metadata && in.Type.Name == "fw_meta_t.meta" {
			meta = in
		}
	}
	if meta == nil {
		t.Fatalf("fw_meta_t not flattened: %v", names(prog))
	}
	if len(meta.Type.Fields) != 1 || meta.Type.Fields[0].Width != 1 {
		t.Fatalf("acl_hit field: %+v", meta.Type.Fields)
	}
	acl := prog.Table("acl")
	if acl == nil || len(acl.Keys) != 3 {
		t.Fatalf("acl table: %+v", acl)
	}
	for _, k := range acl.Keys {
		if k.Kind != ir.MatchTernary {
			t.Errorf("acl key kind = %v", k.Kind)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{
			"unaligned header",
			`header h_t { bit<3> x; } struct hs { h_t h; }
			 parser P(packet_in p, out hs hdr) { state start { transition accept; } }
			 control D(packet_out p, in hs hdr) { apply {} }
			 S(P(), D()) main;`,
			"byte-aligned",
		},
		{
			"undefined state",
			`header h_t { bit<8> x; } struct hs { h_t h; }
			 parser P(packet_in p, out hs hdr) { state start { transition nowhere; } }
			 control D(packet_out p, in hs hdr) { apply {} }
			 S(P(), D()) main;`,
			"undefined parser state",
		},
		{
			"width mismatch assign",
			`header h_t { bit<8> x; bit<16> y; } struct hs { h_t h; }
			 parser P(packet_in p, out hs hdr) { state start { transition accept; } }
			 control I(inout hs hdr) { apply { hdr.h.x = hdr.h.y; } }
			 control D(packet_out p, in hs hdr) { apply {} }
			 S(P(), I(), D()) main;`,
			"cannot assign 16-bit value to 8-bit field",
		},
		{
			"unknown table",
			`header h_t { bit<8> x; } struct hs { h_t h; }
			 parser P(packet_in p, out hs hdr) { state start { transition accept; } }
			 control I(inout hs hdr) { apply { ghost.apply(); } }
			 control D(packet_out p, in hs hdr) { apply {} }
			 S(P(), I(), D()) main;`,
			"unknown table",
		},
		{
			"two lpm keys",
			`header h_t { bit<8> x; bit<8> y; } struct hs { h_t h; }
			 parser P(packet_in p, out hs hdr) { state start { transition accept; } }
			 control I(inout hs hdr) {
			   action a() {}
			   table t { key = { hdr.h.x: lpm; hdr.h.y: lpm; } actions = { a; } }
			   apply { t.apply(); } }
			 control D(packet_out p, in hs hdr) { apply {} }
			 S(P(), I(), D()) main;`,
			"more than one lpm key",
		},
		{
			"no deparser",
			`header h_t { bit<8> x; } struct hs { h_t h; }
			 parser P(packet_in p, out hs hdr) { state start { transition accept; } }
			 control I(inout hs hdr) { apply {} }
			 S(P(), I()) main;`,
			"no deparser",
		},
		{
			"extract outside parser",
			`header h_t { bit<8> x; } struct hs { h_t h; }
			 parser P(packet_in p, out hs hdr) { state start { transition accept; } }
			 control D(packet_out pkt, in hs hdr) { apply { pkt.extract(hdr.h); } }
			 S(P(), D()) main;`,
			"extract",
		},
		{
			"isValid on metadata",
			`header h_t { bit<8> x; } struct hs { h_t h; }
			 parser P(packet_in p, out hs hdr, inout standard_metadata_t sm) { state start { transition accept; } }
			 control I(inout hs hdr, inout standard_metadata_t sm) {
			   apply { if (sm.isValid()) { mark_to_drop(); } } }
			 control D(packet_out p, in hs hdr) { apply {} }
			 S(P(), I(), D()) main;`,
			"isValid",
		},
		{
			"unsized literal",
			`header h_t { bit<8> x; } struct hs { h_t h; }
			 parser P(packet_in p, out hs hdr) {
			   state start { transition select(5) { 1: accept; default: reject; } } }
			 control D(packet_out p, in hs hdr) { apply {} }
			 S(P(), D()) main;`,
			"width",
		},
		{
			"keyset arity",
			`header h_t { bit<8> x; bit<8> y; } struct hs { h_t h; }
			 parser P(packet_in p, out hs hdr) {
			   state start {
			     p.extract(hdr.h);
			     transition select(hdr.h.x, hdr.h.y) { 8w1: accept; default: reject; } } }
			 control D(packet_out p, in hs hdr) { apply {} }
			 S(P(), D()) main;`,
			"keysets",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestConstFolding(t *testing.T) {
	src := `
	const bit<16> A = 0x0800;
	const bit<16> B = A + 1;
	const bit<16> C = (B << 4) & 0xff00;
	header h_t { bit<16> x; } struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) {
	  state start {
	    p.extract(hdr.h);
	    transition select(hdr.h.x) { C: accept; default: reject; }
	  }
	}
	control D(packet_out p, in hs hdr) { apply {} }
	S(P(), D()) main;`
	prog := compileOK(t, src)
	cs := prog.Parser.States[prog.Parser.Start].Trans.Cases
	if len(cs) != 1 {
		t.Fatalf("cases: %+v", cs)
	}
	// C = ((0x801) << 4) & 0xff00 = 0x8010 & 0xff00 = 0x8000
	if got := cs[0].Values[0].Uint64(); got != 0x8000 {
		t.Fatalf("folded const = %#x, want 0x8000", got)
	}
}

func TestSelectMaskKeyset(t *testing.T) {
	src := `
	header h_t { bit<8> x; } struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) {
	  state start {
	    p.extract(hdr.h);
	    transition select(hdr.h.x) {
	      8w0x40 &&& 8w0xF0: accept;
	      default: reject;
	    }
	  }
	}
	control D(packet_out p, in hs hdr) { apply {} }
	S(P(), D()) main;`
	prog := compileOK(t, src)
	cs := prog.Parser.States[prog.Parser.Start].Trans.Cases
	if len(cs) != 1 || cs[0].Values[0].Uint64() != 0x40 || cs[0].Masks[0].Uint64() != 0xf0 {
		t.Fatalf("mask keyset: %+v", cs)
	}
}

func TestTypedef(t *testing.T) {
	src := `
	typedef bit<32> ip_addr_t;
	header h_t { ip_addr_t a; } struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) { state start { p.extract(hdr.h); transition accept; } }
	control D(packet_out p, in hs hdr) { apply { p.emit(hdr.h); } }
	S(P(), D()) main;`
	prog := compileOK(t, src)
	if prog.Instances[0].Type.Fields[0].Width != 32 {
		t.Fatalf("typedef width: %+v", prog.Instances[0].Type.Fields)
	}
}

func TestLocalsAndDirectActionCall(t *testing.T) {
	src := `
	header h_t { bit<8> x; } struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) { state start { p.extract(hdr.h); transition accept; } }
	control I(inout hs hdr, inout standard_metadata_t sm) {
	  action bump(bit<8> amount) { hdr.h.x = hdr.h.x + amount; }
	  apply {
	    bit<8> twice = hdr.h.x + hdr.h.x;
	    if (twice > 100) {
	      bump(8w5);
	    }
	    sm.egress_spec = 9w1;
	  }
	}
	control D(packet_out p, in hs hdr) { apply { p.emit(hdr.h); } }
	S(P(), I(), D()) main;`
	prog := compileOK(t, src)
	ctl := prog.Controls[0]
	if ctl.NumLocals != 1 {
		t.Fatalf("locals = %d", ctl.NumLocals)
	}
	// Apply: AssignLocal, If, AssignField
	if len(ctl.Apply) != 3 {
		t.Fatalf("apply stmts = %d: %v", len(ctl.Apply), ctl.Apply)
	}
	ifStmt, ok := ctl.Apply[1].(*ir.If)
	if !ok {
		t.Fatalf("stmt[1] = %T", ctl.Apply[1])
	}
	call, ok := ifStmt.Then[0].(*ir.CallAction)
	if !ok || call.Action.Name != "bump" || len(call.Args) != 1 {
		t.Fatalf("then = %+v", ifStmt.Then)
	}
}

func TestDumpIsStable(t *testing.T) {
	prog := compileOK(t, p4test.Router)
	d := prog.Dump()
	for _, want := range []string{"ipv4", "table ipv4_lpm", "state parse_ipv4", "deparser"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func BenchmarkCompileRouter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile(p4test.Router); err != nil {
			b.Fatal(err)
		}
	}
}
