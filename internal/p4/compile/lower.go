package compile

import (
	"math/big"

	"netdebug/internal/bitfield"
	"netdebug/internal/p4/ast"
	"netdebug/internal/p4/ir"
	"netdebug/internal/p4/token"
)

// stmtCtx restricts which statements are legal in a body.
type stmtCtx int

const (
	ctxParserState stmtCtx = iota
	ctxAction
	ctxApply
	ctxDeparser
)

// scope is the name-resolution environment for one parser/control block.
type scope struct {
	c        *compiler
	params   map[string]*ast.TypeRef // param name -> declared type
	pktParam string                  // name of the packet_in/packet_out param
	ctl      *ir.Control             // non-nil inside controls
	tables   map[string]*ir.Table
	actions  map[string]*ir.Action
	locals   map[string]localSlot
	// action params, set while compiling an action body
	actionParams map[string]paramSlot
}

type localSlot struct {
	idx, width int
}

type paramSlot struct {
	idx, width int
}

func (c *compiler) newScope(params []*ast.Param) *scope {
	s := &scope{
		c:       c,
		params:  map[string]*ast.TypeRef{},
		tables:  map[string]*ir.Table{},
		actions: map[string]*ir.Action{},
		locals:  map[string]localSlot{},
	}
	for _, p := range params {
		t := c.resolveType(p.Type)
		if t.Name == "packet_in" || t.Name == "packet_out" {
			s.pktParam = p.Name
			continue
		}
		s.params[p.Name] = t
	}
	return s
}

// resolveInstance resolves a dotted path to a header/metadata instance.
// It returns the instance index and the remaining path parts (field name,
// possibly empty). ok is false if the path does not reach an instance.
func (s *scope) resolveInstance(parts []string) (idx int, rest []string, ok bool) {
	t, isParam := s.params[parts[0]]
	if !isParam {
		return 0, nil, false
	}
	if t.Name == StdMetaTypeName {
		return s.c.ensureStdMeta(), parts[1:], true
	}
	key := t.Name
	i := 1
	for i < len(parts) {
		fkey := key + "." + parts[i]
		if inst, exists := s.c.instByKey[fkey]; exists {
			return inst, parts[i+1:], true
		}
		sd, isStruct := s.c.structDecls[key]
		if !isStruct {
			break
		}
		// Descend into nested struct fields.
		var fieldType *ast.TypeRef
		for _, f := range sd.Fields {
			if f.Name == parts[i] {
				fieldType = s.c.resolveType(f.Type)
				break
			}
		}
		if fieldType == nil || s.c.structDecls[fieldType.Name] == nil {
			break
		}
		key = fkey
		i++
		// nested struct instances are keyed by path
		if _, exists := s.c.instByKey[key+"\x00meta"]; exists && i == len(parts)-1 {
			if inst, ok2 := s.c.instByKey[key+"\x00meta"]; ok2 {
				return inst, parts[i:], true
			}
		}
	}
	// Metadata struct: the instance is the struct itself.
	if inst, exists := s.c.instByKey[key+"\x00meta"]; exists {
		return inst, parts[1:], true
	}
	return 0, nil, false
}

// resolveValue resolves a path to a readable expression.
func (s *scope) resolveValue(p *ast.PathExpr) ir.Expr {
	parts := p.Parts
	if len(parts) == 1 {
		name := parts[0]
		if ps, ok := s.actionParams[name]; ok {
			return ir.ParamRef{Idx: ps.idx, W: ps.width}
		}
		if ls, ok := s.locals[name]; ok {
			return ir.LocalRef{Idx: ls.idx, W: ls.width}
		}
		if cv, ok := s.c.consts[name]; ok {
			w := cv.width
			if w <= 0 {
				w = 32
			}
			return ir.Const{Val: bigToValue(cv.val, w)}
		}
		s.c.errorf(p.P, "undefined name %q", name)
		return nil
	}
	idx, rest, ok := s.resolveInstance(parts)
	if !ok {
		s.c.errorf(p.P, "cannot resolve %s", p)
		return nil
	}
	if len(rest) != 1 {
		s.c.errorf(p.P, "%s does not name a field", p)
		return nil
	}
	inst := s.c.instances[idx]
	fi := inst.Type.FieldIndex(rest[0])
	if fi < 0 {
		s.c.errorf(p.P, "%s has no field %q", inst.Name, rest[0])
		return nil
	}
	return ir.FieldRef{Inst: idx, Field: fi, W: inst.Type.Fields[fi].Width, Name: p.String()}
}

// isUnsizedLit reports whether e is an integer literal (possibly negated)
// without an explicit width.
func isUnsizedLit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Width < 0
	case *ast.UnaryExpr:
		return e.Op == token.MINUS && isUnsizedLit(e.X)
	}
	return false
}

// compileExpr lowers an expression. want is the width expected by context
// (0 when unknown); it sizes unsized integer literals.
func (s *scope) compileExpr(e ast.Expr, want int) ir.Expr {
	switch e := e.(type) {
	case *ast.IntLit:
		w := e.Width
		if w < 0 {
			w = want
		}
		if w <= 0 {
			s.c.errorf(e.P, "cannot determine width of literal %s; use a sized literal like 8w%s", e.Value, e.Value)
			return nil
		}
		return ir.Const{Val: bigToValue(e.Value, w)}
	case *ast.BoolLit:
		v := uint64(0)
		if e.Value {
			v = 1
		}
		return ir.Const{Val: bitfield.New(v, 1)}
	case *ast.PathExpr:
		return s.resolveValue(e)
	case *ast.CallExpr:
		return s.compileCallExpr(e)
	case *ast.UnaryExpr:
		return s.compileUnary(e, want)
	case *ast.BinaryExpr:
		return s.compileBinary(e, want)
	case *ast.TernaryExpr:
		cond := s.compileExpr(e.Cond, 1)
		a, b := s.compilePair(e.A, e.B, want, e.P)
		if cond == nil || a == nil || b == nil {
			return nil
		}
		return ir.Ternary{Cond: cond, A: a, B: b, W: a.Width()}
	}
	s.c.errorf(e.Pos(), "unsupported expression")
	return nil
}

func (s *scope) compileUnary(e *ast.UnaryExpr, want int) ir.Expr {
	switch e.Op {
	case token.NOT:
		x := s.compileExpr(e.X, 1)
		if x == nil {
			return nil
		}
		return ir.Unary{Op: ir.OpNot, X: x, W: 1}
	case token.TILDE:
		x := s.compileExpr(e.X, want)
		if x == nil {
			return nil
		}
		return ir.Unary{Op: ir.OpBitNot, X: x, W: x.Width()}
	case token.MINUS:
		x := s.compileExpr(e.X, want)
		if x == nil {
			return nil
		}
		return ir.Unary{Op: ir.OpNeg, X: x, W: x.Width()}
	}
	s.c.errorf(e.P, "unsupported unary operator %s", e.Op)
	return nil
}

// compilePair compiles two operands that must agree on width, letting an
// unsized literal adopt the other operand's width.
func (s *scope) compilePair(xe, ye ast.Expr, want int, pos token.Pos) (x, y ir.Expr) {
	switch {
	case isUnsizedLit(xe) && !isUnsizedLit(ye):
		y = s.compileExpr(ye, want)
		if y == nil {
			return nil, nil
		}
		x = s.compileExpr(xe, y.Width())
	case isUnsizedLit(ye) && !isUnsizedLit(xe):
		x = s.compileExpr(xe, want)
		if x == nil {
			return nil, nil
		}
		y = s.compileExpr(ye, x.Width())
	default:
		x = s.compileExpr(xe, want)
		if x == nil {
			return nil, nil
		}
		y = s.compileExpr(ye, x.Width())
	}
	if x == nil || y == nil {
		return nil, nil
	}
	if x.Width() != y.Width() {
		s.c.errorf(pos, "width mismatch: %s is %d bits but %s is %d bits",
			x, x.Width(), y, y.Width())
		return nil, nil
	}
	return x, y
}

var binOpMap = map[token.Kind]ir.BinOp{
	token.PLUS: ir.OpAdd, token.MINUS: ir.OpSub, token.STAR: ir.OpMul,
	token.AND: ir.OpAnd, token.OR: ir.OpOr, token.XOR: ir.OpXor,
	token.SHL: ir.OpShl, token.SHR: ir.OpShr,
	token.EQ: ir.OpEq, token.NEQ: ir.OpNeq,
	token.LT: ir.OpLt, token.LE: ir.OpLe, token.GT: ir.OpGt, token.GE: ir.OpGe,
	token.LAND: ir.OpLAnd, token.LOR: ir.OpLOr,
}

func (s *scope) compileBinary(e *ast.BinaryExpr, want int) ir.Expr {
	op, ok := binOpMap[e.Op]
	if !ok {
		s.c.errorf(e.P, "unsupported operator %s", e.Op)
		return nil
	}
	switch op {
	case ir.OpLAnd, ir.OpLOr:
		x := s.compileExpr(e.X, 1)
		y := s.compileExpr(e.Y, 1)
		if x == nil || y == nil {
			return nil
		}
		return ir.Binary{Op: op, X: x, Y: y, W: 1}
	case ir.OpEq, ir.OpNeq, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		x, y := s.compilePair(e.X, e.Y, 0, e.P)
		if x == nil {
			return nil
		}
		return ir.Binary{Op: op, X: x, Y: y, W: 1}
	case ir.OpShl, ir.OpShr:
		x := s.compileExpr(e.X, want)
		if x == nil {
			return nil
		}
		y := s.compileExpr(e.Y, 8)
		if y == nil {
			return nil
		}
		return ir.Binary{Op: op, X: x, Y: y, W: x.Width()}
	default:
		x, y := s.compilePair(e.X, e.Y, want, e.P)
		if x == nil {
			return nil
		}
		return ir.Binary{Op: op, X: x, Y: y, W: x.Width()}
	}
}

// compileCallExpr handles calls in expression position: isValid() and
// table.apply().hit are not supported; only isValid.
func (s *scope) compileCallExpr(e *ast.CallExpr) ir.Expr {
	parts := e.Target.Parts
	method := parts[len(parts)-1]
	if method == "isValid" && len(parts) >= 2 {
		idx, rest, ok := s.resolveInstance(parts[:len(parts)-1])
		if !ok || len(rest) != 0 {
			s.c.errorf(e.P, "isValid on %s: not a header instance", e.Target)
			return nil
		}
		if len(e.Args) != 0 {
			s.c.errorf(e.P, "isValid takes no arguments")
		}
		if s.c.instances[idx].Metadata {
			s.c.errorf(e.P, "isValid on metadata %s", s.c.instances[idx].Name)
		}
		return ir.IsValid{Inst: idx}
	}
	s.c.errorf(e.P, "call %s not allowed in expression", e.Target)
	return nil
}

// compileStmts lowers a statement list for the given context.
func (s *scope) compileStmts(stmts []ast.Stmt, ctx stmtCtx) []ir.Stmt {
	var out []ir.Stmt
	for _, st := range stmts {
		if lowered := s.compileStmt(st, ctx); lowered != nil {
			out = append(out, lowered...)
		}
	}
	return out
}

func (s *scope) compileStmt(st ast.Stmt, ctx stmtCtx) []ir.Stmt {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return s.compileStmts(st.Stmts, ctx)
	case *ast.AssignStmt:
		return s.compileAssign(st, ctx)
	case *ast.CallStmt:
		return s.compileCallStmt(st, ctx)
	case *ast.IfStmt:
		if ctx == ctxParserState {
			s.c.errorf(st.P, "if statements are not allowed in parser states; use select")
			return nil
		}
		cond := s.compileExpr(st.Cond, 1)
		if cond == nil {
			return nil
		}
		node := &ir.If{Cond: cond}
		if st.Then != nil {
			node.Then = s.compileStmt(st.Then, ctx)
		}
		if st.Else != nil {
			node.Else = s.compileStmt(st.Else, ctx)
		}
		return []ir.Stmt{node}
	case *ast.VarDecl:
		return s.compileVarDecl(st, ctx)
	case *ast.ReturnStmt:
		if ctx == ctxParserState {
			s.c.errorf(st.P, "return is not allowed in parser states")
			return nil
		}
		return []ir.Stmt{&ir.Return{}}
	}
	s.c.errorf(st.Pos(), "unsupported statement")
	return nil
}

func (s *scope) compileVarDecl(st *ast.VarDecl, ctx stmtCtx) []ir.Stmt {
	if s.ctl == nil {
		s.c.errorf(st.P, "local variables are only supported inside controls")
		return nil
	}
	w := s.c.typeWidth(st.Type)
	if w <= 0 {
		s.c.errorf(st.P, "local %q must have bit<N> or bool type", st.Name)
		return nil
	}
	if _, dup := s.locals[st.Name]; dup {
		s.c.errorf(st.P, "duplicate local %q", st.Name)
		return nil
	}
	slot := localSlot{idx: s.ctl.NumLocals, width: w}
	s.ctl.NumLocals++
	s.locals[st.Name] = slot
	if st.Init == nil {
		return nil
	}
	rhs := s.compileExpr(st.Init, w)
	if rhs == nil {
		return nil
	}
	if rhs.Width() != w {
		s.c.errorf(st.P, "cannot initialize %d-bit local %q from %d-bit value", w, st.Name, rhs.Width())
		return nil
	}
	return []ir.Stmt{&ir.AssignLocal{Idx: slot.idx, RHS: rhs}}
}

func (s *scope) compileAssign(st *ast.AssignStmt, ctx stmtCtx) []ir.Stmt {
	if ctx == ctxDeparser {
		s.c.errorf(st.P, "assignments are not allowed in the deparser")
		return nil
	}
	lhs, ok := st.LHS.(*ast.PathExpr)
	if !ok {
		s.c.errorf(st.P, "left side of assignment must be a field or local")
		return nil
	}
	target := s.resolveValue(lhs)
	if target == nil {
		return nil
	}
	switch t := target.(type) {
	case ir.FieldRef:
		rhs := s.compileExpr(st.RHS, t.W)
		if rhs == nil {
			return nil
		}
		if rhs.Width() != t.W {
			s.c.errorf(st.P, "cannot assign %d-bit value to %d-bit field %s", rhs.Width(), t.W, lhs)
			return nil
		}
		return []ir.Stmt{&ir.AssignField{Inst: t.Inst, Field: t.Field, RHS: rhs}}
	case ir.LocalRef:
		rhs := s.compileExpr(st.RHS, t.W)
		if rhs == nil {
			return nil
		}
		if rhs.Width() != t.W {
			s.c.errorf(st.P, "cannot assign %d-bit value to %d-bit local %s", rhs.Width(), t.W, lhs)
			return nil
		}
		return []ir.Stmt{&ir.AssignLocal{Idx: t.Idx, RHS: rhs}}
	case ir.ParamRef:
		s.c.errorf(st.P, "cannot assign to action parameter %s", lhs)
		return nil
	default:
		s.c.errorf(st.P, "cannot assign to %s", lhs)
		return nil
	}
}

func (s *scope) compileCallStmt(st *ast.CallStmt, ctx stmtCtx) []ir.Stmt {
	call := st.Call
	parts := call.Target.Parts
	method := parts[len(parts)-1]

	switch {
	case len(parts) == 2 && parts[0] == s.pktParam && method == "extract":
		if ctx != ctxParserState {
			s.c.errorf(st.P, "extract is only allowed in parser states")
			return nil
		}
		if len(call.Args) != 1 {
			s.c.errorf(st.P, "extract takes exactly one header argument")
			return nil
		}
		idx := s.headerArg(call.Args[0])
		if idx < 0 {
			return nil
		}
		return []ir.Stmt{&ir.Extract{Inst: idx}}

	case len(parts) == 2 && parts[0] == s.pktParam && method == "emit":
		if ctx != ctxDeparser {
			s.c.errorf(st.P, "emit is only allowed in the deparser")
			return nil
		}
		if len(call.Args) != 1 {
			s.c.errorf(st.P, "emit takes exactly one header argument")
			return nil
		}
		idx := s.headerArg(call.Args[0])
		if idx < 0 {
			return nil
		}
		return []ir.Stmt{&ir.Emit{Inst: idx}}

	case method == "setValid" || method == "setInvalid":
		if len(parts) < 2 {
			s.c.errorf(st.P, "%s requires a header instance", method)
			return nil
		}
		idx, rest, ok := s.resolveInstance(parts[:len(parts)-1])
		if !ok || len(rest) != 0 {
			s.c.errorf(st.P, "%s on %s: not a header instance", method, call.Target)
			return nil
		}
		if s.c.instances[idx].Metadata {
			s.c.errorf(st.P, "%s on metadata %s", method, s.c.instances[idx].Name)
			return nil
		}
		return []ir.Stmt{&ir.SetValid{Inst: idx, Valid: method == "setValid"}}

	case len(parts) == 1 && method == "mark_to_drop":
		if ctx == ctxParserState || ctx == ctxDeparser {
			s.c.errorf(st.P, "mark_to_drop is only allowed in controls")
			return nil
		}
		return []ir.Stmt{&ir.MarkToDrop{}}

	case method == "apply" && len(parts) == 2:
		if ctx != ctxApply {
			s.c.errorf(st.P, "table apply is only allowed in a control apply block")
			return nil
		}
		t, ok := s.tables[parts[0]]
		if !ok {
			s.c.errorf(st.P, "unknown table %q", parts[0])
			return nil
		}
		return []ir.Stmt{&ir.ApplyTable{Table: t}}

	case len(parts) == 1:
		// Direct action invocation.
		if ctx == ctxParserState || ctx == ctxDeparser {
			s.c.errorf(st.P, "action calls are not allowed here")
			return nil
		}
		a, ok := s.actions[method]
		if !ok {
			s.c.errorf(st.P, "unknown action or function %q", method)
			return nil
		}
		if len(call.Args) != len(a.Params) {
			s.c.errorf(st.P, "action %q takes %d arguments, got %d", method, len(a.Params), len(call.Args))
			return nil
		}
		args := make([]ir.Expr, len(call.Args))
		for i, ae := range call.Args {
			args[i] = s.compileExpr(ae, a.Params[i].Width)
			if args[i] == nil {
				return nil
			}
			if args[i].Width() != a.Params[i].Width {
				s.c.errorf(st.P, "argument %d of %q: want %d bits, got %d",
					i, method, a.Params[i].Width, args[i].Width())
				return nil
			}
		}
		return []ir.Stmt{&ir.CallAction{Action: a, Args: args}}
	}
	s.c.errorf(st.P, "unsupported call %s", call.Target)
	return nil
}

// headerArg resolves a call argument that must name a header instance.
func (s *scope) headerArg(e ast.Expr) int {
	p, ok := e.(*ast.PathExpr)
	if !ok {
		s.c.errorf(e.Pos(), "argument must be a header instance")
		return -1
	}
	idx, rest, ok := s.resolveInstance(p.Parts)
	if !ok || len(rest) != 0 {
		s.c.errorf(p.P, "%s is not a header instance", p)
		return -1
	}
	if s.c.instances[idx].Metadata {
		s.c.errorf(p.P, "%s is metadata, not a header", p)
		return -1
	}
	return idx
}

// lowerParser compiles the parse graph.
func (c *compiler) lowerParser(pd *ast.ParserDecl) *ir.Parser {
	s := c.newScope(pd.Params)
	p := &ir.Parser{Start: -99}
	nameToIdx := map[string]int{}
	for i, st := range pd.States {
		if _, dup := nameToIdx[st.Name]; dup {
			c.errorf(st.P, "duplicate parser state %q", st.Name)
			continue
		}
		if st.Name == "accept" || st.Name == "reject" {
			c.errorf(st.P, "state name %q is reserved", st.Name)
			continue
		}
		nameToIdx[st.Name] = i
		p.States = append(p.States, &ir.ParserState{Name: st.Name, Index: i})
	}
	resolveTarget := func(pos token.Pos, name string) int {
		switch name {
		case "accept":
			return ir.StateAccept
		case "reject":
			return ir.StateReject
		}
		if idx, ok := nameToIdx[name]; ok {
			return idx
		}
		c.errorf(pos, "undefined parser state %q", name)
		return ir.StateReject
	}
	for i, st := range pd.States {
		if i >= len(p.States) {
			break
		}
		ps := p.States[i]
		ps.Ops = s.compileStmts(st.Body, ctxParserState)
		if st.Transition == nil {
			continue
		}
		tr := st.Transition
		if tr.Select == nil {
			ps.Trans = ir.Transition{Default: resolveTarget(tr.P, tr.Next)}
			continue
		}
		ps.Trans = c.lowerSelect(s, tr.Select, resolveTarget)
	}
	if idx, ok := nameToIdx["start"]; ok {
		p.Start = idx
	} else {
		c.errorf(pd.P, "parser %q has no start state", pd.Name)
		p.Start = 0
	}
	return p
}

func (c *compiler) lowerSelect(s *scope, sel *ast.SelectExpr, resolveTarget func(token.Pos, string) int) ir.Transition {
	tr := ir.Transition{Default: ir.StateReject} // P4: no match => reject
	for _, k := range sel.Keys {
		ke := s.compileExpr(k, 0)
		if ke == nil {
			return tr
		}
		tr.Keys = append(tr.Keys, ke)
	}
	seenDefault := false
	for _, cs := range sel.Cases {
		if cs.Default {
			if seenDefault {
				c.errorf(cs.P, "duplicate default case")
			}
			seenDefault = true
			tr.Default = resolveTarget(cs.P, cs.Next)
			continue
		}
		if len(cs.Keysets) != len(tr.Keys) {
			c.errorf(cs.P, "select case has %d keysets but select has %d keys",
				len(cs.Keysets), len(tr.Keys))
			continue
		}
		tc := ir.TransCase{Next: resolveTarget(cs.P, cs.Next)}
		bad := false
		for ki, ks := range cs.Keysets {
			w := tr.Keys[ki].Width()
			if ks.Wildcard {
				tc.Values = append(tc.Values, bitfield.New(0, w))
				tc.Masks = append(tc.Masks, bitfield.New(0, w))
				continue
			}
			v, _ := c.evalConst(ks.Value)
			if v == nil {
				bad = true
				break
			}
			mask := new(big.Int).Lsh(big.NewInt(1), uint(w))
			mask.Sub(mask, big.NewInt(1))
			if ks.Mask != nil {
				mv, _ := c.evalConst(ks.Mask)
				if mv == nil {
					bad = true
					break
				}
				mask = mv
			}
			tc.Values = append(tc.Values, bigToValue(v, w))
			tc.Masks = append(tc.Masks, bigToValue(mask, w))
		}
		if !bad {
			tr.Cases = append(tr.Cases, tc)
		}
	}
	return tr
}

// lowerControl compiles a match-action control.
func (c *compiler) lowerControl(cd *ast.ControlDecl) *ir.Control {
	ctl := &ir.Control{Name: cd.Name}
	s := c.newScope(cd.Params)
	s.ctl = ctl

	// Implicit NoAction.
	noAction := &ir.Action{Name: "NoAction"}
	ctl.Actions = append(ctl.Actions, noAction)
	s.actions["NoAction"] = noAction

	// Control-level locals.
	var localInit []ir.Stmt
	for _, l := range cd.Locals {
		localInit = append(localInit, s.compileVarDecl(l, ctxApply)...)
	}

	// Declare actions first (P4 requires declaration before use in tables).
	for _, ad := range cd.Actions {
		if _, dup := s.actions[ad.Name]; dup {
			c.errorf(ad.P, "duplicate action %q", ad.Name)
			continue
		}
		a := &ir.Action{Name: ad.Name}
		for _, p := range ad.Params {
			w := c.typeWidth(p.Type)
			if w <= 0 {
				c.errorf(p.P, "action parameter %q must have bit<N> type", p.Name)
				w = 1
			}
			a.Params = append(a.Params, ir.ActionParam{Name: p.Name, Width: w})
		}
		ctl.Actions = append(ctl.Actions, a)
		s.actions[ad.Name] = a
	}
	// Compile action bodies (actions may call other actions).
	for _, ad := range cd.Actions {
		a := s.actions[ad.Name]
		if a == nil {
			continue
		}
		s.actionParams = map[string]paramSlot{}
		for i, p := range a.Params {
			s.actionParams[p.Name] = paramSlot{idx: i, width: p.Width}
		}
		a.Body = s.compileStmts(ad.Body.Stmts, ctxAction)
		s.actionParams = nil
	}

	for _, td := range cd.Tables {
		if _, dup := s.tables[td.Name]; dup {
			c.errorf(td.P, "duplicate table %q", td.Name)
			continue
		}
		t := &ir.Table{Name: td.Name, Control: cd.Name, Size: td.Size}
		lpmSeen := false
		for _, k := range td.Keys {
			ke := s.compileExpr(k.Expr, 0)
			if ke == nil {
				continue
			}
			kind := ir.MatchKind(k.Kind)
			if kind == ir.MatchLPM {
				if lpmSeen {
					c.errorf(k.P, "table %q has more than one lpm key", td.Name)
				}
				lpmSeen = true
			}
			t.Keys = append(t.Keys, ir.TableKey{Expr: ke, Kind: kind})
		}
		for _, ar := range td.Actions {
			a, ok := s.actions[ar.Name]
			if !ok {
				c.errorf(ar.P, "table %q: unknown action %q", td.Name, ar.Name)
				continue
			}
			t.Actions = append(t.Actions, a)
		}
		t.Default = ir.ActionCall{Action: noAction}
		if td.DefaultAction != nil {
			a, ok := s.actions[td.DefaultAction.Name]
			if !ok {
				c.errorf(td.DefaultAction.P, "table %q: unknown default action %q", td.Name, td.DefaultAction.Name)
			} else {
				dc := ir.ActionCall{Action: a}
				if len(td.DefaultAction.Args) != len(a.Params) {
					c.errorf(td.DefaultAction.P, "default action %q takes %d arguments, got %d",
						a.Name, len(a.Params), len(td.DefaultAction.Args))
				} else {
					for i, arg := range td.DefaultAction.Args {
						v, _ := c.evalConst(arg)
						if v == nil {
							continue
						}
						dc.Args = append(dc.Args, bigToValue(v, a.Params[i].Width))
					}
					t.Default = dc
				}
			}
		}
		ctl.Tables = append(ctl.Tables, t)
		s.tables[td.Name] = t
	}

	body := s.compileStmts(cd.Apply.Stmts, ctxApply)
	ctl.Apply = append(localInit, body...)
	return ctl
}

// lowerDeparser compiles the deparser control.
func (c *compiler) lowerDeparser(cd *ast.ControlDecl) *ir.Deparser {
	s := c.newScope(cd.Params)
	if len(cd.Actions) > 0 || len(cd.Tables) > 0 {
		c.errorf(cd.P, "deparser %q must not declare actions or tables", cd.Name)
	}
	return &ir.Deparser{Name: cd.Name, Stmts: s.compileStmts(cd.Apply.Stmts, ctxDeparser)}
}
