// Package packet implements wire-format encoding and decoding for the
// protocol layers used throughout NetDebug: Ethernet, 802.1Q VLAN, ARP,
// IPv4, IPv6, ICMPv4, TCP, UDP, and opaque payloads.
//
// The design follows the conventions of the gopacket library:
//
//   - Each protocol is a Layer with a DecodeFromBytes method that decodes
//     into the receiver, so a preallocated set of layers can parse an
//     arbitrary number of packets with zero allocations (see Parser).
//   - Serialization PREPENDS each layer onto a SerializeBuffer, so a packet
//     is built by serializing layers in reverse order; Serialize is a helper
//     that does exactly that and fixes lengths and checksums on request.
//   - Flows and Endpoints give protocol-independent, hashable src/dst keys.
package packet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// LayerType identifies a protocol layer.
type LayerType uint8

// Known layer types.
const (
	LayerTypeZero LayerType = iota
	LayerTypeEthernet
	LayerTypeVLAN
	LayerTypeARP
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeICMPv4
	LayerTypeTCP
	LayerTypeUDP
	LayerTypePayload
	numLayerTypes
)

var layerTypeNames = [...]string{
	LayerTypeZero:     "None",
	LayerTypeEthernet: "Ethernet",
	LayerTypeVLAN:     "VLAN",
	LayerTypeARP:      "ARP",
	LayerTypeIPv4:     "IPv4",
	LayerTypeIPv6:     "IPv6",
	LayerTypeICMPv4:   "ICMPv4",
	LayerTypeTCP:      "TCP",
	LayerTypeUDP:      "UDP",
	LayerTypePayload:  "Payload",
}

// String returns the layer name.
func (t LayerType) String() string {
	if int(t) < len(layerTypeNames) {
		return layerTypeNames[t]
	}
	return fmt.Sprintf("LayerType(%d)", uint8(t))
}

// EtherType values understood by the decoders.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeVLAN uint16 = 0x8100
	EtherTypeIPv6 uint16 = 0x86dd
)

// IP protocol numbers understood by the decoders.
const (
	IPProtoICMP uint8 = 1
	IPProtoTCP  uint8 = 6
	IPProtoUDP  uint8 = 17
)

// Layer is one decoded protocol layer.
type Layer interface {
	// LayerType identifies the protocol.
	LayerType() LayerType
	// DecodeFromBytes parses data into the receiver. The receiver may
	// retain sub-slices of data; callers that reuse buffers must consume
	// the layer before overwriting them.
	DecodeFromBytes(data []byte) error
	// NextLayerType reports which protocol the payload holds, or
	// LayerTypePayload when unknown/opaque, or LayerTypeZero when this
	// layer cannot carry a payload.
	NextLayerType() LayerType
	// LayerPayload returns the bytes after this layer's header.
	LayerPayload() []byte
	// SerializeTo prepends this layer's wire form onto b. When
	// opts.FixLengths is set, length fields are derived from the bytes
	// already in b; when opts.ComputeChecksums is set, checksums are
	// computed (using b's current contents as the payload).
	SerializeTo(b *SerializeBuffer, opts SerializeOptions) error
}

// DecodeError reports a malformed layer.
type DecodeError struct {
	Layer  LayerType
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("packet: decoding %s: %s", e.Layer, e.Reason)
}

func errTooShort(t LayerType, need, got int) error {
	return &DecodeError{Layer: t, Reason: fmt.Sprintf("need %d bytes, have %d", need, got)}
}

// SerializeOptions controls SerializeTo behaviour.
type SerializeOptions struct {
	// FixLengths derives length/header-length fields from payload sizes.
	FixLengths bool
	// ComputeChecksums fills in IPv4/ICMP/TCP/UDP checksums.
	ComputeChecksums bool
}

// SerializeBuffer accumulates a packet back-to-front: each PrependBytes
// call returns space immediately before the current contents, matching the
// layer-at-a-time prepend model.
type SerializeBuffer struct {
	data  []byte
	start int
}

// NewSerializeBuffer returns an empty buffer with a default-size backing
// array suitable for common MTU-sized packets.
func NewSerializeBuffer() *SerializeBuffer {
	const def = 2048
	return &SerializeBuffer{data: make([]byte, def), start: def}
}

// Bytes returns the assembled packet.
func (b *SerializeBuffer) Bytes() []byte { return b.data[b.start:] }

// Len returns the number of assembled bytes.
func (b *SerializeBuffer) Len() int { return len(b.data) - b.start }

// Clear empties the buffer for reuse.
func (b *SerializeBuffer) Clear() { b.start = len(b.data) }

// PrependBytes returns a zeroed slice of n bytes located immediately before
// the current contents.
func (b *SerializeBuffer) PrependBytes(n int) []byte {
	if n < 0 {
		panic("packet: negative prepend")
	}
	if b.start < n {
		grow := len(b.data)*2 + n
		nd := make([]byte, grow)
		off := grow - b.Len()
		copy(nd[off:], b.Bytes())
		b.data, b.start = nd, off
	}
	b.start -= n
	s := b.data[b.start : b.start+n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// AppendBytes returns a zeroed slice of n bytes after the current contents.
// It is used for trailers/padding.
func (b *SerializeBuffer) AppendBytes(n int) []byte {
	cur := b.Bytes()
	nd := make([]byte, len(cur)+n)
	copy(nd, cur)
	b.data = nd
	b.start = 0
	return b.data[len(cur):]
}

// Serialize builds a packet from layers in outermost-to-innermost order,
// serializing them in reverse so each layer sees its payload already in the
// buffer.
func Serialize(b *SerializeBuffer, opts SerializeOptions, layers ...Layer) error {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b, opts); err != nil {
			return fmt.Errorf("packet: serializing %s: %w", layers[i].LayerType(), err)
		}
	}
	return nil
}

// Parser decodes a known stack of layers from raw bytes with no
// allocation, in the style of gopacket's DecodingLayerParser. Construct it
// with the first layer type and pointers to reusable layer values; each
// DecodeLayers call overwrites those values.
type Parser struct {
	first    LayerType
	decoders [numLayerTypes]Layer
	// Truncated is set when the last decode stopped early because a layer
	// reported a payload type with no registered decoder.
	Truncated bool
}

// NewParser returns a parser starting at first that can decode the given
// layers.
func NewParser(first LayerType, layers ...Layer) *Parser {
	p := &Parser{first: first}
	for _, l := range layers {
		p.decoders[l.LayerType()] = l
	}
	return p
}

// ErrNoDecoder is returned (wrapped) when the packet contains a layer the
// parser was not configured with.
type ErrNoDecoder struct{ Type LayerType }

func (e *ErrNoDecoder) Error() string {
	return fmt.Sprintf("packet: no decoder registered for %s", e.Type)
}

// DecodeLayers parses data, appending the types decoded into *decoded,
// which is truncated first. If a payload type has no registered decoder,
// DecodeLayers stops and returns an *ErrNoDecoder, with all successfully
// decoded layers already in *decoded.
func (p *Parser) DecodeLayers(data []byte, decoded *[]LayerType) error {
	*decoded = (*decoded)[:0]
	p.Truncated = false
	typ := p.first
	for typ != LayerTypeZero && len(data) > 0 {
		dec := p.decoders[typ]
		if dec == nil {
			p.Truncated = true
			return &ErrNoDecoder{Type: typ}
		}
		if err := dec.DecodeFromBytes(data); err != nil {
			return err
		}
		*decoded = append(*decoded, typ)
		data = dec.LayerPayload()
		typ = dec.NextLayerType()
	}
	return nil
}

// EndpointType classifies an Endpoint.
type EndpointType uint8

// Endpoint kinds.
const (
	EndpointMAC EndpointType = iota + 1
	EndpointIPv4
	EndpointIPv6
	EndpointTCPPort
	EndpointUDPPort
)

// Endpoint is a hashable src or dst address at some layer. It is a value
// type usable as a map key.
type Endpoint struct {
	typ EndpointType
	len uint8
	raw [16]byte
}

// NewEndpoint builds an endpoint from raw address bytes.
func NewEndpoint(t EndpointType, b []byte) Endpoint {
	var e Endpoint
	e.typ = t
	if len(b) > len(e.raw) {
		b = b[:len(e.raw)]
	}
	e.len = uint8(len(b))
	copy(e.raw[:], b)
	return e
}

// Type returns the endpoint kind.
func (e Endpoint) Type() EndpointType { return e.typ }

// Raw returns the address bytes.
func (e Endpoint) Raw() []byte { return e.raw[:e.len] }

// String renders the endpoint according to its type.
func (e Endpoint) String() string {
	switch e.typ {
	case EndpointMAC:
		return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
			e.raw[0], e.raw[1], e.raw[2], e.raw[3], e.raw[4], e.raw[5])
	case EndpointIPv4:
		return fmt.Sprintf("%d.%d.%d.%d", e.raw[0], e.raw[1], e.raw[2], e.raw[3])
	case EndpointIPv6:
		return fmt.Sprintf("%x:%x:%x:%x:%x:%x:%x:%x",
			binary.BigEndian.Uint16(e.raw[0:]), binary.BigEndian.Uint16(e.raw[2:]),
			binary.BigEndian.Uint16(e.raw[4:]), binary.BigEndian.Uint16(e.raw[6:]),
			binary.BigEndian.Uint16(e.raw[8:]), binary.BigEndian.Uint16(e.raw[10:]),
			binary.BigEndian.Uint16(e.raw[12:]), binary.BigEndian.Uint16(e.raw[14:]))
	case EndpointTCPPort, EndpointUDPPort:
		return fmt.Sprintf("%d", binary.BigEndian.Uint16(e.raw[:2]))
	}
	return fmt.Sprintf("endpoint(%x)", e.raw[:e.len])
}

// Flow is an ordered (src, dst) endpoint pair.
type Flow struct {
	Src, Dst Endpoint
}

// NewFlow pairs two endpoints.
func NewFlow(src, dst Endpoint) Flow { return Flow{Src: src, Dst: dst} }

// Reverse returns the opposite direction flow.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// String renders "src->dst".
func (f Flow) String() string { return f.Src.String() + "->" + f.Dst.String() }

// FastHash returns a non-cryptographic hash that is symmetric: a->b and
// b->a hash identically, so bidirectional flows land in the same bucket.
func (f Flow) FastHash() uint64 {
	ha := hashEndpoint(f.Src)
	hb := hashEndpoint(f.Dst)
	return ha ^ hb // xor is commutative, giving the symmetry guarantee
}

func hashEndpoint(e Endpoint) uint64 {
	h := fnv.New64a()
	h.Write([]byte{byte(e.typ)})
	h.Write(e.Raw())
	return h.Sum64()
}
