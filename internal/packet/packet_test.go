package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"netdebug/internal/bitfield"
)

var (
	macA = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x0a}
	macB = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x0b}
	ipA  = IPv4Addr{10, 0, 0, 1}
	ipB  = IPv4Addr{10, 0, 0, 2}
)

func TestEthernetRoundTrip(t *testing.T) {
	in := &Ethernet{Src: macA, Dst: macB, EtherType: EtherTypeIPv4}
	b := NewSerializeBuffer()
	if err := Serialize(b, SerializeOptions{}, in, &Payload{Data: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	var out Ethernet
	if err := out.DecodeFromBytes(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if out.Src != in.Src || out.Dst != in.Dst || out.EtherType != in.EtherType {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if string(out.LayerPayload()) != "hi" {
		t.Fatalf("payload = %q", out.LayerPayload())
	}
	if out.NextLayerType() != LayerTypeIPv4 {
		t.Fatalf("next = %v", out.NextLayerType())
	}
}

func TestEthernetTooShort(t *testing.T) {
	var e Ethernet
	if err := e.DecodeFromBytes(make([]byte, 13)); err == nil {
		t.Fatal("want error for 13-byte frame")
	}
}

func TestVLANRoundTrip(t *testing.T) {
	in := &VLAN{Priority: 5, DropElig: true, ID: 0x123, EtherType: EtherTypeIPv6}
	b := NewSerializeBuffer()
	if err := in.SerializeTo(b, SerializeOptions{}); err != nil {
		t.Fatal(err)
	}
	var out VLAN
	if err := out.DecodeFromBytes(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if out.Priority != 5 || !out.DropElig || out.ID != 0x123 || out.EtherType != EtherTypeIPv6 {
		t.Fatalf("round trip: %+v", out)
	}
	if out.NextLayerType() != LayerTypeIPv6 {
		t.Fatalf("next = %v", out.NextLayerType())
	}
}

func TestARPRoundTrip(t *testing.T) {
	raw := BuildARPRequest(macA, ipA, ipB)
	var eth Ethernet
	if err := eth.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if eth.Dst != (MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) {
		t.Fatal("ARP request must be broadcast")
	}
	var arp ARP
	if err := arp.DecodeFromBytes(eth.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if arp.Operation != ARPRequest || arp.SenderIP != ipA || arp.TgtIP != ipB {
		t.Fatalf("arp = %+v", arp)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	in := &IPv4{
		Version: 4, IHL: 5, TOS: 0x10, ID: 0xbeef,
		Flags: IPv4DontFragment, FragOffset: 0, TTL: 63,
		Protocol: IPProtoUDP, Src: ipA, Dst: ipB,
	}
	b := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := Serialize(b, opts, in, &Payload{Data: make([]byte, 26)}); err != nil {
		t.Fatal(err)
	}
	var out IPv4
	if err := out.DecodeFromBytes(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if out.Length != 46 {
		t.Errorf("length = %d, want 46", out.Length)
	}
	if out.TTL != 63 || out.Src != ipA || out.Dst != ipB || out.Flags != IPv4DontFragment {
		t.Fatalf("round trip: %+v", out)
	}
	// Header must checksum to valid.
	if got := bitfield.OnesComplementSum(b.Bytes()[:20]); got != 0xffff {
		t.Errorf("header checksum invalid: sum=%#x", got)
	}
}

func TestIPv4Malformed(t *testing.T) {
	var ip IPv4
	raw := make([]byte, 20)
	raw[0] = 0x65 // version 6 in an IPv4 decoder
	if err := ip.DecodeFromBytes(raw); err == nil {
		t.Error("version 6 should fail IPv4 decode")
	}
	raw[0] = 0x42 // IHL 2 < 5
	if err := ip.DecodeFromBytes(raw); err == nil {
		t.Error("IHL<5 should fail")
	}
	raw[0] = 0x46 // IHL 6 but only 20 bytes present
	if err := ip.DecodeFromBytes(raw); err == nil {
		t.Error("short options should fail")
	}
}

func TestIPv4Options(t *testing.T) {
	in := &IPv4{Version: 4, TTL: 1, Protocol: IPProtoICMP, Src: ipA, Dst: ipB,
		Options: []byte{0x94, 0x04, 0x00, 0x00}} // router alert
	b := NewSerializeBuffer()
	if err := Serialize(b, SerializeOptions{FixLengths: true, ComputeChecksums: true}, in); err != nil {
		t.Fatal(err)
	}
	var out IPv4
	if err := out.DecodeFromBytes(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if out.IHL != 6 || !bytes.Equal(out.Options, in.Options) {
		t.Fatalf("options round trip: ihl=%d options=%x", out.IHL, out.Options)
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	src := IPv6Addr{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	dst := IPv6Addr{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2}
	in := &IPv6{Version: 6, TrafficClass: 0xa5, FlowLabel: 0xbeef5,
		NextHeader: IPProtoUDP, HopLimit: 64, Src: src, Dst: dst}
	b := NewSerializeBuffer()
	if err := Serialize(b, SerializeOptions{FixLengths: true}, in, &Payload{Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	var out IPv6
	if err := out.DecodeFromBytes(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if out.TrafficClass != 0xa5 || out.FlowLabel != 0xbeef5 || out.Length != 1 ||
		out.Src != src || out.Dst != dst {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestUDPChecksumValid(t *testing.T) {
	raw := BuildUDPv4(macA, macB, ipA, ipB, 1234, 5678, []byte("payload"))
	var eth Ethernet
	var ip IPv4
	var udp UDP
	if err := eth.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if err := ip.DecodeFromBytes(eth.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if err := udp.DecodeFromBytes(ip.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if udp.SrcPort != 1234 || udp.DstPort != 5678 || string(udp.LayerPayload()) != "payload" {
		t.Fatalf("udp = %+v payload=%q", udp, udp.LayerPayload())
	}
	// Validate checksum: pseudo-header + segment must sum to 0xffff.
	seg := ip.LayerPayload()
	sum := ip.pseudoHeaderSum(IPProtoUDP, len(seg))
	sum += uint32(bitfield.OnesComplementSum(seg))
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	if sum != 0xffff {
		t.Fatalf("udp checksum does not validate: %#x", sum)
	}
}

func TestTCPChecksumValidAndFlags(t *testing.T) {
	raw := BuildTCPv4(macA, macB, ipA, ipB, 80, 443, TCPSyn|TCPAck, []byte("abc"))
	var eth Ethernet
	var ip IPv4
	var tcp TCP
	for _, step := range []func() error{
		func() error { return eth.DecodeFromBytes(raw) },
		func() error { return ip.DecodeFromBytes(eth.LayerPayload()) },
		func() error { return tcp.DecodeFromBytes(ip.LayerPayload()) },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	if tcp.Flags != TCPSyn|TCPAck {
		t.Fatalf("flags = %#x", tcp.Flags)
	}
	seg := ip.LayerPayload()
	sum := ip.pseudoHeaderSum(IPProtoTCP, len(seg))
	sum += uint32(bitfield.OnesComplementSum(seg))
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	if sum != 0xffff {
		t.Fatalf("tcp checksum does not validate: %#x", sum)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	raw := BuildICMPEcho(macA, macB, ipA, ipB, 7, 3, []byte("ping"))
	var eth Ethernet
	var ip IPv4
	var icmp ICMPv4
	if err := eth.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if err := ip.DecodeFromBytes(eth.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if err := icmp.DecodeFromBytes(ip.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if icmp.Type != ICMPv4EchoRequest || icmp.ID != 7 || icmp.Seq != 3 {
		t.Fatalf("icmp = %+v", icmp)
	}
	if got := bitfield.OnesComplementSum(ip.LayerPayload()); got != 0xffff {
		t.Fatalf("icmp checksum does not validate: %#x", got)
	}
}

func TestParserFullStack(t *testing.T) {
	raw := BuildUDPv4(macA, macB, ipA, ipB, 53, 53, []byte("q"))
	var eth Ethernet
	var ip IPv4
	var udp UDP
	var pay Payload
	p := NewParser(LayerTypeEthernet, &eth, &ip, &udp, &pay)
	var decoded []LayerType
	if err := p.DecodeLayers(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	want := []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeUDP, LayerTypePayload}
	if len(decoded) != len(want) {
		t.Fatalf("decoded %v", decoded)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("decoded %v, want %v", decoded, want)
		}
	}
	if string(pay.Data) != "q" {
		t.Fatalf("payload = %q", pay.Data)
	}
}

func TestParserZeroAlloc(t *testing.T) {
	raw := BuildUDPv4(macA, macB, ipA, ipB, 1, 2, []byte("zzz"))
	var eth Ethernet
	var ip IPv4
	var udp UDP
	p := NewParser(LayerTypeEthernet, &eth, &ip, &udp)
	decoded := make([]LayerType, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		_ = p.DecodeLayers(raw, &decoded)
	})
	// DecodeLayers stops at the payload with ErrNoDecoder; the error value
	// itself is the only permitted allocation.
	if allocs > 1 {
		t.Fatalf("DecodeLayers allocates %.1f times per packet", allocs)
	}
}

func TestParserUnknownLayer(t *testing.T) {
	raw := BuildUDPv4(macA, macB, ipA, ipB, 1, 2, []byte("zzz"))
	var eth Ethernet
	var ip IPv4
	p := NewParser(LayerTypeEthernet, &eth, &ip)
	var decoded []LayerType
	err := p.DecodeLayers(raw, &decoded)
	if _, ok := err.(*ErrNoDecoder); !ok {
		t.Fatalf("err = %v, want ErrNoDecoder", err)
	}
	if !p.Truncated || len(decoded) != 2 {
		t.Fatalf("truncated=%v decoded=%v", p.Truncated, decoded)
	}
}

func TestVLANStack(t *testing.T) {
	eth := &Ethernet{Src: macA, Dst: macB, EtherType: EtherTypeVLAN}
	vlan := &VLAN{ID: 100, EtherType: EtherTypeIPv4}
	ip := &IPv4{Version: 4, TTL: 9, Protocol: IPProtoUDP, Src: ipA, Dst: ipB}
	udp := &UDP{SrcPort: 9, DstPort: 9}
	udp.SetNetworkForChecksum(ip)
	b := NewSerializeBuffer()
	if err := Serialize(b, SerializeOptions{FixLengths: true, ComputeChecksums: true},
		eth, vlan, ip, udp); err != nil {
		t.Fatal(err)
	}
	var oe Ethernet
	var ov VLAN
	var oi IPv4
	var ou UDP
	p := NewParser(LayerTypeEthernet, &oe, &ov, &oi, &ou)
	var decoded []LayerType
	if err := p.DecodeLayers(b.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 4 || decoded[1] != LayerTypeVLAN || ov.ID != 100 {
		t.Fatalf("decoded=%v vlan=%+v", decoded, ov)
	}
}

func TestSerializeBufferGrowth(t *testing.T) {
	b := &SerializeBuffer{data: make([]byte, 4), start: 4}
	copy(b.PrependBytes(3), []byte{7, 8, 9})
	copy(b.PrependBytes(6), []byte{1, 2, 3, 4, 5, 6})
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("grown buffer = %v", b.Bytes())
	}
	if b.Len() != 9 {
		t.Fatalf("len = %d", b.Len())
	}
	b.Clear()
	if b.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestSerializeBufferAppend(t *testing.T) {
	b := NewSerializeBuffer()
	copy(b.PrependBytes(2), []byte{1, 2})
	copy(b.AppendBytes(2), []byte{3, 4})
	if !bytes.Equal(b.Bytes(), []byte{1, 2, 3, 4}) {
		t.Fatalf("append = %v", b.Bytes())
	}
}

func TestEndpointsAndFlows(t *testing.T) {
	e1 := NewEndpoint(EndpointIPv4, ipA[:])
	e2 := NewEndpoint(EndpointIPv4, ipB[:])
	if e1.String() != "10.0.0.1" {
		t.Errorf("endpoint string = %q", e1.String())
	}
	f := NewFlow(e1, e2)
	if f.String() != "10.0.0.1->10.0.0.2" {
		t.Errorf("flow string = %q", f)
	}
	if f.FastHash() != f.Reverse().FastHash() {
		t.Error("FastHash must be symmetric")
	}
	if f == f.Reverse() {
		t.Error("flow and reverse must differ as map keys")
	}
	m := map[Flow]int{f: 1}
	if m[NewFlow(e1, e2)] != 1 {
		t.Error("flows must be usable as map keys")
	}
}

func TestEndpointTypes(t *testing.T) {
	mac := NewEndpoint(EndpointMAC, macA[:])
	if mac.String() != "02:00:00:00:00:0a" {
		t.Errorf("mac endpoint = %q", mac.String())
	}
	port := NewEndpoint(EndpointTCPPort, []byte{0x01, 0xbb})
	if port.String() != "443" {
		t.Errorf("port endpoint = %q", port.String())
	}
}

func TestAddressParsers(t *testing.T) {
	m, err := ParseMAC("aa:bb:cc:dd:ee:ff")
	if err != nil || m != (MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}) {
		t.Fatalf("ParseMAC: %v %v", m, err)
	}
	if _, err := ParseMAC("nonsense"); err == nil {
		t.Error("bad MAC should fail")
	}
	a, err := ParseIPv4("192.168.1.200")
	if err != nil || a != (IPv4Addr{192, 168, 1, 200}) {
		t.Fatalf("ParseIPv4: %v %v", a, err)
	}
	if _, err := ParseIPv4("300.1.1.1"); err == nil {
		t.Error("out-of-range octet should fail")
	}
	if IPv4AddrFrom(0x0a000001) != ipA {
		t.Error("IPv4AddrFrom mismatch")
	}
	if ipA.Uint32() != 0x0a000001 {
		t.Error("Uint32 mismatch")
	}
}

func TestPadToMinimum(t *testing.T) {
	p := PadToMinimum(make([]byte, 10))
	if len(p) != 60 {
		t.Fatalf("padded len = %d", len(p))
	}
	p = PadToMinimum(make([]byte, 100))
	if len(p) != 100 {
		t.Fatal("should not pad large frames")
	}
}

// Property: serialize→decode is the identity on IPv4 headers for arbitrary
// field values.
func TestIPv4RoundTripQuick(t *testing.T) {
	f := func(tos uint8, id uint16, ttl uint8, proto uint8, src, dst uint32, payLen uint8) bool {
		in := &IPv4{
			Version: 4, TOS: tos, ID: id, TTL: ttl, Protocol: proto,
			Src: IPv4AddrFrom(src), Dst: IPv4AddrFrom(dst),
		}
		b := NewSerializeBuffer()
		if err := Serialize(b, SerializeOptions{FixLengths: true, ComputeChecksums: true},
			in, &Payload{Data: make([]byte, int(payLen))}); err != nil {
			return false
		}
		var out IPv4
		if err := out.DecodeFromBytes(b.Bytes()); err != nil {
			return false
		}
		return out.TOS == tos && out.ID == id && out.TTL == ttl &&
			out.Protocol == proto && out.Src == in.Src && out.Dst == in.Dst &&
			int(out.Length) == 20+int(payLen) &&
			bitfield.OnesComplementSum(b.Bytes()[:20]) == 0xffff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary bytes never panics.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	layers := []Layer{&Ethernet{}, &VLAN{}, &ARP{}, &IPv4{}, &IPv6{}, &ICMPv4{}, &TCP{}, &UDP{}}
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(80))
		rng.Read(buf)
		for _, l := range layers {
			_ = l.DecodeFromBytes(buf) // must not panic
		}
	}
}

func BenchmarkParserDecode(b *testing.B) {
	raw := BuildUDPv4(macA, macB, ipA, ipB, 53, 53, make([]byte, 64))
	var eth Ethernet
	var ip IPv4
	var udp UDP
	var pay Payload
	p := NewParser(LayerTypeEthernet, &eth, &ip, &udp, &pay)
	decoded := make([]LayerType, 0, 8)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.DecodeLayers(raw, &decoded); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializeUDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BuildUDPv4(macA, macB, ipA, ipB, 1, 2, nil)
	}
}
