package packet

// Builders for the packet shapes the test generator and examples use most.
// Each returns freshly allocated wire bytes with lengths and checksums
// filled in.

// BuildUDPv4 assembles Ethernet/IPv4/UDP with the given payload.
func BuildUDPv4(srcMAC, dstMAC MAC, srcIP, dstIP IPv4Addr, srcPort, dstPort uint16, payload []byte) []byte {
	eth := &Ethernet{Src: srcMAC, Dst: dstMAC, EtherType: EtherTypeIPv4}
	ip := &IPv4{Version: 4, IHL: 5, TTL: 64, Protocol: IPProtoUDP, Src: srcIP, Dst: dstIP}
	udp := &UDP{SrcPort: srcPort, DstPort: dstPort}
	udp.SetNetworkForChecksum(ip)
	b := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := Serialize(b, opts, eth, ip, udp, &Payload{Data: payload}); err != nil {
		panic(err) // builders use only well-formed static layers
	}
	return append([]byte(nil), b.Bytes()...)
}

// BuildTCPv4 assembles Ethernet/IPv4/TCP with the given flags and payload.
func BuildTCPv4(srcMAC, dstMAC MAC, srcIP, dstIP IPv4Addr, srcPort, dstPort uint16, flags uint8, payload []byte) []byte {
	eth := &Ethernet{Src: srcMAC, Dst: dstMAC, EtherType: EtherTypeIPv4}
	ip := &IPv4{Version: 4, IHL: 5, TTL: 64, Protocol: IPProtoTCP, Src: srcIP, Dst: dstIP}
	tcp := &TCP{SrcPort: srcPort, DstPort: dstPort, DataOffset: 5, Flags: flags, Window: 65535}
	tcp.SetNetworkForChecksum(ip)
	b := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := Serialize(b, opts, eth, ip, tcp, &Payload{Data: payload}); err != nil {
		panic(err)
	}
	return append([]byte(nil), b.Bytes()...)
}

// BuildICMPEcho assembles an Ethernet/IPv4/ICMP echo request.
func BuildICMPEcho(srcMAC, dstMAC MAC, srcIP, dstIP IPv4Addr, id, seq uint16, payload []byte) []byte {
	eth := &Ethernet{Src: srcMAC, Dst: dstMAC, EtherType: EtherTypeIPv4}
	ip := &IPv4{Version: 4, IHL: 5, TTL: 64, Protocol: IPProtoICMP, Src: srcIP, Dst: dstIP}
	icmp := &ICMPv4{Type: ICMPv4EchoRequest, ID: id, Seq: seq}
	b := NewSerializeBuffer()
	opts := SerializeOptions{FixLengths: true, ComputeChecksums: true}
	if err := Serialize(b, opts, eth, ip, icmp, &Payload{Data: payload}); err != nil {
		panic(err)
	}
	return append([]byte(nil), b.Bytes()...)
}

// BuildARPRequest assembles a broadcast ARP who-has.
func BuildARPRequest(srcMAC MAC, srcIP, tgtIP IPv4Addr) []byte {
	eth := &Ethernet{Src: srcMAC, Dst: MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, EtherType: EtherTypeARP}
	arp := &ARP{Operation: ARPRequest, SenderMAC: srcMAC, SenderIP: srcIP, TgtIP: tgtIP}
	b := NewSerializeBuffer()
	if err := Serialize(b, SerializeOptions{}, eth, arp); err != nil {
		panic(err)
	}
	return append([]byte(nil), b.Bytes()...)
}

// PadToMinimum pads frame with zeros to the 64-byte Ethernet minimum
// (60 bytes before the 4-byte FCS, which this model does not carry).
func PadToMinimum(frame []byte) []byte {
	const minNoFCS = 60
	for len(frame) < minNoFCS {
		frame = append(frame, 0)
	}
	return frame
}
