package packet

import (
	"encoding/binary"
	"fmt"

	"netdebug/internal/bitfield"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// String renders the address in colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// ParseMAC parses "aa:bb:cc:dd:ee:ff".
func ParseMAC(s string) (MAC, error) {
	var m MAC
	n, err := fmt.Sscanf(s, "%02x:%02x:%02x:%02x:%02x:%02x",
		&m[0], &m[1], &m[2], &m[3], &m[4], &m[5])
	if err != nil || n != 6 {
		return MAC{}, fmt.Errorf("packet: invalid MAC %q", s)
	}
	return m, nil
}

// IPv4Addr is a 32-bit IPv4 address in network order.
type IPv4Addr [4]byte

// String renders dotted-quad notation.
func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Uint32 returns the address as a host-order integer.
func (a IPv4Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// IPv4AddrFrom converts a host-order integer to an address.
func IPv4AddrFrom(v uint32) IPv4Addr {
	var a IPv4Addr
	binary.BigEndian.PutUint32(a[:], v)
	return a
}

// ParseIPv4 parses dotted-quad notation.
func ParseIPv4(s string) (IPv4Addr, error) {
	var a IPv4Addr
	var b0, b1, b2, b3 int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &b0, &b1, &b2, &b3)
	if err != nil || n != 4 || b0|b1|b2|b3 < 0 || b0 > 255 || b1 > 255 || b2 > 255 || b3 > 255 {
		return a, fmt.Errorf("packet: invalid IPv4 address %q", s)
	}
	a[0], a[1], a[2], a[3] = byte(b0), byte(b1), byte(b2), byte(b3)
	return a, nil
}

// IPv6Addr is a 128-bit IPv6 address in network order.
type IPv6Addr [16]byte

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
	payload   []byte
}

// LayerType implements Layer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// LayerPayload implements Layer.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// NextLayerType implements Layer.
func (e *Ethernet) NextLayerType() LayerType {
	switch e.EtherType {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeIPv6:
		return LayerTypeIPv6
	case EtherTypeARP:
		return LayerTypeARP
	case EtherTypeVLAN:
		return LayerTypeVLAN
	}
	return LayerTypePayload
}

// DecodeFromBytes implements Layer.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < 14 {
		return errTooShort(LayerTypeEthernet, 14, len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	e.payload = data[14:]
	return nil
}

// SerializeTo implements Layer.
func (e *Ethernet) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	h := b.PrependBytes(14)
	copy(h[0:6], e.Dst[:])
	copy(h[6:12], e.Src[:])
	binary.BigEndian.PutUint16(h[12:14], e.EtherType)
	return nil
}

// Flow returns the MAC-level flow.
func (e *Ethernet) Flow() Flow {
	return NewFlow(NewEndpoint(EndpointMAC, e.Src[:]), NewEndpoint(EndpointMAC, e.Dst[:]))
}

// VLAN is an 802.1Q tag.
type VLAN struct {
	Priority  uint8 // 3 bits
	DropElig  bool  // DEI
	ID        uint16
	EtherType uint16
	payload   []byte
}

// LayerType implements Layer.
func (v *VLAN) LayerType() LayerType { return LayerTypeVLAN }

// LayerPayload implements Layer.
func (v *VLAN) LayerPayload() []byte { return v.payload }

// NextLayerType implements Layer.
func (v *VLAN) NextLayerType() LayerType {
	switch v.EtherType {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeIPv6:
		return LayerTypeIPv6
	case EtherTypeARP:
		return LayerTypeARP
	case EtherTypeVLAN:
		return LayerTypeVLAN
	}
	return LayerTypePayload
}

// DecodeFromBytes implements Layer.
func (v *VLAN) DecodeFromBytes(data []byte) error {
	if len(data) < 4 {
		return errTooShort(LayerTypeVLAN, 4, len(data))
	}
	tci := binary.BigEndian.Uint16(data[0:2])
	v.Priority = uint8(tci >> 13)
	v.DropElig = tci&0x1000 != 0
	v.ID = tci & 0x0fff
	v.EtherType = binary.BigEndian.Uint16(data[2:4])
	v.payload = data[4:]
	return nil
}

// SerializeTo implements Layer.
func (v *VLAN) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	h := b.PrependBytes(4)
	tci := uint16(v.Priority&0x7)<<13 | v.ID&0x0fff
	if v.DropElig {
		tci |= 0x1000
	}
	binary.BigEndian.PutUint16(h[0:2], tci)
	binary.BigEndian.PutUint16(h[2:4], v.EtherType)
	return nil
}

// ARP is an IPv4-over-Ethernet ARP packet.
type ARP struct {
	Operation         uint16 // 1 request, 2 reply
	SenderMAC, TgtMAC MAC
	SenderIP, TgtIP   IPv4Addr
	payload           []byte
}

// ARP operations.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// LayerType implements Layer.
func (a *ARP) LayerType() LayerType { return LayerTypeARP }

// LayerPayload implements Layer.
func (a *ARP) LayerPayload() []byte { return a.payload }

// NextLayerType implements Layer.
func (a *ARP) NextLayerType() LayerType { return LayerTypeZero }

// DecodeFromBytes implements Layer.
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < 28 {
		return errTooShort(LayerTypeARP, 28, len(data))
	}
	if htype := binary.BigEndian.Uint16(data[0:2]); htype != 1 {
		return &DecodeError{LayerTypeARP, fmt.Sprintf("unsupported hardware type %d", htype)}
	}
	if ptype := binary.BigEndian.Uint16(data[2:4]); ptype != EtherTypeIPv4 {
		return &DecodeError{LayerTypeARP, fmt.Sprintf("unsupported protocol type %#x", ptype)}
	}
	a.Operation = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderMAC[:], data[8:14])
	copy(a.SenderIP[:], data[14:18])
	copy(a.TgtMAC[:], data[18:24])
	copy(a.TgtIP[:], data[24:28])
	a.payload = data[28:]
	return nil
}

// SerializeTo implements Layer.
func (a *ARP) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	h := b.PrependBytes(28)
	binary.BigEndian.PutUint16(h[0:2], 1)
	binary.BigEndian.PutUint16(h[2:4], EtherTypeIPv4)
	h[4], h[5] = 6, 4
	binary.BigEndian.PutUint16(h[6:8], a.Operation)
	copy(h[8:14], a.SenderMAC[:])
	copy(h[14:18], a.SenderIP[:])
	copy(h[18:24], a.TgtMAC[:])
	copy(h[24:28], a.TgtIP[:])
	return nil
}

// IPv4 is an IPv4 header (RFC 791). Options are carried verbatim.
type IPv4 struct {
	Version    uint8
	IHL        uint8
	TOS        uint8
	Length     uint16
	ID         uint16
	Flags      uint8 // 3 bits
	FragOffset uint16
	TTL        uint8
	Protocol   uint8
	Checksum   uint16
	Src, Dst   IPv4Addr
	Options    []byte
	payload    []byte
}

// IPv4 flag bits.
const (
	IPv4DontFragment  uint8 = 0b010
	IPv4MoreFragments uint8 = 0b001
)

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// LayerPayload implements Layer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// NextLayerType implements Layer.
func (ip *IPv4) NextLayerType() LayerType {
	switch ip.Protocol {
	case IPProtoTCP:
		return LayerTypeTCP
	case IPProtoUDP:
		return LayerTypeUDP
	case IPProtoICMP:
		return LayerTypeICMPv4
	}
	return LayerTypePayload
}

// DecodeFromBytes implements Layer.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return errTooShort(LayerTypeIPv4, 20, len(data))
	}
	ip.Version = data[0] >> 4
	ip.IHL = data[0] & 0x0f
	if ip.Version != 4 {
		return &DecodeError{LayerTypeIPv4, fmt.Sprintf("version %d", ip.Version)}
	}
	if ip.IHL < 5 {
		return &DecodeError{LayerTypeIPv4, fmt.Sprintf("IHL %d < 5", ip.IHL)}
	}
	hlen := int(ip.IHL) * 4
	if len(data) < hlen {
		return errTooShort(LayerTypeIPv4, hlen, len(data))
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOffset = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.Src[:], data[12:16])
	copy(ip.Dst[:], data[16:20])
	ip.Options = data[20:hlen]
	end := int(ip.Length)
	if end < hlen || end > len(data) {
		end = len(data)
	}
	ip.payload = data[hlen:end]
	return nil
}

// HeaderBytes serializes just the header (with current fields) into dst,
// which must be at least 20+len(Options) bytes; it returns the header
// length used. The checksum field is written as-is.
func (ip *IPv4) headerBytes(h []byte) int {
	hlen := 20 + len(ip.Options)
	h[0] = ip.Version<<4 | ip.IHL&0x0f
	h[1] = ip.TOS
	binary.BigEndian.PutUint16(h[2:4], ip.Length)
	binary.BigEndian.PutUint16(h[4:6], ip.ID)
	binary.BigEndian.PutUint16(h[6:8], uint16(ip.Flags)<<13|ip.FragOffset&0x1fff)
	h[8] = ip.TTL
	h[9] = ip.Protocol
	binary.BigEndian.PutUint16(h[10:12], ip.Checksum)
	copy(h[12:16], ip.Src[:])
	copy(h[16:20], ip.Dst[:])
	copy(h[20:hlen], ip.Options)
	return hlen
}

// SerializeTo implements Layer.
func (ip *IPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if len(ip.Options)%4 != 0 {
		return fmt.Errorf("options length %d not a multiple of 4", len(ip.Options))
	}
	hlen := 20 + len(ip.Options)
	payloadLen := b.Len()
	h := b.PrependBytes(hlen)
	if opts.FixLengths {
		ip.Version = 4
		ip.IHL = uint8(hlen / 4)
		ip.Length = uint16(hlen + payloadLen)
	}
	if opts.ComputeChecksums {
		ip.Checksum = 0
	}
	ip.headerBytes(h)
	if opts.ComputeChecksums {
		ip.Checksum = bitfield.Checksum(h[:hlen])
		binary.BigEndian.PutUint16(h[10:12], ip.Checksum)
	}
	return nil
}

// Flow returns the network-level flow.
func (ip *IPv4) Flow() Flow {
	return NewFlow(NewEndpoint(EndpointIPv4, ip.Src[:]), NewEndpoint(EndpointIPv4, ip.Dst[:]))
}

// pseudoHeaderSum computes the ones'-complement sum of the IPv4
// pseudo-header used by TCP and UDP checksums.
func (ip *IPv4) pseudoHeaderSum(proto uint8, length int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(ip.Src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(ip.Src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(ip.Dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(ip.Dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// IPv6 is the fixed IPv6 header (RFC 8200); extension headers are treated
// as payload.
type IPv6 struct {
	Version      uint8
	TrafficClass uint8
	FlowLabel    uint32
	Length       uint16
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     IPv6Addr
	payload      []byte
}

// LayerType implements Layer.
func (ip *IPv6) LayerType() LayerType { return LayerTypeIPv6 }

// LayerPayload implements Layer.
func (ip *IPv6) LayerPayload() []byte { return ip.payload }

// NextLayerType implements Layer.
func (ip *IPv6) NextLayerType() LayerType {
	switch ip.NextHeader {
	case IPProtoTCP:
		return LayerTypeTCP
	case IPProtoUDP:
		return LayerTypeUDP
	}
	return LayerTypePayload
}

// DecodeFromBytes implements Layer.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < 40 {
		return errTooShort(LayerTypeIPv6, 40, len(data))
	}
	ip.Version = data[0] >> 4
	if ip.Version != 6 {
		return &DecodeError{LayerTypeIPv6, fmt.Sprintf("version %d", ip.Version)}
	}
	ip.TrafficClass = data[0]<<4 | data[1]>>4
	ip.FlowLabel = uint32(data[1]&0x0f)<<16 | uint32(data[2])<<8 | uint32(data[3])
	ip.Length = binary.BigEndian.Uint16(data[4:6])
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	copy(ip.Src[:], data[8:24])
	copy(ip.Dst[:], data[24:40])
	end := 40 + int(ip.Length)
	if end > len(data) {
		end = len(data)
	}
	ip.payload = data[40:end]
	return nil
}

// SerializeTo implements Layer.
func (ip *IPv6) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	payloadLen := b.Len()
	h := b.PrependBytes(40)
	if opts.FixLengths {
		ip.Version = 6
		ip.Length = uint16(payloadLen)
	}
	h[0] = ip.Version<<4 | ip.TrafficClass>>4
	h[1] = ip.TrafficClass<<4 | uint8(ip.FlowLabel>>16)&0x0f
	h[2] = byte(ip.FlowLabel >> 8)
	h[3] = byte(ip.FlowLabel)
	binary.BigEndian.PutUint16(h[4:6], ip.Length)
	h[6] = ip.NextHeader
	h[7] = ip.HopLimit
	copy(h[8:24], ip.Src[:])
	copy(h[24:40], ip.Dst[:])
	return nil
}

// Flow returns the network-level flow.
func (ip *IPv6) Flow() Flow {
	return NewFlow(NewEndpoint(EndpointIPv6, ip.Src[:]), NewEndpoint(EndpointIPv6, ip.Dst[:]))
}

// ICMPv4 is an ICMP message (RFC 792).
type ICMPv4 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	ID, Seq  uint16 // echo request/reply fields
	payload  []byte
}

// Common ICMP types.
const (
	ICMPv4EchoReply    uint8 = 0
	ICMPv4DestUnreach  uint8 = 3
	ICMPv4EchoRequest  uint8 = 8
	ICMPv4TimeExceeded uint8 = 11
)

// LayerType implements Layer.
func (ic *ICMPv4) LayerType() LayerType { return LayerTypeICMPv4 }

// LayerPayload implements Layer.
func (ic *ICMPv4) LayerPayload() []byte { return ic.payload }

// NextLayerType implements Layer.
func (ic *ICMPv4) NextLayerType() LayerType { return LayerTypeZero }

// DecodeFromBytes implements Layer.
func (ic *ICMPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return errTooShort(LayerTypeICMPv4, 8, len(data))
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.Checksum = binary.BigEndian.Uint16(data[2:4])
	ic.ID = binary.BigEndian.Uint16(data[4:6])
	ic.Seq = binary.BigEndian.Uint16(data[6:8])
	ic.payload = data[8:]
	return nil
}

// SerializeTo implements Layer.
func (ic *ICMPv4) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	h := b.PrependBytes(8)
	h[0] = ic.Type
	h[1] = ic.Code
	binary.BigEndian.PutUint16(h[4:6], ic.ID)
	binary.BigEndian.PutUint16(h[6:8], ic.Seq)
	if opts.ComputeChecksums {
		ic.Checksum = bitfield.Checksum(b.Bytes())
	}
	binary.BigEndian.PutUint16(h[2:4], ic.Checksum)
	return nil
}

// TCP is a TCP header (RFC 9293). Options are carried verbatim.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte
	payload          []byte
	net              pseudoHeaderer
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// NextLayerType implements Layer.
func (t *TCP) NextLayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements Layer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return errTooShort(LayerTypeTCP, 20, len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	if t.DataOffset < 5 {
		return &DecodeError{LayerTypeTCP, fmt.Sprintf("data offset %d < 5", t.DataOffset)}
	}
	hlen := int(t.DataOffset) * 4
	if len(data) < hlen {
		return errTooShort(LayerTypeTCP, hlen, len(data))
	}
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = data[20:hlen]
	t.payload = data[hlen:]
	return nil
}

// SerializeTo implements Layer. Checksums require the enclosing IPv4 layer;
// use Serialize with both layers present, or SetNetworkForChecksum.
func (t *TCP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if len(t.Options)%4 != 0 {
		return fmt.Errorf("options length %d not a multiple of 4", len(t.Options))
	}
	hlen := 20 + len(t.Options)
	segLen := hlen + b.Len()
	h := b.PrependBytes(hlen)
	if opts.FixLengths {
		t.DataOffset = uint8(hlen / 4)
	}
	binary.BigEndian.PutUint16(h[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], t.DstPort)
	binary.BigEndian.PutUint32(h[4:8], t.Seq)
	binary.BigEndian.PutUint32(h[8:12], t.Ack)
	h[12] = t.DataOffset << 4
	h[13] = t.Flags
	binary.BigEndian.PutUint16(h[14:16], t.Window)
	binary.BigEndian.PutUint16(h[18:20], t.Urgent)
	copy(h[20:hlen], t.Options)
	if opts.ComputeChecksums && t.net != nil {
		t.Checksum = transportChecksum(t.net, IPProtoTCP, b.Bytes()[:segLen])
	}
	binary.BigEndian.PutUint16(h[16:18], t.Checksum)
	return nil
}

// net, when set via SetNetworkForChecksum, provides the pseudo-header.
type pseudoHeaderer interface {
	pseudoHeaderSum(proto uint8, length int) uint32
}

// SetNetworkForChecksum supplies the enclosing IPv4 header used for the
// pseudo-header checksum during SerializeTo.
func (t *TCP) SetNetworkForChecksum(ip *IPv4) { t.net = ip }

// UDP is a UDP header (RFC 768).
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
	payload          []byte
	net              pseudoHeaderer
}

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// LayerPayload implements Layer.
func (u *UDP) LayerPayload() []byte { return u.payload }

// NextLayerType implements Layer.
func (u *UDP) NextLayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements Layer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return errTooShort(LayerTypeUDP, 8, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	end := int(u.Length)
	if end < 8 || end > len(data) {
		end = len(data)
	}
	u.payload = data[8:end]
	return nil
}

// SerializeTo implements Layer.
func (u *UDP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	dgramLen := 8 + b.Len()
	h := b.PrependBytes(8)
	if opts.FixLengths {
		u.Length = uint16(dgramLen)
	}
	binary.BigEndian.PutUint16(h[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], u.DstPort)
	binary.BigEndian.PutUint16(h[4:6], u.Length)
	if opts.ComputeChecksums && u.net != nil {
		u.Checksum = transportChecksum(u.net, IPProtoUDP, b.Bytes()[:dgramLen])
	}
	binary.BigEndian.PutUint16(h[6:8], u.Checksum)
	return nil
}

// SetNetworkForChecksum supplies the enclosing IPv4 header used for the
// pseudo-header checksum during SerializeTo.
func (u *UDP) SetNetworkForChecksum(ip *IPv4) { u.net = ip }

// transportChecksum computes a TCP/UDP checksum over segment with the
// pseudo-header from net.
func transportChecksum(net pseudoHeaderer, proto uint8, segment []byte) uint16 {
	sum := net.pseudoHeaderSum(proto, len(segment))
	sum += uint32(bitfield.OnesComplementSum(segment))
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	ck := ^uint16(sum)
	if ck == 0 && proto == IPProtoUDP {
		ck = 0xffff // RFC 768: zero means "no checksum"
	}
	return ck
}

// Payload is an opaque application-layer blob.
type Payload struct {
	Data []byte
}

// LayerType implements Layer.
func (p *Payload) LayerType() LayerType { return LayerTypePayload }

// LayerPayload implements Layer.
func (p *Payload) LayerPayload() []byte { return nil }

// NextLayerType implements Layer.
func (p *Payload) NextLayerType() LayerType { return LayerTypeZero }

// DecodeFromBytes implements Layer.
func (p *Payload) DecodeFromBytes(data []byte) error {
	p.Data = data
	return nil
}

// SerializeTo implements Layer.
func (p *Payload) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	copy(b.PrependBytes(len(p.Data)), p.Data)
	return nil
}
