package faultplan

import (
	"errors"
	"testing"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/control"
	"netdebug/internal/dataplane"
	"netdebug/internal/device"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/target"
)

func loadedFirewall(t *testing.T) target.Target {
	t.Helper()
	prog, err := compile.Compile(p4test.Firewall)
	if err != nil {
		t.Fatal(err)
	}
	tgt := target.NewReference()
	if err := tgt.Load(prog); err != nil {
		t.Fatal(err)
	}
	return tgt
}

func aclEntry(src uint64, prio int) dataplane.Entry {
	return dataplane.Entry{
		Table:    "acl",
		Priority: prio,
		Keys: []dataplane.KeyValue{
			{Value: bitfield.New(src, 32), Mask: bitfield.New(0xffffffff, 32)},
			{Value: bitfield.New(0, 32), Mask: bitfield.New(0, 32)},
			{Value: bitfield.New(0, 16), Mask: bitfield.New(0, 16)},
		},
		Action: "allow",
	}
}

func routeEntry(dst uint64) dataplane.Entry {
	return dataplane.Entry{
		Table:  "routing",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(dst, 32), PrefixLen: 24}},
		Action: "route",
		Args:   []bitfield.Value{bitfield.New(1, 9)},
	}
}

func TestSchedulerReleasesInOrder(t *testing.T) {
	plan := Plan{Events: []Event{
		{At: 30 * time.Microsecond, Kind: ClearFaults},
		{At: 10 * time.Microsecond, Kind: PortDown, Port: 1},
		{At: 10 * time.Microsecond, Kind: MapFull, Table: "acl"},
		{At: 20 * time.Microsecond, Kind: InstallFlap, Count: 2},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(plan)
	if got := s.DueBy(5 * time.Microsecond); len(got) != 0 {
		t.Fatalf("events due at 5us: %v", got)
	}
	due := s.DueBy(10 * time.Microsecond)
	if len(due) != 2 || due[0].Kind != PortDown || due[1].Kind != MapFull {
		t.Fatalf("events due at 10us: %v", due)
	}
	// Same-time events keep plan order (stable sort) — PortDown was
	// listed before MapFull.
	if got := s.DueBy(10 * time.Microsecond); len(got) != 0 {
		t.Fatalf("re-poll released events again: %v", got)
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	due = s.DueBy(time.Second)
	if len(due) != 2 || due[0].Kind != InstallFlap || due[1].Kind != ClearFaults {
		t.Fatalf("final events: %v", due)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after drain", s.Pending())
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Events: []Event{{At: -time.Second, Kind: ClearFaults}}},
		{Events: []Event{{Kind: PortDown, Port: -1}}},
		{Events: []Event{{Kind: MapFull}}},
		{Events: []Event{{Kind: MaskBudget, Budget: -1}}},
		{Events: []Event{{Kind: InstallFlap, Count: 0}}},
		{Events: []Event{{Kind: Kind(99)}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated: %+v", i, p.Events)
		}
	}
}

func TestInjectorMapFull(t *testing.T) {
	inj := Wrap(loadedFirewall(t))
	inj.SetMapFull("acl", true)
	err := inj.InstallEntry(aclEntry(1, 1))
	var mfe *MapFullError
	if !errors.As(err, &mfe) || mfe.Table != "acl" {
		t.Fatalf("install under map-full: %v", err)
	}
	if control.IsTransient(err) {
		t.Fatal("map-full must not be transient")
	}
	// Other tables are unaffected.
	if err := inj.InstallEntry(routeEntry(0x0a000000)); err != nil {
		t.Fatalf("routing install under acl map-full: %v", err)
	}
	inj.SetMapFull("acl", false)
	if err := inj.InstallEntry(aclEntry(1, 1)); err != nil {
		t.Fatalf("install after map-full-clear: %v", err)
	}
	if inj.Denials()["map-full"] != 1 {
		t.Fatalf("denials = %v", inj.Denials())
	}
}

func TestInjectorMaskBudget(t *testing.T) {
	inj := Wrap(loadedFirewall(t))
	inj.ArmMaskBudget(2)
	if err := inj.InstallEntry(aclEntry(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := inj.InstallEntry(aclEntry(2, 2)); err != nil {
		t.Fatal(err)
	}
	var mbe *MaskBudgetError
	if err := inj.InstallEntry(aclEntry(3, 3)); !errors.As(err, &mbe) {
		t.Fatalf("install past mask budget: %v", err)
	}
	// LPM installs carry no ternary mask and are not budgeted.
	if err := inj.InstallEntry(routeEntry(0x0a000000)); err != nil {
		t.Fatalf("lpm install under mask budget: %v", err)
	}
	inj.Reset()
	if err := inj.InstallEntry(aclEntry(3, 3)); err != nil {
		t.Fatalf("ternary install after reset: %v", err)
	}
}

func TestInjectorInstallFlapIsTransient(t *testing.T) {
	inj := Wrap(loadedFirewall(t))
	inj.ArmInstallFlap(2)
	err := inj.InstallEntry(aclEntry(1, 1))
	var tie *TransientInstallError
	if !errors.As(err, &tie) || tie.Op != "install" {
		t.Fatalf("first flapped write: %v", err)
	}
	if !control.IsTransient(err) {
		t.Fatalf("flap error not transient: %v", err)
	}
	if err := inj.DeleteEntry(aclEntry(1, 1)); !control.IsTransient(err) {
		t.Fatalf("second flapped write (delete): %v", err)
	}
	// Flap exhausted: the install lands, and the delete finds it.
	if err := inj.InstallEntry(aclEntry(1, 1)); err != nil {
		t.Fatalf("post-flap install: %v", err)
	}
	if err := inj.DeleteEntry(aclEntry(1, 1)); err != nil {
		t.Fatalf("post-flap delete: %v", err)
	}
	if got := inj.Denials()["install-flap"]; got != 2 {
		t.Fatalf("flap denials = %d, want 2", got)
	}
}

// TestFlapRetriesThroughControlChannel closes the loop the seam exists
// for: an agent-side flap fault surfaces as a retryable response, and a
// client with a retry policy rides it out transparently.
func TestFlapRetriesThroughControlChannel(t *testing.T) {
	inj := Wrap(loadedFirewall(t))
	inj.ArmInstallFlap(2)
	cli := control.Pipe(controlHandler{inj})
	defer cli.Close()
	cli.SetRetryPolicy(control.RetryPolicy{MaxAttempts: 4, Sleep: func(time.Duration) {}})
	if err := cli.InstallEntry(aclEntry(7, 1)); err != nil {
		t.Fatalf("install through flap with retry: %v", err)
	}
	if got := inj.Denials()["install-flap"]; got != 2 {
		t.Fatalf("flap denials = %d, want 2", got)
	}
}

// controlHandler adapts an Injector-wrapped target to the control
// protocol for the retry round-trip test (the full agent lives in
// package core; this isolates the Retryable classification).
type controlHandler struct{ inj *Injector }

func (h controlHandler) Handle(req *control.Request) *control.Response {
	if req.Kind != control.ReqInstallEntry {
		return &control.Response{Err: "unexpected " + req.Kind.String()}
	}
	if err := h.inj.InstallEntry(*req.Entry); err != nil {
		return &control.Response{Err: err.Error(), Retryable: control.IsTransient(err)}
	}
	return &control.Response{}
}

func TestApplyInterfaceFaults(t *testing.T) {
	tgt := loadedFirewall(t)
	inj := Wrap(tgt)
	dev, err := device.New(device.Config{Target: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(Event{Kind: PortDown, Port: 2}, dev, inj); err != nil {
		t.Fatal(err)
	}
	if dev.LinkUp(2) {
		t.Fatal("port 2 still up after PortDown apply")
	}
	if err := Apply(Event{Kind: QueueStuck, Port: 1}, dev, inj); err != nil {
		t.Fatal(err)
	}
	if err := Apply(Event{Kind: MapFull, Table: "acl"}, dev, inj); err != nil {
		t.Fatal(err)
	}
	var mfe *MapFullError
	if err := inj.InstallEntry(aclEntry(1, 1)); !errors.As(err, &mfe) {
		t.Fatalf("map-full not applied: %v", err)
	}
	if err := Apply(Event{Kind: ClearFaults}, dev, inj); err != nil {
		t.Fatal(err)
	}
	if !dev.LinkUp(2) {
		t.Fatal("port 2 down after ClearFaults apply")
	}
	// ClearFaults is a device-level event; control-plane faults are
	// lifted by their own events (MapFullClear) or Injector.Reset.
	if err := inj.InstallEntry(aclEntry(1, 1)); !errors.As(err, &mfe) {
		t.Fatalf("map-full unexpectedly lifted by device clear: %v", err)
	}
	if err := Apply(Event{Kind: MapFullClear, Table: "acl"}, dev, inj); err != nil {
		t.Fatal(err)
	}
	if err := inj.InstallEntry(aclEntry(1, 1)); err != nil {
		t.Fatalf("install after map-full-clear: %v", err)
	}
	if err := Apply(Event{Kind: Kind(99)}, dev, inj); err == nil {
		t.Fatal("unknown kind applied without error")
	}
}
