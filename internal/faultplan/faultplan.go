// Package faultplan schedules fault injection against the device's
// virtual clock and extends the device's interface-level fault
// vocabulary (port-down, bit-flip, queue-stuck) with control-plane
// faults: a table whose map is reported full, an exhausted ternary mask
// budget, and a flapping install path that fails transiently.
//
// The split mirrors where faults live on real hardware. Interface
// faults are applied to the device platform (device.InjectFault /
// ClearFaults); control-plane faults are applied by interposing on the
// target's control-plane writes with an Injector, the same seam the
// target errata model uses for behavioural quirks. A Plan is a list of
// events pinned to virtual-clock times; a Scheduler releases the due
// events as the session's clock advances, which keeps every run of the
// same plan byte-identical regardless of wall-clock timing or worker
// count.
//
// The package is deliberately target-agnostic: an Injector wraps any
// target.Target (all five backend classes, including decorated or
// errata-repaired flows), so a fault plan written against the
// reference runs unchanged against sdnet, tofino, ebpf, or smartnic —
// which is how the session layer (docs/robustness.md) schedules the
// same fault script across a heterogeneous host pool.
package faultplan

import (
	"fmt"
	"sort"
	"time"

	"netdebug/internal/dataplane"
	"netdebug/internal/device"
	"netdebug/internal/target"
)

// Kind enumerates schedulable fault events.
type Kind int

// Fault event kinds. The first three mirror device.FaultKind; the rest
// are control-plane faults applied through the Injector.
const (
	// PortDown takes a port's link down (device.FaultPortDown).
	PortDown Kind = iota
	// BitFlip corrupts one random bit per arriving frame on a port
	// (device.FaultBitFlip, seeded for determinism).
	BitFlip
	// QueueStuck freezes a port's output queue (device.FaultQueueStuck).
	QueueStuck
	// ClearFaults restores healthy hardware; frames frozen in stuck
	// queues drain through normal TX serialization.
	ClearFaults
	// MapFull marks a table's map as full: installs to it fail with
	// *MapFullError until a MapFullClear event.
	MapFull
	// MapFullClear lifts a MapFull fault from a table.
	MapFullClear
	// MaskBudget arms a ternary mask budget of Budget further ternary
	// installs; past it, ternary installs fail with *MaskBudgetError.
	MaskBudget
	// InstallFlap makes the next Count control-plane writes (installs
	// and deletes) fail with a retryable *TransientInstallError.
	InstallFlap
)

// String names the kind; these names appear in session event streams.
func (k Kind) String() string {
	switch k {
	case PortDown:
		return "port-down"
	case BitFlip:
		return "bit-flip"
	case QueueStuck:
		return "queue-stuck"
	case ClearFaults:
		return "clear-faults"
	case MapFull:
		return "map-full"
	case MapFullClear:
		return "map-full-clear"
	case MaskBudget:
		return "mask-budget"
	case InstallFlap:
		return "install-flap"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Event is one scheduled fault, due when the device's virtual clock
// reaches At.
type Event struct {
	At   time.Duration
	Kind Kind
	// Port targets PortDown/BitFlip/QueueStuck.
	Port int
	// Seed seeds BitFlip corruption.
	Seed int64
	// Table targets MapFull/MapFullClear.
	Table string
	// Budget arms MaskBudget.
	Budget int
	// Count arms InstallFlap.
	Count int
}

// Plan is a fault schedule. Events need not be pre-sorted; the
// Scheduler orders them by At (stable, so same-time events keep their
// plan order).
type Plan struct {
	Events []Event
}

// Validate rejects events whose kind-specific fields are missing.
func (p *Plan) Validate() error {
	for i, ev := range p.Events {
		if ev.At < 0 {
			return fmt.Errorf("faultplan: event %d (%s): negative time %v", i, ev.Kind, ev.At)
		}
		switch ev.Kind {
		case PortDown, BitFlip, QueueStuck:
			if ev.Port < 0 {
				return fmt.Errorf("faultplan: event %d (%s): negative port", i, ev.Kind)
			}
		case MapFull, MapFullClear:
			if ev.Table == "" {
				return fmt.Errorf("faultplan: event %d (%s): no table", i, ev.Kind)
			}
		case MaskBudget:
			if ev.Budget < 0 {
				return fmt.Errorf("faultplan: event %d (%s): negative budget", i, ev.Kind)
			}
		case InstallFlap:
			if ev.Count <= 0 {
				return fmt.Errorf("faultplan: event %d (%s): count must be positive", i, ev.Kind)
			}
		case ClearFaults:
		default:
			return fmt.Errorf("faultplan: event %d: unknown kind %v", i, ev.Kind)
		}
	}
	return nil
}

// Scheduler releases a plan's events as virtual time advances.
type Scheduler struct {
	events []Event
	next   int
}

// NewScheduler orders the plan's events by due time (stable) into a
// fresh scheduler; the plan is not modified.
func NewScheduler(p Plan) *Scheduler {
	events := append([]Event(nil), p.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return &Scheduler{events: events}
}

// DueBy consumes and returns every not-yet-released event due at or
// before now, in schedule order. The returned slice aliases the
// scheduler's storage; callers apply the events before the next call.
func (s *Scheduler) DueBy(now time.Duration) []Event {
	start := s.next
	for s.next < len(s.events) && s.events[s.next].At <= now {
		s.next++
	}
	return s.events[start:s.next]
}

// Pending reports how many events have not been released yet.
func (s *Scheduler) Pending() int { return len(s.events) - s.next }

// MapFullError reports an install rejected because the table's map is
// (fault-injected as) full.
type MapFullError struct{ Table string }

// Error implements error.
func (e *MapFullError) Error() string {
	return fmt.Sprintf("faultplan: table %s: map full", e.Table)
}

// MaskBudgetError reports a ternary install rejected because the mask
// budget is exhausted.
type MaskBudgetError struct{ Table string }

// Error implements error.
func (e *MaskBudgetError) Error() string {
	return fmt.Sprintf("faultplan: table %s: ternary mask budget exhausted", e.Table)
}

// TransientInstallError reports a control-plane write that failed on a
// flapping install path. It marks itself Transient, so it crosses the
// control channel as a retryable response and control.IsTransient
// recognises it.
type TransientInstallError struct {
	Op    string // "install" or "delete"
	Table string
}

// Error implements error.
func (e *TransientInstallError) Error() string {
	return fmt.Sprintf("faultplan: transient %s error on table %s", e.Op, e.Table)
}

// Transient marks the failure retryable.
func (e *TransientInstallError) Transient() bool { return true }

// Injector interposes control-plane faults on a target's write path.
// Reads and packet processing pass through untouched. Like the target
// it wraps, an Injector is not safe for concurrent use.
type Injector struct {
	target.Target
	mapFull    map[string]bool
	budgetOn   bool
	maskBudget int
	flapLeft   int
	// Denials counts writes rejected by injected faults, by fault name —
	// the session layer folds these into its status records.
	denials map[string]uint64
}

// Wrap interposes an injector in front of a target. With no faults
// armed it is transparent.
func Wrap(t target.Target) *Injector {
	return &Injector{
		Target:  t,
		mapFull: make(map[string]bool),
		denials: make(map[string]uint64),
	}
}

// SetMapFull marks a table's map full (or lifts the mark).
func (i *Injector) SetMapFull(table string, full bool) {
	if full {
		i.mapFull[table] = true
	} else {
		delete(i.mapFull, table)
	}
}

// ArmMaskBudget allows n further ternary installs before ternary
// installs start failing with *MaskBudgetError.
func (i *Injector) ArmMaskBudget(n int) {
	i.budgetOn = true
	i.maskBudget = n
}

// ArmInstallFlap makes the next n control-plane writes fail with a
// retryable *TransientInstallError.
func (i *Injector) ArmInstallFlap(n int) { i.flapLeft = n }

// Reset disarms every control-plane fault (the denial counters are
// kept; see Denials).
func (i *Injector) Reset() {
	clear(i.mapFull)
	i.budgetOn = false
	i.maskBudget = 0
	i.flapLeft = 0
}

// Denials returns writes rejected by injected faults, keyed by fault
// name (Kind strings), accumulated since Wrap.
func (i *Injector) Denials() map[string]uint64 { return i.denials }

func (i *Injector) deny(kind Kind, err error) error {
	i.denials[kind.String()]++
	return err
}

// isTernary reports whether the entry carries any ternary mask.
func isTernary(e *dataplane.Entry) bool {
	for _, k := range e.Keys {
		if k.Mask.Width() > 0 {
			return true
		}
	}
	return false
}

// InstallEntry applies armed control-plane faults, in flap → map-full →
// mask-budget order, before delegating to the wrapped target.
func (i *Injector) InstallEntry(e dataplane.Entry) error {
	if i.flapLeft > 0 {
		i.flapLeft--
		return i.deny(InstallFlap, &TransientInstallError{Op: "install", Table: e.Table})
	}
	if i.mapFull[e.Table] {
		return i.deny(MapFull, &MapFullError{Table: e.Table})
	}
	if i.budgetOn && isTernary(&e) {
		if i.maskBudget <= 0 {
			return i.deny(MaskBudget, &MaskBudgetError{Table: e.Table})
		}
		i.maskBudget--
	}
	return i.Target.InstallEntry(e)
}

// DeleteEntry applies the flap fault (deletes ride the same install
// path on real hardware) before delegating.
func (i *Injector) DeleteEntry(e dataplane.Entry) error {
	if i.flapLeft > 0 {
		i.flapLeft--
		return i.deny(InstallFlap, &TransientInstallError{Op: "delete", Table: e.Table})
	}
	return i.Target.DeleteEntry(e)
}

// Apply executes one event against the device (interface faults) or
// the injector (control-plane faults).
func Apply(ev Event, dev *device.Device, inj *Injector) error {
	switch ev.Kind {
	case PortDown:
		return dev.InjectFault(device.Fault{Kind: device.FaultPortDown, Port: ev.Port})
	case BitFlip:
		return dev.InjectFault(device.Fault{Kind: device.FaultBitFlip, Port: ev.Port, Seed: ev.Seed})
	case QueueStuck:
		return dev.InjectFault(device.Fault{Kind: device.FaultQueueStuck, Port: ev.Port})
	case ClearFaults:
		dev.ClearFaults()
		return nil
	case MapFull:
		inj.SetMapFull(ev.Table, true)
		return nil
	case MapFullClear:
		inj.SetMapFull(ev.Table, false)
		return nil
	case MaskBudget:
		inj.ArmMaskBudget(ev.Budget)
		return nil
	case InstallFlap:
		inj.ArmInstallFlap(ev.Count)
		return nil
	}
	return fmt.Errorf("faultplan: apply: unknown kind %v", ev.Kind)
}
