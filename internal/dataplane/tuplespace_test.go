package dataplane

// Differential tests and occupancy benchmarks for the tuple-space
// ternary index: on any entry set and any packet, lookup (tuple-space)
// must return exactly the entry the linear reference scan returns —
// including priority ties resolved by install order and keys wider than
// 64 bits — and must do so in O(distinct masks) rather than O(entries).

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/p4/ir"
	"netdebug/internal/p4/p4test"
)

type synthKey struct {
	w    int
	kind ir.MatchKind
}

// synthTable builds a ternary-kind tableState directly, bypassing the
// compiler, so tests control key widths and match kinds precisely.
func synthTable(keys []synthKey, size int) (*tableState, *ir.Action) {
	act := &ir.Action{Name: "act"}
	tks := make([]ir.TableKey, len(keys))
	for i, k := range keys {
		tks[i] = ir.TableKey{Kind: k.kind, Expr: ir.Const{Val: bitfield.New(0, k.w)}}
	}
	tbl := &ir.Table{Name: "synth", Keys: tks, Actions: []*ir.Action{act}, Size: size}
	return newTableState(tbl), act
}

// randVal returns a random value of width w, exercising the Hi word for
// wide keys.
func randVal(rng *rand.Rand, w int) bitfield.Value {
	return bitfield.New128(rng.Uint64(), rng.Uint64(), w)
}

// randMask returns a random mask biased toward structure: full, empty,
// prefix, or random bits — drawn from a small pool so mask tuples repeat
// and the tuple-space index forms non-trivial groups.
func randMask(rng *rand.Rand, w int) bitfield.Value {
	switch rng.Intn(4) {
	case 0:
		return bitfield.Mask(w)
	case 1:
		return bitfield.New(0, w)
	case 2:
		return prefixMask(w, rng.Intn(w+1))
	default:
		// One of 4 fixed random-looking patterns per width.
		seed := rand.New(rand.NewSource(int64(w)*16 + int64(rng.Intn(4))))
		return bitfield.New128(seed.Uint64(), seed.Uint64(), w)
	}
}

func installRandom(t testing.TB, ts *tableState, act *ir.Action, keys []synthKey, n int, rng *rand.Rand) {
	t.Helper()
	for i := 0; i < n; i++ {
		e := Entry{Table: "synth", Action: "act", Priority: rng.Intn(4)}
		for _, k := range keys {
			kv := KeyValue{Value: randVal(rng, k.w)}
			switch k.kind {
			case ir.MatchLPM:
				kv.PrefixLen = rng.Intn(k.w + 1)
			case ir.MatchTernary:
				kv.Mask = randMask(rng, k.w)
			}
			e.Keys = append(e.Keys, kv)
		}
		if err := ts.install(e, act); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
}

// TestTupleSpaceMatchesLinearDifferential is the fuzz-style differential
// guard: random entry sets vs random (and entry-derived, so frequently
// matching) probes under several key layouts, with deliberately tight
// priority bands to exercise order tie-breaking.
func TestTupleSpaceMatchesLinearDifferential(t *testing.T) {
	layouts := [][]synthKey{
		{{32, ir.MatchTernary}},
		{{32, ir.MatchTernary}, {32, ir.MatchTernary}, {16, ir.MatchTernary}},
		{{128, ir.MatchTernary}, {16, ir.MatchTernary}},                // >64-bit keys
		{{48, ir.MatchExact}, {32, ir.MatchLPM}, {8, ir.MatchTernary}}, // mixed kinds
		{{65, ir.MatchTernary}, {64, ir.MatchLPM}},                     // straddles the word boundary
	}
	for li, keys := range layouts {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed*100 + int64(li)))
			ts, act := synthTable(keys, 1<<20)
			installRandom(t, ts, act, keys, 300, rng)
			vals := make([]bitfield.Value, len(keys))
			for probe := 0; probe < 2000; probe++ {
				if probe%2 == 0 || len(ts.ternary) == 0 {
					for i, k := range keys {
						vals[i] = randVal(rng, k.w)
					}
				} else {
					// Derive the probe from a random installed entry so hits
					// (and multi-entry overlaps) are common, mutating one key.
					base := ts.ternary[rng.Intn(len(ts.ternary))]
					for i := range keys {
						vals[i] = base.Entry.Keys[i].Value
					}
					j := rng.Intn(len(keys))
					vals[j] = vals[j].Xor(bitfield.New128(0, 1<<uint(rng.Intn(8)), keys[j].w))
				}
				got := ts.lookup(vals)
				want := ts.lookupTernaryLinear(vals)
				if got != want {
					t.Fatalf("layout %d seed %d probe %d: tuple-space %+v, linear %+v (vals %v)",
						li, seed, probe, got, want, vals)
				}
			}
		}
	}
}

// TestTupleSpaceClearAndReinstall guards the lazy-sort/dirty flags across
// clear cycles.
func TestTupleSpaceClearAndReinstall(t *testing.T) {
	keys := []synthKey{{32, ir.MatchTernary}}
	ts, act := synthTable(keys, 1<<20)
	rng := rand.New(rand.NewSource(42))
	installRandom(t, ts, act, keys, 50, rng)
	ts.clear()
	if got := ts.lookup([]bitfield.Value{bitfield.New(7, 32)}); got != nil {
		t.Fatalf("lookup after clear returned %+v", got)
	}
	installRandom(t, ts, act, keys, 50, rng)
	vals := make([]bitfield.Value, 1)
	for probe := 0; probe < 500; probe++ {
		vals[0] = randVal(rng, 32)
		if got, want := ts.lookup(vals), ts.lookupTernaryLinear(vals); got != want {
			t.Fatalf("post-clear probe %d: tuple-space %+v, linear %+v", probe, got, want)
		}
	}
}

// TestTernaryMaskLimit exercises the mask-set bound targets whose
// ternary emulation unrolls one scan section per distinct mask (the
// eBPF backend) set through SetTernaryMaskLimit: installs reusing an
// installed tuple succeed, a tuple past the bound fails with a
// MaskSetError, and nothing about the accepted entries' resolution
// changes.
func TestTernaryMaskLimit(t *testing.T) {
	keys := []synthKey{{32, ir.MatchTernary}}
	ts, act := synthTable(keys, 1<<10)
	ts.maskLimit = 3
	install := func(maskBits, v int) error {
		return ts.install(Entry{
			Table: "synth", Action: "act",
			Keys: []KeyValue{{Value: bitfield.New(uint64(v), 32), Mask: prefixMask(32, maskBits)}},
		}, act)
	}
	for i, maskBits := range []int{8, 16, 24, 8, 16} {
		if err := install(maskBits, i<<24); err != nil {
			t.Fatalf("install %d (/%d): %v", i, maskBits, err)
		}
	}
	var maskErr *MaskSetError
	if err := install(32, 99); !errors.As(err, &maskErr) {
		t.Fatalf("fourth distinct mask: err = %v, want MaskSetError", err)
	}
	if maskErr.Table != "synth" || maskErr.Limit != 3 {
		t.Fatalf("error detail: %+v", maskErr)
	}
	if len(ts.groups) != 3 || ts.count != 5 {
		t.Fatalf("groups=%d count=%d, want 3 groups over 5 entries", len(ts.groups), ts.count)
	}
	// The rejected entry left no trace: lookups still resolve against
	// the linear reference.
	vals := []bitfield.Value{bitfield.New(99, 32)}
	if got, want := ts.lookup(vals), ts.lookupTernaryLinear(vals); got != want {
		t.Fatalf("post-reject lookup: tuple-space %+v, linear %+v", got, want)
	}
}

// TestSetTernaryMaskLimitContract: the hook follows the same
// set-before-install contract as SetTernaryTieBreak — it cannot
// tighten a table that already holds entries (that would invalidate
// accepted installs) — and rejects non-ternary tables.
func TestSetTernaryMaskLimitContract(t *testing.T) {
	eng := routerEngine(t)
	if err := eng.SetTernaryMaskLimit("ipv4_lpm", 4); err == nil {
		t.Fatal("lpm table must reject a ternary mask limit")
	}
	if err := eng.SetTernaryMaskLimit("nope", 4); err == nil {
		t.Fatal("unknown table must error")
	}
	fw := mustEngine(t, p4test.Firewall)
	if err := fw.SetTernaryMaskLimit("acl", 4); err != nil {
		t.Fatalf("empty ternary table must accept a limit: %v", err)
	}
	if err := fw.InstallEntry(Entry{
		Table: "acl", Action: "allow", Priority: 1,
		Keys: []KeyValue{
			{Value: bitfield.New(0, 32), Mask: bitfield.New(0, 32)},
			{Value: bitfield.New(0, 32), Mask: bitfield.New(0, 32)},
			{Value: bitfield.New(0, 16), Mask: bitfield.New(0, 16)},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := fw.SetTernaryMaskLimit("acl", 2); err == nil {
		t.Fatal("mask limit must not be settable after entries are installed")
	}
}

// aclKeys is the occupancy-benchmark layout: an IPv4 5-tuple-ish ACL.
var aclKeys = []synthKey{
	{32, ir.MatchTernary}, // dst
	{32, ir.MatchTernary}, // src
	{16, ir.MatchTernary}, // port
}

// aclMasks is the fixed mask pool for the occupancy benchmarks — 8
// distinct tuples, the realistic "few templates, many flows" shape
// tuple-space search exploits.
var aclMasks = [][3]bitfield.Value{
	{bitfield.Mask(32), bitfield.Mask(32), bitfield.Mask(16)},
	{bitfield.Mask(32), bitfield.Mask(32), bitfield.New(0, 16)},
	{bitfield.Mask(32), bitfield.New(0, 32), bitfield.Mask(16)},
	{prefixMask(32, 24), bitfield.Mask(32), bitfield.Mask(16)},
	{prefixMask(32, 24), prefixMask(32, 16), bitfield.New(0, 16)},
	{bitfield.Mask(32), prefixMask(32, 8), bitfield.Mask(16)},
	{prefixMask(32, 16), bitfield.New(0, 32), bitfield.Mask(16)},
	{prefixMask(32, 28), prefixMask(32, 28), bitfield.Mask(16)},
}

// aclEntry builds the i-th deterministic benchmark entry.
func aclEntry(i int) Entry {
	m := aclMasks[i%len(aclMasks)]
	return Entry{
		Table: "synth", Action: "act",
		Priority: i % 4,
		Keys: []KeyValue{
			{Value: bitfield.New(uint64(0x0a000000+i), 32), Mask: m[0]},
			{Value: bitfield.New(uint64(0xc0a80000+i*7), 32), Mask: m[1]},
			{Value: bitfield.New(uint64(i%65536), 16), Mask: m[2]},
		},
	}
}

func aclTable(tb testing.TB, entries int) *tableState {
	tb.Helper()
	ts, act := synthTable(aclKeys, 1<<21)
	for i := 0; i < entries; i++ {
		if err := ts.install(aclEntry(i), act); err != nil {
			tb.Fatalf("install %d: %v", i, err)
		}
	}
	return ts
}

// aclProbes mixes hits (drawn from installed entries) and misses.
func aclProbes(entries, n int) [][]bitfield.Value {
	rng := rand.New(rand.NewSource(1))
	out := make([][]bitfield.Value, n)
	for p := range out {
		if p%2 == 0 {
			i := rng.Intn(entries)
			e := aclEntry(i)
			out[p] = []bitfield.Value{e.Keys[0].Value, e.Keys[1].Value, e.Keys[2].Value}
		} else {
			out[p] = []bitfield.Value{
				bitfield.New(uint64(0x7f000000)+rng.Uint64()%1000, 32),
				bitfield.New(rng.Uint64()>>32, 32),
				bitfield.New(rng.Uint64()%65536, 16),
			}
		}
	}
	return out
}

var benchSink *boundEntry

// occupancies is the benchmark sweep; the linear variant stops at 10^5
// (10^6 linear scans would take minutes per op batch).
var occupancies = []int{100, 1000, 10000, 100000, 1000000}

func BenchmarkTernaryLookupTupleSpace(b *testing.B) {
	for _, n := range occupancies {
		b.Run(fmt.Sprintf("entries%d", n), func(b *testing.B) {
			ts := aclTable(b, n)
			probes := aclProbes(n, 1024)
			ts.lookup(probes[0]) // settle the lazy group sort
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink = ts.lookup(probes[i%len(probes)])
			}
		})
	}
}

func BenchmarkTernaryLookupLinear(b *testing.B) {
	for _, n := range occupancies {
		if n > 100000 {
			continue
		}
		b.Run(fmt.Sprintf("entries%d", n), func(b *testing.B) {
			ts := aclTable(b, n)
			probes := aclProbes(n, 1024)
			ts.lookupTernaryLinear(probes[0]) // settle the lazy sort
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink = ts.lookupTernaryLinear(probes[i%len(probes)])
			}
		})
	}
}

// BenchmarkTernaryInstall measures population cost at scale (the lazy
// sort keeps it amortized O(1) per install).
func BenchmarkTernaryInstall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		aclTable(b, 100000)
	}
}
