package dataplane

// Tests for the batched packet API: ProcessBatch must preserve Process
// semantics exactly, keep every context's output alive for the whole
// batch, and stay allocation-free in steady state.

import (
	"bytes"
	"testing"

	"netdebug/internal/packet"
)

func TestProcessBatchMatchesProcess(t *testing.T) {
	e := routerEngine(t)
	frames := [][]byte{
		packet.BuildUDPv4(macA, macB, ipA, ipB, 100, 200, []byte("one")),
		packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{10, 9, 9, 9}, 1, 2, []byte("two")),
		packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{192, 168, 0, 1}, 1, 2, nil), // miss -> drop
	}
	// Reference results from the single-packet path, copied out.
	var wantOut [][]byte
	var wantEgress []uint64
	ref := e.NewContext()
	for _, f := range frames {
		out, eg := e.Process(ref, f, 0)
		wantOut = append(wantOut, append([]byte(nil), out...))
		wantEgress = append(wantEgress, eg)
	}

	var pkts []*Context
	for _, f := range frames {
		ctx := e.NewContext()
		ctx.In = f
		pkts = append(pkts, ctx)
	}
	e.ProcessBatch(pkts)
	for i, ctx := range pkts {
		if (ctx.Out == nil) != (wantOut[i] == nil) || !bytes.Equal(ctx.Out, wantOut[i]) {
			t.Errorf("packet %d: batch out %x, want %x", i, ctx.Out, wantOut[i])
		}
		if ctx.Out != nil && ctx.Egress != wantEgress[i] {
			t.Errorf("packet %d: batch egress %d, want %d", i, ctx.Egress, wantEgress[i])
		}
	}
	// Every output must still be intact now that the whole batch ran —
	// the simultaneous-validity contract single-context Process lacks.
	if !bytes.Equal(pkts[0].Out, wantOut[0]) {
		t.Error("first batch output clobbered by later packets")
	}
}

func TestProcessBatchAllocFree(t *testing.T) {
	e := routerEngine(t)
	frame := packet.BuildUDPv4(macA, macB, ipA, ipB, 100, 200, []byte("data"))
	pkts := e.AcquireBatch(nil, 8)
	for _, ctx := range pkts {
		ctx.In = frame
	}
	e.ProcessBatch(pkts) // warm up per-context buffers
	allocs := testing.AllocsPerRun(200, func() {
		e.ProcessBatch(pkts)
	})
	perPacket := allocs / float64(len(pkts))
	if perPacket > maxProcessAllocs {
		t.Errorf("batch: %v allocs/packet, want <= %d", perPacket, maxProcessAllocs)
	}
	e.ReleaseBatch(pkts)
}

func TestAcquireBatchReuse(t *testing.T) {
	e := routerEngine(t)
	pkts := e.AcquireBatch(nil, 4)
	if len(pkts) != 4 {
		t.Fatalf("batch size %d, want 4", len(pkts))
	}
	e.ReleaseBatch(pkts)
	if raceEnabled {
		t.Skip("sync.Pool allocates under race instrumentation")
	}
	allocs := testing.AllocsPerRun(100, func() {
		pkts = e.AcquireBatch(pkts, 4)
		e.ReleaseBatch(pkts)
	})
	// Pool round-trips may cost a few words but must not rebuild contexts.
	if allocs > 4 {
		t.Errorf("acquire/release cycle: %v allocs, want <= 4", allocs)
	}
}
