package dataplane

// Churn tests for DeleteEntry: the tuple-space index must stay
// equivalent to the linear reference scan under arbitrary interleavings
// of installs and deletes (the lazy sorts and group-dominance repair
// are the code under test), and the engine-level delete path must
// honor each table kind's match identity. The concurrent variant runs
// install/delete churn against live ProcessBatch traffic serialized by
// a lock — the resident session layer's access pattern — under -race.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/p4/ir"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

// entryIdentity renders a ternary entry's delete identity — mask
// tuple, masked value tuple, priority — mirroring the derivation in
// deleteTernary, so shadow bookkeeping can group identity-equal
// duplicates.
func entryIdentity(keys []synthKey, e Entry) string {
	var buf []byte
	for i, k := range keys {
		var mask bitfield.Value
		switch k.kind {
		case ir.MatchExact:
			mask = bitfield.Mask(k.w)
		case ir.MatchLPM:
			mask = prefixMask(k.w, e.Keys[i].PrefixLen)
		case ir.MatchTernary:
			mask = e.Keys[i].Mask
			if mask.Width() == 0 {
				mask = bitfield.Mask(k.w)
			}
		}
		buf = mask.AppendBytes(buf)
		buf = e.Keys[i].Value.And(mask).AppendBytes(buf)
	}
	return fmt.Sprintf("%d|%x", e.Priority, buf)
}

// TestTernaryChurnDifferential interleaves installs, deletes, and
// differential lookups: after every mutation the tuple-space lookup
// must agree with the linear reference on random and entry-derived
// probes, and the entry count must match shadow bookkeeping.
func TestTernaryChurnDifferential(t *testing.T) {
	layouts := [][]synthKey{
		{{32, ir.MatchTernary}},
		{{32, ir.MatchTernary}, {16, ir.MatchTernary}},
		{{128, ir.MatchTernary}, {16, ir.MatchTernary}},                // >64-bit keys
		{{48, ir.MatchExact}, {32, ir.MatchLPM}, {8, ir.MatchTernary}}, // mixed kinds
	}
	for li, keys := range layouts {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed*977 + int64(li)))
			ts, act := synthTable(keys, 1<<20)
			var live []Entry
			vals := make([]bitfield.Value, len(keys))
			probe := func(tag string, op int) {
				for p := 0; p < 40; p++ {
					if p%2 == 0 || len(ts.ternary) == 0 {
						for i, k := range keys {
							vals[i] = randVal(rng, k.w)
						}
					} else {
						base := ts.ternary[rng.Intn(len(ts.ternary))]
						for i := range keys {
							vals[i] = base.Entry.Keys[i].Value
						}
						j := rng.Intn(len(keys))
						vals[j] = vals[j].Xor(bitfield.New128(0, 1<<uint(rng.Intn(8)), keys[j].w))
					}
					got := ts.lookup(vals)
					want := ts.lookupTernaryLinear(vals)
					if got != want {
						t.Fatalf("layout %d seed %d %s op %d: tuple-space %+v, linear %+v",
							li, seed, tag, op, got, want)
					}
				}
			}
			for op := 0; op < 400; op++ {
				if len(live) == 0 || rng.Intn(3) > 0 {
					e := Entry{Table: "synth", Action: "act", Priority: rng.Intn(4)}
					for _, k := range keys {
						kv := KeyValue{Value: randVal(rng, k.w)}
						switch k.kind {
						case ir.MatchLPM:
							kv.PrefixLen = rng.Intn(k.w + 1)
						case ir.MatchTernary:
							kv.Mask = randMask(rng, k.w)
						}
						e.Keys = append(e.Keys, kv)
					}
					if err := ts.install(e, act); err != nil {
						t.Fatalf("install op %d: %v", op, err)
					}
					live = append(live, e)
				} else {
					i := rng.Intn(len(live))
					victim := live[i]
					if err := ts.delete(victim, act); err != nil {
						t.Fatalf("delete op %d: %v", op, err)
					}
					// A delete removes every identity-equal duplicate, so the
					// shadow list drops all of them too.
					id := entryIdentity(keys, victim)
					kept := live[:0]
					for _, e := range live {
						if entryIdentity(keys, e) != id {
							kept = append(kept, e)
						}
					}
					live = kept
				}
				if ts.count != len(live) {
					t.Fatalf("op %d: count %d, shadow %d", op, ts.count, len(live))
				}
				if op%20 == 0 {
					probe("mid", op)
				}
			}
			probe("final", -1)
			// Drain: every remaining entry deletes cleanly, and a second
			// delete of each reports the typed miss. Dedupe by identity
			// first — one delete removes all identity-equal duplicates.
			byID := make(map[string]Entry)
			for _, e := range live {
				byID[entryIdentity(keys, e)] = e
			}
			live = live[:0]
			for _, e := range byID {
				live = append(live, e)
			}
			for _, e := range live {
				if err := ts.delete(e, act); err != nil {
					t.Fatalf("drain delete: %v", err)
				}
				var miss *NoSuchEntryError
				if err := ts.delete(e, act); !errors.As(err, &miss) {
					t.Fatalf("double delete: got %v, want NoSuchEntryError", err)
				}
			}
			if ts.count != 0 || len(ts.groups) != 0 || len(ts.groupIdx) != 0 {
				t.Fatalf("after drain: count=%d groups=%d idx=%d", ts.count, len(ts.groups), len(ts.groupIdx))
			}
		}
	}
}

// TestDeleteRespectsTieBreakOrder pins the interaction of deletes with
// the equal-priority tie-break: removing the winning duplicate must
// promote the correct survivor under both FIFO (reference) and LIFO
// (driver quirk) resolution.
func TestDeleteRespectsTieBreakOrder(t *testing.T) {
	for _, lifo := range []bool{false, true} {
		keys := []synthKey{{16, ir.MatchTernary}}
		ts, act := synthTable(keys, 1<<10)
		ts.tieLIFO = lifo
		mask := bitfield.Mask(16)
		mk := func(val uint64, prio int) Entry {
			return Entry{Table: "synth", Action: "act", Priority: prio,
				Keys: []KeyValue{{Value: bitfield.New(val, 16), Mask: mask}}}
		}
		// Two entries matching the same packets at the same priority via
		// different masks (full vs wildcard), plus a higher-priority one.
		wild := Entry{Table: "synth", Action: "act", Priority: 1,
			Keys: []KeyValue{{Value: bitfield.New(0, 16), Mask: bitfield.New(0, 16)}}}
		if err := ts.install(mk(7, 1), act); err != nil {
			t.Fatal(err)
		}
		if err := ts.install(wild, act); err != nil {
			t.Fatal(err)
		}
		if err := ts.install(mk(7, 3), act); err != nil {
			t.Fatal(err)
		}
		probe := []bitfield.Value{bitfield.New(7, 16)}
		if got, want := ts.lookup(probe), ts.lookupTernaryLinear(probe); got != want {
			t.Fatalf("lifo=%v pre-delete: tuple-space %+v, linear %+v", lifo, got, want)
		}
		if got := ts.lookup(probe); got.Priority != 3 {
			t.Fatalf("lifo=%v: want priority-3 winner, got %+v", lifo, got)
		}
		if err := ts.delete(mk(7, 3), act); err != nil {
			t.Fatal(err)
		}
		got := ts.lookup(probe)
		if want := ts.lookupTernaryLinear(probe); got != want {
			t.Fatalf("lifo=%v post-delete: tuple-space %+v, linear %+v", lifo, got, want)
		}
		if got == nil || got.Priority != 1 {
			t.Fatalf("lifo=%v: want a priority-1 survivor, got %+v", lifo, got)
		}
	}
}

// TestEngineDeleteEntryLPMAndExact covers the engine-level delete path
// for the trie and hash structures through real programs.
func TestEngineDeleteEntryLPMAndExact(t *testing.T) {
	eng := mustEngine(t, p4test.Router)
	route := func(net uint64, plen int, port uint64) Entry {
		return Entry{
			Table:  "ipv4_lpm",
			Keys:   []KeyValue{{Value: bitfield.New(net, 32), PrefixLen: plen}},
			Action: "ipv4_forward",
			Args:   []bitfield.Value{bitfield.New(0x020000000001, 48), bitfield.New(port, 9)},
		}
	}
	for _, e := range []Entry{route(0x0a000000, 8, 1), route(0x0a000100, 24, 2), route(0x0a000102, 32, 3)} {
		if err := eng.InstallEntry(e); err != nil {
			t.Fatal(err)
		}
	}
	frame := packet.BuildUDPv4(packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
		packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, make([]byte, 26))
	ctx := eng.NewContext()
	egressOf := func() (uint64, bool) {
		out, egress := eng.Process(ctx, frame, 0)
		return egress, out != nil
	}
	if eg, ok := egressOf(); !ok || eg != 3 {
		t.Fatalf("pre-delete: egress %d ok=%v, want 3", eg, ok)
	}
	if err := eng.DeleteEntry(route(0x0a000102, 32, 3)); err != nil {
		t.Fatal(err)
	}
	if eg, ok := egressOf(); !ok || eg != 2 {
		t.Fatalf("after /32 delete: egress %d ok=%v, want 2", eg, ok)
	}
	if err := eng.DeleteEntry(route(0x0a000100, 24, 2)); err != nil {
		t.Fatal(err)
	}
	if eg, ok := egressOf(); !ok || eg != 1 {
		t.Fatalf("after /24 delete: egress %d ok=%v, want 1", eg, ok)
	}
	var miss *NoSuchEntryError
	if err := eng.DeleteEntry(route(0x0a000100, 24, 2)); !errors.As(err, &miss) {
		t.Fatalf("double delete: got %v, want NoSuchEntryError", err)
	}
	if got := eng.TableCount("ipv4_lpm"); got != 1 {
		t.Fatalf("count after deletes: %d, want 1", got)
	}

	// Exact table: delete removes the precise key, misses type an error.
	sw := mustEngine(t, p4test.L2Switch)
	mac := func(last byte) Entry {
		return Entry{
			Table:  "mac_table",
			Keys:   []KeyValue{{Value: bitfield.New(uint64(last), 48)}},
			Action: "forward",
			Args:   []bitfield.Value{bitfield.New(2, 9)},
		}
	}
	if err := sw.InstallEntry(mac(5)); err != nil {
		t.Fatal(err)
	}
	if err := sw.DeleteEntry(mac(5)); err != nil {
		t.Fatal(err)
	}
	if err := sw.DeleteEntry(mac(5)); !errors.As(err, &miss) {
		t.Fatalf("exact double delete: got %v, want NoSuchEntryError", err)
	}
	if err := sw.DeleteEntry(mac(6)); !errors.As(err, &miss) {
		t.Fatalf("exact absent delete: got %v, want NoSuchEntryError", err)
	}
}

// TestChurnUnderTrafficSerialized drives install/delete churn and
// ProcessBatch traffic from separate goroutines serialized by a mutex —
// the resident session layer's locking discipline — and asserts every
// batch's outcome is one of the two legal table states for the probed
// key. Run under -race this doubles as the proof that the lazy sorts
// leave no unsynchronized state behind the lock.
func TestChurnUnderTrafficSerialized(t *testing.T) {
	eng := mustEngine(t, p4test.Router)
	baseline := Entry{
		Table:  "ipv4_lpm",
		Keys:   []KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.New(0x020000000001, 48), bitfield.New(1, 9)},
	}
	if err := eng.InstallEntry(baseline); err != nil {
		t.Fatal(err)
	}
	override := Entry{
		Table:  "ipv4_lpm",
		Keys:   []KeyValue{{Value: bitfield.New(0x0a000102, 32), PrefixLen: 32}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.New(0x020000000001, 48), bitfield.New(2, 9)},
	}
	frame := packet.BuildUDPv4(packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
		packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, make([]byte, 26))

	const rounds = 300
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		installed := false
		for i := 0; i < rounds; i++ {
			mu.Lock()
			var err error
			if installed {
				err = eng.DeleteEntry(override)
			} else {
				err = eng.InstallEntry(override)
			}
			mu.Unlock()
			if err != nil {
				t.Errorf("churn round %d: %v", i, err)
				return
			}
			installed = !installed
			// Churn extra /32s so the trie sees real growth and shrink.
			e := override
			e.Keys = []KeyValue{{Value: bitfield.New(0x0a00f000+uint64(rng.Intn(64)), 32), PrefixLen: 32}}
			mu.Lock()
			if err := eng.InstallEntry(e); err == nil {
				err = eng.DeleteEntry(e)
			}
			mu.Unlock()
		}
	}()
	go func() {
		defer wg.Done()
		pkts := eng.AcquireBatch(nil, 8)
		defer eng.ReleaseBatch(pkts)
		for i := 0; i < rounds; i++ {
			for _, ctx := range pkts {
				ctx.In = frame
				ctx.InPort = 0
				ctx.CollectTrace = false
			}
			mu.Lock()
			eng.ProcessBatch(pkts)
			for _, ctx := range pkts {
				if ctx.Dropped() {
					t.Errorf("traffic round %d: dropped", i)
					mu.Unlock()
					return
				}
				if eg := eng.EgressSpec(ctx); eg != 1 && eg != 2 {
					t.Errorf("traffic round %d: egress %d, want 1 or 2", i, eg)
					mu.Unlock()
					return
				}
			}
			mu.Unlock()
		}
	}()
	wg.Wait()
}
