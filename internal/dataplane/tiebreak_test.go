package dataplane

// Tests for the ternary tie-break hook (Engine.SetTernaryTieBreak) and
// the tuple-group accessor (Engine.TernaryGroupCount) that hardware
// targets use: LIFO resolution must invert only the equal-priority
// order, must hold identically on the tuple-space index and the linear
// reference scan, and must be rejected once entries exist.

import (
	"math/rand"
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/p4/ir"
	"netdebug/internal/p4/p4test"
)

// twoOverlapping installs two entries with equal priority that both
// match the all-zero key: a match-any entry first, then an exact-zero
// entry in a different mask group.
func twoOverlapping(t *testing.T, ts *tableState, act *ir.Action) (first, second *boundEntry) {
	t.Helper()
	entries := []Entry{
		{Table: "synth", Action: "act", Priority: 2,
			Keys: []KeyValue{{Value: bitfield.New(0, 32), Mask: bitfield.New(0, 32)}}},
		{Table: "synth", Action: "act", Priority: 2,
			Keys: []KeyValue{{Value: bitfield.New(0, 32), Mask: bitfield.Mask(32)}}},
	}
	for _, e := range entries {
		if err := ts.install(e, act); err != nil {
			t.Fatal(err)
		}
	}
	return ts.ternary[0], ts.ternary[1]
}

func TestTernaryTieBreakLIFO(t *testing.T) {
	probe := []bitfield.Value{bitfield.New(0, 32)}

	fifo, act := synthTable([]synthKey{{32, ir.MatchTernary}}, 64)
	first, _ := twoOverlapping(t, fifo, act)
	if got := fifo.lookup(probe); got != first {
		t.Fatalf("FIFO: want the first-installed entry, got order %d", got.order)
	}
	if got := fifo.lookupTernaryLinear(probe); got != first {
		t.Fatalf("FIFO linear: got order %d", got.order)
	}

	lifo, act := synthTable([]synthKey{{32, ir.MatchTernary}}, 64)
	lifo.tieLIFO = true
	_, second := twoOverlapping(t, lifo, act)
	if got := lifo.lookup(probe); got != second {
		t.Fatalf("LIFO: want the newest entry, got order %d", got.order)
	}
	if got := lifo.lookupTernaryLinear(probe); got != second {
		t.Fatalf("LIFO linear: got order %d", got.order)
	}

	// Priorities still dominate the install order in either mode.
	hi := Entry{Table: "synth", Action: "act", Priority: 7,
		Keys: []KeyValue{{Value: bitfield.New(0, 32), Mask: bitfield.New(0, 32)}}}
	if err := lifo.install(hi, act); err != nil {
		t.Fatal(err)
	}
	if got := lifo.lookup(probe); got.Priority != 7 {
		t.Fatalf("priority must outrank LIFO order, got priority %d", got.Priority)
	}
}

// TestTernaryTieBreakDifferential re-runs the tuple-space-vs-linear
// differential under LIFO resolution: both paths must still agree on
// every probe, including same-group dominance resolved at install time.
func TestTernaryTieBreakDifferential(t *testing.T) {
	keys := []synthKey{{32, ir.MatchTernary}, {16, ir.MatchTernary}}
	rng := rand.New(rand.NewSource(42))
	ts, act := synthTable(keys, 4096)
	ts.tieLIFO = true
	installRandom(t, ts, act, keys, 600, rng)
	for i := 0; i < 2000; i++ {
		probe := []bitfield.Value{randVal(rng, 32), randVal(rng, 16)}
		if i%2 == 0 && len(ts.ternary) > 0 {
			src := ts.ternary[rng.Intn(len(ts.ternary))]
			probe = []bitfield.Value{src.Keys[0].Value, src.Keys[1].Value}
		}
		fast := ts.lookupTernary(probe)
		slow := ts.lookupTernaryLinear(probe)
		if fast != slow {
			t.Fatalf("probe %d: tuple-space and linear disagree under LIFO: %v vs %v", i, fast, slow)
		}
	}
}

func TestEngineTieBreakHook(t *testing.T) {
	eng := mustEngine(t, p4test.Firewall)
	if err := eng.SetTernaryTieBreak("acl", true); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetTernaryTieBreak("routing", true); err == nil {
		t.Fatal("routing is LPM; tie-break must be rejected")
	}
	if err := eng.SetTernaryTieBreak("nosuch", true); err == nil {
		t.Fatal("unknown table must error")
	}
	anyAddr := bitfield.New(0, 32)
	if err := eng.InstallEntry(Entry{
		Table: "acl", Action: "allow",
		Keys: []KeyValue{
			{Value: anyAddr, Mask: anyAddr},
			{Value: anyAddr, Mask: anyAddr},
			{Value: bitfield.New(0, 16), Mask: bitfield.New(0, 16)},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetTernaryTieBreak("acl", false); err == nil {
		t.Fatal("tie-break change after installs must be rejected")
	}
	if got := eng.TernaryGroupCount("acl"); got != 1 {
		t.Fatalf("group count = %d, want 1", got)
	}
	if got := eng.TernaryGroupCount("routing"); got != 0 {
		t.Fatalf("LPM table group count = %d, want 0", got)
	}
}
