package dataplane

import (
	"math/bits"

	"netdebug/internal/bitfield"
)

// This file implements the path-compressed multibit LPM trie that backs
// lpm tables. The retired one-node-per-bit binary trie (lpmTrie, in
// tables.go) is kept as the differential oracle; TestDifferentialLPMTrie
// fuzzes the two against each other.
//
// Layout: nodes consume the key MultibitStride bits at a time, most
// significant chunk first. Runs of single-child interior nodes are
// collapsed into a per-node skip string of whole chunks (path
// compression), so a lone /32 costs one node, not 32. Within a node,
// prefixes that end inside the node's stride live in a 511-bit internal
// bitmap (one slot per length/value pair, lengths 0..8), and child edges
// live in a 256-bit external bitmap; both index packed slices by bitmap
// rank, the tree-bitmap trick that keeps sparse nodes at a few words
// instead of 256 pointers.

// MultibitStride is the number of key bits an LPM trie node consumes per
// step. Exported because the Tofino resource model prices LPM tables
// from this geometry (see LPMEntryBits).
const MultibitStride = 8

// lpmNodeOverheadBitsPerEntry amortizes the per-node structures of a
// stride-8 tree-bitmap node — 511-bit internal bitmap, 256-bit external
// bitmap, 32-bit child base pointer, ~800 bits total — over the ~100
// entries a node holds in the dense routing tables hardware LPM
// compilers assume.
const lpmNodeOverheadBitsPerEntry = 8

// LPMEntryBits models the per-entry SRAM cost, in bits, of an
// algorithmic multibit-trie LPM implementation over a keyBits-wide key:
// the stored prefix value, a prefix-length field, and the amortized
// node overhead. This replaces the former "double the key width"
// heuristic; for realistic keys it sits well under 2x.
func LPMEntryBits(keyBits int) int {
	return keyBits + bits.Len(uint(keyBits)) + lpmNodeOverheadBitsPerEntry
}

// mbTrie is a path-compressed stride-8 multibit trie over key bits,
// most significant bit first.
type mbTrie struct {
	root  *mbNode
	nodes int
}

// mbNode field order is lookup-driven: an interior visit touches the
// skip header, the external bitmap, the slice headers — the first two
// cache lines — and only reaches the internal bitmap when the node
// actually holds entries, so the 64-byte intBM sits last.
type mbNode struct {
	// skip holds whole 8-bit chunks every key must match before this
	// node's stride (path compression).
	skip []byte
	// extBM marks child edges by stride chunk value.
	extBM [4]uint64
	// entries and children are packed in bitmap-rank order.
	entries  []*boundEntry
	children []*mbNode
	// intBM marks in-node prefixes: a prefix that ends L bits into this
	// node's stride (0 <= L <= 8) with value p (the prefix's L stride
	// bits) occupies bit (1<<L)-1 + p. 2^0+...+2^8 = 511 slots.
	intBM [8]uint64
}

// bmHas/bmSet/bmClear/bmRank are the packed-bitmap primitives; bmRank
// counts set bits strictly below i, which is exactly the packed-slice
// index of bit i when it is set, and the insertion point when it is not.
func bmHas(bm []uint64, i int) bool { return bm[i>>6]&(1<<(uint(i)&63)) != 0 }
func bmSet(bm []uint64, i int)      { bm[i>>6] |= 1 << (uint(i) & 63) }
func bmClear(bm []uint64, i int)    { bm[i>>6] &^= 1 << (uint(i) & 63) }

func bmRank(bm []uint64, i int) int {
	r := bits.OnesCount64(bm[i>>6] & (1<<(uint(i)&63) - 1))
	for w := i >> 6; w > 0; w-- {
		r += bits.OnesCount64(bm[w-1])
	}
	return r
}

// strideChunk returns the n bits of val that start d bits below the most
// significant bit, as an integer. n is at most MultibitStride, so the
// result always fits one word; the two-word extraction is open-coded
// because this runs several times per table lookup on the packet path.
func strideChunk(val bitfield.Value, d, n int) int {
	sh := uint(val.W - d - n)
	if sh >= 64 {
		return int(val.Hi>>(sh-64)) & (1<<uint(n) - 1)
	}
	x := val.Lo >> sh
	if sh > 0 {
		x |= val.Hi << (64 - sh)
	}
	return int(x) & (1<<uint(n) - 1)
}

func (n *mbNode) internal(idx int) *boundEntry {
	if !bmHas(n.intBM[:], idx) {
		return nil
	}
	return n.entries[bmRank(n.intBM[:], idx)]
}

// setInternal installs an entry at an internal slot; it returns false
// when the slot is already occupied (duplicate prefix).
func (n *mbNode) setInternal(idx int, be *boundEntry) bool {
	if bmHas(n.intBM[:], idx) {
		return false
	}
	bmSet(n.intBM[:], idx)
	r := bmRank(n.intBM[:], idx)
	n.entries = append(n.entries, nil)
	copy(n.entries[r+1:], n.entries[r:])
	n.entries[r] = be
	return true
}

func (n *mbNode) clearInternal(idx int) {
	r := bmRank(n.intBM[:], idx)
	bmClear(n.intBM[:], idx)
	n.entries = append(n.entries[:r], n.entries[r+1:]...)
}

func (n *mbNode) child(c int) *mbNode {
	if !bmHas(n.extBM[:], c) {
		return nil
	}
	return n.children[bmRank(n.extBM[:], c)]
}

func (n *mbNode) addChild(c int, m *mbNode) {
	bmSet(n.extBM[:], c)
	r := bmRank(n.extBM[:], c)
	n.children = append(n.children, nil)
	copy(n.children[r+1:], n.children[r:])
	n.children[r] = m
}

func (n *mbNode) removeChild(c int) {
	r := bmRank(n.extBM[:], c)
	bmClear(n.extBM[:], c)
	n.children = append(n.children[:r], n.children[r+1:]...)
}

// splitNode breaks n's skip string at chunk si: everything after the
// break (the skip tail plus all of n's payload) moves into a new child
// hanging off edge skip[si], and n keeps the skip head with an empty
// payload. The caller then inserts into n, giving it a second edge or
// an internal entry, so the no-empty-single-child-node invariant holds.
func (t *mbTrie) splitNode(n *mbNode, si int) {
	c := &mbNode{
		intBM:    n.intBM,
		extBM:    n.extBM,
		entries:  n.entries,
		children: n.children,
		skip:     append([]byte(nil), n.skip[si+1:]...),
	}
	edge := n.skip[si]
	n.skip = n.skip[:si]
	n.intBM = [8]uint64{}
	n.extBM = [4]uint64{}
	n.entries = nil
	n.children = nil
	n.addChild(int(edge), c)
	t.nodes++
}

// insert adds a prefix; it returns false on duplicates.
func (t *mbTrie) insert(val bitfield.Value, plen int, be *boundEntry) bool {
	if t.root == nil {
		t.root = &mbNode{}
		t.nodes = 1
	}
	n, d := t.root, 0
	for {
		// Walk (or split) the node's path-compressed skip chunks. The
		// strict > keeps prefix placement canonical: a prefix's final
		// chunk is never consumed as a skip byte, so a prefix ending on
		// a chunk boundary always lives as an internal length-8 slot in
		// the node whose stride covers that chunk — splits can then
		// never move a prefix relative to the insert/remove walk.
		for si := 0; si < len(n.skip); si++ {
			if plen-d > MultibitStride && strideChunk(val, d, MultibitStride) == int(n.skip[si]) {
				d += MultibitStride
				continue
			}
			t.splitNode(n, si)
			break
		}
		rem := plen - d
		if rem <= MultibitStride {
			// The prefix ends inside this node's stride: internal slot
			// (length rem, value = the prefix's rem stride bits).
			p := 0
			if rem > 0 {
				p = strideChunk(val, d, rem)
			}
			return n.setInternal(1<<rem-1+p, be)
		}
		c := strideChunk(val, d, MultibitStride)
		if next := n.child(c); next != nil {
			n, d = next, d+MultibitStride
			continue
		}
		// No edge: grow a path-compressed tail holding the rest of the
		// prefix in a single node.
		tail := &mbNode{}
		d += MultibitStride
		for plen-d > MultibitStride {
			tail.skip = append(tail.skip, byte(strideChunk(val, d, MultibitStride)))
			d += MultibitStride
		}
		tail.setInternal(1<<(plen-d)-1+strideChunk(val, d, plen-d), be)
		n.addChild(c, tail)
		t.nodes++
		return true
	}
}

// lookup returns the longest-prefix match for val, or nil. It performs
// no heap allocations.
func (t *mbTrie) lookup(val bitfield.Value) *boundEntry {
	n := t.root
	if n == nil {
		return nil
	}
	w := val.Width()
	var best *boundEntry
	d := 0
	for {
		for _, sb := range n.skip {
			if w-d < MultibitStride || strideChunk(val, d, MultibitStride) != int(sb) {
				return best
			}
			d += MultibitStride
		}
		sw := w - d
		if sw > MultibitStride {
			sw = MultibitStride
		}
		v := 0
		if sw > 0 {
			v = strideChunk(val, d, sw)
		}
		// Longest prefix ending inside this node: probe lengths sw..0.
		// Pure interior nodes hold no entries at all, so the packed
		// slice being empty skips the probe ladder outright.
		if len(n.entries) > 0 {
			for L := sw; L >= 0; L-- {
				if be := n.internal(1<<L - 1 + v>>(sw-L)); be != nil {
					best = be
					break
				}
			}
		}
		if sw < MultibitStride {
			return best
		}
		next := n.child(v)
		if next == nil {
			return best
		}
		n, d = next, d+MultibitStride
	}
}

// remove clears the entry at a prefix; it returns false when no entry
// is installed there. Unlike the binary oracle, emptied nodes are
// pruned and single-child chains re-collapsed into skip strings, so
// memory shrinks back under install/delete churn.
func (t *mbTrie) remove(val bitfield.Value, plen int) bool {
	n := t.root
	if n == nil {
		return false
	}
	type edgeFrame struct {
		n    *mbNode
		edge int
	}
	var stack [16]edgeFrame
	sp := 0
	d := 0
	for {
		for _, sb := range n.skip {
			// Mirror of insert's canonical walk: a prefix ending at or
			// inside this skip byte would have split the node when it
			// was installed, so an intact skip byte proves absence.
			if plen-d <= MultibitStride || strideChunk(val, d, MultibitStride) != int(sb) {
				return false
			}
			d += MultibitStride
		}
		rem := plen - d
		if rem <= MultibitStride {
			p := 0
			if rem > 0 {
				p = strideChunk(val, d, rem)
			}
			idx := 1<<rem - 1 + p
			if !bmHas(n.intBM[:], idx) {
				return false
			}
			n.clearInternal(idx)
			break
		}
		c := strideChunk(val, d, MultibitStride)
		next := n.child(c)
		if next == nil {
			return false
		}
		stack[sp] = edgeFrame{n, c}
		sp++
		n, d = next, d+MultibitStride
	}
	// Prune now-empty nodes bottom-up.
	for sp > 0 && len(n.entries) == 0 && len(n.children) == 0 {
		sp--
		stack[sp].n.removeChild(stack[sp].edge)
		t.nodes--
		n = stack[sp].n
	}
	// Re-collapse: a payload-free node with a single child folds the
	// edge and the child into its skip string, restoring the
	// path-compression invariant insert maintains.
	if len(n.entries) == 0 && len(n.children) == 1 {
		var edge int
		for c := 0; c < 256; c++ {
			if bmHas(n.extBM[:], c) {
				edge = c
				break
			}
		}
		c := n.children[0]
		n.skip = append(append(n.skip, byte(edge)), c.skip...)
		n.intBM = c.intBM
		n.extBM = c.extBM
		n.entries = c.entries
		n.children = c.children
		t.nodes--
	}
	// A fully emptied trie collapses to nothing — in particular the
	// root must not keep a stale skip string that would distort the
	// shape of the next insert.
	if len(t.root.entries) == 0 && len(t.root.children) == 0 {
		t.root = nil
		t.nodes = 0
	}
	return true
}

// mbNodeFixedBytes approximates the in-memory size of an mbNode minus
// its variable-length slices: three slice headers (72), the internal
// bitmap (64), and the external bitmap (32).
const mbNodeFixedBytes = 168

// stats walks the trie and reports its node count and modeled resident
// bytes (fixed node size plus packed-slice backing arrays).
func (t *mbTrie) stats() (nodes, bytes int) {
	var walk func(n *mbNode)
	var b int
	count := 0
	walk = func(n *mbNode) {
		count++
		b += mbNodeFixedBytes + cap(n.skip) + 8*cap(n.entries) + 8*cap(n.children)
		for _, c := range n.children {
			walk(c)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return count, b
}

// binTrieNodeBytes is the in-memory size of one binary-trie node: two
// child pointers and an entry pointer.
const binTrieNodeBytes = 24

// stats reports the binary oracle's node count and modeled bytes, for
// the memory-ratio comparison against the multibit trie.
func (t *lpmTrie) stats() (nodes, bytes int) {
	var walk func(n *trieNode) int
	walk = func(n *trieNode) int {
		c := 1
		for _, ch := range n.children {
			if ch != nil {
				c += walk(ch)
			}
		}
		return c
	}
	n := walk(&t.root)
	return n, n * binTrieNodeBytes
}
