package dataplane

// Differential fuzzing, shared edge-case coverage, churn/prune
// regression, and the 10^6-entry memory-ratio assertion for the
// path-compressed multibit LPM trie against the retired binary-trie
// oracle, plus the benchgate-pinned install/lookup benchmarks the
// -speedup ratios ride on.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"netdebug/internal/bitfield"
)

// triePair drives the multibit trie and the binary oracle in lockstep;
// every mutation asserts the two return identical verdicts.
type triePair struct {
	t   *testing.T
	mb  mbTrie
	bin lpmTrie
}

func (p *triePair) insert(val bitfield.Value, plen int) bool {
	p.t.Helper()
	be := &boundEntry{}
	got := p.mb.insert(val, plen, be)
	want := p.bin.insert(val, plen, be)
	if got != want {
		p.t.Fatalf("insert %s/%d: multibit=%v binary=%v", val, plen, got, want)
	}
	return got
}

func (p *triePair) remove(val bitfield.Value, plen int) bool {
	p.t.Helper()
	got := p.mb.remove(val, plen)
	want := p.bin.remove(val, plen)
	if got != want {
		p.t.Fatalf("remove %s/%d: multibit=%v binary=%v", val, plen, got, want)
	}
	return got
}

func (p *triePair) probe(val bitfield.Value) *boundEntry {
	p.t.Helper()
	got := p.mb.lookup(val)
	want := p.bin.lookup(val)
	if got != want {
		p.t.Fatalf("lookup %s: multibit=%p binary=%p", val, got, want)
	}
	return got
}

// trieWidths are the key widths the differential and edge tests sweep:
// a classic IPv4-style 32, a sub-stride width, a width that is not a
// multiple of the stride (partial final chunk), one just past a single
// word, and the full 128-bit form.
var trieWidths = []int{5, 20, 32, 65, 128}

// runTrieDifferential churns one trie pair with seeded random
// insert/remove traffic over a deliberately collision-rich prefix pool
// and cross-checks lookups (random probes plus probes descending from
// installed prefixes) after every few mutations.
func runTrieDifferential(t *testing.T, seed int64, w, ops int) {
	rng := rand.New(rand.NewSource(seed))
	p := &triePair{t: t}
	type pfx struct {
		val  bitfield.Value
		plen int
	}
	var installed []pfx
	// Small base pool so prefixes overlap, nest, duplicate, and shadow.
	pool := make([]bitfield.Value, 16)
	for i := range pool {
		pool[i] = randVal(rng, w)
	}
	for i := 0; i < ops; i++ {
		plen := rng.Intn(w + 1)
		val := pool[rng.Intn(len(pool))].And(prefixMask(w, plen))
		switch {
		case rng.Intn(3) > 0 || len(installed) == 0:
			if p.insert(val, plen) {
				installed = append(installed, pfx{val, plen})
			}
		default:
			j := rng.Intn(len(installed))
			if !p.remove(installed[j].val, installed[j].plen) {
				t.Fatalf("installed prefix %s/%d not removable", installed[j].val, installed[j].plen)
			}
			// Removing the same prefix twice must miss on both tries.
			if p.remove(installed[j].val, installed[j].plen) {
				t.Fatalf("double remove of %s/%d succeeded", installed[j].val, installed[j].plen)
			}
			installed[j] = installed[len(installed)-1]
			installed = installed[:len(installed)-1]
		}
		if i%8 != 0 {
			continue
		}
		for k := 0; k < 16; k++ {
			p.probe(randVal(rng, w))
		}
		// Probes that share a prefix with installed entries exercise the
		// longest-match resolution, not just misses.
		for k := 0; k < 8 && len(installed) > 0; k++ {
			e := installed[rng.Intn(len(installed))]
			suffix := randVal(rng, w).And(prefixMask(w, e.plen).Not())
			p.probe(e.val.Or(suffix))
		}
	}
	for _, e := range installed {
		p.probe(e.val)
	}
}

// TestDifferentialLPMTrie is the fuzz proof the multibit rewrite rides
// on: across key widths (including >64-bit and non-stride-aligned) and
// at 1, 2, and 8 parallel workers (each worker owns an independent
// seeded pair, so -race covers the trie code paths concurrently), the
// multibit trie and the binary oracle agree on every verdict.
func TestDifferentialLPMTrie(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			var wg sync.WaitGroup
			for wk := 0; wk < workers; wk++ {
				wg.Add(1)
				go func(wk int) {
					defer wg.Done()
					for wi, w := range trieWidths {
						runTrieDifferential(t, int64(1000*workers+100*wk+wi), w, 1500)
					}
				}(wk)
			}
			wg.Wait()
		})
	}
}

// TestLPMTrieEdgeCases pins the shared contract of both trie
// implementations on the corner shapes the differential fuzzer only
// hits probabilistically.
func TestLPMTrieEdgeCases(t *testing.T) {
	t.Run("default-route", func(t *testing.T) {
		for _, w := range trieWidths {
			p := &triePair{t: t}
			if !p.insert(bitfield.New(0, w), 0) {
				t.Fatalf("w=%d: /0 insert failed", w)
			}
			if p.probe(randVal(rand.New(rand.NewSource(1)), w)) == nil {
				t.Fatalf("w=%d: /0 does not match arbitrary value", w)
			}
			if !p.remove(bitfield.New(0, w), 0) {
				t.Fatalf("w=%d: /0 remove failed", w)
			}
			if p.probe(bitfield.New(0, w)) != nil {
				t.Fatalf("w=%d: removed /0 still matches", w)
			}
		}
	})
	t.Run("full-length-wide", func(t *testing.T) {
		for _, w := range []int{65, 100, 128} {
			p := &triePair{t: t}
			val := bitfield.New128(^uint64(0)>>7, 0xdeadbeefcafef00d, w)
			if !p.insert(val, w) {
				t.Fatalf("w=%d: full-length insert failed", w)
			}
			if p.probe(val) == nil {
				t.Fatalf("w=%d: full-length prefix does not match its own value", w)
			}
			// One flipped low bit must miss (host route, not a prefix).
			if p.probe(val.Xor(bitfield.New(1, w))) != nil {
				t.Fatalf("w=%d: full-length prefix matched a different value", w)
			}
			if !p.remove(val, w) {
				t.Fatalf("w=%d: full-length remove failed", w)
			}
		}
	})
	t.Run("reinsert", func(t *testing.T) {
		p := &triePair{t: t}
		val := bitfield.New(0x0a614e00, 32)
		if !p.insert(val, 24) {
			t.Fatal("first insert failed")
		}
		if p.insert(val, 24) {
			t.Fatal("duplicate insert accepted")
		}
		if !p.remove(val, 24) {
			t.Fatal("remove failed")
		}
		if p.remove(val, 24) {
			t.Fatal("second remove of the same prefix succeeded")
		}
		if !p.insert(val, 24) {
			t.Fatal("re-insert after remove failed")
		}
		if p.probe(val) == nil {
			t.Fatal("re-inserted prefix does not match")
		}
	})
	t.Run("overlapping-longest-match", func(t *testing.T) {
		p := &triePair{t: t}
		val := bitfield.New(0x0a6170ff, 32)
		byLen := map[int]*boundEntry{}
		for _, plen := range []int{0, 8, 13, 16, 24, 32} {
			be := &boundEntry{}
			byLen[plen] = be
			if !p.mb.insert(val.And(prefixMask(32, plen)), plen, be) ||
				!p.bin.insert(val.And(prefixMask(32, plen)), plen, be) {
				t.Fatalf("/%d insert failed", plen)
			}
		}
		if got := p.probe(val); got != byLen[32] {
			t.Fatalf("full value resolved to /%v, want /32", got)
		}
		// Peeling the deepest prefixes off one by one must fall back to
		// the next-longest overlap each time.
		lens := []int{32, 24, 16, 13, 8, 0}
		for i, plen := range lens[:len(lens)-1] {
			if !p.remove(val.And(prefixMask(32, plen)), plen) {
				t.Fatalf("/%d remove failed", plen)
			}
			if got := p.probe(val); got != byLen[lens[i+1]] {
				t.Fatalf("after removing /%d: resolved wrong entry, want /%d", plen, lens[i+1])
			}
		}
	})
}

// trieChurnEntry generates the i-th prefix of the churn/memory
// workloads: mostly /32 host routes with every 16th entry a /24, the
// same mix the million-flow sweep installs.
func trieChurnEntry(i int) (bitfield.Value, int) {
	if i%16 == 0 {
		return bitfield.New(uint64(0x40000000+(i<<8))&0xffffffff, 32), 24
	}
	return bitfield.New(uint64(0x0a000000+i)&0xffffffff, 32), 32
}

// TestLPMTrieChurnPrunes is the regression test for the delete-leak
// satellite: the binary trie documents that it leaves dead interior
// nodes behind, the multibit trie must not — after full removal the
// trie collapses to nothing, and repeated install/delete cycles hold
// the node count flat instead of growing it.
func TestLPMTrieChurnPrunes(t *testing.T) {
	const n = 20000
	var mb mbTrie
	for i := 0; i < n; i++ {
		val, plen := trieChurnEntry(i)
		if !mb.insert(val, plen, &boundEntry{}) {
			t.Fatalf("insert %d failed", i)
		}
	}
	full, fullBytes := mb.stats()
	for i := 0; i < n; i++ {
		val, plen := trieChurnEntry(i)
		if !mb.remove(val, plen) {
			t.Fatalf("remove %d failed", i)
		}
	}
	if nodes, bytes := mb.stats(); nodes != 0 || bytes != 0 {
		t.Fatalf("after removing all %d entries: %d nodes / %d bytes left (full trie was %d/%d)",
			n, nodes, bytes, full, fullBytes)
	}
	// Churn cycles: node count after each refill must equal the first
	// fill exactly — no dead interior growth.
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < n; i++ {
			val, plen := trieChurnEntry(i)
			mb.insert(val, plen, &boundEntry{})
		}
		if nodes, _ := mb.stats(); nodes != full {
			t.Fatalf("cycle %d: %d nodes, want %d (churn grew the trie)", cycle, nodes, full)
		}
		for i := 0; i < n; i++ {
			val, plen := trieChurnEntry(i)
			mb.remove(val, plen)
		}
	}
	// Contrast pin: the oracle's documented leak really exists (if this
	// starts failing, the oracle changed and the comment in tables.go
	// is stale).
	var bin lpmTrie
	for i := 0; i < 1000; i++ {
		val, plen := trieChurnEntry(i)
		bin.insert(val, plen, &boundEntry{})
	}
	grown, _ := bin.stats()
	for i := 0; i < 1000; i++ {
		val, plen := trieChurnEntry(i)
		bin.remove(val, plen)
	}
	if after, _ := bin.stats(); after != grown {
		t.Fatalf("binary oracle pruned (%d -> %d nodes); differential contract changed", grown, after)
	}
}

// measureHeap reports the live heap delta of build() with the garbage
// collector settled on both sides.
func measureHeap(build func()) uint64 {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	build()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	return m1.HeapAlloc - m0.HeapAlloc
}

// TestLPMTrieMemoryRatio is the acceptance-criteria assertion: at 10^6
// installed prefixes the multibit trie must cost >=5x less memory than
// the binary-trie reference — on the modeled per-node accounting and on
// the measured live heap.
func TestLPMTrieMemoryRatio(t *testing.T) {
	const n = 1_000_000
	// One shared entry pool so entry allocations cancel out of the
	// heap measurement.
	entries := make([]*boundEntry, 256)
	for i := range entries {
		entries[i] = &boundEntry{}
	}
	var bin *lpmTrie
	binHeap := measureHeap(func() {
		bin = &lpmTrie{}
		for i := 0; i < n; i++ {
			val, plen := trieChurnEntry(i)
			bin.insert(val, plen, entries[i%256])
		}
	})
	binNodes, binBytes := bin.stats()
	bin = nil
	var mb *mbTrie
	mbHeap := measureHeap(func() {
		mb = &mbTrie{}
		for i := 0; i < n; i++ {
			val, plen := trieChurnEntry(i)
			mb.insert(val, plen, entries[i%256])
		}
	})
	mbNodes, mbBytes := mb.stats()
	t.Logf("binary:   %d nodes, %d modeled bytes, %d heap bytes", binNodes, binBytes, binHeap)
	t.Logf("multibit: %d nodes, %d modeled bytes, %d heap bytes", mbNodes, mbBytes, mbHeap)
	t.Logf("ratio: %.1fx modeled, %.1fx heap", float64(binBytes)/float64(mbBytes), float64(binHeap)/float64(mbHeap))
	if binBytes < 5*mbBytes {
		t.Errorf("modeled memory ratio %.2fx < 5x (binary %d, multibit %d)",
			float64(binBytes)/float64(mbBytes), binBytes, mbBytes)
	}
	if binHeap < 5*mbHeap {
		t.Errorf("measured heap ratio %.2fx < 5x (binary %d, multibit %d)",
			float64(binHeap)/float64(mbHeap), binHeap, mbHeap)
	}
	runtime.KeepAlive(mb)
}

// benchTrieLookupBase sizes the resident trie the lookup benchmarks
// probe: the sweep's 10^6-entry tier, where the binary trie's ~2.3
// nodes/entry working set has fallen out of cache while the multibit
// trie's node set still fits.
const benchTrieLookupBase = 1_000_000

// The install benchmarks measure cold fill of a 10^4-entry table per
// op — the cost the million-flow sweep pays at every occupancy point.
// benchgate pins both and asserts the binary:multibit -speedup ratio.
func BenchmarkLPMTrieInstallMultibit(b *testing.B) {
	b.Run("entries10000", func(b *testing.B) {
		be := &boundEntry{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mb := &mbTrie{}
			for j := 0; j < 10000; j++ {
				val, plen := trieChurnEntry(j)
				mb.insert(val, plen, be)
			}
		}
	})
}

func BenchmarkLPMTrieInstallBinary(b *testing.B) {
	b.Run("entries10000", func(b *testing.B) {
		be := &boundEntry{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bin := &lpmTrie{}
			for j := 0; j < 10000; j++ {
				val, plen := trieChurnEntry(j)
				bin.insert(val, plen, be)
			}
		}
	})
}

// benchProbeIndex scatters probe order over the resident entries so
// neither trie gets sequential-prefetch help.
func benchProbeIndex(i int) int {
	return int(uint32(i)*2654435761) % benchTrieLookupBase
}

func BenchmarkLPMTrieLookupMultibit(b *testing.B) {
	var mb mbTrie
	be := &boundEntry{}
	for i := 0; i < benchTrieLookupBase; i++ {
		val, plen := trieChurnEntry(i)
		mb.insert(val, plen, be)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val, _ := trieChurnEntry(benchProbeIndex(i))
		if mb.lookup(val) == nil {
			b.Fatal("lookup missed a resident prefix")
		}
	}
}

func BenchmarkLPMTrieLookupBinary(b *testing.B) {
	var bin lpmTrie
	be := &boundEntry{}
	for i := 0; i < benchTrieLookupBase; i++ {
		val, plen := trieChurnEntry(i)
		bin.insert(val, plen, be)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val, _ := trieChurnEntry(benchProbeIndex(i))
		if bin.lookup(val) == nil {
			b.Fatal("lookup missed a resident prefix")
		}
	}
}
