package dataplane

import (
	"fmt"
	"sort"

	"netdebug/internal/bitfield"
	"netdebug/internal/p4/ir"
	"netdebug/internal/stats"
)

// KeyValue is one key component of a table entry.
type KeyValue struct {
	Value bitfield.Value
	// PrefixLen applies to lpm keys: number of leading bits that must
	// match. For exact keys it is ignored.
	PrefixLen int
	// Mask applies to ternary keys. A zero-width mask means exact.
	Mask bitfield.Value
}

// Entry is one table entry as installed by the control plane.
type Entry struct {
	Table    string
	Keys     []KeyValue
	Action   string
	Args     []bitfield.Value
	Priority int // ternary only; higher wins
}

// tableKind classifies the lookup structure used for a table.
type tableKind int

const (
	kindExact tableKind = iota
	kindLPM
	kindTernary
)

// boundEntry is an entry resolved against the program.
type boundEntry struct {
	Entry
	action *ir.Action
	// order is the install sequence number, used to break priority ties
	// deterministically (first installed wins).
	order int
	// masks/want are the per-key match masks and pre-masked match values
	// for ternary tables, precomputed at install time so lookups perform
	// no mask construction.
	masks []bitfield.Value
	want  []bitfield.Value
}

// ternaryGroup is one tuple of the tuple-space search structure: every
// entry whose per-key mask tuple is identical lands in the same group,
// and within a group a masked packet key can be matched by at most one
// hash probe. Two entries of a group with equal masked values match
// exactly the same packets, so only the dominant one — by (priority
// desc, order asc) — is kept.
type ternaryGroup struct {
	masks   []bitfield.Value
	entries map[string]*boundEntry // masked key bytes -> dominant entry
	// maxPrio is the highest priority present in the group; lookups
	// visit groups in descending maxPrio order and stop as soon as the
	// current best strictly beats every remaining group.
	maxPrio int
}

// tableState is the runtime state of one table.
type tableState struct {
	def     *ir.Table
	kind    tableKind
	lpmIdx  int // index of the lpm key within def.Keys
	exact   map[string]*boundEntry
	tries   map[string]*mbTrie // keyed by the exact portion of the key
	ternary []*boundEntry      // linear reference list, lazily sorted
	// ternarySorted records whether ternary is currently in (priority
	// desc, order asc) order; installs append and defer the sort so
	// populating a large table is not quadratic.
	ternarySorted bool
	// groups is the tuple-space index over the ternary entries, lazily
	// ordered by descending maxPrio (groupsSorted tracks validity).
	groups       []*ternaryGroup
	groupIdx     map[string]*ternaryGroup // mask-tuple bytes -> group
	groupsSorted bool
	// maskBuf is the scratch buffer tuple-space lookups serialize masked
	// key bytes into.
	maskBuf []byte
	count   int
	// capacity is the usable entry count; defaults to def.Size, targets
	// may lower it to model architectural limits.
	capacity int
	nextOrd  int
	// keyBuf is the scratch buffer lookups serialize key bytes into; the
	// map index converts it with string(keyBuf), which the compiler
	// performs without allocating.
	keyBuf []byte
	// tieLIFO inverts the ternary equal-priority tie-break from
	// first-installed-wins (the P4 reference rule) to
	// newest-installed-wins — the resolution quirk some hardware table
	// drivers exhibit. Targets set it through Engine.SetTernaryTieBreak.
	tieLIFO bool
	// maskLimit bounds the number of distinct mask tuples (tuple-space
	// groups) a ternary table may hold; 0 means unbounded. Targets whose
	// ternary emulation unrolls one match section per mask (the eBPF
	// mask-set scan) set it through Engine.SetTernaryMaskLimit.
	maskLimit int
	// hit/miss are this table's counters, precomputed by the engine so
	// the hot path never builds counter-name strings.
	hit, miss *stats.Counter
}

func newTableState(def *ir.Table) *tableState {
	ts := &tableState{def: def, lpmIdx: -1, capacity: def.Size}
	for i, k := range def.Keys {
		switch k.Kind {
		case ir.MatchTernary:
			ts.kind = kindTernary
		case ir.MatchLPM:
			if ts.kind != kindTernary {
				ts.kind = kindLPM
			}
			ts.lpmIdx = i
		}
	}
	switch ts.kind {
	case kindExact:
		ts.exact = make(map[string]*boundEntry)
	case kindLPM:
		ts.tries = make(map[string]*mbTrie)
	case kindTernary:
		ts.groupIdx = make(map[string]*ternaryGroup)
	}
	return ts
}

// beats reports whether entry a wins over entry b under the table's
// ternary resolution rule: higher priority first, then install order —
// earliest wins under the P4 reference rule, newest wins when the
// tieLIFO quirk is enabled. The mode must be chosen before entries are
// installed: the tuple-space index resolves same-group dominance at
// install time.
func (ts *tableState) beats(a, b *boundEntry) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if ts.tieLIFO {
		return a.order > b.order
	}
	return a.order < b.order
}

// appendKeyBytes appends the byte representation of each non-skipped key
// value to buf and returns the extended buffer. It is the allocation-free
// core of exact and LPM-group key construction.
func appendKeyBytes(buf []byte, vals []bitfield.Value, skip int) []byte {
	for i := range vals {
		if i == skip {
			continue
		}
		buf = vals[i].AppendBytes(buf)
	}
	return buf
}

// validate checks an entry's shape — key count, key widths, prefix
// ranges, action argument count and widths — without touching table
// state. It is the check a conforming map driver performs before
// inserting, which is why targets modelling accept-but-discard driver
// defects still run it.
func (ts *tableState) validate(e Entry, action *ir.Action) error {
	if len(e.Keys) != len(ts.def.Keys) {
		return fmt.Errorf("table %s: entry has %d keys, table has %d",
			ts.def.Name, len(e.Keys), len(ts.def.Keys))
	}
	for i, k := range e.Keys {
		w := ts.def.Keys[i].Expr.Width()
		if k.Value.Width() != w {
			return fmt.Errorf("table %s key %d: width %d, want %d",
				ts.def.Name, i, k.Value.Width(), w)
		}
		if ts.def.Keys[i].Kind == ir.MatchLPM && (k.PrefixLen < 0 || k.PrefixLen > w) {
			return fmt.Errorf("table %s key %d: prefix length %d outside [0,%d]",
				ts.def.Name, i, k.PrefixLen, w)
		}
	}
	if len(e.Args) != len(action.Params) {
		return fmt.Errorf("table %s: action %s takes %d args, entry has %d",
			ts.def.Name, action.Name, len(action.Params), len(e.Args))
	}
	for i, a := range e.Args {
		if a.Width() != action.Params[i].Width {
			return fmt.Errorf("table %s: action %s arg %d width %d, want %d",
				ts.def.Name, action.Name, i, a.Width(), action.Params[i].Width)
		}
	}
	return nil
}

// install validates and inserts an entry.
func (ts *tableState) install(e Entry, action *ir.Action) error {
	if err := ts.validate(e, action); err != nil {
		return err
	}
	if ts.count >= ts.capacity {
		return &CapacityError{Table: ts.def.Name, Size: ts.capacity}
	}
	be := &boundEntry{Entry: e, action: action, order: ts.nextOrd}
	ts.nextOrd++
	switch ts.kind {
	case kindExact:
		vals := make([]bitfield.Value, len(e.Keys))
		for i := range e.Keys {
			vals[i] = e.Keys[i].Value
		}
		k := string(appendKeyBytes(nil, vals, -1))
		if _, dup := ts.exact[k]; dup {
			return fmt.Errorf("table %s: duplicate entry", ts.def.Name)
		}
		ts.exact[k] = be
	case kindLPM:
		vals := make([]bitfield.Value, len(e.Keys))
		for i := range e.Keys {
			vals[i] = e.Keys[i].Value
		}
		group := string(appendKeyBytes(nil, vals, ts.lpmIdx))
		trie := ts.tries[group]
		if trie == nil {
			trie = &mbTrie{}
			ts.tries[group] = trie
		}
		lk := e.Keys[ts.lpmIdx]
		if !trie.insert(lk.Value, lk.PrefixLen, be) {
			return fmt.Errorf("table %s: duplicate prefix %s/%d", ts.def.Name, lk.Value, lk.PrefixLen)
		}
	case kindTernary:
		be.masks = make([]bitfield.Value, len(e.Keys))
		be.want = make([]bitfield.Value, len(e.Keys))
		for i, kv := range e.Keys {
			w := ts.def.Keys[i].Expr.Width()
			var mask bitfield.Value
			switch ts.def.Keys[i].Kind {
			case ir.MatchExact:
				mask = bitfield.Mask(w)
			case ir.MatchLPM:
				mask = prefixMask(w, kv.PrefixLen)
			case ir.MatchTernary:
				mask = kv.Mask
				if mask.Width() == 0 {
					mask = bitfield.Mask(w)
				}
			}
			be.masks[i] = mask
			be.want[i] = kv.Value.And(mask)
		}
		if ts.maskLimit > 0 && len(ts.groups) >= ts.maskLimit {
			ts.maskBuf = appendKeyBytes(ts.maskBuf[:0], be.masks, -1)
			if ts.groupIdx[string(ts.maskBuf)] == nil {
				return &MaskSetError{Table: ts.def.Name, Limit: ts.maskLimit}
			}
		}
		ts.ternary = append(ts.ternary, be)
		ts.ternarySorted = len(ts.ternary) == 1
		ts.insertGroup(be)
	}
	ts.count++
	return nil
}

// delete removes the entry (or, for ternary tables, every shadowed
// duplicate) identified by e's match key. Identity follows the install
// identity: the full key tuple for exact tables, the (key, prefix
// length) pair for lpm tables, and the (mask tuple, masked value
// tuple, priority) triple for ternary tables. The entry's action and
// arguments are validated exactly as on install — a conforming driver
// rejects a malformed delete the same way it rejects a malformed
// insert — but do not participate in identity.
func (ts *tableState) delete(e Entry, action *ir.Action) error {
	if err := ts.validate(e, action); err != nil {
		return err
	}
	switch ts.kind {
	case kindExact:
		vals := make([]bitfield.Value, len(e.Keys))
		for i := range e.Keys {
			vals[i] = e.Keys[i].Value
		}
		k := string(appendKeyBytes(nil, vals, -1))
		if _, ok := ts.exact[k]; !ok {
			return &NoSuchEntryError{Table: ts.def.Name}
		}
		delete(ts.exact, k)
		ts.count--
	case kindLPM:
		vals := make([]bitfield.Value, len(e.Keys))
		for i := range e.Keys {
			vals[i] = e.Keys[i].Value
		}
		group := string(appendKeyBytes(nil, vals, ts.lpmIdx))
		trie := ts.tries[group]
		if trie == nil {
			return &NoSuchEntryError{Table: ts.def.Name}
		}
		lk := e.Keys[ts.lpmIdx]
		if !trie.remove(lk.Value, lk.PrefixLen) {
			return &NoSuchEntryError{Table: ts.def.Name}
		}
		ts.count--
	case kindTernary:
		return ts.deleteTernary(e)
	}
	return nil
}

// deleteTernary removes every ternary entry matching e's identity and
// repairs the tuple-space group the entries lived in: the dominant
// entry per masked key is recomputed from the surviving entries, the
// group's maxPrio bound is re-derived, and an emptied group is removed
// from the index (freeing its mask-set slot under a mask limit). The
// group ordering is conservatively invalidated so the next lookup
// re-runs the lazy maxPrio sort.
func (ts *tableState) deleteTernary(e Entry) error {
	masks := make([]bitfield.Value, len(e.Keys))
	want := make([]bitfield.Value, len(e.Keys))
	for i, kv := range e.Keys {
		w := ts.def.Keys[i].Expr.Width()
		var mask bitfield.Value
		switch ts.def.Keys[i].Kind {
		case ir.MatchExact:
			mask = bitfield.Mask(w)
		case ir.MatchLPM:
			mask = prefixMask(w, kv.PrefixLen)
		case ir.MatchTernary:
			mask = kv.Mask
			if mask.Width() == 0 {
				mask = bitfield.Mask(w)
			}
		}
		masks[i] = mask
		want[i] = kv.Value.And(mask)
	}
	sameTuple := func(a, b []bitfield.Value) bool {
		for i := range a {
			if !a[i].Equal(b[i]) {
				return false
			}
		}
		return true
	}
	// Order-preserving filter: removal keeps any existing (priority,
	// order) sort valid, so ternarySorted survives unchanged.
	kept := ts.ternary[:0]
	removed := 0
	for _, be := range ts.ternary {
		if be.Priority == e.Priority && sameTuple(be.masks, masks) && sameTuple(be.want, want) {
			removed++
			continue
		}
		kept = append(kept, be)
	}
	if removed == 0 {
		return &NoSuchEntryError{Table: ts.def.Name}
	}
	for i := len(kept); i < len(ts.ternary); i++ {
		ts.ternary[i] = nil
	}
	ts.ternary = kept
	ts.count -= removed

	gk := string(appendKeyBytes(nil, masks, -1))
	g := ts.groupIdx[gk]
	if g == nil {
		// The index and the entry list disagree; rebuilding from the
		// list below would hide the inconsistency, so fail loudly.
		panic(fmt.Sprintf("dataplane: table %s: deleted ternary entry had no tuple-space group", ts.def.Name))
	}
	// Rebuild the group's dominance map from the surviving entries.
	g.entries = make(map[string]*boundEntry)
	g.maxPrio = 0
	live := 0
	var buf []byte
	for _, be := range ts.ternary {
		buf = appendKeyBytes(buf[:0], be.masks, -1)
		if string(buf) != gk {
			continue
		}
		live++
		if live == 1 || be.Priority > g.maxPrio {
			g.maxPrio = be.Priority
		}
		buf = appendKeyBytes(buf[:0], be.want, -1)
		ek := string(buf)
		if cur, ok := g.entries[ek]; !ok || ts.beats(be, cur) {
			g.entries[ek] = be
		}
	}
	if live == 0 {
		delete(ts.groupIdx, gk)
		for i, other := range ts.groups {
			if other == g {
				ts.groups = append(ts.groups[:i], ts.groups[i+1:]...)
				break
			}
		}
	}
	// maxPrio may have dropped; force the lazy re-sort.
	ts.groupsSorted = len(ts.groups) <= 1
	return nil
}

// lookup matches the evaluated key values against installed entries. It
// performs no heap allocations.
func (ts *tableState) lookup(vals []bitfield.Value) *boundEntry {
	switch ts.kind {
	case kindExact:
		ts.keyBuf = appendKeyBytes(ts.keyBuf[:0], vals, -1)
		return ts.exact[string(ts.keyBuf)]
	case kindLPM:
		ts.keyBuf = appendKeyBytes(ts.keyBuf[:0], vals, ts.lpmIdx)
		trie := ts.tries[string(ts.keyBuf)]
		if trie == nil {
			return nil
		}
		return trie.lookup(vals[ts.lpmIdx])
	case kindTernary:
		return ts.lookupTernary(vals)
	}
	return nil
}

// insertGroup adds an installed ternary entry to the tuple-space index.
func (ts *tableState) insertGroup(be *boundEntry) {
	ts.maskBuf = appendKeyBytes(ts.maskBuf[:0], be.masks, -1)
	gk := string(ts.maskBuf)
	g := ts.groupIdx[gk]
	if g == nil {
		g = &ternaryGroup{
			masks:   be.masks,
			entries: make(map[string]*boundEntry),
			maxPrio: be.Priority,
		}
		ts.groupIdx[gk] = g
		ts.groups = append(ts.groups, g)
		ts.groupsSorted = len(ts.groups) == 1
	}
	if be.Priority > g.maxPrio {
		g.maxPrio = be.Priority
		ts.groupsSorted = len(ts.groups) == 1
	}
	ts.maskBuf = appendKeyBytes(ts.maskBuf[:0], be.want, -1)
	ek := string(ts.maskBuf)
	if cur, ok := g.entries[ek]; !ok || ts.beats(be, cur) {
		g.entries[ek] = be
	}
}

// lookupTernary is the tuple-space search: one hash probe per distinct
// mask tuple, cut short once the current best strictly outranks every
// remaining group. Complexity is O(distinct masks), not O(entries).
func (ts *tableState) lookupTernary(vals []bitfield.Value) *boundEntry {
	if !ts.groupsSorted {
		sort.SliceStable(ts.groups, func(i, j int) bool {
			return ts.groups[i].maxPrio > ts.groups[j].maxPrio
		})
		ts.groupsSorted = true
	}
	var best *boundEntry
	for _, g := range ts.groups {
		if best != nil && best.Priority > g.maxPrio {
			break
		}
		buf := ts.maskBuf[:0]
		for i := range vals {
			buf = vals[i].And(g.masks[i]).AppendBytes(buf)
		}
		ts.maskBuf = buf
		if be := g.entries[string(buf)]; be != nil && (best == nil || ts.beats(be, best)) {
			best = be
		}
	}
	return best
}

// lookupTernaryLinear is the original O(entries) first-match scan over
// the (priority desc, order asc)-sorted entry list. It is kept as the
// reference semantics the tuple-space index is differentially tested
// (and benchmarked) against.
func (ts *tableState) lookupTernaryLinear(vals []bitfield.Value) *boundEntry {
	if !ts.ternarySorted {
		sort.SliceStable(ts.ternary, func(i, j int) bool {
			return ts.beats(ts.ternary[i], ts.ternary[j])
		})
		ts.ternarySorted = true
	}
	for _, be := range ts.ternary {
		if ternaryMatches(be, vals) {
			return be
		}
	}
	return nil
}

// ternaryMatches tests vals against an entry's precomputed masks.
func ternaryMatches(be *boundEntry, vals []bitfield.Value) bool {
	for i := range be.masks {
		if !vals[i].And(be.masks[i]).Equal(be.want[i]) {
			return false
		}
	}
	return true
}

// clear removes every entry.
func (ts *tableState) clear() {
	switch ts.kind {
	case kindExact:
		ts.exact = make(map[string]*boundEntry)
	case kindLPM:
		ts.tries = make(map[string]*mbTrie)
	case kindTernary:
		ts.ternary = nil
		ts.ternarySorted = false
		ts.groups = nil
		ts.groupIdx = make(map[string]*ternaryGroup)
		ts.groupsSorted = false
	}
	ts.count = 0
}

// NoSuchEntryError reports a delete whose match key identifies no
// installed entry — the signal a churn driver sees when it races a
// concurrent clear, and therefore a typed (rather than string-matched)
// condition.
type NoSuchEntryError struct {
	Table string
}

func (e *NoSuchEntryError) Error() string {
	return fmt.Sprintf("table %s: no entry with that match key", e.Table)
}

// CapacityError reports an install into a full table — the signal the
// architecture-check use case looks for.
type CapacityError struct {
	Table string
	Size  int
}

func (e *CapacityError) Error() string {
	return fmt.Sprintf("table %s is full (size %d)", e.Table, e.Size)
}

// MaskSetError reports an install whose mask tuple would grow a ternary
// table's distinct-mask set past the target's limit — the signal a
// mask-set-scan ternary emulation (one unrolled match section per
// distinct mask) produces when the generated program would exceed its
// verifier budget.
type MaskSetError struct {
	Table string
	Limit int
}

func (e *MaskSetError) Error() string {
	return fmt.Sprintf("table %s: new mask tuple exceeds the %d-mask-set limit", e.Table, e.Limit)
}

// prefixMask returns a w-bit mask with the top n bits set.
func prefixMask(w, n int) bitfield.Value {
	return bitfield.Mask(w).Shl(w - n).WithWidth(w)
}

// lpmTrie is the retired one-node-per-bit binary trie over key bits,
// most significant bit first. Production lpm tables now run on the
// path-compressed multibit mbTrie (mbtrie.go); this implementation is
// kept verbatim as the differential oracle the multibit trie is
// fuzz-tested against, exactly like lookupTernaryLinear above.
type lpmTrie struct {
	root trieNode
}

type trieNode struct {
	children [2]*trieNode
	entry    *boundEntry
}

// insert adds a prefix; it returns false on duplicates.
func (t *lpmTrie) insert(val bitfield.Value, plen int, be *boundEntry) bool {
	n := &t.root
	w := val.Width()
	for i := 0; i < plen; i++ {
		b := val.Bit(w - 1 - i)
		if n.children[b] == nil {
			n.children[b] = &trieNode{}
		}
		n = n.children[b]
	}
	if n.entry != nil {
		return false
	}
	n.entry = be
	return true
}

// remove clears the entry at a prefix; it returns false when no entry
// is installed there. Emptied interior nodes are left in place — churn
// workloads reinstall into the same region, and lookup correctness
// only depends on entry pointers.
func (t *lpmTrie) remove(val bitfield.Value, plen int) bool {
	n := &t.root
	w := val.Width()
	for i := 0; i < plen; i++ {
		n = n.children[val.Bit(w-1-i)]
		if n == nil {
			return false
		}
	}
	if n.entry == nil {
		return false
	}
	n.entry = nil
	return true
}

// lookup returns the longest-prefix match for val, or nil.
func (t *lpmTrie) lookup(val bitfield.Value) *boundEntry {
	n := &t.root
	best := n.entry
	w := val.Width()
	for i := 0; i < w && n != nil; i++ {
		n = n.children[val.Bit(w-1-i)]
		if n != nil && n.entry != nil {
			best = n.entry
		}
	}
	return best
}
