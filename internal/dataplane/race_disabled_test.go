//go:build !race

package dataplane

// raceEnabled reports whether the race detector is active; see the race
// build-tag twin.
const raceEnabled = false
