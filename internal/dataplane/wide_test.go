package dataplane

// Regression tests for IPv6-width (>64-bit) keys — these exercise the Hi
// word of bitfield.Value through prefixMask, masked matching, the LPM
// trie, and key serialization — plus ternary priority tie-breaking under
// the stable install sort.

import (
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

func TestPrefixMaskWideWidths(t *testing.T) {
	cases := []struct {
		w, n   int
		hi, lo uint64
	}{
		{128, 0, 0, 0},
		{128, 1, 1 << 63, 0},
		{128, 63, ^uint64(0) &^ 1, 0},
		{128, 64, ^uint64(0), 0},
		{128, 65, ^uint64(0), 1 << 63},
		{128, 127, ^uint64(0), ^uint64(0) &^ 1},
		{128, 128, ^uint64(0), ^uint64(0)},
		{96, 24, 0xFFFFFF00, 0},
		{96, 96, 0xFFFFFFFF, ^uint64(0)},
		{65, 1, 1, 0},
		{64, 64, 0, ^uint64(0)},
		{32, 8, 0, 0xFF000000},
	}
	for _, c := range cases {
		m := prefixMask(c.w, c.n)
		if m.Hi != c.hi || m.Lo != c.lo || m.Width() != c.w {
			t.Errorf("prefixMask(%d, %d) = hi=%#x lo=%#x w=%d, want hi=%#x lo=%#x",
				c.w, c.n, m.Hi, m.Lo, m.Width(), c.hi, c.lo)
		}
	}
}

func TestMatchesMaskedWideWidths(t *testing.T) {
	// Two values differing ONLY in the Hi word: a /56 mask must
	// distinguish them, a /8-on-low-bits mask must not.
	a := bitfield.New128(0x20010db800000000, 0x0000000000000001, 128)
	b := bitfield.New128(0x20010db900000000, 0x0000000000000001, 128)
	wide := prefixMask(128, 56)
	if a.MatchesMasked(b, wide) {
		t.Fatal("values differing in Hi word matched under a /56 mask")
	}
	if !a.MatchesMasked(b, prefixMask(128, 23)) {
		t.Fatal("values agreeing in the top 23 bits must match under /23")
	}
	// Mask confined to the Hi word, covering the byte where a and b
	// differ (0xb8 vs 0xb9 → Hi bits 32..39).
	hiOnly := bitfield.New128(0x000000ff00000000, 0, 128)
	if a.MatchesMasked(b, hiOnly) {
		t.Fatal("hi-word-only mask must see the difference")
	}
	// Mask confined to the Lo word ignores the Hi difference.
	loOnly := bitfield.New128(0, ^uint64(0), 128)
	if !a.MatchesMasked(b, loOnly) {
		t.Fatal("lo-word-only mask must ignore the Hi difference")
	}
}

// ipv6ish is a program with a 128-bit LPM table and a 128-bit exact
// table, IPv6-router style.
const ipv6ish = `
header h6_t { bit<48> dmac; bit<48> smac; bit<128> dst; }
struct hs { h6_t h; }
parser P(packet_in p, out hs hdr) { state start { p.extract(hdr.h); transition accept; } }
control I(inout hs hdr, inout standard_metadata_t sm) {
  action fwd(bit<9> port) { sm.egress_spec = port; }
  action drop() { mark_to_drop(); }
  table lpm6 {
    key = { hdr.h.dst: lpm; }
    actions = { fwd; drop; }
    size = 64;
    default_action = drop();
  }
  table exact6 {
    key = { hdr.h.dst: exact; }
    actions = { fwd; NoAction; }
    size = 64;
  }
  apply { lpm6.apply(); exact6.apply(); }
}
control D(packet_out p, in hs hdr) { apply { p.emit(hdr.h); } }
S(P(), I(), D()) main;`

// frame6 builds a frame for ipv6ish with the given 128-bit destination.
func frame6(dst bitfield.Value) []byte {
	f := make([]byte, 12+16)
	copy(f[12:], dst.Bytes())
	return f
}

func TestLPMWideKeys(t *testing.T) {
	e := mustEngine(t, ipv6ish)
	// Prefixes that differ only within the Hi word: /32 vs /56.
	routes := []struct {
		hi, lo uint64
		plen   int
		port   uint64
	}{
		{0x2001_0db8_0000_0000, 0, 32, 1},
		{0x2001_0db8_0011_2200, 0, 56, 2},
	}
	for _, r := range routes {
		err := e.InstallEntry(Entry{
			Table:  "lpm6",
			Keys:   []KeyValue{{Value: bitfield.New128(r.hi, r.lo, 128), PrefixLen: r.plen}},
			Action: "fwd",
			Args:   []bitfield.Value{bitfield.New(r.port, 9)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	ctx := e.NewContext()
	// Matches the /56 (longer) prefix.
	_, egress := e.Process(ctx, frame6(bitfield.New128(0x20010db800112233, 0x42, 128)), 0)
	if egress != 2 {
		t.Fatalf("egress = %d, want 2 (/56 route)", egress)
	}
	// Matches only the /32.
	_, egress = e.Process(ctx, frame6(bitfield.New128(0x20010db8ffff0000, 0x42, 128)), 0)
	if egress != 1 {
		t.Fatalf("egress = %d, want 1 (/32 route)", egress)
	}
	// Matches nothing.
	out, _ := e.Process(ctx, frame6(bitfield.New128(0x20020db800000000, 0, 128)), 0)
	if out != nil {
		t.Fatal("unrouted destination must drop")
	}
}

func TestExactWideKeys(t *testing.T) {
	e := mustEngine(t, ipv6ish)
	// lpm6 route so the packet survives to exact6.
	if err := e.InstallEntry(Entry{
		Table:  "lpm6",
		Keys:   []KeyValue{{Value: bitfield.New128(0, 0, 128), PrefixLen: 0}},
		Action: "fwd",
		Args:   []bitfield.Value{bitfield.New(1, 9)},
	}); err != nil {
		t.Fatal(err)
	}
	dst := bitfield.New128(0x20010db8aabbccdd, 0x1122334455667788, 128)
	if err := e.InstallEntry(Entry{
		Table:  "exact6",
		Keys:   []KeyValue{{Value: dst}},
		Action: "fwd",
		Args:   []bitfield.Value{bitfield.New(3, 9)},
	}); err != nil {
		t.Fatal(err)
	}
	ctx := e.NewContext()
	_, egress := e.Process(ctx, frame6(dst), 0)
	if egress != 3 {
		t.Fatalf("exact6 hit egress = %d, want 3", egress)
	}
	// Same Lo word, different Hi word: must MISS the exact table.
	other := bitfield.New128(0x20010db8aabbccde, 0x1122334455667788, 128)
	_, egress = e.Process(ctx, frame6(other), 0)
	if egress != 1 {
		t.Fatalf("hi-word-different key hit the exact table (egress %d)", egress)
	}
	if e.Counters.Counter("table.exact6.miss").Value() != 1 {
		t.Fatal("expected one exact6 miss")
	}
}

// TestTernaryPriorityTieBreak pins the documented tie rule: equal
// priority resolves to the first-installed entry, stably, regardless of
// how many entries the stable sort has shuffled around them.
func TestTernaryPriorityTieBreak(t *testing.T) {
	matchAll := func(action string, prio int) Entry {
		return Entry{
			Table: "acl",
			Keys: []KeyValue{
				{Value: bitfield.New(0, 32), Mask: bitfield.New(0, 32)},
				{Value: bitfield.New(0, 32), Mask: bitfield.New(0, 32)},
				{Value: bitfield.New(0, 16), Mask: bitfield.New(0, 16)},
			},
			Action:   action,
			Priority: prio,
		}
	}
	probe := packet.BuildTCPv4(macA, macB, ipA, ipB, 1234, 443, packet.TCPSyn, nil)

	run := func(entries []Entry) (forwarded bool) {
		e := mustEngine(t, p4test.Firewall)
		for _, en := range entries {
			if err := e.InstallEntry(en); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.InstallEntry(Entry{
			Table:  "routing",
			Keys:   []KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
			Action: "route",
			Args:   []bitfield.Value{bitfield.New(1, 9)},
		}); err != nil {
			t.Fatal(err)
		}
		ctx := e.NewContext()
		out, _ := e.Process(ctx, probe, 0)
		return out != nil
	}

	// allow first at priority 5 → allow wins the tie.
	if !run([]Entry{matchAll("allow", 5), matchAll("drop", 5)}) {
		t.Fatal("first-installed (allow) must win an equal-priority tie")
	}
	// drop first at priority 5 → drop wins the tie.
	if run([]Entry{matchAll("drop", 5), matchAll("allow", 5)}) {
		t.Fatal("first-installed (drop) must win an equal-priority tie")
	}
	// Ties keep install order even with higher- and lower-priority
	// entries interleaved around them (they don't match or sort between).
	entries := []Entry{
		matchAll("drop", 1),
		matchAll("allow", 5),
		matchAll("drop", 5),
		matchAll("drop", 3),
	}
	if !run(entries) {
		t.Fatal("highest priority band must resolve to its first-installed entry")
	}
}
