package dataplane

import (
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

// maxProcessAllocs is the allocation floor asserted for the packet hot
// path (PR 1 acceptance criterion: <= 2 allocs/packet steady state; the
// implementation currently reaches 0).
const maxProcessAllocs = 2

// l2Engine returns an engine loaded with the exact-match L2 switch and
// one MAC entry.
func l2Engine(t testing.TB) *Engine {
	e := mustEngine(t, p4test.L2Switch)
	if err := e.InstallEntry(Entry{
		Table:  "mac_table",
		Keys:   []KeyValue{{Value: bitfield.FromBytes(macB[:])}},
		Action: "forward",
		Args:   []bitfield.Value{bitfield.New(2, 9)},
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

func assertProcessAllocs(t *testing.T, name string, e *Engine, frame []byte, wantForward bool) {
	t.Helper()
	ctx := e.NewContext()
	out, _ := e.Process(ctx, frame, 0)
	if wantForward && out == nil {
		t.Fatalf("%s: packet dropped, fixture broken", name)
	}
	allocs := testing.AllocsPerRun(500, func() {
		e.Process(ctx, frame, 0)
	})
	if allocs > maxProcessAllocs {
		t.Errorf("%s: %v allocs/packet, want <= %d", name, allocs, maxProcessAllocs)
	}
	t.Logf("%s: %v allocs/packet", name, allocs)
}

// TestProcessAllocsExact pins the steady-state allocation floor for an
// exact-match table program.
func TestProcessAllocsExact(t *testing.T) {
	frame := packet.BuildUDPv4(macA, macB, ipA, ipB, 100, 200, []byte("data"))
	assertProcessAllocs(t, "exact/hit", l2Engine(t), frame, true)
	miss := packet.BuildUDPv4(macA, packet.MAC{9, 9, 9, 9, 9, 9}, ipA, ipB, 1, 2, nil)
	assertProcessAllocs(t, "exact/miss", l2Engine(t), miss, false)
}

// TestProcessAllocsLPM pins the floor for an LPM table program.
func TestProcessAllocsLPM(t *testing.T) {
	frame := packet.BuildUDPv4(macA, macB, ipA, ipB, 100, 200, []byte("data"))
	assertProcessAllocs(t, "lpm/hit", routerEngine(t), frame, true)
}

// TestProcessAllocsTernary pins the floor for a ternary table program
// (which also exercises the LPM routing stage behind it).
func TestProcessAllocsTernary(t *testing.T) {
	frame := packet.BuildTCPv4(macA, macB, ipA, ipB, 1234, 443, packet.TCPSyn, nil)
	assertProcessAllocs(t, "ternary/allow", firewallEngine(t), frame, true)
	denied := packet.BuildTCPv4(macA, macB, ipA, ipB, 1234, 80, packet.TCPSyn, nil)
	assertProcessAllocs(t, "ternary/deny", firewallEngine(t), denied, false)
}

// TestProcessAllocsRejectPath pins the floor for parser-rejected packets.
func TestProcessAllocsRejectPath(t *testing.T) {
	bad := packet.BuildUDPv4(macA, macB, ipA, ipB, 1, 2, nil)
	bad[14] = 0x65
	assertProcessAllocs(t, "reject", routerEngine(t), bad, false)
}

// TestContextPoolReuse verifies Acquire/Release recycle contexts without
// allocating in steady state.
func TestContextPoolReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool allocates under race instrumentation")
	}
	e := routerEngine(t)
	frame := packet.BuildUDPv4(macA, macB, ipA, ipB, 100, 200, nil)
	ctx := e.AcquireContext()
	e.Process(ctx, frame, 0)
	e.ReleaseContext(ctx)
	allocs := testing.AllocsPerRun(500, func() {
		c := e.AcquireContext()
		e.Process(c, frame, 0)
		e.ReleaseContext(c)
	})
	if allocs > maxProcessAllocs {
		t.Errorf("pooled process: %v allocs, want <= %d", allocs, maxProcessAllocs)
	}
}

// TestTraceStillRecordedWhenEnabled guards against the zero-cost-trace
// optimization silencing tracing entirely.
func TestTraceStillRecordedWhenEnabled(t *testing.T) {
	e := routerEngine(t)
	ctx := e.NewContext()
	ctx.CollectTrace = true
	frame := packet.BuildUDPv4(macA, macB, ipA, ipB, 100, 200, nil)
	e.Process(ctx, frame, 0)
	if len(ctx.Trace.ParserPath) == 0 || len(ctx.Trace.Tables) == 0 {
		t.Fatalf("trace empty with CollectTrace on: %+v", ctx.Trace)
	}
	if len(ctx.Trace.Tables[0].Keys) == 0 {
		t.Fatal("table event lost its key values")
	}
	// Retained traces must survive subsequent packets.
	first := ctx.Trace
	firstKey := first.Tables[0].Keys[0]
	e.Process(ctx, packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{10, 7, 7, 7}, 1, 2, nil), 0)
	if !first.Tables[0].Keys[0].Equal(firstKey) {
		t.Fatal("retained trace mutated by a later packet")
	}
}

func BenchmarkProcessRouter(b *testing.B) {
	e := routerEngine(b)
	ctx := e.NewContext()
	frame := packet.BuildUDPv4(macA, macB, ipA, ipB, 100, 200, make([]byte, 26))
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out, _ := e.Process(ctx, frame, 0); out == nil {
			b.Fatal("dropped")
		}
	}
}

func BenchmarkProcessFirewallTernary(b *testing.B) {
	e := firewallEngine(b)
	ctx := e.NewContext()
	frame := packet.BuildTCPv4(macA, macB, ipA, ipB, 1234, 443, packet.TCPSyn, make([]byte, 26))
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Process(ctx, frame, 0)
	}
}
