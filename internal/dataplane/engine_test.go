package dataplane

import (
	"bytes"
	"math/rand"
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/ir"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 0xa}
	macB = packet.MAC{2, 0, 0, 0, 0, 0xb}
	gwA  = packet.MAC{2, 0, 0, 0, 0xff, 1}
	ipA  = packet.IPv4Addr{10, 0, 0, 1}
	ipB  = packet.IPv4Addr{10, 0, 1, 2}
)

func mustEngine(t testing.TB, src string) *Engine {
	t.Helper()
	prog, err := compile.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return New(prog)
}

// routerEngine returns an engine loaded with Router and a 10.0.1.0/24 ->
// port 2 route plus a default 10.0.0.0/8 -> port 1 route.
func routerEngine(t testing.TB) *Engine {
	e := mustEngine(t, p4test.Router)
	for _, r := range []struct {
		prefix uint32
		plen   int
		port   uint64
	}{
		{0x0a000100, 24, 2},
		{0x0a000000, 8, 1},
	} {
		err := e.InstallEntry(Entry{
			Table: "ipv4_lpm",
			Keys: []KeyValue{{
				Value:     bitfield.New(uint64(r.prefix), 32),
				PrefixLen: r.plen,
			}},
			Action: "ipv4_forward",
			Args: []bitfield.Value{
				bitfield.FromBytes(gwA[:]),
				bitfield.New(r.port, 9),
			},
		})
		if err != nil {
			t.Fatalf("install: %v", err)
		}
	}
	return e
}

func TestRouterForwards(t *testing.T) {
	e := routerEngine(t)
	ctx := e.NewContext()
	in := packet.BuildUDPv4(macA, macB, ipA, ipB, 100, 200, []byte("data"))
	out, egress := e.Process(ctx, in, 0)
	if out == nil {
		t.Fatal("packet dropped, want forward")
	}
	if egress != 2 {
		t.Fatalf("egress = %d, want 2 (longest prefix)", egress)
	}
	var eth packet.Ethernet
	var ip packet.IPv4
	if err := eth.DecodeFromBytes(out); err != nil {
		t.Fatal(err)
	}
	if err := ip.DecodeFromBytes(eth.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if eth.Dst != gwA {
		t.Errorf("dst MAC = %v, want gateway", eth.Dst)
	}
	if ip.TTL != 63 {
		t.Errorf("ttl = %d, want 63", ip.TTL)
	}
	// Payload must survive the trip.
	var udp packet.UDP
	if err := udp.DecodeFromBytes(ip.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if string(udp.LayerPayload()) != "data" {
		t.Errorf("payload = %q", udp.LayerPayload())
	}
}

func TestRouterLPMPrecedence(t *testing.T) {
	e := routerEngine(t)
	ctx := e.NewContext()
	// 10.9.9.9 matches only /8 -> port 1.
	in := packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{10, 9, 9, 9}, 1, 2, nil)
	_, egress := e.Process(ctx, in, 0)
	if egress != 1 {
		t.Fatalf("egress = %d, want 1 (/8 route)", egress)
	}
}

func TestRouterTableMissDrops(t *testing.T) {
	e := routerEngine(t)
	ctx := e.NewContext()
	in := packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{192, 168, 0, 1}, 1, 2, nil)
	out, _ := e.Process(ctx, in, 0)
	if out != nil {
		t.Fatal("packet forwarded, want drop (default_action = drop)")
	}
	if e.Counters.Counter("table.ipv4_lpm.miss").Value() != 1 {
		t.Error("miss counter not incremented")
	}
}

func TestRouterTTLZeroDrops(t *testing.T) {
	e := routerEngine(t)
	ctx := e.NewContext()
	in := packet.BuildUDPv4(macA, macB, ipA, ipB, 1, 2, nil)
	// Force TTL 0 (offset: 14 eth + 8).
	in[14+8] = 0
	out, _ := e.Process(ctx, in, 0)
	if out != nil {
		t.Fatal("TTL=0 packet forwarded, want drop")
	}
}

func TestRouterRejectsBadVersion(t *testing.T) {
	e := routerEngine(t)
	ctx := e.NewContext()
	ctx.CollectTrace = true
	in := packet.BuildUDPv4(macA, macB, ipA, ipB, 1, 2, nil)
	in[14] = 0x65 // version 6, IHL 5
	out, _ := e.Process(ctx, in, 0)
	if out != nil {
		t.Fatal("bad-version packet forwarded, want parser reject")
	}
	if ctx.Trace.Verdict != VerdictReject {
		t.Fatalf("verdict = %v", ctx.Trace.Verdict)
	}
	if ctx.Trace.ParserError != ParseErrReject {
		t.Fatalf("parser_error = %d, want %d", ctx.Trace.ParserError, ParseErrReject)
	}
	if ctx.Trace.DropStage != "parser" {
		t.Fatalf("drop stage = %q", ctx.Trace.DropStage)
	}
	if e.Counters.Counter("parser.reject").Value() != 1 {
		t.Error("reject counter not incremented")
	}
}

func TestRouterNonIPv4Accepted(t *testing.T) {
	// ARP has etherType 0x0806: parser takes default -> accept with only
	// ethernet valid; ingress drops it (ipv4 invalid).
	e := routerEngine(t)
	ctx := e.NewContext()
	ctx.CollectTrace = true
	in := packet.BuildARPRequest(macA, ipA, ipB)
	out, _ := e.Process(ctx, in, 0)
	if out != nil {
		t.Fatal("ARP forwarded, want ingress drop")
	}
	if ctx.Trace.Verdict != VerdictAccept {
		t.Fatal("ARP should be accepted by parser")
	}
	if ctx.Trace.DropStage != "RouterIngress" {
		t.Fatalf("drop stage = %q, want RouterIngress", ctx.Trace.DropStage)
	}
}

func TestTruncatedPacketRejected(t *testing.T) {
	e := routerEngine(t)
	ctx := e.NewContext()
	ctx.CollectTrace = true
	in := packet.BuildUDPv4(macA, macB, ipA, ipB, 1, 2, nil)[:20] // mid-IPv4
	out, _ := e.Process(ctx, in, 0)
	if out != nil {
		t.Fatal("truncated packet forwarded")
	}
	if ctx.Trace.ParserError != ParseErrPacketTooShort {
		t.Fatalf("parser_error = %d", ctx.Trace.ParserError)
	}
}

func TestParserPathTrace(t *testing.T) {
	e := routerEngine(t)
	ctx := e.NewContext()
	ctx.CollectTrace = true
	in := packet.BuildUDPv4(macA, macB, ipA, ipB, 1, 2, nil)
	e.Process(ctx, in, 0)
	want := []string{"start", "parse_ipv4"}
	if len(ctx.Trace.ParserPath) != 2 || ctx.Trace.ParserPath[0] != want[0] || ctx.Trace.ParserPath[1] != want[1] {
		t.Fatalf("parser path = %v", ctx.Trace.ParserPath)
	}
	if len(ctx.Trace.Tables) != 1 || !ctx.Trace.Tables[0].Hit || ctx.Trace.Tables[0].Action != "ipv4_forward" {
		t.Fatalf("table events = %+v", ctx.Trace.Tables)
	}
}

func TestL2SwitchExactMatch(t *testing.T) {
	e := mustEngine(t, p4test.L2Switch)
	err := e.InstallEntry(Entry{
		Table:  "mac_table",
		Keys:   []KeyValue{{Value: bitfield.FromBytes(macB[:])}},
		Action: "forward",
		Args:   []bitfield.Value{bitfield.New(3, 9)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := e.NewContext()
	out, egress := e.Process(ctx, packet.BuildUDPv4(macA, macB, ipA, ipB, 1, 2, nil), 0)
	if out == nil || egress != 3 {
		t.Fatalf("known MAC: out=%v egress=%d", out != nil, egress)
	}
	out, _ = e.Process(ctx, packet.BuildUDPv4(macB, macA, ipB, ipA, 1, 2, nil), 0)
	if out != nil {
		t.Fatal("unknown MAC should be dropped")
	}
}

func TestReflector(t *testing.T) {
	e := mustEngine(t, p4test.Reflector)
	ctx := e.NewContext()
	in := packet.BuildUDPv4(macA, macB, ipA, ipB, 7, 8, []byte("bounce"))
	out, egress := e.Process(ctx, in, 3)
	if out == nil || egress != 3 {
		t.Fatalf("reflector: out=%v egress=%d, want egress=ingress=3", out != nil, egress)
	}
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(out); err != nil {
		t.Fatal(err)
	}
	if eth.Src != macB || eth.Dst != macA {
		t.Fatalf("MACs not swapped: %v -> %v", eth.Src, eth.Dst)
	}
}

func firewallEngine(t testing.TB) *Engine {
	e := mustEngine(t, p4test.Firewall)
	// ACL: allow TCP/UDP to 10.0.1.0/24 port 443 at high priority; block
	// 10.0.0.0/8 wide at low priority.
	allow := Entry{
		Table: "acl",
		Keys: []KeyValue{
			{Value: bitfield.New(0, 32), Mask: bitfield.New(0, 32)}, // any src
			{Value: bitfield.New(0x0a000100, 32), Mask: bitfield.New(0xffffff00, 32)},
			{Value: bitfield.New(443, 16), Mask: bitfield.Mask(16)},
		},
		Action:   "allow",
		Priority: 100,
	}
	deny := Entry{
		Table: "acl",
		Keys: []KeyValue{
			{Value: bitfield.New(0, 32), Mask: bitfield.New(0, 32)},
			{Value: bitfield.New(0x0a000000, 32), Mask: bitfield.New(0xff000000, 32)},
			{Value: bitfield.New(0, 16), Mask: bitfield.New(0, 16)},
		},
		Action:   "drop",
		Priority: 10,
	}
	for _, en := range []Entry{allow, deny} {
		if err := e.InstallEntry(en); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.InstallEntry(Entry{
		Table:  "routing",
		Keys:   []KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "route",
		Args:   []bitfield.Value{bitfield.New(2, 9)},
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFirewallTernaryPriority(t *testing.T) {
	e := firewallEngine(t)
	ctx := e.NewContext()
	// Port 443 to 10.0.1.2: allow rule (higher priority) wins over deny.
	in := packet.BuildTCPv4(macA, macB, ipA, ipB, 1234, 443, packet.TCPSyn, nil)
	out, egress := e.Process(ctx, in, 0)
	if out == nil || egress != 2 {
		t.Fatalf("allowed flow: out=%v egress=%d", out != nil, egress)
	}
	// Port 80: only the deny rule matches.
	in = packet.BuildTCPv4(macA, macB, ipA, ipB, 1234, 80, packet.TCPSyn, nil)
	out, _ = e.Process(ctx, in, 0)
	if out != nil {
		t.Fatal("denied flow forwarded")
	}
}

func TestTernaryPriorityOrderIndependent(t *testing.T) {
	// Installing deny before allow must give the same result.
	e := mustEngine(t, p4test.Firewall)
	deny := Entry{
		Table: "acl",
		Keys: []KeyValue{
			{Value: bitfield.New(0, 32), Mask: bitfield.New(0, 32)},
			{Value: bitfield.New(0x0a000000, 32), Mask: bitfield.New(0xff000000, 32)},
			{Value: bitfield.New(0, 16), Mask: bitfield.New(0, 16)},
		},
		Action:   "drop",
		Priority: 10,
	}
	allow := Entry{
		Table: "acl",
		Keys: []KeyValue{
			{Value: bitfield.New(0, 32), Mask: bitfield.New(0, 32)},
			{Value: bitfield.New(0x0a000100, 32), Mask: bitfield.New(0xffffff00, 32)},
			{Value: bitfield.New(443, 16), Mask: bitfield.Mask(16)},
		},
		Action:   "allow",
		Priority: 100,
	}
	for _, en := range []Entry{deny, allow} {
		if err := e.InstallEntry(en); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.InstallEntry(Entry{
		Table:  "routing",
		Keys:   []KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "route",
		Args:   []bitfield.Value{bitfield.New(2, 9)},
	}); err != nil {
		t.Fatal(err)
	}
	ctx := e.NewContext()
	in := packet.BuildTCPv4(macA, macB, ipA, ipB, 9999, 443, packet.TCPSyn, nil)
	out, _ := e.Process(ctx, in, 0)
	if out == nil {
		t.Fatal("install order changed ternary outcome")
	}
}

func TestTableCapacity(t *testing.T) {
	src := `
	header h_t { bit<8> x; } struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) { state start { p.extract(hdr.h); transition accept; } }
	control I(inout hs hdr, inout standard_metadata_t sm) {
	  action fwd(bit<9> port) { sm.egress_spec = port; }
	  table t { key = { hdr.h.x: exact; } actions = { fwd; } size = 2; }
	  apply { t.apply(); }
	}
	control D(packet_out p, in hs hdr) { apply { p.emit(hdr.h); } }
	S(P(), I(), D()) main;`
	e := mustEngine(t, src)
	for i := 0; i < 2; i++ {
		err := e.InstallEntry(Entry{
			Table:  "t",
			Keys:   []KeyValue{{Value: bitfield.New(uint64(i), 8)}},
			Action: "fwd",
			Args:   []bitfield.Value{bitfield.New(1, 9)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	err := e.InstallEntry(Entry{
		Table:  "t",
		Keys:   []KeyValue{{Value: bitfield.New(9, 8)}},
		Action: "fwd",
		Args:   []bitfield.Value{bitfield.New(1, 9)},
	})
	var capErr *CapacityError
	if err == nil {
		t.Fatal("third entry should exceed size=2")
	}
	if !errorsAs(err, &capErr) {
		t.Fatalf("err = %T %v, want CapacityError", err, err)
	}
	if e.TableCount("t") != 2 {
		t.Fatalf("count = %d", e.TableCount("t"))
	}
}

func errorsAs(err error, target **CapacityError) bool {
	ce, ok := err.(*CapacityError)
	if ok {
		*target = ce
	}
	return ok
}

func TestInstallValidation(t *testing.T) {
	e := routerEngine(t)
	cases := []Entry{
		{Table: "nope"},
		{Table: "ipv4_lpm", Keys: []KeyValue{{Value: bitfield.New(1, 32)}}, Action: "nonexistent"},
		{Table: "ipv4_lpm", Keys: []KeyValue{}, Action: "drop"},
		{Table: "ipv4_lpm", Keys: []KeyValue{{Value: bitfield.New(1, 16)}}, Action: "drop"},
		{Table: "ipv4_lpm", Keys: []KeyValue{{Value: bitfield.New(1, 32), PrefixLen: 40}}, Action: "drop"},
		{Table: "ipv4_lpm", Keys: []KeyValue{{Value: bitfield.New(1, 32), PrefixLen: 8}},
			Action: "ipv4_forward", Args: []bitfield.Value{bitfield.New(1, 48)}},
	}
	for i, en := range cases {
		if err := e.InstallEntry(en); err == nil {
			t.Errorf("case %d: install succeeded, want error", i)
		}
	}
}

func TestClearTable(t *testing.T) {
	e := routerEngine(t)
	if err := e.ClearTable("ipv4_lpm"); err != nil {
		t.Fatal(err)
	}
	if e.TableCount("ipv4_lpm") != 0 {
		t.Fatal("clear did not empty table")
	}
	ctx := e.NewContext()
	out, _ := e.Process(ctx, packet.BuildUDPv4(macA, macB, ipA, ipB, 1, 2, nil), 0)
	if out != nil {
		t.Fatal("entry survived clear")
	}
}

func TestFirewallSplitMetadata(t *testing.T) {
	// RouterSplit: two tables chained through user metadata.
	e := mustEngine(t, p4test.RouterSplit)
	if err := e.InstallEntry(Entry{
		Table:  "lpm_nexthop",
		Keys:   []KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "set_nexthop",
		Args:   []bitfield.Value{bitfield.New(7, 16)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.InstallEntry(Entry{
		Table:  "nexthop_egress",
		Keys:   []KeyValue{{Value: bitfield.New(7, 16)}},
		Action: "set_egress",
		Args:   []bitfield.Value{bitfield.FromBytes(gwA[:]), bitfield.New(2, 9)},
	}); err != nil {
		t.Fatal(err)
	}
	ctx := e.NewContext()
	out, egress := e.Process(ctx, packet.BuildUDPv4(macA, macB, ipA, ipB, 5, 6, nil), 0)
	if out == nil || egress != 2 {
		t.Fatalf("split router: out=%v egress=%d", out != nil, egress)
	}
}

// Property: LPM trie result matches a brute-force longest-prefix scan.
func TestLPMAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type route struct {
		prefix uint32
		plen   int
		port   uint64
	}
	var routes []route
	e := mustEngine(t, p4test.Router)
	seen := map[string]bool{}
	for len(routes) < 120 {
		plen := rng.Intn(25) + 8
		prefix := rng.Uint32() &^ (1<<uint(32-plen) - 1)
		key := string(rune(plen)) + string(bitfield.New(uint64(prefix), 32).Bytes())
		if seen[key] {
			continue
		}
		seen[key] = true
		port := uint64(rng.Intn(4) + 1)
		routes = append(routes, route{prefix, plen, port})
		if err := e.InstallEntry(Entry{
			Table:  "ipv4_lpm",
			Keys:   []KeyValue{{Value: bitfield.New(uint64(prefix), 32), PrefixLen: plen}},
			Action: "ipv4_forward",
			Args:   []bitfield.Value{bitfield.FromBytes(gwA[:]), bitfield.New(port, 9)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	brute := func(addr uint32) (uint64, bool) {
		best := -1
		var port uint64
		for _, r := range routes {
			mask := uint32(0)
			if r.plen > 0 {
				mask = ^uint32(0) << uint(32-r.plen)
			}
			if addr&mask == r.prefix && r.plen > best {
				best = r.plen
				port = r.port
			}
		}
		return port, best >= 0
	}
	ctx := e.NewContext()
	for i := 0; i < 3000; i++ {
		addr := rng.Uint32()
		in := packet.BuildUDPv4(macA, macB, ipA, packet.IPv4AddrFrom(addr), 1, 2, nil)
		out, egress := e.Process(ctx, in, 0)
		wantPort, wantHit := brute(addr)
		if wantHit != (out != nil) {
			t.Fatalf("addr %08x: hit=%v want %v", addr, out != nil, wantHit)
		}
		if wantHit && egress != wantPort {
			t.Fatalf("addr %08x: egress=%d want %d", addr, egress, wantPort)
		}
	}
}

// Property: the deparser output of an accepted, unmodified packet equals
// the input (parse/deparse identity).
func TestParseDeparseIdentity(t *testing.T) {
	src := `
	header ethernet_t { bit<48> d; bit<48> s; bit<16> t; }
	header ipv4_t {
	  bit<4> version; bit<4> ihl; bit<8> tos; bit<16> len;
	  bit<16> id; bit<3> flags; bit<13> frag; bit<8> ttl; bit<8> proto;
	  bit<16> csum; bit<32> src; bit<32> dst;
	}
	struct hs { ethernet_t eth; ipv4_t ip; }
	parser P(packet_in p, out hs hdr) {
	  state start {
	    p.extract(hdr.eth);
	    transition select(hdr.eth.t) { 16w0x0800: pip; default: accept; }
	  }
	  state pip { p.extract(hdr.ip); transition accept; }
	}
	control I(inout hs hdr, inout standard_metadata_t sm) { apply { sm.egress_spec = 9w1; } }
	control D(packet_out p, in hs hdr) { apply { p.emit(hdr.eth); p.emit(hdr.ip); } }
	S(P(), I(), D()) main;`
	e := mustEngine(t, src)
	ctx := e.NewContext()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		in := packet.BuildUDPv4(macA, macB, ipA, ipB, uint16(rng.Intn(65536)), 53, payload)
		out, _ := e.Process(ctx, in, 0)
		if !bytes.Equal(in, out) {
			t.Fatalf("identity violated:\n in=%x\nout=%x", in, out)
		}
	}
}

func TestEmitSkipsInvalidHeaders(t *testing.T) {
	e := routerEngine(t)
	ctx := e.NewContext()
	// Non-IPv4 packet: deparser must emit only ethernet. The router drops
	// ARP in ingress, so run the phases manually.
	in := packet.BuildARPRequest(macA, ipA, ipB)
	e.Reset(ctx, in, 0)
	if v := e.Parse(ctx); v != VerdictAccept {
		t.Fatal("ARP rejected")
	}
	out := e.Deparse(ctx)
	// 14 bytes ethernet + ARP payload (28) = original frame.
	if !bytes.Equal(out, in) {
		t.Fatalf("deparse: %x want %x", out, in)
	}
}

func TestCountersPerState(t *testing.T) {
	e := routerEngine(t)
	ctx := e.NewContext()
	for i := 0; i < 5; i++ {
		e.Process(ctx, packet.BuildUDPv4(macA, macB, ipA, ipB, 1, 2, nil), 0)
	}
	vals := e.Counters.Values()
	if vals["parser.state.start"] != 5 || vals["parser.state.parse_ipv4"] != 5 ||
		vals["parser.accept"] != 5 || vals["table.ipv4_lpm.hit"] != 5 {
		t.Fatalf("counters: %v", vals)
	}
}

func TestActionDataWidths(t *testing.T) {
	// 128-bit keys and action data (IPv6-sized) through exact match.
	src := `
	header h_t { bit<128> addr; } struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) { state start { p.extract(hdr.h); transition accept; } }
	control I(inout hs hdr, inout standard_metadata_t sm) {
	  action set(bit<128> v, bit<9> port) { hdr.h.addr = v; sm.egress_spec = port; }
	  table t { key = { hdr.h.addr: exact; } actions = { set; } }
	  apply { t.apply(); }
	}
	control D(packet_out p, in hs hdr) { apply { p.emit(hdr.h); } }
	S(P(), I(), D()) main;`
	e := mustEngine(t, src)
	key := bitfield.New128(0xdead, 0xbeef, 128)
	newVal := bitfield.New128(0x1111, 0x2222, 128)
	if err := e.InstallEntry(Entry{
		Table:  "t",
		Keys:   []KeyValue{{Value: key}},
		Action: "set",
		Args:   []bitfield.Value{newVal, bitfield.New(1, 9)},
	}); err != nil {
		t.Fatal(err)
	}
	ctx := e.NewContext()
	in := key.Bytes()
	out, egress := e.Process(ctx, in, 0)
	if out == nil || egress != 1 {
		t.Fatal("128-bit exact match failed")
	}
	if !bitfield.FromBytes(out).Equal(newVal) {
		t.Fatalf("rewritten value = %x", out)
	}
}

func TestProgramIRRoundTripConsts(t *testing.T) {
	// Verify that the parser select on (version, ihl) compiled to two keys
	// whose evaluation order matches the declaration.
	e := routerEngine(t)
	prog := e.Program()
	st := prog.Parser.States[1]
	if len(st.Trans.Keys) != 2 {
		t.Fatalf("keys = %d", len(st.Trans.Keys))
	}
	if st.Trans.Keys[0].Width() != 4 || st.Trans.Keys[1].Width() != 4 {
		t.Fatal("key widths wrong")
	}
	if st.Trans.Cases[0].Values[0].Uint64() != 4 || st.Trans.Cases[0].Values[1].Uint64() != 5 {
		t.Fatalf("case values: %v", st.Trans.Cases[0].Values)
	}
}

func TestStdMetaFields(t *testing.T) {
	e := routerEngine(t)
	ctx := e.NewContext()
	in := packet.BuildUDPv4(macA, macB, ipA, ipB, 1, 2, nil)
	e.Reset(ctx, in, 3)
	sm := e.Program().StdMeta
	if got := ctx.Field(sm, ir.StdMetaIngressPort).Uint64(); got != 3 {
		t.Errorf("ingress_port = %d", got)
	}
	if got := ctx.Field(sm, ir.StdMetaPacketLength).Uint64(); got != uint64(len(in)) {
		t.Errorf("packet_length = %d want %d", got, len(in))
	}
}

func BenchmarkRouterProcess(b *testing.B) {
	e := routerEngine(b)
	ctx := e.NewContext()
	in := packet.BuildUDPv4(macA, macB, ipA, ipB, 100, 200, make([]byte, 64))
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := e.Process(ctx, in, 0)
		if out == nil {
			b.Fatal("dropped")
		}
	}
}

func BenchmarkFirewallProcess(b *testing.B) {
	e := firewallEngine(b)
	ctx := e.NewContext()
	in := packet.BuildTCPv4(macA, macB, ipA, ipB, 1234, 443, packet.TCPSyn, make([]byte, 64))
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Process(ctx, in, 0)
	}
}
