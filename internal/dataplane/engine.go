// Package dataplane executes compiled P4 programs (package ir): it parses
// packets through the parse graph, applies match-action tables, and
// deparses output packets.
//
// The Engine implements the P4₁₆ reference semantics exactly; hardware
// targets (package target) compose Engine phases and may transform the IR
// first to model compiler or architecture errata. An Engine is not safe
// for concurrent use; the device model serializes packets through it, and
// parallel harnesses shard work across one Engine per worker.
//
// The packet hot path (Process with CollectTrace off) performs no heap
// allocations in steady state: per-packet scratch lives in the Context
// (reusable, poolable via AcquireContext/ReleaseContext), table lookups
// serialize keys into per-table scratch buffers, ternary masks are
// precomputed at install time, and all counters are resolved to pointers
// when the engine is built.
package dataplane

import (
	"fmt"
	"sync"

	"netdebug/internal/bitfield"
	"netdebug/internal/p4/ir"
	"netdebug/internal/stats"
)

// Parser error codes stored in standard_metadata.parser_error.
const (
	ParseErrNone uint64 = iota
	ParseErrReject
	ParseErrPacketTooShort
	ParseErrLoop
)

// Verdict is the parser outcome for one packet.
type Verdict int

// Parser verdicts.
const (
	VerdictAccept Verdict = iota
	VerdictReject
)

// String renders the verdict.
func (v Verdict) String() string {
	if v == VerdictAccept {
		return "accept"
	}
	return "reject"
}

// maxParserStates bounds parse-graph traversal so cyclic graphs terminate.
const maxParserStates = 256

// TableEvent records one table application, for traces and taps.
type TableEvent struct {
	Table  string
	Hit    bool
	Action string
	// Keys holds the evaluated key values at apply time.
	Keys []bitfield.Value
}

// Trace is the per-packet execution record — the "internal view" NetDebug's
// checker and localizer consume.
type Trace struct {
	ParserPath  []string
	ParserError uint64
	Verdict     Verdict
	Tables      []TableEvent
	Dropped     bool
	DropStage   string // pipeline element that dropped the packet
}

// Context is the per-packet execution state. Obtain one from
// Engine.NewContext (or the pooled AcquireContext) and reuse it across
// packets.
type Context struct {
	fields  [][]bitfield.Value
	valid   []bool
	locals  []bitfield.Value
	args    [][]bitfield.Value // action argument stack
	dropped bool
	cursor  int // parse cursor in bits
	packet  []byte
	payload []byte
	out     []byte
	Trace   Trace
	// CollectTrace enables per-packet trace recording. When off, trace
	// recording costs nothing beyond zeroing the Trace scalars.
	CollectTrace bool
	// keyScratch is reused for table-key and parser-select evaluation.
	keyScratch []bitfield.Value
	// argScratch holds one reusable argument buffer per action-call
	// depth, so direct action calls evaluate arguments without
	// allocating.
	argScratch [][]bitfield.Value

	// Batch I/O, consumed and produced by Engine.ProcessBatch: In/InPort
	// are the input frame and ingress port, Out/Egress the result. Out is
	// backed by this context's reusable output buffer, so unlike
	// back-to-back Process calls on one context, every context of a batch
	// holds its output simultaneously.
	In     []byte
	InPort uint64
	Out    []byte
	Egress uint64
}

// scratchVals returns a reusable value slice of length n. The slice is
// only valid until the next scratchVals call on the same context; callers
// must finish consuming it (or copy it) before triggering nested use.
func (ctx *Context) scratchVals(n int) []bitfield.Value {
	if cap(ctx.keyScratch) < n {
		ctx.keyScratch = make([]bitfield.Value, n)
	}
	return ctx.keyScratch[:n]
}

// callArgs returns the reusable argument buffer for an action call at the
// given stack depth.
func (ctx *Context) callArgs(depth, n int) []bitfield.Value {
	for len(ctx.argScratch) <= depth {
		ctx.argScratch = append(ctx.argScratch, nil)
	}
	if cap(ctx.argScratch[depth]) < n {
		ctx.argScratch[depth] = make([]bitfield.Value, n)
	}
	return ctx.argScratch[depth][:n]
}

// Engine executes one compiled program.
type Engine struct {
	prog     *ir.Program
	tables   map[string]*tableState
	Counters *stats.Set

	// Hot-path counters, resolved once at construction so Process never
	// concatenates counter names.
	cAccept, cReject, cTooShort, cLoop *stats.Counter
	stateCtr                           []*stats.Counter // per parser state
	emitCtr                            []*stats.Counter // per header instance

	ctxPool sync.Pool
}

// New builds an engine for prog.
func New(prog *ir.Program) *Engine {
	e := &Engine{
		prog:     prog,
		tables:   make(map[string]*tableState),
		Counters: stats.NewSet(),
	}
	for _, t := range prog.Tables() {
		ts := newTableState(t)
		ts.hit = e.Counters.Counter("table." + t.Name + ".hit")
		ts.miss = e.Counters.Counter("table." + t.Name + ".miss")
		e.tables[t.Name] = ts
	}
	e.cAccept = e.Counters.Counter("parser.accept")
	e.cReject = e.Counters.Counter("parser.reject")
	e.cTooShort = e.Counters.Counter("parser.too_short")
	e.cLoop = e.Counters.Counter("parser.loop")
	if prog.Parser != nil {
		e.stateCtr = make([]*stats.Counter, len(prog.Parser.States))
		for i, st := range prog.Parser.States {
			e.stateCtr[i] = e.Counters.Counter("parser.state." + st.Name)
		}
	}
	e.emitCtr = make([]*stats.Counter, len(prog.Instances))
	for i, inst := range prog.Instances {
		e.emitCtr[i] = e.Counters.Counter("deparser.emit." + inst.Name)
	}
	return e
}

// Program returns the loaded program.
func (e *Engine) Program() *ir.Program { return e.prog }

// SetTableCapacity lowers the usable capacity of a table below its
// declared size — targets use this to model architectural limits (e.g.
// BRAM packing overhead). Entries already installed are kept even if
// they exceed the new capacity.
func (e *Engine) SetTableCapacity(name string, capacity int) error {
	ts, ok := e.tables[name]
	if !ok {
		return fmt.Errorf("dataplane: no table %q", name)
	}
	if capacity < 0 {
		capacity = 0
	}
	ts.capacity = capacity
	return nil
}

// SetTernaryTieBreak selects the equal-priority resolution order of a
// ternary table: lifo=false is the P4 reference rule (first installed
// wins), lifo=true models hardware whose table driver resolves ties
// newest-entry-first. Like SetTableCapacity this is a target hook; it
// must be called before entries are installed, because the tuple-space
// index resolves same-group dominance at install time.
func (e *Engine) SetTernaryTieBreak(name string, lifo bool) error {
	ts, ok := e.tables[name]
	if !ok {
		return fmt.Errorf("dataplane: no table %q", name)
	}
	if ts.kind != kindTernary {
		return fmt.Errorf("dataplane: table %q is not ternary", name)
	}
	if ts.count > 0 {
		return fmt.Errorf("dataplane: table %q: tie-break must be set before entries are installed", name)
	}
	ts.tieLIFO = lifo
	return nil
}

// SetTernaryMaskLimit bounds the number of distinct mask tuples a
// ternary table accepts; installs that would create group limit+1 fail
// with a MaskSetError. Targets whose ternary emulation compiles to a
// bounded mask-set scan (one match section per distinct mask, eBPF
// style) use this to model the generated program's verifier budget.
// Like SetTernaryTieBreak it must be called before entries are
// installed, so the limit cannot invalidate install-time decisions.
func (e *Engine) SetTernaryMaskLimit(name string, limit int) error {
	ts, ok := e.tables[name]
	if !ok {
		return fmt.Errorf("dataplane: no table %q", name)
	}
	if ts.kind != kindTernary {
		return fmt.Errorf("dataplane: table %q is not ternary", name)
	}
	if ts.count > 0 {
		return fmt.Errorf("dataplane: table %q: mask limit must be set before entries are installed", name)
	}
	if limit < 0 {
		limit = 0
	}
	ts.maskLimit = limit
	return nil
}

// TernaryGroupCount returns the number of distinct mask tuples in a
// ternary table's tuple-space index — the per-lookup probe count, and
// the quantity the occupancy sweep's mask-diversity axis measures. It
// returns 0 for non-ternary or unknown tables.
func (e *Engine) TernaryGroupCount(name string) int {
	if ts, ok := e.tables[name]; ok {
		return len(ts.groups)
	}
	return 0
}

// LPMStats reports the installed-prefix count, trie node count, and
// modeled resident bytes of an lpm table's multibit tries (summed over
// the exact-key groups). It returns zeros for non-lpm or unknown
// tables. The occupancy sweep's bytes/entry column and the trie
// geometry tests read it.
func (e *Engine) LPMStats(name string) (entries, nodes, bytes int) {
	ts, ok := e.tables[name]
	if !ok || ts.kind != kindLPM {
		return 0, 0, 0
	}
	for _, trie := range ts.tries {
		n, b := trie.stats()
		nodes += n
		bytes += b
	}
	return ts.count, nodes, bytes
}

// NewContext allocates a context sized for the program.
func (e *Engine) NewContext() *Context {
	ctx := &Context{}
	ctx.fields = make([][]bitfield.Value, len(e.prog.Instances))
	ctx.valid = make([]bool, len(e.prog.Instances))
	for i, inst := range e.prog.Instances {
		ctx.fields[i] = make([]bitfield.Value, len(inst.Type.Fields))
	}
	maxLocals := 0
	for _, c := range e.prog.Controls {
		if c.NumLocals > maxLocals {
			maxLocals = c.NumLocals
		}
	}
	ctx.locals = make([]bitfield.Value, maxLocals)
	return ctx
}

// AcquireContext returns a pooled context (allocating one only when the
// pool is empty). Pair with ReleaseContext for allocation-free
// steady-state processing.
func (e *Engine) AcquireContext() *Context {
	if c, ok := e.ctxPool.Get().(*Context); ok {
		return c
	}
	return e.NewContext()
}

// ReleaseContext returns a context to the pool. The context (and any
// Trace or output bytes borrowed from it) must not be used afterwards.
func (e *Engine) ReleaseContext(ctx *Context) { e.ctxPool.Put(ctx) }

// Reset prepares the context for a new packet.
func (e *Engine) Reset(ctx *Context, pkt []byte, ingressPort uint64) {
	for i, inst := range e.prog.Instances {
		ctx.valid[i] = inst.Metadata
		f := ctx.fields[i]
		for j := range f {
			f[j] = bitfield.New(0, inst.Type.Fields[j].Width)
		}
	}
	for i := range ctx.locals {
		ctx.locals[i] = bitfield.Value{}
	}
	ctx.args = ctx.args[:0]
	ctx.dropped = false
	ctx.cursor = 0
	ctx.packet = pkt
	ctx.payload = nil
	ctx.out = ctx.out[:0]
	// A fresh Trace struct: with CollectTrace off the old slices are nil
	// and this costs nothing; with it on, any previously returned Trace
	// keeps sole ownership of its slices.
	ctx.Trace = Trace{}
	if e.prog.StdMeta >= 0 {
		ctx.fields[e.prog.StdMeta][ir.StdMetaIngressPort] = bitfield.New(ingressPort, 9)
		ctx.fields[e.prog.StdMeta][ir.StdMetaPacketLength] = bitfield.New(uint64(len(pkt)), 32)
	}
}

// Field returns the current value of an instance field.
func (ctx *Context) Field(inst, field int) bitfield.Value { return ctx.fields[inst][field] }

// SetField overrides an instance field (used by targets to model errata).
func (ctx *Context) SetField(inst, field int, v bitfield.Value) { ctx.fields[inst][field] = v }

// Valid reports header validity.
func (ctx *Context) Valid(inst int) bool { return ctx.valid[inst] }

// Dropped reports whether the packet was dropped.
func (ctx *Context) Dropped() bool { return ctx.dropped }

// MarkDropped forces the drop flag (used by targets).
func (ctx *Context) MarkDropped(stage string) {
	ctx.dropped = true
	if ctx.CollectTrace && ctx.Trace.DropStage == "" {
		ctx.Trace.DropStage = stage
	}
	ctx.Trace.Dropped = true
}

// EgressSpec returns standard_metadata.egress_spec.
func (e *Engine) EgressSpec(ctx *Context) uint64 {
	if e.prog.StdMeta < 0 {
		return 0
	}
	return ctx.fields[e.prog.StdMeta][ir.StdMetaEgressSpec].Uint64()
}

// setParserError records the error code in standard_metadata.
func (e *Engine) setParserError(ctx *Context, code uint64) {
	ctx.Trace.ParserError = code
	if e.prog.StdMeta >= 0 {
		ctx.fields[e.prog.StdMeta][ir.StdMetaParserError] = bitfield.New(code, 8)
	}
}

// Parse runs the parse graph over the packet in ctx. It returns the
// verdict; reject semantics (drop) are applied by the caller so targets can
// model errata.
func (e *Engine) Parse(ctx *Context) Verdict {
	state := e.prog.Parser.Start
	steps := 0
	for state >= 0 {
		if steps++; steps > maxParserStates {
			e.setParserError(ctx, ParseErrLoop)
			e.cLoop.Inc()
			ctx.Trace.Verdict = VerdictReject
			return VerdictReject
		}
		st := e.prog.Parser.States[state]
		if ctx.CollectTrace {
			ctx.Trace.ParserPath = append(ctx.Trace.ParserPath, st.Name)
		}
		e.stateCtr[state].Inc()
		for _, op := range st.Ops {
			if !e.execParserOp(ctx, op) {
				e.setParserError(ctx, ParseErrPacketTooShort)
				e.cTooShort.Inc()
				ctx.Trace.Verdict = VerdictReject
				return VerdictReject
			}
		}
		state = e.nextState(ctx, st.Trans)
	}
	ctx.payload = ctx.packet[ctx.cursor/8:]
	if state == ir.StateReject {
		e.setParserError(ctx, ParseErrReject)
		e.cReject.Inc()
		ctx.Trace.Verdict = VerdictReject
		return VerdictReject
	}
	e.cAccept.Inc()
	ctx.Trace.Verdict = VerdictAccept
	return VerdictAccept
}

func (e *Engine) execParserOp(ctx *Context, op ir.Stmt) bool {
	switch op := op.(type) {
	case *ir.Extract:
		inst := e.prog.Instances[op.Inst]
		need := inst.Type.Bits
		if ctx.cursor+need > len(ctx.packet)*8 {
			return false
		}
		for j, f := range inst.Type.Fields {
			ctx.fields[op.Inst][j] = bitfield.MustExtract(ctx.packet, ctx.cursor+f.Offset, f.Width)
		}
		ctx.valid[op.Inst] = true
		ctx.cursor += need
		return true
	case *ir.AssignField:
		ctx.fields[op.Inst][op.Field] = e.eval(ctx, op.RHS)
		return true
	default:
		panic(fmt.Sprintf("dataplane: illegal parser op %T", op))
	}
}

func (e *Engine) nextState(ctx *Context, tr ir.Transition) int {
	if len(tr.Keys) == 0 {
		return tr.Default
	}
	vals := ctx.scratchVals(len(tr.Keys))
	for i, k := range tr.Keys {
		vals[i] = e.eval(ctx, k)
	}
	for _, c := range tr.Cases {
		match := true
		for i := range vals {
			if !vals[i].MatchesMasked(c.Values[i], c.Masks[i]) {
				match = false
				break
			}
		}
		if match {
			return c.Next
		}
	}
	return tr.Default
}

// RunPipeline executes every control in pipeline order.
func (e *Engine) RunPipeline(ctx *Context) {
	for _, c := range e.prog.Controls {
		e.RunControl(ctx, c)
	}
}

// RunControl executes one control's apply body.
func (e *Engine) RunControl(ctx *Context, c *ir.Control) {
	e.execStmts(ctx, c.Apply, c.Name)
}

// execStmts runs a statement list; it returns false when a Return was
// executed (propagated to abort the enclosing body).
func (e *Engine) execStmts(ctx *Context, stmts []ir.Stmt, stage string) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.AssignField:
			ctx.fields[s.Inst][s.Field] = e.eval(ctx, s.RHS)
		case *ir.AssignLocal:
			ctx.locals[s.Idx] = e.eval(ctx, s.RHS)
		case *ir.SetValid:
			ctx.valid[s.Inst] = s.Valid
		case *ir.MarkToDrop:
			ctx.MarkDropped(stage)
		case *ir.If:
			branch := s.Else
			if e.eval(ctx, s.Cond).Uint64() != 0 {
				branch = s.Then
			}
			if !e.execStmts(ctx, branch, stage) {
				return false
			}
		case *ir.ApplyTable:
			e.applyTable(ctx, s.Table, stage)
		case *ir.CallAction:
			args := ctx.callArgs(len(ctx.args), len(s.Args))
			for i, a := range s.Args {
				args[i] = e.eval(ctx, a)
			}
			e.runAction(ctx, s.Action, args, stage)
		case *ir.Return:
			return false
		default:
			panic(fmt.Sprintf("dataplane: illegal control statement %T", s))
		}
	}
	return true
}

func (e *Engine) applyTable(ctx *Context, t *ir.Table, stage string) {
	ts := e.tables[t.Name]
	vals := ctx.scratchVals(len(t.Keys))
	for i, k := range t.Keys {
		vals[i] = e.eval(ctx, k.Expr)
	}
	be := ts.lookup(vals)
	if ctx.CollectTrace {
		ev := TableEvent{Table: t.Name, Keys: append([]bitfield.Value(nil), vals...)}
		if be != nil {
			ev.Hit = true
			ev.Action = be.action.Name
		} else {
			ev.Action = t.Default.Action.Name
		}
		ctx.Trace.Tables = append(ctx.Trace.Tables, ev)
	}
	if be != nil {
		ts.hit.Inc()
		e.runAction(ctx, be.action, be.Args, stage)
	} else {
		ts.miss.Inc()
		e.runAction(ctx, t.Default.Action, t.Default.Args, stage)
	}
}

func (e *Engine) runAction(ctx *Context, a *ir.Action, args []bitfield.Value, stage string) {
	ctx.args = append(ctx.args, args)
	e.execStmts(ctx, a.Body, stage)
	ctx.args = ctx.args[:len(ctx.args)-1]
}

// zeroBytes is the source for zero-filling emitted headers without
// allocating a temporary per emit.
var zeroBytes [64]byte

// appendZeros extends b with n zero bytes.
func appendZeros(b []byte, n int) []byte {
	for n > len(zeroBytes) {
		b = append(b, zeroBytes[:]...)
		n -= len(zeroBytes)
	}
	return append(b, zeroBytes[:n]...)
}

// Deparse reassembles the output packet: valid headers in emit order, then
// the unparsed payload.
func (e *Engine) Deparse(ctx *Context) []byte {
	ctx.out = ctx.out[:0]
	e.execDeparse(ctx, e.prog.Deparser.Stmts)
	ctx.out = append(ctx.out, ctx.payload...)
	return ctx.out
}

func (e *Engine) execDeparse(ctx *Context, stmts []ir.Stmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ir.Emit:
			if !ctx.valid[s.Inst] {
				continue
			}
			inst := e.prog.Instances[s.Inst]
			start := len(ctx.out)
			ctx.out = appendZeros(ctx.out, (inst.Type.Bits+7)/8)
			buf := ctx.out[start:]
			for j, f := range inst.Type.Fields {
				bitfield.MustInject(buf, f.Offset, f.Width, ctx.fields[s.Inst][j])
			}
			e.emitCtr[s.Inst].Inc()
		case *ir.If:
			branch := s.Else
			if e.eval(ctx, s.Cond).Uint64() != 0 {
				branch = s.Then
			}
			e.execDeparse(ctx, branch)
		default:
			panic(fmt.Sprintf("dataplane: illegal deparser statement %T", s))
		}
	}
}

// eval evaluates an IR expression against the context.
func (e *Engine) eval(ctx *Context, x ir.Expr) bitfield.Value {
	switch x := x.(type) {
	case ir.Const:
		return x.Val
	case ir.FieldRef:
		return ctx.fields[x.Inst][x.Field]
	case ir.LocalRef:
		return ctx.locals[x.Idx]
	case ir.ParamRef:
		return ctx.args[len(ctx.args)-1][x.Idx]
	case ir.IsValid:
		if ctx.valid[x.Inst] {
			return bitfield.New(1, 1)
		}
		return bitfield.New(0, 1)
	case ir.Unary:
		v := e.eval(ctx, x.X)
		switch x.Op {
		case ir.OpNot:
			if v.IsZero() {
				return bitfield.New(1, 1)
			}
			return bitfield.New(0, 1)
		case ir.OpBitNot:
			return v.Not()
		case ir.OpNeg:
			return bitfield.New(0, v.Width()).Sub(v)
		}
	case ir.Binary:
		return e.evalBinary(ctx, x)
	case ir.Ternary:
		if e.eval(ctx, x.Cond).Uint64() != 0 {
			return e.eval(ctx, x.A)
		}
		return e.eval(ctx, x.B)
	}
	panic(fmt.Sprintf("dataplane: illegal expression %T", x))
}

func boolVal(b bool) bitfield.Value {
	if b {
		return bitfield.New(1, 1)
	}
	return bitfield.New(0, 1)
}

func (e *Engine) evalBinary(ctx *Context, x ir.Binary) bitfield.Value {
	// Short-circuit logical operators.
	switch x.Op {
	case ir.OpLAnd:
		if e.eval(ctx, x.X).IsZero() {
			return bitfield.New(0, 1)
		}
		return boolVal(!e.eval(ctx, x.Y).IsZero())
	case ir.OpLOr:
		if !e.eval(ctx, x.X).IsZero() {
			return bitfield.New(1, 1)
		}
		return boolVal(!e.eval(ctx, x.Y).IsZero())
	}
	a := e.eval(ctx, x.X)
	b := e.eval(ctx, x.Y)
	switch x.Op {
	case ir.OpAdd:
		return a.Add(b)
	case ir.OpSub:
		return a.Sub(b)
	case ir.OpMul:
		return a.Mul(b)
	case ir.OpAnd:
		return a.And(b)
	case ir.OpOr:
		return a.Or(b)
	case ir.OpXor:
		return a.Xor(b)
	case ir.OpShl:
		return a.Shl(int(b.Uint64()))
	case ir.OpShr:
		return a.Shr(int(b.Uint64()))
	case ir.OpEq:
		return boolVal(a.Equal(b))
	case ir.OpNeq:
		return boolVal(!a.Equal(b))
	case ir.OpLt:
		return boolVal(a.Cmp(b) < 0)
	case ir.OpLe:
		return boolVal(a.Cmp(b) <= 0)
	case ir.OpGt:
		return boolVal(a.Cmp(b) > 0)
	case ir.OpGe:
		return boolVal(a.Cmp(b) >= 0)
	}
	panic(fmt.Sprintf("dataplane: illegal binary op %v", x.Op))
}

// resolveEntry resolves an entry's table state and action.
func (e *Engine) resolveEntry(entry Entry) (*tableState, *ir.Action, error) {
	ts, ok := e.tables[entry.Table]
	if !ok {
		return nil, nil, fmt.Errorf("dataplane: no table %q", entry.Table)
	}
	for _, a := range ts.def.Actions {
		if a.Name == entry.Action {
			return ts, a, nil
		}
	}
	return nil, nil, fmt.Errorf("dataplane: table %q does not allow action %q", entry.Table, entry.Action)
}

// InstallEntry validates and installs a table entry.
func (e *Engine) InstallEntry(entry Entry) error {
	ts, action, err := e.resolveEntry(entry)
	if err != nil {
		return err
	}
	return ts.install(entry, action)
}

// ValidateEntry runs exactly the validation InstallEntry would —
// table and action resolution plus entry-shape checks — without
// installing anything. Targets modelling accept-but-discard driver
// defects use it so a suppressed insert still rejects malformed
// entries the way the real driver's update call would.
func (e *Engine) ValidateEntry(entry Entry) error {
	ts, action, err := e.resolveEntry(entry)
	if err != nil {
		return err
	}
	return ts.validate(entry, action)
}

// DeleteEntry validates and removes a table entry by its match
// identity (full key for exact tables, key/prefix for lpm tables,
// mask-tuple/masked-value/priority for ternary tables). Deleting a key
// that is not installed returns a *NoSuchEntryError.
func (e *Engine) DeleteEntry(entry Entry) error {
	ts, action, err := e.resolveEntry(entry)
	if err != nil {
		return err
	}
	return ts.delete(entry, action)
}

// ClearTable removes all entries from a table.
func (e *Engine) ClearTable(name string) error {
	ts, ok := e.tables[name]
	if !ok {
		return fmt.Errorf("dataplane: no table %q", name)
	}
	ts.clear()
	return nil
}

// TableCount returns the number of installed entries.
func (e *Engine) TableCount(name string) int {
	if ts, ok := e.tables[name]; ok {
		return ts.count
	}
	return 0
}

// Process runs the full reference pipeline: parse (reject drops), controls,
// deparse. It returns the output packet (nil if dropped) and the egress
// port from standard_metadata.egress_spec.
func (e *Engine) Process(ctx *Context, pkt []byte, ingressPort uint64) (out []byte, egress uint64) {
	e.Reset(ctx, pkt, ingressPort)
	if e.Parse(ctx) == VerdictReject {
		ctx.MarkDropped("parser")
		return nil, 0
	}
	e.RunPipeline(ctx)
	if ctx.dropped {
		return nil, 0
	}
	return e.Deparse(ctx), e.EgressSpec(ctx)
}

// ProcessBatch runs a burst of packets through the pipeline: for every
// context it processes (ctx.In, ctx.InPort) and stores the result in
// ctx.Out (nil if dropped) and ctx.Egress. Each context keeps its own
// output buffer, so all results of the batch are alive at once — the
// contract per-packet Process cannot offer, since its return value is
// invalidated by the next call on the same context. Per-packet overhead
// (context pool traffic, result staging) is paid once per batch by the
// caller, and the hot path stays allocation-free in steady state.
//
// Contexts must be distinct; a context may carry trace collection
// (CollectTrace) exactly as with Process.
func (e *Engine) ProcessBatch(pkts []*Context) {
	for _, ctx := range pkts {
		ctx.Out, ctx.Egress = e.Process(ctx, ctx.In, ctx.InPort)
	}
}

// AcquireBatch returns n pooled contexts, growing dst as needed — the
// batch-mode companion of AcquireContext. Release the whole batch with
// ReleaseBatch when its outputs are no longer referenced.
func (e *Engine) AcquireBatch(dst []*Context, n int) []*Context {
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, e.AcquireContext())
	}
	return dst
}

// ReleaseBatch returns every context of a batch to the pool.
func (e *Engine) ReleaseBatch(pkts []*Context) {
	for _, ctx := range pkts {
		e.ReleaseContext(ctx)
	}
}
