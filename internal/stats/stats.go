// Package stats provides the measurement primitives shared by the NetDebug
// checker, the device model, and the external-tester baseline: monotonic
// counters, windowed rate meters, and log-bucketed latency histograms with
// percentile queries.
//
// All types are safe for concurrent use; the hot-path operations (Counter.Add,
// Histogram.Observe) are lock-free.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Meter measures event and byte rates over a simulated-time window. Unlike
// wall-clock meters, all timestamps are supplied by the caller (the device
// model's virtual clock), which makes measurements exactly reproducible.
type Meter struct {
	mu         sync.Mutex
	firstNanos int64
	lastNanos  int64
	events     uint64
	bytes      uint64
	started    bool
}

// Record notes one event of size n bytes at virtual time ts.
func (m *Meter) Record(ts time.Duration, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	nanos := ts.Nanoseconds()
	if !m.started {
		m.firstNanos = nanos
		m.started = true
	}
	if nanos > m.lastNanos {
		m.lastNanos = nanos
	}
	m.events++
	m.bytes += uint64(n)
}

// RecordBlock folds a whole block of events into the meter under one
// lock acquisition: first is the timestamp of the block's first event in
// record order, last its latest timestamp, events/bytes the block
// totals. Equivalent to calling Record per event in the same order —
// the batched checker's amortization of the per-frame meter lock.
func (m *Meter) RecordBlock(first, last time.Duration, events, bytes uint64) {
	if events == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		m.firstNanos = first.Nanoseconds()
		m.started = true
	}
	if nanos := last.Nanoseconds(); nanos > m.lastNanos {
		m.lastNanos = nanos
	}
	m.events += events
	m.bytes += bytes
}

// Snapshot summarizes the meter.
type MeterSnapshot struct {
	Events uint64
	Bytes  uint64
	Window time.Duration
	// PPS and BPS are events/sec and bits/sec averaged over the window
	// between the first and last recorded event. Zero if fewer than two
	// events were seen.
	PPS float64
	BPS float64
}

// Snapshot returns the current rates.
func (m *Meter) Snapshot() MeterSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MeterSnapshot{Events: m.events, Bytes: m.bytes}
	if m.events >= 2 && m.lastNanos > m.firstNanos {
		s.Window = time.Duration(m.lastNanos - m.firstNanos)
		secs := s.Window.Seconds()
		// The window spans events-1 inter-arrival gaps.
		s.PPS = float64(m.events-1) / secs
		s.BPS = float64(m.bytes) * 8 / secs
	}
	return s
}

// Reset clears the meter.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.firstNanos, m.lastNanos = 0, 0
	m.events, m.bytes = 0, 0
	m.started = false
}

// Histogram is a log-linear histogram of non-negative durations, patterned
// after HdrHistogram: values are bucketed by power-of-two magnitude with
// subBuckets linear buckets per magnitude, giving a bounded relative error.
//
// Observe is lock-free; quantile queries take a snapshot.
type Histogram struct {
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds, saturating in practice irrelevant
	max    atomic.Int64
	min    atomic.Int64
}

const (
	histMagnitudes = 48 // covers up to ~78 hours in nanoseconds
	histSubBuckets = 32 // ~3% relative error
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{counts: make([]atomic.Uint64, histMagnitudes*histSubBuckets)}
	h.min.Store(math.MaxInt64)
	return h
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubBuckets {
		return int(v)
	}
	// magnitude = position of the highest set bit above log2(subBuckets)
	mag := 63 - bits.LeadingZeros64(uint64(v)) - 5 // log2(histSubBuckets)==5
	sub := v >> uint(mag)                          // in [histSubBuckets, 2*histSubBuckets)
	idx := (mag+1)*histSubBuckets + int(sub) - histSubBuckets
	if idx >= histMagnitudes*histSubBuckets {
		idx = histMagnitudes*histSubBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value mapping to bucket idx.
func bucketLow(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	mag := idx/histSubBuckets - 1
	sub := idx%histSubBuckets + histSubBuckets
	return int64(sub) << uint(mag)
}

// Observe records a duration.
func (h *Histogram) Observe(d time.Duration) {
	v := d.Nanoseconds()
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveBatch records a block of durations with one atomic update each
// of the aggregate total, sum, max and min instead of five read-modify-
// writes per value; per-bucket counts stay exact. Equivalent to calling
// Observe per value.
func (h *Histogram) ObserveBatch(ds []time.Duration) {
	if len(ds) == 0 {
		return
	}
	var sum uint64
	maxV, minV := int64(-1), int64(math.MaxInt64)
	for _, d := range ds {
		v := d.Nanoseconds()
		if v < 0 {
			v = 0
		}
		h.counts[bucketIndex(v)].Add(1)
		sum += uint64(v)
		if v > maxV {
			maxV = v
		}
		if v < minV {
			minV = v
		}
	}
	h.total.Add(uint64(len(ds)))
	h.sum.Add(sum)
	for {
		cur := h.max.Load()
		if maxV <= cur || h.max.CompareAndSwap(cur, maxV) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if minV >= cur || h.min.CompareAndSwap(cur, minV) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Mean returns the mean observed duration.
func (h *Histogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration {
	v := h.max.Load()
	if v < 0 {
		return 0
	}
	return time.Duration(v)
}

// Min returns the smallest observed duration, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	v := h.min.Load()
	if v == math.MaxInt64 {
		return 0
	}
	return time.Duration(v)
}

// Quantile returns an approximation of the q-quantile (0 <= q <= 1) of the
// observed values, accurate to the bucket resolution (~3%).
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(bucketLow(i))
		}
	}
	return h.Max()
}

// Merge adds every observation recorded in o into h. Because the
// buckets are identical, quantiles of the merged histogram are true
// quantiles of the combined sample set (to bucket resolution) — the
// property shard-merging aggregators rely on, which no combination of
// the shards' own quantiles can provide.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := range h.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(o.total.Load())
	h.sum.Add(o.sum.Load())
	if v := o.max.Load(); v > 0 {
		for {
			cur := h.max.Load()
			if v <= cur || h.max.CompareAndSwap(cur, v) {
				break
			}
		}
	}
	if v := o.min.Load(); v != math.MaxInt64 {
		for {
			cur := h.min.Load()
			if v >= cur || h.min.CompareAndSwap(cur, v) {
				break
			}
		}
	}
}

// Reset clears all recorded values.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	h.min.Store(math.MaxInt64)
}

// Summary is a compact human-readable digest of a histogram.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d min=%v p50=%v p99=%v max=%v mean=%v",
		h.Count(), h.Min(), h.Quantile(0.50), h.Quantile(0.99), h.Max(), h.Mean())
}

// Set is a named collection of counters, for device status registers and
// per-stage packet counts. Lookup allocates the counter on first use.
type Set struct {
	mu       sync.RWMutex
	counters map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set { return &Set{counters: make(map[string]*Counter)} }

// Counter returns the counter with the given name, creating it if needed.
func (s *Set) Counter(name string) *Counter {
	s.mu.RLock()
	c, ok := s.counters[name]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok = s.counters[name]; ok {
		return c
	}
	c = &Counter{}
	s.counters[name] = c
	return c
}

// Values returns a copy of all counter values.
func (s *Set) Values() map[string]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]uint64, len(s.counters))
	for k, c := range s.counters {
		out[k] = c.Value()
	}
	return out
}

// Reset zeroes every counter in the set.
func (s *Set) Reset() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, c := range s.counters {
		c.Reset()
	}
}

// String renders the set sorted by name, one "name=value" per line.
func (s *Set) String() string {
	vals := s.Values()
	names := make([]string, 0, len(vals))
	for k := range vals {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d\n", n, vals[n])
	}
	return b.String()
}
