package stats

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestMeterRates(t *testing.T) {
	var m Meter
	// 1000 packets of 1250 bytes, one every microsecond: 1e6 pps, 10 Gbps.
	for i := 0; i < 1000; i++ {
		m.Record(time.Duration(i)*time.Microsecond, 1250)
	}
	s := m.Snapshot()
	if s.Events != 1000 || s.Bytes != 1250000 {
		t.Fatalf("events=%d bytes=%d", s.Events, s.Bytes)
	}
	if s.PPS < 0.99e6 || s.PPS > 1.01e6 {
		t.Errorf("pps = %v, want ~1e6", s.PPS)
	}
	// bytes*8/window: window is 999us, so ~10.01 Gbps
	if s.BPS < 9.9e9 || s.BPS > 10.2e9 {
		t.Errorf("bps = %v, want ~10e9", s.BPS)
	}
}

func TestMeterDegenerate(t *testing.T) {
	var m Meter
	if s := m.Snapshot(); s.PPS != 0 || s.Events != 0 {
		t.Fatal("empty meter should report zeros")
	}
	m.Record(time.Millisecond, 64)
	if s := m.Snapshot(); s.PPS != 0 {
		t.Fatal("single event has no rate")
	}
	m.Reset()
	if s := m.Snapshot(); s.Events != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogramExactSmall(t *testing.T) {
	h := NewHistogram()
	// Values below histSubBuckets are exact.
	for v := 1; v <= 10; v++ {
		h.Observe(time.Duration(v))
	}
	if h.Count() != 10 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 10 {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %v, want 5ns", got)
	}
	if got := h.Quantile(1.0); got != 10 {
		t.Errorf("p100 = %v, want 10ns", got)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(42))
	vals := make([]int64, 50000)
	for i := range vals {
		vals[i] = int64(rng.Intn(10_000_000)) + 1 // up to 10ms in ns
		h.Observe(time.Duration(vals[i]))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q).Nanoseconds()
		relErr := float64(got-exact) / float64(exact)
		if relErr < -0.07 || relErr > 0.07 {
			t.Errorf("q=%v: got %d exact %d relErr %.3f", q, got, exact, relErr)
		}
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	h.Observe(100 * time.Nanosecond)
	h.Observe(300 * time.Nanosecond)
	if m := h.Mean(); m != 200*time.Nanosecond {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Observe(time.Duration(i))
		b.Observe(time.Duration(10000 + i))
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if got := a.Min(); got != 1 {
		t.Fatalf("merged min = %v", got)
	}
	if got := a.Max(); got != 10100 {
		t.Fatalf("merged max = %v", got)
	}
	// The true combined median sits at the boundary of the two modes.
	if got := a.Quantile(0.5).Nanoseconds(); got < 90 || got > 110 {
		t.Fatalf("merged p50 = %d, want ~100", got)
	}
	if got := a.Quantile(0.99).Nanoseconds(); got < 9500 {
		t.Fatalf("merged p99 = %d, want in the upper mode", got)
	}
	// Merging an empty or nil histogram is a no-op.
	before := a.Count()
	a.Merge(NewHistogram())
	a.Merge(nil)
	if a.Count() != before || a.Min() != 1 {
		t.Fatalf("empty merge changed state: count=%d min=%v", a.Count(), a.Min())
	}
}

// TestHistogramMergeIntoEmpty: merging into a fresh histogram adopts
// the source's extrema — the empty side's sentinel min (MaxInt64) and
// zero max must not survive the merge.
func TestHistogramMergeIntoEmpty(t *testing.T) {
	h, o := NewHistogram(), NewHistogram()
	for i := 1; i <= 50; i++ {
		o.Observe(time.Duration(100 * i))
	}
	h.Merge(o)
	if h.Count() != 50 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 100 || h.Max() != 5000 {
		t.Fatalf("extrema = [%v, %v], want [100ns, 5µs]", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5).Nanoseconds(); got < 2300 || got > 2700 {
		t.Fatalf("p50 = %d, want ~2500", got)
	}
	if h.Mean() != o.Mean() {
		t.Fatalf("mean %v, want the source's %v", h.Mean(), o.Mean())
	}
}

// TestHistogramMergeZeroOnlyObservations: a shard whose every
// observation is 0ns has max==0, which the max-merge fast path skips —
// its count, sum, and zero min must still carry over.
func TestHistogramMergeZeroOnlyObservations(t *testing.T) {
	h, o := NewHistogram(), NewHistogram()
	o.Observe(0)
	o.Observe(0)
	h.Observe(10 * time.Nanosecond)
	h.Merge(o)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 {
		t.Fatalf("min = %v, want 0 (the zero shard's observations)", h.Min())
	}
	if h.Max() != 10 {
		t.Fatalf("max = %v", h.Max())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("p50 = %v, want 0 (two of three samples are zero)", got)
	}
}

// TestHistogramMergeMismatchedCounts: a 10-sample shard merged with a
// 10000-sample shard must weight quantiles by sample count — the
// property that makes merged fleet percentiles true percentiles, which
// averaging the two shards' own p50s (≈5005) cannot provide.
func TestHistogramMergeMismatchedCounts(t *testing.T) {
	small, big := NewHistogram(), NewHistogram()
	for i := 1; i <= 10; i++ {
		small.Observe(time.Duration(1_000_000 * i)) // 1..10ms: slow outlier shard
	}
	for i := 1; i <= 10000; i++ {
		big.Observe(time.Duration(10 + i%100)) // tight 10..109ns mode
	}
	big.Merge(small)
	if big.Count() != 10010 {
		t.Fatalf("count = %d", big.Count())
	}
	// The fast mode dominates the median…
	if got := big.Quantile(0.5).Nanoseconds(); got > 200 {
		t.Fatalf("p50 = %dns, want inside the 10010-sample fast mode", got)
	}
	// …while the tail quantiles see the outlier shard.
	if got := big.Quantile(0.9995).Nanoseconds(); got < 1_000_000 {
		t.Fatalf("p99.95 = %dns, want in the slow shard", got)
	}
	if big.Max() != 10*time.Millisecond {
		t.Fatalf("max = %v", big.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 10000; j++ {
				h.Observe(time.Duration(rng.Intn(1e6)))
			}
		}(int64(i))
	}
	wg.Wait()
	if h.Count() != 40000 {
		t.Fatalf("count = %d, want 40000", h.Count())
	}
}

func TestBucketMonotonicity(t *testing.T) {
	// bucketLow must be non-decreasing and bucketIndex(bucketLow(i)) == i.
	prev := int64(-1)
	for i := 0; i < histMagnitudes*histSubBuckets; i++ {
		low := bucketLow(i)
		if low < prev {
			t.Fatalf("bucketLow(%d)=%d < bucketLow(%d)=%d", i, low, i-1, prev)
		}
		prev = low
		if got := bucketIndex(low); got != i && i < histMagnitudes*histSubBuckets-1 {
			t.Fatalf("bucketIndex(bucketLow(%d)) = %d", i, got)
		}
	}
}

func TestSet(t *testing.T) {
	s := NewSet()
	s.Counter("parser.pkts").Add(5)
	s.Counter("parser.pkts").Add(2)
	s.Counter("deparser.pkts").Inc()
	vals := s.Values()
	if vals["parser.pkts"] != 7 || vals["deparser.pkts"] != 1 {
		t.Fatalf("values = %v", vals)
	}
	want := "deparser.pkts=1\nparser.pkts=7\n"
	if got := s.String(); got != want {
		t.Fatalf("String = %q", got)
	}
	s.Reset()
	if s.Counter("parser.pkts").Value() != 0 {
		t.Fatal("set reset failed")
	}
}

func TestSetConcurrent(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				s.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := s.Counter("shared").Value(); got != 4000 {
		t.Fatalf("shared = %d", got)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i % 1e6))
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
