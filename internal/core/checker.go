package core

import (
	"fmt"
	"sort"
	"time"

	"netdebug/internal/dataplane"
	"netdebug/internal/p4/compile"
	"netdebug/internal/stats"
	"netdebug/internal/target"
)

// FieldExpect is one post-condition on an output packet: the field at Loc,
// masked by Mask (all-ones when zero), must equal Value.
type FieldExpect struct {
	Name  string // diagnostic label, e.g. "ipv4.ttl"
	Loc   FieldLoc
	Value uint64
	Mask  uint64
}

// Rule is one checker rule, applied to the results of one stream (or all
// test packets when Stream is empty).
type Rule struct {
	Name   string
	Stream string
	// ExpectDrop asserts the data plane drops the packet. Observing it on
	// any output is a failure — this is the rule that catches the SDNet
	// reject erratum.
	ExpectDrop bool
	// ExpectPort, when >= 0, asserts the egress port.
	ExpectPort int
	// Expect are field post-conditions evaluated on the output bytes.
	Expect []FieldExpect
}

// CheckSpec programs the output packet checker.
type CheckSpec struct {
	Rules []Rule
	// LatencyBound, when nonzero, fails any test packet whose pipeline
	// latency exceeds it.
	LatencyBound time.Duration
	// P4Check is an optional P4 classifier program. Each forwarded test
	// packet is run through it on a reference engine; the packet passes
	// when the classifier forwards it. This is how test and validation
	// code is "written using P4" per the paper.
	P4Check string
	// P4CheckEntries preloads tables of the classifier.
	P4CheckEntries []dataplane.Entry
}

// RuleResult accumulates one rule's verdicts.
type RuleResult struct {
	Rule    string
	Pass    uint64
	Fail    uint64
	Samples []string // first few failure descriptions
}

// Report is the checker's output, collected by the host tool.
type Report struct {
	Injected  uint64
	Forwarded uint64
	Dropped   uint64
	// LiveSeen counts non-test (live traffic) outputs observed in
	// parallel, which the checker ignores for verdicts.
	LiveSeen uint64
	Rules    []RuleResult
	// Latency statistics over forwarded test packets, nanoseconds.
	LatMeanNs, LatP50Ns, LatP99Ns, LatMaxNs int64
	// Output rates over forwarded test packets.
	OutPPS, OutBPS float64
	// DropStages counts drops per pipeline stage — the internal view used
	// for localization.
	DropStages map[string]uint64
	Pass       bool
}

// Failures returns the total failure count across rules.
func (r *Report) Failures() uint64 {
	var n uint64
	for _, rr := range r.Rules {
		n += rr.Fail
	}
	return n
}

// String renders a compact summary.
func (r *Report) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s: injected=%d forwarded=%d dropped=%d failures=%d p99=%dns",
		verdict, r.Injected, r.Forwarded, r.Dropped, r.Failures(), r.LatP99Ns)
}

const maxSamples = 5

// Checker is the output packet checker. Feed it each test packet's result
// via OnResult and live-traffic outputs via OnLiveOutput, then call Finish.
type Checker struct {
	spec   CheckSpec
	rules  map[string][]*ruleState // stream -> rules ("" = all)
	lat    *stats.Histogram
	meter  stats.Meter
	report Report
	p4     *dataplane.Engine
	p4ctx  *dataplane.Context
	// Batched-path scratch (OnResults): the combined rule list per
	// stream, computed once instead of per frame, and the block's
	// forwarded latencies staged for one histogram batch-observe.
	ruleCache  map[string][]*ruleState
	latScratch []time.Duration
}

type ruleState struct {
	def    Rule
	result RuleResult
}

// NewChecker compiles the spec (including the optional P4 classifier).
func NewChecker(spec CheckSpec) (*Checker, error) {
	c := &Checker{
		spec:  spec,
		rules: make(map[string][]*ruleState),
		lat:   stats.NewHistogram(),
	}
	c.report.DropStages = make(map[string]uint64)
	for _, r := range spec.Rules {
		if r.Name == "" {
			return nil, fmt.Errorf("core: checker rule with empty name")
		}
		c.rules[r.Stream] = append(c.rules[r.Stream], &ruleState{def: r, result: RuleResult{Rule: r.Name}})
	}
	if spec.P4Check != "" {
		prog, err := compile.Compile(spec.P4Check)
		if err != nil {
			return nil, fmt.Errorf("core: compiling P4 check program: %w", err)
		}
		c.p4 = dataplane.New(prog)
		c.p4ctx = c.p4.NewContext()
		for _, e := range spec.P4CheckEntries {
			if err := c.p4.InstallEntry(e); err != nil {
				return nil, fmt.Errorf("core: loading P4 check entries: %w", err)
			}
		}
	}
	return c, nil
}

func (rs *ruleState) pass() { rs.result.Pass++ }

func (rs *ruleState) fail(format string, args ...any) {
	rs.result.Fail++
	if len(rs.result.Samples) < maxSamples {
		rs.result.Samples = append(rs.result.Samples, fmt.Sprintf(format, args...))
	}
}

// rulesFor returns the rules applying to a stream (stream-specific plus
// match-all rules).
func (c *Checker) rulesFor(stream string) []*ruleState {
	if stream == "" {
		return c.rules[""]
	}
	specific := c.rules[stream]
	global := c.rules[""]
	if len(global) == 0 {
		return specific
	}
	out := make([]*ruleState, 0, len(specific)+len(global))
	out = append(out, specific...)
	return append(out, global...)
}

// OnResult checks one injected test packet against its data-plane result.
func (c *Checker) OnResult(tp TestPacket, res target.Result, at time.Duration) {
	c.report.Injected++
	if res.Dropped() {
		c.report.Dropped++
		stage := res.Trace.DropStage
		if stage == "" {
			stage = "unknown"
		}
		c.report.DropStages[stage]++
	} else {
		c.report.Forwarded++
		done := at + res.Latency
		c.lat.Observe(res.Latency)
		for _, out := range res.Outputs {
			c.meter.Record(done, len(out.Data))
		}
	}
	for _, rs := range c.rulesFor(tp.Stream) {
		c.applyRule(rs, &tp, &res)
	}
}

// applyRule scores one packet's result against one rule. Both scoring
// paths — frame-at-a-time OnResult and block OnResults — funnel through
// this one function, which is what makes the per-frame path a trustable
// equality oracle for the batched one. Pointer arguments keep the block
// path from copying the ~128-byte Result (trace headers included) three
// times per frame; the pointers are never retained.
func (c *Checker) applyRule(rs *ruleState, tp *TestPacket, res *target.Result) {
	if rs.def.ExpectDrop {
		if res.Dropped() {
			rs.pass()
		} else {
			rs.fail("stream %s seq %d: forwarded to port %d, want drop",
				tp.Stream, tp.Seq, res.Outputs[0].Port)
		}
		return
	}
	if res.Dropped() {
		rs.fail("stream %s seq %d: dropped at %s, want forward",
			tp.Stream, tp.Seq, res.Trace.DropStage)
		return
	}
	out := &res.Outputs[0]
	if rs.def.ExpectPort >= 0 && out.Port != uint64(rs.def.ExpectPort) {
		rs.fail("stream %s seq %d: egress port %d, want %d",
			tp.Stream, tp.Seq, out.Port, rs.def.ExpectPort)
		return
	}
	for _, fe := range rs.def.Expect {
		got, err := fe.Loc.Extract(out.Data)
		if err != nil {
			rs.fail("stream %s seq %d: field %s outside output packet",
				tp.Stream, tp.Seq, fe.Name)
			return
		}
		mask := fe.Mask
		if mask == 0 {
			mask = ^uint64(0)
		}
		if got.Uint64()&mask != fe.Value&mask {
			rs.fail("stream %s seq %d: %s = %#x, want %#x",
				tp.Stream, tp.Seq, fe.Name, got.Uint64()&mask, fe.Value&mask)
			return
		}
	}
	if c.spec.LatencyBound > 0 && res.Latency > c.spec.LatencyBound {
		rs.fail("stream %s seq %d: latency %v exceeds bound %v",
			tp.Stream, tp.Seq, res.Latency, c.spec.LatencyBound)
		return
	}
	if c.p4 != nil {
		out2, _ := c.p4.Process(c.p4ctx, out.Data, out.Port)
		if out2 == nil {
			rs.fail("stream %s seq %d: P4 check classifier rejected output", tp.Stream, tp.Seq)
			return
		}
	}
	rs.pass()
}

// cachedRules is rulesFor with the combined specific+global list built
// once per stream instead of once per frame.
func (c *Checker) cachedRules(stream string) []*ruleState {
	if rs, ok := c.ruleCache[stream]; ok {
		return rs
	}
	if c.ruleCache == nil {
		c.ruleCache = make(map[string][]*ruleState)
	}
	rs := c.rulesFor(stream)
	c.ruleCache[stream] = rs
	return rs
}

// OnResults scores one block of injected test packets against their
// data-plane results — the batched form of OnResult, mirroring the
// injection side's batching on the verify side. Verdicts are identical
// to calling OnResult per packet (the per-frame path is the equality
// oracle); the block form amortizes the per-frame overheads: rule-list
// construction is cached per stream, forwarded latencies are staged and
// batch-observed with one atomic aggregate update, and the rate meter
// takes its lock once per block instead of once per output.
func (c *Checker) OnResults(tps []TestPacket, results []target.Result, ats []time.Duration) {
	lats := c.latScratch[:0]
	var dropped, forwarded uint64
	var events, bytes uint64
	var first, last time.Duration
	// Stream runs are the common case (the tester drains captures in
	// per-stream bursts), so memoize the last rule-list lookup: a run of
	// k same-stream frames costs one map probe, not k.
	var lastStream string
	var lastRules []*ruleState
	haveRules := false
	for i := range tps {
		res := &results[i]
		tp := &tps[i]
		if res.Dropped() {
			dropped++
			stage := res.Trace.DropStage
			if stage == "" {
				stage = "unknown"
			}
			c.report.DropStages[stage]++
		} else {
			forwarded++
			lats = append(lats, res.Latency)
			done := ats[i] + res.Latency
			for _, out := range res.Outputs {
				if events == 0 {
					first = done
				}
				if done > last {
					last = done
				}
				events++
				bytes += uint64(len(out.Data))
			}
		}
		if !haveRules || tp.Stream != lastStream {
			lastRules = c.cachedRules(tp.Stream)
			lastStream = tp.Stream
			haveRules = true
		}
		for _, rs := range lastRules {
			c.applyRule(rs, tp, res)
		}
	}
	c.report.Injected += uint64(len(tps))
	c.report.Dropped += dropped
	c.report.Forwarded += forwarded
	c.lat.ObserveBatch(lats)
	c.latScratch = lats[:0]
	c.meter.RecordBlock(first, last, events, bytes)
}

// OnLiveOutput counts an output packet that does not belong to the test
// (live traffic running in parallel).
func (c *Checker) OnLiveOutput() { c.report.LiveSeen++ }

// Finish computes the final report.
func (c *Checker) Finish() *Report {
	r := c.report
	r.LatMeanNs = c.lat.Mean().Nanoseconds()
	r.LatP50Ns = c.lat.Quantile(0.5).Nanoseconds()
	r.LatP99Ns = c.lat.Quantile(0.99).Nanoseconds()
	r.LatMaxNs = c.lat.Max().Nanoseconds()
	snap := c.meter.Snapshot()
	r.OutPPS = snap.PPS
	r.OutBPS = snap.BPS
	r.Pass = true
	for _, rules := range c.rules {
		for _, rs := range rules {
			r.Rules = append(r.Rules, rs.result)
			if rs.result.Fail > 0 {
				r.Pass = false
			}
		}
	}
	sort.Slice(r.Rules, func(i, j int) bool { return r.Rules[i].Rule < r.Rules[j].Rule })
	return &r
}
