// Package core implements NetDebug itself: the programmable test packet
// generator and output packet checker deployed inside the device, the
// device-side agent they run under, the host-side controller that drives
// them over the control channel, and the fault localizer.
//
// This is the paper's contribution. The generator injects custom test
// packets directly into the data plane under test; the checker verifies
// output packets at line rate in real time; both are programmable — the
// checker accepts full P4 programs as classifiers — and both are managed
// by a software tool on a host computer through a dedicated interface.
package core

import (
	"fmt"

	"netdebug/internal/bitfield"
	"netdebug/internal/p4/ir"
)

// FieldLoc addresses a field inside a packet by bit offset and width —
// the coordinate system the generator's sweeps/fuzzers and the checker's
// predicates share.
type FieldLoc struct {
	BitOff int
	Bits   int
}

// Valid reports whether the location is usable.
func (l FieldLoc) Valid() bool { return l.Bits > 0 }

// Extract reads the field from a packet.
func (l FieldLoc) Extract(pkt []byte) (bitfield.Value, error) {
	return bitfield.Extract(pkt, l.BitOff, l.Bits)
}

// Inject writes the field into a packet.
func (l FieldLoc) Inject(pkt []byte, v uint64) error {
	return bitfield.Inject(pkt, l.BitOff, l.Bits, bitfield.New(v, l.Bits))
}

// Layout maps "instance.field" names to packet locations for a given
// header stack. It is derived from the compiled program's header types, so
// test code addresses packet fields with the same names the P4 program
// uses.
type Layout struct {
	fields map[string]FieldLoc
	bits   int
}

// LayoutFor computes the wire layout of the given header instances (by
// diagnostic name, e.g. "ethernet", "ipv4") laid out in order.
func LayoutFor(prog *ir.Program, stack ...string) (*Layout, error) {
	l := &Layout{fields: make(map[string]FieldLoc)}
	for _, name := range stack {
		inst := prog.Instance(name)
		if inst == nil {
			return nil, fmt.Errorf("core: program has no header instance %q", name)
		}
		if inst.Metadata {
			return nil, fmt.Errorf("core: %q is metadata; it has no wire layout", name)
		}
		for _, f := range inst.Type.Fields {
			l.fields[name+"."+f.Name] = FieldLoc{BitOff: l.bits + f.Offset, Bits: f.Width}
		}
		l.bits += inst.Type.Bits
	}
	return l, nil
}

// Field returns the location of "instance.field".
func (l *Layout) Field(name string) (FieldLoc, error) {
	loc, ok := l.fields[name]
	if !ok {
		return FieldLoc{}, fmt.Errorf("core: layout has no field %q", name)
	}
	return loc, nil
}

// MustField is Field for statically-known names.
func (l *Layout) MustField(name string) FieldLoc {
	loc, err := l.Field(name)
	if err != nil {
		panic(err)
	}
	return loc
}

// Bits returns the total header-stack width.
func (l *Layout) Bits() int { return l.bits }
