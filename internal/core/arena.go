package core

// FrameArena carves per-frame buffers out of one reusable slab — the
// generator's frame allocation strategy, extracted so every producer on
// the zero-copy frame path (generator, external tester) can stamp frames
// without a per-frame allocation. A Reset declares the generation's total
// budget up front; Frame then carves full-capacity subslices, so no carve
// can ever move the slab and dangle earlier frames. Frames and the slice
// windows returned by Since stay valid until the next Reset.
type FrameArena struct {
	slab []byte
	off  int
	out  [][]byte
}

// Reset invalidates all previously carved frames and prepares the arena
// for a generation of up to totalFrames frames spanning totalBytes.
func (a *FrameArena) Reset(totalBytes, totalFrames int) {
	if cap(a.slab) < totalBytes {
		a.slab = make([]byte, totalBytes)
	}
	a.slab = a.slab[:cap(a.slab)]
	a.off = 0
	if cap(a.out) < totalFrames {
		a.out = make([][]byte, 0, totalFrames)
	}
	a.out = a.out[:0]
}

// Frame carves the next n-byte frame. Its contents are unspecified (the
// slab is reused across generations); callers overwrite it fully. When
// the Reset budget is exhausted the frame spills to an owned allocation
// instead of growing the slab, so frames carved earlier never dangle.
func (a *FrameArena) Frame(n int) []byte {
	var f []byte
	if a.off+n <= len(a.slab) {
		f = a.slab[a.off : a.off+n : a.off+n]
		a.off += n
	} else {
		f = make([]byte, n)
	}
	a.out = append(a.out, f)
	return f
}

// Mark returns the current frame count, delimiting a window for Since.
func (a *FrameArena) Mark() int { return len(a.out) }

// Since returns the frames carved since mark (a previous Mark result),
// in carve order. The window aliases the arena and is valid until the
// next Reset.
func (a *FrameArena) Since(mark int) [][]byte {
	return a.out[mark:len(a.out):len(a.out)]
}
