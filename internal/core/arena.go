package core

import "sync/atomic"

// FrameArena carves per-frame buffers out of one reusable slab — the
// generator's frame allocation strategy, extracted so every producer on
// the zero-copy frame path (generator, external tester) can stamp frames
// without a per-frame allocation. A Reset declares the generation's total
// budget up front; Frame then carves full-capacity subslices, so no carve
// can ever move the slab and dangle earlier frames. Frames and the slice
// windows returned by Since stay valid until the next Reset.
//
// An arena normally owns its slab. It can instead be bound to an extent
// reserved off a SharedArena (see SharedArena.Reserve), in which case
// generations that fit the extent carve shared memory and only
// over-budget generations fall back to the private slab.
type FrameArena struct {
	slab []byte // active carving region: the bound extent or the private slab
	ext  []byte // shared extent bound by SharedArena.Reserve; nil = private
	priv []byte // owned slab, retained across extent-bound generations
	off  int
	out  [][]byte
}

// bindExtent points the arena at shared backing (nil returns it to
// private mode). The binding takes effect at the next Reset.
func (a *FrameArena) bindExtent(ext []byte) { a.ext = ext }

// Reset invalidates all previously carved frames and prepares the arena
// for a generation of up to totalFrames frames spanning totalBytes.
// When the arena is bound to a shared extent that can hold totalBytes,
// the generation carves the extent; otherwise it carves (growing if
// needed) the private slab.
func (a *FrameArena) Reset(totalBytes, totalFrames int) {
	if a.ext != nil && totalBytes <= len(a.ext) {
		a.slab = a.ext
	} else {
		if cap(a.priv) < totalBytes {
			a.priv = make([]byte, totalBytes)
		}
		a.priv = a.priv[:cap(a.priv)]
		a.slab = a.priv
	}
	a.off = 0
	if cap(a.out) < totalFrames {
		a.out = make([][]byte, 0, totalFrames)
	}
	a.out = a.out[:0]
}

// Frame carves the next n-byte frame. Its contents are unspecified (the
// slab is reused across generations); callers overwrite it fully. When
// the Reset budget is exhausted the frame spills to an owned allocation
// instead of growing the slab, so frames carved earlier never dangle.
func (a *FrameArena) Frame(n int) []byte {
	var f []byte
	if a.off+n <= len(a.slab) {
		f = a.slab[a.off : a.off+n : a.off+n]
		a.off += n
	} else {
		f = make([]byte, n)
	}
	a.out = append(a.out, f)
	return f
}

// Mark returns the current frame count, delimiting a window for Since.
func (a *FrameArena) Mark() int { return len(a.out) }

// Since returns the frames carved since mark (a previous Mark result),
// in carve order. The window aliases the arena and is valid until the
// next Reset.
func (a *FrameArena) Since(mark int) [][]byte {
	return a.out[mark:len(a.out):len(a.out)]
}

// SharedArena is the fleet-scale form of FrameArena: one slab that many
// producers carve concurrently. Reset declares the whole fleet's byte
// budget; Reserve then bumps an atomic cursor to carve a contiguous
// extent per producer and binds it to that producer's FrameArena, which
// keeps its usual Frame/Mark/Since semantics within the extent. Every
// shard of a fleet therefore stamps frames into one memory region, with
// no lock on the reservation path and no sharing of the carved bytes.
//
// Reservations that no longer fit return the caller's FrameArena to its
// private slab — an over-budget fleet degrades to per-producer arenas
// instead of failing. Extents stay valid until the next Reset, which
// must not race any Reserve or any use of previously carved frames.
type SharedArena struct {
	slab []byte
	off  atomic.Int64
}

// Reset invalidates all outstanding extents and prepares the arena to
// hand out totalBytes of shared backing.
func (a *SharedArena) Reset(totalBytes int) {
	if cap(a.slab) < totalBytes {
		a.slab = make([]byte, totalBytes)
	}
	a.slab = a.slab[:cap(a.slab)]
	a.off.Store(0)
}

// ReserveBytes carves the next n-byte extent off the slab, or returns
// nil when n bytes no longer fit. Safe for concurrent use.
func (a *SharedArena) ReserveBytes(n int) []byte {
	if n <= 0 {
		return nil
	}
	for {
		cur := a.off.Load()
		next := cur + int64(n)
		if next > int64(len(a.slab)) {
			return nil
		}
		if a.off.CompareAndSwap(cur, next) {
			return a.slab[cur:next:next]
		}
	}
}

// Reserve carves a totalBytes extent and resets fa onto it for a
// generation of up to totalFrames frames. When the extent does not fit
// — or the receiver is nil, the idiom for "no shared arena configured"
// — fa is returned to its private slab instead. Safe for concurrent use
// by one goroutine per FrameArena.
func (a *SharedArena) Reserve(fa *FrameArena, totalBytes, totalFrames int) {
	if a == nil {
		fa.bindExtent(nil)
	} else {
		fa.bindExtent(a.ReserveBytes(totalBytes))
	}
	fa.Reset(totalBytes, totalFrames)
}

// Used reports the bytes reserved since the last Reset.
func (a *SharedArena) Used() int { return int(a.off.Load()) }

// Size reports the slab capacity declared by the last Reset.
func (a *SharedArena) Size() int { return len(a.slab) }
