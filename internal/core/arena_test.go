package core

import (
	"math/rand"
	"sync"
	"testing"
)

// TestSharedArenaConcurrentCarve hammers SharedArena.Reserve from many
// goroutines reserving random extents (the CI differential-fuzz job runs
// this under -race): every in-budget extent must be disjoint from every
// other, and a byte pattern written through one reservation's frames
// must survive all other reservations untouched.
func TestSharedArenaConcurrentCarve(t *testing.T) {
	const (
		goroutines = 16
		rounds     = 64
		slabBytes  = 1 << 20
	)
	var sa SharedArena
	sa.Reset(slabBytes)

	type carve struct {
		frames [][]byte
		tag    byte
	}
	carves := make([][]carve, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 1)))
			var fa FrameArena
			for r := 0; r < rounds; r++ {
				nFrames := 1 + rng.Intn(8)
				size := 16 + rng.Intn(256)
				sa.Reserve(&fa, nFrames*size, nFrames)
				tag := byte(g*rounds+r) | 1
				c := carve{tag: tag}
				for i := 0; i < nFrames; i++ {
					f := fa.Frame(size)
					for j := range f {
						f[j] = tag
					}
					c.frames = append(c.frames, f)
				}
				carves[g] = append(carves[g], c)
			}
		}()
	}
	wg.Wait()

	// Every frame still holds its writer's pattern: if any two extents
	// overlapped, the later writer would have clobbered the earlier one.
	for g, cs := range carves {
		for _, c := range cs {
			for _, f := range c.frames {
				for _, b := range f {
					if b != c.tag {
						t.Fatalf("goroutine %d: frame byte %#x, want %#x — extents overlapped", g, b, c.tag)
					}
				}
			}
		}
	}
	if sa.Used() > sa.Size() {
		t.Fatalf("arena reserved %d bytes of a %d-byte slab", sa.Used(), sa.Size())
	}
}

// TestSharedArenaExhaustionFallsBack: a reservation that no longer fits
// returns the FrameArena to its private slab, and the frames carved
// there live outside the shared slab.
func TestSharedArenaExhaustionFallsBack(t *testing.T) {
	var sa SharedArena
	sa.Reset(64)
	var a, b FrameArena
	sa.Reserve(&a, 48, 1)
	fa := a.Frame(48)
	sa.Reserve(&b, 48, 1) // only 16 bytes left: must fall back
	fb := b.Frame(48)
	if len(fa) != 48 || len(fb) != 48 {
		t.Fatalf("frame lengths %d, %d, want 48", len(fa), len(fb))
	}
	for i := range fa {
		fa[i], fb[i] = 0xaa, 0xbb
	}
	for i := range fa {
		if fa[i] != 0xaa || fb[i] != 0xbb {
			t.Fatal("fallback frame aliases a shared extent")
		}
	}
	if sa.Used() != 48 {
		t.Fatalf("used = %d, want 48 (failed reservation must not consume budget)", sa.Used())
	}
	// A later Reset makes the full slab reservable again, and the
	// previously fallen-back arena rebinds on its next Reserve.
	sa.Reset(64)
	sa.Reserve(&b, 64, 1)
	if got := sa.Used(); got != 64 {
		t.Fatalf("used after rebind = %d, want 64", got)
	}
}

// TestSharedArenaMarkSincePerReservation: Mark/Since windows are scoped
// to the owning FrameArena, not the shared slab.
func TestSharedArenaMarkSincePerReservation(t *testing.T) {
	var sa SharedArena
	sa.Reset(1 << 12)
	var a, b FrameArena
	sa.Reserve(&a, 64, 4)
	sa.Reserve(&b, 64, 4)
	a.Frame(16)
	m := b.Mark()
	b.Frame(16)
	a.Frame(16)
	b.Frame(16)
	if got := len(b.Since(m)); got != 2 {
		t.Fatalf("Since window has %d frames, want 2", got)
	}
	if got := len(a.Since(0)); got != 2 {
		t.Fatalf("arena a holds %d frames, want 2", got)
	}
}
