package core

import (
	"strings"
	"testing"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/device"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/ir"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
	"netdebug/internal/target"
)

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 0xa}
	macB = packet.MAC{2, 0, 0, 0, 0, 0xb}
	gw   = packet.MAC{2, 0, 0, 0, 0xff, 1}
	ipA  = packet.IPv4Addr{10, 0, 0, 1}
	ipB  = packet.IPv4Addr{10, 0, 1, 2}
)

func routerProgram(t testing.TB) *ir.Program {
	t.Helper()
	prog, err := compile.Compile(p4test.Router)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func routeEntry() dataplane.Entry {
	return dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(1, 9)},
	}
}

// newAgent boots a device around tg (loaded with Router + one route) and
// attaches NetDebug.
func newAgent(t testing.TB, tg target.Target) *Agent {
	t.Helper()
	if err := tg.Load(routerProgram(t)); err != nil {
		t.Fatal(err)
	}
	if err := tg.InstallEntry(routeEntry()); err != nil {
		t.Fatal(err)
	}
	dev, err := device.New(device.Config{Target: tg})
	if err != nil {
		t.Fatal(err)
	}
	return NewAgent(dev)
}

func goodFrame(payload int) []byte {
	return packet.BuildUDPv4(macA, macB, ipA, ipB, 40000, 53, make([]byte, payload))
}

func badVersionFrame() []byte {
	f := goodFrame(26)
	f[14] = 0x65 // IPv4 version 6 -> parser must reject
	fixIPv4Checksum(f)
	return f
}

func TestLayout(t *testing.T) {
	prog := routerProgram(t)
	l, err := LayoutFor(prog, "ethernet", "ipv4")
	if err != nil {
		t.Fatal(err)
	}
	if l.Bits() != 112+160 {
		t.Fatalf("layout bits = %d", l.Bits())
	}
	ttl := l.MustField("ipv4.ttl")
	if ttl.BitOff != 112+64 || ttl.Bits != 8 {
		t.Fatalf("ttl loc = %+v", ttl)
	}
	et := l.MustField("ethernet.etherType")
	if et.BitOff != 96 || et.Bits != 16 {
		t.Fatalf("etherType loc = %+v", et)
	}
	if _, err := l.Field("ipv4.nope"); err == nil {
		t.Error("unknown field should error")
	}
	if _, err := LayoutFor(prog, "ghost"); err == nil {
		t.Error("unknown instance should error")
	}
	if _, err := LayoutFor(prog, "standard_metadata"); err == nil {
		t.Error("metadata instance should error")
	}
}

func TestGeneratorSweepAndSeq(t *testing.T) {
	prog := routerProgram(t)
	l, _ := LayoutFor(prog, "ethernet", "ipv4")
	dst := l.MustField("ipv4.dstAddr")
	id := l.MustField("ipv4.identification")
	gen, err := NewGenerator(GenSpec{Streams: []StreamSpec{{
		Name:     "sweep",
		Template: goodFrame(26),
		Count:    10,
		RatePPS:  1e6,
		Sweeps:   []FieldSweep{{Loc: dst, Start: 0x0a000001, Step: 7}},
		SeqLoc:   id,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	pkts := gen.Packets(0)
	if len(pkts) != 10 {
		t.Fatalf("packets = %d", len(pkts))
	}
	for i, tp := range pkts {
		if tp.At != time.Duration(i)*time.Microsecond {
			t.Fatalf("pkt %d at %v", i, tp.At)
		}
		got, _ := dst.Extract(tp.Data)
		if got.Uint64() != 0x0a000001+uint64(i)*7 {
			t.Fatalf("pkt %d dst = %#x", i, got.Uint64())
		}
		seq, _ := id.Extract(tp.Data)
		if seq.Uint64() != tp.Seq || tp.Seq != uint64(i) {
			t.Fatalf("pkt %d seq tag %d (field %d)", i, tp.Seq, seq.Uint64())
		}
	}
}

func TestGeneratorFuzzDeterministic(t *testing.T) {
	prog := routerProgram(t)
	l, _ := LayoutFor(prog, "ethernet", "ipv4")
	spec := GenSpec{Streams: []StreamSpec{{
		Name:     "fuzz",
		Template: goodFrame(26),
		Count:    20,
		Fuzz:     []FieldFuzz{{Loc: l.MustField("ipv4.srcAddr"), Seed: 99}},
	}}}
	g1, _ := NewGenerator(spec)
	g2, _ := NewGenerator(spec)
	p1, p2 := g1.Packets(0), g2.Packets(0)
	for i := range p1 {
		if string(p1[i].Data) != string(p2[i].Data) {
			t.Fatal("fuzz is not reproducible")
		}
	}
	// and actually varies
	if string(p1[0].Data) == string(p1[1].Data) {
		t.Fatal("fuzz did not vary the field")
	}
}

func TestGeneratorFuzzBoundaries(t *testing.T) {
	prog := routerProgram(t)
	l, _ := LayoutFor(prog, "ethernet", "ipv4")
	loc := l.MustField("ipv4.srcAddr")
	spec := func(boundaries bool) GenSpec {
		return GenSpec{Streams: []StreamSpec{{
			Name:     "fuzz",
			Template: goodFrame(26),
			Count:    256,
			Fuzz:     []FieldFuzz{{Loc: loc, Seed: 7, Boundaries: boundaries}},
		}}}
	}
	gb, _ := NewGenerator(spec(true))
	gp, _ := NewGenerator(spec(false))
	pb, pp := gb.Packets(0), gp.Packets(0)
	max := uint64(1)<<uint(loc.Bits) - 1
	boundary := map[uint64]int{0: 0, max: 0, 1: 0, max - 1: 0}
	for i := range pb {
		vb, _ := bitfield.Extract(pb[i].Data, loc.BitOff, loc.Bits)
		vp, _ := bitfield.Extract(pp[i].Data, loc.BitOff, loc.Bits)
		if n, hit := boundary[vb.Uint64()]; hit && vb.Uint64() != vp.Uint64() {
			// A biased draw: replaced by one of the four boundary values.
			boundary[vb.Uint64()] = n + 1
		} else if vb.Uint64() != vp.Uint64() {
			// Non-boundary draws must be byte-identical to the unbiased
			// sequence — Boundaries may not perturb the base stream.
			t.Fatalf("pkt %d: non-boundary draw changed: %#x vs %#x", i, vb.Uint64(), vp.Uint64())
		}
	}
	for v, n := range boundary {
		if n == 0 {
			t.Errorf("boundary value %#x never drawn in 256 packets", v)
		}
	}
}

func TestGeneratorMergesStreamsByTime(t *testing.T) {
	gen, err := NewGenerator(GenSpec{Streams: []StreamSpec{
		{Name: "slow", Template: goodFrame(0), Count: 3, RatePPS: 1e5},  // every 10us
		{Name: "fast", Template: goodFrame(0), Count: 10, RatePPS: 1e6}, // every 1us
	}})
	if err != nil {
		t.Fatal(err)
	}
	pkts := gen.Packets(0)
	if len(pkts) != 13 {
		t.Fatalf("packets = %d", len(pkts))
	}
	for i := 1; i < len(pkts); i++ {
		if pkts[i].At < pkts[i-1].At {
			t.Fatal("packets not time-sorted")
		}
	}
	// Seq must be globally unique.
	seen := map[uint64]bool{}
	for _, tp := range pkts {
		if seen[tp.Seq] {
			t.Fatalf("duplicate seq %d", tp.Seq)
		}
		seen[tp.Seq] = true
	}
}

func TestGeneratorLineRateDefault(t *testing.T) {
	gen, err := NewGenerator(GenSpec{Streams: []StreamSpec{{
		Name: "lr", Template: make([]byte, 1480), Count: 2,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	pkts := gen.Packets(0)
	// (1480+20)*8 bits / 10Gbps = 1.2us between frames
	gap := pkts[1].At - pkts[0].At
	if gap != 1200*time.Nanosecond {
		t.Fatalf("line-rate gap = %v", gap)
	}
}

func TestGeneratorValidation(t *testing.T) {
	bad := []GenSpec{
		{},
		{Streams: []StreamSpec{{Name: "", Template: []byte{1}, Count: 1}}},
		{Streams: []StreamSpec{{Name: "a", Template: nil, Count: 1}}},
		{Streams: []StreamSpec{{Name: "a", Template: []byte{1}, Count: 0}}},
		{Streams: []StreamSpec{{Name: "a", Template: []byte{1}, Count: 1}, {Name: "a", Template: []byte{1}, Count: 1}}},
		{Streams: []StreamSpec{{Name: "a", Template: []byte{1}, Count: 1,
			Sweeps: []FieldSweep{{Loc: FieldLoc{BitOff: 4, Bits: 8}}}}}},
		{Streams: []StreamSpec{{Name: "a", Template: []byte{1, 2}, Count: 300,
			SeqLoc: FieldLoc{BitOff: 0, Bits: 8}}}}, // 8-bit tag, 300 packets
	}
	for i, spec := range bad {
		if _, err := NewGenerator(spec); err == nil {
			t.Errorf("spec %d should be rejected", i)
		}
	}
}

// TestRejectBugDetection is the paper's §4 case study, end to end through
// the full NetDebug stack (controller -> control channel -> agent ->
// generator -> device -> checker): the reference target passes the
// malformed-packet drop test, the SDNet target fails it because the reject
// parser state is not implemented.
func TestRejectBugDetection(t *testing.T) {
	spec := &TestSpec{
		Name: "reject-validation",
		Gen: GenSpec{Streams: []StreamSpec{
			{Name: "wellformed", Template: goodFrame(26), Count: 50, RatePPS: 1e6},
			{Name: "malformed", Template: badVersionFrame(), Count: 50, RatePPS: 1e6},
		}},
		Check: CheckSpec{Rules: []Rule{
			{Name: "wellformed-forwarded", Stream: "wellformed", ExpectPort: 1},
			{Name: "malformed-dropped", Stream: "malformed", ExpectDrop: true},
		}},
	}

	// Reference target: both rules pass.
	ctl := Connect(newAgent(t, target.NewReference()))
	defer ctl.Close()
	rep, err := ctl.RunTest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("reference run failed: %v", rep)
	}
	if rep.Dropped != 50 || rep.Forwarded != 50 {
		t.Fatalf("reference: dropped=%d forwarded=%d", rep.Dropped, rep.Forwarded)
	}

	// SDNet target: malformed packets are forwarded — NetDebug detects the
	// severe bug immediately.
	ctl2 := Connect(newAgent(t, target.NewSDNet(target.DefaultErrata())))
	defer ctl2.Close()
	rep2, err := ctl2.RunTest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Pass {
		t.Fatal("sdnet run passed; the reject erratum must be detected")
	}
	var malformed *RuleResult
	for i := range rep2.Rules {
		if rep2.Rules[i].Rule == "malformed-dropped" {
			malformed = &rep2.Rules[i]
		}
	}
	if malformed == nil || malformed.Fail != 50 || malformed.Pass != 0 {
		t.Fatalf("malformed rule: %+v", malformed)
	}
	if len(malformed.Samples) == 0 || !strings.Contains(malformed.Samples[0], "want drop") {
		t.Fatalf("samples: %v", malformed.Samples)
	}
	// The fixed compiler passes again.
	ctl3 := Connect(newAgent(t, target.NewSDNet(target.FixedErrata())))
	defer ctl3.Close()
	rep3, err := ctl3.RunTest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Pass {
		t.Fatalf("fixed sdnet failed: %v", rep3)
	}
}

func TestCheckerFieldExpectations(t *testing.T) {
	prog := routerProgram(t)
	l, _ := LayoutFor(prog, "ethernet", "ipv4")
	ttl := l.MustField("ipv4.ttl")
	spec := &TestSpec{
		Name: "ttl-decrement",
		Gen: GenSpec{Streams: []StreamSpec{{
			Name: "probe", Template: goodFrame(26), Count: 10, RatePPS: 1e6,
		}}},
		Check: CheckSpec{Rules: []Rule{{
			Name:       "ttl-is-63",
			Stream:     "probe",
			ExpectPort: 1,
			Expect:     []FieldExpect{{Name: "ipv4.ttl", Loc: ttl, Value: 63}},
		}}},
	}
	ctl := Connect(newAgent(t, target.NewReference()))
	defer ctl.Close()
	rep, err := ctl.RunTest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("ttl check failed: %+v", rep.Rules)
	}
	// Now expect the wrong value; every packet must fail.
	spec.Check.Rules[0].Expect[0].Value = 64
	rep, err = ctl.RunTest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.Failures() != 10 {
		t.Fatalf("wrong-value check: %v", rep)
	}
}

func TestCheckerP4Classifier(t *testing.T) {
	// The P4 checker program: forward (pass) only packets whose TTL is
	// exactly 63 — validation code written in P4, per the paper.
	const p4check = `
	header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
	header ipv4_t {
	  bit<4> version; bit<4> ihl; bit<8> tos; bit<16> len;
	  bit<16> id; bit<3> flags; bit<13> frag; bit<8> ttl; bit<8> proto;
	  bit<16> csum; bit<32> srcAddr; bit<32> dstAddr;
	}
	struct hs { ethernet_t eth; ipv4_t ipv4; }
	parser CkParser(packet_in pkt, out hs hdr) {
	  state start {
	    pkt.extract(hdr.eth);
	    transition select(hdr.eth.etherType) { 16w0x0800: pi; default: reject; }
	  }
	  state pi { pkt.extract(hdr.ipv4); transition accept; }
	}
	control CkVerify(inout hs hdr, inout standard_metadata_t sm) {
	  apply {
	    if (hdr.ipv4.ttl == 8w63) {
	      sm.egress_spec = 9w1;
	    } else {
	      mark_to_drop();
	    }
	  }
	}
	control CkDeparser(packet_out pkt, in hs hdr) {
	  apply { pkt.emit(hdr.eth); pkt.emit(hdr.ipv4); }
	}
	V1Switch(CkParser(), CkVerify(), CkDeparser()) main;`

	spec := &TestSpec{
		Name: "p4-check",
		Gen: GenSpec{Streams: []StreamSpec{{
			Name: "probe", Template: goodFrame(26), Count: 5, RatePPS: 1e6,
		}}},
		Check: CheckSpec{
			Rules:   []Rule{{Name: "p4-verdict", Stream: "probe", ExpectPort: -1}},
			P4Check: p4check,
		},
	}
	ctl := Connect(newAgent(t, target.NewReference()))
	defer ctl.Close()
	rep, err := ctl.RunTest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("p4 classifier should accept ttl=63 outputs: %+v", rep.Rules)
	}

	// A buggy program that does not decrement TTL fails the P4 check.
	progNoTTL, err := compile.Compile(p4test.RouterNoTTLCheck)
	if err != nil {
		t.Fatal(err)
	}
	// RouterNoTTLCheck still decrements; build a variant that doesn't by
	// using the reflector (TTL untouched -> 64).
	_ = progNoTTL
	refl := target.NewReference()
	prog2, err := compile.Compile(p4test.Reflector)
	if err != nil {
		t.Fatal(err)
	}
	if err := refl.Load(prog2); err != nil {
		t.Fatal(err)
	}
	dev, err := device.New(device.Config{Target: refl})
	if err != nil {
		t.Fatal(err)
	}
	ctl2 := Connect(NewAgent(dev))
	defer ctl2.Close()
	rep2, err := ctl2.RunTest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Pass {
		t.Fatal("p4 classifier should reject outputs with ttl != 63")
	}
}

func TestCheckerLatencyBound(t *testing.T) {
	spec := &TestSpec{
		Name: "latency",
		Gen: GenSpec{Streams: []StreamSpec{{
			Name: "probe", Template: goodFrame(1000), Count: 10, RatePPS: 1e5,
		}}},
		Check: CheckSpec{
			Rules:        []Rule{{Name: "fast-enough", Stream: "probe", ExpectPort: -1}},
			LatencyBound: time.Nanosecond, // impossible bound
		},
	}
	ctl := Connect(newAgent(t, target.NewSDNet(target.DefaultErrata())))
	defer ctl.Close()
	rep, err := ctl.RunTest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("1ns latency bound must fail")
	}
	if !strings.Contains(rep.Rules[0].Samples[0], "latency") {
		t.Fatalf("sample: %v", rep.Rules[0].Samples)
	}
	if rep.LatP99Ns <= 0 || rep.LatMaxNs < rep.LatP50Ns {
		t.Fatalf("latency stats: %+v", rep)
	}
}

func TestCheckerThroughputMeter(t *testing.T) {
	spec := &TestSpec{
		Name: "rate",
		Gen: GenSpec{Streams: []StreamSpec{{
			Name: "probe", Template: goodFrame(1186), Count: 1000, // 1250B on wire with headers
		}}},
		Check: CheckSpec{Rules: []Rule{{Name: "fwd", Stream: "probe", ExpectPort: -1}}},
	}
	ctl := Connect(newAgent(t, target.NewReference()))
	defer ctl.Close()
	rep, err := ctl.RunTest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("rate test failed: %v", rep)
	}
	// Line-rate injection of 1228-byte frames at 10G: ~9.84 Gbps of L2
	// throughput (payload bits over wire time including overhead).
	if rep.OutBPS < 9.0e9 || rep.OutBPS > 10.5e9 {
		t.Fatalf("throughput = %.3g bps", rep.OutBPS)
	}
	if rep.OutPPS < 0.9e6/1.0 && rep.OutPPS > 0 { // ~1.0 Mpps for 1248B frames
		t.Fatalf("pps = %f", rep.OutPPS)
	}
}

func TestAgentErrors(t *testing.T) {
	agent := newAgent(t, target.NewReference())
	ctl := Connect(agent)
	defer ctl.Close()
	// Run before configure.
	if _, err := agent.Run(); err == nil {
		t.Error("run without configure should fail")
	}
	// Fetch before run.
	if _, err := ctl.RunTest(&TestSpec{}); err == nil {
		t.Error("empty spec should fail validation")
	}
	// Bad entry via controller.
	if err := ctl.InstallEntry(dataplane.Entry{Table: "ghost"}); err == nil {
		t.Error("install into missing table should fail")
	}
	// Status round trip.
	st, err := ctl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st["port0.link_up"]; !ok {
		t.Fatalf("status missing link state: %v", st)
	}
	// Hello.
	hello, err := ctl.Hello()
	if err != nil || hello.TargetName != "reference" {
		t.Fatalf("hello: %+v %v", hello, err)
	}
}

func TestControllerResources(t *testing.T) {
	ctl := Connect(newAgent(t, target.NewSDNet(target.DefaultErrata())))
	defer ctl.Close()
	res, err := ctl.Resources()
	if err != nil {
		t.Fatal(err)
	}
	if res.LUTs <= 0 || res.LUTPct <= 0 {
		t.Fatalf("resources: %+v", res)
	}
}

func TestLocalizeDataplaneFault(t *testing.T) {
	// A program bug: clear the route table so the probe is dropped at the
	// ingress control.
	agent := newAgent(t, target.NewReference())
	agent.Device().Target().ClearTable("ipv4_lpm")
	diag := LocalizeFault(agent.Device(), goodFrame(26), 0, 1)
	if diag.Stage != "RouterIngress" {
		t.Fatalf("stage = %q, want RouterIngress", diag.Stage)
	}
}

func TestLocalizeParserFault(t *testing.T) {
	agent := newAgent(t, target.NewReference())
	diag := LocalizeFault(agent.Device(), badVersionFrame(), 0, 1)
	if diag.Stage != "parser" {
		t.Fatalf("stage = %q, want parser", diag.Stage)
	}
}

func TestLocalizeMACFault(t *testing.T) {
	agent := newAgent(t, target.NewReference())
	agent.Device().InjectFault(device.Fault{Kind: device.FaultPortDown, Port: 0})
	diag := LocalizeFault(agent.Device(), goodFrame(26), 0, 1)
	if diag.Stage != "mac-in port 0" {
		t.Fatalf("stage = %q, want mac-in port 0 (evidence: %v)", diag.Stage, diag.Evidence)
	}
}

func TestLocalizeEgressFault(t *testing.T) {
	agent := newAgent(t, target.NewReference())
	agent.Device().InjectFault(device.Fault{Kind: device.FaultQueueStuck, Port: 1})
	diag := LocalizeFault(agent.Device(), goodFrame(26), 0, 1)
	if diag.Stage != "egress port 1" {
		t.Fatalf("stage = %q, want egress port 1 (evidence: %v)", diag.Stage, diag.Evidence)
	}
}

func TestLocalizeHealthy(t *testing.T) {
	agent := newAgent(t, target.NewReference())
	diag := LocalizeFault(agent.Device(), goodFrame(26), 0, 1)
	if diag.Stage != "none" {
		t.Fatalf("stage = %q, want none (evidence: %v)", diag.Stage, diag.Evidence)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	spec := &TestSpec{
		Name: "rt",
		Gen: GenSpec{Streams: []StreamSpec{{
			Name: "s", Template: []byte{1, 2, 3}, Count: 4, RatePPS: 100,
			Sweeps: []FieldSweep{{Loc: FieldLoc{0, 8}, Start: 1, Step: 2}},
		}}},
		Check: CheckSpec{Rules: []Rule{{Name: "r", Stream: "s", ExpectDrop: true}}},
	}
	b, err := EncodeTestSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTestSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rt" || len(got.Gen.Streams) != 1 || got.Gen.Streams[0].Sweeps[0].Step != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := DecodeTestSpec([]byte("garbage")); err == nil {
		t.Error("garbage spec should fail decode")
	}
}

// TestLiveTrafficInParallel verifies NetDebug validates while live traffic
// flows through the device — "deployed in parallel to live traffic".
func TestLiveTrafficInParallel(t *testing.T) {
	agent := newAgent(t, target.NewReference())
	dev := agent.Device()
	// Live traffic: 100 frames through the external ports.
	for i := 0; i < 100; i++ {
		dev.SendExternal(0, goodFrame(100), time.Duration(i)*10*time.Microsecond)
	}
	// Test run interleaved afterwards on the same device.
	spec := &TestSpec{
		Name: "parallel",
		Gen: GenSpec{Streams: []StreamSpec{{
			Name: "probe", Template: goodFrame(26), Count: 20, RatePPS: 1e6,
		}}},
		Check: CheckSpec{Rules: []Rule{{Name: "fwd", Stream: "probe", ExpectPort: 1}}},
	}
	if err := agent.Configure(spec); err != nil {
		t.Fatal(err)
	}
	rep, err := agent.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Injected != 20 {
		t.Fatalf("parallel test: %v", rep)
	}
	// Live traffic still flowed: port 1 transmitted the 100 live frames.
	if got := dev.Status()["port1.tx.frames"]; got != 100 {
		t.Fatalf("live frames transmitted = %d", got)
	}
}

func BenchmarkGeneratorPackets(b *testing.B) {
	spec := GenSpec{Streams: []StreamSpec{{
		Name: "s", Template: goodFrame(64), Count: 1000, RatePPS: 1e6,
		Sweeps: []FieldSweep{{Loc: FieldLoc{240, 32}, Start: 1, Step: 1}},
	}}}
	gen, err := NewGenerator(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pkts := gen.Packets(0); len(pkts) != 1000 {
			b.Fatal("bad count")
		}
	}
}

func BenchmarkEndToEndTest(b *testing.B) {
	ctl := Connect(newAgent(b, target.NewSDNet(target.DefaultErrata())))
	defer ctl.Close()
	spec := &TestSpec{
		Name: "bench",
		Gen: GenSpec{Streams: []StreamSpec{{
			Name: "probe", Template: goodFrame(64), Count: 100, RatePPS: 1e6,
		}}},
		Check: CheckSpec{Rules: []Rule{{Name: "fwd", Stream: "probe", ExpectPort: 1}}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := ctl.RunTest(spec)
		if err != nil || !rep.Pass {
			b.Fatalf("%v %v", rep, err)
		}
	}
}
