package core

import (
	"fmt"
	"time"

	"netdebug/internal/device"
)

// Diagnosis is the localizer's conclusion about where a fault lives.
type Diagnosis struct {
	// Stage is the faulty element: "none", "parser", a control name,
	// "mac-in port N", or "egress port N" (output queue or MAC-out).
	Stage string
	// Evidence lists the observations that support the conclusion.
	Evidence []string
}

func (d Diagnosis) String() string {
	return fmt.Sprintf("fault at %s (%d observations)", d.Stage, len(d.Evidence))
}

// LocalizeFault determines where a probe packet is lost, exploiting
// NetDebug's position inside the device: it can inject below the MACs and
// observe at every internal tap, so it can tell apart interface faults,
// data-plane drops (per stage), and egress faults — even when the device
// emits nothing at all. probe must be a packet the (healthy) program
// forwards; expectPort is its expected egress.
func LocalizeFault(dev *device.Device, probe []byte, ingress int, expectPort int) Diagnosis {
	var diag Diagnosis
	note := func(format string, args ...any) {
		diag.Evidence = append(diag.Evidence, fmt.Sprintf(format, args...))
	}

	// Step 1: inject directly into the data plane, bypassing the MACs.
	res := dev.InjectInternal(probe, uint64(ingress), dev.Now(), true)
	if res.Dropped() {
		stage := res.Trace.DropStage
		if stage == "" {
			stage = "parser"
		}
		note("internal injection dropped at stage %q (parser path %v)",
			stage, res.Trace.ParserPath)
		for _, te := range res.Trace.Tables {
			note("table %s: hit=%v action=%s", te.Table, te.Hit, te.Action)
		}
		diag.Stage = stage
		return diag
	}
	note("internal injection forwarded to port %d: data plane is healthy",
		res.Outputs[0].Port)

	// Step 2: the data plane works. Send the same probe externally and
	// watch the internal taps to see how far it gets.
	dpInSeen := false
	macOutSeen := false
	unTapIn := tapOnce(dev, device.TapDataplaneIn, &dpInSeen)
	unTapOut := tapOnce(dev, device.TapMACOut, &macOutSeen)
	defer unTapIn()
	defer unTapOut()

	dev.SendExternal(ingress, probe, dev.Now()+time.Microsecond)
	egressed := len(dev.Captures(expectPort))
	dev.ReleaseCaptures(expectPort)

	switch {
	case !dpInSeen:
		note("external frame on port %d never reached the data plane: interface fault", ingress)
		diag.Stage = fmt.Sprintf("mac-in port %d", ingress)
	case !macOutSeen && egressed == 0:
		note("data plane emitted the frame but port %d never transmitted it", expectPort)
		diag.Stage = fmt.Sprintf("egress port %d", expectPort)
	default:
		note("external path delivered the frame end to end")
		diag.Stage = "none"
	}
	return diag
}

// tapOnce registers a tap that records whether any event fired. Device
// taps cannot be unregistered (as in hardware); the returned cancel simply
// stops recording.
func tapOnce(dev *device.Device, p device.TapPoint, flag *bool) func() {
	active := true
	dev.Tap(p, func(device.TapEvent) {
		if active {
			*flag = true
		}
	})
	return func() { active = false }
}
