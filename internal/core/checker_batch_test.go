package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"netdebug/internal/dataplane"
	"netdebug/internal/target"
)

// checkerWorkload builds a synthetic scored stream: n packets across two
// streams, deterministic for the seed. With drops set, one packet in
// five is dropped (varying stage) — those fail the forward-expecting
// rules, exercising the failure paths; without, every packet forwards to
// port 1 and every rule passes, which keeps the sample-recording
// fmt.Sprintf churn out of the allocation and speedup measurements.
func checkerWorkload(n int, seed int64, drops bool) ([]TestPacket, []target.Result, []time.Duration) {
	rng := rand.New(rand.NewSource(seed))
	tps := make([]TestPacket, n)
	results := make([]target.Result, n)
	ats := make([]time.Duration, n)
	for i := range tps {
		stream := "s"
		if i%3 == 0 {
			stream = "t"
		}
		tps[i] = TestPacket{Stream: stream, Seq: uint64(i), Data: []byte{0xaa, 0xbb}}
		ats[i] = time.Duration(i) * 800 * time.Nanosecond
		if drops && rng.Intn(5) == 0 {
			results[i] = target.Result{Trace: dataplane.Trace{DropStage: "parser"}}
			continue
		}
		results[i] = target.Result{
			Outputs: []target.Output{{Port: 1, Data: []byte{1, 2, 3, 4}}},
			Latency: time.Duration(100 + rng.Intn(900)),
		}
	}
	return tps, results, ats
}

// checkerSpecForWorkload pairs stream-specific rules with a match-all
// rule: the combination forces the per-frame path to build a fresh
// combined rule list per packet, the allocation the batched path's rule
// cache amortizes away.
func checkerSpecForWorkload() CheckSpec {
	return CheckSpec{Rules: []Rule{
		{Name: "s-port", Stream: "s", ExpectPort: 1},
		{Name: "t-port", Stream: "t", ExpectPort: 1},
		{Name: "any-forward", Stream: "", ExpectPort: -1},
	}}
}

// TestCheckerBatchMatchesPerFrame is the batched checker's equality
// oracle: scoring a workload through OnResults in 512-frame blocks (plus
// a ragged tail) produces a report byte-identical to frame-at-a-time
// OnResult.
func TestCheckerBatchMatchesPerFrame(t *testing.T) {
	tps, results, ats := checkerWorkload(1800, 7, true)

	perFrame, err := NewChecker(checkerSpecForWorkload())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tps {
		perFrame.OnResult(tps[i], results[i], ats[i])
	}
	want := perFrame.Finish()

	batched, err := NewChecker(checkerSpecForWorkload())
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < len(tps); start += 512 {
		end := start + 512
		if end > len(tps) {
			end = len(tps)
		}
		batched.OnResults(tps[start:end], results[start:end], ats[start:end])
	}
	got := batched.Finish()

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batched report diverges from per-frame oracle:\n got %+v\nwant %+v", got, want)
	}
	if want.Injected != 1800 || want.Forwarded == 0 || want.Dropped == 0 {
		t.Fatalf("workload did not exercise both verdicts: %+v", want)
	}
}

// TestCheckerBatchAllocFree: warm OnResults blocks run without per-frame
// allocations (the rule cache and latency scratch absorb the per-frame
// churn of the frame-at-a-time path).
func TestCheckerBatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation floor not meaningful under the race detector")
	}
	tps, results, ats := checkerWorkload(512, 11, false)
	c, err := NewChecker(checkerSpecForWorkload())
	if err != nil {
		t.Fatal(err)
	}
	c.OnResults(tps, results, ats) // warm scratch + rule cache
	avg := testing.AllocsPerRun(20, func() {
		c.OnResults(tps, results, ats)
	})
	// The drop-stage map rehashes occasionally as counts grow; anything
	// scaling with the 512-frame block would show up as >= 512.
	if avg > 4 {
		t.Fatalf("warm OnResults allocates %.1f allocs per 512-frame block, want ~0", avg)
	}
}

// BenchmarkCheckerPerFrame scores the workload frame-at-a-time — the
// retired verify-side path, kept as the oracle and as the slow half of
// benchgate's batched-checker speedup gate.
func BenchmarkCheckerPerFrame(b *testing.B) {
	tps, results, ats := checkerWorkload(4096, 3, false)
	c, err := NewChecker(checkerSpecForWorkload())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range tps {
			c.OnResult(tps[j], results[j], ats[j])
		}
	}
}

// BenchmarkCheckerBatch scores the same workload through OnResults in
// 512-frame blocks; benchgate pins it and enforces the >= 2x speedup
// over BenchmarkCheckerPerFrame.
func BenchmarkCheckerBatch(b *testing.B) {
	tps, results, ats := checkerWorkload(4096, 3, false)
	c, err := NewChecker(checkerSpecForWorkload())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for start := 0; start < len(tps); start += 512 {
			c.OnResults(tps[start:start+512], results[start:start+512], ats[start:start+512])
		}
	}
}
