package core

import (
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/target"
)

// TestGeneratorFixIPv4 verifies that sweeping an IPv4 field with FixIPv4
// set regenerates a valid header checksum on every packet.
func TestGeneratorFixIPv4(t *testing.T) {
	prog := routerProgram(t)
	l, _ := LayoutFor(prog, "ethernet", "ipv4")
	dst := l.MustField("ipv4.dstAddr")
	gen, err := NewGenerator(GenSpec{Streams: []StreamSpec{{
		Name:     "sweep",
		Template: goodFrame(8),
		Count:    25,
		Sweeps:   []FieldSweep{{Loc: dst, Start: 0x0a000001, Step: 13}},
		FixIPv4:  true,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range gen.Packets(0) {
		if got := bitfield.OnesComplementSum(tp.Data[14 : 14+20]); got != 0xffff {
			t.Fatalf("pkt %d: header checksum invalid after sweep (sum %#x)", i, got)
		}
	}
}

// TestGeneratorFixIPv4SkipsNonIP ensures the checksum fixer leaves
// non-IPv4 templates untouched.
func TestGeneratorFixIPv4SkipsNonIP(t *testing.T) {
	arp := make([]byte, 60)
	arp[12], arp[13] = 0x08, 0x06 // EtherType ARP
	orig := append([]byte(nil), arp...)
	fixIPv4Checksum(arp)
	if string(arp) != string(orig) {
		t.Fatal("non-IPv4 frame was modified")
	}
	short := make([]byte, 10)
	fixIPv4Checksum(short) // must not panic
}

// TestCheckerP4CheckEntries exercises a table-driven P4 classifier: the
// checker program consults its own match-action table, loaded via
// P4CheckEntries.
func TestCheckerP4CheckEntries(t *testing.T) {
	const ck = `
	header ethernet_t { bit<48> d; bit<48> s; bit<16> t; }
	struct hs { ethernet_t eth; }
	parser P(packet_in pkt, out hs hdr) { state start { pkt.extract(hdr.eth); transition accept; } }
	control C(inout hs hdr, inout standard_metadata_t sm) {
	  action ok() { sm.egress_spec = 9w1; }
	  action bad() { mark_to_drop(); }
	  table allowed_src {
	    key = { hdr.eth.s: exact; }
	    actions = { ok; bad; }
	    default_action = bad();
	  }
	  apply { allowed_src.apply(); }
	}
	control D(packet_out pkt, in hs hdr) { apply { pkt.emit(hdr.eth); } }
	S(P(), C(), D()) main;`

	// The router rewrites the source MAC to the original destination
	// (macB), so outputs carry macB as source; allow exactly that.
	spec := &TestSpec{
		Name: "p4-entries",
		Gen: GenSpec{Streams: []StreamSpec{{
			Name: "probe", Template: goodFrame(26), Count: 5, RatePPS: 1e6,
		}}},
		Check: CheckSpec{
			Rules:   []Rule{{Name: "classified", Stream: "probe", ExpectPort: -1}},
			P4Check: ck,
			P4CheckEntries: []dataplane.Entry{{
				Table:  "allowed_src",
				Keys:   []dataplane.KeyValue{{Value: bitfield.FromBytes(macB[:])}},
				Action: "ok",
			}},
		},
	}
	ctl := Connect(newAgent(t, target.NewReference()))
	defer ctl.Close()
	rep, err := ctl.RunTest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("classifier with entry should pass: %+v", rep.Rules)
	}

	// Without the entry, the classifier's default action drops -> fail.
	spec.Check.P4CheckEntries = nil
	rep, err = ctl.RunTest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("classifier without entries should reject all outputs")
	}
}

// TestCheckerBadP4Program ensures classifier compile errors surface.
func TestCheckerBadP4Program(t *testing.T) {
	_, err := NewChecker(CheckSpec{P4Check: "definitely not p4 {"})
	if err == nil {
		t.Fatal("bad classifier source should fail")
	}
}
