package core

import (
	"fmt"
	"time"

	"netdebug/internal/control"
	"netdebug/internal/dataplane"
)

// Controller is the host-side software tool. It speaks to the in-device
// agent over the dedicated control interface: installing entries,
// configuring test packet generation, and collecting test results.
type Controller struct {
	cli *control.Client
}

// NewController wraps an established control channel.
func NewController(cli *control.Client) *Controller {
	return &Controller{cli: cli}
}

// Connect attaches a controller to an in-process agent.
func Connect(agent *Agent) *Controller {
	return NewController(control.Pipe(agent))
}

// Close shuts the channel down.
func (c *Controller) Close() error { return c.cli.Close() }

// SetCallTimeout bounds every control-channel call; see
// control.Client.SetCallTimeout.
func (c *Controller) SetCallTimeout(d time.Duration) { c.cli.SetCallTimeout(d) }

// SetRetryPolicy enables bounded retry of transient agent errors; see
// control.Client.SetRetryPolicy.
func (c *Controller) SetRetryPolicy(p control.RetryPolicy) { c.cli.SetRetryPolicy(p) }

// Hello fetches device identity.
func (c *Controller) Hello() (*control.HelloInfo, error) { return c.cli.Hello() }

// InstallEntry installs one table entry on the device.
func (c *Controller) InstallEntry(e dataplane.Entry) error { return c.cli.InstallEntry(e) }

// InstallEntries installs entries, stopping at the first error.
func (c *Controller) InstallEntries(entries []dataplane.Entry) error {
	for i, e := range entries {
		if err := c.InstallEntry(e); err != nil {
			return fmt.Errorf("entry %d (%s): %w", i, e.Table, err)
		}
	}
	return nil
}

// DeleteEntry removes one table entry from the device by match identity.
func (c *Controller) DeleteEntry(e dataplane.Entry) error { return c.cli.DeleteEntry(e) }

// ClearTable empties a device table.
func (c *Controller) ClearTable(name string) error { return c.cli.ClearTable(name) }

// Status reads the device's internal status registers — the status
// monitoring use case.
func (c *Controller) Status() (map[string]uint64, error) { return c.cli.ReadStatus() }

// Resources reads the target's hardware resource report — the resources
// quantification use case.
func (c *Controller) Resources() (*control.ResourcesMsg, error) { return c.cli.ReadResources() }

// InjectFault injects a hardware fault into the device (harness support
// for fault-injection experiments).
func (c *Controller) InjectFault(kind, port int, seed int64) error {
	return c.cli.InjectFault(kind, port, seed)
}

// ClearFaults restores healthy hardware.
func (c *Controller) ClearFaults() error { return c.cli.ClearFaults() }

// RunTest ships the spec to the device, runs it, and collects the report.
func (c *Controller) RunTest(spec *TestSpec) (*Report, error) {
	b, err := EncodeTestSpec(spec)
	if err != nil {
		return nil, err
	}
	if err := c.cli.ConfigureGen(b); err != nil {
		return nil, fmt.Errorf("configuring test %q: %w", spec.Name, err)
	}
	if err := c.cli.RunTest(); err != nil {
		return nil, fmt.Errorf("running test %q: %w", spec.Name, err)
	}
	rb, err := c.cli.FetchReport()
	if err != nil {
		return nil, fmt.Errorf("fetching report for %q: %w", spec.Name, err)
	}
	return DecodeReport(rb)
}
