package core

import (
	"fmt"
	"math/rand"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/packet"
)

// FieldSweep varies a field deterministically across a stream's packets:
// packet i gets Start + i*Step (mod 2^width).
type FieldSweep struct {
	Loc   FieldLoc
	Start uint64
	Step  uint64
}

// FieldFuzz randomizes a field from a seeded source, so fuzz runs are
// reproducible.
type FieldFuzz struct {
	Loc  FieldLoc
	Seed int64
	// Boundaries biases one draw in four to a boundary value of the
	// field's width (0, 1, max, max-1) instead of uniform random bits —
	// the greybox heuristic that crosses exact-match and off-by-one
	// branch conditions far sooner than uniform sampling over wide
	// fields.
	Boundaries bool
}

// StreamSpec describes one generated packet stream.
type StreamSpec struct {
	// Name labels the stream; the checker's rules reference it.
	Name string
	// Template is the base packet. Sweeps, fuzzers, and the sequence tag
	// are applied on top of a copy of it.
	Template []byte
	// Count is the number of packets to generate.
	Count int
	// IngressPort is the data-plane ingress port metadata for injected
	// packets.
	IngressPort uint64
	// RatePPS paces the stream in virtual time. Zero means line-rate
	// back-to-back at 10 Gbps.
	RatePPS float64
	// Sweeps and Fuzz mutate template fields per packet.
	Sweeps []FieldSweep
	Fuzz   []FieldFuzz
	// SeqLoc, when valid, receives the per-stream sequence number so the
	// checker can match outputs to injected packets and detect loss.
	SeqLoc FieldLoc
	// FixIPv4 recomputes the IPv4 header checksum (assumed at the standard
	// 14-byte Ethernet offset) after field edits.
	FixIPv4 bool
}

// GenSpec is a full generator program: a set of streams merged on the
// virtual timeline.
type GenSpec struct {
	Streams []StreamSpec
}

// TestPacket is one generated packet with its injection schedule.
type TestPacket struct {
	Data        []byte
	At          time.Duration
	Seq         uint64
	Stream      string
	IngressPort uint64
	// ExpectSeq reports whether the packet carries a sequence tag.
	ExpectSeq bool
}

// Generator produces the timed packet sequence described by a GenSpec.
// Packet data and the returned packet slice live in arenas owned by the
// generator and are reused by the next Packets call, so steady-state
// generation allocates nothing per packet.
type Generator struct {
	spec GenSpec

	// arenas reused across Packets calls.
	arena   FrameArena   // packet bytes, carved per packet
	gen     []TestPacket // per-stream generation order
	out     []TestPacket // time-merged output order
	fuzzers []*rand.Rand // one per (stream, fuzz field), reseeded per call
	heads   []int        // per-stream merge cursors
}

// UseArena binds the generator's frame storage to a maxBytes extent
// reserved off the shared arena: generations that fit the extent stamp
// their packets into the fleet-shared slab, larger ones fall back to the
// generator's private arena. The extent stays bound until the arena's
// next Reset, so one reservation serves every later Packets call.
func (g *Generator) UseArena(sa *SharedArena, maxBytes int) {
	if sa == nil {
		g.arena.bindExtent(nil)
		return
	}
	g.arena.bindExtent(sa.ReserveBytes(maxBytes))
}

// NewGenerator validates the spec and returns a generator.
func NewGenerator(spec GenSpec) (*Generator, error) {
	if len(spec.Streams) == 0 {
		return nil, fmt.Errorf("core: generator spec has no streams")
	}
	seen := map[string]bool{}
	for i, s := range spec.Streams {
		if s.Name == "" {
			return nil, fmt.Errorf("core: stream %d has no name", i)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("core: duplicate stream %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.Template) == 0 {
			return nil, fmt.Errorf("core: stream %q has an empty template", s.Name)
		}
		if s.Count <= 0 {
			return nil, fmt.Errorf("core: stream %q has count %d", s.Name, s.Count)
		}
		limit := len(s.Template) * 8
		for _, sw := range s.Sweeps {
			if sw.Loc.BitOff+sw.Loc.Bits > limit {
				return nil, fmt.Errorf("core: stream %q sweep outside template", s.Name)
			}
		}
		for _, fz := range s.Fuzz {
			if fz.Loc.BitOff+fz.Loc.Bits > limit {
				return nil, fmt.Errorf("core: stream %q fuzz outside template", s.Name)
			}
		}
		if s.SeqLoc.Valid() && s.SeqLoc.BitOff+s.SeqLoc.Bits > limit {
			return nil, fmt.Errorf("core: stream %q sequence tag outside template", s.Name)
		}
	}
	// Sequence tags are global across streams; every tagged stream must be
	// able to hold the largest tag.
	total := 0
	for _, s := range spec.Streams {
		total += s.Count
	}
	for _, s := range spec.Streams {
		if s.SeqLoc.Valid() && s.SeqLoc.Bits < 63 && total > 1<<uint(s.SeqLoc.Bits) {
			return nil, fmt.Errorf("core: stream %q: %d-bit sequence tag cannot number %d packets",
				s.Name, s.SeqLoc.Bits, total)
		}
	}
	return &Generator{spec: spec}, nil
}

// lineRatePPS is the back-to-back packet rate for an n-byte frame at
// 10 Gbps including preamble+IFG.
func lineRatePPS(n int) float64 {
	return 10e9 / (float64(n+20) * 8)
}

// Packets materializes every stream, merged and sorted by injection time.
// Packet generation is fully deterministic for a given spec. Sequence tags
// (Seq) are unique across all streams so the checker can attribute any
// output packet to its injected original.
//
// The returned slice and the packet Data buffers are owned by the
// generator's arena: they are valid until the next Packets call.
func (g *Generator) Packets(start time.Duration) []TestPacket {
	total, bytes, nFuzz := 0, 0, 0
	for _, s := range g.spec.Streams {
		total += s.Count
		bytes += s.Count * len(s.Template)
		nFuzz += len(s.Fuzz)
	}
	g.arena.Reset(bytes, total)
	if cap(g.gen) < total {
		g.gen = make([]TestPacket, total)
		g.out = make([]TestPacket, total)
	}
	for len(g.fuzzers) < nFuzz {
		g.fuzzers = append(g.fuzzers, rand.New(rand.NewSource(0)))
	}
	gen := g.gen[:0]
	fzIdx := 0

	gid := uint64(0)
	for _, s := range g.spec.Streams {
		rate := s.RatePPS
		if rate <= 0 {
			rate = lineRatePPS(len(s.Template))
		}
		interval := time.Duration(1e9 / rate)
		fuzzers := g.fuzzers[fzIdx : fzIdx+len(s.Fuzz)]
		fzIdx += len(s.Fuzz)
		for i, fz := range s.Fuzz {
			fuzzers[i].Seed(fz.Seed)
		}
		for i := 0; i < s.Count; i++ {
			data := g.arena.Frame(len(s.Template))
			copy(data, s.Template)
			for _, sw := range s.Sweeps {
				v := sw.Start + uint64(i)*sw.Step
				bitfield.MustInject(data, sw.Loc.BitOff, sw.Loc.Bits, bitfield.New(v, sw.Loc.Bits))
			}
			for fi, fz := range s.Fuzz {
				v := fuzzers[fi].Uint64()
				if fz.Boundaries && v&3 == 0 {
					max := ^uint64(0)
					if fz.Loc.Bits < 64 {
						max = 1<<uint(fz.Loc.Bits) - 1
					}
					switch (v >> 2) & 3 {
					case 0:
						v = 0
					case 1:
						v = max
					case 2:
						v = 1
					case 3:
						v = max - 1
					}
				}
				bitfield.MustInject(data, fz.Loc.BitOff, fz.Loc.Bits, bitfield.New(v, fz.Loc.Bits))
			}
			tp := TestPacket{
				At:          start + time.Duration(i)*interval,
				Stream:      s.Name,
				IngressPort: s.IngressPort,
				Seq:         gid,
			}
			gid++
			if s.SeqLoc.Valid() {
				bitfield.MustInject(data, s.SeqLoc.BitOff, s.SeqLoc.Bits, bitfield.New(tp.Seq, s.SeqLoc.Bits))
				tp.ExpectSeq = true
			}
			if s.FixIPv4 {
				fixIPv4Checksum(data)
			}
			tp.Data = data
			gen = append(gen, tp)
		}
	}
	g.gen = gen
	return g.mergeByTime(gen, total)
}

// mergeByTime k-way merges the per-stream runs of gen (each run is
// non-decreasing in At) into g.out. Ties keep stream order, matching the
// stable sort this replaces, without the sort's per-call allocations.
func (g *Generator) mergeByTime(gen []TestPacket, total int) []TestPacket {
	nStreams := len(g.spec.Streams)
	if nStreams == 1 {
		return gen
	}
	if cap(g.heads) < 2*nStreams {
		g.heads = make([]int, 2*nStreams)
	}
	heads := g.heads[:nStreams]
	ends := g.heads[nStreams : 2*nStreams]
	pos := 0
	for i, s := range g.spec.Streams {
		heads[i] = pos
		pos += s.Count
		ends[i] = pos
	}
	out := g.out[:0]
	for len(out) < total {
		best := -1
		for i := 0; i < nStreams; i++ {
			if heads[i] >= ends[i] {
				continue
			}
			if best < 0 || gen[heads[i]].At < gen[heads[best]].At {
				best = i
			}
		}
		out = append(out, gen[heads[best]])
		heads[best]++
	}
	g.out = out
	return out
}

// fixIPv4Checksum recomputes the IPv4 header checksum of an Ethernet/IPv4
// frame in place. Frames without an IPv4 header are left untouched.
func fixIPv4Checksum(frame []byte) {
	if len(frame) < 14+20 {
		return
	}
	var eth packet.Ethernet
	if eth.DecodeFromBytes(frame) != nil || eth.EtherType != packet.EtherTypeIPv4 {
		return
	}
	ihl := int(frame[14] & 0x0f)
	hlen := ihl * 4
	if ihl < 5 || len(frame) < 14+hlen {
		return
	}
	frame[14+10], frame[14+11] = 0, 0
	ck := bitfield.Checksum(frame[14 : 14+hlen])
	frame[14+10] = byte(ck >> 8)
	frame[14+11] = byte(ck)
}
