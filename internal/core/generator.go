package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/packet"
)

// FieldSweep varies a field deterministically across a stream's packets:
// packet i gets Start + i*Step (mod 2^width).
type FieldSweep struct {
	Loc   FieldLoc
	Start uint64
	Step  uint64
}

// FieldFuzz randomizes a field from a seeded source, so fuzz runs are
// reproducible.
type FieldFuzz struct {
	Loc  FieldLoc
	Seed int64
}

// StreamSpec describes one generated packet stream.
type StreamSpec struct {
	// Name labels the stream; the checker's rules reference it.
	Name string
	// Template is the base packet. Sweeps, fuzzers, and the sequence tag
	// are applied on top of a copy of it.
	Template []byte
	// Count is the number of packets to generate.
	Count int
	// IngressPort is the data-plane ingress port metadata for injected
	// packets.
	IngressPort uint64
	// RatePPS paces the stream in virtual time. Zero means line-rate
	// back-to-back at 10 Gbps.
	RatePPS float64
	// Sweeps and Fuzz mutate template fields per packet.
	Sweeps []FieldSweep
	Fuzz   []FieldFuzz
	// SeqLoc, when valid, receives the per-stream sequence number so the
	// checker can match outputs to injected packets and detect loss.
	SeqLoc FieldLoc
	// FixIPv4 recomputes the IPv4 header checksum (assumed at the standard
	// 14-byte Ethernet offset) after field edits.
	FixIPv4 bool
}

// GenSpec is a full generator program: a set of streams merged on the
// virtual timeline.
type GenSpec struct {
	Streams []StreamSpec
}

// TestPacket is one generated packet with its injection schedule.
type TestPacket struct {
	Data        []byte
	At          time.Duration
	Seq         uint64
	Stream      string
	IngressPort uint64
	// ExpectSeq reports whether the packet carries a sequence tag.
	ExpectSeq bool
}

// Generator produces the timed packet sequence described by a GenSpec.
type Generator struct {
	spec GenSpec
}

// NewGenerator validates the spec and returns a generator.
func NewGenerator(spec GenSpec) (*Generator, error) {
	if len(spec.Streams) == 0 {
		return nil, fmt.Errorf("core: generator spec has no streams")
	}
	seen := map[string]bool{}
	for i, s := range spec.Streams {
		if s.Name == "" {
			return nil, fmt.Errorf("core: stream %d has no name", i)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("core: duplicate stream %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.Template) == 0 {
			return nil, fmt.Errorf("core: stream %q has an empty template", s.Name)
		}
		if s.Count <= 0 {
			return nil, fmt.Errorf("core: stream %q has count %d", s.Name, s.Count)
		}
		limit := len(s.Template) * 8
		for _, sw := range s.Sweeps {
			if sw.Loc.BitOff+sw.Loc.Bits > limit {
				return nil, fmt.Errorf("core: stream %q sweep outside template", s.Name)
			}
		}
		for _, fz := range s.Fuzz {
			if fz.Loc.BitOff+fz.Loc.Bits > limit {
				return nil, fmt.Errorf("core: stream %q fuzz outside template", s.Name)
			}
		}
		if s.SeqLoc.Valid() && s.SeqLoc.BitOff+s.SeqLoc.Bits > limit {
			return nil, fmt.Errorf("core: stream %q sequence tag outside template", s.Name)
		}
	}
	// Sequence tags are global across streams; every tagged stream must be
	// able to hold the largest tag.
	total := 0
	for _, s := range spec.Streams {
		total += s.Count
	}
	for _, s := range spec.Streams {
		if s.SeqLoc.Valid() && s.SeqLoc.Bits < 63 && total > 1<<uint(s.SeqLoc.Bits) {
			return nil, fmt.Errorf("core: stream %q: %d-bit sequence tag cannot number %d packets",
				s.Name, s.SeqLoc.Bits, total)
		}
	}
	return &Generator{spec: spec}, nil
}

// lineRatePPS is the back-to-back packet rate for an n-byte frame at
// 10 Gbps including preamble+IFG.
func lineRatePPS(n int) float64 {
	return 10e9 / (float64(n+20) * 8)
}

// Packets materializes every stream, merged and sorted by injection time.
// Packet generation is fully deterministic for a given spec. Sequence tags
// (Seq) are unique across all streams so the checker can attribute any
// output packet to its injected original.
func (g *Generator) Packets(start time.Duration) []TestPacket {
	var out []TestPacket
	gid := uint64(0)
	for _, s := range g.spec.Streams {
		rate := s.RatePPS
		if rate <= 0 {
			rate = lineRatePPS(len(s.Template))
		}
		interval := time.Duration(1e9 / rate)
		fuzzers := make([]*rand.Rand, len(s.Fuzz))
		for i, fz := range s.Fuzz {
			fuzzers[i] = rand.New(rand.NewSource(fz.Seed))
		}
		for i := 0; i < s.Count; i++ {
			data := append([]byte(nil), s.Template...)
			for _, sw := range s.Sweeps {
				v := sw.Start + uint64(i)*sw.Step
				bitfield.MustInject(data, sw.Loc.BitOff, sw.Loc.Bits, bitfield.New(v, sw.Loc.Bits))
			}
			for fi, fz := range s.Fuzz {
				v := fuzzers[fi].Uint64()
				bitfield.MustInject(data, fz.Loc.BitOff, fz.Loc.Bits, bitfield.New(v, fz.Loc.Bits))
			}
			tp := TestPacket{
				At:          start + time.Duration(i)*interval,
				Stream:      s.Name,
				IngressPort: s.IngressPort,
				Seq:         gid,
			}
			gid++
			if s.SeqLoc.Valid() {
				bitfield.MustInject(data, s.SeqLoc.BitOff, s.SeqLoc.Bits, bitfield.New(tp.Seq, s.SeqLoc.Bits))
				tp.ExpectSeq = true
			}
			if s.FixIPv4 {
				fixIPv4Checksum(data)
			}
			tp.Data = data
			out = append(out, tp)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// fixIPv4Checksum recomputes the IPv4 header checksum of an Ethernet/IPv4
// frame in place. Frames without an IPv4 header are left untouched.
func fixIPv4Checksum(frame []byte) {
	if len(frame) < 14+20 {
		return
	}
	var eth packet.Ethernet
	if eth.DecodeFromBytes(frame) != nil || eth.EtherType != packet.EtherTypeIPv4 {
		return
	}
	ihl := int(frame[14] & 0x0f)
	hlen := ihl * 4
	if ihl < 5 || len(frame) < 14+hlen {
		return
	}
	frame[14+10], frame[14+11] = 0, 0
	ck := bitfield.Checksum(frame[14 : 14+hlen])
	frame[14+10] = byte(ck >> 8)
	frame[14+11] = byte(ck)
}
