package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"netdebug/internal/control"
	"netdebug/internal/device"
	"netdebug/internal/target"
)

// TestSpec bundles the generator and checker programs for one test run —
// the unit of configuration the host tool ships to the device.
type TestSpec struct {
	Name  string
	Gen   GenSpec
	Check CheckSpec
}

// EncodeTestSpec serializes a spec for the control channel.
func EncodeTestSpec(spec *TestSpec) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(spec); err != nil {
		return nil, fmt.Errorf("core: encoding test spec: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeTestSpec reverses EncodeTestSpec.
func DecodeTestSpec(b []byte) (*TestSpec, error) {
	var spec TestSpec
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&spec); err != nil {
		return nil, fmt.Errorf("core: decoding test spec: %w", err)
	}
	return &spec, nil
}

// EncodeReport serializes a report for the control channel.
func EncodeReport(r *Report) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("core: encoding report: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeReport reverses EncodeReport.
func DecodeReport(b []byte) (*Report, error) {
	var r Report
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r); err != nil {
		return nil, fmt.Errorf("core: decoding report: %w", err)
	}
	return &r, nil
}

// Agent is the device-resident half of NetDebug: it owns the test packet
// generator and output checker hardware modules and serves the host tool's
// control channel.
type Agent struct {
	dev *device.Device

	mu     sync.Mutex
	spec   *TestSpec
	report *Report

	// gen is the spec's generator, built on first Run and reused until
	// the next Configure: repeated runs of one spec keep the generator's
	// arena (and merge scratch) warm instead of reallocating per run.
	// Generation is deterministic, so a cached generator produces the
	// same packets as a fresh one.
	gen *Generator
	// ext is the shared-arena extent bound to the cached generator's
	// frames; see UseArena.
	ext []byte

	// batch staging reused across runs: frames/ats carve each
	// same-ingress-port run of the generated stream into one
	// InjectInternalBatch call.
	batchFrames [][]byte
	batchAts    []time.Duration
}

// NewAgent attaches NetDebug to a device.
func NewAgent(dev *device.Device) *Agent {
	return &Agent{dev: dev}
}

// Device returns the underlying device (for in-process harnesses).
func (a *Agent) Device() *device.Device { return a.dev }

// Configure installs a test specification.
func (a *Agent) Configure(spec *TestSpec) error {
	if _, err := NewGenerator(spec.Gen); err != nil {
		return err
	}
	if _, err := NewChecker(spec.Check); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spec = spec
	a.report = nil
	a.gen = nil
	return nil
}

// UseArena reserves a maxBytes extent off the fleet-shared arena for
// this agent's generated frames: every spec whose generation fits the
// extent stamps its packets into the shared slab, larger specs fall back
// to the agent's private arena. Call once, before the first Run; a pool
// manager sizes one SharedArena for all of its hosts and reserves one
// extent per agent.
func (a *Agent) UseArena(sa *SharedArena, maxBytes int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if sa == nil {
		a.ext = nil
	} else {
		a.ext = sa.ReserveBytes(maxBytes)
	}
	a.gen = nil
}

// maxInjectBatch bounds one InjectInternalBatch run so the target's
// batch scratch (one context per slot) stays modest on huge streams.
const maxInjectBatch = 512

// Run executes the configured test: the generator materializes every
// test packet into its arena, consecutive same-ingress-port packets are
// injected as one batch through the target's batched data-plane path
// (Engine.ProcessBatch under the hood), and the checker validates every
// result in real time. The report is retained for collection.
func (a *Agent) Run() (*Report, error) {
	a.mu.Lock()
	spec := a.spec
	gen := a.gen
	ext := a.ext
	a.mu.Unlock()
	if spec == nil {
		return nil, fmt.Errorf("core: no test configured")
	}
	if gen == nil {
		var err error
		gen, err = NewGenerator(spec.Gen)
		if err != nil {
			return nil, err
		}
		gen.arena.bindExtent(ext)
		a.mu.Lock()
		a.gen = gen
		a.mu.Unlock()
	}
	checker, err := NewChecker(spec.Check)
	if err != nil {
		return nil, err
	}
	pkts := gen.Packets(a.dev.Now())
	for start := 0; start < len(pkts); {
		port := pkts[start].IngressPort
		end := start + 1
		for end < len(pkts) && end-start < maxInjectBatch && pkts[end].IngressPort == port {
			end++
		}
		frames := a.batchFrames[:0]
		ats := a.batchAts[:0]
		for _, tp := range pkts[start:end] {
			frames = append(frames, tp.Data)
			ats = append(ats, tp.At)
		}
		a.batchFrames, a.batchAts = frames, ats
		results := a.dev.InjectInternalBatch(frames, port, ats, true)
		checker.OnResults(pkts[start:end], results, ats)
		start = end
	}
	// Drop the frame pointers — over the full capacity, not just the
	// final batch's length — so the agent does not pin this run's
	// generator slab until the next Run.
	clear(a.batchFrames[:cap(a.batchFrames)])
	a.batchFrames = a.batchFrames[:0]
	report := checker.Finish()
	a.mu.Lock()
	a.report = report
	a.mu.Unlock()
	return report, nil
}

// LastReport returns the most recent report, or nil.
func (a *Agent) LastReport() *Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.report
}

// Handle implements control.Handler, serving the host tool. Errors that
// mark themselves transient (control.IsTransient) come back with the
// Retryable flag so the host's retry policy can re-issue the request.
func (a *Agent) Handle(req *control.Request) *control.Response {
	fail := func(err error) *control.Response {
		return &control.Response{Err: err.Error(), Retryable: control.IsTransient(err)}
	}
	switch req.Kind {
	case control.ReqHello:
		prog := a.dev.Target().Program()
		name := ""
		if prog != nil {
			name = prog.Name
		}
		return &control.Response{Hello: &control.HelloInfo{
			TargetName:  a.dev.Target().Name(),
			ProgramName: name,
			NumPorts:    a.dev.Config().NumPorts,
		}}
	case control.ReqInstallEntry:
		if req.Entry == nil {
			return fail(fmt.Errorf("install-entry without entry"))
		}
		if err := a.dev.Target().InstallEntry(*req.Entry); err != nil {
			return fail(err)
		}
		return &control.Response{}
	case control.ReqDeleteEntry:
		if req.Entry == nil {
			return fail(fmt.Errorf("delete-entry without entry"))
		}
		if err := a.dev.Target().DeleteEntry(*req.Entry); err != nil {
			return fail(err)
		}
		return &control.Response{}
	case control.ReqClearTable:
		if err := a.dev.Target().ClearTable(req.Table); err != nil {
			return fail(err)
		}
		return &control.Response{}
	case control.ReqReadStatus:
		return &control.Response{Status: a.dev.Status()}
	case control.ReqReadResources:
		r := a.dev.Target().Resources()
		return &control.Response{Resources: &control.ResourcesMsg{
			LUTs: r.LUTs, FFs: r.FFs, BRAMs: r.BRAMs,
			LUTPct: r.LUTPct, FFPct: r.FFPct, BRAMPct: r.BRAMPct,
			Stages: r.Stages, SRAMBlocks: r.SRAMBlocks,
			TCAMBlocks: r.TCAMBlocks, PHVBits: r.PHVBits,
			StagePct: r.StagePct, SRAMPct: r.SRAMPct,
			TCAMPct: r.TCAMPct, PHVPct: r.PHVPct,
			Insns: r.Insns, Maps: r.Maps, MapBytes: r.MapBytes,
			InsnPct: r.InsnPct, MemlockPct: r.MemlockPct,
			AccelTables: r.AccelTables, CoreTables: r.CoreTables,
			AccelEntries: r.AccelEntries, AccelBytes: r.AccelBytes,
			NICTCAMRows: r.NICTCAMRows, PuntQueueDepth: r.PuntQueueDepth,
			AccelPct: r.AccelPct, TablePunts: r.TablePunts,
		}}
	case control.ReqConfigureGen:
		spec, err := DecodeTestSpec(req.Spec)
		if err != nil {
			return fail(err)
		}
		if err := a.Configure(spec); err != nil {
			return fail(err)
		}
		return &control.Response{}
	case control.ReqRunTest:
		if _, err := a.Run(); err != nil {
			return fail(err)
		}
		return &control.Response{}
	case control.ReqFetchReport:
		rep := a.LastReport()
		if rep == nil {
			return fail(fmt.Errorf("no report available; run a test first"))
		}
		b, err := EncodeReport(rep)
		if err != nil {
			return fail(err)
		}
		return &control.Response{Report: b}
	case control.ReqInjectFault:
		if req.Fault == nil {
			return fail(fmt.Errorf("inject-fault without fault"))
		}
		err := a.dev.InjectFault(device.Fault{
			Kind: device.FaultKind(req.Fault.Kind),
			Port: req.Fault.Port,
			Seed: req.Fault.Seed,
		})
		if err != nil {
			return fail(err)
		}
		return &control.Response{}
	case control.ReqClearFaults:
		a.dev.ClearFaults()
		return &control.Response{}
	}
	return nil
}

// Result re-exports target.Result for package users.
type Result = target.Result
