// Package benchfmt defines the machine-readable benchmark schema shared
// by the emitter (cmd/benchjson) and the regression gate (cmd/benchgate):
// the BENCH_<PR>.json files that accumulate the repository's performance
// trajectory.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema is the document identifier.
const Schema = "netdebug-bench/v1"

// Record is one benchmark measurement.
type Record struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (sub-benchmark path preserved).
	Name       string  `json:"name"`
	Package    string  `json:"package"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp *int64  `json:"b_per_op,omitempty"`
	AllocsOp   *int64  `json:"allocs_per_op,omitempty"`
	MBPerSec   float64 `json:"mb_per_s,omitempty"`
}

// File is the JSON document layout.
type File struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Generated  string   `json:"generated"`
	Command    string   `json:"command"`
	Benchmarks []Record `json:"benchmarks"`
}

// Key identifies a record across files: the same benchmark name may
// legally appear in more than one package.
func (r Record) Key() string { return r.Package + "/" + r.Name }

// ByKey indexes the file's records by package-qualified key. Duplicate
// keys (from -count > 1) keep the first record.
func (f *File) ByKey() map[string]Record {
	out := make(map[string]Record, len(f.Benchmarks))
	for _, r := range f.Benchmarks {
		if _, ok := out[r.Key()]; !ok {
			out[r.Key()] = r
		}
	}
	return out
}

// FindByName resolves a bare benchmark name. It returns an error when
// the name is missing or appears in more than one package (callers must
// then use the package-qualified key).
func (f *File) FindByName(name string) (Record, error) {
	var found Record
	n := 0
	for _, r := range f.Benchmarks {
		if r.Name == name && (n == 0 || r.Package != found.Package) {
			found = r
			n++
		}
	}
	switch n {
	case 0:
		return Record{}, fmt.Errorf("benchfmt: no benchmark %q", name)
	case 1:
		return found, nil
	}
	return Record{}, fmt.Errorf("benchfmt: benchmark %q appears in %d packages; qualify it", name, n)
}

// Load reads and validates a benchmark file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("benchfmt: %s: schema %q, want %q", path, f.Schema, Schema)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: %s: no benchmark records", path)
	}
	return &f, nil
}

// Save writes the file as indented JSON ('-' writes to stdout).
func (f *File) Save(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
