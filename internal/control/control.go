// Package control implements the dedicated management channel between the
// NetDebug software tool on the host computer and the agent inside the
// network device.
//
// The paper's architecture gives the host tool a dedicated interface "to
// configure the generation of test packets and to collect test results";
// this package is that interface. The protocol is a synchronous
// request/response RPC carried over any net.Conn (the device model uses
// net.Pipe in-process; cmd/netdebug uses TCP), encoded with encoding/gob.
//
// Payloads that belong to higher layers (generator and checker
// specifications, test reports) travel as opaque byte slices so this
// package stays free of dependencies on the core engine.
package control

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"netdebug/internal/dataplane"
)

// ReqKind enumerates request types.
type ReqKind uint8

// Request kinds.
const (
	ReqHello ReqKind = iota + 1
	ReqInstallEntry
	ReqClearTable
	ReqReadStatus
	ReqConfigureGen
	ReqRunTest
	ReqFetchReport
	ReqInjectFault
	ReqClearFaults
	ReqReadResources
	ReqDeleteEntry
)

// String names the request kind.
func (k ReqKind) String() string {
	names := map[ReqKind]string{
		ReqHello: "hello", ReqInstallEntry: "install-entry",
		ReqClearTable: "clear-table", ReqReadStatus: "read-status",
		ReqConfigureGen: "configure-gen", ReqRunTest: "run-test",
		ReqFetchReport: "fetch-report", ReqInjectFault: "inject-fault",
		ReqClearFaults: "clear-faults", ReqReadResources: "read-resources",
		ReqDeleteEntry: "delete-entry",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("req(%d)", uint8(k))
}

// FaultMsg mirrors device.Fault without importing the device package.
type FaultMsg struct {
	Kind int
	Port int
	Seed int64
}

// Request is one host-to-device message.
type Request struct {
	ID    uint64
	Kind  ReqKind
	Entry *dataplane.Entry
	Table string
	Fault *FaultMsg
	// Spec carries a gob-encoded generator+checker test specification
	// (core.TestSpec) for ReqConfigureGen.
	Spec []byte
}

// ResourcesMsg mirrors target.ResourceReport.
type ResourcesMsg struct {
	LUTs, FFs, BRAMs       int
	LUTPct, FFPct, BRAMPct float64
	// ASIC-style fields, populated by fixed-pipeline targets (Tofino).
	Stages, SRAMBlocks, TCAMBlocks, PHVBits int
	StagePct, SRAMPct, TCAMPct, PHVPct      float64
	// Software-offload fields, populated by the eBPF target.
	Insns, Maps, MapBytes int
	InsnPct, MemlockPct   float64
	// SmartNIC/DPU fields: accelerator residency and punt economics.
	AccelTables, CoreTables, AccelEntries, AccelBytes int
	NICTCAMRows, PuntQueueDepth                       int
	AccelPct                                          float64
	TablePunts                                        map[string]uint64
}

// HelloInfo describes the device.
type HelloInfo struct {
	TargetName  string
	ProgramName string
	NumPorts    int
}

// Response is one device-to-host message.
type Response struct {
	ID  uint64
	Err string
	// Retryable marks an error response as transient: the operation
	// failed for a reason the agent expects to clear (a flapping install
	// path, a momentarily exhausted resource), so the host may re-issue
	// the identical request. The client's retry policy acts on this flag.
	Retryable bool
	Hello     *HelloInfo
	Status    map[string]uint64
	Report    []byte // gob-encoded core.Report for ReqFetchReport
	Resources *ResourcesMsg
}

// OK reports whether the response carries no error.
func (r *Response) OK() bool { return r.Err == "" }

// Error converts the response error string to an error value. Error
// responses come back as *RemoteError, preserving the Retryable flag.
func (r *Response) Error() error {
	if r.Err == "" {
		return nil
	}
	return &RemoteError{Msg: r.Err, Retryable: r.Retryable}
}

// RemoteError is an error reported by the device agent (as opposed to a
// transport failure). Retryable remote errors also implement the
// Transient marker recognised by IsTransient.
type RemoteError struct {
	Msg       string
	Retryable bool
}

// Error implements error.
func (e *RemoteError) Error() string { return "control: " + e.Msg }

// Transient reports whether the agent marked the failure retryable.
func (e *RemoteError) Transient() bool { return e.Retryable }

// IsTransient reports whether err (or anything it wraps) marks itself
// transient via a `Transient() bool` method — the seam the device agent
// uses to classify errors and the host uses to decide on retry.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// ErrChannelBroken marks a client whose gob stream was poisoned by an
// earlier transport failure (typically a call deadline expiring with
// bytes in flight). Every subsequent call fails fast with an error
// wrapping this sentinel; the only recovery is a fresh connection.
var ErrChannelBroken = errors.New("control: channel broken by earlier transport failure")

// TimeoutError reports a call that did not complete within the client's
// call timeout.
type TimeoutError struct {
	Kind  ReqKind
	After time.Duration
	Err   error
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("control: %s timed out after %v", e.Kind, e.After)
}

// Unwrap exposes the underlying transport error.
func (e *TimeoutError) Unwrap() error { return e.Err }

// Timeout implements the net.Error convention.
func (e *TimeoutError) Timeout() bool { return true }

// RetryPolicy bounds the client's automatic re-issue of requests the
// agent answered with a retryable error. The zero value disables retry.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call, including the
	// first; values below 1 mean one attempt (no retry).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each further retry
	// doubles it, capped at MaxBackoff (if positive).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Sleep, if non-nil, replaces time.Sleep between attempts (test seam).
	Sleep func(time.Duration)
}

func (p *RetryPolicy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Handler serves requests on the device side.
type Handler interface {
	Handle(req *Request) *Response
}

// Client is the host side of the channel. It is safe for concurrent use;
// requests are serialized.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	nextID  uint64
	timeout time.Duration
	retry   RetryPolicy
	broken  error
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// Close shuts the channel down.
func (c *Client) Close() error { return c.conn.Close() }

// SetCallTimeout bounds every subsequent call: a request whose response
// does not arrive within d fails with *TimeoutError. Because a timed-out
// call leaves the gob stream mid-message, it also breaks the client —
// later calls fail fast wrapping ErrChannelBroken. Zero disables the
// deadline (the default).
func (c *Client) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// SetRetryPolicy enables bounded automatic retry of calls the agent
// answers with a retryable (transient) error. Transport failures are
// never retried: the stream state after a failed encode or decode is
// unknown, so they break the client instead.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = p
}

// Call sends one request and waits for its response, re-issuing it under
// the retry policy while the agent reports the failure as transient.
func (c *Client) Call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := c.retry.BaseBackoff
	for attempt := 1; ; attempt++ {
		resp, err := c.callLocked(req)
		if err != nil {
			return nil, err
		}
		if resp.OK() || !resp.Retryable || attempt >= attempts {
			return resp, nil
		}
		c.retry.sleep(backoff)
		backoff *= 2
		if c.retry.MaxBackoff > 0 && backoff > c.retry.MaxBackoff {
			backoff = c.retry.MaxBackoff
		}
	}
}

// callLocked performs one request/response exchange. The caller holds
// c.mu.
func (c *Client) callLocked(req *Request) (*Response, error) {
	if c.broken != nil {
		return nil, fmt.Errorf("control: %s: %w (first failure: %v)", req.Kind, ErrChannelBroken, c.broken)
	}
	c.nextID++
	req.ID = c.nextID
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("control: set deadline: %w", err)
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, c.breakWith(req.Kind, "send", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, c.breakWith(req.Kind, "receive", err)
	}
	if resp.ID != req.ID {
		return nil, c.breakWith(req.Kind, "match", fmt.Errorf("response id %d for request %d", resp.ID, req.ID))
	}
	return &resp, nil
}

// breakWith marks the client broken — a transport failure leaves the gob
// stream in an unknown state, so no further call can trust it — and
// converts deadline expiries to *TimeoutError.
func (c *Client) breakWith(kind ReqKind, stage string, err error) error {
	var werr error
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		werr = &TimeoutError{Kind: kind, After: c.timeout, Err: err}
	} else {
		werr = fmt.Errorf("control: %s %s: %w", stage, kind, err)
	}
	c.broken = werr
	return werr
}

// Hello fetches device identity.
func (c *Client) Hello() (*HelloInfo, error) {
	resp, err := c.Call(&Request{Kind: ReqHello})
	if err != nil {
		return nil, err
	}
	if err := resp.Error(); err != nil {
		return nil, err
	}
	return resp.Hello, nil
}

// InstallEntry installs a table entry on the device.
func (c *Client) InstallEntry(e dataplane.Entry) error {
	resp, err := c.Call(&Request{Kind: ReqInstallEntry, Entry: &e})
	if err != nil {
		return err
	}
	return resp.Error()
}

// DeleteEntry removes a table entry from the device by match identity.
func (c *Client) DeleteEntry(e dataplane.Entry) error {
	resp, err := c.Call(&Request{Kind: ReqDeleteEntry, Entry: &e})
	if err != nil {
		return err
	}
	return resp.Error()
}

// ClearTable empties a table.
func (c *Client) ClearTable(name string) error {
	resp, err := c.Call(&Request{Kind: ReqClearTable, Table: name})
	if err != nil {
		return err
	}
	return resp.Error()
}

// ReadStatus fetches the device's internal status registers.
func (c *Client) ReadStatus() (map[string]uint64, error) {
	resp, err := c.Call(&Request{Kind: ReqReadStatus})
	if err != nil {
		return nil, err
	}
	if err := resp.Error(); err != nil {
		return nil, err
	}
	return resp.Status, nil
}

// ReadResources fetches the target's resource report.
func (c *Client) ReadResources() (*ResourcesMsg, error) {
	resp, err := c.Call(&Request{Kind: ReqReadResources})
	if err != nil {
		return nil, err
	}
	if err := resp.Error(); err != nil {
		return nil, err
	}
	return resp.Resources, nil
}

// ConfigureGen ships a test specification to the device.
func (c *Client) ConfigureGen(spec []byte) error {
	resp, err := c.Call(&Request{Kind: ReqConfigureGen, Spec: spec})
	if err != nil {
		return err
	}
	return resp.Error()
}

// RunTest starts the configured test and waits for completion.
func (c *Client) RunTest() error {
	resp, err := c.Call(&Request{Kind: ReqRunTest})
	if err != nil {
		return err
	}
	return resp.Error()
}

// FetchReport collects the checker's results.
func (c *Client) FetchReport() ([]byte, error) {
	resp, err := c.Call(&Request{Kind: ReqFetchReport})
	if err != nil {
		return nil, err
	}
	if err := resp.Error(); err != nil {
		return nil, err
	}
	return resp.Report, nil
}

// InjectFault injects a hardware fault (test harness capability).
func (c *Client) InjectFault(kind, port int, seed int64) error {
	resp, err := c.Call(&Request{Kind: ReqInjectFault, Fault: &FaultMsg{Kind: kind, Port: port, Seed: seed}})
	if err != nil {
		return err
	}
	return resp.Error()
}

// ClearFaults restores healthy hardware.
func (c *Client) ClearFaults() error {
	resp, err := c.Call(&Request{Kind: ReqClearFaults})
	if err != nil {
		return err
	}
	return resp.Error()
}

// Serve answers requests on conn with h until the connection closes. It
// returns the first decode error (net.ErrClosed / io.EOF on clean
// shutdown).
func Serve(conn net.Conn, h Handler) error {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return err
		}
		resp := h.Handle(&req)
		if resp == nil {
			resp = &Response{Err: fmt.Sprintf("unhandled request %s", req.Kind)}
		}
		resp.ID = req.ID
		if err := enc.Encode(resp); err != nil {
			return err
		}
	}
}

// Pipe returns a connected client/server pair over an in-process pipe and
// starts serving h on the device side. Closing the client stops the
// server.
func Pipe(h Handler) *Client {
	cliConn, srvConn := net.Pipe()
	go Serve(srvConn, h) //nolint: error is io.EOF on client close
	return NewClient(cliConn)
}

// ListenTCP serves h on a TCP listener, one connection at a time,
// until the listener is closed.
func ListenTCP(ln net.Listener, h Handler) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			Serve(conn, h) //nolint: client hangup is the normal exit
		}()
	}
}

// DialTCP connects a client to a device agent over TCP.
func DialTCP(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("control: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}
