package control

import (
	"net"
	"sync"
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
)

// fakeHandler records requests and answers canned responses.
type fakeHandler struct {
	mu       sync.Mutex
	installs []dataplane.Entry
	faults   []FaultMsg
	spec     []byte
	ran      int
}

func (f *fakeHandler) Handle(req *Request) *Response {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch req.Kind {
	case ReqHello:
		return &Response{Hello: &HelloInfo{TargetName: "sdnet", ProgramName: "router", NumPorts: 4}}
	case ReqInstallEntry:
		f.installs = append(f.installs, *req.Entry)
		return &Response{}
	case ReqClearTable:
		if req.Table == "ghost" {
			return &Response{Err: "no table ghost"}
		}
		return &Response{}
	case ReqReadStatus:
		return &Response{Status: map[string]uint64{"parser.accept": 42}}
	case ReqReadResources:
		return &Response{Resources: &ResourcesMsg{LUTs: 100, LUTPct: 1.5}}
	case ReqConfigureGen:
		f.spec = append([]byte(nil), req.Spec...)
		return &Response{}
	case ReqRunTest:
		f.ran++
		return &Response{}
	case ReqFetchReport:
		return &Response{Report: []byte("report-blob")}
	case ReqInjectFault:
		f.faults = append(f.faults, *req.Fault)
		return &Response{}
	case ReqClearFaults:
		return &Response{}
	}
	return nil
}

func TestPipeRoundTrip(t *testing.T) {
	h := &fakeHandler{}
	cli := Pipe(h)
	defer cli.Close()

	hello, err := cli.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if hello.TargetName != "sdnet" || hello.NumPorts != 4 {
		t.Fatalf("hello = %+v", hello)
	}

	entry := dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.New(3, 9)},
	}
	if err := cli.InstallEntry(entry); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	if len(h.installs) != 1 {
		t.Fatalf("installs = %d", len(h.installs))
	}
	got := h.installs[0]
	h.mu.Unlock()
	// gob must round-trip bitfield values exactly.
	if !got.Keys[0].Value.Equal(entry.Keys[0].Value) || got.Keys[0].PrefixLen != 8 {
		t.Fatalf("entry key mangled: %+v", got.Keys[0])
	}
	if !got.Args[0].Equal(entry.Args[0]) || got.Args[0].Width() != 9 {
		t.Fatalf("entry args mangled: %+v", got.Args)
	}

	st, err := cli.ReadStatus()
	if err != nil || st["parser.accept"] != 42 {
		t.Fatalf("status = %v, %v", st, err)
	}

	res, err := cli.ReadResources()
	if err != nil || res.LUTs != 100 || res.LUTPct != 1.5 {
		t.Fatalf("resources = %+v, %v", res, err)
	}

	if err := cli.ConfigureGen([]byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := cli.RunTest(); err != nil {
		t.Fatal(err)
	}
	rep, err := cli.FetchReport()
	if err != nil || string(rep) != "report-blob" {
		t.Fatalf("report = %q, %v", rep, err)
	}
	if err := cli.InjectFault(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := cli.ClearFaults(); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ran != 1 || len(h.faults) != 1 || h.faults[0].Port != 2 {
		t.Fatalf("handler state: ran=%d faults=%+v", h.ran, h.faults)
	}
}

func TestErrorResponses(t *testing.T) {
	cli := Pipe(&fakeHandler{})
	defer cli.Close()
	err := cli.ClearTable("ghost")
	if err == nil || err.Error() != "control: no table ghost" {
		t.Fatalf("err = %v", err)
	}
	// An error response must not poison the connection.
	if err := cli.ClearTable("real"); err != nil {
		t.Fatal(err)
	}
}

func TestTCPTransport(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	h := &fakeHandler{}
	go ListenTCP(ln, h)

	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	hello, err := cli.Hello()
	if err != nil || hello.ProgramName != "router" {
		t.Fatalf("hello over tcp: %+v, %v", hello, err)
	}
	// Second concurrent client.
	cli2, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if _, err := cli2.ReadStatus(); err != nil {
		t.Fatal(err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := DialTCP("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}

func TestConcurrentCalls(t *testing.T) {
	cli := Pipe(&fakeHandler{})
	defer cli.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := cli.ReadStatus(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestUnhandledRequest(t *testing.T) {
	cli := Pipe(handlerFunc(func(req *Request) *Response { return nil }))
	defer cli.Close()
	resp, err := cli.Call(&Request{Kind: ReqKind(99)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK() {
		t.Fatal("unhandled request should produce an error response")
	}
}

type handlerFunc func(*Request) *Response

func (f handlerFunc) Handle(req *Request) *Response { return f(req) }
