package control

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
)

// fakeHandler records requests and answers canned responses.
type fakeHandler struct {
	mu       sync.Mutex
	installs []dataplane.Entry
	faults   []FaultMsg
	spec     []byte
	ran      int
}

func (f *fakeHandler) Handle(req *Request) *Response {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch req.Kind {
	case ReqHello:
		return &Response{Hello: &HelloInfo{TargetName: "sdnet", ProgramName: "router", NumPorts: 4}}
	case ReqInstallEntry:
		f.installs = append(f.installs, *req.Entry)
		return &Response{}
	case ReqClearTable:
		if req.Table == "ghost" {
			return &Response{Err: "no table ghost"}
		}
		return &Response{}
	case ReqReadStatus:
		return &Response{Status: map[string]uint64{"parser.accept": 42}}
	case ReqReadResources:
		return &Response{Resources: &ResourcesMsg{LUTs: 100, LUTPct: 1.5}}
	case ReqConfigureGen:
		f.spec = append([]byte(nil), req.Spec...)
		return &Response{}
	case ReqRunTest:
		f.ran++
		return &Response{}
	case ReqFetchReport:
		return &Response{Report: []byte("report-blob")}
	case ReqInjectFault:
		f.faults = append(f.faults, *req.Fault)
		return &Response{}
	case ReqClearFaults:
		return &Response{}
	}
	return nil
}

func TestPipeRoundTrip(t *testing.T) {
	h := &fakeHandler{}
	cli := Pipe(h)
	defer cli.Close()

	hello, err := cli.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if hello.TargetName != "sdnet" || hello.NumPorts != 4 {
		t.Fatalf("hello = %+v", hello)
	}

	entry := dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.New(3, 9)},
	}
	if err := cli.InstallEntry(entry); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	if len(h.installs) != 1 {
		t.Fatalf("installs = %d", len(h.installs))
	}
	got := h.installs[0]
	h.mu.Unlock()
	// gob must round-trip bitfield values exactly.
	if !got.Keys[0].Value.Equal(entry.Keys[0].Value) || got.Keys[0].PrefixLen != 8 {
		t.Fatalf("entry key mangled: %+v", got.Keys[0])
	}
	if !got.Args[0].Equal(entry.Args[0]) || got.Args[0].Width() != 9 {
		t.Fatalf("entry args mangled: %+v", got.Args)
	}

	st, err := cli.ReadStatus()
	if err != nil || st["parser.accept"] != 42 {
		t.Fatalf("status = %v, %v", st, err)
	}

	res, err := cli.ReadResources()
	if err != nil || res.LUTs != 100 || res.LUTPct != 1.5 {
		t.Fatalf("resources = %+v, %v", res, err)
	}

	if err := cli.ConfigureGen([]byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := cli.RunTest(); err != nil {
		t.Fatal(err)
	}
	rep, err := cli.FetchReport()
	if err != nil || string(rep) != "report-blob" {
		t.Fatalf("report = %q, %v", rep, err)
	}
	if err := cli.InjectFault(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := cli.ClearFaults(); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ran != 1 || len(h.faults) != 1 || h.faults[0].Port != 2 {
		t.Fatalf("handler state: ran=%d faults=%+v", h.ran, h.faults)
	}
}

func TestErrorResponses(t *testing.T) {
	cli := Pipe(&fakeHandler{})
	defer cli.Close()
	err := cli.ClearTable("ghost")
	if err == nil || err.Error() != "control: no table ghost" {
		t.Fatalf("err = %v", err)
	}
	// An error response must not poison the connection.
	if err := cli.ClearTable("real"); err != nil {
		t.Fatal(err)
	}
}

func TestTCPTransport(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	h := &fakeHandler{}
	go ListenTCP(ln, h)

	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	hello, err := cli.Hello()
	if err != nil || hello.ProgramName != "router" {
		t.Fatalf("hello over tcp: %+v, %v", hello, err)
	}
	// Second concurrent client.
	cli2, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if _, err := cli2.ReadStatus(); err != nil {
		t.Fatal(err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := DialTCP("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}

func TestConcurrentCalls(t *testing.T) {
	cli := Pipe(&fakeHandler{})
	defer cli.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := cli.ReadStatus(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestUnhandledRequest(t *testing.T) {
	cli := Pipe(handlerFunc(func(req *Request) *Response { return nil }))
	defer cli.Close()
	resp, err := cli.Call(&Request{Kind: ReqKind(99)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK() {
		t.Fatal("unhandled request should produce an error response")
	}
}

type handlerFunc func(*Request) *Response

func (f handlerFunc) Handle(req *Request) *Response { return f(req) }

// TestCallTimeoutBreaksClient: a stalled agent trips the call deadline
// with a typed *TimeoutError, and because the gob stream is now
// mid-message, every later call fails fast wrapping ErrChannelBroken.
func TestCallTimeoutBreaksClient(t *testing.T) {
	release := make(chan struct{})
	cli := Pipe(handlerFunc(func(req *Request) *Response {
		<-release // stall forever (until test cleanup)
		return &Response{}
	}))
	defer cli.Close()
	defer close(release)

	cli.SetCallTimeout(20 * time.Millisecond)
	_, err := cli.Call(&Request{Kind: ReqReadStatus})
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if te.Kind != ReqReadStatus || !te.Timeout() {
		t.Fatalf("timeout error = %+v", te)
	}
	if _, err := cli.Call(&Request{Kind: ReqHello}); !errors.Is(err, ErrChannelBroken) {
		t.Fatalf("call after timeout = %v, want ErrChannelBroken", err)
	}
}

// TestRetryableErrorsRetryWithBackoff: the client re-issues requests the
// agent marks retryable, with exponential backoff, and stops as soon as
// one attempt succeeds.
func TestRetryableErrorsRetryWithBackoff(t *testing.T) {
	var calls int
	cli := Pipe(handlerFunc(func(req *Request) *Response {
		calls++
		if calls <= 2 {
			return &Response{Err: "install path flapping", Retryable: true}
		}
		return &Response{}
	}))
	defer cli.Close()

	var waits []time.Duration
	cli.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  15 * time.Millisecond,
		Sleep:       func(d time.Duration) { waits = append(waits, d) },
	})
	resp, err := cli.Call(&Request{Kind: ReqInstallEntry, Entry: &dataplane.Entry{Table: "t"}})
	if err != nil || !resp.OK() {
		t.Fatalf("call = %+v, %v", resp, err)
	}
	if calls != 3 {
		t.Fatalf("agent saw %d attempts, want 3", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond} // doubled then capped
	if len(waits) != len(want) || waits[0] != want[0] || waits[1] != want[1] {
		t.Fatalf("backoff waits = %v, want %v", waits, want)
	}
}

// TestRetryExhaustionSurfacesTransientError: when every attempt fails
// retryably, the final response error is a *RemoteError that still
// reports itself transient.
func TestRetryExhaustionSurfacesTransientError(t *testing.T) {
	var calls int
	cli := Pipe(handlerFunc(func(req *Request) *Response {
		calls++
		return &Response{Err: "still flapping", Retryable: true}
	}))
	defer cli.Close()
	cli.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}})
	err := cli.InstallEntry(dataplane.Entry{Table: "t"})
	if err == nil || calls != 3 {
		t.Fatalf("err = %v after %d calls, want failure after 3", err, calls)
	}
	if !IsTransient(err) {
		t.Fatalf("exhausted retryable error not transient: %v", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || !re.Retryable {
		t.Fatalf("err = %v, want retryable *RemoteError", err)
	}
}

// TestNonRetryableErrorNotRetried: permanent agent errors are returned
// on the first attempt even with a retry policy installed.
func TestNonRetryableErrorNotRetried(t *testing.T) {
	var calls int
	cli := Pipe(handlerFunc(func(req *Request) *Response {
		calls++
		return &Response{Err: "no such table"}
	}))
	defer cli.Close()
	cli.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}})
	err := cli.ClearTable("ghost")
	if err == nil || calls != 1 {
		t.Fatalf("err = %v after %d calls, want 1 call", err, calls)
	}
	if IsTransient(err) {
		t.Fatalf("permanent error classified transient: %v", err)
	}
}

// TestDeleteEntryRoundTrip covers the new request kind end to end.
func TestDeleteEntryRoundTrip(t *testing.T) {
	var got *dataplane.Entry
	cli := Pipe(handlerFunc(func(req *Request) *Response {
		if req.Kind != ReqDeleteEntry {
			return &Response{Err: "wrong kind " + req.Kind.String()}
		}
		got = req.Entry
		return &Response{}
	}))
	defer cli.Close()
	e := dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
	}
	if err := cli.DeleteEntry(e); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Table != "ipv4_lpm" || got.Keys[0].PrefixLen != 8 {
		t.Fatalf("delete entry arrived as %+v", got)
	}
}
