package device

// The zero-copy capture ring must be indistinguishable from the legacy
// copying capture store (Config.CopyCaptures) — same frames, same bytes,
// same timestamps, across faults, bursts, and capture toggles — while
// keeping drained frames valid until ReleaseCaptures and running the
// burst path at zero allocations per frame.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/target"
)

// newCopyRouterDevice boots the same router as newRouterDevice but on the
// legacy copying capture store — the ring's differential oracle.
func newCopyRouterDevice(t testing.TB) *Device {
	t.Helper()
	prog, err := compile.Compile(p4test.Router)
	if err != nil {
		t.Fatal(err)
	}
	tg := target.NewReference()
	if err := tg.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := tg.InstallEntry(dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(1, 9)},
	}); err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Target: tg, CopyCaptures: true})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// snapshotCaptures deep-copies a drain result so it can be compared after
// the originals are released or (for the oracle) garbage-collected.
func snapshotCaptures(caps []CapturedFrame) []CapturedFrame {
	out := make([]CapturedFrame, len(caps))
	for i, c := range caps {
		out[i] = CapturedFrame{Data: append([]byte(nil), c.Data...), At: c.At}
	}
	return out
}

func sameCaptures(a, b []CapturedFrame) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d frames vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].Data, b[i].Data) {
			return fmt.Errorf("frame %d: data differs (%d vs %d bytes)", i, len(a[i].Data), len(b[i].Data))
		}
		if a[i].At != b[i].At {
			return fmt.Errorf("frame %d: at %v vs %v", i, a[i].At, b[i].At)
		}
	}
	return nil
}

// runCaptureRingDifferential drives one seeded op schedule through a
// ring-mode device and a CopyCaptures oracle and checks the drains agree
// packet-for-packet. Ring drains are deliberately held across later
// traffic before being compared and released, proving borrowed frames
// stay valid until ReleaseCaptures.
func runCaptureRingDifferential(t *testing.T, seed int64, rounds int) {
	t.Helper()
	ring := newRouterDevice(t, target.NewReference())
	oracle := newCopyRouterDevice(t)
	rng := rand.New(rand.NewSource(seed))
	clock := time.Duration(0)

	// held accumulates undrained ring borrows (and oracle snapshots) so
	// the retained-reference comparison spans several drains.
	var heldRing, heldOracle []CapturedFrame

	sendBoth := func(frame []byte, at time.Duration) {
		if err := ring.SendExternal(0, frame, at); err != nil {
			t.Fatal(err)
		}
		if err := oracle.SendExternal(0, frame, at); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < rounds; r++ {
		switch rng.Intn(6) {
		case 0, 1: // burst of mixed frames
			n := 1 + rng.Intn(32)
			frames := make([][]byte, n)
			for i := range frames {
				f := testFrame(20 + rng.Intn(200))
				if rng.Intn(5) == 0 {
					f[14] = 0x65 // parser reject
				}
				frames[i] = f
			}
			interval := time.Duration(500+rng.Intn(1000)) * time.Nanosecond
			if err := ring.SendExternalBurst(0, frames, clock, interval); err != nil {
				t.Fatal(err)
			}
			if err := oracle.SendExternalBurst(0, frames, clock, interval); err != nil {
				t.Fatal(err)
			}
			clock += time.Duration(n) * interval
		case 2: // single frames
			for i := 0; i < 1+rng.Intn(8); i++ {
				sendBoth(testFrame(20+rng.Intn(100)), clock)
				clock += time.Microsecond
			}
		case 3: // bit-flip fault, deterministic per device pair
			fseed := rng.Int63()
			ring.InjectFault(Fault{Kind: FaultBitFlip, Port: 0, Seed: fseed})
			oracle.InjectFault(Fault{Kind: FaultBitFlip, Port: 0, Seed: fseed})
			for i := 0; i < 4; i++ {
				sendBoth(testFrame(64), clock)
				clock += time.Microsecond
			}
			ring.ClearFaults()
			oracle.ClearFaults()
		case 4: // freeze the egress queue, then release it
			ring.InjectFault(Fault{Kind: FaultQueueStuck, Port: 1})
			oracle.InjectFault(Fault{Kind: FaultQueueStuck, Port: 1})
			for i := 0; i < 4+rng.Intn(8); i++ {
				sendBoth(testFrame(40), clock)
				clock += time.Microsecond
			}
			ring.ClearFaults()
			oracle.ClearFaults()
			clock = ring.Now()
		case 5: // capture gap: frames transmitted while off are not retained
			ring.SetCaptureEnabled(false)
			oracle.SetCaptureEnabled(false)
			sendBoth(testFrame(64), clock)
			clock += time.Microsecond
			ring.SetCaptureEnabled(true)
			oracle.SetCaptureEnabled(true)
		}
		if rng.Intn(3) == 0 {
			rc, oc := ring.Captures(1), oracle.Captures(1)
			if err := sameCaptures(rc, snapshotCaptures(oc)); err != nil {
				t.Fatalf("seed %d round %d: ring vs oracle: %v", seed, r, err)
			}
			// Hold the borrow across later rounds instead of releasing.
			heldRing = append(heldRing, rc...)
			heldOracle = append(heldOracle, snapshotCaptures(oc)...)
		}
	}
	// The held borrows — some drained many rounds ago, with bursts, fault
	// traffic, and more drains in between — must still read back exactly.
	if err := sameCaptures(heldRing, heldOracle); err != nil {
		t.Fatalf("seed %d: retained ring captures corrupted: %v", seed, err)
	}
	ring.ReleaseCaptures(1)
	// After release the final drain must come up clean on both.
	rc, oc := ring.Captures(1), oracle.Captures(1)
	if err := sameCaptures(rc, oc); err != nil {
		t.Fatalf("seed %d: post-release drain: %v", seed, err)
	}
	ring.ReleaseCaptures(1)
	for _, port := range []int{0, 2, 3} {
		if n := len(ring.Captures(port)); n != 0 {
			t.Fatalf("seed %d: %d stray captures on port %d", seed, n, port)
		}
	}
}

// TestDifferentialCaptureRing cross-checks the zero-copy capture ring
// against the retained copying implementation at 1, 2, and 8 workers
// (each worker owns an independent device pair; the CI differential-fuzz
// job runs this under -race).
func TestDifferentialCaptureRing(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					runCaptureRingDifferential(t, int64(workers*1000+w), 40)
				}()
			}
			wg.Wait()
		})
	}
}

// TestCaptureRingRecyclesSegments: a drain-release cycle reuses the same
// backing segment instead of allocating fresh ones, and release makes
// the port's borrow list empty without disturbing later captures.
func TestCaptureRingRecyclesSegments(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	frames := make([][]byte, 16)
	for i := range frames {
		frames[i] = testFrame(64)
	}
	for cycle := 0; cycle < 5; cycle++ {
		if err := d.SendExternalBurst(0, frames, d.Now(), time.Microsecond); err != nil {
			t.Fatal(err)
		}
		caps := d.Captures(1)
		if len(caps) != len(frames) {
			t.Fatalf("cycle %d: %d captures, want %d", cycle, len(caps), len(frames))
		}
		d.ReleaseCaptures(1)
	}
	if got := len(d.ports[1].segFree); got != 1 {
		t.Fatalf("port 1 free list holds %d segments after 5 cycles, want 1 (recycled)", got)
	}
	if got := len(d.segSpill); got != 0 {
		t.Fatalf("spillway holds %d segments, want 0 (port list has room)", got)
	}
	// Double release and release of never-drained ports are safe no-ops.
	d.ReleaseCaptures(1)
	d.ReleaseCaptures(0)
	d.ReleaseCaptures(-1)
	d.ReleaseCaptures(99)
}

// TestSendExternalBurstAllocFree pins the zero-copy contract: in steady
// state the burst path runs at zero allocations per frame with capture
// retained (ring mode) and with capture off, mirroring the Engine.Process
// alloc tests.
func TestSendExternalBurstAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation floor not meaningful under the race detector")
	}
	const n = 64
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = testFrame(26)
	}
	run := func(t *testing.T, d *Device, drain bool) {
		t.Helper()
		iter := func() {
			if err := d.SendExternalBurst(0, frames, d.Now(), 700*time.Nanosecond); err != nil {
				t.Fatal(err)
			}
			if drain {
				if caps := d.Captures(1); len(caps) != n {
					t.Fatalf("%d captures, want %d", len(caps), n)
				}
				d.ReleaseCaptures(1)
			}
		}
		for i := 0; i < 3; i++ { // reach slab/meta high-water
			iter()
		}
		if avg := testing.AllocsPerRun(50, iter); avg != 0 {
			t.Fatalf("burst path allocates %.2f allocs/op (%.4f allocs/frame), want 0", avg, avg/n)
		}
	}
	t.Run("captureOn", func(t *testing.T) {
		run(t, newRouterDevice(t, target.NewReference()), true)
	})
	t.Run("captureOff", func(t *testing.T) {
		d := newRouterDevice(t, target.NewReference())
		d.SetCaptureEnabled(false)
		run(t, d, false)
	})
}

// BenchmarkSendExternalBurst is the pinned zero-copy burst benchmark:
// full capture retention, drain and release every burst, expected to run
// at 0 allocs/op (benchgate enforces the pin).
func BenchmarkSendExternalBurst(b *testing.B) {
	d := newRouterDevice(b, target.NewReference())
	const n = 64
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = testFrame(26)
	}
	b.SetBytes(int64(n * len(frames[0])))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.SendExternalBurst(0, frames, d.Now(), 700*time.Nanosecond); err != nil {
			b.Fatal(err)
		}
		if caps := d.Captures(1); len(caps) != n {
			b.Fatalf("%d captures, want %d", len(caps), n)
		}
		d.ReleaseCaptures(1)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*n/secs/1e6, "Mpps")
	}
}
