// Package device models the network platform NetDebug is deployed inside:
// a NetFPGA-SUME-like device with four 10 GbE ports, MAC/interface logic,
// an output-queueing stage, and a programmable data plane (package target)
// in the middle.
//
// The simulation is synchronous with a virtual clock: every frame carries a
// timestamp, serialization delays follow line rate, and the pipeline delay
// comes from the target's latency model. This makes every measurement
// (throughput, packet rate, latency) exactly reproducible.
//
// The device exposes two attachment levels, which is the heart of the
// paper's comparison:
//
//   - External ports (SendExternal/Captures): what an external network
//     tester can reach. Frames pass through the MAC layer, where
//     interface-level faults live, and through the output queues.
//   - Internal taps (InjectInternal, tap callbacks, Status): what NetDebug's
//     in-device generator and checker reach — injection directly into the
//     data plane, observation before the MACs, and internal status
//     registers.
//
// Both levels have batched forms (SendExternalBurst,
// InjectInternalBatch) that amortize context traffic over a burst and,
// together with the borrow-semantics capture ring (ring.go: Captures
// returns zero-copy views, ReleaseCaptures recycles segments), keep the
// steady-state frame path at 0 allocs/frame with capture on — the
// economics docs/scaling.md quantifies. Burst and per-frame paths are
// behaviourally equivalent; the differential tests in burst_test.go and
// ring_test.go hold them to that.
package device

import (
	"fmt"
	"math/rand"
	"time"

	"netdebug/internal/stats"
	"netdebug/internal/target"
)

// Config sizes the device.
type Config struct {
	// NumPorts is the number of external ports (default 4, like SUME).
	NumPorts int
	// PortSpeedBps is the line rate per port (default 10e9).
	PortSpeedBps float64
	// QueueDepth is the per-port output queue capacity in frames
	// (default 128).
	QueueDepth int
	// DisableCapture turns off external frame capture: Captures returns
	// nothing and the TX path stops copying every transmitted frame.
	// Capture is the only consumer that needs ownership of frame bytes
	// (taps observe synchronously and must not retain), so workloads
	// that read status registers or taps instead of captures — the
	// NetDebug attachment model — save the per-frame copy, leaving the
	// external send path allocation-free in steady state. Toggle at
	// runtime with SetCaptureEnabled.
	DisableCapture bool
	// CopyCaptures selects the legacy capture store: every transmitted
	// frame is retained as an owned copy, and Captures hands ownership to
	// the caller with no release step. The default is the zero-copy
	// capture ring, where Captures borrows device-backed segments that
	// the caller returns with ReleaseCaptures. The copying store is kept
	// as the differential oracle for the ring.
	CopyCaptures bool
	// Target is the loaded data plane under test.
	Target target.Target
}

func (c *Config) fill() {
	if c.NumPorts == 0 {
		c.NumPorts = 4
	}
	if c.PortSpeedBps == 0 {
		c.PortSpeedBps = 10e9
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 128
	}
}

// TapPoint identifies an internal observation point.
type TapPoint int

// Tap points, in packet order.
const (
	TapMACIn TapPoint = iota
	TapDataplaneIn
	TapDataplaneOut
	TapMACOut
)

// String names the tap point.
func (t TapPoint) String() string {
	switch t {
	case TapMACIn:
		return "mac-in"
	case TapDataplaneIn:
		return "dataplane-in"
	case TapDataplaneOut:
		return "dataplane-out"
	case TapMACOut:
		return "mac-out"
	}
	return fmt.Sprintf("tap(%d)", int(t))
}

// TapEvent is delivered to tap callbacks.
type TapEvent struct {
	Point TapPoint
	Port  int
	Data  []byte
	At    time.Duration
	// Result carries the data-plane execution record for TapDataplaneOut
	// events (including drops, which produce a TapDataplaneOut event with
	// nil Data).
	Result *target.Result
}

// TapFunc observes packets at a tap point. Callbacks run synchronously on
// the simulation path and must not retain Data.
type TapFunc func(TapEvent)

// CapturedFrame is a frame seen leaving an external port.
type CapturedFrame struct {
	Data []byte
	At   time.Duration
}

// FaultKind enumerates injectable hardware faults.
type FaultKind int

// Fault kinds.
const (
	// FaultPortDown takes the port's link down: all RX and TX on the port
	// is lost silently.
	FaultPortDown FaultKind = iota
	// FaultBitFlip corrupts one random bit per arriving frame at the MAC,
	// before the data plane sees it.
	FaultBitFlip
	// FaultQueueStuck freezes the port's output queue: frames enqueue
	// until the queue fills, then tail-drop. Frames held in the frozen
	// queue are not lost — ClearFaults releases them through normal TX
	// serialization starting at the clear time.
	FaultQueueStuck
)

// String names the fault.
func (k FaultKind) String() string {
	switch k {
	case FaultPortDown:
		return "port-down"
	case FaultBitFlip:
		return "bit-flip"
	case FaultQueueStuck:
		return "queue-stuck"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is one injected hardware fault.
type Fault struct {
	Kind FaultKind
	Port int
	Seed int64 // for FaultBitFlip
}

// stuckFrame is one frame held in a frozen output queue, retained so a
// later ClearFaults can release it. Data is an owned copy: the enqueue
// path's bytes alias the target's per-packet scratch.
type stuckFrame struct {
	data  []byte
	ready time.Duration
}

type portState struct {
	idx        int
	up         bool
	bitFlip    *rand.Rand
	queueStuck bool
	// nextTxFree is when the TX line finishes its current frame.
	nextTxFree time.Duration
	// stuck holds the frames frozen in the output queue under
	// FaultQueueStuck, in arrival order; its length is the occupancy.
	stuck []stuckFrame
	// captures is the legacy copying store (Config.CopyCaptures).
	captures []CapturedFrame
	// seg accumulates ring-mode captures; borrowed holds segments drained
	// by Captures and not yet returned via ReleaseCaptures; segFree is
	// the port's own recycle list (bounded — overflow spills to the
	// device-level spillway), which keeps a port's capture slabs cycling
	// through that port so their grown capacity matches its traffic.
	seg      *capSegment
	borrowed []*capSegment
	segFree  []*capSegment
	// Per-port counters, resolved once at boot so the packet path never
	// formats counter names.
	cRxFrames, cRxLinkDown, cRxBitFlips   *stats.Counter
	cTxFrames, cTxLinkDown, cTxQueueDrops *stats.Counter
}

// Device is one simulated network platform.
type Device struct {
	cfg      Config
	now      time.Duration
	ports    []*portState
	taps     map[TapPoint][]TapFunc
	Counters *stats.Set
	// resScratch stages per-packet results so taking their address for
	// tap events does not heap-allocate per packet. It is indexed by
	// packet-path reentrancy depth (a tap callback that injects a
	// follow-up packet gets its own slot), so an outer call's returned
	// Result struct is never clobbered by a nested one. Note the target
	// layer still reuses its output buffers per Process call, so nested
	// injection into the same device invalidates the outer result's
	// Outputs data — see the target.Result contract.
	resScratch []target.Result
	procDepth  int
	// Burst-path scratch (SendExternalBurst): post-MAC frame data and
	// per-frame RX-complete timestamps, reused across bursts.
	batchData [][]byte
	batchAt   []time.Duration
	// captureOn gates frame retention on the TX path; see
	// Config.DisableCapture.
	captureOn bool
	// segSpill is the device-level overflow spillway for capture
	// segments: ports recycle into their own bounded free lists first
	// (portState.segFree) and spill the excess here, where any port may
	// grab it.
	segSpill []*capSegment

	cDropped, cInjected, cFaults, cBadPort, cSegHomeMismatch *stats.Counter
}

// New boots a device around the given (already loaded) target.
func New(cfg Config) (*Device, error) {
	cfg.fill()
	if cfg.Target == nil {
		return nil, fmt.Errorf("device: config has no target")
	}
	if cfg.Target.Program() == nil {
		return nil, fmt.Errorf("device: target has no loaded program")
	}
	d := &Device{
		cfg:       cfg,
		taps:      make(map[TapPoint][]TapFunc),
		Counters:  stats.NewSet(),
		captureOn: !cfg.DisableCapture,
	}
	d.cDropped = d.Counters.Counter("dataplane.dropped")
	d.cInjected = d.Counters.Counter("netdebug.injected")
	d.cFaults = d.Counters.Counter("faults.injected")
	d.cBadPort = d.Counters.Counter("tx.bad_port")
	d.cSegHomeMismatch = d.Counters.Counter("capture.segment_home_mismatch")
	for i := 0; i < cfg.NumPorts; i++ {
		p := &portState{idx: i, up: true}
		p.cRxFrames = d.Counters.Counter(fmt.Sprintf("port%d.rx.frames", i))
		p.cRxLinkDown = d.Counters.Counter(fmt.Sprintf("port%d.rx.link_down", i))
		p.cRxBitFlips = d.Counters.Counter(fmt.Sprintf("port%d.rx.bit_flips", i))
		p.cTxFrames = d.Counters.Counter(fmt.Sprintf("port%d.tx.frames", i))
		p.cTxLinkDown = d.Counters.Counter(fmt.Sprintf("port%d.tx.link_down", i))
		p.cTxQueueDrops = d.Counters.Counter(fmt.Sprintf("port%d.tx.queue_drops", i))
		d.ports = append(d.ports, p)
	}
	return d, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Target returns the data plane under test.
func (d *Device) Target() target.Target { return d.cfg.Target }

// Now returns the current virtual time.
func (d *Device) Now() time.Duration { return d.now }

// AdvanceTo moves the virtual clock forward (it never moves backwards).
func (d *Device) AdvanceTo(t time.Duration) {
	if t > d.now {
		d.now = t
	}
}

// Tap registers a callback at a tap point. Taps are internal: only
// NetDebug-style in-device tooling can install them.
func (d *Device) Tap(p TapPoint, fn TapFunc) {
	d.taps[p] = append(d.taps[p], fn)
}

func (d *Device) fire(ev TapEvent) {
	for _, fn := range d.taps[ev.Point] {
		fn(ev)
	}
}

// InjectFault applies a hardware fault.
func (d *Device) InjectFault(f Fault) error {
	if f.Port < 0 || f.Port >= len(d.ports) {
		return fmt.Errorf("device: no port %d", f.Port)
	}
	p := d.ports[f.Port]
	switch f.Kind {
	case FaultPortDown:
		p.up = false
	case FaultBitFlip:
		p.bitFlip = rand.New(rand.NewSource(f.Seed))
	case FaultQueueStuck:
		p.queueStuck = true
	default:
		return fmt.Errorf("device: unknown fault %v", f.Kind)
	}
	d.cFaults.Inc()
	return nil
}

// ClearFaults restores healthy hardware. Frames held in a frozen output
// queue (FaultQueueStuck) are not discarded: they drain through normal
// TX serialization in arrival order, starting no earlier than the
// current virtual time, exactly as a real queue resumes when its
// scheduler unwedges. Frames that still overflow the restored queue
// tail-drop and are counted.
func (d *Device) ClearFaults() {
	for _, p := range d.ports {
		p.up = true
		p.bitFlip = nil
		p.queueStuck = false
	}
	for port, p := range d.ports {
		if len(p.stuck) == 0 {
			continue
		}
		stuck := p.stuck
		p.stuck = nil
		for _, f := range stuck {
			ready := f.ready
			if d.now > ready {
				ready = d.now
			}
			d.enqueue(port, f.data, ready)
		}
	}
}

// wireTime is the serialization delay of an n-byte frame at line rate,
// including the 20-byte preamble+IFG overhead.
func (d *Device) wireTime(n int) time.Duration {
	bits := float64(n+20) * 8
	return time.Duration(bits / d.cfg.PortSpeedBps * 1e9)
}

// SendExternal delivers a frame to an external port at virtual time at,
// exactly as a connected cable would. The frame traverses the MAC (where
// interface faults apply), the data plane, and the output queues.
func (d *Device) SendExternal(port int, frame []byte, at time.Duration) error {
	if port < 0 || port >= len(d.ports) {
		return fmt.Errorf("device: no port %d", port)
	}
	d.AdvanceTo(at)
	p := d.ports[port]
	p.cRxFrames.Inc()
	if !p.up {
		p.cRxLinkDown.Inc()
		return nil // silently lost, as on real hardware
	}
	data := frame
	if p.bitFlip != nil && len(frame) > 0 {
		data = append([]byte(nil), frame...)
		bit := p.bitFlip.Intn(len(data) * 8)
		data[bit/8] ^= 1 << uint(7-bit%8)
		p.cRxBitFlips.Inc()
	}
	rxDone := at + d.wireTime(len(frame))
	d.fire(TapEvent{Point: TapMACIn, Port: port, Data: data, At: rxDone})
	d.processAndQueue(data, uint64(port), rxDone, d.wantExternalTrace())
	return nil
}

// wantExternalTrace reports whether any consumer can observe a
// data-plane execution record on the externally-injected path: only
// TapDataplaneOut callbacks receive the Result, so with no tap
// installed the per-packet trace recording (parser path, table events)
// is pure allocation overhead and is skipped. Internal injection
// (InjectInternal) returns its Result to the caller and keeps its
// explicit trace parameter.
func (d *Device) wantExternalTrace() bool {
	return len(d.taps[TapDataplaneOut]) > 0
}

// SendExternalBurst delivers a burst of frames to one external port,
// frame i at virtual time start+i*interval, through the batched
// data-plane path (target.ProcessBatch). It is behaviourally equivalent
// to one SendExternal call per frame — the same MAC faults, taps in the
// same per-frame order, the same queueing — but amortizes the per-packet
// result staging over the burst. The one observable difference is that
// the data plane executes the whole burst before the first tap fires, so
// tap callbacks cannot influence the processing of later frames in the
// same burst.
func (d *Device) SendExternalBurst(port int, frames [][]byte, start, interval time.Duration) error {
	if port < 0 || port >= len(d.ports) {
		return fmt.Errorf("device: no port %d", port)
	}
	p := d.ports[port]
	d.batchData = d.batchData[:0]
	d.batchAt = d.batchAt[:0]
	for i, frame := range frames {
		at := start + time.Duration(i)*interval
		d.AdvanceTo(at)
		p.cRxFrames.Inc()
		if !p.up {
			p.cRxLinkDown.Inc()
			continue // silently lost, as on real hardware
		}
		data := frame
		if p.bitFlip != nil && len(frame) > 0 {
			data = append([]byte(nil), frame...)
			bit := p.bitFlip.Intn(len(data) * 8)
			data[bit/8] ^= 1 << uint(7-bit%8)
			p.cRxBitFlips.Inc()
		}
		d.batchData = append(d.batchData, data)
		d.batchAt = append(d.batchAt, at+d.wireTime(len(frame)))
	}
	if len(d.batchData) == 0 {
		return nil
	}
	results := d.cfg.Target.ProcessBatch(d.batchData, uint64(port), d.wantExternalTrace())
	for i := range results {
		res := &results[i]
		rxDone := d.batchAt[i]
		d.fire(TapEvent{Point: TapMACIn, Port: port, Data: d.batchData[i], At: rxDone})
		d.fire(TapEvent{Point: TapDataplaneIn, Port: port, Data: d.batchData[i], At: rxDone})
		done := rxDone + res.Latency
		if res.Dropped() {
			d.cDropped.Inc()
			d.fire(TapEvent{Point: TapDataplaneOut, Port: -1, Data: nil, At: done, Result: res})
			continue
		}
		for _, out := range res.Outputs {
			d.fire(TapEvent{Point: TapDataplaneOut, Port: int(out.Port), Data: out.Data, At: done, Result: res})
			d.enqueue(int(out.Port), out.Data, done)
		}
	}
	return nil
}

// InjectInternal pushes a frame directly into the data plane under test,
// bypassing the MACs — the NetDebug generator's attachment point. The
// returned result carries the full internal trace.
func (d *Device) InjectInternal(frame []byte, ingressPort uint64, at time.Duration, trace bool) target.Result {
	d.AdvanceTo(at)
	d.cInjected.Inc()
	return d.process(frame, ingressPort, at, trace)
}

// InjectInternalBatch pushes a run of frames from one ingress port
// through the batched data-plane path (target.ProcessBatch) — how the
// in-device generator drives its probe streams. Frame i is injected at
// at[i]. It is behaviourally equivalent to one InjectInternal call per
// frame — the same counters, the same per-frame dataplane taps in order
// — but amortizes per-packet dispatch over the run; as with
// SendExternalBurst, the whole run executes before the first tap fires.
// The returned results (and the output bytes they reference) are valid
// until the next batch on this device's target.
func (d *Device) InjectInternalBatch(frames [][]byte, ingressPort uint64, at []time.Duration, trace bool) []target.Result {
	for _, t := range at {
		d.AdvanceTo(t)
	}
	d.cInjected.Add(uint64(len(frames)))
	results := d.cfg.Target.ProcessBatch(frames, ingressPort, trace)
	for i := range results {
		res := &results[i]
		d.fire(TapEvent{Point: TapDataplaneIn, Port: int(ingressPort), Data: frames[i], At: at[i]})
		done := at[i] + res.Latency
		if res.Dropped() {
			d.cDropped.Inc()
			d.fire(TapEvent{Point: TapDataplaneOut, Port: -1, Data: nil, At: done, Result: res})
			continue
		}
		for _, out := range res.Outputs {
			d.fire(TapEvent{Point: TapDataplaneOut, Port: int(out.Port), Data: out.Data, At: done, Result: res})
		}
	}
	return results
}

// process runs the data plane and fires dataplane taps; it returns the
// result without queueing outputs. The result is staged in a
// depth-indexed scratch slot so tap events can carry a pointer without
// a per-packet heap allocation; like target results, it is valid until
// the next packet at the same depth.
func (d *Device) process(frame []byte, ingressPort uint64, at time.Duration, trace bool) target.Result {
	depth := d.procDepth
	d.procDepth++
	defer func() { d.procDepth-- }()
	if depth >= len(d.resScratch) {
		d.resScratch = append(d.resScratch, target.Result{})
	}
	d.fire(TapEvent{Point: TapDataplaneIn, Port: int(ingressPort), Data: frame, At: at})
	d.resScratch[depth] = d.cfg.Target.Process(frame, ingressPort, trace)
	res := &d.resScratch[depth]
	done := at + res.Latency
	if res.Dropped() {
		d.cDropped.Inc()
		d.fire(TapEvent{Point: TapDataplaneOut, Port: -1, Data: nil, At: done, Result: res})
		return *res
	}
	for _, out := range res.Outputs {
		d.fire(TapEvent{Point: TapDataplaneOut, Port: int(out.Port), Data: out.Data, At: done, Result: res})
	}
	return *res
}

// processAndQueue runs the data plane and forwards outputs through the
// output queues to the external ports.
func (d *Device) processAndQueue(frame []byte, ingressPort uint64, at time.Duration, trace bool) {
	res := d.process(frame, ingressPort, at, trace)
	done := at + res.Latency
	for _, out := range res.Outputs {
		d.enqueue(int(out.Port), out.Data, done)
	}
}

// enqueue models the output queue and TX serialization of one port.
func (d *Device) enqueue(port int, data []byte, ready time.Duration) {
	if port < 0 || port >= len(d.ports) {
		d.cBadPort.Inc()
		return
	}
	p := d.ports[port]
	if !p.up {
		p.cTxLinkDown.Inc()
		return
	}
	if p.queueStuck {
		if len(p.stuck) < d.cfg.QueueDepth {
			p.stuck = append(p.stuck, stuckFrame{
				data:  append([]byte(nil), data...),
				ready: ready,
			})
		} else {
			p.cTxQueueDrops.Inc()
		}
		return
	}
	// Queue occupancy: frames waiting for the TX line. If the backlog in
	// flight exceeds the queue depth, tail-drop.
	txStart := p.nextTxFree
	if ready > txStart {
		txStart = ready
	}
	wire := d.wireTime(len(data))
	backlog := int((txStart - ready) / wire)
	if wire > 0 && backlog >= d.cfg.QueueDepth {
		p.cTxQueueDrops.Inc()
		return
	}
	txDone := txStart + wire
	p.nextTxFree = txDone
	d.AdvanceTo(txDone)
	p.cTxFrames.Inc()
	d.fire(TapEvent{Point: TapMACOut, Port: port, Data: data, At: txDone})
	// Only the capture store retains frame bytes beyond this call (data
	// aliases the target's per-packet scratch; taps observe it
	// synchronously without keeping it), so bytes move into the capture
	// ring — or, under CopyCaptures, into an owned copy — only when
	// capture needs them.
	if d.captureOn {
		d.capture(p, data, txDone)
	}
}

// SetCaptureEnabled toggles external frame capture at runtime; see
// Config.DisableCapture. Frames transmitted while capture is off are
// not retained (counters and taps still see them).
func (d *Device) SetCaptureEnabled(on bool) { d.captureOn = on }

// CaptureEnabled reports whether external frame capture is on.
func (d *Device) CaptureEnabled() bool { return d.captureOn }

// QueueOccupancy returns the stuck-queue depth of a port (nonzero only
// under FaultQueueStuck; ClearFaults drains it back to zero).
func (d *Device) QueueOccupancy(port int) int {
	if port < 0 || port >= len(d.ports) {
		return 0
	}
	return len(d.ports[port].stuck)
}

// LinkUp reports port link state.
func (d *Device) LinkUp(port int) bool {
	if port < 0 || port >= len(d.ports) {
		return false
	}
	return d.ports[port].up
}

// Status merges device counters with the target's internal status
// registers — the view available over NetDebug's dedicated interface.
func (d *Device) Status() map[string]uint64 {
	out := d.Counters.Values()
	for k, v := range d.cfg.Target.Status() {
		out["target."+k] = v
	}
	for i, p := range d.ports {
		out[fmt.Sprintf("port%d.queue_occupancy", i)] = uint64(len(p.stuck))
		if p.up {
			out[fmt.Sprintf("port%d.link_up", i)] = 1
		} else {
			out[fmt.Sprintf("port%d.link_up", i)] = 0
		}
	}
	return out
}
