package device

import (
	"testing"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
	"netdebug/internal/target"
)

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 0xa}
	macB = packet.MAC{2, 0, 0, 0, 0, 0xb}
	gw   = packet.MAC{2, 0, 0, 0, 0xff, 1}
	ipA  = packet.IPv4Addr{10, 0, 0, 1}
	ipB  = packet.IPv4Addr{10, 0, 1, 2}
)

// newRouterDevice boots a reference-target router that forwards 10/8 to
// port 1.
func newRouterDevice(t testing.TB, tg target.Target) *Device {
	t.Helper()
	prog, err := compile.Compile(p4test.Router)
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := tg.InstallEntry(dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(1, 9)},
	}); err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Target: tg})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testFrame(payload int) []byte {
	return packet.BuildUDPv4(macA, macB, ipA, ipB, 40000, 53, make([]byte, payload))
}

func TestForwardExternalToExternal(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	frame := testFrame(64)
	if err := d.SendExternal(0, frame, 0); err != nil {
		t.Fatal(err)
	}
	caps := d.Captures(1)
	if len(caps) != 1 {
		t.Fatalf("captures on port 1 = %d", len(caps))
	}
	if caps[0].At <= 0 {
		t.Fatal("capture has no timestamp")
	}
	var eth packet.Ethernet
	if err := eth.DecodeFromBytes(caps[0].Data); err != nil {
		t.Fatal(err)
	}
	if eth.Dst != gw {
		t.Fatalf("rewritten dst = %v", eth.Dst)
	}
	if len(d.Captures(1)) != 0 {
		t.Fatal("captures not drained")
	}
}

// TestCaptureDisabledSkipsRetention: with capture off the TX path stops
// copying frames — counters and taps still observe every frame, and the
// external send path becomes allocation-free in steady state.
func TestCaptureDisabledSkipsRetention(t *testing.T) {
	prog, err := compile.Compile(p4test.Router)
	if err != nil {
		t.Fatal(err)
	}
	tg := target.NewReference()
	if err := tg.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := tg.InstallEntry(dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(1, 9)},
	}); err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Target: tg, DisableCapture: true})
	if err != nil {
		t.Fatal(err)
	}
	tapped := 0
	d.Tap(TapMACOut, func(ev TapEvent) {
		if len(ev.Data) > 0 {
			tapped++
		}
	})
	frame := testFrame(64)
	if err := d.SendExternal(0, frame, 0); err != nil {
		t.Fatal(err)
	}
	if got := d.Captures(1); len(got) != 0 {
		t.Fatalf("capture disabled but %d frames retained", len(got))
	}
	if tapped != 1 {
		t.Fatalf("MACOut tap fired %d times, want 1", tapped)
	}
	if got := d.Status()["port1.tx.frames"]; got != 1 {
		t.Fatalf("tx.frames = %d, want 1", got)
	}

	// Steady state: no allocations on the external path without capture
	// (race instrumentation allocates, so the floor is only asserted on
	// the plain job).
	if !raceEnabled {
		allocs := testing.AllocsPerRun(200, func() {
			if err := d.SendExternal(0, frame, d.Now()); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("SendExternal with capture off: %v allocs/frame, want 0", allocs)
		}
	}

	// Re-enabling restores retention.
	d.SetCaptureEnabled(true)
	if !d.CaptureEnabled() {
		t.Fatal("capture not re-enabled")
	}
	if err := d.SendExternal(0, frame, d.Now()); err != nil {
		t.Fatal(err)
	}
	caps := d.Captures(1)
	if len(caps) != 1 {
		t.Fatalf("capture re-enabled but %d frames retained", len(caps))
	}
	if eth := caps[0].Data; len(eth) != len(frame) {
		t.Fatalf("retained frame truncated: %d bytes", len(eth))
	}
}

func BenchmarkDeviceForwardNoCapture(b *testing.B) {
	tg := target.NewReference()
	prog, err := compile.Compile(p4test.Router)
	if err != nil {
		b.Fatal(err)
	}
	if err := tg.Load(prog); err != nil {
		b.Fatal(err)
	}
	if err := tg.InstallEntry(dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(1, 9)},
	}); err != nil {
		b.Fatal(err)
	}
	d, err := New(Config{Target: tg, DisableCapture: true})
	if err != nil {
		b.Fatal(err)
	}
	frame := testFrame(26)
	d.SendExternal(0, frame, 0)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.SendExternal(0, frame, d.Now()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWireTimeLatency(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	frame := testFrame(1000)
	d.SendExternal(0, frame, 0)
	caps := d.Captures(1)
	if len(caps) != 1 {
		t.Fatal("no output")
	}
	// Expected: rx wire + pipeline + tx wire.
	wire := d.wireTime(len(frame))
	want := wire + 50*time.Nanosecond + wire
	if caps[0].At != want {
		t.Fatalf("egress time = %v, want %v", caps[0].At, want)
	}
	// frame is 14+20+8+1000 = 1042 bytes; (1042+20)*8/10e9 s = 849.6ns
	if len(frame) != 1042 {
		t.Fatalf("frame length = %d", len(frame))
	}
	if wire != 849*time.Nanosecond {
		t.Fatalf("wireTime = %v", wire)
	}
}

func TestClockMonotonic(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	d.SendExternal(0, testFrame(64), time.Millisecond)
	if d.Now() < time.Millisecond {
		t.Fatal("clock did not advance")
	}
	before := d.Now()
	d.AdvanceTo(before - time.Microsecond)
	if d.Now() != before {
		t.Fatal("clock went backwards")
	}
}

func TestPortDownFault(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	if err := d.InjectFault(Fault{Kind: FaultPortDown, Port: 0}); err != nil {
		t.Fatal(err)
	}
	d.SendExternal(0, testFrame(64), 0)
	if len(d.Captures(1)) != 0 {
		t.Fatal("frame passed a downed port")
	}
	st := d.Status()
	if st["port0.rx.link_down"] != 1 || st["port0.link_up"] != 0 {
		t.Fatalf("status: %v", st)
	}
	d.ClearFaults()
	d.SendExternal(0, testFrame(64), 0)
	if len(d.Captures(1)) != 1 {
		t.Fatal("port did not recover after ClearFaults")
	}
}

func TestTxPortDownFault(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	d.InjectFault(Fault{Kind: FaultPortDown, Port: 1})
	d.SendExternal(0, testFrame(64), 0)
	if len(d.Captures(1)) != 0 {
		t.Fatal("frame transmitted on downed egress port")
	}
	if d.Status()["port1.tx.link_down"] != 1 {
		t.Fatal("tx link_down counter missing")
	}
}

func TestBitFlipFault(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	d.InjectFault(Fault{Kind: FaultBitFlip, Port: 0, Seed: 42})
	flipsSeen := 0
	for i := 0; i < 50; i++ {
		d.SendExternal(0, testFrame(64), 0)
	}
	st := d.Status()
	flipsSeen = int(st["port0.rx.bit_flips"])
	if flipsSeen != 50 {
		t.Fatalf("bit flips = %d, want 50", flipsSeen)
	}
	// Some corrupted frames will fail parse/table lookup and be dropped;
	// with seed 42 at least one frame must differ from the clean output.
	if st["target.parser.reject"]+st["dataplane.dropped"] == 0 {
		t.Log("all corrupted frames still forwarded (possible but unlikely); checking bytes")
	}
}

func TestQueueStuckFault(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	d.InjectFault(Fault{Kind: FaultQueueStuck, Port: 1})
	for i := 0; i < 200; i++ {
		d.SendExternal(0, testFrame(64), 0)
	}
	if got := len(d.Captures(1)); got != 0 {
		t.Fatalf("stuck queue emitted %d frames", got)
	}
	if occ := d.QueueOccupancy(1); occ != 128 {
		t.Fatalf("queue occupancy = %d, want full (128)", occ)
	}
	if d.Status()["port1.tx.queue_drops"] != 72 {
		t.Fatalf("queue drops = %d, want 72", d.Status()["port1.tx.queue_drops"])
	}
}

// TestQueueStuckDrainsOnClear: frames frozen in a stuck queue are not
// lost — ClearFaults releases them through normal TX serialization in
// arrival order, starting at the clear time, and occupancy returns to
// zero. Only overflow beyond the queue depth is dropped (and counted).
func TestQueueStuckDrainsOnClear(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	d.InjectFault(Fault{Kind: FaultQueueStuck, Port: 1})
	const sent = 200 // QueueDepth (128) frozen + 72 tail-dropped
	for i := 0; i < sent; i++ {
		d.SendExternal(0, testFrame(64), time.Duration(i)*time.Microsecond)
	}
	if got := len(d.Captures(1)); got != 0 {
		t.Fatalf("stuck queue emitted %d frames before clear", got)
	}
	clearAt := d.Now()
	d.ClearFaults()
	caps := d.Captures(1)
	if len(caps) != 128 {
		t.Fatalf("drained %d frames, want 128 (queue depth)", len(caps))
	}
	for i, c := range caps {
		if c.At <= clearAt {
			t.Fatalf("frame %d transmitted at %v, before clear at %v", i, c.At, clearAt)
		}
		if i > 0 && c.At <= caps[i-1].At {
			t.Fatalf("drain not serialized: frame %d at %v after frame %d at %v",
				i, c.At, i-1, caps[i-1].At)
		}
	}
	if occ := d.QueueOccupancy(1); occ != 0 {
		t.Fatalf("queue occupancy after clear = %d, want 0", occ)
	}
	st := d.Status()
	if st["port1.tx.queue_drops"] != sent-128 {
		t.Fatalf("queue drops = %d, want %d", st["port1.tx.queue_drops"], sent-128)
	}
	if st["port1.tx.frames"] != 128 {
		t.Fatalf("tx frames = %d, want 128", st["port1.tx.frames"])
	}
	// The port is healthy again: new traffic flows immediately.
	d.SendExternal(0, testFrame(64), d.Now())
	if got := len(d.Captures(1)); got != 1 {
		t.Fatalf("post-clear traffic: %d captures, want 1", got)
	}
}

func TestQueueOverflowUnderBurst(t *testing.T) {
	// Two ingress ports flooding one egress port at line rate must
	// eventually overflow the output queue.
	prog, err := compile.Compile(p4test.Router)
	if err != nil {
		t.Fatal(err)
	}
	tg := target.NewReference()
	if err := tg.Load(prog); err != nil {
		t.Fatal(err)
	}
	tg.InstallEntry(dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(1, 9)},
	})
	d, err := New(Config{Target: tg, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	frame := testFrame(1400)
	wire := d.wireTime(len(frame))
	// Send two frames per wire-time slot (2:1 oversubscription).
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * wire
		d.SendExternal(0, frame, at)
		d.SendExternal(2, frame, at)
	}
	drops := d.Status()["port1.tx.queue_drops"]
	if drops == 0 {
		t.Fatal("2:1 oversubscription never dropped")
	}
	got := len(d.Captures(1))
	if got+int(drops) != 400 {
		t.Fatalf("tx %d + drops %d != 400", got, drops)
	}
}

func TestInternalInjectionBypassesMAC(t *testing.T) {
	// The defining capability: with the ingress port down, external frames
	// are lost but internal injection still exercises the data plane.
	d := newRouterDevice(t, target.NewReference())
	d.InjectFault(Fault{Kind: FaultPortDown, Port: 0})
	frame := testFrame(64)
	d.SendExternal(0, frame, 0)
	res := d.InjectInternal(frame, 0, 0, true)
	if res.Dropped() {
		t.Fatal("internal injection blocked by MAC fault")
	}
	if res.Outputs[0].Port != 1 {
		t.Fatalf("egress = %d", res.Outputs[0].Port)
	}
	if len(res.Trace.ParserPath) == 0 {
		t.Fatal("internal injection returned no trace")
	}
}

func TestTapOrdering(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	var events []TapPoint
	for _, p := range []TapPoint{TapMACIn, TapDataplaneIn, TapDataplaneOut, TapMACOut} {
		p := p
		d.Tap(p, func(ev TapEvent) { events = append(events, p) })
	}
	d.SendExternal(0, testFrame(64), 0)
	want := []TapPoint{TapMACIn, TapDataplaneIn, TapDataplaneOut, TapMACOut}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestTapSeesDrops(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	var dropEvents int
	d.Tap(TapDataplaneOut, func(ev TapEvent) {
		if ev.Data == nil && ev.Result != nil && ev.Result.Dropped() {
			dropEvents++
		}
	})
	bad := testFrame(64)
	bad[14] = 0x65 // parser reject
	d.SendExternal(0, bad, 0)
	if dropEvents != 1 {
		t.Fatalf("drop events = %d", dropEvents)
	}
	if len(d.Captures(1)) != 0 {
		t.Fatal("rejected frame escaped")
	}
}

func TestStatusIncludesTarget(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	d.SendExternal(0, testFrame(64), 0)
	st := d.Status()
	if st["target.parser.accept"] != 1 {
		t.Fatalf("target counters not merged: %v", st)
	}
	if st["port0.rx.frames"] != 1 || st["port1.tx.frames"] != 1 {
		t.Fatalf("port counters: %v", st)
	}
}

func TestBadPortArguments(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	if err := d.SendExternal(9, testFrame(64), 0); err == nil {
		t.Error("send to port 9 should fail")
	}
	if err := d.InjectFault(Fault{Kind: FaultPortDown, Port: -1}); err == nil {
		t.Error("fault on port -1 should fail")
	}
	if d.Captures(77) != nil {
		t.Error("captures on bad port should be nil")
	}
	if d.LinkUp(99) {
		t.Error("bad port cannot be up")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil target should fail")
	}
	if _, err := New(Config{Target: target.NewReference()}); err == nil {
		t.Error("unloaded target should fail")
	}
}

func BenchmarkDeviceForward(b *testing.B) {
	d := newRouterDevice(b, target.NewReference())
	frame := testFrame(64)
	wire := d.wireTime(len(frame))
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SendExternal(0, frame, time.Duration(i)*wire)
		if i%1024 == 0 {
			d.Captures(1)
			d.ReleaseCaptures(1)
		}
	}
}

// TestTapReentrantInjection guards the result-staging path: a tap
// callback that synchronously injects a follow-up packet must not
// clobber the Result struct the outer injection returns. (The nested
// packet here is parser-rejected, so without depth-indexed staging the
// outer result would flip to Dropped.)
func TestTapReentrantInjection(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	bad := testFrame(64)
	bad[14] = 0x65 // parser reject
	reentered := false
	d.Tap(TapDataplaneOut, func(ev TapEvent) {
		if !reentered {
			reentered = true
			if nested := d.InjectInternal(bad, 0, 0, false); !nested.Dropped() {
				t.Error("nested bad frame should drop")
			}
		}
	})
	res := d.InjectInternal(testFrame(64), 0, 0, false)
	if !reentered {
		t.Fatal("tap never fired")
	}
	if res.Dropped() {
		t.Fatal("outer result clobbered by nested injection")
	}
	if res.Outputs[0].Port != 1 {
		t.Fatalf("outer egress = %d, want 1", res.Outputs[0].Port)
	}
}
