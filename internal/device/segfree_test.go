package device

import (
	"testing"
	"time"

	"netdebug/internal/target"
)

// drainOnce sends a burst and drains port 1 without releasing, leaving
// one more borrowed segment on the port.
func drainOnce(t *testing.T, d *Device, frames [][]byte) {
	t.Helper()
	if err := d.SendExternalBurst(0, frames, d.Now(), time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if caps := d.Captures(1); len(caps) != len(frames) {
		t.Fatalf("%d captures, want %d", len(caps), len(frames))
	}
}

// TestSegmentReleaseToWrongPortRejected: a segment whose home port does
// not match the releasing port is dropped (and counted) instead of
// recycled — the guard against corrupted borrow bookkeeping handing one
// port's buffer to another mid-read.
func TestSegmentReleaseToWrongPortRejected(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	frames := [][]byte{testFrame(64), testFrame(64)}
	drainOnce(t, d, frames)

	// Corrupt the borrow bookkeeping: the segment claims another home.
	if len(d.ports[1].borrowed) != 1 {
		t.Fatalf("borrowed = %d, want 1", len(d.ports[1].borrowed))
	}
	d.ports[1].borrowed[0].home = 3
	d.ReleaseCaptures(1)

	if got := d.Counters.Counter("capture.segment_home_mismatch").Value(); got != 1 {
		t.Fatalf("mismatch counter = %d, want 1", got)
	}
	if len(d.ports[1].segFree) != 0 || len(d.segSpill) != 0 {
		t.Fatalf("rejected segment was recycled: port free %d, spill %d",
			len(d.ports[1].segFree), len(d.segSpill))
	}
	if len(d.ports[1].borrowed) != 0 {
		t.Fatalf("borrow list not cleared: %d", len(d.ports[1].borrowed))
	}

	// The port keeps working: a fresh cycle recycles normally.
	drainOnce(t, d, frames)
	d.ReleaseCaptures(1)
	if len(d.ports[1].segFree) != 1 {
		t.Fatalf("port free list = %d after clean cycle, want 1", len(d.ports[1].segFree))
	}
}

// TestSegmentOverflowSpillsToDevice: releasing more segments than the
// per-port free list holds spills the excess to the device-level
// spillway, and later grabs drain the port list first, then the
// spillway, before allocating.
func TestSegmentOverflowSpillsToDevice(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	frames := [][]byte{testFrame(64)}
	const cycles = portSegFreeCap + 2

	// Accumulate cycles borrowed segments, then release them in one call.
	for i := 0; i < cycles; i++ {
		drainOnce(t, d, frames)
	}
	if len(d.ports[1].borrowed) != cycles {
		t.Fatalf("borrowed = %d, want %d", len(d.ports[1].borrowed), cycles)
	}
	d.ReleaseCaptures(1)
	if got := len(d.ports[1].segFree); got != portSegFreeCap {
		t.Fatalf("port free list = %d, want the %d cap", got, portSegFreeCap)
	}
	if got := len(d.segSpill); got != 2 {
		t.Fatalf("spillway = %d, want the 2 overflow segments", got)
	}

	// Re-borrowing drains the port list and then the spillway dry before
	// any segment is newly allocated.
	for i := 0; i < cycles; i++ {
		drainOnce(t, d, frames)
	}
	if len(d.ports[1].segFree) != 0 || len(d.segSpill) != 0 {
		t.Fatalf("grabs left recycled segments idle: port free %d, spill %d",
			len(d.ports[1].segFree), len(d.segSpill))
	}
	d.ReleaseCaptures(1)
}

// TestSegmentReleaseAcrossPortDown: captures borrowed before a port-down
// fault still release cleanly while the port is down, and the recycled
// segments serve the port after the fault clears.
func TestSegmentReleaseAcrossPortDown(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	frames := [][]byte{testFrame(64), testFrame(64), testFrame(64)}
	drainOnce(t, d, frames)

	if err := d.InjectFault(Fault{Kind: FaultPortDown, Port: 1}); err != nil {
		t.Fatal(err)
	}
	d.ReleaseCaptures(1)
	if len(d.ports[1].borrowed) != 0 || len(d.ports[1].segFree) != 1 {
		t.Fatalf("release across port-down: borrowed %d, free %d",
			len(d.ports[1].borrowed), len(d.ports[1].segFree))
	}

	// While the link is down nothing egresses, so nothing accumulates.
	if err := d.SendExternalBurst(0, frames, d.Now(), time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if caps := d.Captures(1); caps != nil {
		t.Fatalf("captures on a downed port: %d", len(caps))
	}

	d.ClearFaults()
	drainOnce(t, d, frames)
	d.ReleaseCaptures(1)
	if len(d.ports[1].segFree) != 1 {
		t.Fatalf("post-fault cycle did not reuse the recycled segment: free %d",
			len(d.ports[1].segFree))
	}
}
