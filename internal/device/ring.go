package device

import "time"

// The capture ring gives the TX capture store borrow semantics instead of
// ownership-by-copy. While capture is on, enqueue appends each transmitted
// frame's bytes into the port's accumulating segment — one contiguous slab
// plus per-frame metadata — so the per-frame cost is an amortized slab
// append, not a fresh allocation. Captures drains by materializing
// CapturedFrame views into the slab (the slab can no longer move once the
// segment stops accumulating) and handing the segment to the port's
// borrowed list; the caller reads the frames in place and returns them
// with ReleaseCaptures, which recycles the segment — slab, metadata and
// frame headers — into the port's own bounded free list, overflowing into
// a device-level spillway. Per-port recycling keeps a busy port's grown
// slabs cycling back to that port (a segment sized by an 8K-frame drain is
// not handed to a port capturing single frames), while the spillway lets
// idle ports' segments serve busy ones. In steady state the burst path
// therefore runs at zero allocations per frame with capture retained.
//
// The legacy copying store (Config.CopyCaptures) owns every frame outright
// and needs no release; it is kept as the differential oracle for the ring.

// capMeta locates one captured frame inside its segment's slab.
type capMeta struct {
	off, n int
	at     time.Duration
}

// capSegment is one reusable capture buffer: frames accumulate into slab
// while the segment is attached to a port, and frames[] is materialized
// once at drain time, when the slab is final. home is the port the
// segment was last attached to — the only port whose ReleaseCaptures may
// recycle it.
type capSegment struct {
	slab   []byte
	meta   []capMeta
	frames []CapturedFrame
	home   int
}

// portSegFreeCap bounds a port's own free list; releases beyond it spill
// to the device-level spillway.
const portSegFreeCap = 8

// grabSegment returns the port's accumulating segment, attaching one from
// the port's free list, then the device spillway, then a fresh one.
func (d *Device) grabSegment(p *portState) *capSegment {
	if p.seg != nil {
		return p.seg
	}
	if n := len(p.segFree); n > 0 {
		p.seg = p.segFree[n-1]
		p.segFree[n-1] = nil
		p.segFree = p.segFree[:n-1]
	} else if n := len(d.segSpill); n > 0 {
		p.seg = d.segSpill[n-1]
		d.segSpill[n-1] = nil
		d.segSpill = d.segSpill[:n-1]
	} else {
		p.seg = &capSegment{}
	}
	p.seg.home = p.idx
	return p.seg
}

// capture retains one transmitted frame. Ring mode appends into the
// port's segment; legacy mode (Config.CopyCaptures) makes an owned copy
// per frame, the pre-ring behaviour kept as the differential oracle.
func (d *Device) capture(p *portState, data []byte, txDone time.Duration) {
	if d.cfg.CopyCaptures {
		p.captures = append(p.captures, CapturedFrame{
			Data: append([]byte(nil), data...),
			At:   txDone,
		})
		return
	}
	seg := d.grabSegment(p)
	off := len(seg.slab)
	seg.slab = append(seg.slab, data...)
	seg.meta = append(seg.meta, capMeta{off: off, n: len(data), at: txDone})
}

// Captures drains and returns the frames transmitted on a port since the
// last call — what an external tester's capture port sees. In ring mode
// (the default) the returned frames are views into a capture segment
// borrowed from the device: they stay valid until ReleaseCaptures(port),
// which recycles the backing memory. Callers that need frames beyond
// that point must copy them. With Config.CopyCaptures the frames are
// owned copies and never need releasing.
func (d *Device) Captures(port int) []CapturedFrame {
	if port < 0 || port >= len(d.ports) {
		return nil
	}
	p := d.ports[port]
	if d.cfg.CopyCaptures {
		out := p.captures
		p.captures = nil
		return out
	}
	seg := p.seg
	if seg == nil || len(seg.meta) == 0 {
		return nil
	}
	p.seg = nil
	// Materialize the frame views only now: while the segment was
	// accumulating, slab appends could move the backing array, so
	// subslices taken at capture time would dangle.
	seg.frames = seg.frames[:0]
	for _, m := range seg.meta {
		seg.frames = append(seg.frames, CapturedFrame{
			Data: seg.slab[m.off : m.off+m.n : m.off+m.n],
			At:   m.at,
		})
	}
	p.borrowed = append(p.borrowed, seg)
	return seg.frames
}

// ReleaseCaptures returns every capture slice previously drained from the
// port back to the device, recycling the backing segments. All frames
// obtained from Captures(port) — including their Data bytes — are invalid
// afterwards. It is a no-op for out-of-range ports and in CopyCaptures
// mode, so release calls are always safe.
func (d *Device) ReleaseCaptures(port int) {
	if port < 0 || port >= len(d.ports) {
		return
	}
	p := d.ports[port]
	for i, seg := range p.borrowed {
		p.borrowed[i] = nil
		if seg.home != p.idx {
			// A segment can only come home to the port that grabbed it;
			// anything else indicates corrupted borrow bookkeeping, so
			// drop the segment rather than recycle a buffer another port
			// may still be reading through.
			d.cSegHomeMismatch.Inc()
			continue
		}
		seg.slab = seg.slab[:0]
		seg.meta = seg.meta[:0]
		seg.frames = seg.frames[:0]
		if len(p.segFree) < portSegFreeCap {
			p.segFree = append(p.segFree, seg)
		} else {
			d.segSpill = append(d.segSpill, seg)
		}
	}
	p.borrowed = p.borrowed[:0]
}
