package device

// SendExternalBurst must be behaviourally equivalent to one SendExternal
// call per frame: same captures (data and timestamps), same counters,
// same tap event sequence, same fault handling.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"netdebug/internal/target"
)

// burstFrames mixes forwardable and malformed frames.
func burstFrames(n int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		f := testFrame(26 + i)
		if i%5 == 4 {
			f[14] = 0x65 // malformed version: parser reject on reference
		}
		out = append(out, f)
	}
	return out
}

// runPair drives the same schedule through a sequential and a burst
// device and returns both.
func runPair(t *testing.T, n int, prep func(d *Device)) (seq, burst *Device) {
	t.Helper()
	return runPairOn(t, n, prep, target.NewReference, target.NewReference)
}

func runPairOn(t *testing.T, n int, prep func(d *Device), mkSeq, mkBurst func() target.Target) (seq, burst *Device) {
	t.Helper()
	frames := burstFrames(n)
	interval := 800 * time.Nanosecond
	seq = newRouterDevice(t, mkSeq())
	prep(seq)
	for i, f := range frames {
		if err := seq.SendExternal(0, f, time.Duration(i)*interval); err != nil {
			t.Fatal(err)
		}
	}
	burst = newRouterDevice(t, mkBurst())
	prep(burst)
	if err := burst.SendExternalBurst(0, frames, 0, interval); err != nil {
		t.Fatal(err)
	}
	return seq, burst
}

// TestBurstMatchesSequentialTofino re-runs the burst-equivalence check
// on the tofino backend, whose latency model and table hooks must not
// disturb the device contract.
func TestBurstMatchesSequentialTofino(t *testing.T) {
	mk := func() target.Target { return target.NewTofino(target.DefaultTofinoErrata()) }
	seq, burst := runPairOn(t, 20, func(*Device) {}, mk, mk)
	assertSameCaptures(t, seq, burst, 1)
	ss, sb := seq.Status(), burst.Status()
	for k, v := range ss {
		if sb[k] != v {
			t.Errorf("status %q: %d (seq) vs %d (burst)", k, v, sb[k])
		}
	}
}

// TestBurstMatchesSequentialEBPF re-runs the burst-equivalence check on
// the eBPF backend, whose dynamic latency model (program length plus
// installed mask sections) must hold steady across a burst.
func TestBurstMatchesSequentialEBPF(t *testing.T) {
	mk := func() target.Target { return target.NewEBPF(target.DefaultEBPFErrata()) }
	seq, burst := runPairOn(t, 20, func(*Device) {}, mk, mk)
	assertSameCaptures(t, seq, burst, 1)
	ss, sb := seq.Status(), burst.Status()
	for k, v := range ss {
		if sb[k] != v {
			t.Errorf("status %q: %d (seq) vs %d (burst)", k, v, sb[k])
		}
	}
}

func assertSameCaptures(t *testing.T, seq, burst *Device, port int) {
	t.Helper()
	cs, cb := seq.Captures(port), burst.Captures(port)
	if len(cs) != len(cb) {
		t.Fatalf("port %d: %d sequential captures, %d burst captures", port, len(cs), len(cb))
	}
	for i := range cs {
		if !bytes.Equal(cs[i].Data, cb[i].Data) {
			t.Errorf("port %d capture %d: data differs", port, i)
		}
		if cs[i].At != cb[i].At {
			t.Errorf("port %d capture %d: at %v (seq) vs %v (burst)", port, i, cs[i].At, cb[i].At)
		}
	}
}

func TestBurstMatchesSequential(t *testing.T) {
	seq, burst := runPair(t, 20, func(*Device) {})
	assertSameCaptures(t, seq, burst, 1)
	ss, sb := seq.Status(), burst.Status()
	for k, v := range ss {
		if sb[k] != v {
			t.Errorf("status %q: %d (seq) vs %d (burst)", k, v, sb[k])
		}
	}
}

func TestBurstTapOrderMatchesSequential(t *testing.T) {
	record := func(d *Device) *[]string {
		var events []string
		for _, p := range []TapPoint{TapMACIn, TapDataplaneIn, TapDataplaneOut, TapMACOut} {
			p := p
			d.Tap(p, func(ev TapEvent) {
				events = append(events, fmt.Sprintf("%s port=%d at=%d len=%d", ev.Point, ev.Port, ev.At, len(ev.Data)))
			})
		}
		return &events
	}
	frames := burstFrames(12)
	interval := time.Microsecond
	seq := newRouterDevice(t, target.NewReference())
	seqEvents := record(seq)
	for i, f := range frames {
		if err := seq.SendExternal(0, f, time.Duration(i)*interval); err != nil {
			t.Fatal(err)
		}
	}
	burst := newRouterDevice(t, target.NewReference())
	burstEvents := record(burst)
	if err := burst.SendExternalBurst(0, frames, 0, interval); err != nil {
		t.Fatal(err)
	}
	if len(*seqEvents) != len(*burstEvents) {
		t.Fatalf("%d sequential tap events, %d burst", len(*seqEvents), len(*burstEvents))
	}
	for i := range *seqEvents {
		if (*seqEvents)[i] != (*burstEvents)[i] {
			t.Errorf("event %d: %q (seq) vs %q (burst)", i, (*seqEvents)[i], (*burstEvents)[i])
		}
	}
}

func TestBurstFaults(t *testing.T) {
	t.Run("port down loses everything silently", func(t *testing.T) {
		seq, burst := runPair(t, 10, func(d *Device) {
			d.InjectFault(Fault{Kind: FaultPortDown, Port: 0})
		})
		assertSameCaptures(t, seq, burst, 1)
		if got := burst.Status()["port0.rx.link_down"]; got != 10 {
			t.Errorf("rx.link_down = %d, want 10", got)
		}
	})
	t.Run("bit flips applied per frame", func(t *testing.T) {
		seq, burst := runPair(t, 10, func(d *Device) {
			d.InjectFault(Fault{Kind: FaultBitFlip, Port: 0, Seed: 7})
		})
		// Same seed -> same flips -> identical captures.
		assertSameCaptures(t, seq, burst, 1)
		if got := burst.Status()["port0.rx.bit_flips"]; got != 10 {
			t.Errorf("rx.bit_flips = %d, want 10", got)
		}
	})
}

func TestBurstBadPort(t *testing.T) {
	d := newRouterDevice(t, target.NewReference())
	if err := d.SendExternalBurst(9, burstFrames(1), 0, 0); err == nil {
		t.Fatal("burst to nonexistent port must error")
	}
}

func BenchmarkDeviceForwardBurst(b *testing.B) {
	d := newRouterDevice(b, target.NewReference())
	const n = 64
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = testFrame(26)
	}
	interval := 700 * time.Nanosecond
	b.SetBytes(int64(n * len(frames[0])))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.SendExternalBurst(0, frames, d.Now(), interval); err != nil {
			b.Fatal(err)
		}
		d.Captures(1)
		d.ReleaseCaptures(1)
	}
}
