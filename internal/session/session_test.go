package session

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/core"
	"netdebug/internal/dataplane"
	"netdebug/internal/faultplan"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

var (
	srcMAC = packet.MAC{2, 0, 0, 0, 0, 0xa}
	gwMAC  = packet.MAC{2, 0, 0, 0, 0xff, 1}
	srcIP  = packet.IPv4Addr{10, 0, 0, 1}
	dstIP  = packet.IPv4Addr{10, 0, 1, 2}
)

func routerHostConfig() HostConfig {
	return HostConfig{
		Source: p4test.Router,
		Target: "reference",
		Baseline: []dataplane.Entry{{
			Table:  "ipv4_lpm",
			Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
			Action: "ipv4_forward",
			Args:   []bitfield.Value{bitfield.FromBytes(gwMAC[:]), bitfield.New(1, 9)},
		}},
		CallTimeout: time.Second,
		Retry:       RetrySpec{MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond},
	}
}

func probeFrame() []byte {
	return packet.BuildUDPv4(srcMAC, gwMAC, srcIP, dstIP, 40000, 53, make([]byte, 26))
}

func routerTestSpec(count int) core.TestSpec {
	return core.TestSpec{
		Name: "fwd",
		Gen: core.GenSpec{Streams: []core.StreamSpec{{
			Name: "probe", Template: probeFrame(), Count: count, RatePPS: 1e6,
		}}},
		Check: core.CheckSpec{Rules: []core.Rule{{
			Name: "to-port-1", Stream: "probe", ExpectPort: 1,
		}}},
	}
}

// churnySpec is a session with churn, a fault plan covering interface
// and control-plane faults, and a probe leg — the full vocabulary.
func churnySpec(name string) SessionSpec {
	return SessionSpec{
		Name:   name,
		Spec:   routerTestSpec(40),
		Rounds: 4,
		Plan: faultplan.Plan{Events: []faultplan.Event{
			{At: 0, Kind: faultplan.InstallFlap, Count: 2},
			{At: 50 * time.Microsecond, Kind: faultplan.QueueStuck, Port: 1},
			{At: 100 * time.Microsecond, Kind: faultplan.ClearFaults},
			{At: 100 * time.Microsecond, Kind: faultplan.MapFull, Table: "ipv4_lpm"},
			{At: 150 * time.Microsecond, Kind: faultplan.MapFullClear, Table: "ipv4_lpm"},
		}},
		Churn:    &ChurnSpec{Table: "ipv4_lpm", Installs: 6, Deletes: 3},
		Probe:    &ProbeSpec{Port: 0, Frame: probeFrame(), Count: 8},
		SLOBound: time.Millisecond,
	}
}

func quietSpec(name string) SessionSpec {
	return SessionSpec{
		Name:     name,
		Spec:     routerTestSpec(25),
		Rounds:   2,
		Churn:    &ChurnSpec{Table: "ipv4_lpm", Installs: 3, Deletes: 3},
		SLOBound: time.Millisecond,
	}
}

func batchSpecs() []SessionSpec {
	return []SessionSpec{
		churnySpec("alpha"), quietSpec("beta"), churnySpec("gamma"),
		quietSpec("delta"), churnySpec("epsilon"), quietSpec("zeta"),
	}
}

func recordBatch(t *testing.T, hosts int, specs []SessionSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	m, err := NewManager(routerHostConfig(), hosts, NewRecorder(&buf))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	results, err := m.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("session %d returned no result", i)
		}
	}
	return buf.Bytes()
}

// TestStreamDeterministicAcrossConcurrency is the heart of the
// record/replay contract: the same batch of sessions produces a
// byte-identical JSONL stream on a 1-host pool (fully serialized, warm
// hosts) and a 4-host pool (concurrent, fresh hosts).
func TestStreamDeterministicAcrossConcurrency(t *testing.T) {
	specs := batchSpecs()
	one := recordBatch(t, 1, specs)
	four := recordBatch(t, 4, specs)
	if len(one) == 0 {
		t.Fatal("empty stream")
	}
	if !bytes.Equal(one, four) {
		l1 := bytes.Split(one, []byte("\n"))
		l4 := bytes.Split(four, []byte("\n"))
		for i := 0; i < len(l1) && i < len(l4); i++ {
			if !bytes.Equal(l1[i], l4[i]) {
				t.Fatalf("streams diverge at line %d:\n 1-host: %s\n 4-host: %s", i+1, l1[i], l4[i])
			}
		}
		t.Fatalf("stream lengths differ: %d vs %d lines", len(l1), len(l4))
	}
}

// TestReplayByteIdentical re-executes a recorded stream from nothing
// but its own bytes and asserts the re-recorded stream matches exactly.
func TestReplayByteIdentical(t *testing.T) {
	stream := recordBatch(t, 2, batchSpecs())
	if err := ReplayCheck(stream); err != nil {
		t.Fatal(err)
	}
}

// TestReplayRejectsUnknownSchema guards the versioning contract.
func TestReplayRejectsUnknownSchema(t *testing.T) {
	stream := recordBatch(t, 1, []SessionSpec{quietSpec("solo")})
	mangled := bytes.Replace(stream, []byte(`{"schema":1,`), []byte(`{"schema":9,`), 1)
	if _, err := Replay(mangled); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("mangled schema replayed: %v", err)
	}
}

// TestSessionDegradation: a session whose plan downs the probe ingress
// port and marks the churn table's map full completes with a failing
// verdict and records the degradation, instead of erroring out.
func TestSessionDegradation(t *testing.T) {
	m, err := NewManager(routerHostConfig(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res, err := m.Run(SessionSpec{
		Name:   "degraded",
		Spec:   routerTestSpec(30),
		Rounds: 2,
		Plan: faultplan.Plan{Events: []faultplan.Event{
			{At: 0, Kind: faultplan.PortDown, Port: 0},
			{At: 0, Kind: faultplan.MapFull, Table: "ipv4_lpm"},
		}},
		Churn: &ChurnSpec{Table: "ipv4_lpm", Installs: 4, Deletes: 2},
		Probe: &ProbeSpec{Port: 0, Frame: probeFrame(), Count: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatal("degraded session reported pass")
	}
	var sawChurnDenial, sawProbeLoss, sawPassingReport bool
	for _, rec := range res.Records {
		switch rec.Type {
		case "churn":
			if rec.Churn.DeniedInstalls == 4 && rec.Churn.Installed == 0 {
				sawChurnDenial = true
			}
		case "probe":
			if rec.Probe.RxLost == 5 && len(rec.Probe.Captured) == 0 {
				sawProbeLoss = true
			}
		case "report":
			// Internal injection bypasses the downed MAC — the paper's
			// defining capability — so validation itself still passes.
			if rec.Report != nil && rec.Report.Pass {
				sawPassingReport = true
			}
		}
	}
	if !sawChurnDenial || !sawProbeLoss || !sawPassingReport {
		t.Fatalf("degradation not fully recorded: churn=%v probe=%v report=%v",
			sawChurnDenial, sawProbeLoss, sawPassingReport)
	}
}

// TestFlapAbsorbedByRetry: an install-flap shorter than the host's
// retry budget is invisible to the churn driver (no denied writes, the
// session passes) but still visible in the round's denial breakdown.
func TestFlapAbsorbedByRetry(t *testing.T) {
	m, err := NewManager(routerHostConfig(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res, err := m.Run(SessionSpec{
		Name:   "flappy",
		Spec:   routerTestSpec(20),
		Rounds: 2,
		Plan: faultplan.Plan{Events: []faultplan.Event{
			{At: 0, Kind: faultplan.InstallFlap, Count: 2},
		}},
		Churn:    &ChurnSpec{Table: "ipv4_lpm", Installs: 3, Deletes: 1},
		SLOBound: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("flap within retry budget failed the session: %+v", res)
	}
	round0 := res.Records[2] // session, fault, churn
	if round0.Type != "churn" {
		t.Fatalf("record layout changed: %+v", round0)
	}
	if round0.Churn.DeniedInstalls != 0 || round0.Churn.Denials["install-flap"] != 2 {
		t.Fatalf("flap absorption not recorded: %+v", round0.Churn)
	}
}

// TestQueueStuckVisibleThenDrained: probes frozen by a stuck egress
// queue show up as queue occupancy, and the scheduled clear releases
// them into a later round's captures.
func TestQueueStuckVisibleThenDrained(t *testing.T) {
	m, err := NewManager(routerHostConfig(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res, err := m.Run(SessionSpec{
		Name:   "stuck",
		Spec:   routerTestSpec(10),
		Rounds: 3,
		Plan: faultplan.Plan{Events: []faultplan.Event{
			{At: 0, Kind: faultplan.QueueStuck, Port: 1},
			{At: 20 * time.Microsecond, Kind: faultplan.ClearFaults},
		}},
		Probe: &ProbeSpec{Port: 0, Frame: probeFrame(), Count: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	var frozen, drained bool
	for _, rec := range res.Records {
		if rec.Type != "probe" {
			continue
		}
		if rec.Probe.QueueOccupancy["1"] > 0 {
			frozen = true
		}
		if frozen && rec.Probe.Captured["1"] > rec.Probe.Sent {
			drained = true // this round's captures include released backlog
		}
	}
	if !frozen || !drained {
		t.Fatalf("stuck/drain cycle not observed: frozen=%v drained=%v\n%+v", frozen, drained, res.Records)
	}
}

// TestDrainGraceful: Drain lets in-flight sessions finish and refuses
// new ones.
func TestDrainGraceful(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	m, err := NewManager(routerHostConfig(), 2, rec)
	if err != nil {
		t.Fatal(err)
	}
	const inFlight = 4
	var wg sync.WaitGroup
	results := make([]*Result, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = m.Run(quietSpec("drain"))
		}(i)
	}
	// Let the workers reserve their slots before draining.
	for deadline := time.Now().Add(5 * time.Second); ; {
		rec.mu.Lock()
		reserved := rec.nextIdx
		rec.mu.Unlock()
		if reserved == inFlight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sessions never reserved slots")
		}
		time.Sleep(time.Millisecond)
	}
	m.Drain()
	wg.Wait()
	for i, res := range results {
		if res == nil {
			t.Fatalf("in-flight session %d was not completed by drain", i)
		}
	}
	if _, err := m.Run(quietSpec("late")); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain run: %v, want ErrDraining", err)
	}
	if _, err := m.RunAll(batchSpecs()); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain batch: %v, want ErrDraining", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if recs, err := ParseStream(buf.Bytes()); err != nil || len(recs) == 0 {
		t.Fatalf("drained stream unreadable: %d recs, %v", len(recs), err)
	}
}

// TestSpecErrorsRefuseSession: hard spec errors are reported up front
// and leave no partial block in the stream.
func TestSpecErrorsRefuseSession(t *testing.T) {
	var buf bytes.Buffer
	m, err := NewManager(routerHostConfig(), 1, NewRecorder(&buf))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Run(SessionSpec{
		Name:  "bad-churn",
		Spec:  routerTestSpec(5),
		Churn: &ChurnSpec{Table: "ghost", Installs: 1},
	}); err == nil {
		t.Fatal("unknown churn table accepted")
	}
	if _, err := m.Run(SessionSpec{
		Name:  "bad-probe",
		Spec:  routerTestSpec(5),
		Probe: &ProbeSpec{Port: 99, Frame: probeFrame(), Count: 1},
	}); err == nil {
		t.Fatal("out-of-range probe port accepted")
	}
	// A valid session after refusals still lands as block 3 of the
	// stream (refused sessions consume their slot but write nothing).
	if _, err := m.Run(quietSpec("ok")); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseStream(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].Type != "session" || recs[0].Session != "ok" {
		t.Fatalf("stream after refusals: %+v", recs)
	}
}

func BenchmarkSessionThroughput(b *testing.B) {
	m, err := NewManager(routerHostConfig(), 2, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	spec := SessionSpec{
		Name:   "bench",
		Spec:   routerTestSpec(64),
		Rounds: 2,
		Churn:  &ChurnSpec{Table: "ipv4_lpm", Installs: 4, Deletes: 4},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}
