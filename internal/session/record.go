package session

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"netdebug/internal/core"
)

// SchemaVersion is the version stamped on every emitted record. Readers
// must reject records with a version they do not understand.
const SchemaVersion = 1

// Record is one line of a session's versioned JSONL event stream. Field
// order is fixed by this struct, map-valued fields are marshalled with
// sorted keys (encoding/json), and no wall-clock value ever enters a
// record — together these make the byte stream of a session a pure
// function of its spec, which is what the replay harness asserts.
//
// Record types: "session" (block header, carries the gob-encoded spec
// and host config for replay), "fault" (a fault-plan event applied),
// "churn" (one round's control-plane churn), "report" (one round's
// validation report), "probe" (one round's external probe leg), "slo"
// (end-of-session latency percentiles vs bound), "end" (block footer).
type Record struct {
	Schema  int    `json:"schema"`
	Type    string `json:"type"`
	Session string `json:"session"`
	// Seq is the record's index within its session block.
	Seq   int `json:"seq"`
	Round int `json:"round,omitempty"`
	// AtNs is session-relative virtual time (device clock at emission
	// minus device clock at session start).
	AtNs    int64  `json:"at_ns,omitempty"`
	Target  string `json:"target,omitempty"`
	Program string `json:"program,omitempty"`
	// SpecB64/HostB64 carry base64(gob(SessionSpec)) and
	// base64(gob(HostConfig)) on "session" records — everything Replay
	// needs to re-execute the block on a fresh system.
	SpecB64 string       `json:"spec,omitempty"`
	HostB64 string       `json:"host,omitempty"`
	Fault   *FaultRecord `json:"fault,omitempty"`
	Churn   *ChurnRecord `json:"churn,omitempty"`
	Report  *core.Report `json:"report,omitempty"`
	Probe   *ProbeRecord `json:"probe,omitempty"`
	SLO     *SLORecord   `json:"slo,omitempty"`
	Err     string       `json:"err,omitempty"`
}

// FaultRecord is one applied fault-plan event.
type FaultRecord struct {
	Kind   string `json:"kind"`
	Port   int    `json:"port,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	Table  string `json:"table,omitempty"`
	Budget int    `json:"budget,omitempty"`
	Count  int    `json:"count,omitempty"`
}

// ChurnRecord summarizes one round of control-plane churn.
type ChurnRecord struct {
	// Installed/Deleted count writes that landed; denied writes are
	// rejected by injected control-plane faults (after any client-side
	// retry) and are the session's graceful-degradation signal.
	Installed      int `json:"installed"`
	Deleted        int `json:"deleted"`
	DeniedInstalls int `json:"denied_installs,omitempty"`
	DeniedDeletes  int `json:"denied_deletes,omitempty"`
	// Live is the driver's entry count after the round.
	Live int `json:"live"`
	// Denials breaks the round's injector rejections down by fault kind
	// (flapped-then-retried attempts count once per failed attempt).
	Denials map[string]uint64 `json:"denials,omitempty"`
}

// ProbeRecord is one round's external probe leg: what a tester on the
// device's front-panel ports observes, which is where interface faults
// (port-down, queue-stuck) become visible. All values are per-round
// deltas, never absolute counters, so they are host-history independent.
type ProbeRecord struct {
	Sent int `json:"sent"`
	// Captured maps egress port (decimal string) to frames captured
	// this round; zero-count ports are omitted.
	Captured map[string]int `json:"captured,omitempty"`
	// RxLost counts probe frames lost to a downed ingress link.
	RxLost uint64 `json:"rx_lost,omitempty"`
	// TxLost counts frames lost on egress (downed link + queue drops).
	TxLost uint64 `json:"tx_lost,omitempty"`
	// QueueOccupancy maps port to frames frozen in its stuck queue.
	QueueOccupancy map[string]int `json:"queue_occupancy,omitempty"`
}

// SLORecord is the end-of-session latency objective verdict, computed
// from the session's own histogram (every forwarded packet the device
// processed during the session, across all rounds).
type SLORecord struct {
	Count   uint64 `json:"count"`
	MeanNs  int64  `json:"mean_ns"`
	P50Ns   int64  `json:"p50_ns"`
	P99Ns   int64  `json:"p99_ns"`
	MaxNs   int64  `json:"max_ns"`
	BoundNs int64  `json:"bound_ns,omitempty"`
	Pass    bool   `json:"pass"`
}

// Recorder serializes session blocks to one JSONL stream in canonical
// order. Sessions complete concurrently, so blocks are buffered and
// flushed strictly by submission index — the stream's bytes are
// independent of worker count and completion order.
type Recorder struct {
	mu      sync.Mutex
	w       io.Writer
	pending map[int][]Record
	next    int
	nextIdx int
	err     error
}

// NewRecorder writes session blocks to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: w, pending: make(map[int][]Record)}
}

// reserve hands out the next submission index (the block's position in
// the output stream).
func (r *Recorder) reserve() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := r.nextIdx
	r.nextIdx++
	return idx
}

// reserveN hands out n consecutive submission indices, returning the
// first.
func (r *Recorder) reserveN(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := r.nextIdx
	r.nextIdx += n
	return idx
}

// commit stores a completed session block and flushes every block whose
// turn has come.
func (r *Recorder) commit(idx int, recs []Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	r.pending[idx] = recs
	for {
		block, ok := r.pending[r.next]
		if !ok {
			return nil
		}
		delete(r.pending, r.next)
		for i := range block {
			line, err := json.Marshal(&block[i])
			if err == nil {
				_, err = r.w.Write(append(line, '\n'))
			}
			if err != nil {
				r.err = fmt.Errorf("session: recording block %d: %w", r.next, err)
				return r.err
			}
		}
		r.next++
	}
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// ParseStream decodes a recorded JSONL stream, rejecting records with
// an unknown schema version.
func ParseStream(stream []byte) ([]Record, error) {
	var out []Record
	start := 0
	line := 1
	for i := 0; i <= len(stream); i++ {
		if i != len(stream) && stream[i] != '\n' {
			continue
		}
		raw := stream[start:i]
		start = i + 1
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("session: stream line %d: %w", line, err)
		}
		if rec.Schema != SchemaVersion {
			return nil, fmt.Errorf("session: stream line %d: schema %d, want %d", line, rec.Schema, SchemaVersion)
		}
		out = append(out, rec)
		line++
	}
	return out, nil
}
