// Package session turns the one-shot validation harness into a resident
// service: a Manager owns a pool of booted device/target systems
// ("hosts") and runs concurrent validation sessions over them. Each
// session is a self-contained unit — a validation workload repeated for
// a number of rounds, a fault plan scheduled against the device's
// virtual clock (package faultplan), control-plane churn
// installing/deleting table entries under traffic, an external probe
// leg, and a per-session latency histogram checked against an SLO bound
// at the end.
//
// Every session emits a versioned JSONL event stream (see Record). The
// stream is canonical: block order follows submission order, not
// completion order, and every value in a record is derived from the
// virtual clock or deterministic counter deltas — so the same specs
// produce byte-identical streams at any worker count, and Replay can
// re-execute a recorded stream on a fresh pool and assert equality.
//
// Hosts are restored between sessions (faults cleared, injected
// control-plane faults disarmed, tables cleared, baseline reinstalled,
// captures drained) so a session's stream does not depend on which host
// ran it or what ran before. The virtual clock stays warm; everything
// recorded is clock-offset independent.
//
// The CLI surface is `netdebug -resident` (the daemon) and `-replay`
// (the verifier); docs/robustness.md covers the design, and the
// determinism contract is pinned by the record/replay tests at 1, 2,
// and 8 workers.
package session

import (
	"bytes"
	"encoding/base64"
	"encoding/gob"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/control"
	"netdebug/internal/core"
	"netdebug/internal/dataplane"
	"netdebug/internal/device"
	"netdebug/internal/faultplan"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/ir"
	"netdebug/internal/stats"
	"netdebug/internal/target"
)

// RetrySpec is the gob-encodable mirror of control.RetryPolicy (which
// carries a test-seam func and so cannot travel in a recorded stream).
type RetrySpec struct {
	MaxAttempts int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// HostConfig describes one poolable device/target system.
type HostConfig struct {
	// Source is the P4 program under validation.
	Source string
	// Target selects the backend by kind name (target.ForKind).
	Target string
	// NumPorts and QueueDepth size the device (device defaults apply
	// when zero).
	NumPorts   int
	QueueDepth int
	// Baseline entries are installed at boot and restored between
	// sessions.
	Baseline []dataplane.Entry
	// CallTimeout bounds each control-channel call (0 = no deadline).
	CallTimeout time.Duration
	// Retry re-issues control calls the agent reports as transient.
	Retry RetrySpec
	// ArenaBytes is the per-host generator frame budget reserved off the
	// manager's shared arena: every host agent whose workload generation
	// fits the budget stamps its frames into one pool-wide memory region
	// (core.SharedArena); larger workloads fall back to the agent's
	// private arena. Zero selects a 256 KiB default; negative disables
	// the shared arena entirely.
	ArenaBytes int
}

// ChurnSpec drives per-round control-plane churn: Installs fresh
// entries then Deletes the oldest live ones, all through the control
// channel, every round. Keys are derived from a session-local counter
// with their top bit set, so churn entries never attract the probe or
// validation traffic.
type ChurnSpec struct {
	Table    string
	Installs int
	Deletes  int
}

// ProbeSpec adds an external probe leg to every round: Count copies of
// Frame are sent to external port Port, and the round's probe record
// reports where they came out — the vantage point from which interface
// faults (port-down, queue-stuck) are visible.
type ProbeSpec struct {
	Port  int
	Frame []byte
	Count int
}

// SessionSpec is one validation session.
type SessionSpec struct {
	Name string
	// Spec is the validation workload executed every round.
	Spec core.TestSpec
	// Rounds repeats the workload (default 1).
	Rounds int
	// Plan schedules faults against session-relative virtual time;
	// events fire at round boundaries once the clock passes them.
	Plan faultplan.Plan
	// Churn, when non-nil, runs control-plane churn each round.
	Churn *ChurnSpec
	// Probe, when non-nil, runs the external probe leg each round.
	Probe *ProbeSpec
	// SLOBound, when nonzero, is the p99 latency bound the session's
	// histogram is checked against at the end.
	SLOBound time.Duration
}

// Result summarizes a completed session.
type Result struct {
	Name   string
	Rounds int
	// Pass means every round's validation report passed, no round
	// errored, and the SLO held.
	Pass       bool
	SLO        SLORecord
	LastReport *core.Report
	// Records is the session's event block, identical to what the
	// recorder wrote.
	Records []Record
}

// ErrDraining is returned by Run/RunAll after Drain has been called.
var ErrDraining = errors.New("session: manager is draining")

// host is one booted system in the pool.
type host struct {
	dev  *device.Device
	inj  *faultplan.Injector
	ctl  *core.Controller
	prog *ir.Program
	// onOut is the swappable dataplane-out tap sink; device taps cannot
	// be removed, so one permanent tap forwards to the current session's
	// histogram (nil between sessions).
	onOut func(ev device.TapEvent)
}

// defaultArenaBytes is the per-host shared-arena budget when
// HostConfig.ArenaBytes is zero: comfortably above the repo's session
// workloads (a few KB of frames per round) while keeping an 8-host pool
// inside one 2 MiB slab.
const defaultArenaBytes = 256 << 10

func bootHost(cfg *HostConfig, arena *core.SharedArena) (*host, error) {
	prog, err := compile.Compile(cfg.Source)
	if err != nil {
		return nil, fmt.Errorf("session: compiling program: %w", err)
	}
	tgt, err := target.ForKind(cfg.Target)
	if err != nil {
		return nil, err
	}
	if err := tgt.Load(prog); err != nil {
		return nil, fmt.Errorf("session: loading onto %s: %w", tgt.Name(), err)
	}
	inj := faultplan.Wrap(tgt)
	dev, err := device.New(device.Config{
		Target:     inj,
		NumPorts:   cfg.NumPorts,
		QueueDepth: cfg.QueueDepth,
	})
	if err != nil {
		return nil, err
	}
	h := &host{dev: dev, inj: inj, prog: prog}
	dev.Tap(device.TapDataplaneOut, func(ev device.TapEvent) {
		if h.onOut != nil {
			h.onOut(ev)
		}
	})
	ag := core.NewAgent(dev)
	if arena != nil && cfg.ArenaBytes >= 0 {
		budget := cfg.ArenaBytes
		if budget == 0 {
			budget = defaultArenaBytes
		}
		ag.UseArena(arena, budget)
	}
	h.ctl = core.Connect(ag)
	h.ctl.SetCallTimeout(cfg.CallTimeout)
	h.ctl.SetRetryPolicy(control.RetryPolicy{
		MaxAttempts: cfg.Retry.MaxAttempts,
		BaseBackoff: cfg.Retry.BaseBackoff,
		MaxBackoff:  cfg.Retry.MaxBackoff,
	})
	if err := h.ctl.InstallEntries(cfg.Baseline); err != nil {
		return nil, fmt.Errorf("session: installing baseline: %w", err)
	}
	return h, nil
}

// restore returns the host to its boot state so the next session sees
// no trace of this one. The virtual clock is deliberately left warm:
// every recorded value is clock-offset independent, and resetting it
// would make a host's history observable through time deltas.
func (h *host) restore(cfg *HostConfig) error {
	h.onOut = nil
	h.dev.ClearFaults()
	h.inj.Reset()
	for _, c := range h.prog.Controls {
		for _, t := range c.Tables {
			if err := h.ctl.ClearTable(t.Name); err != nil {
				return fmt.Errorf("session: clearing %s: %w", t.Name, err)
			}
		}
	}
	if err := h.ctl.InstallEntries(cfg.Baseline); err != nil {
		return fmt.Errorf("session: restoring baseline: %w", err)
	}
	for p := 0; p < h.dev.Config().NumPorts; p++ {
		h.dev.Captures(p)
		h.dev.ReleaseCaptures(p)
	}
	return nil
}

// Manager runs sessions over a pool of hosts.
type Manager struct {
	cfg HostConfig
	rec *Recorder
	// arena is the pool-wide frame slab: every host agent reserves its
	// ArenaBytes extent off it at boot, so concurrent sessions stamp
	// their generated frames into one memory region.
	arena    core.SharedArena
	hosts    chan *host
	all      []*host
	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup
	localIdx int // index source when no recorder is attached
}

// NewManager boots numHosts identical systems. Sessions run
// concurrently up to the pool size; excess submissions queue. The
// recorder may be nil (no stream is written) and may be shared with
// other managers (blocks interleave by global submission order).
func NewManager(cfg HostConfig, numHosts int, rec *Recorder) (*Manager, error) {
	if numHosts < 1 {
		numHosts = 1
	}
	m := &Manager{cfg: cfg, rec: rec, hosts: make(chan *host, numHosts)}
	if cfg.ArenaBytes >= 0 {
		perHost := cfg.ArenaBytes
		if perHost == 0 {
			perHost = defaultArenaBytes
		}
		// Double-size the slab so hosts replaced after a failed restore
		// can still reserve fresh extents before falling back to private
		// arenas.
		m.arena.Reset(2 * numHosts * perHost)
	}
	for i := 0; i < numHosts; i++ {
		h, err := bootHost(&m.cfg, &m.arena)
		if err != nil {
			return nil, err
		}
		m.hosts <- h
		m.all = append(m.all, h)
	}
	return m, nil
}

// reserve allocates n consecutive stream indices, refusing when
// draining.
func (m *Manager) reserve(n int) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return 0, ErrDraining
	}
	m.inflight.Add(n)
	if m.rec != nil {
		return m.rec.reserveN(n), nil
	}
	idx := m.localIdx
	m.localIdx += n
	return idx, nil
}

// Run executes one session, blocking until a host is free and the
// session completes. Safe for concurrent use; the recorded stream
// orders blocks by Run call order (as serialized by reservation).
func (m *Manager) Run(spec SessionSpec) (*Result, error) {
	idx, err := m.reserve(1)
	if err != nil {
		return nil, err
	}
	return m.runAt(idx, &spec)
}

// RunAll executes a batch of sessions concurrently over the pool and
// returns their results in spec order. The recorded stream also follows
// spec order regardless of worker interleaving. The first session error
// is returned; later sessions still run.
func (m *Manager) RunAll(specs []SessionSpec) ([]*Result, error) {
	base, err := m.reserve(len(specs))
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = m.runAt(base+i, &specs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

func (m *Manager) runAt(idx int, spec *SessionSpec) (*Result, error) {
	defer m.inflight.Done()
	h := <-m.hosts
	defer func() {
		if err := h.restore(&m.cfg); err != nil {
			// A host that cannot be restored is replaced, not returned:
			// the pool must never hand a tainted system to a session.
			if nh, bErr := bootHost(&m.cfg, &m.arena); bErr == nil {
				h.ctl.Close()
				h = nh
			}
		}
		m.hosts <- h
	}()
	recs, res, err := runSession(h, &m.cfg, spec)
	if m.rec != nil {
		if cErr := m.rec.commit(idx, recs); cErr != nil && err == nil {
			err = cErr
		}
	}
	return res, err
}

// Drain stops accepting sessions and waits for every in-flight session
// (including queued ones that already reserved a slot) to complete —
// the graceful-shutdown path of the resident service.
func (m *Manager) Drain() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	m.inflight.Wait()
}

// Close drains and releases every host.
func (m *Manager) Close() error {
	m.Drain()
	var first error
	for range m.all {
		h := <-m.hosts
		if err := h.ctl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// encodeB64 gob-encodes v to base64 for embedding in a stream record.
func encodeB64(v any) (string, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes()), nil
}

// decodeB64 reverses encodeB64.
func decodeB64(s string, v any) error {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(raw)).Decode(v)
}

// runSession executes one session on a host, returning the event block
// and the summary. Spec-level errors (bad plan, unknown churn table)
// are returned before any record is emitted; runtime degradation
// (denied writes, failing reports) is recorded and the session runs to
// completion.
func runSession(h *host, cfg *HostConfig, spec *SessionSpec) ([]Record, *Result, error) {
	rounds := spec.Rounds
	if rounds < 1 {
		rounds = 1
	}
	if err := spec.Plan.Validate(); err != nil {
		return nil, nil, err
	}
	churn, err := newChurnDriver(h.prog, spec.Churn)
	if err != nil {
		return nil, nil, err
	}
	if spec.Probe != nil {
		if spec.Probe.Port < 0 || spec.Probe.Port >= h.dev.Config().NumPorts {
			return nil, nil, fmt.Errorf("session: probe port %d out of range", spec.Probe.Port)
		}
		if len(spec.Probe.Frame) == 0 || spec.Probe.Count <= 0 {
			return nil, nil, fmt.Errorf("session: probe needs a frame and a positive count")
		}
	}
	specB64, err := encodeB64(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("session: encoding spec: %w", err)
	}
	hostB64, err := encodeB64(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("session: encoding host config: %w", err)
	}

	t0 := h.dev.Now()
	rel := func() time.Duration { return h.dev.Now() - t0 }
	sched := faultplan.NewScheduler(spec.Plan)
	hist := stats.NewHistogram()
	h.onOut = func(ev device.TapEvent) {
		if ev.Result != nil && len(ev.Data) > 0 {
			hist.Observe(ev.Result.Latency)
		}
	}
	defer func() { h.onOut = nil }()

	var recs []Record
	emit := func(r Record) {
		r.Schema = SchemaVersion
		r.Session = spec.Name
		r.Seq = len(recs)
		recs = append(recs, r)
	}
	emit(Record{
		Type: "session", Target: cfg.Target, Program: h.prog.Name,
		SpecB64: specB64, HostB64: hostB64,
	})

	pass := true
	var lastReport *core.Report
	for round := 0; round < rounds; round++ {
		for _, ev := range sched.DueBy(rel()) {
			fr := &FaultRecord{
				Kind: ev.Kind.String(), Port: ev.Port, Seed: ev.Seed,
				Table: ev.Table, Budget: ev.Budget, Count: ev.Count,
			}
			rec := Record{Type: "fault", Round: round, AtNs: rel().Nanoseconds(), Fault: fr}
			if err := faultplan.Apply(ev, h.dev, h.inj); err != nil {
				rec.Err = err.Error()
				pass = false
			}
			emit(rec)
		}
		if churn != nil {
			cr := churn.step(h)
			if cr.DeniedInstalls > 0 || cr.DeniedDeletes > 0 {
				pass = false
			}
			emit(Record{Type: "churn", Round: round, AtNs: rel().Nanoseconds(), Churn: cr})
		}
		rep, err := h.ctl.RunTest(&spec.Spec)
		if err != nil {
			// Degrade, don't die: the round is recorded as failed and
			// the session carries on — a resident service outlives a
			// flapping control channel or a faulted run.
			emit(Record{Type: "report", Round: round, AtNs: rel().Nanoseconds(), Err: err.Error()})
			pass = false
		} else {
			emit(Record{Type: "report", Round: round, AtNs: rel().Nanoseconds(), Report: rep})
			lastReport = rep
			if !rep.Pass {
				pass = false
			}
		}
		if spec.Probe != nil {
			emit(Record{Type: "probe", Round: round, AtNs: rel().Nanoseconds(), Probe: runProbe(h, spec.Probe)})
		}
	}

	slo := SLORecord{
		Count:   hist.Count(),
		MeanNs:  hist.Mean().Nanoseconds(),
		P50Ns:   hist.Quantile(0.5).Nanoseconds(),
		P99Ns:   hist.Quantile(0.99).Nanoseconds(),
		MaxNs:   hist.Max().Nanoseconds(),
		BoundNs: spec.SLOBound.Nanoseconds(),
	}
	slo.Pass = spec.SLOBound == 0 || slo.P99Ns <= slo.BoundNs
	if !slo.Pass {
		pass = false
	}
	emit(Record{Type: "slo", AtNs: rel().Nanoseconds(), SLO: &slo})
	emit(Record{Type: "end", AtNs: rel().Nanoseconds()})

	return recs, &Result{
		Name: spec.Name, Rounds: rounds, Pass: pass,
		SLO: slo, LastReport: lastReport, Records: recs,
	}, nil
}

// probeSpacing is the fixed inter-frame gap of the probe leg — wide
// enough that equal-rate forwarding never queues, in virtual time so it
// costs nothing.
const probeSpacing = 2 * time.Microsecond

// runProbe sends the probe frames and reports the round's delta view of
// the external ports.
func runProbe(h *host, p *ProbeSpec) *ProbeRecord {
	before := h.dev.Status()
	start := h.dev.Now()
	for i := 0; i < p.Count; i++ {
		// Send errors are impossible here: the port was validated at
		// session start, and a downed link loses frames silently.
		_ = h.dev.SendExternal(p.Port, p.Frame, start+time.Duration(i)*probeSpacing)
	}
	after := h.dev.Status()
	pr := &ProbeRecord{Sent: p.Count}
	delta := func(key string) uint64 { return after[key] - before[key] }
	pr.RxLost = delta(fmt.Sprintf("port%d.rx.link_down", p.Port))
	numPorts := h.dev.Config().NumPorts
	for port := 0; port < numPorts; port++ {
		pr.TxLost += delta(fmt.Sprintf("port%d.tx.link_down", port))
		pr.TxLost += delta(fmt.Sprintf("port%d.tx.queue_drops", port))
		if n := len(h.dev.Captures(port)); n > 0 {
			if pr.Captured == nil {
				pr.Captured = make(map[string]int)
			}
			pr.Captured[strconv.Itoa(port)] = n
		}
		h.dev.ReleaseCaptures(port)
		if occ := h.dev.QueueOccupancy(port); occ > 0 {
			if pr.QueueOccupancy == nil {
				pr.QueueOccupancy = make(map[string]int)
			}
			pr.QueueOccupancy[strconv.Itoa(port)] = occ
		}
	}
	return pr
}

// churnDriver synthesizes and tracks churn entries for one session.
type churnDriver struct {
	spec    ChurnSpec
	table   *ir.Table
	action  *ir.Action
	ternary bool
	counter uint64
	live    []dataplane.Entry
}

// newChurnDriver resolves the churn table in the loaded program and
// picks its first parameterized action (falling back to the first
// action) for synthesized entries. Returns (nil, nil) when spec is nil.
func newChurnDriver(prog *ir.Program, spec *ChurnSpec) (*churnDriver, error) {
	if spec == nil {
		return nil, nil
	}
	if spec.Installs <= 0 && spec.Deletes <= 0 {
		return nil, fmt.Errorf("session: churn spec with nothing to do")
	}
	var table *ir.Table
	for _, c := range prog.Controls {
		for _, t := range c.Tables {
			if t.Name == spec.Table {
				table = t
			}
		}
	}
	if table == nil {
		return nil, fmt.Errorf("session: churn table %q not in program", spec.Table)
	}
	if len(table.Actions) == 0 {
		return nil, fmt.Errorf("session: churn table %q has no actions", spec.Table)
	}
	action := table.Actions[0]
	for _, a := range table.Actions {
		if len(a.Params) > 0 {
			action = a
			break
		}
	}
	d := &churnDriver{spec: *spec, table: table, action: action}
	for _, k := range table.Keys {
		if k.Kind == ir.MatchTernary {
			d.ternary = true
		}
	}
	return d, nil
}

// nextEntry synthesizes a fresh unique entry from the table definition.
func (d *churnDriver) nextEntry() dataplane.Entry {
	d.counter++
	n := d.counter
	e := dataplane.Entry{Table: d.table.Name, Action: d.action.Name}
	for _, k := range d.table.Keys {
		w := k.Expr.Width()
		var val bitfield.Value
		if w > 64 {
			val = bitfield.New(n, 64).WithWidth(w)
		} else {
			v := n & (uint64(1)<<uint(w) - 1)
			if w >= 16 {
				// Claim the top of the field's space so churn keys stay
				// clear of probe and validation traffic.
				v |= uint64(1) << uint(w-1)
			}
			val = bitfield.New(v, w)
		}
		kv := dataplane.KeyValue{Value: val}
		switch k.Kind {
		case ir.MatchLPM:
			kv.PrefixLen = w
		case ir.MatchTernary:
			kv.Mask = bitfield.Mask(w)
		}
		e.Keys = append(e.Keys, kv)
	}
	if d.ternary {
		e.Priority = 1 + int(n%8)
	}
	for _, p := range d.action.Params {
		e.Args = append(e.Args, bitfield.New(1, p.Width))
	}
	return e
}

// step runs one round of churn through the host's control channel.
// Denied writes (injected map-full, mask-budget, unretried flaps) are
// counted, never fatal; entries whose delete is denied stay live and
// are retried next round.
func (d *churnDriver) step(h *host) *ChurnRecord {
	before := make(map[string]uint64, len(h.inj.Denials()))
	for k, v := range h.inj.Denials() {
		before[k] = v
	}
	cr := &ChurnRecord{}
	for i := 0; i < d.spec.Installs; i++ {
		e := d.nextEntry()
		if err := h.ctl.InstallEntry(e); err != nil {
			cr.DeniedInstalls++
		} else {
			cr.Installed++
			d.live = append(d.live, e)
		}
	}
	deletes := d.spec.Deletes
	if deletes > len(d.live) {
		deletes = len(d.live)
	}
	kept := d.live[:0]
	for i, e := range d.live {
		if i >= deletes {
			kept = append(kept, e)
			continue
		}
		if err := h.ctl.DeleteEntry(e); err != nil {
			cr.DeniedDeletes++
			kept = append(kept, e)
		} else {
			cr.Deleted++
		}
	}
	d.live = kept
	cr.Live = len(d.live)
	for k, v := range h.inj.Denials() {
		if dlt := v - before[k]; dlt > 0 {
			if cr.Denials == nil {
				cr.Denials = make(map[string]uint64)
			}
			cr.Denials[k] = dlt
		}
	}
	return cr
}
