package session

import (
	"bytes"
	"fmt"
)

// Replay re-executes a recorded stream: each session block's embedded
// spec and host config are decoded and the session is run again on a
// freshly booted host. It returns the re-recorded stream, which the
// determinism contract (docs/robustness.md) requires to be
// byte-identical to the input — ReplayCheck asserts exactly that.
//
// Managers are keyed by host config, so a stream whose sessions share a
// config replays on one pool, exercising the same warm-host restore
// path as the original run.
func Replay(stream []byte) ([]byte, error) {
	recs, err := ParseStream(stream)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	rec := NewRecorder(&out)
	managers := make(map[string]*Manager)
	defer func() {
		for _, m := range managers {
			m.Close()
		}
	}()
	blocks := 0
	for _, r := range recs {
		if r.Type != "session" {
			continue
		}
		blocks++
		var spec SessionSpec
		if err := decodeB64(r.SpecB64, &spec); err != nil {
			return nil, fmt.Errorf("session: replay block %d (%s): decoding spec: %w", blocks, r.Session, err)
		}
		var cfg HostConfig
		if err := decodeB64(r.HostB64, &cfg); err != nil {
			return nil, fmt.Errorf("session: replay block %d (%s): decoding host config: %w", blocks, r.Session, err)
		}
		m, ok := managers[r.HostB64]
		if !ok {
			m, err = NewManager(cfg, 1, rec)
			if err != nil {
				return nil, fmt.Errorf("session: replay block %d (%s): %w", blocks, r.Session, err)
			}
			managers[r.HostB64] = m
		}
		if _, err := m.Run(spec); err != nil {
			return nil, fmt.Errorf("session: replay block %d (%s): %w", blocks, r.Session, err)
		}
	}
	if blocks == 0 {
		return nil, fmt.Errorf("session: stream contains no session blocks")
	}
	if err := rec.Err(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// ReplayCheck replays a stream and verifies the re-recorded stream is
// byte-identical, returning the first diverging line on mismatch.
func ReplayCheck(stream []byte) error {
	replayed, err := Replay(stream)
	if err != nil {
		return err
	}
	if bytes.Equal(replayed, stream) {
		return nil
	}
	want := bytes.Split(stream, []byte("\n"))
	got := bytes.Split(replayed, []byte("\n"))
	for i := 0; i < len(want) && i < len(got); i++ {
		if !bytes.Equal(want[i], got[i]) {
			return fmt.Errorf("session: replay diverged at line %d:\n recorded: %s\n replayed: %s",
				i+1, want[i], got[i])
		}
	}
	return fmt.Errorf("session: replay stream length differs: recorded %d lines, replayed %d",
		len(want), len(got))
}
