package target

import (
	"errors"
	"fmt"
	"time"

	"netdebug/internal/dataplane"
	"netdebug/internal/p4/ir"
)

// EBPFErrata describes the documented defects and architectural limits
// of the modelled eBPF/XDP software-offload flow: the P4 program is
// compiled to an XDP program chained through tail calls, with one BPF
// map per table. As with the SDNet and Tofino errata, the zero value
// models a defect-free flow with the default limits; use
// DefaultEBPFErrata for the shipped driver and FixedEBPFErrata for the
// flow with the driver defects repaired (the memlock budget, mask-set
// bound, and tail-call depth remain — they are kernel properties, not
// bugs).
type EBPFErrata struct {
	// LPMZeroPrefixMiss is the shipped LPM-trie driver defect: a /0
	// prefix (the default route) is accepted by the map update call but
	// never returned by a lookup, so packets covered only by the
	// default route miss. Repaired flows match /0 like any prefix.
	LPMZeroPrefixMiss bool
	// MapFullSilentUpdate is the shipped hash-map driver defect: an
	// insert into a full map reports success instead of E2BIG, and the
	// new flow is silently absent. The control plane believes the entry
	// is installed; only data-plane probing reveals the miss.
	MapFullSilentUpdate bool

	// MemlockBytes is the total map-memory budget (the memlock/memcg
	// accounting limit all maps are charged against); zero selects the
	// modelled default. Maps request bytes for their declared size and
	// the budget is divided by water-filling, exactly like the Tofino
	// placement pass — but priced per map type, not per memory block.
	MemlockBytes int
	// MaxMasks bounds the mask-set scan the ternary emulation compiles
	// to: one unrolled match section per distinct mask tuple, so a new
	// mask beyond the bound would exceed the generated program's
	// verifier budget and the map update is rejected. Zero selects the
	// modelled default. There is no TCAM anywhere in this backend.
	MaxMasks int
	// TailCallLimit bounds the table chain: each dependent table apply
	// is a tail call, and the kernel caps the chain depth. Programs
	// applying more tables than this fail to load. Zero selects the
	// kernel's limit of 33.
	TailCallLimit int
}

// DefaultEBPFErrata is the shipped eBPF/XDP flow: default kernel
// limits, LPM /0 misses, full hash maps accept inserts silently.
func DefaultEBPFErrata() EBPFErrata {
	return EBPFErrata{LPMZeroPrefixMiss: true, MapFullSilentUpdate: true}
}

// FixedEBPFErrata is the flow with both driver defects repaired. The
// memlock budget, mask-set bound, and tail-call depth remain.
func FixedEBPFErrata() EBPFErrata { return EBPFErrata{} }

// The modelled kernel limits and per-map-type entry costs. Hash-map
// entries pay the bucket/htab overhead, LPM-trie entries pay the kernel
// lpm_trie node economics — a value-carrying leaf node plus an amortized
// path-compressed intermediate node, each with its own header and full
// key copy — and mask-set scan entries store value+mask pairs in a flat
// array.
const (
	ebpfMemlockBytes  = 128 << 20 // default memlock/memcg budget for all maps
	ebpfMaxMasks      = 1024      // mask-set scan sections the verifier budget admits
	ebpfTailCallLimit = 33        // kernel tail-call chain depth

	ebpfHashEntryOverhead = 48 // htab bucket + element header
	ebpfHashValueBytes    = 16 // action id + padded action data
	ebpfLPMNodeOverhead   = 40 // lpm_trie node header (lpm_trie_node + rcu)
	ebpfLPMValueBytes     = 16 // leaf value: action id + padded action data
	ebpfScanEntryOverhead = 8  // priority + action id packing
)

// The latency model: unlike the fixed-depth SDNet pipeline (440ns
// whatever the program) and the every-packet-walks-every-stage Tofino
// pipeline (390ns), a software offload costs what the generated program
// executes — so latency follows program length, and the ternary
// mask-set scan adds one section per distinct installed mask.
const (
	ebpfBaseInsns        = 64 // XDP prologue, ctx load, redirect epilogue
	ebpfInsnsPerState    = 16 // parser state dispatch
	ebpfInsnsPerParserOp = 8  // extract/assign in a state
	ebpfInsnsPerCase     = 4  // select branch
	ebpfInsnsPerStmt     = 6  // control/action/deparser statement
	ebpfInsnsPerHashMap  = 48 // hash computation + bucket walk
	ebpfInsnsPerLPMMap   = 120
	ebpfInsnsPerMask     = 24 // one unrolled mask-set scan section

	ebpfNsPerInsn = 0.75 // modelled ns per executed instruction

	// ebpfVerifierInsns is the kernel's program-size limit the resource
	// report quotes utilization against.
	ebpfVerifierInsns = 1 << 20
)

func (e *EBPFErrata) fill() {
	if e.MemlockBytes == 0 {
		e.MemlockBytes = ebpfMemlockBytes
	}
	if e.MaxMasks == 0 {
		e.MaxMasks = ebpfMaxMasks
	}
	if e.TailCallLimit == 0 {
		e.TailCallLimit = ebpfTailCallLimit
	}
}

// ebpfMap is one table's compiled map: its kind, per-entry byte cost,
// and the capacity its memlock grant holds.
type ebpfMap struct {
	table      *ir.Table
	kind       ebpfMapKind
	lpmIdx     int // index of the lpm key (kindLPMTrie only)
	entryBytes int
	grantBytes int
	capacity   int
}

type ebpfMapKind int

const (
	mapHash ebpfMapKind = iota
	mapLPMTrie
	mapMaskScan
)

func (k ebpfMapKind) String() string {
	switch k {
	case mapHash:
		return "hash"
	case mapLPMTrie:
		return "lpm-trie"
	}
	return "mask-scan"
}

// ebpf models an eBPF/XDP-style software offload: reference parser
// semantics, per-map-type capacity charged against a memlock budget, a
// mask-set scan (no TCAM) for ternary tables, a tail-call depth limit,
// and latency that follows the generated program's length.
type ebpf struct {
	pipeline
	errata      EBPFErrata
	resources   ResourceReport
	maps        map[string]*ebpfMap
	staticInsns int
}

// NewEBPF returns a target modelling the eBPF/XDP software-offload flow
// with the given errata.
func NewEBPF(e EBPFErrata) Target {
	e.fill()
	return &ebpf{errata: e}
}

func (t *ebpf) Name() string { return "ebpf" }

func (t *ebpf) Load(prog *ir.Program) error {
	if prog == nil {
		return fmt.Errorf("target: ebpf: nil program")
	}
	tables := prog.Tables()
	// Each dependent table apply tail-calls into the next program of
	// the chain; a chain deeper than the kernel's limit fails at load,
	// the software analog of Tofino running out of stages.
	if len(tables) > t.errata.TailCallLimit {
		return fmt.Errorf(
			"target: ebpf: program applies %d dependent tables, tail-call chain depth is %d",
			len(tables), t.errata.TailCallLimit)
	}
	maps, err := allocateMaps(tables, t.errata)
	if err != nil {
		return err
	}
	t.load(prog)
	t.maps = maps
	for _, m := range maps {
		if m.capacity < m.table.Size {
			if err := t.eng.SetTableCapacity(m.table.Name, m.capacity); err != nil {
				return err
			}
		}
		if m.kind == mapMaskScan {
			if err := t.eng.SetTernaryMaskLimit(m.table.Name, t.errata.MaxMasks); err != nil {
				return err
			}
		}
	}
	t.staticInsns = ebpfProgramInsns(prog, maps)
	t.updateLatency()
	t.resources = ebpfResources(t.staticInsns, maps, t.errata)
	return nil
}

// Program returns the deployed IR. Like the Tofino flow, the eBPF flow
// does not transform the program — its deviations (map capacity, the
// /0 and map-full driver defects) live in map state and the generated
// lookup code, invisible at the IR level.
func (t *ebpf) Program() *ir.Program { return t.prog }

func (t *ebpf) Process(frame []byte, ingressPort uint64, trace bool) Result {
	return t.process(frame, ingressPort, trace)
}

func (t *ebpf) ProcessBatch(frames [][]byte, ingressPort uint64, trace bool) []Result {
	return t.processBatch(frames, ingressPort, trace)
}

// InstallEntry routes the control-plane write through the modelled map
// drivers: the shipped LPM-trie driver accepts /0 prefixes it will
// never match, and the shipped hash-map driver reports success on a
// full map without inserting. Both defects return nil — that is the
// bug — so only data-plane probing can reveal them. Malformed entries
// still fail: the defects live past the update call's validation, so
// a bad action or key width errors here exactly as on every other
// backend.
func (t *ebpf) InstallEntry(e dataplane.Entry) error {
	m := t.maps[e.Table]
	if m != nil && t.errata.LPMZeroPrefixMiss && m.kind == mapLPMTrie &&
		len(e.Keys) > m.lpmIdx && e.Keys[m.lpmIdx].PrefixLen == 0 {
		return t.eng.ValidateEntry(e)
	}
	err := t.installEntry(e)
	if err != nil && m != nil && t.errata.MapFullSilentUpdate && m.kind == mapHash {
		var capErr *dataplane.CapacityError
		if errors.As(err, &capErr) {
			return nil
		}
	}
	if err == nil && m != nil && m.kind == mapMaskScan {
		// A new mask grows the scan program by one section.
		t.updateLatency()
	}
	return err
}

// DeleteEntry removes a map entry. A delete that shrinks a mask-set
// scan table's distinct-mask set shrinks the generated program, so the
// modelled latency is recomputed just as on install.
func (t *ebpf) DeleteEntry(e dataplane.Entry) error {
	err := t.deleteEntry(e)
	if err == nil {
		if m := t.maps[e.Table]; m != nil && m.kind == mapMaskScan {
			t.updateLatency()
		}
	}
	return err
}

func (t *ebpf) ClearTable(name string) error {
	err := t.clearTable(name)
	if err == nil {
		t.updateLatency()
	}
	return err
}

func (t *ebpf) Status() map[string]uint64     { return t.status() }
func (t *ebpf) Resources() ResourceReport     { return t.resources }
func (t *ebpf) TernaryGroups(name string) int { return t.ternaryGroups(name) }

// updateLatency recomputes the per-packet latency from the current
// program length: the static instruction estimate plus one mask-set
// scan section per distinct installed mask tuple.
func (t *ebpf) updateLatency() {
	insns := t.staticInsns
	for name, m := range t.maps {
		if m.kind == mapMaskScan {
			insns += ebpfInsnsPerMask * t.eng.TernaryGroupCount(name)
		}
	}
	t.latency = time.Duration(float64(insns) * ebpfNsPerInsn)
}

// tableKeyBytes returns the byte size of a table's packed lookup key.
func tableKeyBytes(tab *ir.Table) int {
	bits := 0
	for _, w := range tab.KeyWidths() {
		bits += w
	}
	return (bits + 7) / 8
}

// align8 rounds n up to the kernel's 8-byte map-field alignment.
func align8(n int) int { return (n + 7) / 8 * 8 }

// allocateMaps prices one BPF map per table by its map type and divides
// the memlock budget by water-filling: maps that need less than a fair
// share keep what they need, the rest split the remainder. A map whose
// grant cannot hold a single entry fails the load, as the kernel's
// memlock accounting would fail the map_create call.
func allocateMaps(tables []*ir.Table, e EBPFErrata) (map[string]*ebpfMap, error) {
	maps := make(map[string]*ebpfMap, len(tables))
	requests := make([]int, len(tables))
	ordered := make([]*ebpfMap, len(tables))
	for i, tab := range tables {
		m := &ebpfMap{table: tab, kind: mapHash, lpmIdx: -1}
		for j, k := range tab.Keys {
			switch k.Kind {
			case ir.MatchTernary:
				m.kind = mapMaskScan
			case ir.MatchLPM:
				if m.kind != mapMaskScan {
					m.kind = mapLPMTrie
				}
				m.lpmIdx = j
			}
		}
		keyBytes := tableKeyBytes(tab)
		switch m.kind {
		case mapHash:
			m.entryBytes = align8(keyBytes) + ebpfHashValueBytes + ebpfHashEntryOverhead
		case mapLPMTrie:
			// An lpm key is {u32 prefixlen, data}, stored whole in every
			// node. Each entry costs one value-carrying leaf node plus
			// one amortized path-compressed intermediate node (which has
			// no value), mirroring kernel lpm_trie memlock charging.
			leaf := ebpfLPMNodeOverhead + 4 + keyBytes + ebpfLPMValueBytes
			intermediate := ebpfLPMNodeOverhead + 4 + keyBytes
			m.entryBytes = leaf + intermediate
		case mapMaskScan:
			// Value and mask per key, flat in the scan array.
			m.entryBytes = align8(2*keyBytes) + ebpfHashValueBytes + ebpfScanEntryOverhead
		}
		requests[i] = m.entryBytes * tab.Size
		ordered[i] = m
		maps[tab.Name] = m
	}
	grants := waterfill(requests, e.MemlockBytes)
	for i, m := range ordered {
		m.grantBytes = grants[i]
		m.capacity = m.grantBytes / m.entryBytes
		if m.capacity > m.table.Size {
			m.capacity = m.table.Size
		}
		if m.capacity == 0 {
			return nil, fmt.Errorf(
				"target: ebpf: table %s: %s map needs %d bytes/entry, memlock grant is %d bytes",
				m.table.Name, m.kind, m.entryBytes, m.grantBytes)
		}
	}
	return maps, nil
}

// ebpfProgramInsns estimates the generated XDP program's length: parser
// dispatch, control statements, and one lookup sequence per map (the
// dynamic mask-set sections are added per installed mask by
// updateLatency).
func ebpfProgramInsns(prog *ir.Program, maps map[string]*ebpfMap) int {
	insns := ebpfBaseInsns
	if prog.Parser != nil {
		for _, st := range prog.Parser.States {
			insns += ebpfInsnsPerState +
				ebpfInsnsPerParserOp*len(st.Ops) +
				ebpfInsnsPerCase*len(st.Trans.Cases)
		}
	}
	for _, c := range prog.Controls {
		insns += ebpfInsnsPerStmt * countStmts(c.Apply)
		for _, a := range c.Actions {
			insns += ebpfInsnsPerStmt * countStmts(a.Body)
		}
	}
	for _, m := range maps {
		switch m.kind {
		case mapHash:
			insns += ebpfInsnsPerHashMap
		case mapLPMTrie:
			insns += ebpfInsnsPerLPMMap
		case mapMaskScan:
			insns += ebpfInsnsPerHashMap // scan setup; sections are dynamic
		}
	}
	if prog.Deparser != nil {
		insns += ebpfInsnsPerStmt * countStmts(prog.Deparser.Stmts)
	}
	return insns
}

// ebpfResources summarizes the offload footprint: generated program
// length against the verifier budget, and map count/bytes against the
// memlock budget.
func ebpfResources(insns int, maps map[string]*ebpfMap, e EBPFErrata) ResourceReport {
	bytes := 0
	for _, m := range maps {
		bytes += m.grantBytes
	}
	return ResourceReport{
		Insns:      insns,
		Maps:       len(maps),
		MapBytes:   bytes,
		InsnPct:    pct(insns, ebpfVerifierInsns),
		MemlockPct: pct(bytes, e.MemlockBytes),
	}
}
