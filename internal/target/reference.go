package target

import (
	"fmt"
	"time"

	"netdebug/internal/dataplane"
	"netdebug/internal/p4/ir"
)

// pipeline is the shared execution core of the software-modelled targets:
// a dataplane.Engine plus the per-target scratch that keeps the packet
// hot path allocation-free (contexts come from the engine's pool, the
// single-output slice is reused across packets).
type pipeline struct {
	prog    *ir.Program
	eng     *dataplane.Engine
	outBuf  [1]Output
	latency time.Duration
	// Batch-mode scratch: contexts are owned by the pipeline (not the
	// engine pool) so a nested single-packet Process cannot clobber a
	// live batch's outputs; batchOut/batchRes back the returned results.
	batchCtx []*dataplane.Context
	batchOut []Output
	batchRes []Result
}

func (p *pipeline) load(prog *ir.Program) {
	p.prog = prog
	p.eng = dataplane.New(prog)
	p.batchCtx = nil
}

func (p *pipeline) process(frame []byte, ingressPort uint64, trace bool) Result {
	ctx := p.eng.AcquireContext()
	ctx.CollectTrace = trace
	out, egress := p.eng.Process(ctx, frame, ingressPort)
	res := Result{Latency: p.latency, Trace: ctx.Trace}
	if out != nil {
		p.outBuf[0] = Output{Port: egress, Data: out}
		res.Outputs = p.outBuf[:1]
	}
	p.eng.ReleaseContext(ctx)
	return res
}

// processBatch runs a burst through Engine.ProcessBatch. All returned
// results are valid at once; the slice and the output bytes it
// references are reused by the next processBatch call.
func (p *pipeline) processBatch(frames [][]byte, ingressPort uint64, trace bool) []Result {
	for len(p.batchCtx) < len(frames) {
		p.batchCtx = append(p.batchCtx, p.eng.NewContext())
	}
	pkts := p.batchCtx[:len(frames)]
	for i, frame := range frames {
		pkts[i].In = frame
		pkts[i].InPort = ingressPort
		pkts[i].CollectTrace = trace
	}
	p.eng.ProcessBatch(pkts)
	if cap(p.batchRes) < len(frames) {
		p.batchRes = make([]Result, len(frames))
		p.batchOut = make([]Output, len(frames))
	}
	res := p.batchRes[:len(frames)]
	outs := p.batchOut[:len(frames)]
	for i, ctx := range pkts {
		res[i] = Result{Latency: p.latency, Trace: ctx.Trace}
		if ctx.Out != nil {
			outs[i] = Output{Port: ctx.Egress, Data: ctx.Out}
			res[i].Outputs = outs[i : i+1]
		} else {
			res[i].Outputs = nil
		}
	}
	return res
}

func (p *pipeline) installEntry(e dataplane.Entry) error {
	if p.eng == nil {
		return fmt.Errorf("target: no program loaded")
	}
	return p.eng.InstallEntry(e)
}

func (p *pipeline) deleteEntry(e dataplane.Entry) error {
	if p.eng == nil {
		return fmt.Errorf("target: no program loaded")
	}
	return p.eng.DeleteEntry(e)
}

func (p *pipeline) clearTable(name string) error {
	if p.eng == nil {
		return fmt.Errorf("target: no program loaded")
	}
	return p.eng.ClearTable(name)
}

func (p *pipeline) status() map[string]uint64 {
	if p.eng == nil {
		return nil
	}
	return p.eng.Counters.Values()
}

func (p *pipeline) ternaryGroups(name string) int {
	if p.eng == nil {
		return 0
	}
	return p.eng.TernaryGroupCount(name)
}

// referenceLatency is the fixed pipeline delay of the reference model:
// it stands in for an idealized single-cycle-per-stage pipeline and is
// deliberately constant so measurements are exactly reproducible.
const referenceLatency = 50 * time.Nanosecond

// reference executes the program with exact P4₁₆ semantics.
type reference struct {
	pipeline
}

// NewReference returns the reference target: the program runs unchanged
// under the P4₁₆ specification semantics (parser reject drops, exact
// table capacity, no architectural limits).
func NewReference() Target {
	return &reference{pipeline{latency: referenceLatency}}
}

func (r *reference) Name() string { return "reference" }

func (r *reference) Load(prog *ir.Program) error {
	if prog == nil {
		return fmt.Errorf("target: reference: nil program")
	}
	r.load(prog)
	return nil
}

func (r *reference) Program() *ir.Program { return r.prog }

func (r *reference) Process(frame []byte, ingressPort uint64, trace bool) Result {
	return r.process(frame, ingressPort, trace)
}

func (r *reference) ProcessBatch(frames [][]byte, ingressPort uint64, trace bool) []Result {
	return r.processBatch(frames, ingressPort, trace)
}

func (r *reference) InstallEntry(e dataplane.Entry) error { return r.installEntry(e) }
func (r *reference) DeleteEntry(e dataplane.Entry) error  { return r.deleteEntry(e) }
func (r *reference) ClearTable(name string) error         { return r.clearTable(name) }
func (r *reference) Status() map[string]uint64            { return r.status() }
func (r *reference) TernaryGroups(name string) int        { return r.ternaryGroups(name) }

// Resources reports zero: the reference is a software model with no
// hardware footprint.
func (r *reference) Resources() ResourceReport { return ResourceReport{} }
