package target

// Install/delete churn against the backends' architectural models: the
// Tofino water-filling placement grant must be respected exactly as
// entries come and go (deletes free slots, the grant never inflates),
// and the eBPF mask-set scan program must shrink when a delete retires
// a distinct mask — with concurrent ProcessBatch traffic serialized by
// a lock, the resident session layer's access pattern, under -race.

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

func mustLoad(t testing.TB, tgt Target, src string) {
	t.Helper()
	prog, err := compile.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := tgt.Load(prog); err != nil {
		t.Fatalf("load onto %s: %v", tgt.Name(), err)
	}
}

func bigEntry(dst uint64, port uint64) dataplane.Entry {
	return dataplane.Entry{
		Table:  "big",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(dst, 32)}},
		Action: "fwd",
		Args:   []bitfield.Value{bitfield.New(port, 9)},
	}
}

// TestTofinoWaterfillGrantUnderChurn fills the placed table to its
// water-filling grant, then churns deletes and reinstalls while a
// traffic goroutine (serialized by the session-layer lock discipline)
// keeps probing: the grant must behave as an exact high-water mark —
// deletes free exactly the removed slots, and the grant never grows.
func TestTofinoWaterfillGrantUnderChurn(t *testing.T) {
	tgt := NewTofino(FixedTofinoErrata())
	mustLoad(t, tgt, p4test.BigExactTable)

	var mu sync.Mutex
	grant := 0
	for i := 0; ; i++ {
		if err := tgt.InstallEntry(bigEntry(uint64(i), 1)); err != nil {
			var capErr *dataplane.CapacityError
			if !errors.As(err, &capErr) {
				t.Fatalf("install %d: %v", i, err)
			}
			grant = i
			break
		}
		if i > 1<<16 {
			t.Fatalf("no capacity limit hit after %d installs", i)
		}
	}
	if grant == 0 || grant > 4096 {
		t.Fatalf("implausible waterfill grant %d", grant)
	}

	frame := []byte{0, 0, 0, 5} // dst=5, installed for the whole test
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for round := 0; round < 200; round++ {
			// Delete a batch of high keys, reinstall the same count, and
			// verify the grant boundary is exact again.
			k := 1 + rng.Intn(16)
			mu.Lock()
			for j := 0; j < k; j++ {
				if err := tgt.DeleteEntry(bigEntry(uint64(grant-1-j), 1)); err != nil {
					t.Errorf("round %d delete %d: %v", round, j, err)
					mu.Unlock()
					return
				}
			}
			for j := 0; j < k; j++ {
				if err := tgt.InstallEntry(bigEntry(uint64(grant-1-j), 1)); err != nil {
					t.Errorf("round %d reinstall %d: %v", round, j, err)
					mu.Unlock()
					return
				}
			}
			var capErr *dataplane.CapacityError
			if err := tgt.InstallEntry(bigEntry(1<<20, 1)); !errors.As(err, &capErr) {
				t.Errorf("round %d: install past grant got %v, want CapacityError", round, err)
				mu.Unlock()
				return
			}
			mu.Unlock()
		}
	}()
	go func() {
		defer wg.Done()
		frames := [][]byte{frame, frame, frame, frame}
		for round := 0; round < 200; round++ {
			mu.Lock()
			results := tgt.ProcessBatch(frames, 0, false)
			for _, res := range results {
				if res.Dropped() || res.Outputs[0].Port != 1 {
					t.Errorf("traffic round %d: unexpected result %+v", round, res)
					mu.Unlock()
					return
				}
			}
			mu.Unlock()
		}
	}()
	wg.Wait()
}

// TestEBPFMaskScanShrinksOnDelete pins the offload latency model across
// churn: installing a new distinct mask grows the generated scan
// program (latency up), deleting the last entry of that mask retires
// its section (latency back down).
func TestEBPFMaskScanShrinksOnDelete(t *testing.T) {
	tgt := NewEBPF(FixedEBPFErrata())
	mustLoad(t, tgt, p4test.Firewall)

	aclEntry := func(mask uint64, prio int) dataplane.Entry {
		return dataplane.Entry{
			Table:    "acl",
			Priority: prio,
			Keys: []dataplane.KeyValue{
				{Value: bitfield.New(0x0a000001, 32), Mask: bitfield.New(mask, 32)},
				{Value: bitfield.New(0, 32), Mask: bitfield.New(0, 32)},
				{Value: bitfield.New(0, 16), Mask: bitfield.New(0, 16)},
			},
			Action: "allow",
		}
	}
	probeLatency := func() int64 {
		frame := packet.BuildUDPv4(packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
			packet.IPv4Addr{10, 0, 0, 1}, packet.IPv4Addr{10, 0, 1, 2}, 4000, 53, make([]byte, 26))
		res := tgt.Process(frame, 0, false)
		return res.Latency.Nanoseconds()
	}

	base := probeLatency()
	if err := tgt.InstallEntry(aclEntry(0xffffffff, 10)); err != nil {
		t.Fatal(err)
	}
	oneMask := probeLatency()
	if oneMask <= base {
		t.Fatalf("latency did not grow with a new mask: base %d, one-mask %d", base, oneMask)
	}
	if err := tgt.InstallEntry(aclEntry(0xffff0000, 9)); err != nil {
		t.Fatal(err)
	}
	twoMasks := probeLatency()
	if twoMasks <= oneMask {
		t.Fatalf("latency did not grow with a second mask: %d -> %d", oneMask, twoMasks)
	}
	if err := tgt.DeleteEntry(aclEntry(0xffff0000, 9)); err != nil {
		t.Fatal(err)
	}
	if got := probeLatency(); got != oneMask {
		t.Fatalf("latency after retiring a mask: %d, want %d", got, oneMask)
	}
	if got := tgt.TernaryGroups("acl"); got != 1 {
		t.Fatalf("ternary groups after delete: %d, want 1", got)
	}
	if err := tgt.DeleteEntry(aclEntry(0xffffffff, 10)); err != nil {
		t.Fatal(err)
	}
	if got := probeLatency(); got != base {
		t.Fatalf("latency after full drain: %d, want base %d", got, base)
	}
}
