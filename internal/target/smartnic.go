package target

import (
	"fmt"
	"time"

	"netdebug/internal/dataplane"
	"netdebug/internal/p4/ir"
	"netdebug/internal/stats"
)

// SmartNICErrata describes the documented defects and architectural
// properties of the modelled SmartNIC/DPU flow: a small accelerator
// (exact/LPM flow tables in NIC SRAM, a narrow on-NIC TCAM) in front of
// an embedded core complex that handles everything the accelerator
// cannot — the exception ("punt") path. Unlike the other backends this
// class never rejects a program at load time: whatever does not fit the
// accelerator falls back to the cores, and the cost surfaces as punt
// latency instead of a load error.
//
// As with the SDNet, Tofino, and eBPF errata, the zero value models a
// defect-free flow with the default limits; use DefaultSmartNICErrata
// for the shipped driver and FixedSmartNICErrata for the flow with both
// driver defects repaired (the accelerator capacity, TCAM geometry,
// punt-queue depth, and punt MTU remain — they are hardware properties,
// not bugs).
type SmartNICErrata struct {
	// ExceptionFailOpen is the shipped exception-path defect: a frame
	// the NIC parser rejects is punted to the core complex, and the
	// slow-path software forwards it instead of dropping it — the cores
	// re-run the pipeline with the reject transition compiled out,
	// "fail open" style. Repaired drivers enforce the parser verdict on
	// the cores and drop the frame.
	ExceptionFailOpen bool
	// TruncatePunts is the shipped punt-DMA defect: the punt ring
	// carries only the first PuntMTU bytes of a frame, and the slow
	// path re-emits what it received — so punted frames longer than the
	// punt MTU leave the device truncated. Repaired drivers DMA the
	// full frame (slower, but correct).
	TruncatePunts bool

	// AccelTableBytes is the accelerator SRAM available to exact and
	// LPM flow tables; zero selects the modelled default. The budget is
	// divided across tables by water-filling, like the Tofino placement
	// pass. Installs past a table's grant do not fail: the driver stops
	// offloading that table and every lookup on it punts (the tc-flower
	// style software fallback).
	AccelTableBytes int
	// NICTCAMRows is the on-NIC TCAM capacity for ternary tables,
	// water-filled across the ternary tables narrow enough to use it;
	// zero selects the modelled default.
	NICTCAMRows int
	// NICTCAMKeyBits is the widest ternary key the on-NIC TCAM can
	// match; wider ternary tables are core-resident from the start and
	// every lookup on them punts. Zero selects the modelled default.
	NICTCAMKeyBits int
	// PuntQueueDepth bounds the punt ring: within one burst
	// (ProcessBatch call) at most this many frames can take the
	// exception path; the rest are dropped at the NIC with drop stage
	// "punt-queue". The ring drains between bursts. Zero selects the
	// modelled default.
	PuntQueueDepth int
	// PuntMTU is the number of frame bytes the punt ring carries per
	// slot (see TruncatePunts). Zero selects the modelled default.
	PuntMTU int
}

// DefaultSmartNICErrata is the shipped SmartNIC/DPU flow: default
// hardware geometry, fail-open exception path, truncating punt DMA.
func DefaultSmartNICErrata() SmartNICErrata {
	return SmartNICErrata{ExceptionFailOpen: true, TruncatePunts: true}
}

// FixedSmartNICErrata is the flow with both driver defects repaired.
// The accelerator capacity, TCAM geometry, punt-queue depth, and punt
// MTU remain.
func FixedSmartNICErrata() SmartNICErrata { return SmartNICErrata{} }

// The modelled hardware geometry and punt economics.
const (
	smartnicAccelBytes  = 64 << 20 // accelerator SRAM for exact/LPM flow tables
	smartnicTCAMRows    = 2048     // on-NIC TCAM rows for narrow ternary tables
	smartnicTCAMKeyBits = 64       // widest ternary key the NIC TCAM matches
	smartnicPuntDepth   = 1024     // punt ring slots per burst
	smartnicPuntMTU     = 256      // frame bytes per punt ring slot

	// Flow-cache slot costs: key copy + action data + cache metadata.
	smartnicExactEntryBytes = 56
	smartnicLPMEntryBytes   = 64
	// One TCAM row: 64-bit key + 64-bit mask.
	smartnicTCAMRowBytes = 16
)

// The bimodal latency model — the signature of this class: a fast-path
// hit resolves entirely in the accelerator at fixed low latency, while
// anything punted crosses the PCIe/DMA boundary to the core complex and
// back.
const (
	smartnicFastLatency = 90 * time.Nanosecond
	smartnicPuntLatency = 2500 * time.Nanosecond
)

func (e *SmartNICErrata) fill() {
	if e.AccelTableBytes == 0 {
		e.AccelTableBytes = smartnicAccelBytes
	}
	if e.NICTCAMRows == 0 {
		e.NICTCAMRows = smartnicTCAMRows
	}
	if e.NICTCAMKeyBits == 0 {
		e.NICTCAMKeyBits = smartnicTCAMKeyBits
	}
	if e.PuntQueueDepth == 0 {
		e.PuntQueueDepth = smartnicPuntDepth
	}
	if e.PuntMTU == 0 {
		e.PuntMTU = smartnicPuntMTU
	}
}

// snicTable is one table's residency state: where its entries live and
// the punt bookkeeping for lookups that leave the accelerator.
type snicTable struct {
	t *ir.Table
	// coreResident marks tables the accelerator never holds (ternary
	// keys wider than the NIC TCAM): every lookup punts.
	coreResident bool
	// capacity is the accelerator grant in entries (flow-cache slots or
	// TCAM rows); 0 for core-resident tables.
	capacity int
	// entries and spilled track offload fallback: once installs exceed
	// the grant, the driver stops offloading the table and every lookup
	// punts until the count falls back under the grant.
	entries int
	spilled bool
	// hit/miss are the engine's own lookup counters (snapshotted per
	// frame to classify punts); punts counts this table's punted
	// lookups.
	hit, miss *stats.Counter
	punts     *stats.Counter
}

func (st *snicTable) puntAlways() bool { return st.coreResident || st.spilled }

// smartnic models a SmartNIC/DPU: embedded cores plus accelerator
// tables. Exact and LPM lookups that hit the accelerator resolve on the
// fast path at fixed low latency; misses on populated tables, lookups
// on core-resident or spilled tables, and parser-rejected frames punt
// to the core complex (bimodal latency, bounded punt queue). The cores
// run the same program semantics, so punting changes latency — and,
// through the two shipped driver defects, sometimes behaviour.
type smartnic struct {
	pipeline
	errata    SmartNICErrata
	resources ResourceReport

	// core is the core-complex engine for the fail-open exception path:
	// the same program with reject transitions compiled out, mirrored
	// table state. Nil unless the defect is enabled.
	core *dataplane.Engine
	// Per-frame punt classification scratch.
	tabs     []*snicTable
	hitPrev  []uint64
	missPrev []uint64
	// queueFree is the punt ring headroom of the burst in flight; reset
	// at every Process/ProcessBatch call (the ring drains between
	// bursts).
	queueFree int

	cFast      *stats.Counter
	cPunt      *stats.Counter
	cPuntParse *stats.Counter
	cQueueDrop *stats.Counter

	// Batch-mode scratch for the fail-open path: one core-complex
	// context per burst slot, created lazily for slots that need one so
	// all results of a batch stay valid at once.
	coreCtxs []*dataplane.Context
	coreCtx1 *dataplane.Context // single-packet Process scratch
}

// NewSmartNIC returns a target modelling the SmartNIC/DPU flow with the
// given errata.
func NewSmartNIC(e SmartNICErrata) Target {
	e.fill()
	return &smartnic{errata: e}
}

func (s *smartnic) Name() string { return "smartnic" }

func (s *smartnic) Load(prog *ir.Program) error {
	if prog == nil {
		return fmt.Errorf("target: smartnic: nil program")
	}
	s.load(prog)
	s.core, s.coreCtxs, s.coreCtx1 = nil, nil, nil
	if s.errata.ExceptionFailOpen {
		s.core = dataplane.New(rewriteRejectToAccept(prog))
	}

	// Classify tables and divide the accelerator between them: flow
	// tables (exact/LPM) water-fill the SRAM budget, narrow ternary
	// tables water-fill the TCAM rows, wide ternary tables are
	// core-resident.
	tables := prog.Tables()
	s.tabs = s.tabs[:0]
	var flowIdx, tcamIdx []int
	var flowReq, tcamReq []int
	for _, t := range tables {
		st := &snicTable{
			t:     t,
			hit:   s.eng.Counters.Counter("table." + t.Name + ".hit"),
			miss:  s.eng.Counters.Counter("table." + t.Name + ".miss"),
			punts: s.eng.Counters.Counter("smartnic.punt.table." + t.Name),
		}
		ternary, keyBits := false, 0
		for i, k := range t.Keys {
			keyBits += t.KeyWidths()[i]
			if k.Kind == ir.MatchTernary {
				ternary = true
			}
		}
		switch {
		case ternary && keyBits > s.errata.NICTCAMKeyBits:
			st.coreResident = true
		case ternary:
			tcamIdx = append(tcamIdx, len(s.tabs))
			tcamReq = append(tcamReq, t.Size)
		default:
			entryBytes := smartnicExactEntryBytes
			if hasLPMKey(t) {
				entryBytes = smartnicLPMEntryBytes
			}
			flowIdx = append(flowIdx, len(s.tabs))
			flowReq = append(flowReq, t.Size*entryBytes)
		}
		s.tabs = append(s.tabs, st)
	}
	accelBytes := 0
	for i, grant := range waterfill(flowReq, s.errata.AccelTableBytes) {
		st := s.tabs[flowIdx[i]]
		entryBytes := smartnicExactEntryBytes
		if hasLPMKey(st.t) {
			entryBytes = smartnicLPMEntryBytes
		}
		st.capacity = grant / entryBytes
		accelBytes += st.capacity * entryBytes
	}
	tcamRows := 0
	for i, grant := range waterfill(tcamReq, s.errata.NICTCAMRows) {
		s.tabs[tcamIdx[i]].capacity = grant
		tcamRows += grant
	}
	s.hitPrev = make([]uint64, len(s.tabs))
	s.missPrev = make([]uint64, len(s.tabs))

	s.cFast = s.eng.Counters.Counter("smartnic.fastpath")
	s.cPunt = s.eng.Counters.Counter("smartnic.punt.total")
	s.cPuntParse = s.eng.Counters.Counter("smartnic.punt.parser")
	s.cQueueDrop = s.eng.Counters.Counter("smartnic.punt.queue_drop")

	accel := 0
	for _, st := range s.tabs {
		if !st.coreResident {
			accel++
		}
	}
	s.resources = ResourceReport{
		AccelTables:    accel,
		CoreTables:     len(s.tabs) - accel,
		AccelBytes:     accelBytes + tcamRows*smartnicTCAMRowBytes,
		NICTCAMRows:    tcamRows,
		PuntQueueDepth: s.errata.PuntQueueDepth,
		AccelPct:       pct(accelBytes, s.errata.AccelTableBytes),
	}
	for _, st := range s.tabs {
		s.resources.AccelEntries += st.capacity
	}
	return nil
}

// hasLPMKey reports whether any key of t is an LPM match.
func hasLPMKey(t *ir.Table) bool {
	for _, k := range t.Keys {
		if k.Kind == ir.MatchLPM {
			return true
		}
	}
	return false
}

func (s *smartnic) Program() *ir.Program { return s.prog }

func (s *smartnic) Process(frame []byte, ingressPort uint64, trace bool) Result {
	s.queueFree = s.errata.PuntQueueDepth // the punt ring drained
	ctx := s.eng.AcquireContext()
	ctx.CollectTrace = trace
	res := s.run(ctx, s.singleCoreCtx, frame, ingressPort, trace, s.outBuf[:1])
	s.eng.ReleaseContext(ctx)
	return res
}

// singleCoreCtx returns the owned core-complex context for per-packet
// Process calls (valid until the next call, like the rest of the
// result).
func (s *smartnic) singleCoreCtx() *dataplane.Context {
	if s.coreCtx1 == nil {
		s.coreCtx1 = s.core.NewContext()
	}
	return s.coreCtx1
}

// ProcessBatch mirrors pipeline.processBatch, but classifies every
// frame's punt path individually: the shared batch scratch keeps all
// results valid at once, and fail-open slots get their own lazily
// created core-complex contexts.
func (s *smartnic) ProcessBatch(frames [][]byte, ingressPort uint64, trace bool) []Result {
	s.queueFree = s.errata.PuntQueueDepth
	for len(s.batchCtx) < len(frames) {
		s.batchCtx = append(s.batchCtx, s.eng.NewContext())
	}
	for len(s.coreCtxs) < len(frames) {
		s.coreCtxs = append(s.coreCtxs, nil)
	}
	if cap(s.batchRes) < len(frames) {
		s.batchRes = make([]Result, len(frames))
		s.batchOut = make([]Output, len(frames))
	}
	res := s.batchRes[:len(frames)]
	for i, frame := range frames {
		ctx := s.batchCtx[i]
		ctx.CollectTrace = trace
		slot := i
		coreCtx := func() *dataplane.Context {
			if s.coreCtxs[slot] == nil {
				s.coreCtxs[slot] = s.core.NewContext()
			}
			return s.coreCtxs[slot]
		}
		res[i] = s.run(ctx, coreCtx, frame, ingressPort, trace, s.batchOut[i:i+1])
	}
	return res
}

// run processes one frame: accelerator first, punt classification from
// the engine's own lookup counters, then the exception path. out is the
// caller-owned slot the (at most one) output frame is staged in.
func (s *smartnic) run(ctx *dataplane.Context, coreCtx func() *dataplane.Context,
	frame []byte, ingressPort uint64, trace bool, out []Output) Result {
	for i, st := range s.tabs {
		s.hitPrev[i] = st.hit.Value()
		s.missPrev[i] = st.miss.Value()
	}
	data, egress := s.eng.Process(ctx, frame, ingressPort)
	res := Result{Latency: smartnicFastLatency, Trace: ctx.Trace}
	if data != nil {
		out[0] = Output{Port: egress, Data: data}
		res.Outputs = out[:1]
	}

	// Classify: what, if anything, forced this frame off the fast path?
	parserPunt := ctx.Trace.Verdict == dataplane.VerdictReject
	punt := parserPunt
	for i, st := range s.tabs {
		if st.entries == 0 {
			continue // the driver short-circuits empty tables locally
		}
		missed := st.miss.Value() != s.missPrev[i]
		applied := missed || st.hit.Value() != s.hitPrev[i]
		if (st.puntAlways() && applied) || missed {
			st.punts.Inc()
			punt = true
		}
	}
	if !punt {
		s.cFast.Inc()
		return res
	}

	// Punt: claim a ring slot or drop at the NIC.
	if s.queueFree == 0 {
		s.cQueueDrop.Inc()
		res.Outputs = nil
		res.Trace.Dropped = true
		res.Trace.DropStage = "punt-queue"
		return res
	}
	s.queueFree--
	s.cPunt.Inc()
	res.Latency = smartnicPuntLatency
	if parserPunt {
		s.cPuntParse.Inc()
		if s.core != nil {
			// Fail-open: the slow path re-runs the frame with the
			// reject transition compiled out and forwards the result.
			cc := coreCtx()
			cc.CollectTrace = trace
			data, egress = s.core.Process(cc, frame, ingressPort)
			res.Trace = cc.Trace
			res.Outputs = nil
			if data != nil {
				out[0] = Output{Port: egress, Data: data}
				res.Outputs = out[:1]
			}
		}
	}
	if s.errata.TruncatePunts && len(res.Outputs) == 1 && len(out[0].Data) > s.errata.PuntMTU {
		out[0].Data = out[0].Data[:s.errata.PuntMTU]
	}
	return res
}

func (s *smartnic) InstallEntry(e dataplane.Entry) error {
	if err := s.installEntry(e); err != nil {
		return err
	}
	if s.core != nil {
		if err := s.core.InstallEntry(e); err != nil {
			return fmt.Errorf("target: smartnic: core-complex mirror install: %w", err)
		}
	}
	if st := s.table(e.Table); st != nil {
		st.entries++
		st.spilled = st.capacity > 0 && st.entries > st.capacity
	}
	return nil
}

func (s *smartnic) DeleteEntry(e dataplane.Entry) error {
	if err := s.deleteEntry(e); err != nil {
		return err
	}
	if s.core != nil {
		if err := s.core.DeleteEntry(e); err != nil {
			return fmt.Errorf("target: smartnic: core-complex mirror delete: %w", err)
		}
	}
	if st := s.table(e.Table); st != nil && st.entries > 0 {
		st.entries--
		st.spilled = st.capacity > 0 && st.entries > st.capacity
	}
	return nil
}

func (s *smartnic) ClearTable(name string) error {
	if err := s.clearTable(name); err != nil {
		return err
	}
	if s.core != nil {
		if err := s.core.ClearTable(name); err != nil {
			return fmt.Errorf("target: smartnic: core-complex mirror clear: %w", err)
		}
	}
	if st := s.table(name); st != nil {
		st.entries, st.spilled = 0, false
	}
	return nil
}

func (s *smartnic) table(name string) *snicTable {
	for _, st := range s.tabs {
		if st.t.Name == name {
			return st
		}
	}
	return nil
}

func (s *smartnic) Status() map[string]uint64     { return s.status() }
func (s *smartnic) TernaryGroups(name string) int { return s.ternaryGroups(name) }

// Resources reports the accelerator footprint plus the punt economics:
// residency counts reflect offload fallback (a spilled table counts as
// core-resident), and TablePunts snapshots the cumulative per-table
// punt counters.
func (s *smartnic) Resources() ResourceReport {
	r := s.resources
	if len(s.tabs) == 0 {
		return r
	}
	r.AccelTables, r.CoreTables = 0, 0
	r.TablePunts = make(map[string]uint64, len(s.tabs)+1)
	for _, st := range s.tabs {
		if st.puntAlways() {
			r.CoreTables++
		} else {
			r.AccelTables++
		}
		r.TablePunts[st.t.Name] = st.punts.Value()
	}
	r.TablePunts["parser"] = s.cPuntParse.Value()
	return r
}
