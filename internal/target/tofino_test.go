package target

import (
	"errors"
	"strings"
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

func TestTofinoImplementsReject(t *testing.T) {
	tf := NewTofino(DefaultTofinoErrata())
	loadRouter(t, tf)
	res := tf.Process(badVersionFrame(), 0, true)
	if !res.Dropped() {
		t.Fatal("tofino implements the reject state; malformed packets must drop")
	}
	if res.Trace.Verdict != dataplane.VerdictReject {
		t.Fatalf("verdict = %v", res.Trace.Verdict)
	}
	res = tf.Process(goodFrame(), 0, false)
	if res.Dropped() || res.Outputs[0].Port != 1 {
		t.Fatalf("good frame: %+v", res)
	}
	if res.Latency != tofinoLatency {
		t.Fatalf("latency = %v, want the fixed pipeline delay %v", res.Latency, tofinoLatency)
	}
}

// firewallFixture loads the firewall onto tgt with a route for ipB and
// two overlapping same-priority ACL entries: an allow installed first
// (match-any) and a drop installed second (exact dst). A conforming
// target resolves the tie first-installed-wins and forwards; the
// shipped Tofino driver resolves newest-first and drops.
func firewallFixture(t testing.TB, tgt Target) {
	t.Helper()
	if err := tgt.Load(mustProg(t, p4test.Firewall)); err != nil {
		t.Fatal(err)
	}
	anyAddr := bitfield.New(0, 32)
	anyPort := bitfield.New(0, 16)
	dstIP := bitfield.FromBytes(ipB[:])
	entries := []dataplane.Entry{
		{
			Table: "acl", Action: "allow", Priority: 3,
			Keys: []dataplane.KeyValue{
				{Value: anyAddr, Mask: anyAddr},
				{Value: anyAddr, Mask: anyAddr},
				{Value: anyPort, Mask: anyPort},
			},
		},
		{
			Table: "acl", Action: "drop", Priority: 3,
			Keys: []dataplane.KeyValue{
				{Value: anyAddr, Mask: anyAddr},
				{Value: dstIP, Mask: bitfield.Mask(32)},
				{Value: anyPort, Mask: anyPort},
			},
		},
		{
			Table:  "routing",
			Keys:   []dataplane.KeyValue{{Value: dstIP, PrefixLen: 24}},
			Action: "route",
			Args:   []bitfield.Value{bitfield.New(2, 9)},
		},
	}
	for _, e := range entries {
		if err := tgt.InstallEntry(e); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTofinoTernaryPriorityLIFO(t *testing.T) {
	frame := packet.BuildUDPv4(macA, macB, ipA, ipB, 40000, 53, make([]byte, 6))
	for _, tc := range []struct {
		name    string
		tgt     Target
		forward bool
	}{
		{"reference", NewReference(), true},
		{"sdnet-fixed", NewSDNet(FixedErrata()), true},
		{"tofino-fixed", NewTofino(FixedTofinoErrata()), true},
		{"tofino-default", NewTofino(DefaultTofinoErrata()), false},
	} {
		firewallFixture(t, tc.tgt)
		res := tc.tgt.Process(frame, 0, true)
		if forwarded := !res.Dropped(); forwarded != tc.forward {
			t.Errorf("%s: forwarded=%v, want %v (equal-priority tie resolution)",
				tc.name, forwarded, tc.forward)
		}
	}
}

func TestTofinoPlacementClipsCapacity(t *testing.T) {
	// 1 stage x 2 SRAM blocks holds 2048 one-word entries; the table
	// declares 4096.
	e := DefaultTofinoErrata()
	e.Stages, e.SRAMBlocks = 1, 2
	tf := NewTofino(e)
	if err := tf.Load(mustProg(t, p4test.BigExactTable)); err != nil {
		t.Fatal(err)
	}
	installed := 0
	var capErr *dataplane.CapacityError
	for i := 0; i < 4096; i++ {
		err := tf.InstallEntry(dataplane.Entry{
			Table:  "big",
			Keys:   []dataplane.KeyValue{{Value: bitfield.New(uint64(i), 32)}},
			Action: "fwd",
			Args:   []bitfield.Value{bitfield.New(1, 9)},
		})
		if err != nil {
			if !errors.As(err, &capErr) {
				t.Fatalf("entry %d: %v", i, err)
			}
			break
		}
		installed++
	}
	if installed != 2048 {
		t.Fatalf("placement capacity = %d, want 2048 (2 blocks x 1024 rows, declared 4096)", installed)
	}
	if capErr == nil {
		t.Fatal("expected a CapacityError at the placement limit")
	}

	// The full-size part places the table completely.
	full := NewTofino(DefaultTofinoErrata())
	if err := full.Load(mustProg(t, p4test.BigExactTable)); err != nil {
		t.Fatal(err)
	}
	if r := full.Resources(); r.SRAMBlocks != 4 {
		t.Fatalf("full part grants %d SRAM blocks, want 4", r.SRAMBlocks)
	}
}

func TestTofinoStageChainExceedsPipeline(t *testing.T) {
	// The firewall applies acl then routing — two dependent tables; a
	// 1-stage pipeline cannot place the chain regardless of memory.
	e := DefaultTofinoErrata()
	e.Stages = 1
	err := NewTofino(e).Load(mustProg(t, p4test.Firewall))
	if err == nil {
		t.Fatal("a 2-table chain must not load on a 1-stage pipeline")
	}
	if !strings.Contains(err.Error(), "stages") {
		t.Fatalf("error should name the stage limit: %v", err)
	}
	// Two stages place it.
	e.Stages = 2
	if err := NewTofino(e).Load(mustProg(t, p4test.Firewall)); err != nil {
		t.Fatalf("2 stages must fit the 2-table chain: %v", err)
	}
}

// wideExactProgram carries a 192-bit exact key: 2 SRAM words per entry,
// unplaceable on a 1-block pipeline.
const wideExactProgram = `
header k_t { bit<128> a; bit<64> b; } struct hs { k_t k; }
parser WP(packet_in p, out hs hdr) { state start { p.extract(hdr.k); transition accept; } }
control WI(inout hs hdr, inout standard_metadata_t sm) {
  action fwd(bit<9> port) { sm.egress_spec = port; }
  table t_wide {
    key = { hdr.k.a: exact; hdr.k.b: exact; }
    actions = { fwd; NoAction; }
    size = 1024;
  }
  apply { t_wide.apply(); }
}
control WD(packet_out p, in hs hdr) { apply { p.emit(hdr.k); } }
S(WP(), WI(), WD()) main;`

func TestTofinoUnplaceableTableFailsLoad(t *testing.T) {
	e := DefaultTofinoErrata()
	e.Stages, e.SRAMBlocks = 1, 1
	tf := NewTofino(e)
	// The 192-bit exact key needs 2 words per entry; a 1-block pipeline
	// cannot hold a single row-group. (The router's 32-bit LPM table no
	// longer serves here: trie-geometry pricing fits it in one word.)
	if err := tf.Load(mustProg(t, wideExactProgram)); err == nil {
		t.Fatal("placement must fail when a table cannot hold one row-group")
	}
	// The router now places even on the minimal pipeline — the direct
	// dividend of pricing LPM from trie geometry instead of 2x key bits.
	if err := NewTofino(e).Load(mustProg(t, p4test.Router)); err != nil {
		t.Fatalf("router must place on a 1-block pipeline under trie-geometry pricing: %v", err)
	}
}

// TestTofinoLPMPricing pins the trie-geometry LPM entry pricing: a
// 32-bit LPM key prices at LPMEntryBits(32) = 46 bits — key, encoded
// prefix length, node bookkeeping — which keeps the router's LPM entry
// (46 key + 57 action + 16 overhead = 119 bits) inside one 128-bit SRAM
// word, where the old 2x heuristic (64 key bits) spilled it into two.
func TestTofinoLPMPricing(t *testing.T) {
	if got := dataplane.LPMEntryBits(32); got != 46 {
		t.Fatalf("LPMEntryBits(32) = %d, want 46", got)
	}
	if got := dataplane.LPMEntryBits(128); got != 144 {
		t.Fatalf("LPMEntryBits(128) = %d, want 144", got)
	}
	e := DefaultTofinoErrata()
	e.fill()
	placement, err := placeTables(mustProg(t, p4test.Router), e)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range placement {
		if p.table.Name != "ipv4_lpm" {
			continue
		}
		if p.tcam {
			t.Fatal("lpm table placed in TCAM")
		}
		if p.words != 1 {
			t.Fatalf("ipv4_lpm words/entry = %d, want 1", p.words)
		}
		return
	}
	t.Fatal("no placement for ipv4_lpm")
}

func TestTofinoPHVBudget(t *testing.T) {
	const wideHeaders = `
header h_t { bit<32> a; bit<32> b; bit<32> c; } struct hs { h_t h; }
parser P(packet_in p, out hs hdr) { state start { p.extract(hdr.h); transition accept; } }
control I(inout hs hdr, inout standard_metadata_t sm) {
  apply { sm.egress_spec = 9w1; }
}
control D(packet_out p, in hs hdr) { apply { p.emit(hdr.h); } }
S(P(), I(), D()) main;`
	prog := mustProg(t, wideHeaders)
	small := DefaultTofinoErrata()
	small.PHV8, small.PHV16, small.PHV32 = 1, 1, 2
	if err := NewTofino(small).Load(prog); err == nil {
		t.Fatal("PHV overflow must fail the load")
	} else if !strings.Contains(err.Error(), "PHV") {
		t.Fatalf("error should name the PHV budget: %v", err)
	}
	if err := NewTofino(DefaultTofinoErrata()).Load(prog); err != nil {
		t.Fatalf("full part must fit the program: %v", err)
	}
}

func TestTofinoAcceptsWideTernary(t *testing.T) {
	// The 128-bit ternary key the SDNet flow rejects spans 3 TCAM
	// slices on the ASIC — comfortably within a stage.
	const wide = `
	header h_t { bit<128> x; } struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) { state start { p.extract(hdr.h); transition accept; } }
	control I(inout hs hdr, inout standard_metadata_t sm) {
	  action fwd(bit<9> port) { sm.egress_spec = port; }
	  table t { key = { hdr.h.x: ternary; } actions = { fwd; } }
	  apply { t.apply(); }
	}
	control D(packet_out p, in hs hdr) { apply { p.emit(hdr.h); } }
	S(P(), I(), D()) main;`
	if err := NewTofino(DefaultTofinoErrata()).Load(mustProg(t, wide)); err != nil {
		t.Fatalf("tofino must accept a 128-bit ternary key: %v", err)
	}
}

func TestTofinoResourcesDiscriminate(t *testing.T) {
	est := func(src string) ResourceReport {
		tf := NewTofino(DefaultTofinoErrata())
		if err := tf.Load(mustProg(t, src)); err != nil {
			t.Fatal(err)
		}
		return tf.Resources()
	}
	router := est(p4test.Router)
	fw := est(p4test.Firewall)
	if router.Stages < 1 || router.SRAMBlocks < 1 || router.PHVBits < 1 {
		t.Fatalf("router estimate: %+v", router)
	}
	if router.TCAMBlocks != 0 {
		t.Fatalf("router has no ternary table, TCAM = %d", router.TCAMBlocks)
	}
	if fw.TCAMBlocks < 1 {
		t.Fatalf("firewall ACL must occupy TCAM: %+v", fw)
	}
	if fw.Stages <= router.Stages-1 && fw.SRAMBlocks+fw.TCAMBlocks <= router.SRAMBlocks {
		t.Fatalf("firewall should not be cheaper: router=%+v firewall=%+v", router, fw)
	}
	if s := router.String(); !strings.Contains(s, "stages") || !strings.Contains(s, "PHV") {
		t.Fatalf("ASIC report should render stage/PHV form: %q", s)
	}
}

func BenchmarkTofinoProcessRouter(b *testing.B) {
	tf := NewTofino(DefaultTofinoErrata())
	loadRouter(b, tf)
	frame := goodFrame()
	tf.Process(frame, 0, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tf.Process(frame, 0, false)
	}
}

func BenchmarkTofinoProcessFirewallTernary(b *testing.B) {
	tf := NewTofino(DefaultTofinoErrata())
	if err := tf.Load(mustProg(b, p4test.Firewall)); err != nil {
		b.Fatal(err)
	}
	anyAddr := bitfield.New(0, 32)
	anyPort := bitfield.New(0, 16)
	if err := tf.InstallEntry(dataplane.Entry{
		Table: "acl", Action: "allow", Priority: 1,
		Keys: []dataplane.KeyValue{
			{Value: anyAddr, Mask: anyAddr},
			{Value: anyAddr, Mask: anyAddr},
			{Value: anyPort, Mask: anyPort},
		},
	}); err != nil {
		b.Fatal(err)
	}
	if err := tf.InstallEntry(dataplane.Entry{
		Table:  "routing",
		Keys:   []dataplane.KeyValue{{Value: bitfield.FromBytes(ipB[:]), PrefixLen: 24}},
		Action: "route",
		Args:   []bitfield.Value{bitfield.New(2, 9)},
	}); err != nil {
		b.Fatal(err)
	}
	frame := packet.BuildUDPv4(macA, macB, ipA, ipB, 40000, 53, make([]byte, 6))
	tf.Process(frame, 0, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tf.Process(frame, 0, false)
	}
}
