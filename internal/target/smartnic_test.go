package target

import (
	"strings"
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

// routeEntry24 is a /24 route used to fill the ipv4_lpm table past a
// small accelerator grant.
func routeEntry24(i int, port uint64) dataplane.Entry {
	return dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(uint64(0x0b000000+i*256), 32), PrefixLen: 24}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(port, 9)},
	}
}

// TestSmartNICBimodalLatency is the signature of the class: accelerator
// hits resolve at the fast-path latency, anything punted pays the
// PCIe/DMA round trip to the core complex.
func TestSmartNICBimodalLatency(t *testing.T) {
	sn := NewSmartNIC(DefaultSmartNICErrata())
	loadRouter(t, sn)

	// On-route frame: LPM hit on the accelerator, fast path.
	res := sn.Process(goodFrame(), 0, false)
	if res.Dropped() || res.Outputs[0].Port != 1 {
		t.Fatalf("good frame: %+v", res)
	}
	if res.Latency != smartnicFastLatency {
		t.Fatalf("fast-path latency = %v, want %v", res.Latency, smartnicFastLatency)
	}

	// Off-route frame: miss on a populated table punts (the cores agree
	// there is no route, so the frame still drops — but slowly).
	miss := packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{172, 16, 5, 9}, 40000, 53, make([]byte, 26))
	res = sn.Process(miss, 0, false)
	if !res.Dropped() {
		t.Fatalf("off-route frame must drop: %+v", res)
	}
	if res.Latency != smartnicPuntLatency {
		t.Fatalf("miss latency = %v, want %v", res.Latency, smartnicPuntLatency)
	}

	// Malformed frame: parser punt (fail-open forwards it, still slow).
	res = sn.Process(badVersionFrame(), 0, false)
	if res.Latency != smartnicPuntLatency {
		t.Fatalf("parser-punt latency = %v, want %v", res.Latency, smartnicPuntLatency)
	}
}

// TestSmartNICEmptyTableNeverPunts: the driver short-circuits lookups on
// empty tables locally, so a miss on an unpopulated table stays on the
// fast path.
func TestSmartNICEmptyTableNeverPunts(t *testing.T) {
	sn := NewSmartNIC(DefaultSmartNICErrata())
	if err := sn.Load(mustProg(t, p4test.Router)); err != nil {
		t.Fatal(err)
	}
	res := sn.Process(goodFrame(), 0, false)
	if !res.Dropped() {
		t.Fatalf("no route installed, frame must drop: %+v", res)
	}
	if res.Latency != smartnicFastLatency {
		t.Fatalf("empty-table miss latency = %v, want fast path %v", res.Latency, smartnicFastLatency)
	}
	if st := sn.Status(); st["smartnic.punt.total"] != 0 {
		t.Fatalf("empty-table miss punted: %v", st)
	}
}

// TestSmartNICExceptionFailOpen: the shipped driver forwards
// parser-rejected frames (the slow path re-runs them with reject
// compiled out); the repaired driver enforces the verdict and drops.
func TestSmartNICExceptionFailOpen(t *testing.T) {
	sn := NewSmartNIC(DefaultSmartNICErrata())
	loadRouter(t, sn)
	res := sn.Process(badVersionFrame(), 0, true)
	if res.Dropped() {
		t.Fatal("shipped smartnic must fail open on parser-rejected frames")
	}
	if res.Outputs[0].Port != 1 {
		t.Fatalf("fail-open egress = %d, want 1", res.Outputs[0].Port)
	}
	// The exception path produces the same bytes as the sdnet
	// reject-as-accept erratum — that is what pairs the two backends in a
	// 2-2 tie.
	sd := NewSDNet(DefaultErrata())
	loadRouter(t, sd)
	want := sd.Process(badVersionFrame(), 0, false)
	got := sn.Process(badVersionFrame(), 0, false)
	if string(got.Outputs[0].Data) != string(want.Outputs[0].Data) {
		t.Fatal("fail-open output differs from the sdnet reject-as-accept output")
	}

	fixed := NewSmartNIC(FixedSmartNICErrata())
	loadRouter(t, fixed)
	if res := fixed.Process(badVersionFrame(), 0, true); !res.Dropped() {
		t.Fatal("fixed smartnic must drop parser-rejected frames")
	}
}

// TestSmartNICTruncatedFramesStillDrop: a frame too short to extract
// the declared headers is a hard parser drop even on the fail-open
// path, mirroring the sdnet behaviour.
func TestSmartNICTruncatedFramesStillDrop(t *testing.T) {
	sn := NewSmartNIC(DefaultSmartNICErrata())
	loadRouter(t, sn)
	if res := sn.Process(goodFrame()[:16], 0, true); !res.Dropped() {
		t.Fatal("truncated frame must drop even on the shipped smartnic")
	}
}

// TestSmartNICPuntTruncation: the shipped punt DMA carries only
// PuntMTU bytes, so a punted-and-forwarded frame longer than that
// leaves the device clipped; the repaired driver forwards it intact.
func TestSmartNICPuntTruncation(t *testing.T) {
	// The firewall's acl table keys 80 ternary bits — wider than the
	// 64-bit NIC TCAM — so once populated every lookup on it punts.
	frame := packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{10, 0, 1, 77}, 40000, 53, make([]byte, 300))
	if len(frame) <= smartnicPuntMTU {
		t.Fatalf("fixture frame must exceed the punt MTU: %d", len(frame))
	}

	sn := NewSmartNIC(DefaultSmartNICErrata())
	firewallFixture(t, sn)
	res := sn.Process(frame, 0, false)
	if res.Dropped() {
		t.Fatalf("allowed frame must forward: %+v", res)
	}
	if res.Latency != smartnicPuntLatency {
		t.Fatalf("core-resident acl lookup must punt: latency %v", res.Latency)
	}
	if len(res.Outputs[0].Data) != smartnicPuntMTU {
		t.Fatalf("punted forward = %d bytes, want clipped to %d", len(res.Outputs[0].Data), smartnicPuntMTU)
	}

	fixed := NewSmartNIC(FixedSmartNICErrata())
	firewallFixture(t, fixed)
	res = fixed.Process(frame, 0, false)
	if res.Dropped() || len(res.Outputs[0].Data) != len(frame) {
		t.Fatalf("fixed driver must forward the punted frame intact: %+v", res)
	}
	if res.Latency != smartnicPuntLatency {
		t.Fatalf("the punt itself is hardware, not a defect: latency %v", res.Latency)
	}
}

// TestSmartNICPuntCounters: per-cause and per-table punt counters are
// visible in Status and in the resource report.
func TestSmartNICPuntCounters(t *testing.T) {
	sn := NewSmartNIC(DefaultSmartNICErrata())
	loadRouter(t, sn)
	sn.Process(goodFrame(), 0, false)       // fast path
	sn.Process(badVersionFrame(), 0, false) // parser punt
	miss := packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{172, 16, 5, 9}, 40000, 53, nil)
	sn.Process(miss, 0, false) // table-miss punt
	st := sn.Status()
	for key, want := range map[string]uint64{
		"smartnic.fastpath":            1,
		"smartnic.punt.total":          2,
		"smartnic.punt.parser":         1,
		"smartnic.punt.table.ipv4_lpm": 1,
		"smartnic.punt.queue_drop":     0,
	} {
		if st[key] != want {
			t.Errorf("%s = %d, want %d", key, st[key], want)
		}
	}
	r := sn.Resources()
	if r.TablePunts["ipv4_lpm"] != 1 || r.TablePunts["parser"] != 1 {
		t.Fatalf("resource punt snapshot: %v", r.TablePunts)
	}
}

// TestSmartNICPuntQueueOverflow: within one burst the punt ring holds
// PuntQueueDepth frames; the rest are dropped at the NIC with drop
// stage "punt-queue". The ring drains between bursts.
func TestSmartNICPuntQueueOverflow(t *testing.T) {
	e := DefaultSmartNICErrata()
	e.PuntQueueDepth = 4
	sn := NewSmartNIC(e)
	loadRouter(t, sn)

	frames := make([][]byte, 10)
	for i := range frames {
		frames[i] = badVersionFrame() // every frame punts
	}
	res := sn.ProcessBatch(frames, 0, true)
	for i, r := range res[:4] {
		if r.Dropped() || r.Latency != smartnicPuntLatency {
			t.Fatalf("frame %d should take the exception path: %+v", i, r)
		}
	}
	for i, r := range res[4:] {
		if !r.Dropped() || r.Trace.DropStage != "punt-queue" {
			t.Fatalf("frame %d should overflow the punt ring: %+v", i+4, r)
		}
	}
	if st := sn.Status(); st["smartnic.punt.queue_drop"] != 6 {
		t.Fatalf("queue_drop = %d, want 6", st["smartnic.punt.queue_drop"])
	}

	// A new burst sees a drained ring.
	if r := sn.Process(badVersionFrame(), 0, false); r.Dropped() {
		t.Fatalf("ring must drain between bursts: %+v", r)
	}
}

// TestSmartNICOffloadSpillFallback: installs past the accelerator grant
// never fail — the driver stops offloading the table, every lookup on
// it punts, and deleting back under the grant restores the fast path.
func TestSmartNICOffloadSpillFallback(t *testing.T) {
	e := DefaultSmartNICErrata()
	e.AccelTableBytes = 10 * smartnicLPMEntryBytes // grant: 10 LPM entries
	sn := NewSmartNIC(e)
	loadRouter(t, sn) // 1 entry installed

	for i := 0; i < 9; i++ { // fill exactly to the grant
		if err := sn.InstallEntry(routeEntry24(i, 1)); err != nil {
			t.Fatalf("install %d within the grant: %v", i, err)
		}
	}
	if r := sn.Process(goodFrame(), 0, false); r.Latency != smartnicFastLatency {
		t.Fatalf("at the grant the table is still offloaded: latency %v", r.Latency)
	}
	if err := sn.InstallEntry(routeEntry24(9, 1)); err != nil {
		t.Fatalf("install past the grant must not fail (offload fallback): %v", err)
	}
	r := sn.Process(goodFrame(), 0, false)
	if r.Dropped() || r.Outputs[0].Port != 1 {
		t.Fatalf("spilled table still forwards: %+v", r)
	}
	if r.Latency != smartnicPuntLatency {
		t.Fatalf("lookup on a spilled table must punt: latency %v", r.Latency)
	}
	if rep := sn.Resources(); rep.CoreTables != 1 || rep.AccelTables != 0 {
		t.Fatalf("spilled table must count as core-resident: %+v", rep)
	}
	if err := sn.DeleteEntry(routeEntry24(9, 1)); err != nil {
		t.Fatal(err)
	}
	if r := sn.Process(goodFrame(), 0, false); r.Latency != smartnicFastLatency {
		t.Fatalf("delete back under the grant must restore offload: latency %v", r.Latency)
	}
}

// TestSmartNICResourceReport: the smartnic form of the resource report —
// residency split, accelerator bytes, TCAM rows, punt-queue depth — and
// its rendering.
func TestSmartNICResourceReport(t *testing.T) {
	sn := NewSmartNIC(DefaultSmartNICErrata())
	loadRouter(t, sn)
	r := sn.Resources()
	if r.AccelTables != 1 || r.CoreTables != 0 {
		t.Fatalf("router residency: %+v", r)
	}
	// ipv4_lpm declares 1024 entries; the budget covers it in full.
	if r.AccelEntries != 1024 || r.AccelBytes != 1024*smartnicLPMEntryBytes {
		t.Fatalf("router accelerator grant: %+v", r)
	}
	if r.NICTCAMRows != 0 { // no ternary table in the router
		t.Fatalf("router should use no TCAM rows: %+v", r)
	}
	if r.PuntQueueDepth != smartnicPuntDepth || r.AccelPct <= 0 {
		t.Fatalf("punt geometry: %+v", r)
	}
	if r.ModelBytes() == 0 {
		t.Fatal("smartnic reports no model footprint")
	}
	s := r.String()
	for _, want := range []string{"accel tables 1", "NIC TCAM", "punt queue"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}

	// The firewall's wide-ternary acl is core-resident from the start;
	// its narrow tables stay on the accelerator.
	fw := NewSmartNIC(DefaultSmartNICErrata())
	firewallFixture(t, fw)
	r = fw.Resources()
	if r.CoreTables != 1 {
		t.Fatalf("firewall acl must be core-resident: %+v", r)
	}
	if r.AccelTables == 0 {
		t.Fatalf("firewall narrow tables must stay offloaded: %+v", r)
	}
}

// BenchmarkSmartNICProcessRouter measures the accelerator fast path —
// the 0-alloc steady-state contract the class shares with the other
// backends.
func BenchmarkSmartNICProcessRouter(b *testing.B) {
	sn := NewSmartNIC(DefaultSmartNICErrata())
	loadRouter(b, sn)
	frame := goodFrame()
	sn.Process(frame, 0, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn.Process(frame, 0, false)
	}
}

// BenchmarkSmartNICProcessFirewallTernary measures the exception path:
// the firewall's wide-ternary acl is core-resident, so every frame
// pays punt classification + ring accounting on top of the lookup.
func BenchmarkSmartNICProcessFirewallTernary(b *testing.B) {
	sn := NewSmartNIC(DefaultSmartNICErrata())
	firewallFixture(b, sn)
	frame := packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{10, 0, 1, 77}, 40000, 53, make([]byte, 6))
	sn.Process(frame, 0, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn.Process(frame, 0, false)
	}
}
