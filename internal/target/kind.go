package target

import "fmt"

// Kind names for ForKind, mirroring the netdebug facade's TargetKind
// vocabulary so lower-level harnesses (the resident session layer, the
// CLI) can construct backends from the same strings.
const (
	KindReference   = "reference"
	KindSDNet       = "sdnet"
	KindSDNetFixed  = "sdnet-fixed"
	KindTofino      = "tofino"
	KindTofinoFixed = "tofino-fixed"
	KindEBPF        = "ebpf"
	KindEBPFFixed   = "ebpf-fixed"

	KindSmartNIC      = "smartnic"
	KindSmartNICFixed = "smartnic-fixed"
)

// ShippedKinds lists the default-errata backend set in canonical order —
// the five-way comparison matrix the differential harnesses (the
// scenario suite, the internal/fuzz lockstep fleet) drive with the same
// probes. An even voter count means strict majority alone cannot always
// localize: see the reference-anchored tie-break in internal/fuzz and
// scenario.OddOneOut.
var ShippedKinds = []string{KindReference, KindSDNet, KindTofino, KindEBPF, KindSmartNIC}

// ForKind constructs the backend named by kind with its default (or,
// for the -fixed variants, fully repaired) errata. The empty string
// selects the reference target.
func ForKind(kind string) (Target, error) {
	switch kind {
	case "", KindReference:
		return NewReference(), nil
	case KindSDNet:
		return NewSDNet(DefaultErrata()), nil
	case KindSDNetFixed:
		return NewSDNet(FixedErrata()), nil
	case KindTofino:
		return NewTofino(DefaultTofinoErrata()), nil
	case KindTofinoFixed:
		return NewTofino(FixedTofinoErrata()), nil
	case KindEBPF:
		return NewEBPF(DefaultEBPFErrata()), nil
	case KindEBPFFixed:
		return NewEBPF(FixedEBPFErrata()), nil
	case KindSmartNIC:
		return NewSmartNIC(DefaultSmartNICErrata()), nil
	case KindSmartNICFixed:
		return NewSmartNIC(FixedSmartNICErrata()), nil
	}
	return nil, fmt.Errorf("target: unknown kind %q", kind)
}
